// Package repro's benchmark harness: one testing.B benchmark per table and
// figure of the paper (regenerating a reduced-scale version of it per
// iteration, with the headline ratio reported as a custom metric), plus
// ablation benches for the design choices called out in DESIGN.md.
//
// These benches quantify *reproduction shape*, not Go micro-performance:
// ns/op is the cost of regenerating the experiment, and the custom metrics
// (e.g. master_vs_l2s) are the paper's claims. cmd/ccbench produces the
// full-scale figures recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/l2s"
	"repro/internal/middleware"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchRequests keeps a single bench iteration around a second.
const benchRequests = 8000

func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		TargetRequests: benchRequests,
		MemoriesMB:     []int{8, 64},
	}
}

// --- Simulator hot path ---

// BenchmarkEngineEventLoop measures the discrete-event engine's per-event
// cost through the two-center (CPU → disk) pipeline every simulated request
// traverses: ns/event, allocs/event, and dispatched events/sec. Service
// completions ride inside event values (no continuation closures), so the
// steady-state loop should report zero allocs/op.
func BenchmarkEngineEventLoop(b *testing.B) {
	eng := sim.NewEngine(1)
	cpu := sim.NewServiceCenter(eng, "cpu", 0)
	disk := sim.NewServiceCenter(eng, "disk", 0)
	eng.Reserve(1024)
	// One closure allocated up front; the loop itself must not allocate.
	toDisk := func() { disk.Do(50*sim.Microsecond, nil) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Do(10*sim.Microsecond, toDisk)
		if i%512 == 511 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	b.ReportMetric(float64(eng.Steps())/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(eng.Steps()), "ns/event")
}

// BenchmarkEngineEventLoopDeep stresses the heap with many concurrent
// timers (the fan-in shape of a large cluster run) rather than the shallow
// pipeline above.
func BenchmarkEngineEventLoopDeep(b *testing.B) {
	eng := sim.NewEngine(1)
	eng.Reserve(4096)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(sim.Duration(i%997)*sim.Microsecond, nop)
		if i%4096 == 4095 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	b.ReportMetric(float64(eng.Steps())/b.Elapsed().Seconds(), "events/s")
}

// --- Tables ---

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := hw.DefaultParams()
		if p.ParseTime != sim.Milliseconds(0.1) {
			b.Fatal("Table 1 constants corrupted")
		}
	}
}

func BenchmarkTable2Characterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		rows := h.Table2()
		if len(rows) != 4 {
			b.Fatal("Table 2 incomplete")
		}
	}
}

// --- Figures ---

func BenchmarkFigure1CDF(b *testing.B) {
	tr := trace.Rutgers.Generate(1, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := trace.CDF(tr, 50)
		if len(pts) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

func benchFigure2(b *testing.B, preset trace.Preset) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure2(preset, 8)
		reportRatio(b, fig)
	}
}

// reportRatio emits the paper's headline number: cc-master throughput as a
// fraction of L2S at the largest memory point of the sweep.
func reportRatio(b *testing.B, fig *experiments.Figure) {
	l2s := fig.SeriesFor(experiments.VariantL2S)
	master := fig.SeriesFor(experiments.VariantMaster)
	if l2s == nil || master == nil || len(l2s.Y) == 0 {
		b.Fatal("figure missing series")
	}
	last := len(l2s.Y) - 1
	if l2s.Y[last] > 0 {
		b.ReportMetric(master.Y[last]/l2s.Y[last], "master_vs_l2s")
	}
}

func BenchmarkFigure2Calgary(b *testing.B)  { benchFigure2(b, trace.Calgary) }
func BenchmarkFigure2Clarknet(b *testing.B) { benchFigure2(b, trace.Clarknet) }
func BenchmarkFigure2NASA(b *testing.B)     { benchFigure2(b, trace.NASA) }
func BenchmarkFigure2Rutgers(b *testing.B)  { benchFigure2(b, trace.Rutgers) }

func BenchmarkFigure3Calgary4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure3(trace.Calgary, 4)
		s := fig.SeriesFor(experiments.VariantMaster)
		b.ReportMetric(s.Y[len(s.Y)-1], "master_vs_l2s")
	}
}

func BenchmarkFigure3Rutgers8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure3(trace.Rutgers, 8)
		s := fig.SeriesFor(experiments.VariantMaster)
		b.ReportMetric(s.Y[len(s.Y)-1], "master_vs_l2s")
	}
}

func BenchmarkFigure4HitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure4(trace.Rutgers, 8)
		m := fig.SeriesFor(experiments.VariantMaster)
		l := fig.SeriesFor(experiments.VariantL2S)
		last := len(m.Y) - 1
		if l.Y[last] > 0 {
			b.ReportMetric(m.Y[last]/l.Y[last], "hitrate_vs_l2s")
		}
	}
}

func BenchmarkFigure5Calgary4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure5(trace.Calgary, 4)
		s := fig.SeriesFor(experiments.VariantMaster)
		b.ReportMetric(s.Y[len(s.Y)-1], "resp_vs_l2s")
	}
}

func BenchmarkFigure5Rutgers8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure5(trace.Rutgers, 8)
		s := fig.SeriesFor(experiments.VariantMaster)
		b.ReportMetric(s.Y[len(s.Y)-1], "resp_vs_l2s")
	}
}

func BenchmarkFigure6AUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Figure6A(trace.Rutgers, 8)
		nic := fig.SeriesFor("nic")
		b.ReportMetric(nic.Y[len(nic.Y)-1], "nic_util_pct")
	}
}

func BenchmarkFigure6BScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(experiments.Options{
			Seed: 1, TargetRequests: benchRequests,
		})
		fig := h.Figure6B(trace.Rutgers, []int{4, 8, 16}, 32)
		s := fig.Series[0]
		if s.Y[0] > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], "speedup_4_to_16")
		}
	}
}

// --- Ablations ---

// runCC measures one CC configuration directly (bypassing the harness so
// ablations can vary Config and Params).
func runCC(preset trace.Preset, params *hw.Params, cfg core.Config) workload.Result {
	tr := preset.Generate(1, float64(benchRequests)/float64(preset.NumRequests))
	eng := sim.NewEngine(1)
	s := core.New(eng, params, tr, cfg)
	return workload.Run(eng, s, tr, workload.Config{})
}

func BenchmarkAblationNoForwarding(b *testing.B) {
	params := hw.DefaultParams()
	base := core.Config{Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster}
	for i := 0; i < b.N; i++ {
		with := runCC(trace.Rutgers, &params, base)
		noFwd := base
		noFwd.DisableForwarding = true
		without := runCC(trace.Rutgers, &params, noFwd)
		if without.Throughput > 0 {
			b.ReportMetric(with.Throughput/without.Throughput, "fwd_speedup")
		}
	}
}

func BenchmarkAblationHintDirectory(b *testing.B) {
	params := hw.DefaultParams()
	base := core.Config{Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster}
	for i := 0; i < b.N; i++ {
		perfect := runCC(trace.Rutgers, &params, base)
		hinted := base
		hinted.HintAccuracy = 0.98 // Sarkar & Hartman's reported accuracy
		hints := runCC(trace.Rutgers, &params, hinted)
		if perfect.Throughput > 0 {
			b.ReportMetric(hints.Throughput/perfect.Throughput, "hints_vs_perfect")
		}
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	params := hw.DefaultParams()
	for _, kb := range []int{4, 8, 16, 64} {
		kb := kb
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runCC(trace.Rutgers, &params, core.Config{
					Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster,
					Geometry: block.Geometry{Size: kb * 1024, ExtentBlocks: max(1, 64/kb)},
				})
				b.ReportMetric(res.Throughput, "req_per_s")
			}
		})
	}
}

func BenchmarkAblationNetwork(b *testing.B) {
	// §5's argument: master preservation pays off because LANs outpace
	// disks. Slower networks should shrink cc-master's advantage.
	for _, net := range []struct {
		name string
		mbps float64
	}{{"100Mb", 12.8}, {"1Gb", 131.072}, {"10Gb", 1310.72}} {
		net := net
		b.Run(net.name, func(b *testing.B) {
			params := hw.DefaultParams()
			params.NetKBPerMS = net.mbps
			for i := 0; i < b.N; i++ {
				res := runCC(trace.Rutgers, &params, core.Config{
					Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster,
				})
				b.ReportMetric(res.Throughput, "req_per_s")
			}
		})
	}
}

func BenchmarkAblationWholeFile(b *testing.B) {
	params := hw.DefaultParams()
	base := core.Config{Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster}
	for i := 0; i < b.N; i++ {
		blockBased := runCC(trace.Rutgers, &params, base)
		wf := base
		wf.WholeFile = true
		whole := runCC(trace.Rutgers, &params, wf)
		if blockBased.Throughput > 0 {
			b.ReportMetric(whole.Throughput/blockBased.Throughput, "wholefile_speedup")
		}
	}
}

func BenchmarkExtLARDComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(benchOpts())
		fig := h.Extended(trace.Rutgers, 8)
		l2s := fig.SeriesFor(experiments.VariantL2S)
		lardr := fig.SeriesFor(experiments.VariantLARDR)
		last := len(l2s.Y) - 1
		if l2s.Y[last] > 0 {
			b.ReportMetric(lardr.Y[last]/l2s.Y[last], "lardr_vs_l2s")
		}
	}
}

func BenchmarkAblationTCPHandoff(b *testing.B) {
	// Bianchini & Carrera report TCP hand-off is worth ≈7% to L2S; §6
	// names it as one of the remaining CC-vs-L2S differences.
	params := hw.DefaultParams()
	tr := trace.Rutgers.Generate(1, float64(benchRequests)/float64(trace.Rutgers.NumRequests))
	run := func(noHandoff bool) float64 {
		eng := sim.NewEngine(1)
		s := l2s.New(eng, &params, tr, l2s.Config{
			Nodes: 8, MemoryPerNode: 256 << 20, NoHandoff: noHandoff,
		})
		return workload.Run(eng, s, tr, workload.Config{}).Throughput
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if without > 0 {
			b.ReportMetric(with/without, "handoff_speedup")
		}
	}
}

func BenchmarkExtNChance(b *testing.B) {
	// Dahlin's client-side N-chance vs the paper's master-preserving
	// policy: quantifies §2's claim that the server setting changes the
	// trade-offs.
	params := hw.DefaultParams()
	for i := 0; i < b.N; i++ {
		master := runCC(trace.Rutgers, &params, core.Config{
			Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyMaster,
		})
		nchance := runCC(trace.Rutgers, &params, core.Config{
			Nodes: 8, MemoryPerNode: 16 << 20, Policy: core.PolicyNChance,
		})
		if nchance.Throughput > 0 {
			b.ReportMetric(master.Throughput/nchance.Throughput, "master_vs_nchance")
		}
	}
}

func BenchmarkExtHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(experiments.Options{Seed: 1, TargetRequests: benchRequests})
		res := h.Hotspot(trace.Rutgers, 8, 16, 0.5)
		if res.Baseline.Throughput > 0 {
			b.ReportMetric(res.Concentrated.Throughput/res.Baseline.Throughput, "hotspot_vs_rr")
		}
	}
}

// --- Live middleware ---

func BenchmarkLiveMiddlewareRead(b *testing.B) {
	geom := block.DefaultGeometry
	sizes := map[block.FileID]int64{}
	for f := 0; f < 16; f++ {
		sizes[block.FileID(f)] = 32 * 1024
	}
	const k = 3
	nodes := make([]*middleware.Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		n, err := middleware.Start(middleware.Config{
			ID: i, CapacityBlocks: 256, Policy: core.PolicyMaster,
			Geometry: geom, Source: middleware.NewMemSource(geom, sizes),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	// Warm the cluster.
	for f := 0; f < 16; f++ {
		if _, err := client.Read(block.FileID(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(block.FileID(i % 16)); err != nil {
			b.Fatal(err)
		}
	}
}
