package cache

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/sim"
)

// CopyRegistry tracks how many in-memory copies of each file exist across
// the cluster. It is the "perfect global knowledge" counterpart that L2S's
// de-replication algorithm consults to keep at least one copy of each file
// in memory whenever possible (§4.1). The same optimistic assumption is
// granted to the cooperative caching layer's directory, keeping the
// comparison fair.
type CopyRegistry struct {
	copies map[block.FileID]int
}

// NewCopyRegistry returns an empty registry.
func NewCopyRegistry() *CopyRegistry {
	return &CopyRegistry{copies: make(map[block.FileID]int)}
}

// Copies reports the cluster-wide in-memory copy count of f.
func (r *CopyRegistry) Copies(f block.FileID) int { return r.copies[f] }

// Add records a new in-memory copy.
func (r *CopyRegistry) Add(f block.FileID) { r.copies[f]++ }

// Drop records the removal of a copy.
func (r *CopyRegistry) Drop(f block.FileID) {
	if r.copies[f] <= 0 {
		panic(fmt.Sprintf("cache: registry underflow for file %d", f))
	}
	r.copies[f]--
	if r.copies[f] == 0 {
		delete(r.copies, f)
	}
}

// fentry is one cached whole file.
type fentry struct {
	file       block.FileID
	size       int64
	age        sim.Time
	prev, next *fentry
}

// FileCache is the whole-file LRU cache used by the L2S baseline, with the
// de-replication eviction preference: when space is needed, the oldest file
// that has another in-memory copy elsewhere is evicted first; only when the
// node holds nothing but last copies does it fall back to plain LRU.
type FileCache struct {
	capacity int64 // bytes
	used     int64
	entries  map[block.FileID]*fentry
	head     *fentry // oldest
	tail     *fentry // youngest
	registry *CopyRegistry

	// OnEvict, if set, is called after a file leaves the cache (by eviction
	// or removal). L2S uses it to retarget request distribution away from
	// nodes that de-replicated a file.
	OnEvict func(block.FileID)
}

// NewFileCache returns a file cache of capacity bytes sharing registry.
func NewFileCache(capacity int64, registry *CopyRegistry) *FileCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive file cache capacity %d", capacity))
	}
	return &FileCache{
		capacity: capacity,
		entries:  make(map[block.FileID]*fentry),
		registry: registry,
	}
}

// Used reports the bytes currently cached.
func (c *FileCache) Used() int64 { return c.used }

// Cap reports the capacity in bytes.
func (c *FileCache) Cap() int64 { return c.capacity }

// Len reports the number of cached files.
func (c *FileCache) Len() int { return len(c.entries) }

// Contains reports whether f is cached, without touching LRU order.
func (c *FileCache) Contains(f block.FileID) bool {
	_, ok := c.entries[f]
	return ok
}

// Touch records an access to f at now; reports whether it was present.
func (c *FileCache) Touch(f block.FileID, now sim.Time) bool {
	e, ok := c.entries[f]
	if !ok {
		return false
	}
	e.age = now
	c.unlink(e)
	c.linkYoungest(e)
	return true
}

// Insert caches file f of the given size, evicting per the de-replication
// policy until it fits. Files larger than the whole cache are rejected
// (returned false) rather than flushing everything.
func (c *FileCache) Insert(f block.FileID, size int64, now sim.Time) bool {
	if size > c.capacity {
		return false
	}
	if c.Contains(f) {
		panic(fmt.Sprintf("cache: duplicate file insert %d", f))
	}
	for c.used+size > c.capacity {
		if !c.evictOne() {
			return false
		}
	}
	e := &fentry{file: f, size: size, age: now}
	c.entries[f] = e
	c.linkYoungest(e)
	c.used += size
	c.registry.Add(f)
	return true
}

// Remove drops f, updating the registry; reports whether it was present.
func (c *FileCache) Remove(f block.FileID) bool {
	e, ok := c.entries[f]
	if !ok {
		return false
	}
	c.drop(e)
	return true
}

// evictOne removes one victim: the oldest replicated file among the
// dereplicationScan oldest entries if any, else the oldest file. The scan
// bound keeps eviction O(1) amortized; replicas are created for *hot* files,
// which under LRU churn drift toward the old end only when they have cooled,
// so a bounded scan finds them with high probability. Reports false when the
// cache is empty.
func (c *FileCache) evictOne() bool {
	if c.head == nil {
		return false
	}
	scanned := 0
	for e := c.head; e != nil && scanned < dereplicationScan; e = e.next {
		if c.registry.Copies(e.file) > 1 {
			c.drop(e)
			return true
		}
		scanned++
	}
	c.drop(c.head)
	return true
}

// dereplicationScan bounds the eviction scan for replicated victims.
const dereplicationScan = 128

func (c *FileCache) drop(e *fentry) {
	c.unlink(e)
	delete(c.entries, e.file)
	c.used -= e.size
	c.registry.Drop(e.file)
	if c.OnEvict != nil {
		c.OnEvict(e.file)
	}
}

func (c *FileCache) unlink(e *fentry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *FileCache) linkYoungest(e *fentry) {
	e.prev = c.tail
	e.next = nil
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
}

// checkInvariants validates structure; used by tests.
func (c *FileCache) checkInvariants() error {
	var used int64
	n := 0
	for e := c.head; e != nil; e = e.next {
		used += e.size
		n++
		if _, ok := c.entries[e.file]; !ok {
			return fmt.Errorf("cache: listed file %d not in map", e.file)
		}
	}
	if n != len(c.entries) {
		return fmt.Errorf("cache: file list %d entries, map %d", n, len(c.entries))
	}
	if used != c.used {
		return fmt.Errorf("cache: used %d, counted %d", c.used, used)
	}
	if used > c.capacity {
		return fmt.Errorf("cache: over capacity")
	}
	return nil
}
