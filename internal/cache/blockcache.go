// Package cache implements the per-node memory caches: the block cache used
// by the cooperative caching middleware (with the master/non-master
// distinction its replacement policies need) and the whole-file cache used
// by the L2S baseline.
package cache

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/sim"
)

// Entry is one cached block.
type entry struct {
	id     block.ID
	master bool
	age    sim.Time // last access (virtual) time; LRU order key

	// intrusive links: all-blocks list, ordered oldest→youngest
	prev, next *entry
	// intrusive links: non-master sublist, ordered oldest→youngest
	nmPrev, nmNext *entry
}

// BlockCache is a fixed-capacity block cache with global-LRU ordering and a
// secondary LRU over non-master copies only. Both orderings are needed by
// the paper's replacement policies: basic cooperative caching evicts the
// locally oldest block (giving masters a second chance via forwarding),
// while the master-preserving variant evicts the oldest *non-master* copy
// whenever one exists.
type BlockCache struct {
	capacity int
	entries  map[block.ID]*entry

	head, tail     *entry // all blocks: head = oldest
	nmHead, nmTail *entry // non-master copies: head = oldest

	masters int
}

// NewBlockCache returns a cache holding at most capacity blocks.
func NewBlockCache(capacity int) *BlockCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	return &BlockCache{
		capacity: capacity,
		entries:  make(map[block.ID]*entry, capacity),
	}
}

// Len reports the number of cached blocks.
func (c *BlockCache) Len() int { return len(c.entries) }

// Cap reports the capacity in blocks.
func (c *BlockCache) Cap() int { return c.capacity }

// Full reports whether an insertion requires an eviction first.
func (c *BlockCache) Full() bool { return len(c.entries) >= c.capacity }

// Masters reports how many cached blocks are master copies.
func (c *BlockCache) Masters() int { return c.masters }

// NonMasters reports how many cached blocks are non-master copies.
func (c *BlockCache) NonMasters() int { return len(c.entries) - c.masters }

// Contains reports whether id is cached, without touching its LRU position.
func (c *BlockCache) Contains(id block.ID) bool {
	_, ok := c.entries[id]
	return ok
}

// IsMaster reports whether id is cached as a master copy.
func (c *BlockCache) IsMaster(id block.ID) bool {
	e, ok := c.entries[id]
	return ok && e.master
}

// Touch records an access to id at time now, moving it to the young end.
// It reports whether the block was present.
func (c *BlockCache) Touch(id block.ID, now sim.Time) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	if now < e.age {
		panic("cache: Touch with time before last access")
	}
	e.age = now
	c.unlink(e)
	c.linkYoungest(e)
	if !e.master {
		c.nmUnlink(e)
		c.nmLinkYoungest(e)
	}
	return true
}

// Insert adds id with the given access age. The caller must have made room
// (Insert panics if the cache is full or the block already present — both
// indicate protocol bugs in the caller). age may be older than resident
// blocks (a forwarded master carries its original age); the entry is placed
// in age order.
func (c *BlockCache) Insert(id block.ID, master bool, age sim.Time) {
	if c.Full() {
		panic("cache: Insert into full cache")
	}
	if _, ok := c.entries[id]; ok {
		panic(fmt.Sprintf("cache: duplicate insert of %v", id))
	}
	e := &entry{id: id, master: master, age: age}
	c.entries[id] = e
	c.linkOrdered(e)
	if master {
		c.masters++
	} else {
		c.nmLinkOrdered(e)
	}
}

// Remove drops id from the cache; it reports whether it was present and
// whether it was a master copy.
func (c *BlockCache) Remove(id block.ID) (present, master bool) {
	e, ok := c.entries[id]
	if !ok {
		return false, false
	}
	c.drop(e)
	return true, e.master
}

// Promote marks a cached non-master copy as the master (used when a
// forwarded master lands on a node already holding a replica).
func (c *BlockCache) Promote(id block.ID) bool {
	e, ok := c.entries[id]
	if !ok || e.master {
		return false
	}
	e.master = true
	c.masters++
	c.nmUnlink(e)
	return true
}

// Oldest returns the globally oldest cached block without removing it.
// ok is false when the cache is empty.
func (c *BlockCache) Oldest() (id block.ID, master bool, age sim.Time, ok bool) {
	if c.head == nil {
		return block.ID{}, false, 0, false
	}
	return c.head.id, c.head.master, c.head.age, true
}

// OldestAge reports the age of the oldest block; ok is false when empty.
func (c *BlockCache) OldestAge() (sim.Time, bool) {
	if c.head == nil {
		return 0, false
	}
	return c.head.age, true
}

// OldestNonMaster returns the oldest non-master copy, if any.
func (c *BlockCache) OldestNonMaster() (id block.ID, age sim.Time, ok bool) {
	if c.nmHead == nil {
		return block.ID{}, 0, false
	}
	return c.nmHead.id, c.nmHead.age, true
}

// EvictOldest removes and returns the oldest block.
func (c *BlockCache) EvictOldest() (id block.ID, master bool, age sim.Time, ok bool) {
	if c.head == nil {
		return block.ID{}, false, 0, false
	}
	e := c.head
	c.drop(e)
	return e.id, e.master, e.age, true
}

// EvictOldestNonMaster removes and returns the oldest non-master copy.
func (c *BlockCache) EvictOldestNonMaster() (id block.ID, age sim.Time, ok bool) {
	if c.nmHead == nil {
		return block.ID{}, 0, false
	}
	e := c.nmHead
	c.drop(e)
	return e.id, e.age, true
}

func (c *BlockCache) drop(e *entry) {
	c.unlink(e)
	if e.master {
		c.masters--
	} else {
		c.nmUnlink(e)
	}
	delete(c.entries, e.id)
}

// --- intrusive list plumbing (all-blocks list) ---

func (c *BlockCache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *BlockCache) linkYoungest(e *entry) {
	e.prev = c.tail
	e.next = nil
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
}

// linkOrdered inserts e in age order. Almost all insertions are youngest
// (age = now); forwarded masters are near-oldest, so we scan from whichever
// end is closer in expectation: youngest first, falling back to a walk.
func (c *BlockCache) linkOrdered(e *entry) {
	if c.tail == nil || c.tail.age <= e.age {
		c.linkYoungest(e)
		return
	}
	// Walk from the old end; forwarded blocks belong near the head.
	cur := c.head
	for cur != nil && cur.age <= e.age {
		cur = cur.next
	}
	// Insert before cur.
	if cur == nil {
		c.linkYoungest(e)
		return
	}
	e.next = cur
	e.prev = cur.prev
	if cur.prev != nil {
		cur.prev.next = e
	} else {
		c.head = e
	}
	cur.prev = e
}

// --- non-master sublist plumbing ---

func (c *BlockCache) nmUnlink(e *entry) {
	if e.nmPrev != nil {
		e.nmPrev.nmNext = e.nmNext
	} else {
		c.nmHead = e.nmNext
	}
	if e.nmNext != nil {
		e.nmNext.nmPrev = e.nmPrev
	} else {
		c.nmTail = e.nmPrev
	}
	e.nmPrev, e.nmNext = nil, nil
}

func (c *BlockCache) nmLinkYoungest(e *entry) {
	e.nmPrev = c.nmTail
	e.nmNext = nil
	if c.nmTail != nil {
		c.nmTail.nmNext = e
	} else {
		c.nmHead = e
	}
	c.nmTail = e
}

func (c *BlockCache) nmLinkOrdered(e *entry) {
	if c.nmTail == nil || c.nmTail.age <= e.age {
		c.nmLinkYoungest(e)
		return
	}
	cur := c.nmHead
	for cur != nil && cur.age <= e.age {
		cur = cur.nmNext
	}
	if cur == nil {
		c.nmLinkYoungest(e)
		return
	}
	e.nmNext = cur
	e.nmPrev = cur.nmPrev
	if cur.nmPrev != nil {
		cur.nmPrev.nmNext = e
	} else {
		c.nmHead = e
	}
	cur.nmPrev = e
}

// checkInvariants validates the internal structure; used by tests.
func (c *BlockCache) checkInvariants() error {
	// List order must be nondecreasing age; counts must match.
	n, masters := 0, 0
	var last sim.Time = -1 << 62
	for e := c.head; e != nil; e = e.next {
		if e.age < last {
			return fmt.Errorf("cache: LRU order violated at %v", e.id)
		}
		last = e.age
		n++
		if e.master {
			masters++
		}
		if _, ok := c.entries[e.id]; !ok {
			return fmt.Errorf("cache: listed block %v not in map", e.id)
		}
	}
	if n != len(c.entries) {
		return fmt.Errorf("cache: list has %d entries, map %d", n, len(c.entries))
	}
	if masters != c.masters {
		return fmt.Errorf("cache: master count %d, counted %d", c.masters, masters)
	}
	nm := 0
	last = -1 << 62
	for e := c.nmHead; e != nil; e = e.nmNext {
		if e.master {
			return fmt.Errorf("cache: master %v in non-master list", e.id)
		}
		if e.age < last {
			return fmt.Errorf("cache: non-master order violated at %v", e.id)
		}
		last = e.age
		nm++
	}
	if nm != len(c.entries)-c.masters {
		return fmt.Errorf("cache: non-master list has %d, want %d", nm, len(c.entries)-c.masters)
	}
	if len(c.entries) > c.capacity {
		return fmt.Errorf("cache: over capacity: %d > %d", len(c.entries), c.capacity)
	}
	return nil
}
