package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/sim"
)

func fid(i int) block.FileID { return block.FileID(i) }

func TestFileCacheInsertAndTouch(t *testing.T) {
	reg := NewCopyRegistry()
	c := NewFileCache(100, reg)
	if !c.Insert(fid(1), 40, 10) || !c.Insert(fid(2), 40, 20) {
		t.Fatal("inserts failed")
	}
	if c.Used() != 80 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	if reg.Copies(fid(1)) != 1 {
		t.Fatalf("registry copies = %d", reg.Copies(fid(1)))
	}
	if !c.Touch(fid(1), 30) || c.Touch(fid(9), 30) {
		t.Fatal("Touch wrong")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileCacheLRUEviction(t *testing.T) {
	reg := NewCopyRegistry()
	c := NewFileCache(100, reg)
	c.Insert(fid(1), 40, 10)
	c.Insert(fid(2), 40, 20)
	c.Touch(fid(1), 30)
	// Inserting 40 more evicts the oldest: file 2.
	c.Insert(fid(3), 40, 40)
	if c.Contains(fid(2)) || !c.Contains(fid(1)) || !c.Contains(fid(3)) {
		t.Fatal("LRU eviction picked wrong victim")
	}
	if reg.Copies(fid(2)) != 0 {
		t.Fatal("registry not updated on eviction")
	}
}

func TestDereplicationPreference(t *testing.T) {
	reg := NewCopyRegistry()
	a := NewFileCache(100, reg)
	b := NewFileCache(100, reg)
	// File 1 cached on both nodes (a replica); file 2 only on a, and older
	// than nothing — file 1 on a is youngest.
	a.Insert(fid(2), 50, 10) // last copy, oldest
	a.Insert(fid(1), 50, 20)
	b.Insert(fid(1), 50, 20)
	// Now a needs space: plain LRU would evict file 2 (oldest), but file 1
	// has another copy on b, so de-replication evicts file 1 instead.
	if !a.Insert(fid(3), 50, 30) {
		t.Fatal("insert failed")
	}
	if !a.Contains(fid(2)) {
		t.Fatal("last copy evicted despite replica being available")
	}
	if a.Contains(fid(1)) {
		t.Fatal("replica survived")
	}
	if reg.Copies(fid(1)) != 1 {
		t.Fatalf("file1 copies = %d, want 1 (still on b)", reg.Copies(fid(1)))
	}
}

func TestFileCacheOversizedRejected(t *testing.T) {
	reg := NewCopyRegistry()
	c := NewFileCache(100, reg)
	c.Insert(fid(1), 60, 10)
	if c.Insert(fid(2), 200, 20) {
		t.Fatal("oversized file accepted")
	}
	if !c.Contains(fid(1)) {
		t.Fatal("oversized insert flushed existing content")
	}
}

func TestFileCacheRemove(t *testing.T) {
	reg := NewCopyRegistry()
	c := NewFileCache(100, reg)
	c.Insert(fid(1), 60, 10)
	if !c.Remove(fid(1)) || c.Remove(fid(1)) {
		t.Fatal("Remove semantics wrong")
	}
	if c.Used() != 0 || reg.Copies(fid(1)) != 0 {
		t.Fatal("Remove did not release space/registry")
	}
}

func TestCopyRegistryUnderflowPanics(t *testing.T) {
	reg := NewCopyRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	reg.Drop(fid(1))
}

func TestFileCachePanics(t *testing.T) {
	reg := NewCopyRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewFileCache(0, reg)
}

func TestFileCacheDuplicatePanics(t *testing.T) {
	reg := NewCopyRegistry()
	c := NewFileCache(100, reg)
	c.Insert(fid(1), 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert accepted")
		}
	}()
	c.Insert(fid(1), 10, 2)
}

// Property: two caches sharing a registry never drive it negative, never
// exceed capacity, and registry counts equal actual residency.
func TestFileCacheRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := NewCopyRegistry()
		caches := []*FileCache{NewFileCache(500, reg), NewFileCache(500, reg)}
		now := sim.Time(0)
		for op := 0; op < 1500; op++ {
			now += sim.Time(rng.Intn(3) + 1)
			c := caches[rng.Intn(2)]
			f := fid(rng.Intn(10))
			switch rng.Intn(3) {
			case 0:
				if !c.Contains(f) {
					c.Insert(f, int64(rng.Intn(200)+1), now)
				}
			case 1:
				c.Touch(f, now)
			case 2:
				c.Remove(f)
			}
			for _, cc := range caches {
				if err := cc.checkInvariants(); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
			}
			// Cross-check registry against residency.
			for i := 0; i < 10; i++ {
				want := 0
				for _, cc := range caches {
					if cc.Contains(fid(i)) {
						want++
					}
				}
				if reg.Copies(fid(i)) != want {
					t.Logf("seed %d: registry %d, residency %d", seed, reg.Copies(fid(i)), want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
