package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/sim"
)

func bid(f, i int) block.ID { return block.ID{File: block.FileID(f), Idx: int32(i)} }

func TestBlockCacheBasics(t *testing.T) {
	c := NewBlockCache(3)
	c.Insert(bid(1, 0), true, 10)
	c.Insert(bid(1, 1), false, 20)
	c.Insert(bid(2, 0), true, 30)
	if c.Len() != 3 || !c.Full() {
		t.Fatalf("Len=%d Full=%v", c.Len(), c.Full())
	}
	if c.Masters() != 2 || c.NonMasters() != 1 {
		t.Fatalf("masters=%d nonmasters=%d", c.Masters(), c.NonMasters())
	}
	if !c.Contains(bid(1, 0)) || c.Contains(bid(9, 9)) {
		t.Fatal("Contains wrong")
	}
	if !c.IsMaster(bid(1, 0)) || c.IsMaster(bid(1, 1)) {
		t.Fatal("IsMaster wrong")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictOldestOrder(t *testing.T) {
	c := NewBlockCache(3)
	c.Insert(bid(1, 0), true, 10)
	c.Insert(bid(1, 1), true, 20)
	c.Insert(bid(1, 2), true, 30)
	c.Touch(bid(1, 0), 40) // 1:0 becomes youngest
	id, master, age, ok := c.EvictOldest()
	if !ok || id != bid(1, 1) || !master || age != 20 {
		t.Fatalf("evicted %v master=%v age=%v", id, master, age)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOldestNonMaster(t *testing.T) {
	c := NewBlockCache(4)
	c.Insert(bid(1, 0), true, 10)  // oldest overall, master
	c.Insert(bid(1, 1), false, 20) // oldest non-master
	c.Insert(bid(1, 2), false, 30)
	c.Insert(bid(1, 3), true, 40)
	if id, _, _, _ := c.Oldest(); id != bid(1, 0) {
		t.Fatalf("Oldest = %v", id)
	}
	id, age, ok := c.OldestNonMaster()
	if !ok || id != bid(1, 1) || age != 20 {
		t.Fatalf("OldestNonMaster = %v age=%d ok=%v", id, age, ok)
	}
	// The master-preserving policy: evict the non-master even though a
	// master is older.
	eid, _, ok := c.EvictOldestNonMaster()
	if !ok || eid != bid(1, 1) {
		t.Fatalf("EvictOldestNonMaster = %v", eid)
	}
	if c.Masters() != 2 || c.NonMasters() != 1 {
		t.Fatalf("counts after evict: %d/%d", c.Masters(), c.NonMasters())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertWithOldAgeOrdering(t *testing.T) {
	// A forwarded master carries its original (old) age and must land in
	// age order, becoming eviction candidate before younger blocks.
	c := NewBlockCache(3)
	c.Insert(bid(1, 0), false, 100)
	c.Insert(bid(1, 1), false, 200)
	c.Insert(bid(9, 9), true, 50) // forwarded master, older than everything
	id, master, age, ok := c.EvictOldest()
	if !ok || id != bid(9, 9) || !master || age != 50 {
		t.Fatalf("evicted %v (master=%v age=%d)", id, master, age)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMiddleAge(t *testing.T) {
	c := NewBlockCache(4)
	c.Insert(bid(1, 0), false, 100)
	c.Insert(bid(1, 1), false, 300)
	c.Insert(bid(9, 9), true, 200)
	// Order should be 100, 200, 300.
	var ages []sim.Time
	for {
		_, _, age, ok := c.EvictOldest()
		if !ok {
			break
		}
		ages = append(ages, age)
	}
	want := []sim.Time{100, 200, 300}
	for i := range want {
		if ages[i] != want[i] {
			t.Fatalf("eviction ages %v, want %v", ages, want)
		}
	}
}

func TestPromote(t *testing.T) {
	c := NewBlockCache(2)
	c.Insert(bid(1, 0), false, 10)
	if !c.Promote(bid(1, 0)) {
		t.Fatal("Promote failed")
	}
	if !c.IsMaster(bid(1, 0)) || c.Masters() != 1 || c.NonMasters() != 0 {
		t.Fatal("promotion not reflected")
	}
	if c.Promote(bid(1, 0)) {
		t.Fatal("double promote succeeded")
	}
	if c.Promote(bid(5, 5)) {
		t.Fatal("promote of absent block succeeded")
	}
	if _, _, ok := c.OldestNonMaster(); ok {
		t.Fatal("promoted block still in non-master list")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	c := NewBlockCache(2)
	c.Insert(bid(1, 0), true, 10)
	present, master := c.Remove(bid(1, 0))
	if !present || !master || c.Len() != 0 {
		t.Fatalf("Remove: present=%v master=%v len=%d", present, master, c.Len())
	}
	if present, _ := c.Remove(bid(1, 0)); present {
		t.Fatal("double remove reported present")
	}
}

func TestTouchMissingAndEmptyQueries(t *testing.T) {
	c := NewBlockCache(2)
	if c.Touch(bid(1, 0), 5) {
		t.Fatal("Touch of absent block returned true")
	}
	if _, _, _, ok := c.Oldest(); ok {
		t.Fatal("Oldest on empty returned ok")
	}
	if _, ok := c.OldestAge(); ok {
		t.Fatal("OldestAge on empty returned ok")
	}
	if _, _, _, ok := c.EvictOldest(); ok {
		t.Fatal("EvictOldest on empty returned ok")
	}
	if _, _, ok := c.EvictOldestNonMaster(); ok {
		t.Fatal("EvictOldestNonMaster on empty returned ok")
	}
}

func TestInsertPanics(t *testing.T) {
	c := NewBlockCache(1)
	c.Insert(bid(1, 0), true, 10)
	assertPanics(t, "full insert", func() { c.Insert(bid(1, 1), true, 20) })
	c2 := NewBlockCache(2)
	c2.Insert(bid(1, 0), true, 10)
	assertPanics(t, "duplicate insert", func() { c2.Insert(bid(1, 0), true, 20) })
	assertPanics(t, "zero capacity", func() { NewBlockCache(0) })
	assertPanics(t, "touch back in time", func() { c2.Touch(bid(1, 0), 5) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

// Property: under a random op sequence, all structural invariants hold and
// the cache never exceeds capacity.
func TestBlockCacheRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewBlockCache(16)
		now := sim.Time(0)
		for op := 0; op < 2000; op++ {
			now += sim.Time(rng.Intn(5))
			id := bid(rng.Intn(4), rng.Intn(8))
			switch rng.Intn(6) {
			case 0, 1:
				if !c.Contains(id) {
					if c.Full() {
						c.EvictOldest()
					}
					c.Insert(id, rng.Intn(2) == 0, now)
				}
			case 2:
				c.Touch(id, now)
			case 3:
				c.Remove(id)
			case 4:
				c.EvictOldestNonMaster()
			case 5:
				c.Promote(id)
			}
			if err := c.checkInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
