package l2s

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

var testParams = hw.DefaultParams()

func testTrace(sizes ...int64) *trace.Trace {
	tr := &trace.Trace{Name: "test"}
	for i, sz := range sizes {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(i), Size: sz})
	}
	return tr
}

func newServer(tr *trace.Trace, cfg Config) (*sim.Engine, *Server) {
	eng := sim.NewEngine(1)
	return eng, New(eng, &testParams, tr, cfg)
}

func TestColdRequestWholeFileRead(t *testing.T) {
	tr := testTrace(20 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20})
	served := false
	s.Dispatch(0, 0, func() { served = true })
	eng.RunUntilIdle()
	if !served {
		t.Fatal("request not served")
	}
	st := s.CacheStats()
	if st.Accesses != 1 || st.DiskReads != 1 || st.LocalHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	servers := s.Servers(0)
	if len(servers) != 1 {
		t.Fatalf("assignment = %v, want exactly one server", servers)
	}
	// One contiguous whole-file read.
	total := s.Hardware().Disks[0].Reads() + s.Hardware().Disks[1].Reads()
	if total != 1 {
		t.Fatalf("disk reads = %d, want 1", total)
	}
}

func TestContentAwareMigration(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 1 << 20})
	// Prime: request via node 0 assigns a server.
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	target := int(s.Servers(0)[0])
	s.ResetStats()
	// Requests entering at every other node must be handed off to target
	// and hit its memory.
	for n := 0; n < 4; n++ {
		s.Dispatch(n, 0, nil)
	}
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.LocalHits != 4 || st.DiskReads != 0 {
		t.Fatalf("stats = %+v, want 4 memory hits", st)
	}
	wantHandoffs := uint64(3) // the request entering at target needs none
	if st.Handoffs != wantHandoffs {
		t.Fatalf("handoffs = %d, want %d", st.Handoffs, wantHandoffs)
	}
	if len(s.Servers(0)) != 1 || int(s.Servers(0)[0]) != target {
		t.Fatalf("assignment changed: %v", s.Servers(0))
	}
}

func TestSingleCopyInClusterMemory(t *testing.T) {
	// Many files, requests from all nodes: each file must end up cached on
	// exactly one node (no replication without overload).
	tr := testTrace(8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 1 << 20})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(8)), nil)
		if i%5 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	for f := 0; f < 8; f++ {
		copies := 0
		for n := 0; n < 4; n++ {
			if s.NodeCache(n).Contains(block.FileID(f)) {
				copies++
			}
		}
		if copies != 1 {
			t.Errorf("file %d has %d in-memory copies, want 1", f, copies)
		}
	}
	if s.CacheStats().Replications != 0 {
		t.Errorf("replications = %d under light load", s.CacheStats().Replications)
	}
}

func TestReplicationUnderOverload(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{
		Nodes: 4, MemoryPerNode: 1 << 20,
		ReplicationLoadFactor: 1.5, ReplicationMinLoad: 4,
	})
	// Prime the assignment.
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	// Hammer the hot file from every node without draining: the assigned
	// server's outstanding load forces replication.
	done := 0
	for i := 0; i < 64; i++ {
		s.Dispatch(i%4, 0, func() { done++ })
	}
	eng.RunUntilIdle()
	if done != 64 {
		t.Fatalf("served %d of 64", done)
	}
	st := s.CacheStats()
	if st.Replications == 0 {
		t.Fatal("hot file was never replicated under overload")
	}
	if len(s.Servers(0)) < 2 {
		t.Fatalf("servers = %v, want ≥2 after replication", s.Servers(0))
	}
}

func TestDereplicationRetargets(t *testing.T) {
	tr := testTrace(8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	target := int(s.Servers(0)[0])
	other := 1 - target
	// Manually add a replica on the other node, then evict it: the
	// assignment must retarget to the surviving copy.
	s.assign[0] = append(s.assign[0], int16(other))
	s.NodeCache(other).Insert(0, 8*1024, eng.Now())
	s.NodeCache(other).Remove(0)
	if len(s.Servers(0)) != 1 || int(s.Servers(0)[0]) != target {
		t.Fatalf("assignment after de-replication = %v, want [%d]", s.Servers(0), target)
	}
}

func TestLastServerKeptDespiteEviction(t *testing.T) {
	tr := testTrace(8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	target := int(s.Servers(0)[0])
	s.NodeCache(target).Remove(0)
	if len(s.Servers(0)) != 1 {
		t.Fatalf("sole server dropped from assignment: %v", s.Servers(0))
	}
}

func TestNoHandoffProxiesThroughEntry(t *testing.T) {
	run := func(noHandoff bool) sim.Duration {
		tr := testTrace(64 * 1024)
		eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, NoHandoff: noHandoff})
		s.Dispatch(0, 0, nil) // warm the assigned server
		eng.RunUntilIdle()
		target := int(s.Servers(0)[0])
		entry := 1 - target // enter at the other node → migration needed
		var start, end sim.Time
		start = eng.Now()
		s.Dispatch(entry, 0, func() { end = eng.Now() })
		eng.RunUntilIdle()
		return end.Sub(start)
	}
	withHandoff, proxied := run(false), run(true)
	if proxied <= withHandoff {
		t.Fatalf("proxied response (%v) not slower than TCP hand-off (%v)", proxied, withHandoff)
	}
}

func TestPendingCoalescing(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20})
	done := 0
	for i := 0; i < 3; i++ {
		s.Dispatch(0, 0, func() { done++ })
	}
	eng.RunUntilIdle()
	if done != 3 {
		t.Fatalf("served %d of 3", done)
	}
	if got := s.Hardware().Disks[0].Reads(); got != 1 {
		t.Fatalf("disk reads = %d, want 1 (coalesced)", got)
	}
}

func TestLoadAccounting(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	for i := 0; i < 2; i++ {
		if s.Load(i) != 0 {
			t.Fatalf("node %d load = %d after idle, want 0", i, s.Load(i))
		}
	}
}

func TestOversizedFileServedUncached(t *testing.T) {
	tr := testTrace(2 << 20) // larger than node memory
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20})
	done := 0
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("oversized file not served")
	}
	if s.NodeCache(0).Len() != 0 {
		t.Fatal("oversized file cached")
	}
	// And it can be served again (another disk read).
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 2 {
		t.Fatal("second oversized request failed")
	}
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(1024)
	eng := sim.NewEngine(1)
	for name, cfg := range map[string]Config{
		"no nodes":  {MemoryPerNode: 1 << 20},
		"no memory": {Nodes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(eng, &testParams, tr, cfg)
		}()
	}
	s := New(eng, &testParams, tr, Config{Nodes: 1, MemoryPerNode: 1 << 20})
	defer func() {
		if recover() == nil {
			t.Error("bad dispatch node: no panic")
		}
	}()
	s.Dispatch(9, 0, nil)
}

// Soak: random workload completes, registry counts match residency, and the
// one-copy tendency holds for never-overloaded runs.
func TestRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sizes := make([]int64, 30)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(48*1024) + 512)
	}
	tr := testTrace(sizes...)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 256 * 1024})
	done := 0
	for i := 0; i < 500; i++ {
		s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(30)), func() { done++ })
		if i%6 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if done != 500 {
		t.Fatalf("served %d of 500", done)
	}
	st := s.CacheStats()
	if st.Accesses != 500 || st.LocalHits+st.DiskReads != st.Accesses {
		t.Fatalf("accounting: %+v", st)
	}
}
