// Package l2s implements the locality-conscious baseline server the paper
// compares against (§4.1): Bianchini & Carrera's L2S, which uses content-
// and load-aware request distribution. L2S migrates all requests for a file
// to a single node so only one copy of each file is kept in cluster memory;
// under overload it replicates a subset of files, sacrificing memory
// efficiency for load balancing. Caching is whole-file, with a
// de-replication algorithm that behaves like local LRU but tries to keep at
// least one in-memory copy of every cached file. Requests reaching the
// wrong node are migrated by TCP hand-off, and every file resides on every
// node's disk.
package l2s

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes the L2S baseline.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// MemoryPerNode is each node's file cache size in bytes.
	MemoryPerNode int64
	// ReplicationLoadFactor: a file is replicated when its server's
	// outstanding load exceeds this multiple of the cluster average.
	// Zero means the default of 2.
	ReplicationLoadFactor float64
	// ReplicationMinLoad is the absolute outstanding-request floor below
	// which no replication happens. Zero means the default of 8.
	ReplicationMinLoad int
	// NoHandoff disables TCP hand-off: a migrated request's response is
	// proxied back through the entry node instead of flowing directly from
	// the serving node to the client. Bianchini & Carrera measured hand-off
	// worth ≈7%; this ablation reproduces that comparison.
	NoHandoff bool
	// Geometry is the on-disk layout (whole files are read as contiguous
	// block runs). Zero value means the 8 KB / 64 KB default.
	Geometry block.Geometry
}

// Server is the simulated L2S cluster server; it implements
// cluster.Backend.
type Server struct {
	cfg      Config
	hwc      *cluster.Hardware
	eng      *sim.Engine
	p        *hw.Params
	tr       *trace.Trace
	registry *cache.CopyRegistry
	nodes    []*l2sNode
	// assign maps each file to the nodes currently serving it (the content-
	// aware distribution state). Empty until first access.
	assign [][]int16
	// load is the outstanding-request count per node (the load-aware part).
	load  []int
	stats cluster.CacheStats
}

type l2sNode struct {
	idx     int
	cache   *cache.FileCache
	pending map[block.FileID][]func()
}

// New builds an L2S server over a fresh hardware substrate on eng. L2S
// always uses the scheduled disk queue: its whole-file reads are single
// contiguous requests, so the discipline matters little, but parity with
// the best CC variant keeps the comparison conservative.
func New(eng *sim.Engine, p *hw.Params, tr *trace.Trace, cfg Config) *Server {
	if cfg.Nodes <= 0 {
		panic("l2s: config needs Nodes > 0")
	}
	if cfg.MemoryPerNode <= 0 {
		panic("l2s: config needs MemoryPerNode > 0")
	}
	if cfg.Geometry == (block.Geometry{}) {
		cfg.Geometry = block.DefaultGeometry
	}
	if cfg.ReplicationLoadFactor == 0 {
		cfg.ReplicationLoadFactor = 2
	}
	if cfg.ReplicationMinLoad == 0 {
		cfg.ReplicationMinLoad = 8
	}
	hwc := cluster.NewHardware(eng, p, cfg.Geometry, cfg.Nodes, diskSched)
	s := &Server{
		cfg:      cfg,
		hwc:      hwc,
		eng:      eng,
		p:        p,
		tr:       tr,
		registry: cache.NewCopyRegistry(),
		nodes:    make([]*l2sNode, cfg.Nodes),
		assign:   make([][]int16, len(tr.Files)),
		load:     make([]int, cfg.Nodes),
	}
	for i := range s.nodes {
		n := &l2sNode{
			idx:     i,
			cache:   cache.NewFileCache(cfg.MemoryPerNode, s.registry),
			pending: make(map[block.FileID][]func()),
		}
		idx := i
		n.cache.OnEvict = func(f block.FileID) { s.onEvict(idx, f) }
		s.nodes[i] = n
	}
	return s
}

// Hardware implements cluster.Backend.
func (s *Server) Hardware() *cluster.Hardware { return s.hwc }

// CacheStats implements cluster.Backend.
func (s *Server) CacheStats() cluster.CacheStats { return s.stats }

// ResetStats implements cluster.Backend.
func (s *Server) ResetStats() { s.stats = cluster.CacheStats{} }

// Servers reports the nodes currently assigned to file f (tests/tools).
func (s *Server) Servers(f block.FileID) []int16 { return s.assign[f] }

// NodeCache exposes node i's file cache (tests/tools).
func (s *Server) NodeCache(i int) *cache.FileCache { return s.nodes[i].cache }

// Load reports node i's outstanding requests (tests/tools).
func (s *Server) Load(i int) int { return s.load[i] }

// Dispatch implements cluster.Backend: the request arrives at the round-
// robin-chosen entry node, is parsed, and is either served there or handed
// off to the file's assigned server.
func (s *Server) Dispatch(node int, file block.FileID, done func()) {
	if node < 0 || node >= len(s.nodes) {
		panic(fmt.Sprintf("l2s: dispatch to node %d of %d", node, len(s.nodes)))
	}
	entry := s.hwc.Nodes[node]
	s.hwc.Net.Send(nil, entry, int64(s.p.MsgHeader), func() {
		entry.CPU.Do(s.p.ParseTime, func() {
			target := s.route(file)
			s.load[target]++
			finish := func() {
				s.load[target]--
				if done != nil {
					done()
				}
			}
			if target == node {
				s.serveAt(target, file, target, finish)
				return
			}
			// TCP hand-off: migrate the connection; the response flows
			// directly from the target to the client. Without hand-off the
			// response is proxied back through the entry node.
			s.stats.Handoffs++
			replyVia := target
			if s.cfg.NoHandoff {
				replyVia = node
			}
			s.hwc.Net.SendMsg(entry, s.hwc.Nodes[target], func() {
				s.hwc.Nodes[target].CPU.Do(s.p.HandoffTime, func() {
					s.serveAt(target, file, replyVia, finish)
				})
			})
		})
	})
}

// route picks the serving node for file: the least-loaded current server,
// replicating onto a fresh node when the chosen server is overloaded.
func (s *Server) route(file block.FileID) int {
	servers := s.assign[file]
	if len(servers) == 0 {
		t := s.leastLoaded(nil)
		s.assign[file] = append(s.assign[file], int16(t))
		return t
	}
	t := int(servers[0])
	for _, c := range servers[1:] {
		if s.load[c] < s.load[t] {
			t = int(c)
		}
	}
	if s.overloaded(t) && len(servers) < len(s.nodes) {
		alt := s.leastLoaded(servers)
		if alt >= 0 && s.load[alt] < s.load[t] {
			s.assign[file] = append(s.assign[file], int16(alt))
			s.stats.Replications++
			return alt
		}
	}
	return t
}

// overloaded reports whether node t's outstanding load is both above the
// floor and above the configured multiple of the cluster average.
func (s *Server) overloaded(t int) bool {
	if s.load[t] < s.cfg.ReplicationMinLoad {
		return false
	}
	total := 0
	for _, l := range s.load {
		total += l
	}
	avg := float64(total) / float64(len(s.load))
	return float64(s.load[t]) > s.cfg.ReplicationLoadFactor*avg
}

// leastLoaded returns the node with minimum outstanding load, skipping
// members of exclude; -1 if every node is excluded.
func (s *Server) leastLoaded(exclude []int16) int {
	best := -1
	for i := range s.nodes {
		skip := false
		for _, e := range exclude {
			if int(e) == i {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if best < 0 || s.load[i] < s.load[best] {
			best = i
		}
	}
	return best
}

// onEvict retargets distribution when a node drops a file from memory: the
// node stops being one of the file's servers unless it is the last one (a
// sole server re-faults the file from its local disk on the next request,
// preserving the one-node-per-file property).
func (s *Server) onEvict(node int, f block.FileID) {
	servers := s.assign[f]
	if len(servers) <= 1 {
		return
	}
	for i, sv := range servers {
		if int(sv) == node {
			s.assign[f] = append(servers[:i], servers[i+1:]...)
			return
		}
	}
}

// serveAt serves file at node t: from memory if cached, otherwise via a
// whole-file read from t's local disk (every file is on every disk, §4.1).
// The response leaves the cluster at replyVia (t itself under TCP hand-off;
// the entry node when hand-off is disabled).
func (s *Server) serveAt(t int, file block.FileID, replyVia int, done func()) {
	n := s.nodes[t]
	s.stats.Accesses++
	size := s.tr.Size(file)
	if n.cache.Touch(file, s.eng.Now()) {
		s.stats.LocalHits++
		s.reply(t, replyVia, size, done)
		return
	}
	if waiters, ok := n.pending[file]; ok {
		// Another request is already faulting this file in; serve when it
		// lands. Counted as a disk access: the node did not have the file.
		s.stats.DiskReads++
		n.pending[file] = append(waiters, func() { s.reply(t, replyVia, size, done) })
		return
	}
	s.stats.DiskReads++
	n.pending[file] = nil
	nblocks := s.cfg.Geometry.Count(size)
	nodeHW := s.hwc.Nodes[t]
	s.hwc.Disks[t].Read(file, 0, nblocks, func() {
		nodeHW.Bus.Do(s.p.BusTransfer(size), func() {
			nodeHW.CPU.Do(s.p.FileReqTime(int(nblocks)), func() {
				n.cache.Insert(file, size, s.eng.Now())
				waiters := n.pending[file]
				delete(n.pending, file)
				s.reply(t, replyVia, size, done)
				for _, w := range waiters {
					w()
				}
			})
		})
	})
}

// reply sends the response to the client: directly from the serving node t
// (TCP hand-off), or proxied through replyVia, paying an extra intra-cluster
// transfer and the proxy's serving CPU.
func (s *Server) reply(t, replyVia int, size int64, done func()) {
	servingHW := s.hwc.Nodes[t]
	servingHW.CPU.Do(s.p.ServeTime(size), func() {
		if replyVia == t {
			s.hwc.Net.Send(servingHW, nil, size, done)
			return
		}
		proxyHW := s.hwc.Nodes[replyVia]
		s.hwc.Net.Send(servingHW, proxyHW, size, func() {
			proxyHW.CPU.Do(s.p.ServeTime(size), func() {
				s.hwc.Net.Send(proxyHW, nil, size, done)
			})
		})
	})
}

// diskSched is the queue discipline for L2S disks.
const diskSched = disk.Sequential
