// Package httpfront is the web-server layer of the paper's motivating
// scenario: an off-the-shelf HTTP front end over the cooperative caching
// middleware. Any gateway is a valid entry point for any request; when the
// client's membership view knows the file's home node, the gateway hands
// the request off there at connection time (the paper's §4.1 request
// hand-off, surfaced as a counter and a trace event) so the read enters
// where the blocks live. Responses stream through a middleware.FileReader
// in bounded chunks — the gateway never materializes a whole file — and
// http.ServeContent supplies Range, If-Range, HEAD, and conditional-GET
// semantics on top of it.
package httpfront

import (
	"fmt"
	"mime"
	"net/http"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/middleware"
	"repro/internal/obs"
)

// Resolver maps a URL path to a file ID. ok is false for unknown paths.
type Resolver interface {
	Resolve(urlPath string) (f block.FileID, ok bool)
}

// PathTable is a static Resolver backed by a map.
type PathTable struct {
	mu sync.RWMutex
	m  map[string]block.FileID
}

// NewPathTable builds a resolver from path → file ID entries. Paths should
// begin with "/".
func NewPathTable(entries map[string]block.FileID) *PathTable {
	cp := make(map[string]block.FileID, len(entries))
	for p, f := range entries {
		cp[p] = f
	}
	return &PathTable{m: cp}
}

// Resolve implements Resolver.
func (t *PathTable) Resolve(p string) (block.FileID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.m[p]
	return f, ok
}

// Add registers (or replaces) a path.
func (t *PathTable) Add(p string, f block.FileID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[p] = f
}

// Gateway serves HTTP from a middleware cluster.
type Gateway struct {
	client  *middleware.Client
	resolve Resolver
	tracer  *obs.Tracer
	handoff bool

	// gens holds per-file write generations feeding the ETag validator;
	// Invalidate bumps them so conditional GETs revalidate after a write.
	genMu sync.RWMutex
	gens  map[block.FileID]uint64

	nRequests    atomic.Uint64
	nHandoffs    atomic.Uint64
	nNotModified atomic.Uint64
	nNotFound    atomic.Uint64
	nRangeReqs   atomic.Uint64
	nErrors      atomic.Uint64
	nBytes       atomic.Uint64
}

// GatewayStats is a snapshot of a gateway's serving counters.
type GatewayStats struct {
	// Requests counts every request the gateway accepted for serving.
	Requests uint64 `json:"requests"`
	// Handoffs counts requests whose cluster entry point was forwarded to
	// the file's home node (§4.1 hand-off) instead of round-robin.
	Handoffs uint64 `json:"handoffs"`
	// NotModified counts 304 responses (zero block reads each).
	NotModified uint64 `json:"not_modified"`
	// NotFound counts 404s — unresolved paths and unknown cluster files.
	NotFound uint64 `json:"not_found"`
	// RangeRequests counts requests carrying a Range header.
	RangeRequests uint64 `json:"range_requests"`
	// Errors counts 5xx responses from cluster failures.
	Errors uint64 `json:"errors"`
	// BytesServed is the total response body bytes written.
	BytesServed uint64 `json:"bytes_served"`
}

// New builds a gateway over client using resolver, with locality hand-off
// enabled. The client's membership view is refreshed (best effort) so
// home placement is known from the first request.
func New(client *middleware.Client, resolver Resolver) *Gateway {
	g := &Gateway{
		client:  client,
		resolve: resolver,
		handoff: true,
		gens:    make(map[block.FileID]uint64),
	}
	client.RefreshMembership() //nolint:errcheck // best effort; gateway works round-robin without a view
	return g
}

// SetTracer installs a ring-buffer tracer recording "http_handoff" events.
func (g *Gateway) SetTracer(t *obs.Tracer) { g.tracer = t }

// SetHandoff toggles locality-aware entry-node selection (on by default).
func (g *Gateway) SetHandoff(on bool) { g.handoff = on }

// Stats snapshots the gateway's serving counters.
func (g *Gateway) Stats() GatewayStats {
	return GatewayStats{
		Requests:      g.nRequests.Load(),
		Handoffs:      g.nHandoffs.Load(),
		NotModified:   g.nNotModified.Load(),
		NotFound:      g.nNotFound.Load(),
		RangeRequests: g.nRangeReqs.Load(),
		Errors:        g.nErrors.Load(),
		BytesServed:   g.nBytes.Load(),
	}
}

// RegisterMetrics exposes the gateway counters on a Prometheus registry.
func (g *Gateway) RegisterMetrics(r *obs.Registry) {
	r.Counter("cc_http_requests_total", "HTTP requests accepted by the gateway", "", g.nRequests.Load)
	r.Counter("cc_http_handoffs_total", "requests entered at the file's home node", "", g.nHandoffs.Load)
	r.Counter("cc_http_not_modified_total", "304 responses", "", g.nNotModified.Load)
	r.Counter("cc_http_not_found_total", "404 responses", "", g.nNotFound.Load)
	r.Counter("cc_http_range_requests_total", "requests with a Range header", "", g.nRangeReqs.Load)
	r.Counter("cc_http_errors_total", "5xx responses from cluster failures", "", g.nErrors.Load)
	r.Counter("cc_http_bytes_served_total", "response body bytes written", "", g.nBytes.Load)
}

// Invalidate bumps file f's validator generation. Call it after writing f
// through the cluster so cached ETags stop matching and clients refetch.
func (g *Gateway) Invalidate(f block.FileID) {
	g.genMu.Lock()
	g.gens[f]++
	g.genMu.Unlock()
}

// validator derives the strong ETag for file f without touching content:
// identity, size, and write generation. The size comes from the open's
// zero-length probe, so a conditional GET that matches costs zero cluster
// block reads.
func (g *Gateway) validator(f block.FileID, size int64) string {
	g.genMu.RLock()
	gen := g.gens[f]
	g.genMu.RUnlock()
	return fmt.Sprintf("\"%x-%x-%x\"", uint64(f), uint64(size), gen)
}

// StatusForError maps a middleware read failure to an HTTP status:
// unknown files are the client's fault (404), deadline misses are 504,
// and every other cluster failure is 502.
func StatusForError(err error) int {
	switch {
	case middleware.IsNotFound(err):
		return http.StatusNotFound
	case middleware.IsTimeout(err):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}

// countingWriter tracks response bytes and the final status so the gateway
// counters see what http.ServeContent decided.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  uint64
}

func (cw *countingWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += uint64(n)
	return n, err
}

// ServeHTTP implements http.Handler: resolves the path, opens a streaming
// reader through the cluster — entering at the file's home node when the
// membership view knows it — and delegates Range/HEAD/conditional handling
// to http.ServeContent over the reader. Peak gateway memory per request is
// one copy buffer, never the file.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.nRequests.Add(1)
	if r.Header.Get("Range") != "" {
		g.nRangeReqs.Add(1)
	}
	f, ok := g.resolve.Resolve(r.URL.Path)
	if !ok {
		g.nNotFound.Add(1)
		http.NotFound(w, r)
		return
	}
	entry := -1
	if g.handoff {
		if home, ok := g.client.HomeOf(f); ok {
			entry = home
			g.nHandoffs.Add(1)
			g.tracer.Record(obs.Event{
				UnixNanos: time.Now().UnixNano(),
				Kind:      "http_handoff",
				Node:      -1, // the gateway is not a cluster member
				Peer:      int32(home),
				File:      int64(f),
				Idx:       -1,
			})
		}
	}
	fr, err := g.client.OpenVia(entry, f)
	if err != nil {
		status := StatusForError(err)
		if status == http.StatusNotFound {
			g.nNotFound.Add(1)
			http.NotFound(w, r)
			return
		}
		g.nErrors.Add(1)
		http.Error(w, fmt.Sprintf("middleware read: %v", err), status)
		return
	}

	w.Header().Set("ETag", g.validator(f, fr.Size()))
	if ct := mime.TypeByExtension(path.Ext(r.URL.Path)); ct != "" {
		// Known extensions skip ServeContent's sniff (which would cost a
		// ranged read of the first 512 bytes on every response).
		w.Header().Set("Content-Type", ct)
	}
	cw := &countingWriter{ResponseWriter: w}
	// ServeContent handles If-None-Match/If-Range before any read, so a
	// 304's only cluster traffic is the open's zero-length size probe.
	http.ServeContent(cw, r, path.Base(r.URL.Path), time.Time{}, fr)
	g.nBytes.Add(cw.bytes)
	if cw.status == http.StatusNotModified {
		g.nNotModified.Add(1)
	}
}

// NewServer wraps handler in a production-shaped front door: HTTP/1.1 with
// keep-alive and cleartext HTTP/2 (h2c), so both browser-era keep-alive
// fleets and multiplexing clients are first-class.
func NewServer(handler http.Handler) *http.Server {
	protocols := new(http.Protocols)
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true)
	return &http.Server{
		Handler:           handler,
		Protocols:         protocols,
		ReadHeaderTimeout: 30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// StatsJSONHandler reports the gateway's serving counters as JSON — the
// endpoint ccload scrapes for hand-off accounting when the gateway runs in
// another process.
func (g *Gateway) StatsJSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := g.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%d,"handoffs":%d,"not_modified":%d,"not_found":%d,"range_requests":%d,"errors":%d,"bytes_served":%d}`+"\n",
			s.Requests, s.Handoffs, s.NotModified, s.NotFound, s.RangeRequests, s.Errors, s.BytesServed)
	})
}

// StatsHandler reports aggregated cluster statistics as plain text.
func StatsHandler(client *middleware.Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s, err := client.ClusterStats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fmt.Fprintf(w, "accesses=%d local=%d remote=%d disk=%d races=%d forwards=%d hit=%.1f%% blocks=%d masters=%d writes=%d\n",
			s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads, s.RaceMisses,
			s.Forwards, s.HitRate()*100, s.StoreLen, s.StoreMasters, s.Writes)
	})
}
