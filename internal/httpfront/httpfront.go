// Package httpfront is the web-server layer of the paper's motivating
// scenario: an off-the-shelf HTTP front end over the cooperative caching
// middleware. Each request enters the cluster at the next node round-robin
// (as round-robin DNS would choose) and the middleware supplies the content
// from cluster memory wherever possible.
package httpfront

import (
	"fmt"
	"hash/fnv"
	"mime"
	"net/http"
	"path"
	"strconv"
	"sync"

	"repro/internal/block"
	"repro/internal/middleware"
)

// Resolver maps a URL path to a file ID. ok is false for unknown paths.
type Resolver interface {
	Resolve(urlPath string) (f block.FileID, ok bool)
}

// PathTable is a static Resolver backed by a map.
type PathTable struct {
	mu sync.RWMutex
	m  map[string]block.FileID
}

// NewPathTable builds a resolver from path → file ID entries. Paths should
// begin with "/".
func NewPathTable(entries map[string]block.FileID) *PathTable {
	cp := make(map[string]block.FileID, len(entries))
	for p, f := range entries {
		cp[p] = f
	}
	return &PathTable{m: cp}
}

// Resolve implements Resolver.
func (t *PathTable) Resolve(p string) (block.FileID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.m[p]
	return f, ok
}

// Add registers (or replaces) a path.
func (t *PathTable) Add(p string, f block.FileID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[p] = f
}

// Gateway serves HTTP from a middleware cluster.
type Gateway struct {
	client  *middleware.Client
	resolve Resolver
}

// New builds a gateway over client using resolver.
func New(client *middleware.Client, resolver Resolver) *Gateway {
	return &Gateway{client: client, resolve: resolver}
}

// ServeHTTP implements http.Handler: resolves the path, reads the file
// through the cluster (round-robin entry node), and replies with
// ETag-based conditional-GET support.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f, ok := g.resolve.Resolve(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := g.client.Read(f)
	if err != nil {
		http.Error(w, fmt.Sprintf("middleware read: %v", err), http.StatusBadGateway)
		return
	}

	etag := contentETag(body)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	ct := mime.TypeByExtension(path.Ext(r.URL.Path))
	if ct == "" {
		ct = http.DetectContentType(body)
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body) //nolint:errcheck // best-effort response body
}

// contentETag derives a strong validator from the content.
func contentETag(body []byte) string {
	h := fnv.New64a()
	h.Write(body) //nolint:errcheck // hash writes cannot fail
	return fmt.Sprintf("%q", strconv.FormatUint(h.Sum64(), 16))
}

// StatsHandler reports aggregated cluster statistics as plain text.
func StatsHandler(client *middleware.Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s, err := client.ClusterStats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fmt.Fprintf(w, "accesses=%d local=%d remote=%d disk=%d races=%d forwards=%d hit=%.1f%% blocks=%d masters=%d writes=%d\n",
			s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads, s.RaceMisses,
			s.Forwards, s.HitRate()*100, s.StoreLen, s.StoreMasters, s.Writes)
	})
}
