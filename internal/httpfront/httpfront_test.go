package httpfront

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/middleware"
)

// startGateway spins a 2-node live cluster plus a gateway over it.
func startGateway(t *testing.T) (*httptest.Server, *middleware.Client) {
	t.Helper()
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 2500, 1: 100}
	nodes := make([]*middleware.Node, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		n, err := middleware.Start(middleware.Config{
			ID: i, CapacityBlocks: 32, Policy: core.PolicyMaster,
			Geometry: geom, Source: middleware.NewMemSource(geom, sizes),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	table := NewPathTable(map[string]block.FileID{
		"/index.html": 0,
		"/tiny.txt":   1,
	})
	mux := http.NewServeMux()
	mux.Handle("/", New(client, table))
	mux.Handle("/stats", StatsHandler(client))
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return srv, client
}

func TestGatewayServesContent(t *testing.T) {
	srv, _ := startGateway(t)
	resp, err := http.Get(srv.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 2500 {
		t.Fatalf("body = %d bytes, want 2500", len(body))
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("no ETag")
	}
	if resp.Header.Get("Content-Length") != "2500" {
		t.Fatalf("Content-Length = %q", resp.Header.Get("Content-Length"))
	}
}

func TestGatewayConditionalGet(t *testing.T) {
	srv, _ := startGateway(t)
	resp, err := http.Get(srv.URL + "/tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/tiny.txt", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", resp2.StatusCode)
	}
}

func TestGatewayNotFoundAndMethods(t *testing.T) {
	srv, _ := startGateway(t)
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing path status = %d", resp.StatusCode)
	}
	post, err := http.Post(srv.URL+"/index.html", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

func TestGatewayHead(t *testing.T) {
	srv, _ := startGateway(t)
	resp, err := http.Head(srv.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Fatal("HEAD returned a body")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := startGateway(t)
	if _, err := http.Get(srv.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "accesses=") {
		t.Fatalf("stats body: %s", body)
	}
}

func TestPathTableAdd(t *testing.T) {
	tab := NewPathTable(nil)
	if _, ok := tab.Resolve("/x"); ok {
		t.Fatal("empty table resolved a path")
	}
	tab.Add("/x", 7)
	f, ok := tab.Resolve("/x")
	if !ok || f != 7 {
		t.Fatalf("Resolve = %d,%v", f, ok)
	}
}
