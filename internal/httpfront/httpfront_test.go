package httpfront

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/obs"
)

var testGeom = block.Geometry{Size: 1024, ExtentBlocks: 8}

// gwEnv is a live cluster with a gateway in front of it.
type gwEnv struct {
	srv    *httptest.Server
	client *middleware.Client
	gw     *Gateway
	tracer *obs.Tracer
	nodes  []*middleware.Node
}

// startGateway spins an n-node live cluster plus a gateway over it.
func startGateway(t *testing.T, n int, sizes map[block.FileID]int64, table map[string]block.FileID) *gwEnv {
	t.Helper()
	nodes := make([]*middleware.Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		nd, err := middleware.Start(middleware.Config{
			ID: i, CapacityBlocks: 512, Policy: core.PolicyMaster,
			Geometry: testGeom, Source: middleware.NewMemSource(testGeom, sizes),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		addrs[i] = nd.Addr()
	}
	for _, nd := range nodes {
		nd.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	gw := New(client, NewPathTable(table))
	tracer := obs.NewTracer(256)
	gw.SetTracer(tracer)
	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/stats", StatsHandler(client))
	srv := httptest.NewServer(mux)
	env := &gwEnv{srv: srv, client: client, gw: gw, tracer: tracer, nodes: nodes}
	t.Cleanup(func() {
		srv.Close()
		client.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return env
}

func defaultEnv(t *testing.T) *gwEnv {
	return startGateway(t, 2,
		map[block.FileID]int64{0: 2500, 1: 100},
		map[string]block.FileID{"/index.html": 0, "/tiny.txt": 1})
}

// synthFile reconstructs the backing store's content for file f: the
// byte-exact oracle streamed responses are compared against.
func synthFile(f block.FileID, size int64) []byte {
	out := make([]byte, 0, size)
	for idx := int32(0); int64(len(out)) < size; idx++ {
		n := size - int64(len(out))
		if n > int64(testGeom.Size) {
			n = int64(testGeom.Size)
		}
		out = append(out, middleware.SyntheticBlock(f, idx, int(n))...)
	}
	return out
}

func TestGatewayServesContent(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Get(env.srv.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 2500 {
		t.Fatalf("body = %d bytes, want 2500", len(body))
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("no ETag")
	}
	if resp.Header.Get("Content-Length") != "2500" {
		t.Fatalf("Content-Length = %q", resp.Header.Get("Content-Length"))
	}
}

func TestGatewayConditionalGet(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Get(env.srv.URL + "/tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, env.srv.URL+"/tiny.txt", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", resp2.StatusCode)
	}
	if got := env.gw.Stats().NotModified; got != 1 {
		t.Fatalf("NotModified counter = %d, want 1", got)
	}
}

// TestGatewayConditionalGetZeroBlockReads pins the cheap-validator
// contract: a 304 costs the zero-length size probe and nothing else — no
// cluster block is accessed, read from a peer, or pulled from disk.
func TestGatewayConditionalGetZeroBlockReads(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Get(env.srv.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	before, err := env.client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, env.srv.URL+"/index.html", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp2.StatusCode)
	}
	after, err := env.client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Accesses != before.Accesses || after.DiskReads != before.DiskReads ||
		after.RemoteHits != before.RemoteHits {
		t.Fatalf("304 touched blocks: accesses %d→%d disk %d→%d remote %d→%d",
			before.Accesses, after.Accesses, before.DiskReads, after.DiskReads,
			before.RemoteHits, after.RemoteHits)
	}
}

// TestGatewayInvalidate pins the write→revalidate path: bumping a file's
// generation changes its validator, so a stale ETag refetches.
func TestGatewayInvalidate(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Get(env.srv.URL + "/tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()

	env.gw.Invalidate(1)
	req, _ := http.NewRequest(http.MethodGet, env.srv.URL+"/tiny.txt", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after invalidate = %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("ETag") == etag {
		t.Fatal("validator unchanged after Invalidate")
	}
}

// TestGatewayRange exercises the Range handling ServeContent supplies over
// the streaming reader.
func TestGatewayRange(t *testing.T) {
	env := startGateway(t, 2,
		map[block.FileID]int64{0: 5000},
		map[string]block.FileID{"/big.bin": 0})
	want := synthFile(0, 5000)

	cases := []struct {
		spec  string
		start int
		end   int // exclusive
	}{
		{"bytes=100-199", 100, 200},
		{"bytes=1000-3000", 1000, 3001},  // crosses block boundaries
		{"bytes=4500-", 4500, 5000},      // open-ended tail
		{"bytes=-300", 5000 - 300, 5000}, // suffix range
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodGet, env.srv.URL+"/big.bin", nil)
		req.Header.Set("Range", tc.spec)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("%s: status = %d, want 206", tc.spec, resp.StatusCode)
		}
		if !strings.HasPrefix(resp.Header.Get("Content-Range"), "bytes ") {
			t.Fatalf("%s: Content-Range = %q", tc.spec, resp.Header.Get("Content-Range"))
		}
		if string(body) != string(want[tc.start:tc.end]) {
			t.Fatalf("%s: body mismatch (%d bytes)", tc.spec, len(body))
		}
	}
	if got := env.gw.Stats().RangeRequests; got != uint64(len(cases)) {
		t.Fatalf("RangeRequests = %d, want %d", got, len(cases))
	}
}

// TestGatewayStreamsMultiBlockFile fetches a file much larger than a block
// through a live 4-node cluster and checks the streamed response is
// byte-identical to the backing store.
func TestGatewayStreamsMultiBlockFile(t *testing.T) {
	const size = 300*1024 + 333 // ~300 blocks, unaligned tail
	env := startGateway(t, 4,
		map[block.FileID]int64{0: size, 1: 4096, 2: 100},
		map[string]block.FileID{"/big.bin": 0, "/mid.bin": 1, "/small.txt": 2})
	resp, err := http.Get(env.srv.URL + "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := synthFile(0, size)
	if len(body) != len(want) {
		t.Fatalf("body = %d bytes, want %d", len(body), len(want))
	}
	if string(body) != string(want) {
		t.Fatal("streamed body differs from backing store")
	}
}

// TestGatewayHandoff pins the §4.1 hand-off surface over a live 4-node
// cluster: every resolvable GET is forwarded to its home node, the counter
// and trace events record it, and disabling hand-off stops it.
func TestGatewayHandoff(t *testing.T) {
	sizes := map[block.FileID]int64{}
	table := map[string]block.FileID{}
	for f := block.FileID(0); f < 8; f++ {
		sizes[f] = 2048
		table[fmt.Sprintf("/f/%d", f)] = f
	}
	env := startGateway(t, 4, sizes, table)
	for f := 0; f < 8; f++ {
		resp, err := http.Get(fmt.Sprintf("%s/f/%d", env.srv.URL, f))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("file %d: status %d", f, resp.StatusCode)
		}
	}
	st := env.gw.Stats()
	if st.Handoffs != 8 {
		t.Fatalf("Handoffs = %d, want 8 (one per GET)", st.Handoffs)
	}
	events := env.tracer.Events()
	handoffs := 0
	for _, e := range events {
		if e.Kind == "http_handoff" {
			handoffs++
			if home, ok := env.client.HomeOf(block.FileID(e.File)); !ok || int32(home) != e.Peer {
				t.Fatalf("trace event peer %d disagrees with HomeOf(%d)", e.Peer, e.File)
			}
		}
	}
	if handoffs != 8 {
		t.Fatalf("trace recorded %d http_handoff events, want 8", handoffs)
	}

	env.gw.SetHandoff(false)
	resp, err := http.Get(env.srv.URL + "/f/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := env.gw.Stats().Handoffs; got != 8 {
		t.Fatalf("Handoffs moved to %d with hand-off disabled", got)
	}
}

// TestGatewayErrorMapping pins the middleware-error classification: a path
// that resolves to a file the cluster does not know is a 404, and a dead
// cluster is a 502.
func TestGatewayErrorMapping(t *testing.T) {
	env := startGateway(t, 2,
		map[block.FileID]int64{0: 100},
		map[string]block.FileID{"/ok.txt": 0, "/ghost.bin": 99})

	resp, err := http.Get(env.srv.URL + "/ghost.bin")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster file: status = %d, want 404", resp.StatusCode)
	}
	if got := env.gw.Stats().NotFound; got != 1 {
		t.Fatalf("NotFound counter = %d, want 1", got)
	}

	for _, nd := range env.nodes {
		nd.Close()
	}
	resp2, err := http.Get(env.srv.URL + "/ok.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead cluster: status = %d, want 502", resp2.StatusCode)
	}
	if got := env.gw.Stats().Errors; got != 1 {
		t.Fatalf("Errors counter = %d, want 1", got)
	}
}

// timeoutErr is a net.Error whose Timeout() is true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrapped: %w", middleware.ErrUnknownFile), http.StatusNotFound},
		{timeoutErr{}, http.StatusGatewayTimeout},
		{fmt.Errorf("dial: %w", net.Error(timeoutErr{})), http.StatusGatewayTimeout},
		{errors.New("remote error: something else"), http.StatusBadGateway},
		{io.ErrUnexpectedEOF, http.StatusBadGateway},
	}
	for _, tc := range cases {
		if got := StatusForError(tc.err); got != tc.want {
			t.Fatalf("StatusForError(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestNotFoundCrossesWire pins that the not-found classification survives
// the MsgErr wire crossing end to end.
func TestNotFoundCrossesWire(t *testing.T) {
	env := defaultEnv(t)
	_, err := env.client.Open(block.FileID(12345))
	if err == nil {
		t.Fatal("open of unknown file succeeded")
	}
	if !middleware.IsNotFound(err) {
		t.Fatalf("error not classified as not-found: %v", err)
	}
	if StatusForError(err) != http.StatusNotFound {
		t.Fatalf("StatusForError = %d, want 404", StatusForError(err))
	}
}

// TestGatewayH2C pins the front door's cleartext HTTP/2 support.
func TestGatewayH2C(t *testing.T) {
	env := defaultEnv(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(env.gw)
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	tr := &http.Transport{Protocols: new(http.Protocols)}
	tr.Protocols.SetUnencryptedHTTP2(true)
	c := &http.Client{Transport: tr}
	resp, err := c.Get("http://" + ln.Addr().String() + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.ProtoMajor != 2 {
		t.Fatalf("proto = %s, want HTTP/2", resp.Proto)
	}
	if len(body) != 2500 {
		t.Fatalf("h2c body = %d bytes, want 2500", len(body))
	}

	// The same listener still speaks HTTP/1.1 keep-alive.
	c1 := &http.Client{}
	resp1, err := c1.Get("http://" + ln.Addr().String() + "/tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	if resp1.ProtoMajor != 1 {
		t.Fatalf("proto = %s, want HTTP/1.1", resp1.Proto)
	}
}

func TestGatewayNotFoundAndMethods(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Get(env.srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing path status = %d", resp.StatusCode)
	}
	post, err := http.Post(env.srv.URL+"/index.html", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

func TestGatewayHead(t *testing.T) {
	env := defaultEnv(t)
	resp, err := http.Head(env.srv.URL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Length") != "2500" {
		t.Fatalf("HEAD Content-Length = %q", resp.Header.Get("Content-Length"))
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Fatal("HEAD returned a body")
	}
}

func TestStatsEndpoint(t *testing.T) {
	env := defaultEnv(t)
	if _, err := http.Get(env.srv.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(env.srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "accesses=") {
		t.Fatalf("stats body: %s", body)
	}
}

func TestStatsJSONHandler(t *testing.T) {
	env := defaultEnv(t)
	if _, err := http.Get(env.srv.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	env.gw.StatsJSONHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/httpstats", nil))
	if !strings.Contains(rec.Body.String(), `"handoffs"`) {
		t.Fatalf("stats JSON: %s", rec.Body.String())
	}
}

func TestPathTableAdd(t *testing.T) {
	tab := NewPathTable(nil)
	if _, ok := tab.Resolve("/x"); ok {
		t.Fatal("empty table resolved a path")
	}
	tab.Add("/x", 7)
	f, ok := tab.Resolve("/x")
	if !ok || f != 7 {
		t.Fatalf("Resolve = %d,%v", f, ok)
	}
}
