package disk

import (
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

var (
	params = hw.DefaultParams()
	geom   = block.DefaultGeometry
)

func newDisk(sched Scheduler) (*sim.Engine, *Disk) {
	eng := sim.NewEngine(1)
	return eng, New(eng, &params, geom, sched)
}

func TestSingleReadCost(t *testing.T) {
	eng, d := newDisk(FIFO)
	var at sim.Time
	d.Read(1, 0, 1, func() { at = eng.Now() })
	eng.RunUntilIdle()
	want := params.DiskSeek + params.DiskRotation + params.DiskMetaSeek +
		params.DiskTransfer(int64(geom.Size))
	if at != sim.Time(want) {
		t.Fatalf("single read finished at %v, want %v", at, sim.Time(want))
	}
}

func TestSequentialReadAvoidsSeek(t *testing.T) {
	eng, d := newDisk(FIFO)
	var t1, t2 sim.Time
	d.Read(1, 0, 1, func() { t1 = eng.Now() })
	d.Read(1, 1, 1, func() { t2 = eng.Now() })
	eng.RunUntilIdle()
	// Second read continues the stream inside the same extent: transfer only.
	gap := t2.Sub(t1)
	want := params.DiskTransfer(int64(geom.Size))
	if gap != want {
		t.Fatalf("sequential gap = %v, want transfer-only %v", gap, want)
	}
	if d.Seeks() != 1 || d.SequentialReads() != 1 {
		t.Fatalf("seeks=%d seq=%d, want 1/1", d.Seeks(), d.SequentialReads())
	}
}

func TestSequentialAcrossExtentPaysMetaSeek(t *testing.T) {
	eng, d := newDisk(FIFO)
	var t1, t2 sim.Time
	d.Read(1, 7, 1, func() { t1 = eng.Now() }) // last block of extent 0
	d.Read(1, 8, 1, func() { t2 = eng.Now() }) // first block of extent 1
	eng.RunUntilIdle()
	gap := t2.Sub(t1)
	want := params.DiskMetaSeek + params.DiskTransfer(int64(geom.Size))
	if gap != want {
		t.Fatalf("extent-crossing gap = %v, want %v", gap, want)
	}
}

func TestInterleavingCostsSeeks(t *testing.T) {
	// Two interleaved streams under FIFO pay a positioning seek per access;
	// this is the §5 pathology that makes one disk the bottleneck.
	eng, d := newDisk(FIFO)
	for i := int32(0); i < 4; i++ {
		d.Read(1, i, 1, nil)
		d.Read(2, i, 1, nil)
	}
	eng.RunUntilIdle()
	if d.Seeks() != 8 {
		t.Fatalf("interleaved FIFO seeks = %d, want 8", d.Seeks())
	}
}

func TestSequentialSchedulerDeinterleaves(t *testing.T) {
	eng, d := newDisk(Sequential)
	for i := int32(0); i < 4; i++ {
		d.Read(1, i, 1, nil)
		d.Read(2, i, 1, nil)
	}
	eng.RunUntilIdle()
	// The scheduler should group each stream: 2 positioning seeks total.
	if d.Seeks() != 2 {
		t.Fatalf("scheduled seeks = %d, want 2", d.Seeks())
	}
	if d.Reads() != 8 {
		t.Fatalf("reads = %d, want 8", d.Reads())
	}
}

func TestSchedulerFasterThanFIFO(t *testing.T) {
	run := func(s Scheduler) sim.Time {
		eng, d := newDisk(s)
		for i := int32(0); i < 16; i++ {
			d.Read(1, i, 1, nil)
			d.Read(2, i, 1, nil)
		}
		return eng.RunUntilIdle()
	}
	fifo, sched := run(FIFO), run(Sequential)
	if sched >= fifo {
		t.Fatalf("sequential scheduler (%v) not faster than FIFO (%v)", sched, fifo)
	}
	if float64(sched) > 0.5*float64(fifo) {
		t.Fatalf("expected ≥2x improvement: fifo=%v sched=%v", fifo, sched)
	}
}

func TestSchedulerRunCapPreventsStarvation(t *testing.T) {
	eng, d := newDisk(Sequential)
	d.SetMaxRun(8)
	// A long sequential stream plus one stray request; without the run cap
	// the stray would wait for the whole stream.
	var order []int
	d.Read(1, 0, 1, func() { order = append(order, 0) })
	d.Read(9, 0, 1, func() { order = append(order, -1) }) // the stray
	for i := int32(1); i < 64; i++ {
		i := int(i)
		d.Read(1, int32(i), 1, func() { order = append(order, i) })
	}
	eng.RunUntilIdle()
	pos := -1
	for p, v := range order {
		if v == -1 {
			pos = p
			break
		}
	}
	if pos < 0 {
		t.Fatal("stray request never served")
	}
	// The stray is FIFO-next after the first request; it may be bypassed by
	// at most maxRun continuations.
	if pos > 1+8 {
		t.Fatalf("stray served at position %d, cap allows ≤9", pos)
	}
}

func TestMultiBlockRead(t *testing.T) {
	eng, d := newDisk(FIFO)
	var at sim.Time
	// 16 blocks spanning extents 0 and 1 from a cold position.
	d.Read(1, 0, 16, func() { at = eng.Now() })
	eng.RunUntilIdle()
	want := params.DiskSeek + params.DiskRotation + 2*params.DiskMetaSeek +
		params.DiskTransfer(16*int64(geom.Size))
	if at != sim.Time(want) {
		t.Fatalf("16-block read at %v, want %v", at, sim.Time(want))
	}
	if d.BlocksRead() != 16 {
		t.Fatalf("BlocksRead = %d", d.BlocksRead())
	}
}

func TestWholeFileVsBlockByBlock(t *testing.T) {
	// One whole-file read (as L2S issues) must beat block-by-block reads of
	// the same data interleaved with another stream — the structural
	// advantage §5 attributes to L2S's disk access pattern.
	whole := func() sim.Time {
		eng, d := newDisk(FIFO)
		d.Read(1, 0, 8, nil)
		d.Read(2, 0, 8, nil)
		return eng.RunUntilIdle()
	}()
	interleaved := func() sim.Time {
		eng, d := newDisk(FIFO)
		for i := int32(0); i < 8; i++ {
			d.Read(1, i, 1, nil)
			d.Read(2, i, 1, nil)
		}
		return eng.RunUntilIdle()
	}()
	if whole >= interleaved {
		t.Fatalf("whole-file %v not faster than interleaved blocks %v", whole, interleaved)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	eng, d := newDisk(FIFO)
	d.Read(1, 0, 1, nil)
	eng.RunUntilIdle()
	if u := d.Utilization(); u < 0.999 {
		t.Fatalf("utilization = %f, want ~1 (disk busy whole run)", u)
	}
	d.ResetStats()
	if d.Reads() != 0 || d.Utilization() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestZeroCountPanics(t *testing.T) {
	_, d := newDisk(FIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-count request did not panic")
		}
	}()
	d.Read(1, 0, 0, nil)
}

func TestQueueDepthTracking(t *testing.T) {
	eng, d := newDisk(FIFO)
	for i := int32(0); i < 5; i++ {
		d.Read(block.FileID(i), 0, 1, nil)
	}
	if d.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4 (one in service)", d.QueueLen())
	}
	eng.RunUntilIdle()
	if d.MaxQueueLen() != 4 {
		t.Fatalf("MaxQueueLen = %d, want 4", d.MaxQueueLen())
	}
	if d.Busy() {
		t.Fatal("disk still busy after idle")
	}
}
