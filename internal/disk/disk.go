// Package disk models a single disk drive: a seek/rotation/transfer cost
// model over a 64 KB-extent file layout, with either a FIFO request queue
// (the paper's original model, in which interleaved request streams pay
// heavy seek penalties) or a stream-preserving scheduler (the paper's fix,
// yielding its disk-scheduled CC variant).
package disk

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Scheduler selects the queue discipline for pending disk requests.
type Scheduler int

const (
	// FIFO serves requests strictly in arrival order. Interleaved streams
	// pay a positioning seek on nearly every access — the behaviour the
	// paper identifies as CC-Basic's first bottleneck.
	FIFO Scheduler = iota
	// Sequential prefers the queued request that continues the current head
	// position (same file, next block), falling back to the oldest request.
	// An aging bound prevents starvation. This is the "simple scheduling
	// algorithm in our queue of disk requests" of §5.
	Sequential
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Request is a read of Count consecutive blocks of a file starting at
// block Start. Done fires when the data is in memory.
type Request struct {
	File  block.FileID
	Start int32
	Count int32
	Done  func()

	arrived sim.Time
}

// Disk models one drive attached to a node.
type Disk struct {
	eng   Engine
	p     *hw.Params
	geom  block.Geometry
	sched Scheduler

	// maxRun bounds how many consecutive continuation picks the Sequential
	// scheduler may make before it must serve the FIFO head, so the head's
	// wait is bounded by one run regardless of queue depth.
	maxRun int
	runLen int

	queue []Request
	busy  bool

	// Head position: the block that would continue the current stream.
	lastFile  block.FileID
	lastBlock int32
	hasPos    bool

	// statistics
	busyTime   sim.Duration
	lastStart  sim.Time
	statsSince sim.Time
	reads      uint64
	seeks      uint64
	seqReads   uint64
	blocksRead uint64
	maxQueue   int
}

// Engine is the subset of the simulation engine the disk needs; it is
// satisfied by *sim.Engine.
type Engine interface {
	Now() sim.Time
	Schedule(d sim.Duration, fn func())
}

// New returns a disk attached to eng using the cost model in p and the
// on-disk layout geom.
func New(eng Engine, p *hw.Params, geom block.Geometry, sched Scheduler) *Disk {
	return &Disk{
		eng:    eng,
		p:      p,
		geom:   geom,
		sched:  sched,
		maxRun: 16,
	}
}

// SetMaxRun overrides the Sequential scheduler's starvation bound: the
// maximum number of continuation picks between FIFO-head services.
func (d *Disk) SetMaxRun(n int) { d.maxRun = n }

// Submit queues a read request. If the disk is idle it starts immediately.
func (d *Disk) Submit(r Request) {
	if r.Count <= 0 {
		panic("disk: request with non-positive block count")
	}
	r.arrived = d.eng.Now()
	if !d.busy {
		d.start(r)
		return
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

// Read is shorthand for a single-extent-run read.
func (d *Disk) Read(f block.FileID, start, count int32, done func()) {
	d.Submit(Request{File: f, Start: start, Count: count, Done: done})
}

// cost computes the service time of r given the current head position, and
// whether it required a positioning seek.
func (d *Disk) cost(r Request) (sim.Duration, bool) {
	sequential := d.hasPos && r.File == d.lastFile && r.Start == d.lastBlock+1
	var t sim.Duration
	seeked := false
	if !sequential {
		t += d.p.DiskSeek + d.p.DiskRotation
		seeked = true
	}
	// Metadata seek for every extent accessed, except that continuing a
	// stream within the same extent costs nothing extra (§4.2: an extra
	// seek for metadata on every 64 KB access).
	firstExt := d.geom.Extent(r.Start)
	lastExt := d.geom.Extent(r.Start + r.Count - 1)
	extents := int(lastExt - firstExt + 1)
	if sequential && r.Start%int32(d.geom.ExtentBlocks) != 0 {
		extents-- // still inside the extent the head is on
	}
	if extents < 0 {
		extents = 0
	}
	t += sim.Duration(extents) * d.p.DiskMetaSeek
	t += d.p.DiskTransfer(int64(r.Count) * int64(d.geom.Size))
	return t, seeked
}

func (d *Disk) start(r Request) {
	d.busy = true
	d.lastStart = d.eng.Now()
	t, seeked := d.cost(r)
	if seeked {
		d.seeks++
	} else {
		d.seqReads++
	}
	d.reads++
	d.blocksRead += uint64(r.Count)
	d.lastFile = r.File
	d.lastBlock = r.Start + r.Count - 1
	d.hasPos = true
	d.eng.Schedule(t, func() { d.finish(r) })
}

func (d *Disk) finish(r Request) {
	d.busyTime += d.eng.Now().Sub(d.lastStart)
	d.busy = false
	if len(d.queue) > 0 {
		next := d.pick()
		d.start(next)
	}
	if r.Done != nil {
		r.Done()
	}
}

// pick removes and returns the next request according to the scheduler.
func (d *Disk) pick() Request {
	idx := 0
	if d.sched == Sequential && d.runLen < d.maxRun && d.hasPos {
		for i, r := range d.queue {
			if r.File == d.lastFile && r.Start == d.lastBlock+1 {
				idx = i
				break
			}
		}
	}
	if idx == 0 {
		d.runLen = 0
	} else {
		d.runLen++
	}
	r := d.queue[idx]
	copy(d.queue[idx:], d.queue[idx+1:])
	d.queue = d.queue[:len(d.queue)-1]
	return r
}

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.busy }

// QueueLen reports the number of waiting requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Reads reports completed request count since the last ResetStats.
func (d *Disk) Reads() uint64 { return d.reads }

// Seeks reports how many served requests required a positioning seek.
func (d *Disk) Seeks() uint64 { return d.seeks }

// SequentialReads reports how many served requests continued a stream.
func (d *Disk) SequentialReads() uint64 { return d.seqReads }

// BlocksRead reports the total blocks transferred.
func (d *Disk) BlocksRead() uint64 { return d.blocksRead }

// MaxQueueLen reports the deepest queue observed.
func (d *Disk) MaxQueueLen() int { return d.maxQueue }

// ResetStats restarts utilization accounting at the current virtual time.
func (d *Disk) ResetStats() {
	now := d.eng.Now()
	d.busyTime = 0
	d.statsSince = now
	d.reads, d.seeks, d.seqReads, d.blocksRead = 0, 0, 0, 0
	d.maxQueue = 0
	if d.busy {
		d.lastStart = now
	}
}

// Utilization reports the busy fraction since the last ResetStats.
func (d *Disk) Utilization() float64 {
	now := d.eng.Now()
	window := now.Sub(d.statsSince)
	if window <= 0 {
		return 0
	}
	busy := d.busyTime
	if d.busy {
		busy += now.Sub(d.lastStart)
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}
