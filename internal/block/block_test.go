package block

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.ExtentBytes() != 64*1024 {
		t.Fatalf("extent = %d bytes, want 64KB", g.ExtentBytes())
	}
}

func TestCount(t *testing.T) {
	g := DefaultGeometry
	cases := []struct {
		size int64
		want int32
	}{
		{0, 1},
		{1, 1},
		{8192, 1},
		{8193, 2},
		{64 * 1024, 8},
		{100 * 1024, 13},
	}
	for _, c := range cases {
		if got := g.Count(c.size); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestExtent(t *testing.T) {
	g := DefaultGeometry
	cases := []struct {
		idx  int32
		want int32
	}{{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}}
	for _, c := range cases {
		if got := g.Extent(c.idx); got != c.want {
			t.Errorf("Extent(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestBlocksEnumeration(t *testing.T) {
	g := DefaultGeometry
	ids := g.Blocks(7, 20*1024)
	if len(ids) != 3 {
		t.Fatalf("got %d blocks, want 3", len(ids))
	}
	for i, id := range ids {
		if id.File != 7 || id.Idx != int32(i) {
			t.Fatalf("ids[%d] = %v", i, id)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	if err := (Geometry{Size: 0, ExtentBlocks: 8}).Validate(); err == nil {
		t.Error("zero block size accepted")
	}
	if err := (Geometry{Size: 8192, ExtentBlocks: 0}).Validate(); err == nil {
		t.Error("zero extent accepted")
	}
}

// Property: Count(size)·blockSize is the smallest multiple of blockSize
// covering size (for positive sizes).
func TestCountProperty(t *testing.T) {
	g := DefaultGeometry
	f := func(raw uint32) bool {
		size := int64(raw%10_000_000) + 1
		n := int64(g.Count(size))
		return n*int64(g.Size) >= size && (n-1)*int64(g.Size) < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDString(t *testing.T) {
	id := ID{File: 3, Idx: 9}
	if got := id.String(); got != "3:9" {
		t.Fatalf("String() = %q", got)
	}
}
