// Package block defines the identifiers shared by every subsystem: files,
// fixed-size cache blocks, and the mapping between file sizes and block
// counts. The middleware caches at block granularity (the paper's central
// design choice), so these types appear throughout the simulator, the
// caching core, and the live implementation.
package block

import "fmt"

// FileID identifies a file in the served file set.
type FileID int32

// ID identifies one cache block: the i-th fixed-size block of a file.
type ID struct {
	File FileID
	Idx  int32
}

// String formats the block as file:index.
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.File, id.Idx) }

// Geometry captures the block/extent layout parameters of the system: cache
// blocks of Size bytes, laid out on disk in contiguous extents of
// ExtentBlocks blocks (64 KB extents of 8 KB blocks by default, per §4.2).
type Geometry struct {
	Size         int // block size in bytes
	ExtentBlocks int // blocks per contiguous on-disk extent
}

// DefaultGeometry is the layout used throughout the paper reproduction:
// 8 KB blocks in 64 KB extents.
var DefaultGeometry = Geometry{Size: 8 * 1024, ExtentBlocks: 8}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Size <= 0 {
		return fmt.Errorf("block: non-positive block size %d", g.Size)
	}
	if g.ExtentBlocks <= 0 {
		return fmt.Errorf("block: non-positive extent size %d", g.ExtentBlocks)
	}
	return nil
}

// ExtentBytes reports the extent size in bytes.
func (g Geometry) ExtentBytes() int { return g.Size * g.ExtentBlocks }

// Count reports how many blocks a file of sizeBytes occupies (at least 1 for
// any non-empty file; zero-byte files still occupy one block of metadata).
func (g Geometry) Count(sizeBytes int64) int32 {
	if sizeBytes <= 0 {
		return 1
	}
	return int32((sizeBytes + int64(g.Size) - 1) / int64(g.Size))
}

// Extent reports the extent index containing block idx.
func (g Geometry) Extent(idx int32) int32 {
	return idx / int32(g.ExtentBlocks)
}

// Blocks enumerates the block IDs of a file of sizeBytes.
func (g Geometry) Blocks(f FileID, sizeBytes int64) []ID {
	n := g.Count(sizeBytes)
	ids := make([]ID, n)
	for i := int32(0); i < n; i++ {
		ids[i] = ID{File: f, Idx: i}
	}
	return ids
}
