package hw

import (
	"repro/internal/sim"
)

// Network models the cluster LAN: every intra-cluster message crosses the
// sender's bus and NIC, a shared router (modeled on the Cisco 7600 forwarding
// path, which also routes new client requests per §4.2), the wire latency,
// and the receiver's NIC and bus. The same network fields client requests
// and intra-cluster traffic, as in the paper.
type Network struct {
	eng    *sim.Engine
	p      *Params
	Router *sim.ServiceCenter
}

// NewNetwork builds the shared LAN.
func NewNetwork(eng *sim.Engine, p *Params, queueBound int) *Network {
	return &Network{
		eng:    eng,
		p:      p,
		Router: sim.NewServiceCenter(eng, "lan.router", queueBound),
	}
}

// Send moves size bytes from node src to node dst and invokes done when the
// last byte has crossed dst's bus into memory. Either src or dst may be nil
// to model traffic entering or leaving the cluster (client requests and
// responses), in which case the corresponding NIC/bus stages are skipped.
func (n *Network) Send(src, dst *Node, size int64, done func()) {
	xfer := n.p.NetTransfer(size)
	bus := n.p.BusTransfer(size)

	deliver := func() {
		if dst == nil {
			if done != nil {
				done()
			}
			return
		}
		dst.NIC.Do(xfer, func() {
			dst.Bus.Do(bus, done)
		})
	}
	route := func() {
		n.Router.Do(n.p.RouterFwd, func() {
			n.eng.Schedule(n.p.NetLatency, deliver)
		})
	}
	if src == nil {
		route()
		return
	}
	src.Bus.Do(bus, func() {
		src.NIC.Do(xfer, route)
	})
}

// SendMsg sends a control message (header-sized) between nodes.
func (n *Network) SendMsg(src, dst *Node, done func()) {
	n.Send(src, dst, int64(n.p.MsgHeader), done)
}
