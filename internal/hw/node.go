package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Node is the hardware of one cluster node: a CPU, a NIC, and a memory bus,
// each a service center with a finite queue, per §4.2 ("each node is
// comprised of a CPU, NIC, and disk, all connected by a bus"; the disk model
// lives in internal/disk because its queue discipline is policy-dependent).
type Node struct {
	ID  int
	CPU *sim.ServiceCenter
	NIC *sim.ServiceCenter
	Bus *sim.ServiceCenter
}

// NewNode builds node hardware attached to eng. queueBound bounds each
// center's queue (0 = unbounded; the simulator defaults to unbounded and
// relies on the closed-loop workload to bound outstanding work, which
// matches the paper's finite-queue service centers under closed-loop load).
func NewNode(eng *sim.Engine, id int, queueBound int) *Node {
	return &Node{
		ID:  id,
		CPU: sim.NewServiceCenter(eng, fmt.Sprintf("node%d.cpu", id), queueBound),
		NIC: sim.NewServiceCenter(eng, fmt.Sprintf("node%d.nic", id), queueBound),
		Bus: sim.NewServiceCenter(eng, fmt.Sprintf("node%d.bus", id), queueBound),
	}
}

// ResetStats restarts utilization accounting on every center.
func (n *Node) ResetStats() {
	n.CPU.ResetStats()
	n.NIC.ResetStats()
	n.Bus.ResetStats()
}
