package hw

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultParamsTable1(t *testing.T) {
	p := DefaultParams()
	if p.ParseTime != sim.Milliseconds(0.1) {
		t.Errorf("ParseTime = %v", p.ParseTime)
	}
	if p.ServePeerBlock != sim.Milliseconds(0.07) {
		t.Errorf("ServePeerBlock = %v", p.ServePeerBlock)
	}
	if p.DiskSeek != sim.Milliseconds(8.5) || p.DiskRotation != sim.Milliseconds(4.17) {
		t.Errorf("disk positioning = %v + %v", p.DiskSeek, p.DiskRotation)
	}
}

func TestServeTime(t *testing.T) {
	p := DefaultParams()
	// 11.5 KB at 115 KB/ms beyond the base → 0.1 + 0.1 = 0.2 ms.
	got := p.ServeTime(11.5 * 1024)
	want := sim.Milliseconds(0.2)
	if diff := got - want; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("ServeTime(11.5KB) = %v, want ~%v", got, want)
	}
}

func TestFileReqTime(t *testing.T) {
	p := DefaultParams()
	got := p.FileReqTime(7)
	want := sim.Milliseconds(0.03 + 7*0.01)
	if diff := got - want; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("FileReqTime(7) = %v, want %v", got, want)
	}
}

func TestDiskTransferRate(t *testing.T) {
	p := DefaultParams()
	// 30 KB at 30 KB/ms = 1 ms.
	got := p.DiskTransfer(30 * 1024)
	if diff := got - sim.Millisecond; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("DiskTransfer(30KB) = %v, want ~1ms", got)
	}
}

func TestNetTransferGigabit(t *testing.T) {
	p := DefaultParams()
	// 131.072 KiB at 1 Gb/s (2^30 b/s) = 1 ms.
	got := p.NetTransfer(134218)
	if diff := got - sim.Millisecond; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Fatalf("NetTransfer(131.072KiB) = %v, want ~1ms", got)
	}
	// An 8 KB block should take ~61 µs on the wire: network clearly faster
	// than disk, the trend §5 builds on.
	blk := p.NetTransfer(8192)
	if blk > sim.Milliseconds(0.1) {
		t.Fatalf("8KB net transfer = %v, expected well under 0.1ms", blk)
	}
}

func TestDiskSlowerThanNetwork(t *testing.T) {
	// The paper's central trade-off: fetching a block from a peer's memory
	// (network) must be far cheaper than a disk read.
	p := DefaultParams()
	disk := p.DiskSeek + p.DiskRotation + p.DiskMetaSeek + p.DiskTransfer(8192)
	net := 2*p.NetLatency + p.NetTransfer(8192) + p.ServePeerBlock
	if disk < 10*net {
		t.Fatalf("disk %v not >> network %v; Table 1 reconstruction broken", disk, net)
	}
}
