// Package hw models the cluster hardware of §4.2 as simulation service
// centers: per-node CPU, NIC, and bus, plus a shared LAN with a router.
// All cost constants come from (a reconstruction of) Table 1.
package hw

import (
	"repro/internal/sim"
)

// Params holds every modeling constant of Table 1 plus the hardware rates
// derived from the named components (VIA Gb/s LAN, 800 MHz Pentium III with
// a 133 MHz memory bus, IBM Deskstar 75GXP, Cisco 7600 router).
//
// OCR of the paper mangled several Table 1 digits; each reconstructed value
// is marked below. Per-block CPU costs were uniformly rescaled (×0.1 from
// the raw OCR digits) so that total per-request CPU cost remains consistent
// with the paper's reported 2–3 ms responses and "the network is mostly
// idle"; the rescaling applies identically to CC and L2S, preserving all
// relative results.
type Params struct {
	// --- Request processing (CPU) ---

	// ParseTime is the cost to parse a URL request. Table 1: 0.1 ms.
	ParseTime sim.Duration
	// ServeBase and ServePerKB give the time to send locally cached content
	// in reply to a request: ServeBase + size·ServePerKB.
	// Table 1: 0.1 + (Size/115) ms, size in KB.
	ServeBase  sim.Duration
	ServePerKB sim.Duration

	// --- Block operations (CPU; CC-specific) ---

	// FileReqBase and FileReqPerBlock give the cost to process a file
	// request into block operations: FileReqBase + NBlocks·FileReqPerBlock.
	// Table 1 (reconstructed): 0.03 + 0.01·NBlocks ms.
	FileReqBase     sim.Duration
	FileReqPerBlock sim.Duration
	// ServePeerBlock is the CPU cost at a peer to serve a remote block
	// request. Table 1 (reconstructed): 0.07 ms.
	ServePeerBlock sim.Duration
	// CacheNewBlock is the CPU cost to insert a received block into the
	// local cache. Table 1 (reconstructed): 0.01 ms.
	CacheNewBlock sim.Duration
	// ProcessEvictedMaster is the CPU cost at the receiver of a forwarded
	// (evicted) master block. Table 1 (reconstructed): 0.016 ms.
	ProcessEvictedMaster sim.Duration

	// --- Disk (IBM Deskstar 75GXP, conservative per §4.2) ---

	// DiskSeek is the average positioning seek.
	DiskSeek sim.Duration
	// DiskRotation is the average rotational latency (7200 rpm → 4.17 ms).
	DiskRotation sim.Duration
	// DiskMetaSeek is the extra seek charged for metadata on every 64 KB
	// extent access (§4.2).
	DiskMetaSeek sim.Duration
	// DiskKBPerMS is the media transfer rate in KB per millisecond
	// (≈30 MB/s, conservative vs. the 75GXP's ≈37 MB/s).
	DiskKBPerMS float64

	// --- Bus (133 MHz × 8 B ≈ 1064 MB/s) ---

	BusBase    sim.Duration
	BusKBPerMS float64

	// --- Network (VIA Gb/s LAN + Cisco 7600 router) ---

	// NetLatency is the one-way wire latency. §5 puts a round trip at
	// 80–100 µs; we use 38 µs one-way plus router forwarding.
	NetLatency sim.Duration
	// NetKBPerMS is the link bandwidth in KB per millisecond
	// (1 Gb/s = 131.072 KB/ms).
	NetKBPerMS float64
	// RouterFwd is the router's per-message forwarding cost.
	RouterFwd sim.Duration
	// MsgHeader is the size in bytes charged for a control message
	// (requests, directory-free acknowledgements).
	MsgHeader int

	// --- L2S-specific ---

	// HandoffTime is the CPU cost of a TCP hand-off at the accepting node.
	HandoffTime sim.Duration
}

// DefaultParams returns the reconstructed Table 1 constants.
func DefaultParams() Params {
	return Params{
		ParseTime:  sim.Milliseconds(0.1),
		ServeBase:  sim.Milliseconds(0.1),
		ServePerKB: sim.Milliseconds(1.0 / 115.0),

		FileReqBase:          sim.Milliseconds(0.03),
		FileReqPerBlock:      sim.Milliseconds(0.01),
		ServePeerBlock:       sim.Milliseconds(0.07),
		CacheNewBlock:        sim.Milliseconds(0.01),
		ProcessEvictedMaster: sim.Milliseconds(0.016),

		DiskSeek:     sim.Milliseconds(8.5),
		DiskRotation: sim.Milliseconds(4.17),
		DiskMetaSeek: sim.Milliseconds(2.0),
		DiskKBPerMS:  30.0,

		BusBase:    sim.Microseconds(1),
		BusKBPerMS: 1064.0,

		NetLatency: sim.Microseconds(38),
		NetKBPerMS: 131.072,
		RouterFwd:  sim.Microseconds(5),
		MsgHeader:  64,

		HandoffTime: sim.Milliseconds(0.05),
	}
}

// ServeTime is the CPU time to send size bytes of locally cached content in
// reply to a request.
func (p *Params) ServeTime(size int64) sim.Duration {
	return p.ServeBase + sim.Duration(float64(size)/1024*float64(p.ServePerKB))
}

// FileReqTime is the CPU time to process a file request covering nblocks.
func (p *Params) FileReqTime(nblocks int) sim.Duration {
	return p.FileReqBase + sim.Duration(nblocks)*p.FileReqPerBlock
}

// DiskTransfer is the media transfer time for size bytes.
func (p *Params) DiskTransfer(size int64) sim.Duration {
	return sim.Duration(float64(size) / 1024 / p.DiskKBPerMS * float64(sim.Millisecond))
}

// BusTransfer is the bus occupancy for moving size bytes.
func (p *Params) BusTransfer(size int64) sim.Duration {
	return p.BusBase + sim.Duration(float64(size)/1024/p.BusKBPerMS*float64(sim.Millisecond))
}

// NetTransfer is the link occupancy for transmitting size bytes.
func (p *Params) NetTransfer(size int64) sim.Duration {
	return sim.Duration(float64(size) / 1024 / p.NetKBPerMS * float64(sim.Millisecond))
}
