package hw

import (
	"testing"

	"repro/internal/sim"
)

func testCluster(t *testing.T, n int) (*sim.Engine, *Network, []*Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := NewNetwork(eng, &defaultParams, 0)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(eng, i, 0)
	}
	return eng, net, nodes
}

var defaultParams = DefaultParams()

func TestSendDelivers(t *testing.T) {
	eng, net, nodes := testCluster(t, 2)
	delivered := false
	net.Send(nodes[0], nodes[1], 8192, func() { delivered = true })
	end := eng.RunUntilIdle()
	if !delivered {
		t.Fatal("message not delivered")
	}
	// Lower bound: latency + transfer; upper bound: a generous 1 ms.
	min := defaultParams.NetLatency + defaultParams.NetTransfer(8192)
	if end < sim.Time(min) {
		t.Fatalf("delivery at %v, faster than physics %v", end, min)
	}
	if end > sim.Time(sim.Millisecond) {
		t.Fatalf("delivery at %v, expected < 1ms for 8KB", end)
	}
}

func TestSendFromOutside(t *testing.T) {
	eng, net, nodes := testCluster(t, 1)
	delivered := false
	net.Send(nil, nodes[0], 512, func() { delivered = true })
	eng.RunUntilIdle()
	if !delivered {
		t.Fatal("external message not delivered")
	}
	if nodes[0].NIC.Served() != 1 {
		t.Fatalf("receiver NIC served %d, want 1", nodes[0].NIC.Served())
	}
}

func TestSendToOutside(t *testing.T) {
	eng, net, nodes := testCluster(t, 1)
	delivered := false
	net.Send(nodes[0], nil, 512, func() { delivered = true })
	eng.RunUntilIdle()
	if !delivered {
		t.Fatal("outbound message not delivered")
	}
	if nodes[0].NIC.Served() != 1 {
		t.Fatalf("sender NIC served %d, want 1", nodes[0].NIC.Served())
	}
	if net.Router.Served() != 1 {
		t.Fatalf("router served %d, want 1", net.Router.Served())
	}
}

func TestNICSerializesTransfers(t *testing.T) {
	eng, net, nodes := testCluster(t, 2)
	done := 0
	var last sim.Time
	for i := 0; i < 4; i++ {
		net.Send(nodes[0], nodes[1], 131072, func() {
			done++
			last = eng.Now()
		})
	}
	eng.RunUntilIdle()
	if done != 4 {
		t.Fatalf("delivered %d, want 4", done)
	}
	// Four 1 ms transfers must serialize on the sender NIC: ≥ 4 ms total.
	if last < sim.Time(4*sim.Millisecond) {
		t.Fatalf("4×128KiB finished at %v, expected ≥ 4ms (NIC serialization)", last)
	}
}

func TestSendMsgHeaderSized(t *testing.T) {
	eng, net, nodes := testCluster(t, 2)
	var at sim.Time
	net.SendMsg(nodes[0], nodes[1], func() { at = eng.Now() })
	eng.RunUntilIdle()
	// A 64-byte control message should arrive in well under 100 µs.
	if at > sim.Time(100*sim.Microsecond) {
		t.Fatalf("control message took %v", at)
	}
}

func TestRouterIsShared(t *testing.T) {
	eng, net, nodes := testCluster(t, 4)
	for i := 0; i < 4; i++ {
		net.SendMsg(nodes[i], nodes[(i+1)%4], nil)
	}
	eng.RunUntilIdle()
	if net.Router.Served() != 4 {
		t.Fatalf("router served %d, want 4", net.Router.Served())
	}
}

func TestNodeResetStats(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNode(eng, 0, 0)
	n.CPU.Do(10*sim.Millisecond, nil)
	eng.RunUntilIdle()
	n.ResetStats()
	if u := n.CPU.Utilization(); u != 0 {
		t.Fatalf("utilization after reset = %f", u)
	}
}
