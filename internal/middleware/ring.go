package middleware

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/block"
)

// The membership view is the cluster's answer to "who is here and who owns
// what". It is an immutable snapshot — every mutation builds a new view with
// a higher epoch and installs it atomically — so the read path can consult
// it without locks (satellite: Node.home is a single atomic pointer load).
//
// A member is one slot in a dense array indexed by node ID. Slots are never
// reused or compacted: a dead member keeps its ID forever (its slot turns
// into a hole), and a joining member takes the next free ID. That keeps
// every existing per-peer array (connections, breakers, invalidation
// origins) index-stable across membership changes.

// memberState is a member slot's lifecycle state. There are exactly three:
// "suspect" is deliberately not a view state — suspicion is a local,
// per-observer judgement (see heartbeats in member.go) and only its
// promotion to dead is cluster-wide.
type memberState uint8

const (
	stateAlive    memberState = iota // in the ring, serving
	stateDraining                    // out of the ring, still serving (handing blocks off)
	stateDead                        // out of the ring, unreachable
)

func (s memberState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateDraining:
		return "draining"
	case stateDead:
		return "dead"
	}
	return fmt.Sprintf("memberState(%d)", uint8(s))
}

// memberInfo is one member slot. An empty Addr marks a slot that was never
// filled (possible after decoding a view from a newer cluster).
type memberInfo struct {
	Addr  string
	State memberState
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int32
}

// vnodesPerMember is the virtual-node count per alive member. 64 points per
// member keeps the max/mean partition-size ratio near 1.25 at the cluster
// sizes the paper simulates, for a ring of a few hundred points.
const vnodesPerMember = 64

// memberView is an immutable membership snapshot: the epoch, the member
// slots, and the consistent-hash ring derived from the alive slots. When
// static is set the ring is empty and home() is the paper's original
// modulo mapping, byte-for-byte (pinned by replay equivalence).
type memberView struct {
	epoch   uint64
	static  bool
	members []memberInfo
	ring    []ringPoint
	// alive lists the in-ring slot IDs in ascending order — the domain of
	// the partitioned directory's manager mapping.
	alive []int32
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash
// used both to place virtual nodes and to hash keys onto the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newMemberView builds the view (and its ring) for the given member slots.
// The members slice is owned by the view afterwards; callers must pass a
// fresh copy.
func newMemberView(epoch uint64, static bool, members []memberInfo) *memberView {
	v := &memberView{epoch: epoch, static: static, members: members}
	if static {
		return v
	}
	for i, m := range members {
		if m.State != stateAlive || m.Addr == "" {
			continue
		}
		v.alive = append(v.alive, int32(i))
		base := mix64(uint64(i+1) * 0x9e3779b97f4a7c15)
		for k := 0; k < vnodesPerMember; k++ {
			v.ring = append(v.ring, ringPoint{hash: mix64(base + uint64(k)), node: int32(i)})
		}
	}
	sort.Slice(v.ring, func(a, b int) bool {
		if v.ring[a].hash != v.ring[b].hash {
			return v.ring[a].hash < v.ring[b].hash
		}
		return v.ring[a].node < v.ring[b].node
	})
	return v
}

// home maps a file to its home node under this view: the modulo mapping in
// static mode, the ring successor of the key's hash otherwise. ok is false
// when the view has no placeable member.
func (v *memberView) home(f block.FileID) (int, bool) {
	if v.static {
		if len(v.members) == 0 {
			return 0, false
		}
		return int(f) % len(v.members), true
	}
	if len(v.ring) == 0 {
		return 0, false
	}
	return int(v.ring[v.search(mix64(uint64(f)))].node), true
}

// homeExcluding maps a file to the first ring node that is not skip — the
// successor a reader falls back to when the home looks down. In static mode
// (no ring) and in single-member rings it returns the plain home.
func (v *memberView) homeExcluding(f block.FileID, skip int) (int, bool) {
	if v.static || len(v.ring) == 0 {
		return v.home(f)
	}
	i := v.search(mix64(uint64(f)))
	for probes := 0; probes < len(v.ring); probes++ {
		p := v.ring[(i+probes)%len(v.ring)]
		if int(p.node) != skip {
			return int(p.node), true
		}
	}
	return int(v.ring[i].node), true
}

// search returns the index of the first ring point with hash >= h, wrapping
// to 0 past the end.
func (v *memberView) search(h uint64) int {
	i := sort.Search(len(v.ring), func(i int) bool { return v.ring[i].hash >= h })
	if i == len(v.ring) {
		return 0
	}
	return i
}

// size is the member-slot count (dead slots and holes included) — the bound
// of every per-peer array.
func (v *memberView) size() int { return len(v.members) }

// reachable reports whether slot i can be sent an RPC: filled and not dead.
// Draining members are reachable — they keep serving until handed off.
func (v *memberView) reachable(i int) bool {
	return i >= 0 && i < len(v.members) && v.members[i].State != stateDead && v.members[i].Addr != ""
}

// manager deterministically maps a directory hash onto an in-ring member —
// the elastic counterpart of the static hash % clusterSize partition.
func (v *memberView) manager(h uint32) (int, bool) {
	if len(v.alive) == 0 {
		return 0, false
	}
	return int(v.alive[h%uint32(len(v.alive))]), true
}

// aliveCount counts the slots currently in the ring.
func (v *memberView) aliveCount() int {
	c := 0
	for _, m := range v.members {
		if m.State == stateAlive && m.Addr != "" {
			c++
		}
	}
	return c
}

// withMember returns a copy of the view's member slots with slot id set to
// the given info, growing the slice if id is a new slot.
func (v *memberView) withMember(id int, info memberInfo) []memberInfo {
	n := len(v.members)
	if id >= n {
		n = id + 1
	}
	members := make([]memberInfo, n)
	copy(members, v.members)
	members[id] = info
	return members
}

// RingHome is the exported consistent-hash mapping for an n-node cluster of
// all-alive members — what a ring-mode cluster built by SetAddrs computes.
// Harnesses use it to reason about placement (e.g. excluding a crashed
// node's homed files from a trace) without a live view in hand.
func RingHome(f block.FileID, n int) int {
	if n <= 0 {
		return 0
	}
	vi, ok := ringHomeCache.Load(n)
	if !ok {
		members := make([]memberInfo, n)
		for i := range members {
			members[i] = memberInfo{Addr: "x", State: stateAlive}
		}
		vi, _ = ringHomeCache.LoadOrStore(n, newMemberView(1, false, members))
	}
	h, _ := vi.(*memberView).home(f)
	return h
}

// ringHomeCache memoizes the synthetic all-alive views behind RingHome,
// keyed by cluster size.
var ringHomeCache sync.Map

// --- wire codec ---

// Views travel in MsgViewReply/MsgViewUpdate payloads:
//
//	epoch  u64
//	static u8
//	count  u32
//	count × { state u8, addrLen u16, addr bytes }
const maxViewMembers = 1 << 16

// appendView serializes the view onto buf.
func appendView(buf []byte, v *memberView) []byte {
	buf = binary.BigEndian.AppendUint64(buf, v.epoch)
	s := byte(0)
	if v.static {
		s = 1
	}
	buf = append(buf, s)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.members)))
	for _, m := range v.members {
		buf = append(buf, byte(m.State))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Addr)))
		buf = append(buf, m.Addr...)
	}
	return buf
}

// decodeView parses a serialized view, rebuilding the ring.
func decodeView(p []byte) (*memberView, error) {
	if len(p) < 13 {
		return nil, fmt.Errorf("middleware: view payload too short (%d bytes)", len(p))
	}
	epoch := binary.BigEndian.Uint64(p)
	static := p[8] == 1
	count := binary.BigEndian.Uint32(p[9:])
	if count > maxViewMembers {
		return nil, fmt.Errorf("middleware: view member count %d exceeds limit", count)
	}
	p = p[13:]
	members := make([]memberInfo, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 3 {
			return nil, fmt.Errorf("middleware: view payload truncated at member %d", i)
		}
		st := memberState(p[0])
		if st > stateDead {
			return nil, fmt.Errorf("middleware: view member %d has unknown state %d", i, p[0])
		}
		alen := int(binary.BigEndian.Uint16(p[1:]))
		p = p[3:]
		if len(p) < alen {
			return nil, fmt.Errorf("middleware: view payload truncated in member %d address", i)
		}
		members = append(members, memberInfo{Addr: string(p[:alen]), State: st})
		p = p[alen:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("middleware: %d trailing bytes after view payload", len(p))
	}
	return newMemberView(epoch, static, members), nil
}
