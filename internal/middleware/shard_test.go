package middleware

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// TestResolveStoreShards pins the shard-count resolution rules: power-of-two
// rounding, the NumCPU default, the 64 cap, and the capacity clamp (every
// shard needs at least one slot).
func TestResolveStoreShards(t *testing.T) {
	cases := []struct {
		requested, capacity, want int
	}{
		{1, 1024, 1},
		{2, 1024, 2},
		{3, 1024, 4},
		{5, 1024, 8},
		{64, 1024, 64},
		{1000, 1024, 64}, // cap at 64
		{8, 2, 2},        // capacity clamp
		{8, 1, 1},
		{16, 9, 8}, // clamp rounds down in powers of two
	}
	for _, c := range cases {
		if got := resolveStoreShards(c.requested, c.capacity); got != c.want {
			t.Errorf("resolveStoreShards(%d, %d) = %d, want %d", c.requested, c.capacity, got, c.want)
		}
	}
	// The default (<= 0) covers NumCPU with a power of two.
	def := resolveStoreShards(0, 1<<20)
	if def < 1 || def&(def-1) != 0 || def > 64 {
		t.Fatalf("default shard count %d not a power of two in [1, 64]", def)
	}
	if def < runtime.NumCPU() && def != 64 {
		t.Fatalf("default shard count %d does not cover NumCPU %d", def, runtime.NumCPU())
	}
}

// TestShardedStoreCapacitySums: per-shard capacities sum exactly to the
// configured total, including when the capacity does not divide evenly, and
// the aggregate Len never exceeds it under full-store churn.
func TestShardedStoreCapacitySums(t *testing.T) {
	const capacity, shards = 21, 4 // 21 = 5+5+5+6: remainder spread
	s := NewStoreShards(capacity, core.PolicyMaster, shards)
	if s.ShardCount() != shards {
		t.Fatalf("shard count %d, want %d", s.ShardCount(), shards)
	}
	perShard := 0
	for _, sh := range s.shards {
		perShard += sh.c.Cap()
	}
	if perShard != capacity {
		t.Fatalf("per-shard capacities sum to %d, want %d", perShard, capacity)
	}
	// Overfill by 4x: Len can never exceed capacity, and with the uniform
	// shard hash every shard ends exactly full.
	for i := 0; i < 4*capacity; i++ {
		if ev := s.Insert(sid(i, 0), []byte{byte(i)}, false); ev != nil {
			ev.Release()
		}
		if s.Len() > capacity {
			t.Fatalf("Len %d exceeds capacity %d after %d inserts", s.Len(), capacity, i+1)
		}
	}
	for i, sh := range s.shards {
		if sh.c.Len() != sh.c.Cap() {
			t.Errorf("shard %d holds %d blocks, capacity %d (should be full)", i, sh.c.Len(), sh.c.Cap())
		}
	}
	if s.Len() != capacity {
		t.Fatalf("full store Len %d, want %d", s.Len(), capacity)
	}
}

// TestShardedStoreCountersExact: the lock-free aggregate counters (Len,
// Masters, Replicas, OldestAge) stay exact across inserts, replica installs,
// and removals on a multi-shard store.
func TestShardedStoreCountersExact(t *testing.T) {
	s := NewStoreShards(64, core.PolicyMaster, 8)
	for i := 0; i < 16; i++ {
		s.Insert(sid(1, i), []byte("m"), true)
	}
	for i := 0; i < 8; i++ {
		s.InsertReplica(sid(2, i), []byte("r"))
	}
	if s.Len() != 24 || s.Masters() != 16 || s.Replicas() != 8 {
		t.Fatalf("len/masters/replicas = %d/%d/%d, want 24/16/8", s.Len(), s.Masters(), s.Replicas())
	}
	if _, ok := s.OldestAge(); !ok {
		t.Fatal("OldestAge empty on a populated store")
	}
	for i := 0; i < 16; i++ {
		if present, master := s.Remove(sid(1, i)); !present || !master {
			t.Fatalf("master %d: present=%v master=%v", i, present, master)
		}
	}
	for i := 0; i < 8; i++ {
		if present, master := s.Remove(sid(2, i)); !present || master {
			t.Fatalf("replica %d: present=%v master=%v", i, present, master)
		}
	}
	if s.Len() != 0 || s.Masters() != 0 || s.Replicas() != 0 {
		t.Fatalf("emptied store len/masters/replicas = %d/%d/%d", s.Len(), s.Masters(), s.Replicas())
	}
	if _, ok := s.OldestAge(); ok {
		t.Fatal("OldestAge reports a block on an empty store")
	}
}

// TestShardedStoreReplicaEviction: a replica evicted from a multi-shard
// store carries its Replica flag (so the node layer retires it from the
// manager's set) no matter which shard it lived in.
func TestShardedStoreReplicaEviction(t *testing.T) {
	s := NewStoreShards(8, core.PolicyMaster, 8) // one slot per shard
	seen := 0
	for i := 0; i < 64; i++ {
		s.InsertReplica(sid(i, 0), []byte("r"))
	}
	// Every shard is full of replicas now; further inserts must evict
	// replica-flagged victims from the right shard.
	for i := 64; i < 128; i++ {
		if ev := s.InsertReplica(sid(i, 0), []byte("r")); ev != nil {
			if !ev.Replica {
				t.Fatalf("evicted %v not flagged as replica", ev.ID)
			}
			if s.shardOf(ev.ID) != s.shardOf(sid(i, 0)) {
				t.Fatalf("victim %v evicted from a different shard than the insert", ev.ID)
			}
			if s.IsReplica(ev.ID) {
				t.Fatalf("evicted replica %v still tracked", ev.ID)
			}
			seen++
			ev.Release()
		}
	}
	if seen == 0 {
		t.Fatal("no replica evictions observed")
	}
}

// TestShardOneMatchesLegacyOrder: with shard count 1 the store is the exact
// single-lock global LRU — eviction order across files is age order, which is
// what the replay-equivalence suite relies on (NewStore pins one shard).
func TestShardOneMatchesLegacyOrder(t *testing.T) {
	s := NewStore(3, core.PolicyBasic)
	if s.ShardCount() != 1 {
		t.Fatalf("NewStore shard count %d, want 1", s.ShardCount())
	}
	s.Insert(sid(1, 0), []byte("a"), true)
	s.Insert(sid(2, 0), []byte("b"), false)
	s.Insert(sid(3, 0), []byte("c"), false)
	// Touch 1 so 2 is the global LRU victim.
	if _, ok := s.Get(sid(1, 0)); !ok {
		t.Fatal("warm block missing")
	}
	ev := s.Insert(sid(4, 0), []byte("d"), false)
	if ev == nil || ev.ID != sid(2, 0) {
		t.Fatalf("eviction %+v, want global-LRU victim 2:0", ev)
	}
	ev.Release()
}

// TestGetRefPinsAcrossRemove is the refcount contract at its sharpest: a
// pinned reference keeps its bytes bit-identical through Remove and the
// buffer's slot being refilled by new content.
func TestGetRefPinsAcrossRemove(t *testing.T) {
	s := NewStoreShards(8, core.PolicyMaster, 4)
	want := SyntheticBlock(7, 3, 4096)
	s.Insert(sid(7, 3), append([]byte(nil), want...), true)
	pb, ok := s.GetRef(sid(7, 3))
	if !ok {
		t.Fatal("GetRef missed")
	}
	s.Remove(sid(7, 3))
	s.Insert(sid(7, 3), SyntheticBlock(9, 9, 4096), true)
	if !bytes.Equal(pb.data, want) {
		t.Fatal("pinned bytes changed after Remove + reinsert")
	}
	pb.release()
}

// TestGetBlockMutationCanary: the public GetBlock hands back the caller's own
// copy — mutating it must never reach the cache, and a reader pinned on the
// same block must never observe the mutation. This is the regression test
// for the old dst==nil aliasing hazard, where GetBlock returned a slice
// aliasing the store's buffer.
func TestGetBlockMutationCanary(t *testing.T) {
	geom := block.Geometry{Size: 512, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 4 * 512}
	nodes, _ := startClusterCfg(t, 1, 16, sizes, func(i int, cfg *Config) {
		cfg.Geometry = geom
	})
	n := nodes[0]
	id := block.ID{File: 0, Idx: 0}
	want, err := n.GetBlock(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.GetBlock(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		got[i] ^= 0xFF // scribble over the returned slice
	}
	again, err := n.GetBlock(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("mutating GetBlock's return value corrupted the cache")
	}
}

// TestPinnedReadRaceCanary drives concurrent pinned reads against an
// eviction storm on the same tiny store: with the refcount contract intact
// the race detector sees no unsynchronized recycle and every pinned buffer
// stays bit-stable while held. (Run under -race; without the pin this is the
// use-after-recycle the zero-copy refactor exists to prevent.)
func TestPinnedReadRaceCanary(t *testing.T) {
	s := NewStoreShards(4, core.PolicyBasic, 4) // one slot per shard: constant churn
	const blocks = 32
	mk := func(i int) []byte { return SyntheticBlock(block.FileID(i), 0, 2048) }
	var writer, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writer: permanent insert/evict churn across every shard.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if ev := s.Insert(sid(i%blocks, 0), mk(i%blocks), i%2 == 0); ev != nil {
				ev.Release()
			}
		}
	}()
	// Readers: pin whatever is cached, verify it stays identical while held.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				id := sid((seed+i)%blocks, 0)
				pb, ok := s.GetRef(id)
				if !ok {
					continue
				}
				snapshot := append([]byte(nil), pb.data...)
				runtime.Gosched() // let the churn try to recycle under us
				if !bytes.Equal(snapshot, pb.data) {
					t.Errorf("pinned payload of %v changed while held", id)
					pb.release()
					return
				}
				if !bytes.Equal(pb.data, mk((seed+i)%blocks)) {
					t.Errorf("pinned payload of %v has wrong content", id)
					pb.release()
					return
				}
				pb.release()
			}
		}(r * 7)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
