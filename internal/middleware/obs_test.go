package middleware

import (
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/obs"
)

// TestClusterStatsAggregation pins the aggregation rules of ClusterStats
// against a live 4-node cluster: counters sum, HintAccuracy takes the
// cluster minimum, per-RPC-type latency histograms merge bucket-wise, and
// a crashed node is skipped (its counters died with it) instead of failing
// the aggregate.
func TestClusterStatsAggregation(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4096, 1: 4096, 2: 4096, 3: 4096}
	nodes, client := startFaultCluster(t, 4, 64, sizes, func(i int, cfg *Config) {
		cfg.Hints = true
	}, ClientConfig{})

	// Touch every file through every entry node so each node records
	// accesses and at least one RPC (peer fetch or home read).
	for entry := 0; entry < 4; entry++ {
		for f := 0; f < 4; f++ {
			if _, err := client.ReadVia(entry, block.FileID(f)); err != nil {
				t.Fatalf("read file %d via %d: %v", f, entry, err)
			}
		}
	}

	per := make([]Stats, 4)
	for i := range per {
		s, err := client.NodeStats(i)
		if err != nil {
			t.Fatalf("node %d stats: %v", i, err)
		}
		per[i] = s
	}
	sum, err := client.ClusterStats()
	if err != nil {
		t.Fatalf("cluster stats: %v", err)
	}

	var wantAccesses, wantLocal, wantDisk uint64
	wantAcc := 1.0
	wantLat := make(map[string]uint64)
	for _, s := range per {
		wantAccesses += s.Accesses
		wantLocal += s.LocalHits
		wantDisk += s.DiskReads
		if s.HintAccuracy < wantAcc {
			wantAcc = s.HintAccuracy
		}
		for k, h := range s.RPCLatency {
			wantLat[k] += h.Count
		}
	}
	if sum.Accesses != wantAccesses || sum.LocalHits != wantLocal || sum.DiskReads != wantDisk {
		t.Fatalf("aggregate counters = %d/%d/%d, want %d/%d/%d",
			sum.Accesses, sum.LocalHits, sum.DiskReads, wantAccesses, wantLocal, wantDisk)
	}
	if sum.HintAccuracy != wantAcc {
		t.Fatalf("aggregate HintAccuracy = %v, want the minimum %v", sum.HintAccuracy, wantAcc)
	}
	if len(wantLat) == 0 {
		t.Fatal("no node recorded any RPC latency — the cross-node reads should have produced RPCs")
	}
	for k, want := range wantLat {
		h, ok := sum.RPCLatency[k]
		if !ok {
			t.Fatalf("aggregate RPCLatency missing %q", k)
		}
		if h.Count != want {
			t.Fatalf("aggregate RPCLatency[%q].Count = %d, want the per-node sum %d", k, h.Count, want)
		}
		var bucketSum uint64
		for _, b := range h.Buckets {
			bucketSum += b
		}
		if bucketSum != h.Count {
			t.Fatalf("merged histogram %q inconsistent: buckets sum to %d, Count %d", k, bucketSum, h.Count)
		}
	}

	// Crash one node: the aggregate must keep answering, minus its share.
	nodes[3].Close()
	after, err := client.ClusterStats()
	if err != nil {
		t.Fatalf("cluster stats after crash: %v", err)
	}
	wantAfter := wantAccesses - per[3].Accesses
	if after.Accesses > wantAccesses || after.Accesses < wantAfter {
		t.Fatalf("post-crash Accesses = %d, want within [%d, %d] (crashed node skipped)",
			after.Accesses, wantAfter, wantAccesses)
	}

	// All nodes down: aggregation must fail, not report zeros.
	for i := 0; i < 3; i++ {
		nodes[i].Close()
	}
	if _, err := client.ClusterStats(); err == nil {
		t.Fatal("cluster stats with every node down should fail")
	}
}

// TestTraceRPC exercises the trace-dump RPC end to end: events recorded on
// a node's tracer come back through Client.NodeTrace, and a node running
// without a tracer reports an empty dump instead of an error.
func TestTraceRPC(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4096}
	tracer := obs.NewTracer(8)
	_, client := startFaultCluster(t, 2, 64, sizes, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Tracer = tracer
		}
	}, ClientConfig{})

	for i := 0; i < 12; i++ {
		tracer.Record(obs.Event{Kind: traceRetry, Node: 0, Peer: 1, File: 0, Idx: int32(i)})
	}

	d, err := client.NodeTrace(0)
	if err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	if d.Node != 0 {
		t.Fatalf("dump names node %d, want 0", d.Node)
	}
	if d.Total != 12 {
		t.Fatalf("dump total = %d, want 12 (overwritten events still counted)", d.Total)
	}
	if len(d.Events) != 8 {
		t.Fatalf("dump retained %d events, want the ring capacity 8", len(d.Events))
	}
	for i, e := range d.Events {
		if want := int32(i + 4); e.Idx != want {
			t.Fatalf("event %d has Idx %d, want %d (oldest-first after wrap)", i, e.Idx, want)
		}
		if e.Kind != traceRetry {
			t.Fatalf("event %d kind = %q, want %q", i, e.Kind, traceRetry)
		}
	}

	empty, err := client.NodeTrace(1)
	if err != nil {
		t.Fatalf("trace dump of untraced node: %v", err)
	}
	if empty.Total != 0 || len(empty.Events) != 0 {
		t.Fatalf("untraced node dumped %d/%d events, want none", empty.Total, len(empty.Events))
	}
}

// TestNodeRegisterMetrics scrapes a node's registered metrics after live
// traffic and checks the key series appear with sane values.
func TestNodeRegisterMetrics(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4096, 1: 4096}
	nodes, client := startFaultCluster(t, 2, 64, sizes, nil, ClientConfig{})

	for f := 0; f < 2; f++ {
		for entry := 0; entry < 2; entry++ {
			if _, err := client.ReadVia(entry, block.FileID(f)); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}

	reg := obs.NewRegistry()
	nodes[0].RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("write prometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cc_accesses_total counter",
		"cc_accesses_total ",
		"cc_local_hits_total ",
		"cc_disk_reads_total ",
		"cc_store_blocks ",
		"# TYPE cc_rpc_latency_seconds histogram",
		`cc_rpc_latency_seconds_bucket{type="get_block",le="+Inf"}`,
		`cc_rpc_latency_seconds_count{type="get_block"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	s := nodes[0].Stats()
	if s.Accesses == 0 {
		t.Fatal("node 0 recorded no accesses")
	}
}
