package middleware

import (
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair builds two connected conns over an in-memory duplex link, with
// the given handler on the "server" side.
func pipePair(t *testing.T, handle func(*Frame) *Frame) (client, server *conn) {
	t.Helper()
	cn, sn := net.Pipe()
	client = newConn(cn, connConfig{})
	server = newConn(sn, connConfig{handle: handle, workers: 2})
	t.Cleanup(func() {
		client.close()
		server.close()
	})
	return client, server
}

func TestConnRoundTrip(t *testing.T) {
	client, _ := pipePair(t, func(f *Frame) *Frame {
		if f.Type != MsgGetBlock {
			return errFrame("unexpected type %d", f.Type)
		}
		return &Frame{Type: MsgBlockData, File: f.File, Idx: f.Idx, Payload: []byte("data")}
	})
	resp, err := client.roundTrip(&Frame{Type: MsgGetBlock, File: 1, Idx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgBlockData || string(resp.Payload) != "data" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestConnConcurrentRoundTrips(t *testing.T) {
	client, _ := pipePair(t, func(f *Frame) *Frame {
		// Echo the request's Idx so responses are distinguishable.
		return &Frame{Type: MsgAck, Idx: f.Idx, Aux: int64(f.Idx) * 10}
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int32) {
			defer wg.Done()
			resp, err := client.roundTrip(&Frame{Type: MsgGetBlock, Idx: i})
			if err != nil {
				errs <- err
				return
			}
			if resp.Idx != i || resp.Aux != int64(i)*10 {
				errs <- errContentMismatch
			}
		}(int32(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConnConcurrentRoundTripsMidFlightClose interleaves many concurrent
// round trips with a connection teardown: every call must return either its
// own response or errConnClosed — never hang, never deliver a mismatched
// frame. Run under -race this also exercises the reply-channel pool against
// late response/close races.
func TestConnConcurrentRoundTripsMidFlightClose(t *testing.T) {
	gate := make(chan struct{})
	client, server := pipePair(t, func(f *Frame) *Frame {
		if f.Idx >= 16 {
			<-gate // stall the later requests until after close
		}
		return &Frame{Type: MsgAck, Idx: f.Idx}
	})
	var wg sync.WaitGroup
	results := make([]error, 48)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.roundTrip(&Frame{Type: MsgGetBlock, Idx: int32(i)})
			if err != nil {
				results[i] = err
				return
			}
			if resp.Idx != int32(i) {
				t.Errorf("request %d got response for %d", i, resp.Idx)
			}
			releaseFrame(resp)
		}(i)
	}
	server.close()
	close(gate)
	wg.Wait()
	// Requests that reached the pending map drain with errConnClosed; ones
	// that lost the race at the write may surface the raw pipe error before
	// this side's teardown finishes. Either way every call must return.
	for i, err := range results {
		if err != nil && err != errConnClosed {
			t.Logf("request %d failed at the write: %v", i, err)
		}
	}
	// The pending map must have fully drained.
	client.pmu.Lock()
	n := len(client.pending)
	client.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d round trips still pending after close", n)
	}
	if _, err := client.roundTrip(&Frame{Type: MsgGetBlock}); err != errConnClosed {
		t.Fatalf("round trip after close: %v, want errConnClosed", err)
	}
}

// TestConnRoundTripTimesOut pins the deadline path: a round trip whose
// reply is withheld must fail with errRPCTimeout near the configured
// deadline, the connection must stay usable for later requests, and the
// late reply must be discarded safely (pool ownership: no double release,
// no delivery to a reused request ID).
func TestConnRoundTripTimesOut(t *testing.T) {
	slow := make(chan struct{})
	cn, sn := net.Pipe()
	server := newConn(sn, connConfig{workers: 2, handle: func(f *Frame) *Frame {
		if f.Aux == 1 {
			<-slow // withhold this reply until after the client gave up
		}
		return &Frame{Type: MsgAck, Idx: f.Idx}
	}})
	client := newConn(cn, connConfig{timeout: 60 * time.Millisecond})
	t.Cleanup(func() {
		client.close()
		server.close()
	})

	start := time.Now()
	_, err := client.roundTrip(&Frame{Type: MsgGetBlock, Idx: 1, Aux: 1})
	if err != errRPCTimeout {
		t.Fatalf("withheld reply: err = %v, want errRPCTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v, want ≈60ms", elapsed)
	}

	// Release the stalled reply and issue a fresh request on the same
	// connection: the late frame for the abandoned ID must be dropped and
	// the new round trip must still complete.
	close(slow)
	resp, err := client.roundTrip(&Frame{Type: MsgGetBlock, Idx: 2})
	if err != nil {
		t.Fatalf("round trip after timeout: %v", err)
	}
	if resp.Idx != 2 {
		t.Fatalf("resp.Idx = %d, want 2 (late reply must not be delivered)", resp.Idx)
	}
	releaseFrame(resp)

	// The abandoned entry must not linger in the pending map.
	client.pmu.Lock()
	n := len(client.pending)
	client.pmu.Unlock()
	if n != 0 {
		t.Fatalf("%d entries still pending after timeout", n)
	}
}

func TestConnErrorResponse(t *testing.T) {
	client, _ := pipePair(t, func(f *Frame) *Frame {
		return errFrame("nope")
	})
	if _, err := client.roundTrip(&Frame{Type: MsgGetBlock}); err == nil {
		t.Fatal("error response not surfaced")
	}
}

func TestConnCloseFailsPending(t *testing.T) {
	stall := make(chan struct{})
	client, server := pipePair(t, func(f *Frame) *Frame {
		<-stall
		return &Frame{Type: MsgAck}
	})
	done := make(chan error, 1)
	go func() {
		_, err := client.roundTrip(&Frame{Type: MsgGetBlock})
		done <- err
	}()
	// Let the request reach the server, then kill the connection.
	server.close()
	if err := <-done; err == nil {
		t.Fatal("round trip on closed conn succeeded")
	}
	close(stall)
	// Further round trips fail fast.
	if _, err := client.roundTrip(&Frame{Type: MsgGetBlock}); err == nil {
		t.Fatal("round trip after close succeeded")
	}
}

func TestConnOneWayMessagesIgnoredWithoutHandler(t *testing.T) {
	client, server := pipePair(t, nil)
	// The server has no handler: a request frame must be dropped without
	// wedging the read loop.
	if err := server.write(&Frame{Type: MsgInvalidate}); err != nil {
		t.Fatal(err)
	}
	_ = client
}

func TestConnStampApplied(t *testing.T) {
	cn, sn := net.Pipe()
	// The request frame is pooled and reclaimed after the handler returns:
	// copy the stamped fields out instead of retaining the frame.
	var gotSender int32
	var gotAge int64
	ready := make(chan struct{})
	server := newConn(sn, connConfig{handle: func(f *Frame) *Frame {
		gotSender, gotAge = f.Sender, f.OldestAge
		close(ready)
		return &Frame{Type: MsgAck}
	}})
	client := newConn(cn, connConfig{stamp: func(f *Frame) {
		f.Sender = 42
		f.OldestAge = 777
	}})
	defer server.close()
	defer client.close()
	if _, err := client.roundTrip(&Frame{Type: MsgGetBlock}); err != nil {
		t.Fatal(err)
	}
	<-ready
	if gotSender != 42 || gotAge != 777 {
		t.Fatalf("stamp not applied: sender=%d age=%d", gotSender, gotAge)
	}
}
