package middleware

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/block"
)

// FuzzReadFrame hardens the wire decoder against malformed input: it must
// either return an error or a frame that re-encodes losslessly — never
// panic or over-allocate.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: valid frames of each shape.
	seed := []*Frame{
		{Type: MsgAck},
		{Type: MsgGetBlock, Flags: FlagMaster, File: 1, Idx: 2, Aux: 3},
		{Type: MsgBlockData, Payload: []byte("payload")},
		{Type: MsgForward, Hints: []HintDelta{{File: 1, Idx: 0, Node: 2}}, Payload: []byte("x")},
	}
	for _, fr := range seed {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	// Adversarial seeds: the truncated and lying streams a crashed or
	// fault-injected peer produces (see FaultPlan's mid-frame crash).
	var full bytes.Buffer
	if err := WriteFrame(&full, &Frame{Type: MsgBlockData, File: 7, Idx: 3, Payload: bytes.Repeat([]byte{0xA5}, 64)}); err != nil {
		f.Fatal(err)
	}
	enc := full.Bytes()
	f.Add(enc[:10])          // cut mid-header
	f.Add(enc[:headerLen-1]) // one byte short of a full header
	f.Add(enc[:headerLen])   // header promises a payload that never arrives

	huge := append([]byte(nil), enc[:headerLen]...)
	binary.BigEndian.PutUint32(huge[35:], 0xFFFFFFFF) // plen far past any limit
	f.Add(huge)

	manyHints := append([]byte(nil), enc[:headerLen]...)
	manyHints[34] = 255 // nhints over maxHintDeltas
	f.Add(manyHints)

	ackPayload := append([]byte(nil), enc...)
	ackPayload[0] = byte(MsgAck) // payload on a payload-less type
	f.Add(ackPayload)

	// Run fast-path seeds: a valid MsgRunData (two concatenated blocks with
	// master flags in Aux), then truncated and size-lying variants — the
	// shapes a crashed peer or corrupted length field produces mid-run.
	var runBuf bytes.Buffer
	if err := WriteFrame(&runBuf, &Frame{
		Type: MsgRunData, Flags: FlagMaster, File: 5, Idx: 2,
		Aux:     packRunAux(2, 0b11),
		Payload: bytes.Repeat([]byte{0x3C}, 128),
	}); err != nil {
		f.Fatal(err)
	}
	renc := runBuf.Bytes()
	f.Add(renc)
	f.Add(renc[:len(renc)-64]) // truncated: promises 128 payload bytes, carries 64
	f.Add(renc[:headerLen])    // header only: the whole run payload never arrives
	runHuge := append([]byte(nil), renc...)
	binary.BigEndian.PutUint32(runHuge[35:], 1<<30) // oversized: plen lies far past the limit
	f.Add(runHuge)
	runShort := append([]byte(nil), renc...)
	binary.BigEndian.PutUint32(runShort[35:], 16) // plen shorter than the carried run
	f.Add(runShort)

	// Batched directory lookups: a valid index window, then a ragged one.
	var dirBuf bytes.Buffer
	if err := WriteFrame(&dirBuf, &Frame{
		Type: MsgDirLookupN, File: 5,
		Payload: appendIdxPayload(nil, []int32{0, 1, 2, 3}),
	}); err != nil {
		f.Fatal(err)
	}
	denc := dirBuf.Bytes()
	f.Add(denc)
	f.Add(denc[:len(denc)-2]) // ragged index payload (not a multiple of 4)

	// Invalidation-bus frames: a valid batched invalidation window and a
	// catch-up reply, then the ragged and oversized payloads a corrupted
	// stream produces (decodeInvalPayload must reject, never panic).
	var invBuf bytes.Buffer
	if err := WriteFrame(&invBuf, &Frame{
		Type: MsgInvalidateN, Aux: 44,
		Payload: appendInvalPayload(nil, 42, []block.ID{{File: 1, Idx: 0}, {File: 2, Idx: 3}}),
	}); err != nil {
		f.Fatal(err)
	}
	ienc := invBuf.Bytes()
	f.Add(ienc)
	f.Add(ienc[:len(ienc)-3]) // ragged record payload (not 8 + k*8 bytes)
	f.Add(ienc[:headerLen+4]) // cut inside the firstSeq prefix
	var sinceBuf bytes.Buffer
	if err := WriteFrame(&sinceBuf, &Frame{
		Type: MsgInvalSinceReply, Flags: 1, Aux: 7,
		Payload: appendInvalPayload(nil, 7, []block.ID{{File: 9, Idx: 1}}),
	}); err != nil {
		f.Fatal(err)
	}
	senc := sinceBuf.Bytes()
	f.Add(senc)
	invHuge := append([]byte(nil), ienc[:headerLen]...)
	binary.BigEndian.PutUint32(invHuge[35:], uint32(8+(maxInvalBatch+1)*8)) // batch over the limit
	f.Add(invHuge)

	// Membership frames: heartbeat pings, the join/drain control messages,
	// and view transfers carrying an encoded member list — plus the
	// truncated, state-corrupted, and trailing-garbage view payloads
	// decodeView must reject without panicking.
	members := []memberInfo{
		{Addr: "127.0.0.1:7001", State: stateAlive},
		{Addr: "127.0.0.1:7002", State: stateDraining},
		{Addr: "", State: stateDead},
	}
	viewPayload := appendView(nil, newMemberView(9, false, members))
	for _, fr := range []*Frame{
		{Type: MsgPing, Aux: 9},
		{Type: MsgView},
		{Type: MsgViewReply, Aux: 9, Payload: viewPayload},
		{Type: MsgViewUpdate, Payload: viewPayload},
		{Type: MsgJoin, Aux: 3, Payload: []byte("127.0.0.1:7003")},
		{Type: MsgDrain, Aux: 2, Flags: 1},
	} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var viewBuf bytes.Buffer
	if err := WriteFrame(&viewBuf, &Frame{Type: MsgViewUpdate, Payload: viewPayload}); err != nil {
		f.Fatal(err)
	}
	venc := viewBuf.Bytes()
	f.Add(venc[:len(venc)-1]) // view cut inside the last member's address
	badState := append([]byte(nil), venc...)
	badState[headerLen+13] = 99 // first member's state byte out of range
	f.Add(badState)
	viewTrailing := append([]byte(nil), venc...)
	viewTrailing = append(viewTrailing, 0xEE) // trailing garbage after the member list
	binary.BigEndian.PutUint32(viewTrailing[35:], uint32(len(viewPayload)+1))
	f.Add(viewTrailing)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Flags != fr.Flags || fr2.Req != fr.Req ||
			fr2.Sender != fr.Sender || fr2.OldestAge != fr.OldestAge ||
			fr2.File != fr.File || fr2.Idx != fr.Idx || fr2.Aux != fr.Aux ||
			!bytes.Equal(fr2.Payload, fr.Payload) || len(fr2.Hints) != len(fr.Hints) {
			t.Fatal("round trip not lossless")
		}
	})
}
