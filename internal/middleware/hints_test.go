package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func TestFrameHintDeltasRoundTrip(t *testing.T) {
	f := &Frame{
		Type: MsgBlockData, // a payload-carrying type: hints + payload coexist
		Hints: []HintDelta{
			{File: 1, Idx: 2, Node: 3},
			{File: 4, Idx: 5, Node: 6},
		},
		Payload: []byte("body"),
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hints) != 2 || got.Hints[0] != f.Hints[0] || got.Hints[1] != f.Hints[1] {
		t.Fatalf("hints = %+v", got.Hints)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload corrupted by hint section")
	}
}

func TestFrameTooManyHintsRejected(t *testing.T) {
	f := &Frame{Type: MsgAck, Hints: make([]HintDelta, maxHintDeltas+1)}
	if err := WriteFrame(&bytes.Buffer{}, f); err == nil {
		t.Fatal("oversized hint section accepted")
	}
}

// TestHintRedirectAvoidsDisk verifies the probable-owner chain: once a
// node holds the master, a second node's home read is redirected to that
// holder instead of hitting the disk again.
func TestHintRedirectAvoidsDisk(t *testing.T) {
	// File 0 homes at node 0. Node 1 reads it first (becoming master
	// holder); the home learns this. Node 2's later read goes to the home,
	// which redirects it to node 1 — a remote memory hit, not a disk read.
	sizes := map[block.FileID]int64{0: 2048}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, true, sizes)
	want := expect(testGeom, 0, 2048)

	if got, err := client.ReadVia(1, 0); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("prime read: %v", err)
	}
	if got, err := client.ReadVia(2, 0); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("second read: %v", err)
	}
	var disk, remote uint64
	for _, n := range nodes {
		disk += n.Stats().DiskReads
		remote += n.Stats().RemoteHits
	}
	if disk != 2 {
		t.Fatalf("disk reads = %d, want 2 (one per block; redirect must avoid refetch)", disk)
	}
	if remote != 2 {
		t.Fatalf("remote hits = %d, want 2 (node 2 served from node 1's memory)", remote)
	}
}

// TestHintRedirectForceOnStale: the home's hint points at a node that lost
// the block; the requester falls back to a forced disk read.
func TestHintRedirectForceOnStale(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, true, sizes)
	if _, err := client.ReadVia(1, 0); err != nil {
		t.Fatal(err)
	}
	// Node 1 silently drops its copy (simulating eviction without the
	// home learning).
	nodes[1].store.Remove(block.ID{File: 0, Idx: 0})
	got, err := client.ReadVia(2, 0)
	if err != nil {
		t.Fatalf("read after stale redirect: %v", err)
	}
	if !bytes.Equal(got, expect(testGeom, 0, 1024)) {
		t.Fatal("content mismatch")
	}
	if nodes[2].Stats().DiskReads != 1 {
		t.Fatalf("node 2 disk reads = %d, want 1 (forced read)", nodes[2].Stats().DiskReads)
	}
}

// TestHintDeltasSpreadOnTraffic: node A's knowledge of a master location
// reaches node B purely through piggybacked deltas on unrelated traffic.
func TestHintDeltasSpreadOnTraffic(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024, 1: 1024, 2: 1024}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, true, sizes)
	// Node 1 reads file 0 (homed at node 0): node 1 is now master holder
	// and has the fact in its piggyback ring.
	if _, err := client.ReadVia(1, 0); err != nil {
		t.Fatal(err)
	}
	// Unrelated traffic from node 1 to node 2: node 1 serves node 2's
	// request for file 2 (homed at node 2 → node 2 reads locally)... so
	// instead make node 2 fetch file 0's sibling knowledge by having node
	// 1 request something homed at node 2; the request frame carries the
	// deltas.
	if _, err := client.ReadVia(1, 2); err != nil {
		t.Fatal(err)
	}
	// Node 2 should now know that file 0's master is at node 1.
	holder, ok, _ := nodes[2].hints.Lookup(block.ID{File: 0, Idx: 0})
	if !ok || holder != 1 {
		t.Fatalf("delta did not spread: holder=%d ok=%v", holder, ok)
	}
}
