package middleware

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errConnClosed is returned for round trips on a closed connection.
var errConnClosed = errors.New("middleware: connection closed")

// isResponse classifies frame types that answer a prior request.
func isResponse(t MsgType) bool {
	switch t {
	case MsgBlockData, MsgBlockMiss, MsgFileData, MsgDirResult, MsgForwardAck,
		MsgAck, MsgErr, MsgStatsReply, MsgTraceReply, MsgRunData, MsgDirResultN,
		MsgInvalSinceReply, MsgViewReply:
		return true
	}
	return false
}

// connConfig parameterizes a conn.
type connConfig struct {
	// handle processes an incoming request and returns the response (nil
	// for one-way messages).
	handle func(*Frame) *Frame
	// observe sees every incoming frame before dispatch (may be nil).
	observe func(*Frame)
	// stamp decorates every outgoing frame (sender id, piggybacked age);
	// may be nil.
	stamp func(*Frame)
	// workers bounds concurrent request handling on this conn. > 0 starts
	// that many worker goroutines fed from a bounded queue (a request
	// burst applies TCP backpressure instead of spawning unboundedly);
	// <= 0 keeps the legacy one-goroutine-per-request dispatch.
	workers int
	// maxPayload caps accepted frame payloads (<= 0: the 64 MB default).
	maxPayload int
	// timeout bounds each round trip (and each socket write): a reply that
	// does not arrive in time fails the RPC with errRPCTimeout instead of
	// wedging the caller. <= 0 disables deadlines.
	timeout time.Duration
	// latency, when non-nil, observes the duration of every round trip,
	// keyed by the request's frame type (per-RPC-type histograms). nil
	// keeps the round-trip path untouched.
	latency func(MsgType, time.Duration)
}

// conn is a multiplexed protocol connection: concurrent round trips are
// correlated by request ID, incoming requests are dispatched to the
// handler (through the worker pool when configured), and every received
// frame is offered to observe (piggyback processing).
//
// Frame ownership: frames decoded from the wire are pooled. A response
// frame returned by roundTrip belongs to the caller, who must releaseFrame
// it (after TakePayload if the content is retained). A request frame passed
// to the handler is only valid for the duration of the call; the conn
// releases it afterwards. Handler-returned responses are written and then
// released by the conn. Request frames passed to roundTrip/write stay
// owned by the caller.
type conn struct {
	nc  net.Conn
	br  *bufio.Reader
	cfg connConfig

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte     // reusable encode buffer (guarded by wmu)
	iov  [][]byte   // writev scratch: header + payload + segments (guarded by wmu)

	pmu     sync.Mutex
	pending map[uint32]chan *Frame
	reqSeq  uint32
	closed  bool

	reqCh chan *Frame // non-nil when the worker pool is active

	closeOnce sync.Once
	done      chan struct{}
}

func newConn(nc net.Conn, cfg connConfig) *conn {
	if cfg.maxPayload <= 0 {
		cfg.maxPayload = maxPayload
	}
	c := &conn{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64*1024),
		cfg:     cfg,
		pending: make(map[uint32]chan *Frame),
		done:    make(chan struct{}),
	}
	if cfg.handle != nil && cfg.workers > 0 {
		c.reqCh = make(chan *Frame, 4*cfg.workers)
		for i := 0; i < cfg.workers; i++ {
			go c.workLoop()
		}
	}
	go c.readLoop()
	return c
}

// inlinePayloadMax is the largest payload copied into the contiguous write
// buffer; larger payloads go out via writev (net.Buffers) so a multi-
// megabyte file response is neither copied nor split into extra writes.
const inlinePayloadMax = 64 << 10

// singleFrameWriter marks connections (fault-injected transports) that
// must receive exactly one Write call per frame, so per-Write fault
// decisions operate on whole frames and never tear the stream framing.
type singleFrameWriter interface{ singleFrameWrites() }

// write sends one frame: header, hints, and payload in a single socket
// write (one writev for large payloads) instead of one write per section.
// A socket-level write failure poisons the stream (a frame may be half
// out), so it tears the connection down; encode errors leave it intact.
func (c *conn) write(f *Frame) error {
	if c.cfg.stamp != nil {
		c.cfg.stamp(f)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := appendHeader(c.wbuf[:0], f)
	if err != nil {
		return err
	}
	if c.cfg.timeout > 0 {
		// A wedged peer (full TCP window) must fail the write, not block
		// every writer on this conn behind wmu forever.
		c.nc.SetWriteDeadline(time.Now().Add(c.cfg.timeout)) //nolint:errcheck // best effort
	}
	// Scatter-gather: segmented frames (run replies pointing at pinned
	// store buffers) and large single payloads go out as one writev —
	// header + each segment, zero concatenation. Fault-injected transports
	// demand one Write per frame, so they take the contiguous path.
	useWritev := len(f.Segs) > 0 || len(f.Payload) > inlinePayloadMax
	if useWritev {
		if _, single := c.nc.(singleFrameWriter); single {
			useWritev = false
		}
	}
	if useWritev {
		c.wbuf = buf
		c.iov = append(c.iov[:0], buf)
		if len(f.Payload) > 0 {
			c.iov = append(c.iov, f.Payload)
		}
		for _, s := range f.Segs {
			if len(s) > 0 {
				c.iov = append(c.iov, s)
			}
		}
		bufs := net.Buffers(c.iov)
		_, err = bufs.WriteTo(c.nc)
		for i := range c.iov {
			c.iov[i] = nil // drop payload references; scratch is retained
		}
	} else {
		buf = append(buf, f.Payload...)
		for _, s := range f.Segs {
			buf = append(buf, s...)
		}
		c.wbuf = buf
		_, err = c.nc.Write(buf)
	}
	if err != nil {
		c.close()
	}
	return err
}

// replyChPool recycles the one-shot reply channels of roundTrip.
var replyChPool = sync.Pool{New: func() any { return make(chan *Frame, 1) }}

// putReplyCh drains a possible undelivered response and recycles the
// channel. Callers must guarantee no further send can occur (the pending
// entry is gone: either a response/nil was sent under pmu, or the caller
// deleted the entry itself).
func putReplyCh(ch chan *Frame) {
	select {
	case f := <-ch:
		releaseFrame(f)
	default:
	}
	replyChPool.Put(ch)
}

// roundTrip sends a request and waits for its response. The request frame
// stays owned by the caller; the returned response frame must be released
// by the caller. With a latency observer configured, the whole round trip
// (including a timed-out or failed one — the time was spent either way) is
// recorded under the request's frame type.
func (c *conn) roundTrip(f *Frame) (*Frame, error) {
	if c.cfg.latency == nil {
		return c.doRoundTrip(f)
	}
	typ := f.Type
	start := time.Now()
	resp, err := c.doRoundTrip(f)
	c.cfg.latency(typ, time.Since(start))
	return resp, err
}

func (c *conn) doRoundTrip(f *Frame) (*Frame, error) {
	ch := replyChPool.Get().(chan *Frame)
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		replyChPool.Put(ch)
		return nil, errConnClosed
	}
	c.reqSeq++
	id := c.reqSeq
	c.pending[id] = ch
	c.pmu.Unlock()

	f.Req = id
	if err := c.write(f); err != nil {
		c.abandon(id, ch)
		select {
		case <-c.done:
			// The write lost a race with teardown: normalize to the same
			// error pending round trips receive.
			return nil, errConnClosed
		default:
		}
		return nil, err
	}
	var deadline <-chan time.Time
	var tm *time.Timer
	if c.cfg.timeout > 0 {
		tm = getTimer(c.cfg.timeout)
		deadline = tm.C
	}
	var resp *Frame
	var err error
	select {
	case resp = <-ch:
		putReplyCh(ch)
	case <-deadline:
		// The peer is slow or wedged: fail this RPC, keep the conn. The
		// pending entry is removed under pmu, so a late reply can no
		// longer target ch; if one raced in already, abandon releases it
		// back to the pool (no double-release, no leak).
		c.abandon(id, ch)
		err = errRPCTimeout
	case <-c.done:
		c.abandon(id, ch)
		err = errConnClosed
	}
	if tm != nil {
		putTimer(tm)
	}
	if err != nil {
		return nil, err
	}
	if resp == nil {
		return nil, errConnClosed
	}
	if rerr := resp.Err(); rerr != nil {
		releaseFrame(resp)
		return nil, rerr
	}
	return resp, nil
}

// abandon gives up on round trip id: it removes the pending entry (if the
// response has not raced in already) and recycles the reply channel. Sends
// are paired with entry removal under pmu, so after the delete no further
// send can target ch.
func (c *conn) abandon(id uint32, ch chan *Frame) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
	putReplyCh(ch)
}

func (c *conn) readLoop() {
	defer c.close()
	for {
		f, err := readFrame(c.br, c.cfg.maxPayload)
		if err != nil {
			return
		}
		if c.cfg.observe != nil {
			c.cfg.observe(f)
		}
		if isResponse(f.Type) {
			c.pmu.Lock()
			ch, ok := c.pending[f.Req]
			if ok {
				delete(c.pending, f.Req)
				ch <- f // cap 1 and sole sender for this id: never blocks
			}
			c.pmu.Unlock()
			if !ok {
				releaseFrame(f) // unmatched (abandoned or bogus) response
			}
			continue
		}
		if c.cfg.handle == nil {
			releaseFrame(f)
			continue
		}
		if c.reqCh != nil {
			select {
			case c.reqCh <- f:
			case <-c.done:
				releaseFrame(f)
				return
			}
			continue
		}
		go c.serveRequest(f)
	}
}

// workLoop is one bounded-pool worker: it drains the request queue until
// the conn closes.
func (c *conn) workLoop() {
	for {
		select {
		case f := <-c.reqCh:
			c.serveRequest(f)
		case <-c.done:
			return
		}
	}
}

// serveRequest runs the handler for one request and writes its response.
// It owns req (released after the handler returns) and the handler's
// response (released after the write).
func (c *conn) serveRequest(req *Frame) {
	resp := c.cfg.handle(req)
	reqID := req.Req
	releaseFrame(req)
	if resp == nil {
		return
	}
	resp.Req = reqID
	err := c.write(resp)
	releaseFrame(resp)
	if err != nil {
		c.close()
	}
}

// close tears down the connection and fails outstanding round trips.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nc.Close()
		c.pmu.Lock()
		c.closed = true
		for id, ch := range c.pending {
			delete(c.pending, id)
			ch <- nil
		}
		c.pmu.Unlock()
	})
}

// errFrame builds a MsgErr response.
func errFrame(format string, args ...any) *Frame {
	f := getFrame()
	f.Type = MsgErr
	f.Payload = []byte(fmt.Sprintf(format, args...))
	return f
}

// errFrameFrom builds a MsgErr response for err, preserving its
// classification across the wire: not-found failures are flagged so the
// requesting client reconstructs errors.Is(err, ErrUnknownFile).
func errFrameFrom(err error, format string, args ...any) *Frame {
	f := errFrame(format, args...)
	if errors.Is(err, ErrUnknownFile) {
		f.Flags |= FlagNotFound
	}
	return f
}

// ackFrame builds a bare MsgAck response.
func ackFrame() *Frame {
	f := getFrame()
	f.Type = MsgAck
	return f
}
