package middleware

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// errConnClosed is returned for round trips on a closed connection.
var errConnClosed = errors.New("middleware: connection closed")

// isResponse classifies frame types that answer a prior request.
func isResponse(t MsgType) bool {
	switch t {
	case MsgBlockData, MsgBlockMiss, MsgFileData, MsgDirResult, MsgForwardAck,
		MsgAck, MsgErr, MsgStatsReply:
		return true
	}
	return false
}

// conn is a multiplexed protocol connection: concurrent round trips are
// correlated by request ID, incoming requests are dispatched to handle, and
// every received frame is offered to observe (piggyback processing).
type conn struct {
	nc  net.Conn
	br  *bufio.Reader
	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint32]chan *Frame
	reqSeq  uint32
	closed  bool

	// handle processes an incoming request and returns the response (nil
	// for one-way messages). It runs on a fresh goroutine per request.
	handle func(*Frame) *Frame
	// observe sees every incoming frame before dispatch (may be nil).
	observe func(*Frame)
	// stamp decorates every outgoing frame (sender id, piggybacked age);
	// may be nil.
	stamp func(*Frame)

	closeOnce sync.Once
	done      chan struct{}
}

func newConn(nc net.Conn, handle func(*Frame) *Frame, observe, stamp func(*Frame)) *conn {
	c := &conn{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64*1024),
		pending: make(map[uint32]chan *Frame),
		handle:  handle,
		observe: observe,
		stamp:   stamp,
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// write sends one frame.
func (c *conn) write(f *Frame) error {
	if c.stamp != nil {
		c.stamp(f)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.nc, f)
}

// roundTrip sends a request and waits for its response.
func (c *conn) roundTrip(f *Frame) (*Frame, error) {
	ch := make(chan *Frame, 1)
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return nil, errConnClosed
	}
	c.reqSeq++
	id := c.reqSeq
	c.pending[id] = ch
	c.pmu.Unlock()

	f.Req = id
	if err := c.write(f); err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp == nil {
			return nil, errConnClosed
		}
		if err := resp.Err(); err != nil {
			return nil, err
		}
		return resp, nil
	case <-c.done:
		return nil, errConnClosed
	}
}

func (c *conn) readLoop() {
	defer c.close()
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			return
		}
		if c.observe != nil {
			c.observe(f)
		}
		if isResponse(f.Type) {
			c.pmu.Lock()
			ch, ok := c.pending[f.Req]
			if ok {
				delete(c.pending, f.Req)
			}
			c.pmu.Unlock()
			if ok {
				ch <- f
			}
			continue
		}
		if c.handle == nil {
			continue
		}
		go func(req *Frame) {
			resp := c.handle(req)
			if resp == nil {
				return
			}
			resp.Req = req.Req
			if err := c.write(resp); err != nil {
				c.close()
			}
		}(f)
	}
}

// close tears down the connection and fails outstanding round trips.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nc.Close()
		c.pmu.Lock()
		c.closed = true
		for id, ch := range c.pending {
			delete(c.pending, id)
			ch <- nil
		}
		c.pmu.Unlock()
	})
}

// errFrame builds a MsgErr response.
func errFrame(format string, args ...any) *Frame {
	return &Frame{Type: MsgErr, Payload: []byte(fmt.Sprintf(format, args...))}
}
