package middleware

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// startFaultCluster is startCluster with per-node config mutation (fault
// plans, timeouts, breaker settings) and an explicit client config.
func startFaultCluster(t *testing.T, k, capacityBlocks int, sizes map[block.FileID]int64,
	mut func(i int, cfg *Config), ccfg ClientConfig) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		cfg := Config{
			ID:             i,
			CapacityBlocks: capacityBlocks,
			Policy:         core.PolicyMaster,
			Geometry:       testGeom,
			Source:         NewMemSource(testGeom, sizes),
			StaticHome:     true, // legacy placement tests assume f % k homes
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialClusterConfig(addrs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, client
}

// TestBreakerLifecycle pins the circuit breaker state machine: closed →
// open after threshold consecutive failures, fail-fast while open, one
// half-open probe after the cooldown, closed again on probe success.
func TestBreakerLifecycle(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: 50 * time.Millisecond}
	if !b.allow() {
		t.Fatal("fresh breaker should allow")
	}
	if b.failure() {
		t.Fatal("first failure must not open the circuit")
	}
	if !b.failure() {
		t.Fatal("threshold-th failure must report the open transition")
	}
	if b.allow() {
		t.Fatal("open breaker within cooldown should reject")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed: one half-open probe should be admitted")
	}
	if b.allow() {
		t.Fatal("second concurrent probe should be rejected")
	}
	b.success()
	if !b.allow() || !b.allow() {
		t.Fatal("successful probe should close the circuit")
	}
	// A failed probe re-arms the cooldown.
	b.failure()
	b.failure()
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe after re-open should be admitted")
	}
	b.failure()
	if b.allow() {
		t.Fatal("failed probe must re-arm the cooldown")
	}
}

// TestFaultPlanDeterministic verifies that the same plan produces the same
// per-connection fault decisions across runs (the seeded part of "seeded,
// deterministic fault injection").
func TestFaultPlanDeterministic(t *testing.T) {
	decisions := func() []faultAction {
		p := &FaultPlan{Seed: 99, DropProb: 0.2, CrashProb: 0.1, DelayProb: 0.3}
		fc := p.Wrap(nil, 1, 2).(*faultConn)
		out := make([]faultAction, 64)
		for i := range out {
			out[i] = fc.decide()
		}
		return out
	}
	a, b := decisions(), decisions()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded plans: %v vs %v", i, a[i], b[i])
		}
	}

	// The retry backoff draws its jitter from a per-node seeded stream, not
	// the global math/rand: two nodes built with the same ID and fault seed
	// must produce identical jitter sequences (and so identical retry
	// timing), run after run.
	jitters := func() []time.Duration {
		id := int64(3) // node ID + 1
		seed := id * 0x5851F42D4C957F2D
		seed ^= 99 // the fault plan's seed, as Node.Start folds it in
		rng := newLockedRand(seed)
		out := make([]time.Duration, 64)
		step := defaultRetryBackoff
		for i := range out {
			out[i] = backoffJitter(step, rng)
		}
		return out
	}
	ja, jb := jitters(), jitters()
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("backoff jitter %d differs across identically seeded nodes: %v vs %v", i, ja[i], jb[i])
		}
	}
}

// TestWriteWithCrashedPeerSucceeds crashes one holder of a cached copy and
// verifies the §6 write still completes: the fan-out reaches every live
// peer (their copies are invalidated), the dead peer is degraded to "holds
// no cache", and readers observe the new content afterwards.
func TestWriteWithCrashedPeerSucceeds(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048} // file 0 homes at node 0
	nodes, client := startFaultCluster(t, 4, 64, sizes, func(i int, cfg *Config) {
		cfg.RPCTimeout = 300 * time.Millisecond
		cfg.Retries = 1
	}, ClientConfig{})

	// Replicate file 0's blocks onto nodes 1..3.
	for entry := 1; entry < 4; entry++ {
		if _, err := client.ReadVia(entry, 0); err != nil {
			t.Fatalf("prime read via %d: %v", entry, err)
		}
	}
	id := block.ID{File: 0, Idx: 0}
	if !nodes[3].store.Contains(id) {
		t.Fatal("node 3 should hold a copy before the crash")
	}

	nodes[3].Close() // crash one copy holder

	newBlock := bytes.Repeat([]byte{0xAB}, 1024)
	start := time.Now()
	if err := nodes[1].WriteBlock(id, newBlock); err != nil {
		t.Fatalf("write with crashed peer: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write took %v, want bounded by the RPC deadline", elapsed)
	}
	// The bus sender for the dead peer degrades each failed delivery
	// attempt to a skipped invalidation (asynchronously: poll).
	deadline := time.Now().Add(10 * time.Second)
	for nodes[1].Stats().InvalidateSkips == 0 {
		if time.Now().After(deadline) {
			t.Fatal("crashed peer was not degraded to a skipped invalidation")
		}
		time.Sleep(time.Millisecond)
	}

	// Every live entry node converges on the new content within the
	// staleness bound (no stale copy survives on a live node).
	want := append(append([]byte(nil), newBlock...), SyntheticBlock(0, 1, 1024)...)
	for entry := 0; entry < 3; entry++ {
		for {
			got, err := client.ReadVia(entry, 0)
			if err != nil {
				t.Fatalf("read via %d after write: %v", entry, err)
			}
			if bytes.Equal(got, want) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stale content via node %d after write with crashed peer", entry)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestReadUnderPartitionBounded one-way-partitions a requester from the
// node holding the master copy: the read must time out on the peer fetch,
// fall back to the home node within the deadline+retry budget, return
// correct data, and repair the directory entry that named the unreachable
// peer.
func TestReadUnderPartitionBounded(t *testing.T) {
	const rpcTimeout = 200 * time.Millisecond
	const retries = 1
	sizes := map[block.FileID]int64{1: 2048} // file 1 homes at node 1
	nodes, client := startFaultCluster(t, 3, 64, sizes, func(i int, cfg *Config) {
		cfg.RPCTimeout = rpcTimeout
		cfg.Retries = retries
		if i == 0 {
			// Frames node 0 sends to node 2 vanish; everything else flows.
			cfg.Fault = &FaultPlan{Seed: 1, Partitions: [][2]int{{0, 2}}}
		}
	}, ClientConfig{})

	// Make node 2 the master holder of file 1's blocks.
	if _, err := client.ReadVia(2, 1); err != nil {
		t.Fatalf("prime read: %v", err)
	}

	// Node 0 believes the master is at node 2, which it cannot reach.
	start := time.Now()
	got, err := client.ReadVia(0, 1)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("read under partition: %v", err)
	}
	if !bytes.Equal(got, expect(testGeom, 1, 2048)) {
		t.Fatal("content mismatch under partition")
	}
	// Bound: one timed-out peer fetch plus a home read with retries, per
	// block window — generously ceilinged to absorb scheduler noise.
	ceiling := time.Duration(retries+3)*rpcTimeout + 2*time.Second
	if elapsed > ceiling {
		t.Fatalf("partitioned read took %v, want < %v", elapsed, ceiling)
	}

	st := nodes[0].Stats()
	if st.RPCTimeouts == 0 {
		t.Fatalf("no RPC timeout recorded: %+v", st)
	}
	if st.HomeFallbacks == 0 || st.StaleDrops == 0 {
		t.Fatalf("fallback not recorded (fallbacks=%d staleDrops=%d)", st.HomeFallbacks, st.StaleDrops)
	}
	// The stale entry naming node 2 was repaired: the directory now names
	// node 0 (the fallback read's new master) for the fetched blocks.
	if holder, ok := nodes[0].dirSrv.lookup(block.ID{File: 1, Idx: 0}); !ok || holder != 0 {
		t.Fatalf("directory entry not repaired: holder=%d ok=%v", holder, ok)
	}
}

// TestChaosSoak hammers a cluster whose every connection randomly delays,
// drops, and crashes frames (a seeded FaultPlan), with concurrent readers
// and writers. The contract under chaos: no torn or stale-after-
// invalidate content is ever observed, client-visible errors stay rare
// (the retry/fallback machinery absorbs the faults), the run completes,
// and the failure events show up in the counters. Run it with -race; in
// -short mode it shrinks instead of skipping so CI always exercises it.
func TestChaosSoak(t *testing.T) {
	opsEach := 50
	if testing.Short() {
		opsEach = 12
	}
	const (
		nFiles   = 6
		fileSize = 4 * 1024 // 4 blocks of 1 KB
		workers  = 6
	)
	sizes := map[block.FileID]int64{}
	for f := 0; f < nFiles; f++ {
		sizes[block.FileID(f)] = fileSize
	}
	plan := &FaultPlan{
		Seed:      42,
		DelayProb: 0.05, Delay: time.Millisecond,
		DropProb:  0.03,
		CrashProb: 0.01,
	}
	_, client := startFaultCluster(t, 4, 24, sizes, func(i int, cfg *Config) {
		cfg.Fault = plan
		cfg.RPCTimeout = 250 * time.Millisecond
		cfg.Retries = 3
		cfg.RetryBackoff = time.Millisecond
		cfg.BreakerThreshold = 12
		cfg.BreakerCooldown = 100 * time.Millisecond
	}, ClientConfig{
		RPCTimeout: 1500 * time.Millisecond,
		Retries:    4,
		Fault:      &FaultPlan{Seed: 43, DropProb: 0.01},
	})

	validBlock := func(f block.FileID, idx int32, data []byte) bool {
		if bytes.Equal(data, SyntheticBlock(f, idx, len(data))) {
			return true
		}
		if len(data) == 0 {
			return false
		}
		tag := data[0]
		for _, b := range data {
			if b != tag {
				return false // torn write
			}
		}
		return tag < workers
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var visibleErrs int
	fatal := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for op := 0; op < opsEach; op++ {
				f := block.FileID(rng.Intn(nFiles))
				if rng.Intn(4) == 0 {
					data := bytes.Repeat([]byte{byte(w)}, 1024)
					if err := client.Write(f, int32(rng.Intn(4)), data); err != nil {
						mu.Lock()
						visibleErrs++
						mu.Unlock()
					}
					continue
				}
				data, err := client.Read(f)
				if err != nil {
					mu.Lock()
					visibleErrs++
					mu.Unlock()
					continue
				}
				if len(data) != fileSize {
					fatal <- fmt.Errorf("worker %d: file %d is %d bytes", w, f, len(data))
					return
				}
				for idx := int32(0); idx < 4; idx++ {
					if !validBlock(f, idx, data[idx*1024:(idx+1)*1024]) {
						fatal <- fmt.Errorf("worker %d: file %d block %d has torn/invalid content", w, f, idx)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(fatal)
	for err := range fatal {
		t.Fatal(err)
	}

	total := workers * opsEach
	if visibleErrs > total/10 {
		t.Fatalf("%d/%d client-visible errors under chaos, want the retry layer to absorb most faults", visibleErrs, total)
	}

	st, err := client.ClusterStats()
	if err != nil {
		t.Fatalf("cluster stats after soak: %v", err)
	}
	if st.RPCTimeouts+st.RPCRetries+st.HomeFallbacks+st.RPCFailures == 0 {
		t.Fatalf("chaos soak recorded no fault events: %+v", st)
	}
	if st.Writes == 0 {
		t.Fatal("soak exercised no writes")
	}
}
