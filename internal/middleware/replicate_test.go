package middleware

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// TestHintMissAccounting is the HintAccuracy regression test: a failed
// fetch from a node the hint table does not currently name — a rotated
// replica holder that evicted its copy, or an entry already corrected by
// piggybacked deltas — must not count against accuracy. Only a miss that
// contradicts the live entry does.
func TestHintMissAccounting(t *testing.T) {
	h := newHintLocator()
	id := block.ID{File: 1, Idx: 2}
	h.Update(id, 3) //nolint:errcheck
	if _, ok, _ := h.Lookup(id); !ok {
		t.Fatal("hint not recorded")
	}
	// A miss against a node the table never named: no penalty, entry kept.
	h.Miss(id, 7)
	if acc := h.Accuracy(); acc != 1 {
		t.Fatalf("accuracy %v after a miss on a non-hinted node, want 1", acc)
	}
	if cur, ok, _ := h.Lookup(id); !ok || cur != 3 {
		t.Fatalf("hint entry disturbed: (%d, %v)", cur, ok)
	}
	// A miss contradicting the live entry: counted, entry deleted.
	h.Miss(id, 3)
	if acc := h.Accuracy(); acc >= 1 {
		t.Fatalf("accuracy %v after a real stale hint, want < 1", acc)
	}
	if _, ok, _ := h.Lookup(id); ok {
		t.Fatal("stale hint entry survived its miss")
	}
}

// TestPeerServeFlagsMasterOnly pins the wire contract adaptive replication
// relies on: a peer serve carries FlagMaster iff the block is held as a
// master copy, so requesters never record a replica holder as the master in
// their hint tables.
func TestPeerServeFlagsMasterOnly(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	nodes, _ := startCluster(t, 2, 16, core.PolicyMaster, false, sizes)
	n := nodes[0]
	id := block.ID{File: 0, Idx: 0}
	data := SyntheticBlock(0, 0, 1024)

	n.store.Insert(id, data, true)
	req := getFrame()
	req.Type, req.File, req.Idx, req.Sender = MsgGetBlock, 0, 0, 1
	r := n.handleGetBlock(req)
	if r.Type != MsgBlockData || r.Flags&FlagMaster == 0 {
		t.Fatalf("master serve: type %d flags %#x, want MsgBlockData with FlagMaster", r.Type, r.Flags)
	}
	releaseFrame(r)

	n.store.Remove(id)
	n.store.InsertReplica(id, data)
	r = n.handleGetBlock(req)
	if r.Type != MsgBlockData || r.Flags&FlagMaster != 0 {
		t.Fatalf("replica serve: type %d flags %#x, want MsgBlockData without FlagMaster", r.Type, r.Flags)
	}
	releaseFrame(r)
	releaseFrame(req)
}

// TestStoreAdmissionFilter pins the doorkeeper behaviour at the store: with
// the filter installed, a full cache turns away one-hit wonders instead of
// evicting established blocks, while master inserts always land.
func TestStoreAdmissionFilter(t *testing.T) {
	s := NewStore(4, core.PolicyMaster)
	s.SetAdmission(core.NewAdmission(4))
	data := make([]byte, 8)
	warm := make([]block.ID, 4)
	for i := range warm {
		warm[i] = block.ID{File: 1, Idx: int32(i)}
		s.Insert(warm[i], data, false)
	}
	for round := 0; round < 10; round++ {
		for _, id := range warm {
			s.Get(id)
		}
	}
	// A string of one-hit wonders: none may displace the warm set.
	for i := 0; i < 8; i++ {
		s.Insert(block.ID{File: 2, Idx: int32(i)}, data, false)
	}
	for _, id := range warm {
		if !s.Contains(id) {
			t.Fatalf("warm block %v displaced by a one-hit wonder", id)
		}
	}
	if s.AdmissionRejects() == 0 {
		t.Fatal("no admission rejects recorded")
	}
	// Masters bypass the filter: the directory depends on the insert.
	if !func() bool { s.Insert(block.ID{File: 3, Idx: 0}, data, true); return s.Contains(block.ID{File: 3, Idx: 0}) }() {
		t.Fatal("master insert rejected by the admission filter")
	}
}

// TestStoreReplicaLifecycle covers the replica flag: InsertReplica marks,
// serves count as replica hits, promotion to master and removal clear.
func TestStoreReplicaLifecycle(t *testing.T) {
	s := NewStore(8, core.PolicyMaster)
	id := block.ID{File: 0, Idx: 0}
	data := make([]byte, 8)
	s.InsertReplica(id, data)
	if !s.IsReplica(id) || s.Replicas() != 1 {
		t.Fatal("replica not flagged after InsertReplica")
	}
	if _, ok := s.Get(id); !ok {
		t.Fatal("replica not served")
	}
	if s.ReplicaHits() != 1 {
		t.Fatalf("replica hits = %d, want 1", s.ReplicaHits())
	}
	// A master insert of the same block promotes it out of replica state.
	s.Insert(id, data, true)
	if s.IsReplica(id) || !s.IsMaster(id) {
		t.Fatal("promotion did not clear the replica flag")
	}
	s.Get(id)
	if s.ReplicaHits() != 1 {
		t.Fatal("master serve counted as replica hit")
	}
	s.Remove(id)
	if s.Replicas() != 0 {
		t.Fatal("replica accounting leaked after Remove")
	}
}

// startReplicationCluster spins up a cluster with adaptive replication at a
// low threshold and a frozen epoch clock (no decay mid-test).
func startReplicationCluster(t *testing.T, k int, mut func(i int, cfg *Config)) ([]*Node, *Client, map[block.FileID]int64) {
	t.Helper()
	sizes := map[block.FileID]int64{0: 2048, 1: 2048}
	nodes, client := startClusterCfg(t, k, 64, sizes, func(i int, cfg *Config) {
		cfg.ReplicateThreshold = 3
		cfg.ReplicaFanout = 2
		cfg.HotnessEpoch = time.Hour // decay frozen: deterministic scores
		if mut != nil {
			mut(i, cfg)
		}
	})
	return nodes, client, sizes
}

// TestAdaptiveReplicationSpreads drives repeated peer fetches of one block
// until its master's serve score crosses the threshold, then verifies the
// copies spread (ReplicasPushed, StoreReplicas) and that rotated lookups
// are served from them (ReplicaHits) with correct bytes throughout.
func TestAdaptiveReplicationSpreads(t *testing.T) {
	nodes, _, _ := startReplicationCluster(t, 4, nil)
	// File 0 is homed at node 0; node 1's first read makes it the master.
	id := block.ID{File: 0, Idx: 0}
	want := SyntheticBlock(0, 0, 1024)
	if data, err := nodes[1].GetBlock(id); err != nil || !bytes.Equal(data, want) {
		t.Fatalf("seed read: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	replicated := func() bool {
		var pushed uint64
		for _, n := range nodes {
			pushed += n.Stats().ReplicasPushed
		}
		return pushed > 0
	}
	// Nodes 2 and 3 fetch and forget the block, so every round is a fresh
	// directory lookup and peer serve against node 1's master.
	for !replicated() {
		if time.Now().After(deadline) {
			t.Fatal("no replicas pushed despite sustained peer serves")
		}
		for _, r := range []int{2, 3} {
			nodes[r].store.Remove(id)
			data, err := nodes[r].GetBlock(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, want) {
				t.Fatal("content mismatch during replication ramp")
			}
		}
	}
	// Keep fetching until a rotated lookup lands on a replica holder.
	for {
		if time.Now().After(deadline) {
			t.Fatal("no replica hit despite pushed replicas")
		}
		var hits uint64
		for _, n := range nodes {
			hits += n.Stats().ReplicaHits
		}
		if hits > 0 {
			break
		}
		nodes[2].store.Remove(id)
		data, err := nodes[2].GetBlock(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatal("content mismatch after replication")
		}
	}
}

// TestWriteInvalidatesReplicas verifies the write protocol tears down the
// whole copy set — no node serves stale replica bytes after a write — and
// that the manager's repush tombstone then re-replicates the FRESH content
// from the new master (a written-to hot block must not wait for its serve
// rate to re-cross the threshold).
func TestWriteInvalidatesReplicas(t *testing.T) {
	nodes, _, _ := startReplicationCluster(t, 4, nil)
	id := block.ID{File: 0, Idx: 0}
	if _, err := nodes[1].GetBlock(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var pushed uint64
		for _, n := range nodes {
			pushed += n.Stats().ReplicasPushed
		}
		if pushed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication never triggered")
		}
		for _, r := range []int{2, 3} {
			nodes[r].store.Remove(id)
			if _, err := nodes[r].GetBlock(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for the full fanout to land and register at the manager
	// (pushes are async; the write below must find a settled copy set).
	for {
		nodes[0].reps.mu.Lock()
		registered := len(nodes[0].reps.m[id])
		nodes[0].reps.mu.Unlock()
		if registered >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d replicas registered at the manager", registered)
		}
		time.Sleep(time.Millisecond)
	}
	// Node 2 writes. The invalidation must reach every copy — any block
	// still resident anywhere (including re-pushed replicas) must hold the
	// NEW bytes, and every node must read the new content.
	newData := bytes.Repeat([]byte{0xEE}, 1024)
	if err := nodes[2].WriteBlock(id, newData); err != nil {
		t.Fatal(err)
	}
	// The invalidation rides the async bus: wait for every peer to ack.
	if !nodes[2].FlushInval(5 * time.Second) {
		t.Fatal("invalidation bus did not drain")
	}
	for i, n := range nodes {
		if cached, ok := n.store.Get(id); ok && !bytes.Equal(cached, newData) {
			t.Fatalf("node %d holds stale cached bytes after write-invalidate", i)
		}
		data, err := n.GetBlock(id)
		if err != nil {
			t.Fatalf("node %d read after write: %v", i, err)
		}
		if !bytes.Equal(data, newData) {
			t.Fatalf("node %d read stale content after write-invalidate", i)
		}
	}
	// The torn-down set tombstoned the block as hot: the writer's mastership
	// claim triggers an immediate re-push of the fresh content.
	for {
		repushed := 0
		for i, n := range nodes {
			if !n.store.IsReplica(id) {
				continue
			}
			if cached, ok := n.store.Get(id); ok && !bytes.Equal(cached, newData) {
				t.Fatalf("node %d re-replicated stale bytes", i)
			}
			repushed++
		}
		if repushed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write repush never re-replicated the hot block")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaSetsPick pins the rotation contract: empty set returns the
// master unchanged (the disabled-replication equivalence guarantee), the
// requester is never picked, and every live candidate is eventually drawn.
func TestReplicaSetsPick(t *testing.T) {
	r := newReplicaSets()
	id := block.ID{File: 0, Idx: 0}
	for draw := uint32(0); draw < 8; draw++ {
		if got := r.pick(id, 1, 2, draw); got != 1 {
			t.Fatalf("empty set: pick = %d, want master 1", got)
		}
	}
	r.add(id, 2)
	r.add(id, 3)
	seen := map[int32]bool{}
	for draw := uint32(0); draw < 16; draw++ {
		got := r.pick(id, 1, 2, draw)
		if got == 2 {
			t.Fatal("rotation picked the requester")
		}
		seen[got] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("rotation did not cover master and replica: %v", seen)
	}
	// The master as requester still resolves (to a replica).
	if got := r.pick(id, 1, 1, 0); got != 2 && got != 3 {
		t.Fatalf("master-as-requester pick = %d, want a replica", got)
	}
	if !r.drop(id, 2) || r.drop(id, 2) {
		t.Fatal("drop bookkeeping wrong")
	}
	r.clear(id)
	if r.len() != 0 {
		t.Fatal("clear left state behind")
	}
}
