package middleware

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config parameterizes one live middleware node.
type Config struct {
	// ID is this node's index in the cluster.
	ID int
	// Listen is the TCP address to listen on (e.g. "127.0.0.1:0").
	Listen string
	// DirMode selects how masters are located (see DirectoryMode).
	DirMode DirectoryMode
	// DirNode hosts the central directory (DirCentral only).
	DirNode int
	// Hints is a shorthand for DirMode = DirHints (kept for convenience).
	Hints bool
	// CapacityBlocks is the local cache size in blocks.
	CapacityBlocks int
	// StoreShards is the number of lock stripes in the local store (rounded
	// up to a power of two, capped at the capacity). 0 (the default) sizes
	// to the host: the smallest power of two covering NumCPU, so concurrent
	// hits scale across cores instead of convoying on one mutex. 1 restores
	// the exact single-lock global LRU (deterministic: what the replay-
	// equivalence suite pins). Miss-coalescing and hotness tracking stripe
	// with the same count.
	StoreShards int
	// Policy is the replacement policy (PolicyMaster recommended; this is
	// the paper's headline variant).
	Policy core.Policy
	// Geometry is the block layout (zero value: 8 KB blocks).
	Geometry block.Geometry
	// Source is this node's backing store. FileSize must answer for every
	// file in the cluster (the global file-to-node mapping of §3 includes
	// sizes); ReadBlock/WriteBlock are only invoked for files homed here.
	Source BlockSource
	// Readahead, if positive, asynchronously prefetches that many
	// subsequent blocks of a file after a miss — the live counterpart of
	// the request-scheduling/prefetching remedy §5 suggests for the
	// interleaving pathology.
	Readahead int
	// NoRunReads disables the run-granular read fast path: ReadFile,
	// ReadRange, and readahead fall back to the per-block §3 protocol for
	// every miss. Equivalence testing and before/after benchmarking only.
	NoRunReads bool
	// Workers bounds concurrent request handling per connection: 0 uses
	// GOMAXPROCS workers (the default), a negative value restores the
	// legacy one-goroutine-per-request dispatch (unbounded under bursts).
	Workers int
	// MaxPayload caps the payload size this node accepts per frame (0:
	// the 64 MB default). Smaller deployments can lower it so a bad peer
	// cannot force large allocations.
	MaxPayload int
	// RPCTimeout bounds every peer round trip: a reply that does not
	// arrive in time fails that RPC (and feeds the peer's circuit
	// breaker) instead of wedging the request forever. 0 applies the
	// 5-second default; negative disables deadlines.
	RPCTimeout time.Duration
	// Retries is the number of extra attempts granted to idempotent RPCs
	// with no alternative target (home reads, directory ops, home
	// write-through). Peer cache fetches never retry — falling back to
	// the home node is their retry. 0 applies the default (2); negative
	// disables retries.
	Retries int
	// RetryBackoff is the base of the capped exponential backoff between
	// retries (±50% jitter; doubles per attempt, capped at 16×base).
	// 0 applies the 2 ms default.
	RetryBackoff time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// after which a peer's circuit breaker opens and requests to it fail
	// fast (suspected down). 0 applies the default (5); negative disables
	// the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects requests before
	// admitting a half-open probe. 0 applies the 500 ms default.
	BreakerCooldown time.Duration
	// ReplicateThreshold, when positive, enables adaptive replication:
	// when the epoch-decayed rate of peer serves of a master copy crosses
	// the threshold, its holder pushes copies to ReplicaFanout ring
	// successors and the directory rotates lookups across the copy set.
	// 0 (the default) disables replication entirely — the protocol is
	// byte-identical to the single-master path.
	ReplicateThreshold float64
	// ReplicaFanout is the number of replicas pushed per hot block
	// (default 2, capped at maxReplicaFanout and cluster size - 1).
	ReplicaFanout int
	// HotnessEpoch is the decay interval of the hotness tracker (default
	// 250 ms). Shorter epochs adapt faster and forget faster.
	HotnessEpoch time.Duration
	// AdmissionFilter enables TinyLFU admission on the local store: a full
	// cache only accepts a non-master insert whose estimated access
	// frequency beats the would-be eviction victim's, so one-hit wonders
	// never displace hot masters or replicas. Default off.
	AdmissionFilter bool
	// SyncInvalidate restores the synchronous write-invalidate fan-out:
	// WriteBlock blocks until every peer acknowledged (or degraded to) its
	// MsgInvalidate, exactly the pre-bus protocol, byte for byte. Default
	// off: writes publish to the asynchronous invalidation bus (inval.go)
	// and return after the local invalidate + durable write-through, with
	// peers converging within the bounded staleness window.
	SyncInvalidate bool
	// StaticHome pins the paper's original static home mapping — file ID
	// modulo cluster size — byte for byte (pinned by replay equivalence,
	// like SyncInvalidate). Membership is then fixed at SetAddrs: join and
	// drain requests are rejected and heartbeat suspicion never promotes a
	// peer to dead. Default off: homes come from the consistent-hash ring
	// and the cluster is elastic.
	StaticHome bool
	// HeartbeatInterval enables heartbeat failure detection: every interval
	// the node probes its peers with MsgPing (feeding the existing circuit
	// breakers), marks a peer suspect after SuspectTimeout without a
	// successful probe, and proposes it dead after DeadTimeout (the
	// coordinator then re-homes its slice of the ring). 0 (the default)
	// disables heartbeats — membership only changes by explicit RPC.
	HeartbeatInterval time.Duration
	// SuspectTimeout is how long a peer can miss probes before it is
	// locally suspect (reads route around it). Default 3×HeartbeatInterval.
	SuspectTimeout time.Duration
	// DeadTimeout is how long a peer can miss probes before this node asks
	// the coordinator to promote it to dead cluster-wide. Default
	// 10×HeartbeatInterval.
	DeadTimeout time.Duration
	// Fault, when non-nil, injects transport faults (delays, drops,
	// partitions, mid-frame crashes) into every connection this node
	// dials or accepts. Testing and chaos benchmarking only.
	Fault *FaultPlan
	// Tracer, when non-nil, records protocol events (forwards, home
	// fallbacks, stale drops, invalidations, breaker transitions, retries)
	// into a bounded ring buffer, dumpable via the MsgTrace RPC. nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer
}

// Protocol trace event kinds (obs.Event.Kind).
const (
	traceForward        = "forward"         // eviction forward shipped (Aux: 1 accepted, 0 rejected/failed)
	traceHomeFallback   = "home_fallback"   // peer fetch degraded to the home node
	traceStaleDrop      = "stale_drop"      // directory/hint entry dropped after a peer failure
	traceInvalidate     = "invalidate"      // block invalidated (write protocol)
	traceInvalidateSkip = "invalidate_skip" // invalidation degraded to "peer holds no cache"
	traceBreakerOpen    = "breaker_open"    // circuit breaker opened for Peer
	traceBreakerClose   = "breaker_close"   // circuit breaker closed after a successful probe
	traceRetry          = "retry"           // RPC retried after a transient failure (Aux: attempt)
	traceRPCTimeout     = "rpc_timeout"     // round trip missed the RPC deadline
	traceRunFetch       = "run_fetch"       // run fetch completed (Peer: source, Aux: blocks served)
	traceReplicate      = "replicate"       // hot-block replica pushed to Peer (adaptive replication)
	traceInvalBatch     = "inval_batch"     // invalidation batch delivered to Peer (Aux: records)
	traceInvalCatchup   = "inval_catchup"   // catch-up started against origin Peer (Aux: from seq, -1 flush)
	traceRebalance      = "rebalance"       // file re-homed here (File: file, Aux: blocks pulled, -1 unreachable old home)
	traceMemberJoin     = "member_join"     // membership view installed with a new/returning member (Peer: member, Aux: epoch)
	traceMemberDead     = "member_dead"     // membership view installed promoting Peer to dead (Aux: epoch)
	traceHeartbeatFail  = "heartbeat_fail"  // heartbeat probe of Peer failed (Aux: consecutive misses)
)

// Node is a live cooperative caching node: a TCP server cooperating with
// its peers to manage the cluster's memory as a single block cache.
type Node struct {
	cfg  Config
	geom block.Geometry
	ln   net.Listener

	store  *Store
	dirSrv *dirServer // non-nil when this node hosts the directory
	loc    locator
	hints  *hintLocator // non-nil in hint mode

	mu       sync.Mutex
	addrs    []string
	peers    []*conn
	peerAges []*atomic.Int64
	breakers []*breaker // per-peer circuit breakers (index = node ID)
	accepted map[*conn]struct{}
	closed   bool

	// view is the current membership snapshot (ring.go): an immutable
	// epoch-versioned value swapped atomically, so the home mapping on the
	// read path is a single pointer load with no lock. memberMu serializes
	// view construction (join/drain/dead promotion — the coordinator's
	// serialization point); installView does the CAS install.
	view     atomic.Pointer[memberView]
	memberMu sync.Mutex

	// Heartbeat failure detection (member.go). hbStop ends the probe loop;
	// hbMu guards hbBusy (peers with a probe in flight), hbLast (last
	// successful probe per peer), and hbFails (consecutive probe failures,
	// reset on success — dead promotion needs deadMinFails of them).
	// hbSuspect marks peers this node currently routes around (local
	// judgement — not a view state).
	hbStop    chan struct{}
	hbMu      sync.Mutex
	hbBusy    map[int]bool
	hbLast    map[int]time.Time
	hbFails   map[int]int
	hbSuspect map[int]bool
	hbInterval, hbSuspectAfter, hbDeadAfter time.Duration

	// Rebalance state (rebalance.go): migrPending maps each file whose home
	// moved here to its previous home, migrFlight single-flights the pulls,
	// migrCount mirrors len(migrPending) so the hot path's "is a migration
	// running" check is one atomic load.
	migrMu      sync.Mutex
	migrPending map[block.FileID]int
	migrFlight  map[block.FileID]chan struct{}
	migrCount   atomic.Int64

	// pend stripes the miss-coalescing map with the store's shard count, so
	// concurrent misses on different blocks do not serialize on one mutex
	// while they register their in-flight fetch.
	pend     []pendShard
	pendMask uint64

	// raMu guards raBusy, the set of files with a readahead in flight
	// (misses on a file already being prefetched do not spawn another).
	raMu   sync.Mutex
	raBusy map[block.FileID]struct{}

	// hintMu guards hintRing, the recent locally observed directory
	// deltas piggybacked on outgoing frames (hint mode only).
	hintMu   sync.Mutex
	hintRing []HintDelta

	// hot tracks the epoch-decayed peer-serve rate of local master copies
	// (nil: adaptive replication disabled). reps is the replica set this
	// node tracks for blocks whose directory entries it manages; repRR
	// rotates lookup answers across copy sets; repMu guards repCool (the
	// per-block push cooldown), repHot (tombstones of blocks whose replica
	// sets a write invalidation tore down, stamped with the arm epoch —
	// the next mastership claim re-triggers replication), and repLast (the
	// manager's per-block repush rate limit). epochStop ends the hotness
	// ticker.
	hot          *core.ShardedHotness
	reps         *replicaSets
	repRR        atomic.Uint32
	repMu        sync.Mutex
	repCool      map[block.ID]uint64
	repHot       map[block.ID]uint64
	repLast      map[block.ID]uint64
	repThreshold float64
	repFanout    int
	epochStop    chan struct{}

	// bus is the asynchronous invalidation bus (nil: sync mode or a
	// single-node cluster — writes fan out synchronously). invalIn is the
	// per-origin receive state (index = origin node ID). See inval.go.
	bus     *invalBus
	invalIn []*invalOrigin

	// stampMu guards the write/replication ordering stamps (inval.go):
	// stamps maps a block to the newest applied invalidation, stampRing
	// bounds the map with insert-order eviction.
	stampMu   sync.Mutex
	stamps    map[block.ID]uint64
	stampRing []block.ID
	stampPos  int

	// workers/maxPayload/rpcTimeout/retries/retryBase/retryCap and the
	// breaker parameters are the resolved settings (Config values with
	// defaults applied).
	workers    int
	maxPayload int
	rpcTimeout time.Duration
	retries    int
	retryBase  time.Duration
	retryCap   time.Duration
	brThresh   int
	brCooldown time.Duration

	// retryRand is the per-node seeded jitter stream of the retry backoff:
	// deterministic under a seeded FaultPlan and free of global-rand
	// contention.
	retryRand *lockedRand
	// tracer is Config.Tracer (nil: tracing disabled).
	tracer *obs.Tracer
	// rpcLat holds one latency histogram per outgoing request frame type,
	// fed by conn.roundTrip.
	rpcLat [msgTypeCount]obs.Histogram
	// runBlocks is the distribution of blocks served per run fetch RPC.
	runBlocks obs.ValueHistogram
	// invalLag is the publish-to-ack latency of invalidation records (the
	// measured staleness window); invalBatchBlocks is the distribution of
	// records per delivered batch.
	invalLag         obs.Histogram
	invalBatchBlocks obs.ValueHistogram

	c counters
}

// pendShard is one stripe of the miss-coalescing map: concurrent fetches of
// the same block join the stripe's in-flight channel instead of issuing a
// duplicate RPC (getBlock).
type pendShard struct {
	mu      sync.Mutex
	waiting map[block.ID]chan struct{}
}

// pendingShard routes a block to its miss-coalescing stripe (same hash and
// stripe count as the store's shards).
func (n *Node) pendingShard(id block.ID) *pendShard {
	if len(n.pend) == 1 {
		return &n.pend[0]
	}
	return &n.pend[shardMix(hotKey(id))&n.pendMask]
}

// counters holds the node's statistics.
type counters struct {
	accesses, localHits, remoteHits, diskReads, raceMisses atomic.Uint64
	forwards, forwardsRejected, invalidations, writes      atomic.Uint64
	prefetches                                             atomic.Uint64
	// fault-tolerance counters
	rpcTimeouts, rpcRetries, rpcFailures atomic.Uint64
	breakerOpens, breakerSkips           atomic.Uint64
	homeFallbacks, staleDrops            atomic.Uint64
	invalidateSkips                      atomic.Uint64
	// run fast-path counters
	runsIssued, runsDegraded atomic.Uint64
	// adaptive replication counters (replica hits and admission rejects
	// live in the store, next to the state they count)
	replicasPushed atomic.Uint64
	// invalidation bus counters
	invalBatched, invalCatchups atomic.Uint64
	// membership / rebalance counters
	rebalancedBlocks, heartbeatFailures atomic.Uint64
}

// Stats is a snapshot of a node's behaviour (JSON-encodable for the
// MsgStats RPC).
type Stats struct {
	Node             int
	Accesses         uint64
	LocalHits        uint64
	RemoteHits       uint64
	DiskReads        uint64
	RaceMisses       uint64
	Forwards         uint64
	ForwardsRejected uint64
	Invalidations    uint64
	Writes           uint64
	Prefetches       uint64
	// Fault-tolerance counters: see the Failure model section of DESIGN.md.
	RPCTimeouts     uint64 // round trips that missed RPCTimeout
	RPCRetries      uint64 // retry attempts issued after transient failures
	RPCFailures     uint64 // RPCs that failed after exhausting their retries
	BreakerOpens    uint64 // closed→open circuit breaker transitions
	BreakerSkips    uint64 // requests failed fast by an open breaker
	HomeFallbacks   uint64 // block fetches degraded to the home node after a peer transport failure
	StaleDrops      uint64 // directory/hint entries dropped because the named peer failed
	InvalidateSkips uint64 // write invalidations treated as "peer holds no cache" after a peer failure
	// Run fast-path counters: see the Run-granular reads section of DESIGN.md.
	RunsIssued   uint64 // MsgGetRun RPCs issued by the read planner
	RunsDegraded uint64 // run fetches that served fewer blocks than asked (or failed)
	// Invalidation bus counters: see the Write path & invalidation bus
	// section of DESIGN.md.
	InvalBatched  uint64 // invalidation records delivered via batched bus frames
	InvalCatchups uint64 // MsgInvalSince catch-up reconciliations started
	InvalBacklog  uint64 // deepest currently unacknowledged bus backlog across peers
	// Adaptive replication counters: see the Adaptive replication &
	// admission section of DESIGN.md.
	ReplicasPushed   uint64 // hot-block replicas pushed to peers and accepted
	ReplicaHits      uint64 // accesses served from replica copies
	AdmissionRejects uint64 // inserts the TinyLFU admission filter turned away
	// Elastic membership counters: see the Elastic membership section of
	// DESIGN.md.
	MembershipEpoch   uint64 // current membership view epoch (0: no view installed)
	RebalancedBlocks  uint64 // blocks pulled here by home re-assignment (rebalance)
	RebalancePending  uint64 // files whose re-homing pull has not completed yet
	HeartbeatFailures uint64 // heartbeat probes that failed
	StoreLen         int
	StoreMasters     int
	StoreReplicas    int // replica copies currently cached
	HintAccuracy float64
	// RPCLatency holds the node's per-RPC-type latency histograms, keyed by
	// the request frame type's metric name (only types with observations).
	// ClusterStats merges them bucket-wise across nodes.
	RPCLatency map[string]obs.HistogramData `json:",omitempty"`
}

// TraceDump is the MsgTrace RPC payload: the retained window of a node's
// protocol event trace, oldest first. Total exceeding len(Events) means
// the ring dropped that much earlier history.
type TraceDump struct {
	Node   int         `json:"node"`
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

// HitRate is the fraction of block accesses served from cluster memory.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LocalHits+s.RemoteHits) / float64(s.Accesses)
}

// Start validates cfg, begins listening, and returns the node. Call
// SetAddrs once every node of the cluster is up, then the node is fully
// operational.
func Start(cfg Config) (*Node, error) {
	if cfg.CapacityBlocks <= 0 {
		return nil, fmt.Errorf("middleware: CapacityBlocks must be positive")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("middleware: Source is required")
	}
	if cfg.Geometry == (block.Geometry{}) {
		cfg.Geometry = block.DefaultGeometry
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		geom:     cfg.Geometry,
		ln:       ln,
		store:    NewStoreShards(cfg.CapacityBlocks, cfg.Policy, cfg.StoreShards),
		accepted: make(map[*conn]struct{}),
		raBusy:   make(map[block.FileID]struct{}),
	}
	n.pend = make([]pendShard, n.store.ShardCount())
	n.pendMask = uint64(len(n.pend) - 1)
	for i := range n.pend {
		n.pend[i].waiting = make(map[block.ID]chan struct{})
	}
	n.workers = cfg.Workers
	if n.workers == 0 {
		n.workers = runtime.GOMAXPROCS(0)
	}
	if n.workers < 0 {
		n.workers = 0 // legacy per-request goroutines
	}
	n.maxPayload = cfg.MaxPayload
	if n.maxPayload <= 0 {
		n.maxPayload = maxPayload
	}
	n.rpcTimeout = cfg.RPCTimeout
	if n.rpcTimeout == 0 {
		n.rpcTimeout = defaultRPCTimeout
	}
	if n.rpcTimeout < 0 {
		n.rpcTimeout = 0 // deadlines disabled
	}
	n.retries = cfg.Retries
	if n.retries == 0 {
		n.retries = defaultRetries
	}
	if n.retries < 0 {
		n.retries = 0
	}
	n.retryBase = cfg.RetryBackoff
	if n.retryBase <= 0 {
		n.retryBase = defaultRetryBackoff
	}
	n.retryCap = 16 * n.retryBase
	n.brThresh = cfg.BreakerThreshold
	if n.brThresh == 0 {
		n.brThresh = defaultBreakerThreshold
	}
	n.brCooldown = cfg.BreakerCooldown
	if n.brCooldown <= 0 {
		n.brCooldown = defaultBreakerCooldown
	}
	// Seed the retry jitter per node (XOR-folded with the fault plan's seed
	// when one is attached), so a seeded chaos run has deterministic retry
	// timing draws.
	retrySeed := int64(cfg.ID+1) * 0x5851F42D4C957F2D
	if cfg.Fault != nil {
		retrySeed ^= cfg.Fault.Seed
	}
	n.retryRand = newLockedRand(retrySeed)
	n.tracer = cfg.Tracer
	n.migrPending = make(map[block.FileID]int)
	n.migrFlight = make(map[block.FileID]chan struct{})
	if cfg.HeartbeatInterval > 0 {
		n.hbInterval = cfg.HeartbeatInterval
		n.hbSuspectAfter = cfg.SuspectTimeout
		if n.hbSuspectAfter <= 0 {
			n.hbSuspectAfter = 3 * n.hbInterval
		}
		n.hbDeadAfter = cfg.DeadTimeout
		if n.hbDeadAfter <= 0 {
			n.hbDeadAfter = 10 * n.hbInterval
		}
		n.hbBusy = make(map[int]bool)
		n.hbLast = make(map[int]time.Time)
		n.hbFails = make(map[int]int)
		n.hbSuspect = make(map[int]bool)
		n.hbStop = make(chan struct{})
		go n.heartbeatLoop()
	}
	n.reps = newReplicaSets()
	if cfg.AdmissionFilter {
		n.store.SetAdmission(core.NewAdmission(cfg.CapacityBlocks))
	}
	if cfg.ReplicateThreshold > 0 {
		n.repThreshold = cfg.ReplicateThreshold
		n.repFanout = cfg.ReplicaFanout
		if n.repFanout <= 0 {
			n.repFanout = defaultReplicaFanout
		}
		if n.repFanout > maxReplicaFanout {
			n.repFanout = maxReplicaFanout
		}
		n.hot = core.NewShardedHotness(core.DefaultHotnessDecay, core.DefaultHotnessFloor,
			n.store.ShardCount())
		n.repCool = make(map[block.ID]uint64)
		n.repHot = make(map[block.ID]uint64)
		n.repLast = make(map[block.ID]uint64)
		n.epochStop = make(chan struct{})
		epoch := cfg.HotnessEpoch
		if epoch <= 0 {
			epoch = defaultHotnessEpoch
		}
		go n.epochLoop(epoch)
	}
	if cfg.Hints {
		cfg.DirMode = DirHints
		n.cfg.DirMode = DirHints
	}
	switch cfg.DirMode {
	case DirHints:
		n.hints = newHintLocator()
		n.loc = &ringHintLocator{n: n}
	case DirPartitioned:
		// Every node manages a hash slice of the block space (xFS-style
		// manager maps): no single directory bottleneck.
		n.dirSrv = newDirServer()
		n.loc = &partitionedLocator{n: n}
	case DirCentral:
		if cfg.ID == cfg.DirNode {
			n.dirSrv = newDirServer()
		}
		n.loc = &centralLocator{n: n}
	default:
		ln.Close()
		return nil, fmt.Errorf("middleware: unknown directory mode %d", cfg.DirMode)
	}
	go n.acceptLoop()
	return n, nil
}

// Adaptive replication defaults: two replicas per hot block, a 250 ms
// hotness decay epoch.
const (
	defaultReplicaFanout = 2
	defaultHotnessEpoch  = 250 * time.Millisecond
)

// epochLoop drives the hotness tracker's decay clock until Close, pruning
// the replication side maps along the way so a long-running node does not
// accumulate an entry per block ever pushed or tombstoned.
func (n *Node) epochLoop(epoch time.Duration) {
	t := time.NewTicker(epoch)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.hot.Advance()
			n.pruneReplication(n.hot.Epoch())
		case <-n.epochStop:
			return
		}
	}
}

// pruneReplication drops expired repush tombstones and stale cooldown/rate
// stamps. Entries young enough to still gate behavior are kept.
func (n *Node) pruneReplication(epoch uint64) {
	n.repMu.Lock()
	defer n.repMu.Unlock()
	for id, arm := range n.repHot {
		if epoch > arm+repushTTL {
			delete(n.repHot, id)
		}
	}
	for id, last := range n.repCool {
		if epoch > last+replicaCooldownEpochs {
			delete(n.repCool, id)
		}
	}
	for id, next := range n.repLast {
		if epoch > next {
			delete(n.repLast, id)
		}
	}
}

// Addr reports the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID reports the node's cluster index.
func (n *Node) ID() int { return n.cfg.ID }

// SetAddrs installs the cluster's bootstrap membership (index = node ID):
// every address alive, epoch advanced past any prior view. It must be
// called before the node serves requests that involve peers. Bootstrap
// deliberately skips rebalance — each node starts with exactly its homed
// slice, there is nothing to pull. Later membership changes go through
// Join/Drain/dead promotion (member.go), which install views incrementally
// and migrate data.
func (n *Node) SetAddrs(addrs []string) {
	n.mu.Lock()
	n.addrs = append([]string(nil), addrs...)
	n.peers = make([]*conn, len(addrs))
	n.peerAges = make([]*atomic.Int64, len(addrs))
	n.breakers = make([]*breaker, len(addrs))
	for i := range n.peerAges {
		n.peerAges[i] = &atomic.Int64{}
		n.peerAges[i].Store(noAge)
		n.breakers[i] = &breaker{threshold: n.brThresh, cooldown: n.brCooldown}
	}
	n.invalIn = make([]*invalOrigin, len(addrs))
	for i := range n.invalIn {
		n.invalIn[i] = &invalOrigin{}
	}
	old := n.bus
	n.bus = nil
	if !n.cfg.SyncInvalidate && len(addrs) > 1 && !n.closed {
		n.bus = newInvalBus(n, len(addrs))
	}
	epoch := uint64(1)
	if v := n.view.Load(); v != nil && v.epoch >= epoch {
		epoch = v.epoch + 1
	}
	members := make([]memberInfo, len(addrs))
	for i, a := range addrs {
		members[i] = memberInfo{Addr: a, State: stateAlive}
	}
	n.view.Store(newMemberView(epoch, n.cfg.StaticHome, members))
	n.mu.Unlock()
	if old != nil {
		old.shutdown()
	}
}

// breakerFor returns the circuit breaker of peer i (nil when membership is
// not installed or i is out of range; a nil breaker always allows).
func (n *Node) breakerFor(i int) *breaker {
	n.mu.Lock()
	defer n.mu.Unlock()
	if i < 0 || i >= len(n.breakers) {
		return nil
	}
	return n.breakers[i]
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.epochStop != nil {
		close(n.epochStop)
	}
	if n.hbStop != nil {
		close(n.hbStop)
	}
	if n.bus != nil {
		n.bus.shutdown()
	}
	peers := append([]*conn(nil), n.peers...)
	acc := make([]*conn, 0, len(n.accepted))
	for c := range n.accepted {
		acc = append(acc, c)
	}
	n.mu.Unlock()
	err := n.ln.Close()
	for _, c := range peers {
		if c != nil {
			c.close()
		}
	}
	for _, c := range acc {
		c.close()
	}
	return err
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	s := Stats{
		Node:             n.cfg.ID,
		Accesses:         n.c.accesses.Load(),
		LocalHits:        n.c.localHits.Load(),
		RemoteHits:       n.c.remoteHits.Load(),
		DiskReads:        n.c.diskReads.Load(),
		RaceMisses:       n.c.raceMisses.Load(),
		Forwards:         n.c.forwards.Load(),
		ForwardsRejected: n.c.forwardsRejected.Load(),
		Invalidations:    n.c.invalidations.Load(),
		Writes:           n.c.writes.Load(),
		Prefetches:       n.c.prefetches.Load(),
		RPCTimeouts:      n.c.rpcTimeouts.Load(),
		RPCRetries:       n.c.rpcRetries.Load(),
		RPCFailures:      n.c.rpcFailures.Load(),
		BreakerOpens:     n.c.breakerOpens.Load(),
		BreakerSkips:     n.c.breakerSkips.Load(),
		HomeFallbacks:    n.c.homeFallbacks.Load(),
		StaleDrops:       n.c.staleDrops.Load(),
		InvalidateSkips:  n.c.invalidateSkips.Load(),
		RunsIssued:       n.c.runsIssued.Load(),
		RunsDegraded:     n.c.runsDegraded.Load(),
		InvalBatched:     n.c.invalBatched.Load(),
		InvalCatchups:    n.c.invalCatchups.Load(),
		ReplicasPushed:   n.c.replicasPushed.Load(),
		ReplicaHits:      n.store.ReplicaHits(),
		AdmissionRejects: n.store.AdmissionRejects(),
		StoreLen:         n.store.Len(),
		StoreMasters:     n.store.Masters(),
		StoreReplicas:    n.store.Replicas(),
		HintAccuracy:     1,

		RebalancedBlocks:  n.c.rebalancedBlocks.Load(),
		RebalancePending:  uint64(n.migrCount.Load()),
		HeartbeatFailures: n.c.heartbeatFailures.Load(),
	}
	if v := n.view.Load(); v != nil {
		s.MembershipEpoch = v.epoch
	}
	if b := n.busRef(); b != nil {
		s.InvalBacklog = b.depth()
	}
	if n.hints != nil {
		s.HintAccuracy = n.hints.Accuracy()
	}
	for t := range n.rpcLat {
		if d := n.rpcLat[t].Snapshot(); d.Count > 0 {
			if s.RPCLatency == nil {
				s.RPCLatency = make(map[string]obs.HistogramData)
			}
			s.RPCLatency[MsgType(t).metricName()] = d
		}
	}
	return s
}

// RegisterMetrics registers the node's counters, gauges, and per-RPC-type
// latency histograms with r under cc_-prefixed Prometheus names (ccnode
// -metrics-addr serves them on /metrics).
func (n *Node) RegisterMetrics(r *obs.Registry) {
	c := &n.c
	counters := []struct {
		name, help string
		fn         func() uint64
	}{
		{"cc_accesses_total", "block accesses through the cooperative cache", c.accesses.Load},
		{"cc_local_hits_total", "accesses served from the local cache", c.localHits.Load},
		{"cc_remote_hits_total", "accesses served from a peer's cache", c.remoteHits.Load},
		{"cc_disk_reads_total", "accesses served from the backing store", c.diskReads.Load},
		{"cc_race_misses_total", "located masters that vanished before the fetch", c.raceMisses.Load},
		{"cc_forwards_total", "evicted masters forwarded to a peer", c.forwards.Load},
		{"cc_forwards_rejected_total", "eviction forwards rejected or failed", c.forwardsRejected.Load},
		{"cc_invalidations_total", "blocks invalidated by the write protocol", c.invalidations.Load},
		{"cc_writes_total", "write operations handled", c.writes.Load},
		{"cc_prefetches_total", "blocks fetched by readahead", c.prefetches.Load},
		{"cc_rpc_timeouts_total", "round trips that missed the RPC deadline", c.rpcTimeouts.Load},
		{"cc_rpc_retries_total", "retry attempts after transient failures", c.rpcRetries.Load},
		{"cc_rpc_failures_total", "RPCs failed after exhausting retries", c.rpcFailures.Load},
		{"cc_breaker_opens_total", "circuit breaker transitions into the open state", c.breakerOpens.Load},
		{"cc_breaker_skips_total", "requests failed fast by an open breaker", c.breakerSkips.Load},
		{"cc_home_fallbacks_total", "peer fetches degraded to the home node", c.homeFallbacks.Load},
		{"cc_stale_drops_total", "directory/hint entries dropped after peer failures", c.staleDrops.Load},
		{"cc_invalidate_skips_total", "invalidations degraded to 'peer holds no cache'", c.invalidateSkips.Load},
		{"cc_runs_total", "MsgGetRun fetches issued by the read planner", c.runsIssued.Load},
		{"cc_runs_degraded_total", "run fetches that served fewer blocks than asked", c.runsDegraded.Load},
		{"cc_inval_batched_total", "invalidation records delivered via batched bus frames", c.invalBatched.Load},
		{"cc_inval_catchups_total", "invalidation catch-up reconciliations started", c.invalCatchups.Load},
		{"cc_replicas_total", "hot-block replicas pushed to peers and accepted", c.replicasPushed.Load},
		{"cc_replica_hits_total", "accesses served from replica copies", n.store.ReplicaHits},
		{"cc_admission_rejects_total", "inserts the TinyLFU admission filter turned away", n.store.AdmissionRejects},
		{"cc_rebalance_blocks_total", "blocks pulled here by home re-assignment", c.rebalancedBlocks.Load},
		{"cc_heartbeat_failures_total", "heartbeat probes that failed", c.heartbeatFailures.Load},
	}
	for _, m := range counters {
		r.Counter(m.name, m.help, "", m.fn)
	}
	r.ValueHistogram("cc_run_blocks", "blocks served per run fetch", "", &n.runBlocks)
	r.Histogram("cc_inval_lag_seconds", "publish-to-ack latency of invalidation records", "", &n.invalLag)
	r.ValueHistogram("cc_inval_batch_blocks", "records per delivered invalidation batch", "", &n.invalBatchBlocks)
	r.Gauge("cc_inval_bus_depth", "deepest unacknowledged invalidation backlog across peers", "", func() float64 {
		if b := n.busRef(); b != nil {
			return float64(b.depth())
		}
		return 0
	})
	r.Gauge("cc_membership_epoch", "current membership view epoch", "", func() float64 {
		if v := n.view.Load(); v != nil {
			return float64(v.epoch)
		}
		return 0
	})
	r.Gauge("cc_rebalance_pending", "files whose re-homing pull has not completed", "", func() float64 {
		return float64(n.migrCount.Load())
	})
	r.Gauge("cc_store_blocks", "blocks currently cached", "", func() float64 { return float64(n.store.Len()) })
	r.Gauge("cc_store_masters", "master copies currently cached", "", func() float64 { return float64(n.store.Masters()) })
	r.Gauge("cc_store_replicas", "replica copies currently cached", "", func() float64 { return float64(n.store.Replicas()) })
	if n.hints != nil {
		r.Gauge("cc_hint_accuracy", "fraction of hint lookups that located a live master", "", n.hints.Accuracy)
	}
	if n.tracer != nil {
		r.Gauge("cc_trace_events_total", "protocol trace events recorded (including overwritten)", "",
			func() float64 { return float64(n.tracer.Total()) })
	}
	for _, t := range requestMsgTypes {
		r.Histogram("cc_rpc_latency_seconds", "peer round-trip latency by request frame type",
			`type="`+t.metricName()+`"`, &n.rpcLat[t])
	}
}

// requestMsgTypes are the frame types that initiate round trips — the
// series pre-registered for the per-RPC-type latency histograms.
var requestMsgTypes = []MsgType{
	MsgGetBlock, MsgReadFile, MsgReadRange, MsgDirLookup, MsgDirUpdate,
	MsgDirDrop, MsgForward, MsgWriteBlock, MsgInvalidate, MsgPutBlock,
	MsgStats, MsgTrace, MsgGetRun, MsgDirLookupN, MsgDirUpdateN,
	MsgReplicate, MsgReplicaOp, MsgRepush, MsgInvalidateN, MsgInvalSince,
	MsgPing, MsgView, MsgViewUpdate, MsgJoin, MsgDrain,
}

// busRef reads the bus pointer under the membership lock (SetAddrs can
// swap it).
func (n *Node) busRef() *invalBus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bus
}

// --- connection plumbing ---

func (n *Node) acceptLoop() {
	for {
		nc, err := n.ln.Accept()
		if err != nil {
			return
		}
		// The remote identity of an accepted conn is unknown (-1): the
		// fault plan applies its probabilistic faults but no partitions.
		nc = n.cfg.Fault.Wrap(nc, n.cfg.ID, -1)
		c := newConn(nc, n.connConfig())
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.close()
			return
		}
		n.accepted[c] = struct{}{}
		n.mu.Unlock()
	}
}

// connConfig builds the per-conn settings for this node's connections.
func (n *Node) connConfig() connConfig {
	return connConfig{
		handle:     n.handle,
		observe:    n.observe,
		stamp:      n.stamp,
		workers:    n.workers,
		maxPayload: n.maxPayload,
		timeout:    n.rpcTimeout,
		latency:    n.observeRPCLatency,
	}
}

// observeRPCLatency feeds the per-RPC-type latency histograms (two atomic
// adds per round trip).
func (n *Node) observeRPCLatency(t MsgType, d time.Duration) {
	if int(t) < len(n.rpcLat) {
		n.rpcLat[t].Observe(d)
	}
}

// trace records one protocol event when a tracer is attached (nil tracer:
// a single branch).
func (n *Node) trace(kind string, peer int, id block.ID, aux int64) {
	if n.tracer == nil {
		return
	}
	n.tracer.Record(obs.Event{
		UnixNanos: time.Now().UnixNano(),
		Kind:      kind,
		Node:      int32(n.cfg.ID),
		Peer:      int32(peer),
		File:      int64(id.File),
		Idx:       id.Idx,
		Aux:       aux,
	})
}

// stamp decorates outgoing frames with identity, the oldest-age piggyback,
// and (in hint mode) the most recent directory deltas.
func (n *Node) stamp(f *Frame) {
	f.Sender = int32(n.cfg.ID)
	if age, ok := n.store.OldestAge(); ok {
		f.OldestAge = age
	} else {
		f.OldestAge = noAge
	}
	if n.hints != nil && f.Hints == nil {
		n.hintMu.Lock()
		if len(n.hintRing) > 0 {
			// The frame's inline hint array keeps stamping allocation-free.
			f.Hints = append(f.hintArr[:0], n.hintRing...)
		}
		n.hintMu.Unlock()
	}
}

// observe harvests piggybacked peer ages and hint deltas.
func (n *Node) observe(f *Frame) {
	if f.Sender < 0 {
		return
	}
	n.mu.Lock()
	var age *atomic.Int64
	if int(f.Sender) < len(n.peerAges) {
		age = n.peerAges[f.Sender]
	}
	n.mu.Unlock()
	if age != nil {
		age.Store(f.OldestAge)
	}
	if n.hints != nil {
		for _, d := range f.Hints {
			if d.Node >= 0 && int(d.Node) != n.cfg.ID {
				n.hints.Update(block.ID{File: d.File, Idx: d.Idx}, d.Node) //nolint:errcheck // local map
			}
		}
	}
}

// noteHint records a locally observed directory fact and queues it for
// piggybacked spreading.
func (n *Node) noteHint(id block.ID, holder int32) {
	if n.hints == nil {
		return
	}
	n.hints.Update(id, holder) //nolint:errcheck // local map
	n.hintMu.Lock()
	n.hintRing = append(n.hintRing, HintDelta{File: id.File, Idx: id.Idx, Node: holder})
	if len(n.hintRing) > maxHintDeltas {
		n.hintRing = n.hintRing[len(n.hintRing)-maxHintDeltas:]
	}
	n.hintMu.Unlock()
}

// ringHintLocator is the hint-mode locator: lookups are local; updates also
// enter the piggyback ring so the knowledge spreads.
type ringHintLocator struct{ n *Node }

func (r *ringHintLocator) Lookup(id block.ID) (int32, bool, error) {
	return r.n.hints.Lookup(id)
}

func (r *ringHintLocator) Update(id block.ID, node int32) error {
	r.n.noteHint(id, node)
	return nil
}

func (r *ringHintLocator) Drop(id block.ID, ifNode int32) error {
	return r.n.hints.Drop(id, ifNode)
}

func (r *ringHintLocator) Miss(id block.ID, node int32) {
	r.n.hints.Miss(id, node)
}

func (r *ringHintLocator) LookupN(f block.FileID, idxs []int32) ([]int32, error) {
	return r.n.hints.LookupN(f, idxs)
}

func (r *ringHintLocator) UpdateN(f block.FileID, idxs []int32, node int32) error {
	for _, idx := range idxs {
		r.n.noteHint(block.ID{File: f, Idx: idx}, node)
	}
	return nil
}

// peer returns (dialing lazily) the connection to node i.
func (n *Node) peer(i int) (*conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errConnClosed
	}
	if n.addrs == nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("middleware: node %d has no cluster membership (SetAddrs not called)", n.cfg.ID)
	}
	if i < 0 || i >= len(n.addrs) {
		n.mu.Unlock()
		return nil, fmt.Errorf("middleware: peer %d out of range", i)
	}
	if c := n.peers[i]; c != nil {
		n.mu.Unlock()
		return c, nil
	}
	addr := n.addrs[i]
	n.mu.Unlock()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	nc = n.cfg.Fault.Wrap(nc, n.cfg.ID, i)
	c := newConn(nc, n.connConfig())
	n.mu.Lock()
	if n.peers[i] != nil {
		// Lost the dial race; keep the established one.
		n.mu.Unlock()
		c.close()
		return n.peers[i], nil
	}
	n.peers[i] = c
	n.mu.Unlock()
	return c, nil
}

// roundTripTo sends a request to node i and awaits the response. When a
// connection has died (peer restart), one redial is attempted.
func (n *Node) roundTripTo(i int, f *Frame) (*Frame, error) {
	c, err := n.peer(i)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(f)
	if err == errConnClosed {
		n.mu.Lock()
		if n.peers[i] == c {
			n.peers[i] = nil
		}
		n.mu.Unlock()
		c2, err2 := n.peer(i)
		if err2 != nil {
			return nil, err2
		}
		return c2.roundTrip(f)
	}
	return resp, err
}

// reliableRPC is roundTripTo behind the fault-tolerance layer: the peer's
// circuit breaker is consulted up front (an open breaker fails fast with
// errPeerSuspect instead of paying a timeout), transient transport
// failures are retried up to `retries` extra times with capped exponential
// backoff and jitter, and every outcome feeds the breaker and the fault
// counters. Only idempotent requests may pass retries > 0. Application
// errors (MsgErr) are returned immediately: the peer is alive.
//
// The request frame stays owned by the caller and is reused across
// attempts; the returned response must be released by the caller.
func (n *Node) reliableRPC(peer int, f *Frame, retries int) (*Frame, error) {
	br := n.breakerFor(peer)
	if !br.allow() {
		n.c.breakerSkips.Add(1)
		return nil, errPeerSuspect
	}
	backoff := n.retryBase
	for attempt := 0; ; attempt++ {
		resp, err := n.roundTripTo(peer, f)
		if err == nil {
			if br.success() {
				n.trace(traceBreakerClose, peer, f.ID(), 0)
			}
			return resp, nil
		}
		if !isTransient(err) {
			// The peer answered: the operation is wrong, not the wire.
			return nil, err
		}
		if errors.Is(err, errRPCTimeout) {
			n.c.rpcTimeouts.Add(1)
			n.trace(traceRPCTimeout, peer, f.ID(), int64(attempt))
		}
		if br.failure() {
			n.c.breakerOpens.Add(1)
			n.trace(traceBreakerOpen, peer, f.ID(), 0)
		}
		if attempt >= retries {
			n.c.rpcFailures.Add(1)
			return nil, err
		}
		// Only re-enter the breaker when a retry will actually happen
		// (allow consumes the half-open probe slot).
		if !br.allow() {
			n.c.breakerSkips.Add(1)
			n.c.rpcFailures.Add(1)
			return nil, err
		}
		n.c.rpcRetries.Add(1)
		n.trace(traceRetry, peer, f.ID(), int64(attempt+1))
		backoffSleep(&backoff, n.retryCap, n.retryRand)
	}
}

// home reports the home node of file f — the global file-to-node mapping
// of §3. Under the default consistent-hash view this is a lock-free ring
// lookup; with Config.StaticHome it is the paper's original modulo mapping.
func (n *Node) home(f block.FileID) (int, error) {
	v := n.view.Load()
	if v == nil {
		return 0, fmt.Errorf("middleware: no cluster membership")
	}
	h, ok := v.home(f)
	if !ok {
		return 0, fmt.Errorf("middleware: no cluster membership")
	}
	return h, nil
}

// clusterSize is the member-slot count (dead slots included): the bound of
// every per-peer loop and array index.
func (n *Node) clusterSize() int {
	if v := n.view.Load(); v != nil {
		return v.size()
	}
	return 0
}

// viewRef is the current membership view (nil before SetAddrs).
func (n *Node) viewRef() *memberView { return n.view.Load() }

// --- request handling ---

func (n *Node) handle(f *Frame) *Frame {
	switch f.Type {
	case MsgGetBlock:
		return n.handleGetBlock(f)
	case MsgGetRun:
		return n.handleGetRun(f)
	case MsgDirLookupN, MsgDirUpdateN:
		return n.handleDirBatch(f)
	case MsgReadFile:
		data, err := n.ReadFile(f.File)
		if err != nil {
			return errFrameFrom(err, "read file %d: %v", f.File, err)
		}
		r := getFrame()
		r.Type, r.File, r.Payload = MsgFileData, f.File, data
		return r
	case MsgReadRange:
		off, length := unpackRange(f.Aux)
		size, err := n.cfg.Source.FileSize(f.File)
		if err != nil {
			return errFrameFrom(err, "read range %d: %v", f.File, err)
		}
		data, err := n.ReadRange(f.File, off, length)
		if err != nil {
			return errFrameFrom(err, "read range %d: %v", f.File, err)
		}
		r := getFrame()
		r.Type, r.File, r.Aux, r.Payload = MsgFileData, f.File, size, data
		return r
	case MsgDirLookup, MsgDirUpdate, MsgDirDrop:
		return n.handleDir(f)
	case MsgForward:
		return n.handleForward(f)
	case MsgWriteBlock:
		// WriteBlock retains the slice (store insert): take ownership away
		// from the pooled frame.
		if err := n.WriteBlock(f.ID(), f.TakePayload()); err != nil {
			return errFrameFrom(err, "write %v: %v", f.ID(), err)
		}
		return ackFrame()
	case MsgInvalidate:
		n.handleInvalidate(f.ID())
		return ackFrame()
	case MsgInvalidateN:
		return n.handleInvalidateN(f)
	case MsgInvalSince:
		return n.handleInvalSince(f)
	case MsgPing:
		return n.handlePing(f)
	case MsgView:
		return n.handleView(f)
	case MsgViewUpdate:
		return n.handleViewUpdate(f)
	case MsgJoin:
		return n.handleJoin(f)
	case MsgDrain:
		return n.handleDrain(f)
	case MsgReplicate:
		return n.handleReplicate(f)
	case MsgReplicaOp:
		return n.handleReplicaOp(f)
	case MsgRepush:
		return n.handleRepush(f)
	case MsgPutBlock:
		// Pull the file's prior-home state before accepting a write-through,
		// so a migration arriving later cannot clobber this newer block.
		n.ensureMigrated(f.File)
		// The BlockSource contract does not promise a copy: take ownership.
		if err := n.cfg.Source.WriteBlock(f.File, f.Idx, f.TakePayload()); err != nil {
			return errFrame("put %v: %v", f.ID(), err)
		}
		// Under the async bus the writer's invalidation record may still be
		// in flight: drop any cached copy of the just-overwritten block so
		// the home never serves bytes it knows its own disk supersedes.
		// (Sync mode skips this — the fan-out already ran, and the pre-bus
		// protocol is kept byte-identical.)
		if n.busRef() != nil {
			if present, master := n.store.Remove(f.ID()); present && master {
				n.loc.Drop(f.ID(), int32(n.cfg.ID)) //nolint:errcheck // best effort
			}
		}
		return ackFrame()
	case MsgStats:
		payload, err := json.Marshal(n.Stats())
		if err != nil {
			return errFrame("stats: %v", err)
		}
		r := getFrame()
		r.Type, r.Payload = MsgStatsReply, payload
		return r
	case MsgTrace:
		payload, err := json.Marshal(TraceDump{
			Node:   n.cfg.ID,
			Total:  n.tracer.Total(),
			Events: n.tracer.Events(),
		})
		if err != nil {
			return errFrame("trace: %v", err)
		}
		r := getFrame()
		r.Type, r.Payload = MsgTraceReply, payload
		return r
	default:
		return errFrame("unknown message type %d", f.Type)
	}
}

func (n *Node) handleGetBlock(f *Frame) *Frame {
	id := f.ID()
	if f.Flags&FlagMaster != 0 {
		// Home read. In hint mode the home acts as the probable-owner
		// chain's anchor: if it believes another node holds the master, it
		// redirects the requester there instead of reading disk (Sarkar &
		// Hartman's forwarding), unless the requester forces a disk read
		// after a failed redirect.
		if n.hints != nil && f.Flags&FlagForce == 0 {
			holder, ok, _ := n.hints.Lookup(id)
			if !ok {
				holder = int32(n.cfg.ID)
			}
			// The home anchors the block's copy set in hint mode: rotate the
			// redirect across the believed master and any pushed replicas.
			holder = n.reps.pick(id, holder, f.Sender, n.repRR.Add(1))
			if holder != int32(n.cfg.ID) && holder != f.Sender {
				r := getFrame()
				r.Type, r.Flags, r.File, r.Idx, r.Aux = MsgBlockMiss, FlagMaster, f.File, f.Idx, int64(holder)
				return r
			}
		}
		n.ensureMigrated(f.File)
		data, err := n.cfg.Source.ReadBlock(f.File, f.Idx)
		if err != nil {
			return errFrame("home read %v: %v", id, err)
		}
		if f.Sender >= 0 {
			// The home learns the new master location from this exchange.
			n.noteHint(id, f.Sender)
		}
		r := getFrame()
		r.Type, r.Flags, r.File, r.Idx, r.Payload = MsgBlockData, FlagMaster, f.File, f.Idx, data
		return r
	}
	if pb, master, ok := n.store.GetServe(id); ok {
		// Zero-copy serve: the reply aliases the pinned store buffer; the
		// pin rides the frame and is released after the socket write, so
		// eviction cannot recycle the bytes under the reply.
		r := getFrame()
		r.Type, r.File, r.Idx, r.Payload = MsgBlockData, f.File, f.Idx, pb.data
		r.pin(pb)
		if master {
			// The response says whether a master or a replica served it, so
			// the requester only records master locations as hints.
			r.Flags = FlagMaster
			n.observeServe(id)
		}
		return r
	}
	r := getFrame()
	r.Type, r.File, r.Idx = MsgBlockMiss, f.File, f.Idx
	return r
}

// handleGetRun serves a contiguous run of blocks in one response: the run's
// blocks concatenated in the payload, the served count and per-block master
// flags packed into Aux. A home run (FlagMaster) reads the backing store;
// in hint mode it stops before the first block whose hint points at a third
// node, so the requester finishes those through the per-block redirect
// machinery. A peer run gathers local cache hits and stops at the first
// gap. A short (even empty) run is a valid response, never an error: the
// requester completes the remainder per-block.
func (n *Node) handleGetRun(f *Frame) *Frame {
	want, _ := unpackRunAux(f.Aux)
	if want <= 0 || want > maxRunBlocks {
		return errFrame("bad run count %d for %v", want, f.ID())
	}
	first := f.Idx
	if f.Flags&FlagMaster != 0 {
		n.ensureMigrated(f.File)
		segs := make([][]byte, 0, want)
		var masters uint32
		for len(segs) < want {
			id := block.ID{File: f.File, Idx: first + int32(len(segs))}
			if n.hints != nil {
				if holder, ok, _ := n.hints.Lookup(id); ok &&
					holder != int32(n.cfg.ID) && holder != f.Sender {
					break
				}
			}
			data, err := n.cfg.Source.ReadBlock(f.File, id.Idx)
			if err != nil {
				if len(segs) == 0 {
					return errFrame("home run read %v: %v", id, err)
				}
				break
			}
			masters |= 1 << uint(len(segs))
			segs = append(segs, data)
			if f.Sender >= 0 {
				n.noteHint(id, f.Sender)
			}
		}
		r := getFrame()
		r.Type, r.Flags, r.File, r.Idx = MsgRunData, FlagMaster, f.File, first
		r.Aux = packRunAux(len(segs), masters)
		r.Segs = segs // scatter-gathered by the writer; never concatenated
		return r
	}
	// Peer run: pinned references straight out of the sharded store. The
	// reply's segments alias the pinned buffers — N cached blocks ship with
	// zero payload copies and zero concatenation; the pins drop after the
	// socket write.
	bufs, masters := n.store.GetRun(f.File, first, want, nil)
	count := len(bufs)
	if n.hot != nil && masters != 0 {
		for i := 0; i < count; i++ {
			if masters&(1<<uint(i)) != 0 {
				n.observeServe(block.ID{File: f.File, Idx: first + int32(i)})
			}
		}
	}
	r := getFrame()
	r.Type, r.File, r.Idx = MsgRunData, f.File, first
	r.Aux = packRunAux(count, masters)
	if count > 0 {
		r.Segs = make([][]byte, count)
		for i, pb := range bufs {
			r.Segs[i] = pb.data
			r.pin(pb)
		}
	}
	return r
}

// handleDirBatch answers the batched directory messages: one lock
// acquisition resolves or repoints a whole window of entries.
func (n *Node) handleDirBatch(f *Frame) *Frame {
	if n.dirSrv == nil {
		return errFrame("node %d does not host the directory", n.cfg.ID)
	}
	idxs, err := decodeIdxPayload(f.Payload, nil)
	if err != nil {
		return errFrame("dir batch: %v", err)
	}
	if f.Type == MsgDirUpdateN {
		n.dirSrv.updateN(f.File, idxs, int32(f.Aux))
		return ackFrame()
	}
	res := n.dirSrv.lookupN(f.File, idxs, make([]int32, 0, len(idxs)))
	if n.reps.len() > 0 {
		// One rotation draw per window, so blocks sharing a copy set land
		// on the same holder and the requester's runs stay coalesced.
		draw := n.repRR.Add(1)
		for i, idx := range idxs {
			if res[i] != dirNoEntry {
				res[i] = n.reps.pick(block.ID{File: f.File, Idx: idx}, res[i], f.Sender, draw)
			}
		}
	}
	r := getFrame()
	r.Type, r.File = MsgDirResultN, f.File
	r.Payload = appendIdxPayload(make([]byte, 0, 4*len(res)), res)
	return r
}

func (n *Node) handleDir(f *Frame) *Frame {
	if n.dirSrv == nil {
		return errFrame("node %d does not host the directory", n.cfg.ID)
	}
	id := f.ID()
	switch f.Type {
	case MsgDirLookup:
		node, ok := n.dirSrv.lookup(id)
		if ok {
			// Rotate the answer across the block's copy set (master when
			// the set is empty): adaptive replication's load balancing.
			node = n.reps.pick(id, node, f.Sender, n.repRR.Add(1))
		}
		r := getFrame()
		r.Type, r.File, r.Idx, r.Aux = MsgDirResult, f.File, f.Idx, int64(node)
		if ok {
			r.Flags = 1
		}
		return r
	case MsgDirUpdate:
		n.dirSrv.update(id, int32(f.Aux))
		n.maybeRepush(id, int32(f.Aux))
	case MsgDirDrop:
		// A drop may target a replica holder (failed fetch after rotation):
		// retire it from the copy set; the master entry itself is CAS-
		// protected, so a replica failure never erases a live master claim.
		n.reps.drop(id, int32(f.Aux))
		n.dirSrv.drop(id, int32(f.Aux))
	}
	return ackFrame()
}

func (n *Node) handleForward(f *Frame) *Frame {
	id := f.ID()
	// The store keeps the forwarded payload: take the refcounted buffer from
	// the frame, pooled backing and all, so an eventual eviction recycles it.
	accepted, displaced := n.store.AcceptForwardBuf(id, f.TakePayloadBuf(), f.Aux)
	if displaced != nil && displaced.Master {
		// The block we discarded to make room was a master: the cluster
		// forgets it (no cascaded forwarding, §3).
		n.loc.Drop(displaced.ID, int32(n.cfg.ID)) //nolint:errcheck // best effort
	} else if displaced != nil && displaced.Replica {
		go n.retireReplica(displaced.ID)
	}
	if accepted {
		n.noteHint(id, int32(n.cfg.ID))
	}
	r := getFrame()
	r.Type, r.File, r.Idx = MsgForwardAck, f.File, f.Idx
	if accepted {
		r.Flags = 1
	}
	return r
}

func (n *Node) handleInvalidate(id block.ID) {
	n.c.invalidations.Add(1)
	n.trace(traceInvalidate, -1, id, 0)
	if present, master := n.store.Remove(id); present && master {
		n.loc.Drop(id, int32(n.cfg.ID)) //nolint:errcheck // best effort
	}
	// The write fan-out reaches every node, so the manager clears the
	// block's replica set with no extra RPC. Tearing down a non-empty set
	// tombstones the block: it was hot a moment ago, so when the writer's
	// mastership claim arrives, the manager asks it to push fresh replicas.
	if n.reps.clear(id) && n.hot != nil {
		n.markRepush(id)
	}
	if n.hints != nil {
		n.hints.Drop(id, -1) //nolint:errcheck // local map
	}
}
