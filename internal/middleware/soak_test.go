package middleware

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// TestSoakConcurrentReadWrite hammers a small cluster with concurrent
// readers and writers under memory pressure and verifies the coherence
// contract: every read of a block observes either the synthetic original
// or a value some writer actually wrote (writers tag blocks with their
// identity, so torn or stale-after-invalidate values are detectable).
func TestSoakConcurrentReadWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const (
		nFiles   = 8
		fileSize = 4 * 1024 // 4 blocks of 1 KB
		workers  = 6
		opsEach  = 60
	)
	sizes := map[block.FileID]int64{}
	for f := 0; f < nFiles; f++ {
		sizes[block.FileID(f)] = fileSize
	}
	// Small caches force constant eviction/forwarding during the soak.
	_, client := startCluster(t, 3, 16, core.PolicyMaster, false, sizes)

	// validBlock reports whether data is a legal value for the block:
	// the synthetic original or a writer-tagged pattern.
	validBlock := func(f block.FileID, idx int32, data []byte) bool {
		if bytes.Equal(data, SyntheticBlock(f, idx, len(data))) {
			return true
		}
		if len(data) == 0 {
			return false
		}
		tag := data[0]
		for _, b := range data {
			if b != tag {
				return false // torn write
			}
		}
		return tag < workers
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for op := 0; op < opsEach; op++ {
				f := block.FileID(rng.Intn(nFiles))
				if rng.Intn(3) == 0 {
					// Write a tagged block.
					idx := int32(rng.Intn(4))
					data := bytes.Repeat([]byte{byte(w)}, 1024)
					if err := client.Write(f, idx, data); err != nil {
						errs <- fmt.Errorf("worker %d write: %w", w, err)
						return
					}
					continue
				}
				data, err := client.Read(f)
				if err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if len(data) != fileSize {
					errs <- fmt.Errorf("worker %d: file %d is %d bytes", w, f, len(data))
					return
				}
				for idx := int32(0); idx < 4; idx++ {
					blk := data[idx*1024 : (idx+1)*1024]
					if !validBlock(f, idx, blk) {
						errs <- fmt.Errorf("worker %d: file %d block %d has invalid content", w, f, idx)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Invalidations == 0 {
		t.Fatalf("soak exercised no writes: %+v", st)
	}
	if st.Accesses == 0 {
		t.Fatal("soak exercised no reads")
	}
}
