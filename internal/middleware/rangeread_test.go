package middleware

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"

	"repro/internal/block"
	"repro/internal/core"
)

func TestReadRangeNode(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2500}
	nodes, _ := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	full := expect(testGeom, 0, 2500)

	cases := []struct {
		off int64
		n   int
	}{
		{0, 100},     // within first block
		{1000, 100},  // spanning a block boundary
		{2400, 100},  // exactly to EOF
		{2400, 1000}, // clamped at EOF
		{0, 2500},    // whole file
		{2500, 10},   // empty at EOF
		{1024, 1024}, // exactly one block
	}
	for _, c := range cases {
		got, err := nodes[0].ReadRange(0, c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", c.off, c.n, err)
		}
		wantLen := c.n
		if rem := int(2500 - c.off); wantLen > rem {
			wantLen = rem
		}
		if len(got) != wantLen {
			t.Fatalf("ReadRange(%d, %d) = %d bytes, want %d", c.off, c.n, len(got), wantLen)
		}
		if !bytes.Equal(got, full[c.off:c.off+int64(wantLen)]) {
			t.Fatalf("ReadRange(%d, %d): content mismatch", c.off, c.n)
		}
	}
	if _, err := nodes[0].ReadRange(0, -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := nodes[0].ReadRange(0, 3000, 10); err == nil {
		t.Fatal("offset beyond EOF accepted")
	}
}

func TestReadRangeTouchesOnlyCoveredBlocks(t *testing.T) {
	sizes := map[block.FileID]int64{0: 10 * 1024} // 10 blocks
	nodes, _ := startCluster(t, 1, 64, core.PolicyMaster, false, sizes)
	if _, err := nodes[0].ReadRange(0, 3*1024, 1024); err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].Stats().DiskReads; got != 1 {
		t.Fatalf("disk reads = %d, want 1 (only the covered block)", got)
	}
}

func TestFileReaderInterfaces(t *testing.T) {
	sizes := map[block.FileID]int64{7: 5000}
	_, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	fr, err := client.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Size() != 5000 {
		t.Fatalf("Size = %d", fr.Size())
	}
	full := expect(testGeom, 7, 5000)

	// io.ReaderAt semantics.
	buf := make([]byte, 1000)
	n, err := fr.ReadAt(buf, 2000)
	if err != nil || n != 1000 || !bytes.Equal(buf, full[2000:3000]) {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	// Short read at EOF.
	n, err = fr.ReadAt(buf, 4500)
	if err != io.EOF || n != 500 {
		t.Fatalf("ReadAt near EOF: n=%d err=%v", n, err)
	}
	if _, err := fr.ReadAt(buf, 6000); err != io.EOF {
		t.Fatalf("ReadAt past EOF: %v", err)
	}

	// io.Reader + io.Seeker: stream the whole file and compare.
	if _, err := fr.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("streamed content mismatch")
	}

	// Seek semantics.
	if pos, err := fr.Seek(-100, io.SeekEnd); err != nil || pos != 4900 {
		t.Fatalf("SeekEnd: %d, %v", pos, err)
	}
	if _, err := fr.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := fr.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestOpenUnknownFile(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024}
	_, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	err := func() error { _, err := client.Open(99); return err }()
	if err == nil {
		t.Fatal("unknown file opened")
	}
	if !IsNotFound(err) {
		t.Fatalf("open of unknown file not classified not-found: %v", err)
	}
}

// TestFileReaderContract runs the stdlib iotest contract checker over
// files straddling block boundaries: FileReader must behave exactly like
// bytes.Reader for Read, ReadAt, and Seek.
func TestFileReaderContract(t *testing.T) {
	sizes := map[block.FileID]int64{
		0: 1024, // exactly one block
		1: 1023, // one byte short of a block
		2: 1025, // one byte over
		3: 4096, // multi-block, aligned
		4: 5000, // multi-block, unaligned tail
	}
	_, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	for f, size := range sizes {
		fr, err := client.Open(f)
		if err != nil {
			t.Fatalf("open %d: %v", f, err)
		}
		if err := iotest.TestReader(fr, expect(testGeom, f, size)); err != nil {
			t.Fatalf("file %d (%d bytes): %v", f, size, err)
		}
	}
	fr, err := client.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadAt(make([]byte, 10), -1); err == nil || err == io.EOF {
		t.Fatalf("negative offset: err = %v, want a non-EOF error", err)
	}
}

// TestFileReaderReadAtBeyondRangeLimit pins the io.ReaderAt contract for
// buffers larger than one ranged RPC can carry (maxRangeLen): ReadAt must
// loop over RPCs until the buffer is full, and return io.EOF only at true
// end of file — the exact case the pre-fix code answered with a short read
// and a spurious EOF.
func TestFileReaderReadAtBeyondRangeLimit(t *testing.T) {
	geom := block.Geometry{Size: 64 * 1024, ExtentBlocks: 8} // big blocks keep the block count sane
	size := int64(maxRangeLen) + 200_000
	sizes := map[block.FileID]int64{3: size}
	nodes := make([]*Node, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		n, err := Start(Config{
			ID: i, CapacityBlocks: 512, Policy: core.PolicyMaster,
			Geometry: geom, Source: NewMemSource(geom, sizes),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	fr, err := client.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	full := expect(geom, 3, size)

	const off = 50_000
	buf := make([]byte, maxRangeLen+100_000) // needs two ranged RPCs
	n, err := fr.ReadAt(buf, off)
	if err != nil {
		t.Fatalf("ReadAt: n=%d err=%v (spurious EOF regression?)", n, err)
	}
	if n != len(buf) {
		t.Fatalf("ReadAt filled %d of %d bytes", n, len(buf))
	}
	if !bytes.Equal(buf, full[off:off+int64(len(buf))]) {
		t.Fatal("chunked ReadAt content mismatch")
	}

	// A buffer larger than the remaining file still ends in a true EOF.
	tail := make([]byte, maxRangeLen+100_000)
	n, err = fr.ReadAt(tail, size-1000)
	if err != io.EOF || n != 1000 {
		t.Fatalf("ReadAt at tail: n=%d err=%v, want 1000, io.EOF", n, err)
	}
	if !bytes.Equal(tail[:n], full[size-1000:]) {
		t.Fatal("tail content mismatch")
	}
}

func TestPackRange(t *testing.T) {
	for _, c := range []struct {
		off int64
		n   int
	}{{0, 0}, {1, 2}, {1 << 38, maxRangeLen}, {123456789, 8192}} {
		off, n := unpackRange(packRange(c.off, c.n))
		if off != c.off || n != c.n {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", c.off, c.n, off, n)
		}
	}
}

var (
	_ io.ReaderAt = (*FileReader)(nil)
	_ io.Reader   = (*FileReader)(nil)
	_ io.Seeker   = (*FileReader)(nil)
)
