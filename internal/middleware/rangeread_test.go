package middleware

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func TestReadRangeNode(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2500}
	nodes, _ := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	full := expect(testGeom, 0, 2500)

	cases := []struct {
		off int64
		n   int
	}{
		{0, 100},     // within first block
		{1000, 100},  // spanning a block boundary
		{2400, 100},  // exactly to EOF
		{2400, 1000}, // clamped at EOF
		{0, 2500},    // whole file
		{2500, 10},   // empty at EOF
		{1024, 1024}, // exactly one block
	}
	for _, c := range cases {
		got, err := nodes[0].ReadRange(0, c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", c.off, c.n, err)
		}
		wantLen := c.n
		if rem := int(2500 - c.off); wantLen > rem {
			wantLen = rem
		}
		if len(got) != wantLen {
			t.Fatalf("ReadRange(%d, %d) = %d bytes, want %d", c.off, c.n, len(got), wantLen)
		}
		if !bytes.Equal(got, full[c.off:c.off+int64(wantLen)]) {
			t.Fatalf("ReadRange(%d, %d): content mismatch", c.off, c.n)
		}
	}
	if _, err := nodes[0].ReadRange(0, -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := nodes[0].ReadRange(0, 3000, 10); err == nil {
		t.Fatal("offset beyond EOF accepted")
	}
}

func TestReadRangeTouchesOnlyCoveredBlocks(t *testing.T) {
	sizes := map[block.FileID]int64{0: 10 * 1024} // 10 blocks
	nodes, _ := startCluster(t, 1, 64, core.PolicyMaster, false, sizes)
	if _, err := nodes[0].ReadRange(0, 3*1024, 1024); err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].Stats().DiskReads; got != 1 {
		t.Fatalf("disk reads = %d, want 1 (only the covered block)", got)
	}
}

func TestFileReaderInterfaces(t *testing.T) {
	sizes := map[block.FileID]int64{7: 5000}
	_, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	fr, err := client.Open(7)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Size() != 5000 {
		t.Fatalf("Size = %d", fr.Size())
	}
	full := expect(testGeom, 7, 5000)

	// io.ReaderAt semantics.
	buf := make([]byte, 1000)
	n, err := fr.ReadAt(buf, 2000)
	if err != nil || n != 1000 || !bytes.Equal(buf, full[2000:3000]) {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	// Short read at EOF.
	n, err = fr.ReadAt(buf, 4500)
	if err != io.EOF || n != 500 {
		t.Fatalf("ReadAt near EOF: n=%d err=%v", n, err)
	}
	if _, err := fr.ReadAt(buf, 6000); err != io.EOF {
		t.Fatalf("ReadAt past EOF: %v", err)
	}

	// io.Reader + io.Seeker: stream the whole file and compare.
	if _, err := fr.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("streamed content mismatch")
	}

	// Seek semantics.
	if pos, err := fr.Seek(-100, io.SeekEnd); err != nil || pos != 4900 {
		t.Fatalf("SeekEnd: %d, %v", pos, err)
	}
	if _, err := fr.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := fr.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestOpenUnknownFile(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024}
	_, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	if _, err := client.Open(99); err == nil {
		t.Fatal("unknown file opened")
	}
}

func TestPackRange(t *testing.T) {
	for _, c := range []struct {
		off int64
		n   int
	}{{0, 0}, {1, 2}, {1 << 38, maxRangeLen}, {123456789, 8192}} {
		off, n := unpackRange(packRange(c.off, c.n))
		if off != c.off || n != c.n {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", c.off, c.n, off, n)
		}
	}
}

var (
	_ io.ReaderAt = (*FileReader)(nil)
	_ io.Reader   = (*FileReader)(nil)
	_ io.Seeker   = (*FileReader)(nil)
)
