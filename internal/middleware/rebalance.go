package middleware

import (
	"sort"

	"repro/internal/block"
)

// Rebalance: when the ring changes, every file whose home moved onto this
// node is pulled from its previous home before this node serves (or
// accepts) master traffic for it. The pull is lazy-first — the hot path
// triggers it on demand via ensureMigrated — with a background drainer
// walking the remainder so RebalancePending reaches zero without traffic.
//
// Zero-error guarantee during a resize: until the pull for a file
// completes, the OLD home still holds the authoritative blocks and keeps
// serving them (a draining member serves until its hand-off finishes; a
// joining member pulls before answering). A request that lands on the new
// home blocks briefly on the pull instead of missing.

// FileLister is implemented by block sources that can enumerate their
// files. Sources without it skip proactive rebalance (files still migrate
// lazily on first touch — correctness does not depend on the listing).
type FileLister interface {
	Files() []block.FileID
}

// ensureMigrated blocks until file f's hand-off to this node (if any) has
// completed. The fast path is one atomic load — zero cost when no
// rebalance is pending, which is all steady-state traffic.
func (n *Node) ensureMigrated(f block.FileID) {
	if n.migrCount.Load() == 0 {
		return
	}
	n.migrateFile(f)
}

// migrateFile runs (or joins) the pull of file f. Concurrent callers for
// the same file share one flight; the pending entry is removed whether the
// pull succeeded or the old home is gone (the blocks are unreachable — the
// new home's baseline stands and rewrites proceed).
func (n *Node) migrateFile(f block.FileID) {
	n.migrMu.Lock()
	oldHome, pending := n.migrPending[f]
	if !pending {
		n.migrMu.Unlock()
		return
	}
	if ch, inFlight := n.migrFlight[f]; inFlight {
		n.migrMu.Unlock()
		<-ch
		return
	}
	ch := make(chan struct{})
	n.migrFlight[f] = ch
	n.migrMu.Unlock()

	n.pullFile(f, oldHome)

	n.migrMu.Lock()
	delete(n.migrPending, f)
	delete(n.migrFlight, f)
	n.migrMu.Unlock()
	n.migrCount.Add(-1)
	close(ch)
}

// pullFile copies file f's authoritative blocks from its previous home
// into the local source: run-granular MsgGetRun/FlagMaster sweeps, with a
// per-block forced-read fallback when hint-mode redirects truncate a run.
// The loop is bounded by the locally-known file size (the file-set metadata
// every node shares). An unreachable old home fails fast — its write-
// through state is lost with it and the local baseline stands, same as any
// cold file.
func (n *Node) pullFile(f block.FileID, oldHome int) {
	if oldHome < 0 || oldHome == n.cfg.ID {
		return
	}
	size, err := n.cfg.Source.FileSize(f)
	if err != nil {
		n.trace(traceRebalance, oldHome, block.ID{File: f}, -1)
		return
	}
	total := int(n.cfg.Geometry.Count(size))
	bl := n.cfg.Geometry.Size
	pulled := int64(0)
	for idx := 0; idx < total; {
		want := total - idx
		if want > maxRunBlocks {
			want = maxRunBlocks
		}
		req := getFrame()
		req.Type = MsgGetRun
		req.File = f
		req.Idx = int32(idx)
		req.Flags = FlagMaster
		req.Aux = packRunAux(want, 0)
		resp, err := n.reliableRPC(oldHome, req, 1)
		releaseFrame(req)
		if err != nil {
			// Old home gone (crash path): its write-through state is lost;
			// the new baseline is backing storage, like a cold miss.
			n.trace(traceRebalance, oldHome, block.ID{File: f}, -1)
			return
		}
		count, _ := unpackRunAux(resp.Aux)
		data := resp.Payload
		for k := 0; k < count && len(data) > 0; k++ {
			end := bl
			if end > len(data) {
				end = len(data)
			}
			// WriteBlock may retain the slice; the frame payload is pooled.
			cp := append([]byte(nil), data[:end]...)
			if werr := n.cfg.Source.WriteBlock(f, int32(idx+k), cp); werr == nil {
				pulled++
			}
			data = data[end:]
		}
		releaseFrame(resp)
		// A short run means the old home's hints redirect mid-run: finish
		// the window block-by-block with forced disk reads.
		for k := idx + count; k < idx+want; k++ {
			bq := getFrame()
			bq.Type = MsgGetBlock
			bq.File = f
			bq.Idx = int32(k)
			bq.Flags = FlagMaster | FlagForce
			bresp, berr := n.reliableRPC(oldHome, bq, 1)
			releaseFrame(bq)
			if berr != nil {
				continue
			}
			if bresp.Type == MsgBlockData && len(bresp.Payload) > 0 {
				cp := append([]byte(nil), bresp.Payload...)
				if werr := n.cfg.Source.WriteBlock(f, int32(k), cp); werr == nil {
					pulled++
				}
			}
			releaseFrame(bresp)
		}
		idx += want
	}
	if pulled > 0 {
		n.c.rebalancedBlocks.Add(uint64(pulled))
	}
	n.trace(traceRebalance, oldHome, block.ID{File: f}, pulled)
}

// computeRebalance diffs two membership views and queues the pull of every
// locally-known file whose home moved onto this node. Called from
// afterViewInstall (outside n.mu).
func (n *Node) computeRebalance(old, v *memberView) {
	if v == nil || v.static || n.migrPending == nil {
		return
	}
	// A member leaving the ring pulls nothing; its successors pull from it.
	if self := n.cfg.ID; self < v.size() && v.members[self].State != stateAlive {
		return
	}
	lister, ok := n.cfg.Source.(FileLister)
	if !ok {
		return
	}
	files := lister.Files()
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })

	added := 0
	n.migrMu.Lock()
	for _, f := range files {
		newHome, okNew := v.home(f)
		if !okNew {
			continue
		}
		if newHome != n.cfg.ID {
			// Home moved elsewhere (or never was here): nothing to pull, and
			// a stale pending entry for it is obsolete.
			if _, was := n.migrPending[f]; was {
				if _, inFlight := n.migrFlight[f]; !inFlight {
					delete(n.migrPending, f)
					n.migrCount.Add(-1)
				}
			}
			continue
		}
		oldHome := -1
		if old != nil && !old.static {
			if h, okOld := old.home(f); okOld {
				oldHome = h
			}
		} else if old == nil {
			// Freshly joined: our pre-join home is the ring without us
			// (removing our vnodes re-routes exactly our keys to their
			// previous successors).
			if h, okEx := v.homeExcluding(f, n.cfg.ID); okEx {
				oldHome = h
			}
		}
		if oldHome < 0 || oldHome == n.cfg.ID {
			continue
		}
		if _, dup := n.migrPending[f]; dup {
			continue
		}
		n.migrPending[f] = oldHome
		added++
	}
	n.migrMu.Unlock()
	if added > 0 {
		n.migrCount.Add(int64(added))
		go n.drainRebalance()
	}
}

// drainRebalance walks the pending set in the background so a resize
// converges (RebalancePending → 0) even for files no request touches.
func (n *Node) drainRebalance() {
	for {
		n.migrMu.Lock()
		var next block.FileID
		found := false
		for f := range n.migrPending {
			if _, inFlight := n.migrFlight[f]; inFlight {
				continue
			}
			if !found || f < next {
				next = f
				found = true
			}
		}
		n.migrMu.Unlock()
		if !found {
			return
		}
		n.migrateFile(next)
	}
}
