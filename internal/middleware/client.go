package middleware

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
)

// ClientConfig parameterizes a cluster client's fault tolerance.
type ClientConfig struct {
	// RPCTimeout bounds every request round trip (0: the 5 s default;
	// negative: no deadline).
	RPCTimeout time.Duration
	// Retries is the number of alternative nodes tried after a transient
	// failure of a read or write (both are idempotent: reads trivially,
	// writes by last-writer-wins). 0 applies the default (2); negative
	// disables failover.
	Retries int
	// BreakerThreshold/BreakerCooldown configure the per-node circuit
	// breakers used to steer requests away from suspected-down nodes
	// (0: defaults of 5 consecutive failures / 500 ms; negative
	// threshold disables).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Fault, when non-nil, injects transport faults into every dialed
	// connection (testing and chaos benchmarking only).
	Fault *FaultPlan
}

// ClientFaultStats counts the client-visible fault handling.
type ClientFaultStats struct {
	// Timeouts is the number of round trips that missed RPCTimeout.
	Timeouts uint64
	// Failovers is the number of requests retried on another node after a
	// transient failure.
	Failovers uint64
	// BreakerSkips is the number of times entry-node selection steered
	// around a node whose circuit breaker was open.
	BreakerSkips uint64
}

// Client talks to a middleware cluster. Reads are spread over the nodes
// round-robin, playing the role of the round-robin DNS in front of the
// paper's web server. Transient failures (timeouts, dropped or refused
// connections) fail over to another node under ClientConfig.Retries, and
// per-node circuit breakers steer new requests away from suspected-down
// nodes.
type Client struct {
	// members is the client's picture of the cluster: node-ID-indexed
	// addresses and liveness, refreshed from any live node after failover
	// trips (so the client survives the death of every original entry
	// point, and discovers joined nodes without re-dialing).
	members atomic.Pointer[clientMembers]
	// view is the last decoded membership view behind members: it keeps
	// the consistent-hash ring so the client can compute file→home
	// placement itself (HomeOf) for locality-aware entry (§4.1 hand-off).
	view    atomic.Pointer[memberView]
	cfg     ClientConfig
	timeout time.Duration
	retries int
	// mu guards conns/breakers. Both are node-ID-indexed and only ever
	// grow; a removed member keeps its slot (skipped via members).
	mu         sync.Mutex
	conns      []*conn
	breakers   []*breaker
	brThresh   int
	brCooldown time.Duration
	rr         atomic.Uint32
	// lastRefresh rate-limits membership refreshes (unix nanos).
	lastRefresh atomic.Int64

	timeouts     atomic.Uint64
	failovers    atomic.Uint64
	breakerSkips atomic.Uint64

	// Read-your-writes stickiness: the node that served a file's last write
	// holds the fresh master while the asynchronous invalidation bus drains,
	// so reads of that file re-enter there (bounded map, insert-order
	// eviction). Purely an entry-point hint — any node still returns correct
	// bytes within the staleness bound.
	stickyMu   sync.Mutex
	stickyNode map[block.FileID]int
	stickyRing []block.FileID
	stickyPos  int

	// rpcLat holds one latency histogram per request frame type, fed by
	// conn.roundTrip on every client connection.
	rpcLat [msgTypeCount]obs.Histogram
}

// clientMembers is the client's immutable membership snapshot: index =
// node ID, an empty address marks an unknown slot, alive marks slots that
// accept requests (alive or draining members).
type clientMembers struct {
	epoch uint64
	addrs []string
	alive []bool
}

// count reports how many slots currently accept requests.
func (m *clientMembers) count() int {
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// DialCluster returns a client for the given node addresses (index = node
// ID) with default fault tolerance. Connections are established lazily.
func DialCluster(addrs []string) (*Client, error) {
	return DialClusterConfig(addrs, ClientConfig{})
}

// DialClusterConfig is DialCluster with explicit fault-tolerance settings.
func DialClusterConfig(addrs []string, cfg ClientConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("middleware: no cluster addresses")
	}
	c := &Client{
		cfg:      cfg,
		conns:    make([]*conn, len(addrs)),
		breakers: make([]*breaker, len(addrs)),
	}
	m := &clientMembers{
		addrs: append([]string(nil), addrs...),
		alive: make([]bool, len(addrs)),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	c.members.Store(m)
	c.timeout = cfg.RPCTimeout
	if c.timeout == 0 {
		c.timeout = defaultRPCTimeout
	}
	if c.timeout < 0 {
		c.timeout = 0
	}
	c.retries = cfg.Retries
	if c.retries == 0 {
		c.retries = defaultRetries
	}
	if c.retries < 0 {
		c.retries = 0
	}
	thresh := cfg.BreakerThreshold
	if thresh == 0 {
		thresh = defaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	c.brThresh, c.brCooldown = thresh, cooldown
	for i := range c.breakers {
		c.breakers[i] = &breaker{threshold: thresh, cooldown: cooldown}
	}
	return c, nil
}

// growLocked extends the node-ID-indexed conns/breakers arrays to n slots.
// Callers hold c.mu.
func (c *Client) growLocked(n int) {
	for len(c.breakers) < n {
		c.conns = append(c.conns, nil)
		c.breakers = append(c.breakers, &breaker{threshold: c.brThresh, cooldown: c.brCooldown})
	}
}

// breaker returns node i's circuit breaker, growing the array if the
// membership view got ahead of it.
func (c *Client) breaker(i int) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.growLocked(i + 1)
	return c.breakers[i]
}

func (c *Client) conn(i int) (*conn, error) {
	m := c.members.Load()
	if i < 0 || i >= len(m.addrs) || m.addrs[i] == "" {
		return nil, errPeerSuspect // unknown slot: steer elsewhere
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.growLocked(len(m.addrs))
	if c.conns[i] != nil {
		return c.conns[i], nil
	}
	nc, err := net.Dial("tcp", m.addrs[i])
	if err != nil {
		return nil, err
	}
	nc = c.cfg.Fault.Wrap(nc, -1, i)
	stamp := func(f *Frame) {
		f.Sender = -1
		f.OldestAge = noAge
	}
	c.conns[i] = newConn(nc, connConfig{stamp: stamp, timeout: c.timeout, latency: c.observeRPCLatency})
	return c.conns[i], nil
}

// observeRPCLatency feeds the client's per-RPC-type latency histograms.
func (c *Client) observeRPCLatency(t MsgType, d time.Duration) {
	if int(t) < len(c.rpcLat) {
		c.rpcLat[t].Observe(d)
	}
}

// RPCLatency snapshots the client's per-RPC-type latency histograms, keyed
// by metric name (only types with observations).
func (c *Client) RPCLatency() map[string]obs.HistogramData {
	out := make(map[string]obs.HistogramData)
	for t := range c.rpcLat {
		if d := c.rpcLat[t].Snapshot(); d.Count > 0 {
			out[MsgType(t).metricName()] = d
		}
	}
	return out
}

// RegisterMetrics registers the client's fault counters and latency
// histograms with r under cc_client_-prefixed Prometheus names.
func (c *Client) RegisterMetrics(r *obs.Registry) {
	r.Counter("cc_client_timeouts_total", "client round trips that missed the RPC deadline", "", c.timeouts.Load)
	r.Counter("cc_client_failovers_total", "client requests retried on another entry node", "", c.failovers.Load)
	r.Counter("cc_client_breaker_skips_total", "entry-node selections steered around an open breaker", "", c.breakerSkips.Load)
	for _, t := range requestMsgTypes {
		r.Histogram("cc_client_rpc_latency_seconds", "client round-trip latency by request frame type",
			`type="`+t.metricName()+`"`, &c.rpcLat[t])
	}
}

// next picks the next node round-robin over the live membership, steering
// around removed slots and nodes whose breaker is open (if every breaker
// is open, the round-robin choice proceeds anyway — somebody has to
// probe).
func (c *Client) next() int {
	m := c.members.Load()
	n := len(m.addrs)
	c.mu.Lock()
	c.growLocked(n)
	brs := c.breakers[:n]
	c.mu.Unlock()
	for try := 0; try < n; try++ {
		i := int(c.rr.Add(1)-1) % n
		if !m.alive[i] {
			continue
		}
		if brs[i].allow() {
			return i
		}
		c.breakerSkips.Add(1)
	}
	for try := 0; try < n; try++ {
		i := int(c.rr.Add(1)-1) % n
		if m.addrs[i] != "" {
			return i
		}
	}
	return int(c.rr.Add(1)-1) % n
}

func (c *Client) roundTrip(node int, f *Frame) (*Frame, error) {
	cc, err := c.conn(node)
	if err == nil {
		var resp *Frame
		resp, err = cc.roundTrip(f)
		if err == errConnClosed {
			// The connection died (node restart): redial once.
			c.mu.Lock()
			if c.conns[node] == cc {
				c.conns[node] = nil
			}
			c.mu.Unlock()
			if cc, err = c.conn(node); err == nil {
				resp, err = cc.roundTrip(f)
			}
		}
		if err == nil {
			c.breaker(node).success()
			return resp, nil
		}
	}
	if isTransient(err) {
		if err == errRPCTimeout {
			c.timeouts.Add(1)
		}
		c.breaker(node).failure()
	}
	return nil, err
}

// failoverTrip runs the request against node, retrying on other nodes
// (picked round-robin through the breakers) after transient failures.
// Only idempotent requests may use it. The second return value is the
// node that actually answered. Each failover first refreshes the
// membership view (rate-limited) so retries route around members the
// cluster has declared dead and reach members that joined after dial.
func (c *Client) failoverTrip(node int, f *Frame) (*Frame, int, error) {
	resp, err := c.roundTrip(node, f)
	for attempt := 0; attempt < c.retries && isTransient(err); attempt++ {
		c.failovers.Add(1)
		c.maybeRefresh()
		node = c.next()
		resp, err = c.roundTrip(node, f)
	}
	return resp, node, err
}

// refreshInterval rate-limits failover-triggered membership refreshes.
const refreshInterval = 200 * time.Millisecond

// maybeRefresh refreshes the membership view unless one happened within
// refreshInterval (one refresh per failure burst, not one per retry).
func (c *Client) maybeRefresh() {
	now := time.Now().UnixNano()
	last := c.lastRefresh.Load()
	if now-last < int64(refreshInterval) || !c.lastRefresh.CompareAndSwap(last, now) {
		return
	}
	c.RefreshMembership() //nolint:errcheck // best effort; stale view keeps working
}

// RefreshMembership fetches the cluster's membership view from any node
// that answers and installs it if newer: dead members stop receiving
// requests, joined members become entry points. The client survives the
// death of every address it was dialed with, as long as some member it
// has learned about is still alive.
func (c *Client) RefreshMembership() error {
	m := c.members.Load()
	var lastErr error
	for i := range m.addrs {
		if m.addrs[i] == "" || !m.alive[i] {
			continue
		}
		req := getFrame()
		req.Type = MsgView
		resp, err := c.roundTrip(i, req)
		releaseFrame(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Type == MsgViewReply {
			v, derr := decodeView(resp.Payload)
			releaseFrame(resp)
			if derr != nil {
				lastErr = derr
				continue
			}
			c.installMembers(v)
			return nil
		}
		typ := resp.Type
		releaseFrame(resp)
		lastErr = fmt.Errorf("middleware: unexpected view reply %d", typ)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("middleware: no live node to refresh membership from")
	}
	return lastErr
}

// installMembers folds a decoded membership view into the client's
// picture if it is newer, closing connections to members now dead.
func (c *Client) installMembers(v *memberView) {
	for {
		cur := c.members.Load()
		if cur != nil && cur.epoch >= v.epoch {
			return
		}
		m := &clientMembers{
			epoch: v.epoch,
			addrs: make([]string, v.size()),
			alive: make([]bool, v.size()),
		}
		for i, mi := range v.members {
			m.addrs[i] = mi.Addr
			// Draining members still serve; only dead (and empty) slots
			// stop being entry points.
			m.alive[i] = mi.State != stateDead && mi.Addr != ""
		}
		if !c.members.CompareAndSwap(cur, m) {
			continue
		}
		c.view.Store(v)
		var dead []*conn
		c.mu.Lock()
		c.growLocked(len(m.addrs))
		for i := range m.alive {
			if !m.alive[i] && i < len(c.conns) && c.conns[i] != nil {
				dead = append(dead, c.conns[i])
				c.conns[i] = nil
			}
		}
		c.mu.Unlock()
		for _, cc := range dead {
			cc.close()
		}
		return
	}
}

// HomeOf reports the home node of file f under the client's current
// membership view — the file→node placement the cluster itself uses, so a
// serving layer can enter at the node that will own the read (the paper's
// §4.1 request hand-off done at connection time instead of after a
// misrouted hop). ok is false until RefreshMembership has installed a
// view, or when the computed home is not currently reachable.
func (c *Client) HomeOf(f block.FileID) (int, bool) {
	v := c.view.Load()
	if v == nil {
		return 0, false
	}
	h, ok := v.home(f)
	if !ok || !v.reachable(h) {
		return 0, false
	}
	m := c.members.Load()
	if m == nil || h >= len(m.alive) || !m.alive[h] {
		return 0, false
	}
	return h, true
}

// MembershipEpoch reports the epoch of the client's membership view (0
// until a refresh has installed one; the dialed address list has no
// epoch).
func (c *Client) MembershipEpoch() uint64 {
	if m := c.members.Load(); m != nil {
		return m.epoch
	}
	return 0
}

// DrainNode asks the cluster to move a member out of the ring (graceful
// leave): the member keeps serving while its successors pull its blocks.
// The updated view is installed locally on success. Once the survivors'
// RebalancePending drains to zero, RemoveNode completes the departure.
func (c *Client) DrainNode(node int) error {
	return c.memberDrain(node, 0)
}

// RemoveNode promotes a (typically drained) member to dead: the cluster
// stops routing to it entirely and it is safe to shut down.
func (c *Client) RemoveNode(node int) error {
	return c.memberDrain(node, 1)
}

func (c *Client) memberDrain(node int, flags uint8) error {
	req := getFrame()
	req.Type = MsgDrain
	req.Aux = int64(node)
	req.Flags = flags
	entry := c.next()
	if entry == node {
		entry = c.next()
	}
	resp, _, err := c.failoverTrip(entry, req)
	releaseFrame(req)
	if err != nil {
		return err
	}
	if resp.Type == MsgViewReply {
		if v, derr := decodeView(resp.Payload); derr == nil {
			c.installMembers(v)
		}
	}
	releaseFrame(resp)
	return nil
}

// stickyCap bounds the read-your-writes map; older entries are evicted in
// insertion order.
const stickyCap = 256

// noteWrite records node as the sticky entry point for file f.
func (c *Client) noteWrite(f block.FileID, node int) {
	c.stickyMu.Lock()
	defer c.stickyMu.Unlock()
	if c.stickyNode == nil {
		c.stickyNode = make(map[block.FileID]int, stickyCap)
		c.stickyRing = make([]block.FileID, stickyCap)
	}
	if _, ok := c.stickyNode[f]; !ok {
		old := c.stickyRing[c.stickyPos]
		if _, live := c.stickyNode[old]; live && len(c.stickyNode) >= stickyCap {
			delete(c.stickyNode, old)
		}
		c.stickyRing[c.stickyPos] = f
		c.stickyPos = (c.stickyPos + 1) % stickyCap
	}
	c.stickyNode[f] = node
}

// writeEntry returns the sticky entry node recorded for f, or -1 when
// there is none or its breaker is open (a suspected-down node is no place
// to chase freshness).
func (c *Client) writeEntry(f block.FileID) int {
	c.stickyMu.Lock()
	node, ok := c.stickyNode[f]
	c.stickyMu.Unlock()
	if !ok {
		return -1
	}
	if m := c.members.Load(); node >= len(m.alive) || !m.alive[node] {
		return -1 // the sticky node left the cluster
	}
	if !c.breaker(node).allow() {
		return -1
	}
	return node
}

// Read fetches the whole content of file f through the cluster. Files
// this client recently wrote re-enter at the node that served the write
// (read-your-writes while the invalidation bus drains); everything else
// is spread round-robin.
func (c *Client) Read(f block.FileID) ([]byte, error) {
	node := c.writeEntry(f)
	if node < 0 {
		node = c.next()
	}
	return c.ReadVia(node, f)
}

// ReadVia fetches file f entering the cluster at a specific node (failing
// over to others if that node is unreachable).
func (c *Client) ReadVia(node int, f block.FileID) ([]byte, error) {
	req := getFrame()
	req.Type, req.File = MsgReadFile, f
	resp, _, err := c.failoverTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgFileData {
		typ := resp.Type
		releaseFrame(resp)
		return nil, fmt.Errorf("middleware: unexpected reply %d", typ)
	}
	data := resp.TakePayload() // returned to the caller: keep it off the pool
	releaseFrame(resp)
	return data, nil
}

// Write updates one block of a file through the cluster (write-invalidate;
// see Node.WriteBlock). Transient failures fail over to another entry
// node: per-block last-writer-wins semantics make the retry idempotent.
func (c *Client) Write(f block.FileID, idx int32, data []byte) error {
	req := getFrame()
	req.Type, req.File, req.Idx, req.Payload = MsgWriteBlock, f, idx, data
	resp, served, err := c.failoverTrip(c.next(), req)
	req.Payload = nil // caller's slice, not ours to recycle
	releaseFrame(req)
	if err == nil {
		releaseFrame(resp)
		c.noteWrite(f, served)
	}
	return err
}

// NodeStats fetches the statistics of one node (no failover: the target
// node is the point).
func (c *Client) NodeStats(node int) (Stats, error) {
	req := getFrame()
	req.Type = MsgStats
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	err = json.Unmarshal(resp.Payload, &s)
	releaseFrame(resp)
	if err != nil {
		return Stats{}, err
	}
	return s, nil
}

// NodeTrace fetches the protocol event trace of one node (empty if the
// node runs without a tracer). No failover: the target node is the point.
func (c *Client) NodeTrace(node int) (TraceDump, error) {
	req := getFrame()
	req.Type = MsgTrace
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return TraceDump{}, err
	}
	var d TraceDump
	err = json.Unmarshal(resp.Payload, &d)
	releaseFrame(resp)
	if err != nil {
		return TraceDump{}, err
	}
	return d, nil
}

// FaultStats snapshots the client-side fault handling counters.
func (c *Client) FaultStats() ClientFaultStats {
	return ClientFaultStats{
		Timeouts:     c.timeouts.Load(),
		Failovers:    c.failovers.Load(),
		BreakerSkips: c.breakerSkips.Load(),
	}
}

// ClusterStats sums the statistics of all reachable nodes. Nodes that fail
// with a transport error are skipped (a crashed node's counters died with
// it); an error is returned only when no node answers or a node answers
// garbage.
func (c *Client) ClusterStats() (Stats, error) {
	var sum Stats
	sum.HintAccuracy = 1
	reached := 0
	var lastErr error
	m := c.members.Load()
	for i := range m.addrs {
		if m.addrs[i] == "" || !m.alive[i] {
			continue
		}
		s, err := c.NodeStats(i)
		if err != nil {
			if isTransient(err) {
				lastErr = err
				continue
			}
			return Stats{}, err
		}
		reached++
		sum.Accesses += s.Accesses
		sum.LocalHits += s.LocalHits
		sum.RemoteHits += s.RemoteHits
		sum.DiskReads += s.DiskReads
		sum.RaceMisses += s.RaceMisses
		sum.Forwards += s.Forwards
		sum.ForwardsRejected += s.ForwardsRejected
		sum.Invalidations += s.Invalidations
		sum.Writes += s.Writes
		sum.RPCTimeouts += s.RPCTimeouts
		sum.RPCRetries += s.RPCRetries
		sum.RPCFailures += s.RPCFailures
		sum.BreakerOpens += s.BreakerOpens
		sum.BreakerSkips += s.BreakerSkips
		sum.HomeFallbacks += s.HomeFallbacks
		sum.StaleDrops += s.StaleDrops
		sum.InvalidateSkips += s.InvalidateSkips
		sum.InvalBatched += s.InvalBatched
		sum.InvalCatchups += s.InvalCatchups
		sum.InvalBacklog += s.InvalBacklog
		sum.RunsIssued += s.RunsIssued
		sum.RunsDegraded += s.RunsDegraded
		sum.ReplicasPushed += s.ReplicasPushed
		sum.ReplicaHits += s.ReplicaHits
		sum.AdmissionRejects += s.AdmissionRejects
		sum.StoreLen += s.StoreLen
		sum.StoreMasters += s.StoreMasters
		sum.StoreReplicas += s.StoreReplicas
		sum.RebalancedBlocks += s.RebalancedBlocks
		sum.RebalancePending += s.RebalancePending
		sum.HeartbeatFailures += s.HeartbeatFailures
		if s.MembershipEpoch > sum.MembershipEpoch {
			sum.MembershipEpoch = s.MembershipEpoch
		}
		if s.HintAccuracy < sum.HintAccuracy {
			sum.HintAccuracy = s.HintAccuracy
		}
		for k, h := range s.RPCLatency {
			if sum.RPCLatency == nil {
				sum.RPCLatency = make(map[string]obs.HistogramData)
			}
			m := sum.RPCLatency[k]
			m.Merge(h)
			sum.RPCLatency[k] = m
		}
	}
	if reached == 0 {
		return Stats{}, fmt.Errorf("middleware: no node reachable for stats: %w", lastErr)
	}
	return sum, nil
}

// Close tears down all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		if cc != nil {
			cc.close()
		}
	}
}
