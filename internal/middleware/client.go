package middleware

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
)

// ClientConfig parameterizes a cluster client's fault tolerance.
type ClientConfig struct {
	// RPCTimeout bounds every request round trip (0: the 5 s default;
	// negative: no deadline).
	RPCTimeout time.Duration
	// Retries is the number of alternative nodes tried after a transient
	// failure of a read or write (both are idempotent: reads trivially,
	// writes by last-writer-wins). 0 applies the default (2); negative
	// disables failover.
	Retries int
	// BreakerThreshold/BreakerCooldown configure the per-node circuit
	// breakers used to steer requests away from suspected-down nodes
	// (0: defaults of 5 consecutive failures / 500 ms; negative
	// threshold disables).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Fault, when non-nil, injects transport faults into every dialed
	// connection (testing and chaos benchmarking only).
	Fault *FaultPlan
}

// ClientFaultStats counts the client-visible fault handling.
type ClientFaultStats struct {
	// Timeouts is the number of round trips that missed RPCTimeout.
	Timeouts uint64
	// Failovers is the number of requests retried on another node after a
	// transient failure.
	Failovers uint64
	// BreakerSkips is the number of times entry-node selection steered
	// around a node whose circuit breaker was open.
	BreakerSkips uint64
}

// Client talks to a middleware cluster. Reads are spread over the nodes
// round-robin, playing the role of the round-robin DNS in front of the
// paper's web server. Transient failures (timeouts, dropped or refused
// connections) fail over to another node under ClientConfig.Retries, and
// per-node circuit breakers steer new requests away from suspected-down
// nodes.
type Client struct {
	addrs    []string
	cfg      ClientConfig
	timeout  time.Duration
	retries  int
	mu       sync.Mutex
	conns    []*conn
	breakers []*breaker
	rr       atomic.Uint32

	timeouts     atomic.Uint64
	failovers    atomic.Uint64
	breakerSkips atomic.Uint64

	// Read-your-writes stickiness: the node that served a file's last write
	// holds the fresh master while the asynchronous invalidation bus drains,
	// so reads of that file re-enter there (bounded map, insert-order
	// eviction). Purely an entry-point hint — any node still returns correct
	// bytes within the staleness bound.
	stickyMu   sync.Mutex
	stickyNode map[block.FileID]int
	stickyRing []block.FileID
	stickyPos  int

	// rpcLat holds one latency histogram per request frame type, fed by
	// conn.roundTrip on every client connection.
	rpcLat [msgTypeCount]obs.Histogram
}

// DialCluster returns a client for the given node addresses (index = node
// ID) with default fault tolerance. Connections are established lazily.
func DialCluster(addrs []string) (*Client, error) {
	return DialClusterConfig(addrs, ClientConfig{})
}

// DialClusterConfig is DialCluster with explicit fault-tolerance settings.
func DialClusterConfig(addrs []string, cfg ClientConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("middleware: no cluster addresses")
	}
	c := &Client{
		addrs:    append([]string(nil), addrs...),
		cfg:      cfg,
		conns:    make([]*conn, len(addrs)),
		breakers: make([]*breaker, len(addrs)),
	}
	c.timeout = cfg.RPCTimeout
	if c.timeout == 0 {
		c.timeout = defaultRPCTimeout
	}
	if c.timeout < 0 {
		c.timeout = 0
	}
	c.retries = cfg.Retries
	if c.retries == 0 {
		c.retries = defaultRetries
	}
	if c.retries < 0 {
		c.retries = 0
	}
	thresh := cfg.BreakerThreshold
	if thresh == 0 {
		thresh = defaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	for i := range c.breakers {
		c.breakers[i] = &breaker{threshold: thresh, cooldown: cooldown}
	}
	return c, nil
}

func (c *Client) conn(i int) (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[i] != nil {
		return c.conns[i], nil
	}
	nc, err := net.Dial("tcp", c.addrs[i])
	if err != nil {
		return nil, err
	}
	nc = c.cfg.Fault.Wrap(nc, -1, i)
	stamp := func(f *Frame) {
		f.Sender = -1
		f.OldestAge = noAge
	}
	c.conns[i] = newConn(nc, connConfig{stamp: stamp, timeout: c.timeout, latency: c.observeRPCLatency})
	return c.conns[i], nil
}

// observeRPCLatency feeds the client's per-RPC-type latency histograms.
func (c *Client) observeRPCLatency(t MsgType, d time.Duration) {
	if int(t) < len(c.rpcLat) {
		c.rpcLat[t].Observe(d)
	}
}

// RPCLatency snapshots the client's per-RPC-type latency histograms, keyed
// by metric name (only types with observations).
func (c *Client) RPCLatency() map[string]obs.HistogramData {
	out := make(map[string]obs.HistogramData)
	for t := range c.rpcLat {
		if d := c.rpcLat[t].Snapshot(); d.Count > 0 {
			out[MsgType(t).metricName()] = d
		}
	}
	return out
}

// RegisterMetrics registers the client's fault counters and latency
// histograms with r under cc_client_-prefixed Prometheus names.
func (c *Client) RegisterMetrics(r *obs.Registry) {
	r.Counter("cc_client_timeouts_total", "client round trips that missed the RPC deadline", "", c.timeouts.Load)
	r.Counter("cc_client_failovers_total", "client requests retried on another entry node", "", c.failovers.Load)
	r.Counter("cc_client_breaker_skips_total", "entry-node selections steered around an open breaker", "", c.breakerSkips.Load)
	for _, t := range requestMsgTypes {
		r.Histogram("cc_client_rpc_latency_seconds", "client round-trip latency by request frame type",
			`type="`+t.metricName()+`"`, &c.rpcLat[t])
	}
}

// next picks the next node round-robin, steering around nodes whose
// breaker is open (if every breaker is open, the round-robin choice
// proceeds anyway — somebody has to probe).
func (c *Client) next() int {
	for try := 0; try < len(c.addrs); try++ {
		i := int(c.rr.Add(1)-1) % len(c.addrs)
		if c.breakers[i].allow() {
			return i
		}
		c.breakerSkips.Add(1)
	}
	return int(c.rr.Add(1)-1) % len(c.addrs)
}

func (c *Client) roundTrip(node int, f *Frame) (*Frame, error) {
	cc, err := c.conn(node)
	if err == nil {
		var resp *Frame
		resp, err = cc.roundTrip(f)
		if err == errConnClosed {
			// The connection died (node restart): redial once.
			c.mu.Lock()
			if c.conns[node] == cc {
				c.conns[node] = nil
			}
			c.mu.Unlock()
			if cc, err = c.conn(node); err == nil {
				resp, err = cc.roundTrip(f)
			}
		}
		if err == nil {
			c.breakers[node].success()
			return resp, nil
		}
	}
	if isTransient(err) {
		if err == errRPCTimeout {
			c.timeouts.Add(1)
		}
		c.breakers[node].failure()
	}
	return nil, err
}

// failoverTrip runs the request against node, retrying on other nodes
// (picked round-robin through the breakers) after transient failures.
// Only idempotent requests may use it. The second return value is the
// node that actually answered.
func (c *Client) failoverTrip(node int, f *Frame) (*Frame, int, error) {
	resp, err := c.roundTrip(node, f)
	for attempt := 0; attempt < c.retries && isTransient(err); attempt++ {
		c.failovers.Add(1)
		node = c.next()
		resp, err = c.roundTrip(node, f)
	}
	return resp, node, err
}

// stickyCap bounds the read-your-writes map; older entries are evicted in
// insertion order.
const stickyCap = 256

// noteWrite records node as the sticky entry point for file f.
func (c *Client) noteWrite(f block.FileID, node int) {
	c.stickyMu.Lock()
	defer c.stickyMu.Unlock()
	if c.stickyNode == nil {
		c.stickyNode = make(map[block.FileID]int, stickyCap)
		c.stickyRing = make([]block.FileID, stickyCap)
	}
	if _, ok := c.stickyNode[f]; !ok {
		old := c.stickyRing[c.stickyPos]
		if _, live := c.stickyNode[old]; live && len(c.stickyNode) >= stickyCap {
			delete(c.stickyNode, old)
		}
		c.stickyRing[c.stickyPos] = f
		c.stickyPos = (c.stickyPos + 1) % stickyCap
	}
	c.stickyNode[f] = node
}

// writeEntry returns the sticky entry node recorded for f, or -1 when
// there is none or its breaker is open (a suspected-down node is no place
// to chase freshness).
func (c *Client) writeEntry(f block.FileID) int {
	c.stickyMu.Lock()
	node, ok := c.stickyNode[f]
	c.stickyMu.Unlock()
	if !ok || !c.breakers[node].allow() {
		return -1
	}
	return node
}

// Read fetches the whole content of file f through the cluster. Files
// this client recently wrote re-enter at the node that served the write
// (read-your-writes while the invalidation bus drains); everything else
// is spread round-robin.
func (c *Client) Read(f block.FileID) ([]byte, error) {
	node := c.writeEntry(f)
	if node < 0 {
		node = c.next()
	}
	return c.ReadVia(node, f)
}

// ReadVia fetches file f entering the cluster at a specific node (failing
// over to others if that node is unreachable).
func (c *Client) ReadVia(node int, f block.FileID) ([]byte, error) {
	req := getFrame()
	req.Type, req.File = MsgReadFile, f
	resp, _, err := c.failoverTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgFileData {
		typ := resp.Type
		releaseFrame(resp)
		return nil, fmt.Errorf("middleware: unexpected reply %d", typ)
	}
	data := resp.TakePayload() // returned to the caller: keep it off the pool
	releaseFrame(resp)
	return data, nil
}

// Write updates one block of a file through the cluster (write-invalidate;
// see Node.WriteBlock). Transient failures fail over to another entry
// node: per-block last-writer-wins semantics make the retry idempotent.
func (c *Client) Write(f block.FileID, idx int32, data []byte) error {
	req := getFrame()
	req.Type, req.File, req.Idx, req.Payload = MsgWriteBlock, f, idx, data
	resp, served, err := c.failoverTrip(c.next(), req)
	req.Payload = nil // caller's slice, not ours to recycle
	releaseFrame(req)
	if err == nil {
		releaseFrame(resp)
		c.noteWrite(f, served)
	}
	return err
}

// NodeStats fetches the statistics of one node (no failover: the target
// node is the point).
func (c *Client) NodeStats(node int) (Stats, error) {
	req := getFrame()
	req.Type = MsgStats
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	err = json.Unmarshal(resp.Payload, &s)
	releaseFrame(resp)
	if err != nil {
		return Stats{}, err
	}
	return s, nil
}

// NodeTrace fetches the protocol event trace of one node (empty if the
// node runs without a tracer). No failover: the target node is the point.
func (c *Client) NodeTrace(node int) (TraceDump, error) {
	req := getFrame()
	req.Type = MsgTrace
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return TraceDump{}, err
	}
	var d TraceDump
	err = json.Unmarshal(resp.Payload, &d)
	releaseFrame(resp)
	if err != nil {
		return TraceDump{}, err
	}
	return d, nil
}

// FaultStats snapshots the client-side fault handling counters.
func (c *Client) FaultStats() ClientFaultStats {
	return ClientFaultStats{
		Timeouts:     c.timeouts.Load(),
		Failovers:    c.failovers.Load(),
		BreakerSkips: c.breakerSkips.Load(),
	}
}

// ClusterStats sums the statistics of all reachable nodes. Nodes that fail
// with a transport error are skipped (a crashed node's counters died with
// it); an error is returned only when no node answers or a node answers
// garbage.
func (c *Client) ClusterStats() (Stats, error) {
	var sum Stats
	sum.HintAccuracy = 1
	reached := 0
	var lastErr error
	for i := range c.addrs {
		s, err := c.NodeStats(i)
		if err != nil {
			if isTransient(err) {
				lastErr = err
				continue
			}
			return Stats{}, err
		}
		reached++
		sum.Accesses += s.Accesses
		sum.LocalHits += s.LocalHits
		sum.RemoteHits += s.RemoteHits
		sum.DiskReads += s.DiskReads
		sum.RaceMisses += s.RaceMisses
		sum.Forwards += s.Forwards
		sum.ForwardsRejected += s.ForwardsRejected
		sum.Invalidations += s.Invalidations
		sum.Writes += s.Writes
		sum.RPCTimeouts += s.RPCTimeouts
		sum.RPCRetries += s.RPCRetries
		sum.RPCFailures += s.RPCFailures
		sum.BreakerOpens += s.BreakerOpens
		sum.BreakerSkips += s.BreakerSkips
		sum.HomeFallbacks += s.HomeFallbacks
		sum.StaleDrops += s.StaleDrops
		sum.InvalidateSkips += s.InvalidateSkips
		sum.InvalBatched += s.InvalBatched
		sum.InvalCatchups += s.InvalCatchups
		sum.InvalBacklog += s.InvalBacklog
		sum.RunsIssued += s.RunsIssued
		sum.RunsDegraded += s.RunsDegraded
		sum.ReplicasPushed += s.ReplicasPushed
		sum.ReplicaHits += s.ReplicaHits
		sum.AdmissionRejects += s.AdmissionRejects
		sum.StoreLen += s.StoreLen
		sum.StoreMasters += s.StoreMasters
		sum.StoreReplicas += s.StoreReplicas
		if s.HintAccuracy < sum.HintAccuracy {
			sum.HintAccuracy = s.HintAccuracy
		}
		for k, h := range s.RPCLatency {
			if sum.RPCLatency == nil {
				sum.RPCLatency = make(map[string]obs.HistogramData)
			}
			m := sum.RPCLatency[k]
			m.Merge(h)
			sum.RPCLatency[k] = m
		}
	}
	if reached == 0 {
		return Stats{}, fmt.Errorf("middleware: no node reachable for stats: %w", lastErr)
	}
	return sum, nil
}

// Close tears down all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		if cc != nil {
			cc.close()
		}
	}
}
