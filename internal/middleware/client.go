package middleware

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/block"
)

// Client talks to a middleware cluster. Reads are spread over the nodes
// round-robin, playing the role of the round-robin DNS in front of the
// paper's web server.
type Client struct {
	addrs []string
	mu    sync.Mutex
	conns []*conn
	rr    atomic.Uint32
}

// DialCluster returns a client for the given node addresses (index = node
// ID). Connections are established lazily.
func DialCluster(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("middleware: no cluster addresses")
	}
	return &Client{
		addrs: append([]string(nil), addrs...),
		conns: make([]*conn, len(addrs)),
	}, nil
}

func (c *Client) conn(i int) (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[i] != nil {
		return c.conns[i], nil
	}
	nc, err := net.Dial("tcp", c.addrs[i])
	if err != nil {
		return nil, err
	}
	stamp := func(f *Frame) {
		f.Sender = -1
		f.OldestAge = noAge
	}
	c.conns[i] = newConn(nc, connConfig{stamp: stamp})
	return c.conns[i], nil
}

// next picks the next node round-robin.
func (c *Client) next() int {
	return int(c.rr.Add(1)-1) % len(c.addrs)
}

func (c *Client) roundTrip(node int, f *Frame) (*Frame, error) {
	cc, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	resp, err := cc.roundTrip(f)
	if err == errConnClosed {
		c.mu.Lock()
		c.conns[node] = nil
		c.mu.Unlock()
		cc, err = c.conn(node)
		if err != nil {
			return nil, err
		}
		return cc.roundTrip(f)
	}
	return resp, err
}

// Read fetches the whole content of file f through the cluster.
func (c *Client) Read(f block.FileID) ([]byte, error) {
	return c.ReadVia(c.next(), f)
}

// ReadVia fetches file f entering the cluster at a specific node.
func (c *Client) ReadVia(node int, f block.FileID) ([]byte, error) {
	req := getFrame()
	req.Type, req.File = MsgReadFile, f
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return nil, err
	}
	if resp.Type != MsgFileData {
		typ := resp.Type
		releaseFrame(resp)
		return nil, fmt.Errorf("middleware: unexpected reply %d", typ)
	}
	data := resp.TakePayload() // returned to the caller: keep it off the pool
	releaseFrame(resp)
	return data, nil
}

// Write updates one block of a file through the cluster (write-invalidate;
// see Node.WriteBlock).
func (c *Client) Write(f block.FileID, idx int32, data []byte) error {
	req := getFrame()
	req.Type, req.File, req.Idx, req.Payload = MsgWriteBlock, f, idx, data
	resp, err := c.roundTrip(c.next(), req)
	releaseFrame(req)
	if err == nil {
		releaseFrame(resp)
	}
	return err
}

// NodeStats fetches the statistics of one node.
func (c *Client) NodeStats(node int) (Stats, error) {
	req := getFrame()
	req.Type = MsgStats
	resp, err := c.roundTrip(node, req)
	releaseFrame(req)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	err = json.Unmarshal(resp.Payload, &s)
	releaseFrame(resp)
	if err != nil {
		return Stats{}, err
	}
	return s, nil
}

// ClusterStats sums the statistics of all nodes.
func (c *Client) ClusterStats() (Stats, error) {
	var sum Stats
	sum.HintAccuracy = 1
	for i := range c.addrs {
		s, err := c.NodeStats(i)
		if err != nil {
			return Stats{}, err
		}
		sum.Accesses += s.Accesses
		sum.LocalHits += s.LocalHits
		sum.RemoteHits += s.RemoteHits
		sum.DiskReads += s.DiskReads
		sum.RaceMisses += s.RaceMisses
		sum.Forwards += s.Forwards
		sum.ForwardsRejected += s.ForwardsRejected
		sum.Invalidations += s.Invalidations
		sum.Writes += s.Writes
		sum.StoreLen += s.StoreLen
		sum.StoreMasters += s.StoreMasters
		if s.HintAccuracy < sum.HintAccuracy {
			sum.HintAccuracy = s.HintAccuracy
		}
	}
	return sum, nil
}

// Close tears down all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		if cc != nil {
			cc.close()
		}
	}
}
