package middleware

import (
	"fmt"
	"io"

	"repro/internal/block"
)

// ReadRange materializes the byte range [off, off+n) of file f through the
// cooperative cache, touching only the blocks the range covers — the
// block-granular access pattern that motivates a *block-based* middleware
// layer over whole-file caching (§1: handling blocks may be inefficient for
// whole-file servers, but serves range-reading services directly).
func (n *Node) ReadRange(f block.FileID, off int64, length int) ([]byte, error) {
	size, err := n.cfg.Source.FileSize(f)
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off > size {
		return nil, fmt.Errorf("middleware: range %d+%d outside file %d (%d bytes)", off, length, f, size)
	}
	if rem := size - off; int64(length) > rem {
		length = int(rem)
	}
	if length == 0 {
		return nil, nil
	}
	bs := int64(n.geom.Size)
	first := int32(off / bs)
	last := int32((off + int64(length) - 1) / bs)
	// Presized output filled in place (GetBlockInto / the run planner): one
	// copy per block instead of the old alias-then-append double copy.
	out := make([]byte, length)
	pos := 0
	i := first
	if start := off - int64(first)*bs; start > 0 {
		// Unaligned head: the needed bytes are a mid-block suffix, which a
		// prefix-copying GetBlockInto cannot produce — pin the block once and
		// copy just the suffix out of the pinned buffer.
		pb, _, err := n.getBlock(block.ID{File: f, Idx: first}, nil, true)
		if err != nil {
			return nil, err
		}
		data := pb.data
		if start > int64(len(data)) {
			pb.release()
			return nil, fmt.Errorf("middleware: block %d:%d shorter than range start", f, first)
		}
		end := int64(len(data))
		if end > start+int64(length) {
			end = start + int64(length)
		}
		pos = copy(out, data[start:end])
		pb.release()
		i++
	}
	if i > last || pos == length {
		return out, nil
	}
	if n.cfg.NoRunReads {
		for ; i <= last; i++ {
			want := blockLen(n.geom, size, i)
			if rem := length - pos; want > rem {
				want = rem
			}
			got, err := n.GetBlockInto(block.ID{File: f, Idx: i}, out[pos:pos+want])
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, fmt.Errorf("middleware: block %d:%d is %d bytes, want %d", f, i, got, want)
			}
			pos += got
		}
		return out, nil
	}
	if err := n.readPlanned(f, size, i, last, out[pos:]); err != nil {
		return nil, err
	}
	return out, nil
}

// FileReader is a random-access view of a file served through the cluster.
// It implements io.ReaderAt, io.Reader and io.Seeker, so cluster files plug
// directly into code written against the standard library. Each read is one
// or more ranged RPCs of at most maxRangeLen bytes; the reader never holds
// more than the caller's buffer.
type FileReader struct {
	c    *Client
	file block.FileID
	size int64
	pos  int64
	// entry is the preferred cluster entry node for this reader's RPCs
	// (-1: round-robin). A gateway pins it to the file's home so the read
	// enters where the blocks live — the §4.1 hand-off.
	entry int
}

// Open returns a reader for file f. The open itself is one zero-length
// ranged read, which validates the file and learns its size (every
// MsgReadRange reply carries the file size in Aux).
func (c *Client) Open(f block.FileID) (*FileReader, error) {
	return c.OpenVia(-1, f)
}

// OpenVia is Open entering the cluster at a specific node (-1 for
// round-robin). Transient failures still fail over to other nodes; the pin
// only biases where requests land first.
func (c *Client) OpenVia(node int, f block.FileID) (*FileReader, error) {
	fr := &FileReader{c: c, file: f, size: -1, entry: node}
	if _, err := fr.probeSize(); err != nil {
		return nil, err
	}
	return fr, nil
}

// entryNode picks the node a ranged RPC enters at.
func (fr *FileReader) entryNode() int {
	if fr.entry >= 0 {
		return fr.entry
	}
	return fr.c.next()
}

// probeSize performs the zero-length ranged read that sizes the file.
func (fr *FileReader) probeSize() (int64, error) {
	req := getFrame()
	req.Type, req.File, req.Aux = MsgReadRange, fr.file, packRange(0, 0)
	resp, _, err := fr.c.failoverTrip(fr.entryNode(), req)
	releaseFrame(req)
	if err != nil {
		return 0, err
	}
	fr.size = resp.Aux
	releaseFrame(resp)
	return fr.size, nil
}

// Size reports the file's size in bytes.
func (fr *FileReader) Size() int64 { return fr.size }

// ReadAt implements io.ReaderAt: it reads len(p) bytes at off or reports
// why it could not, looping over ranged RPCs when len(p) exceeds the
// per-RPC range limit, and returning io.EOF only at true end of file.
func (fr *FileReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		// Rejected up front: packRange would silently corrupt a negative
		// offset into a huge unsigned one.
		return 0, fmt.Errorf("middleware: negative read offset %d", off)
	}
	total := 0
	for total < len(p) {
		if off >= fr.size {
			return total, io.EOF
		}
		want := len(p) - total
		if rem := fr.size - off; int64(want) > rem {
			want = int(rem)
		}
		if want > maxRangeLen {
			want = maxRangeLen
		}
		req := getFrame()
		req.Type, req.File, req.Aux = MsgReadRange, fr.file, packRange(off, want)
		resp, _, err := fr.c.failoverTrip(fr.entryNode(), req)
		releaseFrame(req)
		if err != nil {
			return total, err
		}
		// Copy into the caller's buffer, then recycle the pooled payload:
		// the ranged-read reply is the one response path whose payload
		// never needs to outlive the call.
		n := copy(p[total:], resp.Payload)
		releaseFrame(resp)
		total += n
		off += int64(n)
		if n < want {
			// The server clamps ranges to EOF; any other short reply is a
			// protocol violation, not an EOF.
			if off >= fr.size {
				return total, io.EOF
			}
			return total, fmt.Errorf("middleware: short range reply for file %d: %d of %d bytes", fr.file, n, want)
		}
	}
	return total, nil
}

// Read implements io.Reader.
func (fr *FileReader) Read(p []byte) (int, error) {
	n, err := fr.ReadAt(p, fr.pos)
	fr.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (fr *FileReader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = fr.pos + offset
	case io.SeekEnd:
		abs = fr.size + offset
	default:
		return 0, fmt.Errorf("middleware: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("middleware: negative seek position")
	}
	fr.pos = abs
	return abs, nil
}
