package middleware

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/block"
)

// dirServer is the central master-block directory, hosted on one node of
// the cluster (the live stand-in for the paper's zero-cost perfect
// directory; its real message costs are what the hint mode then removes).
type dirServer struct {
	mu      sync.Mutex
	masters map[block.ID]int32
}

func newDirServer() *dirServer {
	return &dirServer{masters: make(map[block.ID]int32)}
}

func (d *dirServer) lookup(id block.ID) (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.masters[id]
	return n, ok
}

func (d *dirServer) update(id block.ID, node int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.masters[id] = node
}

// drop removes the entry, but only if it still names ifNode (compare-and-
// delete, so a stale drop cannot erase a newer claim). ifNode < 0 drops
// unconditionally.
func (d *dirServer) drop(id block.ID, ifNode int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ifNode >= 0 {
		if cur, ok := d.masters[id]; !ok || cur != ifNode {
			return
		}
	}
	delete(d.masters, id)
}

// lookupN resolves a window of entries of file f under one lock
// acquisition: out[i] is the master of block idxs[i], dirNoEntry if absent.
func (d *dirServer) lookupN(f block.FileID, idxs []int32, out []int32) []int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out = out[:0]
	for _, idx := range idxs {
		if n, ok := d.masters[block.ID{File: f, Idx: idx}]; ok {
			out = append(out, n)
		} else {
			out = append(out, dirNoEntry)
		}
	}
	return out
}

// updateN records node's mastership of a window of blocks of f under one
// lock acquisition.
func (d *dirServer) updateN(f block.FileID, idxs []int32, node int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, idx := range idxs {
		d.masters[block.ID{File: f, Idx: idx}] = node
	}
}

func (d *dirServer) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.masters)
}

// locator is the node-side interface for master location.
type locator interface {
	// Lookup reports the believed master holder.
	Lookup(id block.ID) (node int32, ok bool, err error)
	// Update records this claim of mastership.
	Update(id block.ID, node int32) error
	// Drop forgets the master, conditioned on it still naming ifNode
	// (ifNode < 0: unconditional).
	Drop(id block.ID, ifNode int32) error
	// Miss reports that a lookup's answer proved wrong (hint maintenance).
	Miss(id block.ID, node int32)
	// LookupN resolves a window of entries of one file in as few RPCs as
	// the mode allows (one for central and hints, one per manager for the
	// partitioned directory): out[i] is the believed master of block
	// idxs[i], dirNoEntry when unknown. A transport failure degrades the
	// affected entries to dirNoEntry (the read falls back to home) rather
	// than failing the window.
	LookupN(f block.FileID, idxs []int32) ([]int32, error)
	// UpdateN records node's claim of mastership over a window of blocks.
	UpdateN(f block.FileID, idxs []int32, node int32) error
}

// dirBatchRPC sends one batched directory message (MsgDirLookupN or
// MsgDirUpdateN) for a window of blocks of f to node m and, for lookups,
// decodes the per-index answer into out.
func dirBatchRPC(n *Node, m int, typ MsgType, f block.FileID, idxs []int32, aux int64, out []int32) ([]int32, error) {
	req := getFrame()
	req.Type, req.File, req.Aux = typ, f, aux
	req.Payload = appendIdxPayload(make([]byte, 0, 4*len(idxs)), idxs)
	resp, err := n.reliableRPC(m, req, n.retries)
	releaseFrame(req)
	if err != nil {
		return nil, err
	}
	if typ == MsgDirLookupN {
		if resp.Type != MsgDirResultN || len(resp.Payload) != 4*len(idxs) {
			typ, plen := resp.Type, len(resp.Payload)
			releaseFrame(resp)
			return nil, fmt.Errorf("middleware: bad dir batch reply (type %d, %d bytes for %d idxs)", typ, plen, len(idxs))
		}
		out, err = decodeIdxPayload(resp.Payload, out)
		releaseFrame(resp)
		return out, err
	}
	releaseFrame(resp)
	return nil, nil
}

// rotateLookupN applies the replica-set rotation to a colocated lookupN
// result, one draw per window (blocks sharing a copy set land on the same
// holder, so the requester's runs stay coalesced). Mirrors handleDirBatch
// for the node that hosts (a slice of) the directory itself.
func rotateLookupN(n *Node, f block.FileID, idxs, res []int32) []int32 {
	if n.reps.len() == 0 {
		return res
	}
	self := int32(n.cfg.ID)
	draw := n.repRR.Add(1)
	for i, idx := range idxs {
		if res[i] != dirNoEntry {
			res[i] = n.reps.pick(block.ID{File: f, Idx: idx}, res[i], self, draw)
		}
	}
	return res
}

// lookupNUnknown fills a window result with dirNoEntry (transport-degraded
// lookups: the planner routes those blocks through the home node, exactly
// as a failed single Lookup does).
func lookupNUnknown(idxs []int32) []int32 {
	out := make([]int32, len(idxs))
	for i := range out {
		out[i] = dirNoEntry
	}
	return out
}

// dirRPC sends one directory message to node m with pooled frames and
// returns the response's Aux and Flags. Directory operations are
// idempotent (lookup reads, update/drop are absolute or compare-and-
// delete), so transient failures retry under the node's budget; when the
// directory node stays down its breaker opens and subsequent lookups fail
// fast, degrading reads to the home path instead of paying a timeout each.
func dirRPC(n *Node, m int, typ MsgType, id block.ID, aux int64) (int64, uint8, error) {
	req := getFrame()
	req.Type, req.File, req.Idx, req.Aux = typ, id.File, id.Idx, aux
	resp, err := n.reliableRPC(m, req, n.retries)
	releaseFrame(req)
	if err != nil {
		return 0, 0, err
	}
	rAux, rFlags := resp.Aux, resp.Flags
	releaseFrame(resp)
	return rAux, rFlags, nil
}

// centralLocator talks to the dirServer, over the network or directly when
// co-located.
type centralLocator struct {
	n *Node
}

func (c *centralLocator) Lookup(id block.ID) (int32, bool, error) {
	if srv := c.n.dirSrv; srv != nil {
		node, ok := srv.lookup(id)
		if ok {
			node = c.n.reps.pick(id, node, int32(c.n.cfg.ID), c.n.repRR.Add(1))
		}
		return node, ok, nil
	}
	aux, flags, err := dirRPC(c.n, c.n.cfg.DirNode, MsgDirLookup, id, 0)
	if err != nil {
		return 0, false, err
	}
	return int32(aux), flags != 0, nil
}

func (c *centralLocator) Update(id block.ID, node int32) error {
	if srv := c.n.dirSrv; srv != nil {
		srv.update(id, node)
		c.n.maybeRepush(id, node)
		return nil
	}
	_, _, err := dirRPC(c.n, c.n.cfg.DirNode, MsgDirUpdate, id, int64(node))
	return err
}

func (c *centralLocator) Drop(id block.ID, ifNode int32) error {
	if srv := c.n.dirSrv; srv != nil {
		c.n.reps.drop(id, ifNode)
		srv.drop(id, ifNode)
		return nil
	}
	_, _, err := dirRPC(c.n, c.n.cfg.DirNode, MsgDirDrop, id, int64(ifNode))
	return err
}

func (c *centralLocator) Miss(id block.ID, node int32) {
	// The central directory is corrected by the follow-up Update/Drop of
	// the home read; nothing to do here.
}

func (c *centralLocator) LookupN(f block.FileID, idxs []int32) ([]int32, error) {
	if srv := c.n.dirSrv; srv != nil {
		return rotateLookupN(c.n, f, idxs, srv.lookupN(f, idxs, make([]int32, 0, len(idxs)))), nil
	}
	out, err := dirBatchRPC(c.n, c.n.cfg.DirNode, MsgDirLookupN, f, idxs, 0, make([]int32, 0, len(idxs)))
	if err != nil {
		if isTransient(err) {
			return lookupNUnknown(idxs), nil
		}
		return nil, err
	}
	return out, nil
}

func (c *centralLocator) UpdateN(f block.FileID, idxs []int32, node int32) error {
	if srv := c.n.dirSrv; srv != nil {
		srv.updateN(f, idxs, node)
		return nil
	}
	_, err := dirBatchRPC(c.n, c.n.cfg.DirNode, MsgDirUpdateN, f, idxs, int64(node), nil)
	return err
}

// hintLocator is the §6 hint-based directory: a purely local, possibly
// stale map maintained from observed protocol traffic, costing no lookup
// messages. Wrong or absent hints fall back to the home node. Accuracy is
// measured so deployments can compare against Sarkar & Hartman's ≈98%.
type hintLocator struct {
	mu      sync.Mutex
	hints   map[block.ID]int32
	lookups uint64
	misses  uint64
}

func newHintLocator() *hintLocator {
	return &hintLocator{hints: make(map[block.ID]int32)}
}

func (h *hintLocator) Lookup(id block.ID) (int32, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lookups++
	n, ok := h.hints[id]
	return n, ok, nil
}

func (h *hintLocator) Update(id block.ID, node int32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hints[id] = node
	return nil
}

func (h *hintLocator) Drop(id block.ID, ifNode int32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cur, ok := h.hints[id]; ok && (ifNode < 0 || cur == ifNode) {
		delete(h.hints, id)
	}
	return nil
}

func (h *hintLocator) Miss(id block.ID, node int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Only a miss that contradicts the CURRENT hint counts against
	// accuracy (and deletes the entry). A failed fetch from a node the
	// table no longer names — a rotated replica holder that evicted its
	// copy, or a hint already corrected by piggybacked deltas — says
	// nothing about the hint table's quality.
	if cur, ok := h.hints[id]; ok && cur == node {
		h.misses++
		delete(h.hints, id)
	}
}

func (h *hintLocator) LookupN(f block.FileID, idxs []int32) ([]int32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int32, 0, len(idxs))
	for _, idx := range idxs {
		h.lookups++
		if n, ok := h.hints[block.ID{File: f, Idx: idx}]; ok {
			out = append(out, n)
		} else {
			out = append(out, dirNoEntry)
		}
	}
	return out, nil
}

func (h *hintLocator) UpdateN(f block.FileID, idxs []int32, node int32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, idx := range idxs {
		h.hints[block.ID{File: f, Idx: idx}] = node
	}
	return nil
}

// Accuracy reports the observed fraction of hint lookups that were not
// later contradicted (1 when no lookups happened yet).
func (h *hintLocator) Accuracy() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lookups == 0 {
		return 1
	}
	return 1 - float64(h.misses)/float64(h.lookups)
}

// noAge is the OldestAge piggyback value for an empty cache or a client.
const noAge = math.MaxInt64

// DirectoryMode selects how the live middleware locates master copies.
type DirectoryMode int

const (
	// DirCentral hosts the whole directory on one node (Config.DirNode) —
	// the closest live analogue of the paper's single global directory.
	DirCentral DirectoryMode = iota
	// DirPartitioned spreads the directory over all nodes by block hash
	// (xFS-style manager maps): each lookup costs at most one RPC to the
	// block's manager, and no node is a directory bottleneck.
	DirPartitioned
	// DirHints uses purely local, possibly stale hints (§6 future work;
	// Sarkar & Hartman).
	DirHints
)

// partitionedLocator routes directory operations to the block's manager
// node, determined by a stable hash of the block ID.
type partitionedLocator struct {
	n *Node
}

// manager reports the node managing id's directory entry: the legacy
// hash % clusterSize partition for static clusters, the same hash mapped
// over the in-ring members under the elastic view (dead and draining
// slots stop managing; entries they held are soft state that the next
// miss rebuilds via the home).
func (p *partitionedLocator) manager(id block.ID) int {
	v := p.n.viewRef()
	if v == nil || v.size() == 0 {
		return p.n.cfg.ID // membership not installed yet: stay local
	}
	h := uint32(id.File)*2654435761 + uint32(id.Idx)*40503
	if v.static {
		return int(h % uint32(v.size()))
	}
	if m, ok := v.manager(h); ok {
		return m
	}
	return p.n.cfg.ID
}

func (p *partitionedLocator) Lookup(id block.ID) (int32, bool, error) {
	m := p.manager(id)
	if m == p.n.cfg.ID {
		node, ok := p.n.dirSrv.lookup(id)
		if ok {
			node = p.n.reps.pick(id, node, int32(p.n.cfg.ID), p.n.repRR.Add(1))
		}
		return node, ok, nil
	}
	aux, flags, err := dirRPC(p.n, m, MsgDirLookup, id, 0)
	if err != nil {
		return 0, false, err
	}
	return int32(aux), flags != 0, nil
}

func (p *partitionedLocator) Update(id block.ID, node int32) error {
	m := p.manager(id)
	if m == p.n.cfg.ID {
		p.n.dirSrv.update(id, node)
		p.n.maybeRepush(id, node)
		return nil
	}
	_, _, err := dirRPC(p.n, m, MsgDirUpdate, id, int64(node))
	return err
}

func (p *partitionedLocator) Drop(id block.ID, ifNode int32) error {
	m := p.manager(id)
	if m == p.n.cfg.ID {
		p.n.reps.drop(id, ifNode)
		p.n.dirSrv.drop(id, ifNode)
		return nil
	}
	_, _, err := dirRPC(p.n, m, MsgDirDrop, id, int64(ifNode))
	return err
}

func (p *partitionedLocator) Miss(id block.ID, node int32) {
	// As with the central directory, the follow-up Update/Drop corrects
	// the manager's entry.
}

// batchByManager groups a window of block indices of f by managing node.
func (p *partitionedLocator) batchByManager(f block.FileID, idxs []int32) map[int][]int32 {
	groups := make(map[int][]int32)
	for _, idx := range idxs {
		m := p.manager(block.ID{File: f, Idx: idx})
		groups[m] = append(groups[m], idx)
	}
	return groups
}

func (p *partitionedLocator) LookupN(f block.FileID, idxs []int32) ([]int32, error) {
	out := lookupNUnknown(idxs)
	pos := make(map[int32]int, len(idxs))
	for i, idx := range idxs {
		pos[idx] = i
	}
	for m, group := range p.batchByManager(f, idxs) {
		var res []int32
		if m == p.n.cfg.ID {
			res = rotateLookupN(p.n, f, group, p.n.dirSrv.lookupN(f, group, make([]int32, 0, len(group))))
		} else {
			var err error
			res, err = dirBatchRPC(p.n, m, MsgDirLookupN, f, group, 0, make([]int32, 0, len(group)))
			if err != nil {
				// This manager's entries degrade to unknown; the rest of the
				// window still resolves.
				continue
			}
		}
		for j, idx := range group {
			out[pos[idx]] = res[j]
		}
	}
	return out, nil
}

func (p *partitionedLocator) UpdateN(f block.FileID, idxs []int32, node int32) error {
	var firstErr error
	for m, group := range p.batchByManager(f, idxs) {
		if m == p.n.cfg.ID {
			p.n.dirSrv.updateN(f, group, node)
			continue
		}
		if _, err := dirBatchRPC(p.n, m, MsgDirUpdateN, f, group, int64(node), nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
