package middleware

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// benchFrame builds a representative hot-path frame: one cached block of
// payload plus a couple of piggybacked hint deltas.
func benchFrame(payload []byte) *Frame {
	return &Frame{
		Type:      MsgBlockData,
		Req:       7,
		Sender:    2,
		OldestAge: 123456789,
		File:      11,
		Idx:       3,
		Hints: []HintDelta{
			{File: 11, Idx: 2, Node: 1},
			{File: 9, Idx: 0, Node: 3},
		},
		Payload: payload,
	}
}

// BenchmarkFrameRoundTrip measures one encode+decode of a block-data frame
// through the wire codec: the per-frame software overhead every remote hit
// pays twice (request and response). allocs/op is the headline number — the
// codec should recycle frames and payload buffers rather than allocate.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := SyntheticBlock(11, 3, 8192)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		f := getFrame()
		*f = *benchFrameProto
		f.Payload = payload
		if err := WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		releaseFrame(f)
		g, err := ReadFrame(&buf)
		if err != nil {
			b.Fatal(err)
		}
		releaseFrame(g)
	}
}

var benchFrameProto = benchFrame(nil)

// BenchmarkConnRoundTrip measures a full request/response over a live conn
// pair (in-memory duplex link): framing, multiplexing, dispatch, and reply
// correlation — everything but the kernel TCP stack.
func BenchmarkConnRoundTrip(b *testing.B) {
	payload := SyntheticBlock(1, 0, 8192)
	cn, sn := net.Pipe()
	server := newConn(sn, connConfig{
		handle: func(f *Frame) *Frame {
			r := getFrame()
			r.Type = MsgBlockData
			r.File = f.File
			r.Idx = f.Idx
			r.Payload = payload
			return r
		},
		workers: 1,
	})
	client := newConn(cn, connConfig{})
	defer server.close()
	defer client.close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := getFrame()
		req.Type = MsgGetBlock
		req.File = 1
		resp, err := client.roundTrip(req)
		releaseFrame(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Payload) != len(payload) {
			b.Fatalf("payload %d bytes", len(resp.Payload))
		}
		releaseFrame(resp)
	}
}

// BenchmarkNodeReadFile measures a warm whole-file read through the node's
// cooperative-cache path (all blocks local after the first iteration): the
// per-block software overhead of ReadFile + GetBlock with no wire traffic.
func BenchmarkNodeReadFile(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})
	if _, err := n.ReadFile(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := n.ReadFile(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 8*8192 {
			b.Fatalf("read %d bytes", len(data))
		}
	}
}

// BenchmarkNodeReadFileReplica is BenchmarkNodeReadFile with every block of
// the file held as a pushed replica instead of a master: the warm read path a
// flash crowd actually takes after adaptive replication spreads copies. It
// keeps the replica-hit accounting (noteAccessLocked) honest — serving from a
// replica copy must cost the same allocations as serving from a master.
func BenchmarkNodeReadFileReplica(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})
	for idx := int32(0); idx < 8; idx++ {
		n.store.InsertReplica(block.ID{File: 0, Idx: idx}, SyntheticBlock(0, idx, 8192))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := n.ReadFile(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 8*8192 {
			b.Fatalf("read %d bytes", len(data))
		}
	}
	b.StopTimer()
	if hits := n.store.ReplicaHits(); hits < uint64(b.N) {
		b.Fatalf("replica path not exercised: %d replica hits for %d iterations", hits, b.N)
	}
}

// BenchmarkStoreGetParallel measures concurrent warm hits on the sharded
// store under GOMAXPROCS goroutines (b.RunParallel): the lock-contention
// profile the shard split exists to flatten. Run with -cpu 1,4 to see the
// scaling; pair with -mutexprofile to see where the remaining contention
// lives. On a 1-CPU host this degenerates to the serial path (see
// BENCH_live caveats).
func BenchmarkStoreGetParallel(b *testing.B) {
	const blocks = 256
	s := NewStoreShards(blocks, core.PolicyMaster, 0) // 0: NumCPU shards
	for i := int32(0); i < blocks; i++ {
		s.Insert(block.ID{File: 1, Idx: i}, SyntheticBlock(1, i, 8192), true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]byte, 8192)
		var i int32
		for pb.Next() {
			id := block.ID{File: 1, Idx: i % blocks}
			i++
			if _, ok := s.CopyInto(id, dst); !ok {
				b.Fatal("warm block missing")
			}
		}
	})
}

// BenchmarkNodeReadFileParallel is BenchmarkNodeReadFile under concurrent
// readers: every goroutine sweeps the same warm 64 KB file, so the store's
// shard mutexes (and the payload refcounts) are the only shared state on the
// path. Run with -cpu 1,4 for the before/after of the shard split.
func BenchmarkNodeReadFileParallel(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})
	if _, err := n.ReadFile(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			data, err := n.ReadFile(0)
			if err != nil {
				b.Fatal(err)
			}
			if len(data) != 8*8192 {
				b.Fatalf("read %d bytes", len(data))
			}
		}
	})
}

// BenchmarkServeRun measures the peer-side cost of serving one 8-block run
// out of the warm store: GetRun pins references, the reply's segments alias
// the pinned buffers, and releaseFrame drops the pins — the scatter-gather
// path with zero payload copies and zero concatenation. allocs/op is the
// headline: the reply frame plus the segment/pin slices, independent of the
// run's byte size.
func BenchmarkServeRun(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})
	if _, err := n.ReadFile(0); err != nil { // warm all 8 blocks
		b.Fatal(err)
	}
	req := &Frame{Type: MsgGetRun, File: 0, Idx: 0, Aux: packRunAux(8, 0), Sender: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := n.handleGetRun(req)
		if resp.Type != MsgRunData {
			b.Fatalf("reply type %d", resp.Type)
		}
		if count, _ := unpackRunAux(resp.Aux); count != 8 {
			b.Fatalf("served %d blocks, want 8", count)
		}
		if len(resp.Payload) != 0 {
			b.Fatal("run reply concatenated a payload")
		}
		releaseFrame(resp)
	}
}

// benchColdReads measures client whole-file reads against a cluster under
// permanent cache pressure: 128 files × 8 blocks cycle through 4 nodes whose
// combined capacity holds a quarter of the working set, so nearly every read
// finds its blocks gone from the entry node and must fetch them — the
// cold multi-block case the run-granular fast path targets.
func benchColdReads(b *testing.B, noRun bool) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	const files = 128
	sizes := map[block.FileID]int64{}
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = 8 * 8192
	}
	nodes := make([]*Node, 4)
	addrs := make([]string, 4)
	for i := range nodes {
		n, err := Start(Config{
			ID: i, CapacityBlocks: 64, Policy: core.PolicyMaster,
			Geometry: geom, Source: NewMemSource(geom, sizes),
			NoRunReads: noRun, StaticHome: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	for f := 0; f < files; f++ {
		if _, err := client.Read(block.FileID(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := client.Read(block.FileID(i % files))
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 8*8192 {
			b.Fatalf("read %d bytes", len(data))
		}
	}
}

// BenchmarkClientReadFileCold is the cold multi-block read through the
// run-granular planner (one MsgGetRun per believed holder).
func BenchmarkClientReadFileCold(b *testing.B) { benchColdReads(b, false) }

// BenchmarkClientReadFileColdPerBlock is the same workload forced down the
// legacy per-block path (one MsgGetBlock round trip per missing block) — the
// before side of the run-path comparison.
func BenchmarkClientReadFileColdPerBlock(b *testing.B) { benchColdReads(b, true) }

// BenchmarkClientReadFile measures the full client→cluster path over
// loopback TCP: one MsgReadFile round trip returning a 64 KB file served
// from warm cluster memory.
func BenchmarkClientReadFile(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	nodes := make([]*Node, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		n, err := Start(Config{
			ID: i, CapacityBlocks: 64, Policy: core.PolicyMaster,
			Geometry: geom, Source: NewMemSource(geom, sizes),
			StaticHome: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Read(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := client.Read(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 8*8192 {
			b.Fatalf("read %d bytes", len(data))
		}
	}
}

// BenchmarkWriteBlock measures the writer's critical path under the
// asynchronous invalidation bus on a 3-node cluster: local invalidate,
// write-through, master install, and one sequenced publish. Peer delivery
// rides the per-peer sender loops off the measured path (drained once after
// the timer stops), so allocs/op is what a write costs its caller — the
// synchronous path used to spawn one goroutine and one frame per peer per
// write, all inside the caller's latency.
func BenchmarkWriteBlock(b *testing.B) {
	geom := block.Geometry{Size: 8192, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 8 * 8192}
	nodes := make([]*Node, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		n, err := Start(Config{
			ID: i, CapacityBlocks: 64, Policy: core.PolicyMaster,
			Geometry: geom, Source: NewMemSource(geom, sizes),
			StaticHome: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	writer := nodes[0] // file 0 homes at node 0: the write-through is local
	id := block.ID{File: 0, Idx: 0}
	data := bytes.Repeat([]byte{0xAB}, 8192)
	if err := writer.WriteBlock(id, data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writer.WriteBlock(id, data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !writer.FlushInval(10 * time.Second) {
		b.Fatal("invalidation bus did not drain")
	}
}
