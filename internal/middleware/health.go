package middleware

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault-tolerance defaults (see Config and ClientConfig).
const (
	defaultRPCTimeout       = 5 * time.Second
	defaultRetries          = 2
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 500 * time.Millisecond
)

// errRPCTimeout is returned by roundTrip when the reply misses the
// connection's deadline. The frame, if it ever arrives, is discarded by
// the pending-map removal; the pool ownership contract is unaffected.
var errRPCTimeout = errors.New("middleware: rpc deadline exceeded")

// errPeerSuspect is returned when a peer's circuit breaker is open: the
// peer is presumed down and the request is failed up front instead of
// paying a timeout for it.
var errPeerSuspect = errors.New("middleware: peer suspected down (circuit open)")

// isTransient reports whether err is a transport-level failure (timeout,
// torn/refused/closed connection, suspected peer) — the class of errors
// that justifies a retry or a degradation to the home node. Application
// errors relayed as MsgErr are not transient: the peer is alive and told
// us the operation itself is wrong.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errConnClosed) || errors.Is(err, errRPCTimeout) ||
		errors.Is(err, errPeerSuspect) || errors.Is(err, errFaultCrash) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	var ne net.Error // dial errors, deadline exceeded, refused connections
	return errors.As(err, &ne)
}

// IsTransient reports whether err is a transport-level failure a caller
// may retry (timeout, torn/refused/closed connection, suspected peer).
// Serving layers use it to pick a 5xx class for cluster errors.
func IsTransient(err error) bool { return isTransient(err) }

// IsTimeout reports whether err is a deadline miss — an RPC that ran out
// of time rather than a peer that refused or a request that was wrong.
// HTTP gateways map this class to 504 Gateway Timeout.
func IsTimeout(err error) bool {
	if errors.Is(err, errRPCTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// breaker is a per-peer circuit breaker. After `threshold` consecutive
// transport failures the circuit opens: requests to the peer fail fast
// (errPeerSuspect) instead of paying a timeout each. After `cooldown`, one
// half-open probe request is let through; its success closes the circuit,
// its failure re-arms the cooldown.
//
// A zero or negative threshold disables the breaker (allow always).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time // zero: closed
	probing   bool      // a half-open probe is in flight
}

// allow reports whether a request to the peer may proceed. In the open
// state it admits a single probe once the cooldown elapsed.
func (b *breaker) allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if b.probing || time.Now().Before(b.openUntil) {
		return false
	}
	b.probing = true
	return true
}

// success records a completed round trip and closes the circuit, reporting
// whether this closed a previously open circuit (the open→closed
// transition, for the breaker_close trace event).
func (b *breaker) success() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	wasOpen := b.fails >= b.threshold
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
	return wasOpen
}

// failure records a transport failure and reports whether it opened the
// circuit (for the breakerOpens counter). Every transition into the open
// state counts: the closed→open trip at the failure threshold AND the
// half-open→open re-trip when a probe fails — in the latter case fails is
// already past the threshold, so comparing against the threshold alone
// (the old accounting) silently missed every re-open.
func (b *breaker) failure() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	opened := b.probing || b.fails == b.threshold-1
	b.fails++
	b.openUntil = time.Now().Add(b.cooldown)
	b.probing = false
	return opened
}

// --- retry backoff ---

// lockedRand is a mutex-guarded rand.Rand: the retry paths of concurrent
// requests share one per-node seeded stream instead of contending on the
// global math/rand lock (and instead of being nondeterministic under a
// seeded FaultPlan).
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

// Int63n is rand.Rand.Int63n under the lock.
func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}

// backoffJitter computes one backoff sleep for step d: d/2 + [0, d), i.e.
// d ± 50%. Split from the sleep so determinism is testable.
func backoffJitter(d time.Duration, rng *lockedRand) time.Duration {
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// backoffSleep sleeps the current capped-exponential backoff step with
// ±50% jitter drawn from rng and advances *cur (doubling up to cap).
// Jitter keeps simultaneous retries from re-colliding on a recovering
// peer.
func backoffSleep(cur *time.Duration, max time.Duration, rng *lockedRand) {
	d := *cur
	if d <= 0 {
		return
	}
	time.Sleep(backoffJitter(d, rng))
	if next := 2 * d; next <= max {
		*cur = next
	} else {
		*cur = max
	}
}

// --- pooled round-trip timers ---

// timerPool recycles the deadline timers of roundTrip so the happy path
// stays allocation-light.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains t (fired or not) and recycles it.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
