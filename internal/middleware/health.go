package middleware

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault-tolerance defaults (see Config and ClientConfig).
const (
	defaultRPCTimeout       = 5 * time.Second
	defaultRetries          = 2
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 500 * time.Millisecond
)

// errRPCTimeout is returned by roundTrip when the reply misses the
// connection's deadline. The frame, if it ever arrives, is discarded by
// the pending-map removal; the pool ownership contract is unaffected.
var errRPCTimeout = errors.New("middleware: rpc deadline exceeded")

// errPeerSuspect is returned when a peer's circuit breaker is open: the
// peer is presumed down and the request is failed up front instead of
// paying a timeout for it.
var errPeerSuspect = errors.New("middleware: peer suspected down (circuit open)")

// isTransient reports whether err is a transport-level failure (timeout,
// torn/refused/closed connection, suspected peer) — the class of errors
// that justifies a retry or a degradation to the home node. Application
// errors relayed as MsgErr are not transient: the peer is alive and told
// us the operation itself is wrong.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errConnClosed) || errors.Is(err, errRPCTimeout) ||
		errors.Is(err, errPeerSuspect) || errors.Is(err, errFaultCrash) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	var ne net.Error // dial errors, deadline exceeded, refused connections
	return errors.As(err, &ne)
}

// breaker is a per-peer circuit breaker. After `threshold` consecutive
// transport failures the circuit opens: requests to the peer fail fast
// (errPeerSuspect) instead of paying a timeout each. After `cooldown`, one
// half-open probe request is let through; its success closes the circuit,
// its failure re-arms the cooldown.
//
// A zero or negative threshold disables the breaker (allow always).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time // zero: closed
	probing   bool      // a half-open probe is in flight
}

// allow reports whether a request to the peer may proceed. In the open
// state it admits a single probe once the cooldown elapsed.
func (b *breaker) allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if b.probing || time.Now().Before(b.openUntil) {
		return false
	}
	b.probing = true
	return true
}

// success records a completed round trip and closes the circuit.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure and reports whether it just opened
// the circuit (the closed→open transition, for the breakerOpens counter).
func (b *breaker) failure() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.openUntil = time.Now().Add(b.cooldown)
	b.probing = false
	return b.fails == b.threshold
}

// --- retry backoff ---

// backoffSleep sleeps the current capped-exponential backoff step with
// ±50% jitter and advances *cur (doubling up to cap). Jitter keeps
// simultaneous retries from re-colliding on a recovering peer.
func backoffSleep(cur *time.Duration, max time.Duration) {
	d := *cur
	if d <= 0 {
		return
	}
	jitter := time.Duration(rand.Int63n(int64(d))) // [0, d)
	time.Sleep(d/2 + jitter)
	if next := 2 * d; next <= max {
		*cur = next
	} else {
		*cur = max
	}
}

// --- pooled round-trip timers ---

// timerPool recycles the deadline timers of roundTrip so the happy path
// stays allocation-light.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains t (fired or not) and recycles it.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
