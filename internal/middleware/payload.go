package middleware

import (
	"sync"
	"sync/atomic"
)

// payloadBuf is an immutable, refcounted block payload: the unit of
// ownership for every block of bytes the live data plane moves. The store
// holds one reference per cached block; serving paths pin additional
// references for the lifetime of a reply (or a reader), so eviction,
// invalidation, and writes can never recycle bytes out from under an
// in-flight use. When the last reference drops, a pool-backed buffer
// returns to its size-class pool; plain GC-owned bytes (source reads,
// caller-provided slices) are simply dropped.
//
// The ownership state machine (see DESIGN.md "Zero-copy serving"):
//
//	pooled --getPayload/TakePayloadBuf--> owned (refs=1)
//	owned  --retain--> pinned (refs>1)    // store insert, reply segment
//	pinned --release--> owned             // reply written, reader done
//	owned  --release--> pooled (refs=0)   // last holder gone
//
// payloadBuf values are themselves pooled; a released buffer must never be
// touched again (retain after the count hit zero panics).
type payloadBuf struct {
	data []byte
	// pooled, when non-nil, is the size-class pool backing of data (the
	// getPayload pointer); nil means data is plain GC-owned memory.
	pooled *[]byte
	refs   atomic.Int32
}

var payloadBufPool = sync.Pool{New: func() any { return new(payloadBuf) }}

// newPayloadBuf wraps caller-owned bytes in a payload with one reference.
// The bytes are never pool-recycled (release at zero just drops them), so
// wrapping a source read or an application slice is always safe.
func newPayloadBuf(data []byte) *payloadBuf {
	pb := payloadBufPool.Get().(*payloadBuf)
	pb.data, pb.pooled = data, nil
	pb.refs.Store(1)
	return pb
}

// newPooledPayloadBuf allocates an n-byte pool-backed payload with one
// reference. The caller fills data before sharing the buffer; after that
// the bytes are immutable until the last release.
func newPooledPayloadBuf(n int) *payloadBuf {
	pb := payloadBufPool.Get().(*payloadBuf)
	p := getPayload(n)
	pb.data, pb.pooled = *p, p
	pb.refs.Store(1)
	return pb
}

// retain adds a reference and returns pb for chaining.
func (pb *payloadBuf) retain() *payloadBuf {
	if pb.refs.Add(1) <= 1 {
		panic("middleware: retain of a released payload")
	}
	return pb
}

// release drops one reference. At zero the backing returns to its pool (if
// pool-backed) and the payloadBuf itself is recycled; any alias of pb.data
// taken before the release is invalid afterwards.
func (pb *payloadBuf) release() {
	if pb == nil {
		return
	}
	n := pb.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("middleware: payload refcount underflow")
	}
	p := pb.pooled
	pb.data, pb.pooled = nil, nil
	payloadBufPool.Put(pb)
	if p != nil {
		putPayload(p)
	}
}
