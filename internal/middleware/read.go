package middleware

import (
	"fmt"
	"sync"

	"repro/internal/block"
)

// readWindow bounds a single ReadFile's concurrent block fetches — the live
// counterpart of the simulator's pipelined fetch window (one 64 KB extent).
const readWindow = 8

// ReadFile materializes a whole file through the cooperative cache and
// returns its content. The default path is the run-granular planner
// (readPlanned): a synchronous local sweep that spawns zero goroutines for
// a fully cached file, then missing blocks grouped by believed holder and
// fetched as runs, one MsgGetRun per (source, run). Config.NoRunReads
// restores the per-block path (every miss walks the full §3 protocol on
// its own).
func (n *Node) ReadFile(f block.FileID) ([]byte, error) {
	size, err := n.cfg.Source.FileSize(f)
	if err != nil {
		return nil, err
	}
	nblocks := n.geom.Count(size)
	out := make([]byte, size)
	if n.cfg.NoRunReads {
		if err := n.readFilePerBlock(f, size, nblocks, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if nblocks > 0 {
		if err := n.readPlanned(f, size, 0, nblocks-1, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readFilePerBlock is the legacy per-block read: missing blocks are fetched
// through a bounded concurrent window, each walking the §3 protocol alone.
// Each block is decoded straight into the output slice (GetBlockInto), so a
// cached block costs one copy and no intermediate allocation.
func (n *Node) readFilePerBlock(f block.FileID, size int64, nblocks int32, out []byte) error {
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, readWindow)
		mu       sync.Mutex
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i := int32(0); i < nblocks; i++ {
		if failed() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int32) {
			defer wg.Done()
			defer func() { <-sem }()
			// A block that failed while this goroutine queued for the window
			// makes the remaining fetches pointless: short-circuit before
			// issuing any network traffic.
			if failed() {
				return
			}
			off := int64(i) * int64(n.geom.Size)
			want := blockLen(n.geom, size, i)
			got, err := n.GetBlockInto(block.ID{File: f, Idx: i}, out[off:off+int64(want)])
			if err == nil && got != want {
				err = fmt.Errorf("middleware: block %d:%d is %d bytes, want %d", f, i, got, want)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// runPlan is one planned fetch: count contiguous missing blocks starting at
// first, believed to live on node src (home true: a master read through the
// file's home node).
type runPlan struct {
	first int32
	count int
	src   int
	home  bool
}

// planRuns groups the missing block indices (ascending) by believed holder
// into contiguous runs of at most readWindow blocks: one batched directory
// lookup resolves the whole window, then consecutive indices with the same
// source coalesce. Unknown holders and stale self-entries route to the home
// node, exactly as a failed or absent per-block Lookup does.
func (n *Node) planRuns(f block.FileID, missing []int32) ([]runPlan, error) {
	holders, err := n.loc.LookupN(f, missing)
	if err != nil || len(holders) != len(missing) {
		// A degraded directory degrades the plan, not the read.
		holders = lookupNUnknown(missing)
	}
	home, err := n.home(f)
	if err != nil {
		return nil, err
	}
	self := int32(n.cfg.ID)
	toHome := func(h int32) bool { return h == dirNoEntry || h == self }
	var runs []runPlan
	for k := 0; k < len(missing); {
		src := holders[k]
		j := k + 1
		for j < len(missing) && j-k < readWindow && missing[j] == missing[j-1]+1 {
			if toHome(src) != toHome(holders[j]) || (!toHome(src) && holders[j] != src) {
				break
			}
			j++
		}
		r := runPlan{first: missing[k], count: j - k, home: toHome(src)}
		if r.home {
			r.src = home
		} else {
			r.src = int(src)
		}
		runs = append(runs, r)
		k = j
	}
	return runs, nil
}

// readPlanned fills out — whose first byte is the head of block first —
// with blocks [first, last] of f. Phase one is a synchronous local sweep
// (CopyInto: the reference is pinned under the shard lock, the copy runs
// outside it; a fully cached file costs zero goroutines and zero RPCs). Phase two groups the misses into runs and fetches each
// with one MsgGetRun; whatever a run does not deliver (stale holder, fault,
// concurrent eviction) falls back to the per-block getBlock path, which
// carries the full §3 race and fault semantics — a degraded run is
// correctness-equivalent, never an error. Runs of one block skip straight
// to getBlock: the batch framing would buy nothing.
func (n *Node) readPlanned(f block.FileID, size int64, first, last int32, out []byte) error {
	bs := int64(n.geom.Size)
	dst := func(i int32) []byte {
		off := int64(i-first) * bs
		end := off + int64(blockLen(n.geom, size, i))
		if end > int64(len(out)) {
			end = int64(len(out))
		}
		return out[off:end]
	}
	var missing []int32
	for i := first; i <= last; i++ {
		if _, ok := n.store.CopyInto(block.ID{File: f, Idx: i}, dst(i)); ok {
			n.c.accesses.Add(1)
			n.c.localHits.Add(1)
			continue
		}
		// A miss's access is counted when the block is actually served
		// (fetchRun, or the per-block fallback which counts for itself), so
		// the totals match the per-block path exactly.
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		return nil
	}
	runs, err := n.planRuns(f, missing)
	if err != nil {
		return err
	}
	for _, r := range runs {
		served := 0
		if r.count > 1 {
			served = n.fetchRun(f, size, r, out, first)
		}
		for i := r.first + int32(served); i < r.first+int32(r.count); i++ {
			id := block.ID{File: f, Idx: i}
			want := len(dst(i))
			got, err := n.getBlockSized(id, dst(i))
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("middleware: block %d:%d is %d bytes, want %d", f, i, got, want)
			}
		}
	}
	return nil
}

// getBlockSized is the planner's per-block fallback: the full §3 protocol
// with readahead triggering, filling dst.
func (n *Node) getBlockSized(id block.ID, dst []byte) (int, error) {
	_, nn, err := n.getBlock(id, dst, true)
	return nn, err
}

// fetchRun issues one MsgGetRun for run r and installs what came back:
// blocks copied into out, the run installed into the store under one lock
// (InsertRun), per-block hit accounting identical to the per-block path
// (remote hits for a peer run, disk reads for a home run), and for home
// runs one batched directory UpdateN claiming mastership. It returns how
// many leading blocks of the run were fully handled; the caller falls back
// per-block for the rest. A run whose source is this node's own backing
// store (home == self) reads disk directly with no RPC. out == nil is
// prefetch mode (readahead): blocks are installed but copied nowhere.
func (n *Node) fetchRun(f block.FileID, size int64, r runPlan, out []byte, outBase int32) int {
	bs := int64(n.geom.Size)
	dst := func(i int32) []byte {
		if out == nil {
			return nil
		}
		off := int64(i-outBase) * bs
		end := off + int64(blockLen(n.geom, size, i))
		if end > int64(len(out)) {
			end = int64(len(out))
		}
		return out[off:end]
	}
	if r.home && r.src == n.cfg.ID {
		// Local home: disk reads, no wire. Still one InsertRun/UpdateN.
		// A home that just moved here pulls the previous home's
		// write-through state before the first authoritative read.
		n.ensureMigrated(f)
		blocks := make([]*payloadBuf, 0, r.count)
		for i := r.first; i < r.first+int32(r.count); i++ {
			data, err := n.cfg.Source.ReadBlock(f, i)
			if err != nil {
				break
			}
			copy(dst(i), data)
			n.c.accesses.Add(1)
			n.c.diskReads.Add(1)
			blocks = append(blocks, newPayloadBuf(data))
		}
		n.installRun(f, r.first, blocks, true)
		return len(blocks)
	}
	req := getFrame()
	req.Type, req.File, req.Idx = MsgGetRun, f, r.first
	req.Aux = packRunAux(r.count, 0)
	retries := 0
	if r.home {
		req.Flags = FlagMaster
		retries = n.retries
	}
	n.c.runsIssued.Add(1)
	resp, err := n.reliableRPC(r.src, req, retries)
	releaseFrame(req)
	if err != nil {
		n.c.runsDegraded.Add(1)
		n.runBlocks.Observe(0)
		n.trace(traceRunFetch, r.src, block.ID{File: f, Idx: r.first}, 0)
		return 0
	}
	served := 0
	if resp.Type == MsgRunData {
		k, _ := unpackRunAux(resp.Aux)
		if k > r.count {
			k = r.count
		}
		expect := 0
		for i := 0; i < k; i++ {
			expect += blockLen(n.geom, size, r.first+int32(i))
		}
		if len(resp.Payload) == expect {
			blocks := make([]*payloadBuf, 0, k)
			off := 0
			for i := r.first; i < r.first+int32(k); i++ {
				l := blockLen(n.geom, size, i)
				// One pool-backed copy per block: splitting the multi-block
				// response means one live block never pins the whole run's
				// payload, and eviction recycles each block independently.
				pb := newPooledPayloadBuf(l)
				copy(pb.data, resp.Payload[off:off+l])
				off += l
				copy(dst(i), pb.data)
				n.c.accesses.Add(1)
				if r.home {
					n.c.diskReads.Add(1)
				} else {
					n.c.remoteHits.Add(1)
				}
				blocks = append(blocks, pb)
			}
			n.installRun(f, r.first, blocks, r.home)
			served = k
		}
	}
	releaseFrame(resp)
	if served < r.count {
		n.c.runsDegraded.Add(1)
	}
	n.runBlocks.Observe(int64(served))
	n.trace(traceRunFetch, r.src, block.ID{File: f, Idx: r.first}, int64(served))
	return served
}

// installRun puts a fetched run into the store (one lock acquisition per
// touched shard), gives displaced masters their §3 second chance, and (for
// home runs) repoints the directory with one batched UpdateN. The store
// takes the caller's reference on every payload.
func (n *Node) installRun(f block.FileID, first int32, blocks []*payloadBuf, master bool) {
	if len(blocks) == 0 {
		return
	}
	for _, ev := range n.store.InsertRun(f, first, blocks, master) {
		n.dispatchEvicted(ev)
	}
	if master {
		idxs := make([]int32, len(blocks))
		for i := range idxs {
			idxs[i] = first + int32(i)
		}
		n.loc.UpdateN(f, idxs, int32(n.cfg.ID)) //nolint:errcheck // next miss self-corrects via home
	}
}

// GetBlock returns the content of one block, implementing the §3 protocol:
// local cache, then the master copy located through the directory (central
// or hints), then a master read through the file's home node. Concurrent
// misses for the same block coalesce into one fetch. The returned slice is
// the caller's own copy: the cache can evict and recycle its buffer without
// the returned bytes ever changing underneath the caller.
func (n *Node) GetBlock(id block.ID) ([]byte, error) {
	pb, _, err := n.getBlock(id, nil, true)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(pb.data))
	copy(out, pb.data)
	pb.release()
	return out, nil
}

// GetBlockInto is GetBlock filling a caller-provided buffer: a local hit
// copies once under the store lock, a remote hit copies the received payload
// straight into dst. Returns the number of bytes copied (min of the block
// and dst lengths).
func (n *Node) GetBlockInto(id block.ID, dst []byte) (int, error) {
	_, nn, err := n.getBlock(id, dst, true)
	return nn, err
}

// getBlock is the shared fetch path with control over readahead triggering
// (prefetch fetches must not recursively spawn further readahead windows).
// With dst == nil it returns a pinned reference to the block payload — the
// caller must release it, and until then eviction cannot recycle the bytes;
// with dst != nil it copies into dst and returns the count.
func (n *Node) getBlock(id block.ID, dst []byte, triggerRA bool) (*payloadBuf, int, error) {
	for {
		n.c.accesses.Add(1)
		if dst != nil {
			if nn, ok := n.store.CopyInto(id, dst); ok {
				n.c.localHits.Add(1)
				return nil, nn, nil
			}
		} else if pb, ok := n.store.GetRef(id); ok {
			n.c.localHits.Add(1)
			return pb, 0, nil
		}
		// Coalesce concurrent fetches of the same block.
		sh := n.pendingShard(id)
		sh.mu.Lock()
		if ch, inflight := sh.waiting[id]; inflight {
			sh.mu.Unlock()
			<-ch
			// Re-check the cache; if the block was already evicted again
			// (or the fetch failed), loop and fetch for ourselves.
			continue
		}
		ch := make(chan struct{})
		sh.waiting[id] = ch
		sh.mu.Unlock()

		pb, err := n.fetchBlock(id)

		sh.mu.Lock()
		delete(sh.waiting, id)
		sh.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, 0, err
		}
		if triggerRA && n.cfg.Readahead > 0 && n.raBegin(id.File) {
			go func() {
				defer n.raEnd(id.File)
				n.readahead(id)
			}()
		}
		if dst != nil {
			nn := copy(dst, pb.data)
			pb.release()
			return nil, nn, nil
		}
		return pb, 0, nil
	}
}

// raBegin claims the per-file readahead slot; false means one is already in
// flight for f (the new miss does not spawn another — the in-flight sweep
// covers the same window).
func (n *Node) raBegin(f block.FileID) bool {
	n.raMu.Lock()
	defer n.raMu.Unlock()
	if _, busy := n.raBusy[f]; busy {
		return false
	}
	n.raBusy[f] = struct{}{}
	return true
}

func (n *Node) raEnd(f block.FileID) {
	n.raMu.Lock()
	delete(n.raBusy, f)
	n.raMu.Unlock()
}

// readahead prefetches the next blocks of the file after a miss; prefetched
// blocks count in the prefetch statistic (and, like any access, in the
// access counters). The missing window is fetched through the run fast path
// (one MsgGetRun per source run) unless NoRunReads, with the per-block path
// finishing whatever the runs do not deliver.
func (n *Node) readahead(after block.ID) {
	size, err := n.cfg.Source.FileSize(after.File)
	if err != nil {
		return
	}
	nb := n.geom.Count(size)
	end := after.Idx + int32(n.cfg.Readahead)
	if end > nb-1 {
		end = nb - 1
	}
	var missing []int32
	for i := after.Idx + 1; i <= end; i++ {
		if !n.store.Contains(block.ID{File: after.File, Idx: i}) {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return
	}
	if !n.cfg.NoRunReads {
		runs, err := n.planRuns(after.File, missing)
		if err != nil {
			return
		}
		for _, r := range runs {
			served := 0
			if r.count > 1 {
				served = n.fetchRun(after.File, size, r, nil, 0)
				n.c.prefetches.Add(uint64(served))
			}
			for i := r.first + int32(served); i < r.first+int32(r.count); i++ {
				pb, _, err := n.getBlock(block.ID{File: after.File, Idx: i}, nil, false)
				if err != nil {
					return
				}
				pb.release() // prefetch installs only; no reader to hand to
				n.c.prefetches.Add(1)
			}
		}
		return
	}
	for _, i := range missing {
		pb, _, err := n.getBlock(block.ID{File: after.File, Idx: i}, nil, false)
		if err != nil {
			return
		}
		pb.release() // prefetch installs only; no reader to hand to
		n.c.prefetches.Add(1)
	}
}

// fetchBlock obtains a missing block from a peer or through the home node.
// A peer cache fetch gets exactly one attempt (breaker-gated): its retry
// is the home fallback, which keeps a block fetch bounded by roughly
// RPCTimeout × (Retries + 1) even when the believed master is dead. The
// returned payload is pinned for the caller (one reference), with a second
// reference handed to the store by the install.
func (n *Node) fetchBlock(id block.ID) (*payloadBuf, error) {
	self := int32(n.cfg.ID)
	if m, ok, err := n.loc.Lookup(id); err == nil && ok && m != self {
		req := getFrame()
		req.Type, req.File, req.Idx = MsgGetBlock, id.File, id.Idx
		resp, err := n.reliableRPC(int(m), req, 0)
		releaseFrame(req)
		if err == nil && resp.Type == MsgBlockData {
			pb := resp.TakePayloadBuf() // pool backing travels with the bytes
			releaseFrame(resp)
			n.c.remoteHits.Add(1)
			n.insertBlockBuf(id, pb.retain(), false)
			return pb, nil
		}
		if err == nil {
			releaseFrame(resp)
		}
		// The master vanished while the request traveled (§3's explicitly
		// tolerated race), the hint was stale, or the peer is down:
		// correct and fall through to the home node.
		n.c.raceMisses.Add(1)
		n.loc.Miss(id, m)
		if isTransient(err) {
			// The believed master is unreachable: drop the stale
			// directory/hint entry (CAS on m, so a newer claim survives)
			// instead of re-dialing a dead peer on every future miss. The
			// home read below repairs the entry to name this node.
			n.c.staleDrops.Add(1)
			n.c.homeFallbacks.Add(1)
			n.trace(traceStaleDrop, int(m), id, 0)
			n.trace(traceHomeFallback, int(m), id, 0)
			n.loc.Drop(id, m) //nolint:errcheck // best effort
		} else if err == nil && n.hints == nil {
			// Central mode: clear the stale entry if it still names m.
			n.loc.Drop(id, m) //nolint:errcheck // best effort
		}
	}
	// A failed directory lookup (directory node unreachable) also lands
	// here: availability degrades to home reads instead of failing the
	// request.
	return n.fetchFromHome(id)
}

// fetchFromHome reads the master copy via the file's home node and installs
// this node as the master holder. In hint mode the home may instead
// redirect to the probable owner; a failed redirect forces the disk read.
// Under the elastic ring, an unreachable home degrades to its ring
// successor — the node that inherits the file once the failure is promoted
// to a membership change — so reads stay error-free through a crash.
func (n *Node) fetchFromHome(id block.ID) (*payloadBuf, error) {
	home, err := n.home(id.File)
	if err != nil {
		return nil, err
	}
	pb, redirected, err := n.readMaster(id, home)
	if err != nil && isTransient(err) {
		if succ, ok := n.ringSuccessor(id.File, home); ok {
			n.c.homeFallbacks.Add(1)
			n.trace(traceHomeFallback, home, id, 1)
			pb, redirected, err = n.readMaster(id, succ)
		}
	}
	if err != nil {
		return nil, err
	}
	if redirected {
		// fetchRedirected already accounted and installed the copy.
		return pb, nil
	}
	n.c.diskReads.Add(1)
	n.insertBlockBuf(id, pb.retain(), true)
	n.loc.Update(id, int32(n.cfg.ID)) //nolint:errcheck // next miss self-corrects via home
	return pb, nil
}

// ringSuccessor names the node that takes over f if `down` leaves the ring:
// the next alive member on the hash ring. Static clusters have no
// successor (the legacy error surfaces unchanged).
func (n *Node) ringSuccessor(f block.FileID, down int) (int, bool) {
	v := n.view.Load()
	if v == nil || v.static {
		return 0, false
	}
	succ, ok := v.homeExcluding(f, down)
	if !ok || succ == down {
		return 0, false
	}
	return succ, true
}

// readMaster reads one authoritative block via the given home node — the
// local backing store when that is us, the retried MsgGetBlock protocol
// (with probable-owner redirects) otherwise. redirected reports that the
// block came from a probable-owner redirect (served, accounted, and
// installed by fetchRedirected) rather than from the home.
func (n *Node) readMaster(id block.ID, home int) (pb *payloadBuf, redirected bool, err error) {
	if home == n.cfg.ID {
		n.ensureMigrated(id.File)
		data, rerr := n.cfg.Source.ReadBlock(id.File, id.Idx)
		if rerr != nil {
			return nil, false, rerr
		}
		pb = newPayloadBuf(data) // fresh source slice, GC-owned
	} else {
		flags := FlagMaster
		for {
			req := getFrame()
			req.Type, req.Flags, req.File, req.Idx = MsgGetBlock, flags, id.File, id.Idx
			// The home is the only source of this block's truth: retry
			// transient failures (a restarting home comes back).
			resp, rerr := n.reliableRPC(home, req, n.retries)
			releaseFrame(req)
			if rerr != nil {
				return nil, false, rerr
			}
			if resp.Type == MsgBlockMiss && resp.Aux >= 0 && flags&FlagForce == 0 {
				holder := int(resp.Aux)
				releaseFrame(resp)
				// Probable-owner redirect: try the hinted holder; on
				// success this is a remote memory hit, not a disk read.
				if d, ok := n.fetchRedirected(id, holder); ok {
					return d, true, nil
				}
				flags |= FlagForce
				continue
			}
			if resp.Type != MsgBlockData {
				typ := resp.Type
				releaseFrame(resp)
				return nil, false, fmt.Errorf("middleware: home %d returned %d for %v", home, typ, id)
			}
			pb = resp.TakePayloadBuf() // pool backing travels with the bytes
			releaseFrame(resp)
			break
		}
	}
	return pb, false, nil
}

// fetchRedirected follows a home redirect to the probable master holder.
func (n *Node) fetchRedirected(id block.ID, holder int) (*payloadBuf, bool) {
	if holder == n.cfg.ID || holder >= n.clusterSize() {
		return nil, false
	}
	req := getFrame()
	req.Type, req.File, req.Idx = MsgGetBlock, id.File, id.Idx
	// One attempt: a failed redirect falls back to a forced home read.
	resp, err := n.reliableRPC(holder, req, 0)
	releaseFrame(req)
	if err != nil || resp.Type != MsgBlockData {
		if err == nil {
			releaseFrame(resp)
		}
		if n.hints != nil {
			n.hints.Miss(id, int32(holder))
		}
		return nil, false
	}
	served := resp.Flags
	pb := resp.TakePayloadBuf() // pool backing travels with the bytes
	releaseFrame(resp)
	n.c.remoteHits.Add(1)
	n.insertBlockBuf(id, pb.retain(), false)
	if served&FlagMaster != 0 {
		// Only a master serve is a location fact worth spreading: a
		// replica holder answering for the master must not be recorded
		// (and later counted against hint accuracy) as the master.
		n.noteHint(id, int32(holder))
	}
	return pb, true
}

// insertBlock caches content and handles the eviction it may cause: a
// displaced master gets the §3 second chance — forwarded to the peer whose
// (piggyback-known) oldest block is older, dropped if it is the globally
// oldest.
func (n *Node) insertBlock(id block.ID, data []byte, master bool) {
	if ev := n.store.Insert(id, data, master); ev != nil {
		n.dispatchEvicted(ev)
	}
}

// insertBlockBuf is insertBlock for a payload the caller already holds a
// reference on: the store takes ownership of that reference (released if
// admission rejects the block).
func (n *Node) insertBlockBuf(id block.ID, pb *payloadBuf, master bool) {
	if ev := n.store.InsertBuf(id, pb, master); ev != nil {
		n.dispatchEvicted(ev)
	}
}

func (n *Node) forwardEvicted(ev *Evicted) {
	defer ev.Release() // the eviction's pin on the payload ends here
	self := int32(n.cfg.ID)
	v := n.viewRef()
	target := -1
	var oldest int64
	for i := 0; i < n.clusterSize(); i++ {
		if i == n.cfg.ID || (v != nil && !v.reachable(i)) {
			continue
		}
		age := n.peerAges[i].Load()
		if age >= ev.Age {
			continue // peer holds nothing older (or age unknown)
		}
		if target < 0 || age < oldest {
			target, oldest = i, age
		}
	}
	if target < 0 {
		// Globally oldest as far as this node knows: drop it.
		n.loc.Drop(ev.ID, self) //nolint:errcheck // best effort
		return
	}
	// Optimistically repoint the directory, then ship the block.
	n.loc.Update(ev.ID, int32(target)) //nolint:errcheck // corrected below
	req := getFrame()
	req.Type, req.File, req.Idx, req.Aux = MsgForward, ev.ID.File, ev.ID.Idx, ev.Age
	req.Payload = ev.Data // pinned by ev until the Release above
	// Best effort: a forward to a dead peer is simply a dropped master.
	resp, err := n.reliableRPC(target, req, 0)
	req.Payload = nil // still owned by ev, keep releaseFrame's hands off
	releaseFrame(req)
	accepted := err == nil && resp.Flags != 0
	if err == nil {
		releaseFrame(resp)
	}
	if !accepted {
		// Rejected (everything there was younger) or failed: the cluster
		// forgets this master.
		n.c.forwardsRejected.Add(1)
		n.trace(traceForward, target, ev.ID, 0)
		n.loc.Drop(ev.ID, int32(target)) //nolint:errcheck // best effort
		return
	}
	n.c.forwards.Add(1)
	n.trace(traceForward, target, ev.ID, 1)
}
