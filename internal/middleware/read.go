package middleware

import (
	"fmt"
	"sync"

	"repro/internal/block"
)

// readWindow bounds a single ReadFile's concurrent block fetches — the live
// counterpart of the simulator's pipelined fetch window (one 64 KB extent).
const readWindow = 8

// ReadFile materializes a whole file through the cooperative cache and
// returns its content. Missing blocks are fetched through a bounded
// concurrent window, so a cold file's blocks stream from its sources in
// parallel. This is the node-side implementation of the client's Read (and
// what a web server built on the middleware calls per request). Each block
// is decoded straight into the output slice (GetBlockInto), so a cached
// block costs one copy and no intermediate allocation.
func (n *Node) ReadFile(f block.FileID) ([]byte, error) {
	size, err := n.cfg.Source.FileSize(f)
	if err != nil {
		return nil, err
	}
	nblocks := n.geom.Count(size)
	out := make([]byte, size)

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, readWindow)
		mu       sync.Mutex
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i := int32(0); i < nblocks; i++ {
		if failed() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int32) {
			defer wg.Done()
			defer func() { <-sem }()
			// A block that failed while this goroutine queued for the window
			// makes the remaining fetches pointless: short-circuit before
			// issuing any network traffic.
			if failed() {
				return
			}
			off := int64(i) * int64(n.geom.Size)
			want := blockLen(n.geom, size, i)
			got, err := n.GetBlockInto(block.ID{File: f, Idx: i}, out[off:off+int64(want)])
			if err == nil && got != want {
				err = fmt.Errorf("middleware: block %d:%d is %d bytes, want %d", f, i, got, want)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// GetBlock returns the content of one block, implementing the §3 protocol:
// local cache, then the master copy located through the directory (central
// or hints), then a master read through the file's home node. Concurrent
// misses for the same block coalesce into one fetch.
func (n *Node) GetBlock(id block.ID) ([]byte, error) {
	data, _, err := n.getBlock(id, nil, true)
	return data, err
}

// GetBlockInto is GetBlock filling a caller-provided buffer: a local hit
// copies once under the store lock, a remote hit copies the received payload
// straight into dst. Returns the number of bytes copied (min of the block
// and dst lengths).
func (n *Node) GetBlockInto(id block.ID, dst []byte) (int, error) {
	_, nn, err := n.getBlock(id, dst, true)
	return nn, err
}

// getBlock is the shared fetch path with control over readahead triggering
// (prefetch fetches must not recursively spawn further readahead windows).
// With dst == nil it returns the block content (aliasing the store's copy);
// with dst != nil it copies into dst and returns the count.
func (n *Node) getBlock(id block.ID, dst []byte, triggerRA bool) ([]byte, int, error) {
	for {
		n.c.accesses.Add(1)
		if dst != nil {
			if nn, ok := n.store.CopyInto(id, dst); ok {
				n.c.localHits.Add(1)
				return nil, nn, nil
			}
		} else if data, ok := n.store.Get(id); ok {
			n.c.localHits.Add(1)
			return data, 0, nil
		}
		// Coalesce concurrent fetches of the same block.
		n.pmu.Lock()
		if ch, inflight := n.pending[id]; inflight {
			n.pmu.Unlock()
			<-ch
			// Re-check the cache; if the block was already evicted again
			// (or the fetch failed), loop and fetch for ourselves.
			continue
		}
		ch := make(chan struct{})
		n.pending[id] = ch
		n.pmu.Unlock()

		data, err := n.fetchBlock(id)

		n.pmu.Lock()
		delete(n.pending, id)
		n.pmu.Unlock()
		close(ch)
		if err != nil {
			return nil, 0, err
		}
		if triggerRA && n.cfg.Readahead > 0 {
			go n.readahead(id)
		}
		if dst != nil {
			return nil, copy(dst, data), nil
		}
		return data, 0, nil
	}
}

// readahead prefetches the next blocks of the file after a miss; prefetched
// blocks count in the prefetch statistic (and, like any access, in the
// access counters).
func (n *Node) readahead(after block.ID) {
	size, err := n.cfg.Source.FileSize(after.File)
	if err != nil {
		return
	}
	nb := n.geom.Count(size)
	for i := after.Idx + 1; i <= after.Idx+int32(n.cfg.Readahead) && i < nb; i++ {
		id := block.ID{File: after.File, Idx: i}
		if n.store.Contains(id) {
			continue
		}
		if _, _, err := n.getBlock(id, nil, false); err != nil {
			return
		}
		n.c.prefetches.Add(1)
	}
}

// fetchBlock obtains a missing block from a peer or through the home node.
// A peer cache fetch gets exactly one attempt (breaker-gated): its retry
// is the home fallback, which keeps a block fetch bounded by roughly
// RPCTimeout × (Retries + 1) even when the believed master is dead.
func (n *Node) fetchBlock(id block.ID) ([]byte, error) {
	self := int32(n.cfg.ID)
	if m, ok, err := n.loc.Lookup(id); err == nil && ok && m != self {
		req := getFrame()
		req.Type, req.File, req.Idx = MsgGetBlock, id.File, id.Idx
		resp, err := n.reliableRPC(int(m), req, 0)
		releaseFrame(req)
		if err == nil && resp.Type == MsgBlockData {
			data := resp.TakePayload() // the store retains this slice
			releaseFrame(resp)
			n.c.remoteHits.Add(1)
			n.insertBlock(id, data, false)
			return data, nil
		}
		if err == nil {
			releaseFrame(resp)
		}
		// The master vanished while the request traveled (§3's explicitly
		// tolerated race), the hint was stale, or the peer is down:
		// correct and fall through to the home node.
		n.c.raceMisses.Add(1)
		n.loc.Miss(id, m)
		if isTransient(err) {
			// The believed master is unreachable: drop the stale
			// directory/hint entry (CAS on m, so a newer claim survives)
			// instead of re-dialing a dead peer on every future miss. The
			// home read below repairs the entry to name this node.
			n.c.staleDrops.Add(1)
			n.c.homeFallbacks.Add(1)
			n.trace(traceStaleDrop, int(m), id, 0)
			n.trace(traceHomeFallback, int(m), id, 0)
			n.loc.Drop(id, m) //nolint:errcheck // best effort
		} else if err == nil && n.hints == nil {
			// Central mode: clear the stale entry if it still names m.
			n.loc.Drop(id, m) //nolint:errcheck // best effort
		}
	}
	// A failed directory lookup (directory node unreachable) also lands
	// here: availability degrades to home reads instead of failing the
	// request.
	return n.fetchFromHome(id)
}

// fetchFromHome reads the master copy via the file's home node and installs
// this node as the master holder. In hint mode the home may instead
// redirect to the probable owner; a failed redirect forces the disk read.
func (n *Node) fetchFromHome(id block.ID) ([]byte, error) {
	home, err := n.home(id.File)
	if err != nil {
		return nil, err
	}
	var data []byte
	if home == n.cfg.ID {
		data, err = n.cfg.Source.ReadBlock(id.File, id.Idx)
		if err != nil {
			return nil, err
		}
	} else {
		flags := FlagMaster
		for {
			req := getFrame()
			req.Type, req.Flags, req.File, req.Idx = MsgGetBlock, flags, id.File, id.Idx
			// The home is the only source of this block's truth: retry
			// transient failures (a restarting home comes back).
			resp, err := n.reliableRPC(home, req, n.retries)
			releaseFrame(req)
			if err != nil {
				return nil, err
			}
			if resp.Type == MsgBlockMiss && resp.Aux >= 0 && flags&FlagForce == 0 {
				holder := int(resp.Aux)
				releaseFrame(resp)
				// Probable-owner redirect: try the hinted holder; on
				// success this is a remote memory hit, not a disk read.
				if d, ok := n.fetchRedirected(id, holder); ok {
					return d, nil
				}
				flags |= FlagForce
				continue
			}
			if resp.Type != MsgBlockData {
				typ := resp.Type
				releaseFrame(resp)
				return nil, fmt.Errorf("middleware: home %d returned %d for %v", home, typ, id)
			}
			data = resp.TakePayload() // the store retains this slice
			releaseFrame(resp)
			break
		}
	}
	n.c.diskReads.Add(1)
	n.insertBlock(id, data, true)
	n.loc.Update(id, int32(n.cfg.ID)) //nolint:errcheck // next miss self-corrects via home
	return data, nil
}

// fetchRedirected follows a home redirect to the probable master holder.
func (n *Node) fetchRedirected(id block.ID, holder int) ([]byte, bool) {
	if holder == n.cfg.ID || holder >= n.clusterSize() {
		return nil, false
	}
	req := getFrame()
	req.Type, req.File, req.Idx = MsgGetBlock, id.File, id.Idx
	// One attempt: a failed redirect falls back to a forced home read.
	resp, err := n.reliableRPC(holder, req, 0)
	releaseFrame(req)
	if err != nil || resp.Type != MsgBlockData {
		if err == nil {
			releaseFrame(resp)
		}
		if n.hints != nil {
			n.hints.Miss(id, int32(holder))
		}
		return nil, false
	}
	data := resp.TakePayload() // the store retains this slice
	releaseFrame(resp)
	n.c.remoteHits.Add(1)
	n.insertBlock(id, data, false)
	n.noteHint(id, int32(holder))
	return data, true
}

// insertBlock caches content and handles the eviction it may cause: a
// displaced master gets the §3 second chance — forwarded to the peer whose
// (piggyback-known) oldest block is older, dropped if it is the globally
// oldest.
func (n *Node) insertBlock(id block.ID, data []byte, master bool) {
	ev := n.store.Insert(id, data, master)
	if ev == nil || !ev.Master {
		return
	}
	go n.forwardEvicted(ev)
}

func (n *Node) forwardEvicted(ev *Evicted) {
	self := int32(n.cfg.ID)
	target := -1
	var oldest int64
	for i := 0; i < n.clusterSize(); i++ {
		if i == n.cfg.ID {
			continue
		}
		age := n.peerAges[i].Load()
		if age >= ev.Age {
			continue // peer holds nothing older (or age unknown)
		}
		if target < 0 || age < oldest {
			target, oldest = i, age
		}
	}
	if target < 0 {
		// Globally oldest as far as this node knows: drop it.
		n.loc.Drop(ev.ID, self) //nolint:errcheck // best effort
		return
	}
	// Optimistically repoint the directory, then ship the block.
	n.loc.Update(ev.ID, int32(target)) //nolint:errcheck // corrected below
	req := getFrame()
	req.Type, req.File, req.Idx, req.Aux = MsgForward, ev.ID.File, ev.ID.Idx, ev.Age
	req.Payload = ev.Data // store-owned slice, not pooled
	// Best effort: a forward to a dead peer is simply a dropped master.
	resp, err := n.reliableRPC(target, req, 0)
	releaseFrame(req)
	accepted := err == nil && resp.Flags != 0
	if err == nil {
		releaseFrame(resp)
	}
	if !accepted {
		// Rejected (everything there was younger) or failed: the cluster
		// forgets this master.
		n.c.forwardsRejected.Add(1)
		n.trace(traceForward, target, ev.ID, 0)
		n.loc.Drop(ev.ID, int32(target)) //nolint:errcheck // best effort
		return
	}
	n.c.forwards.Add(1)
	n.trace(traceForward, target, ev.ID, 1)
}
