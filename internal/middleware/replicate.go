package middleware

import (
	"encoding/binary"
	"sync"

	"repro/internal/block"
)

// Adaptive replication (this file) extends the §3 protocol for skewed and
// non-stationary workloads: a single master copy of a suddenly popular
// block turns its holder into a hot spot, so when the epoch-decayed access
// score of a master crosses Config.ReplicateThreshold, its holder
// proactively pushes copies to Config.ReplicaFanout ring successors. The
// block's directory manager tracks the copy set and rotates lookup answers
// across master and replicas, spreading the serve load; write invalidation
// already reaches every node, so a write clears the copy set for free. With
// ReplicateThreshold = 0 (the default) none of this machinery engages and
// the protocol is byte-identical to the single-master path.

// replicaSets tracks, at a block's directory manager, which nodes hold
// pushed replicas of it. The set is advisory: a stale entry costs one
// failed peer fetch (the §3 race path repairs it), never correctness.
type replicaSets struct {
	mu sync.Mutex
	m  map[block.ID][]int32
}

func newReplicaSets() *replicaSets {
	return &replicaSets{m: make(map[block.ID][]int32)}
}

// add records node as a replica holder of id; reports whether the set
// changed.
func (r *replicaSets) add(id block.ID, node int32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.m[id] {
		if n == node {
			return false
		}
	}
	r.m[id] = append(r.m[id], node)
	return true
}

// drop removes node from id's replica set; reports whether it was present.
func (r *replicaSets) drop(id block.ID, node int32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.m[id]
	for i, n := range set {
		if n == node {
			set[i] = set[len(set)-1]
			set = set[:len(set)-1]
			if len(set) == 0 {
				delete(r.m, id)
			} else {
				r.m[id] = set
			}
			return true
		}
	}
	return false
}

// clear forgets id's replica set entirely (write invalidation); reports
// whether the set was non-empty — a non-empty set torn down means the block
// was replication-hot a moment ago.
func (r *replicaSets) clear(id block.ID) bool {
	r.mu.Lock()
	_, had := r.m[id]
	delete(r.m, id)
	r.mu.Unlock()
	return had
}

// clearAll forgets every replica set (truncated invalidation catch-up: the
// manager can no longer vouch for any copy set it tracked).
func (r *replicaSets) clearAll() {
	r.mu.Lock()
	r.m = make(map[block.ID][]int32)
	r.mu.Unlock()
}

// pick rotates a lookup answer across the master and id's replicas, never
// answering with the requester itself (its own cache already missed). With
// an empty set the master comes back unchanged, so disabled replication is
// indistinguishable from the pre-replication directory.
func (r *replicaSets) pick(id block.ID, master, requester int32, draw uint32) int32 {
	r.mu.Lock()
	set := r.m[id]
	var cands [1 + maxReplicaFanout]int32
	n := 0
	if master != requester {
		cands[n] = master
		n++
	}
	for _, c := range set {
		if c != requester && c != master && n < len(cands) {
			cands[n] = c
			n++
		}
	}
	r.mu.Unlock()
	if n == 0 {
		return master
	}
	return cands[draw%uint32(n)]
}

// len reports the number of blocks with a non-empty replica set.
func (r *replicaSets) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// maxReplicaFanout bounds Config.ReplicaFanout (and sizes pick's on-stack
// candidate array).
const maxReplicaFanout = 8

// replicaManager reports the node that tracks id's replica set: the node
// hosting its directory entry (the lookup rotation happens where lookups
// land), or the file's home in hint mode (the probable-owner anchor).
func (n *Node) replicaManager(id block.ID) int {
	switch n.cfg.DirMode {
	case DirPartitioned:
		if p, ok := n.loc.(*partitionedLocator); ok {
			return p.manager(id)
		}
	case DirHints:
		if h, err := n.home(id.File); err == nil {
			return h
		}
	}
	return n.cfg.DirNode
}

// observeServe feeds the hotness tracker after this node served a master
// copy to a peer, and triggers a replica push when the score crosses the
// threshold (at most once per cooldown window, so a sustained flash crowd
// does not re-push every serve).
func (n *Node) observeServe(id block.ID) {
	if n.hot == nil {
		return
	}
	if n.hot.Observe(hotKey(id)) < n.repThreshold {
		return
	}
	if !n.pushAllowed(id) {
		return
	}
	go n.pushReplicas(id)
}

// pushAllowed claims the push slot for id unless one ran within the last
// replicaCooldownEpochs epochs. resetCooldown reopens it (after a write
// reinstalls fresh content, the copies must spread again immediately).
func (n *Node) pushAllowed(id block.ID) bool {
	epoch := n.hot.Epoch()
	n.repMu.Lock()
	defer n.repMu.Unlock()
	if last, ok := n.repCool[id]; ok && epoch < last+replicaCooldownEpochs {
		return false
	}
	n.repCool[id] = epoch
	return true
}

// replicaCooldownEpochs is the minimum epochs between replica pushes of the
// same block from the same holder. A push round spreads the full fanout, so
// while the copy set is intact re-pushing is pure overhead (payload resends
// into a complete set); the window is therefore long — spanning a sustained
// hot period — and the events that genuinely need an immediate re-spread
// (write invalidation reinstalling fresh content) bypass it via
// resetCooldown or the manager's repush tombstone.
const replicaCooldownEpochs = 20

// pushReplicas ships copies of a hot master to the node's ring successors
// and registers the accepted ones with the block's manager. Best effort
// throughout: a failed push (dead peer, open breaker) just means one fewer
// replica, and the §3 protocol never depends on a replica existing.
func (n *Node) pushReplicas(id block.ID) {
	// The stamp is read BEFORE the data: if an invalidation lands between
	// the two, the stamp is older than the receivers' and the push is
	// rejected (stale stamp + fresh data fails safe; the reverse order
	// could pair a fresh stamp with stale data and win).
	stamp := n.invalStamp(id)
	pb, ok := n.store.GetRef(id)
	if !ok {
		return
	}
	defer pb.release() // pinned across every push write in the round
	if !n.store.IsMaster(id) {
		return // lost mastership while the push was queued
	}
	size := n.clusterSize()
	fanout := n.repFanout
	if fanout > size-1 {
		fanout = size - 1
	}
	v := n.viewRef()
	var accepted [maxReplicaFanout]int32
	nAccepted := 0
	for k := 0; k < fanout; k++ {
		target := (n.cfg.ID + 1 + k) % size
		if target == n.cfg.ID || (v != nil && !v.reachable(target)) {
			continue
		}
		req := getFrame()
		req.Type, req.File, req.Idx = MsgReplicate, id.File, id.Idx
		req.Aux = int64(stamp) // orders the push against bus invalidations
		req.Payload = pb.data  // pinned by the GetRef above
		resp, err := n.reliableRPC(target, req, 0)
		req.Payload = nil
		releaseFrame(req)
		if err != nil {
			continue
		}
		ok := resp.Flags != 0
		releaseFrame(resp)
		if !ok {
			continue
		}
		n.c.replicasPushed.Add(1)
		n.trace(traceReplicate, target, id, 1)
		accepted[nAccepted] = int32(target)
		nAccepted++
	}
	if nAccepted == 0 {
		return
	}
	if !n.store.IsMaster(id) {
		// A write invalidated the block mid-push: the copy set was torn
		// down, so the just-pushed (now stale) copies must not enter it.
		return
	}
	// One registration RPC per push round, not per copy: the per-round
	// coordination cost is what the push must earn back in saved fetches,
	// and halving it moves the break-even from ~2 replica hits per push
	// toward ~1.5.
	n.replicaOps(id, accepted[:nAccepted], true, stamp)
}

// replicaOps records (add) or retires (drop) a batch of replica holders in
// id's set at the block's manager — directly when this node is the manager,
// else via one best-effort MsgReplicaOp carrying the holders in its payload
// and, for adds, the pusher's invalidation stamp in Aux: a registration
// whose stamp predates an invalidation the manager already applied is
// refused, so a racing push can never revive a just-torn-down copy set.
func (n *Node) replicaOps(id block.ID, nodes []int32, add bool, stamp uint64) {
	mgr := n.replicaManager(id)
	if mgr == n.cfg.ID {
		if add && stampNewer(n.invalStamp(id), stamp) {
			return
		}
		for _, node := range nodes {
			if add {
				n.reps.add(id, node)
			} else {
				n.reps.drop(id, node)
			}
		}
		return
	}
	req := getFrame()
	req.Type, req.File, req.Idx = MsgReplicaOp, id.File, id.Idx
	buf := make([]byte, 4*len(nodes))
	for i, node := range nodes {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(node))
	}
	req.Payload = buf
	if add {
		req.Flags = FlagMaster
		req.Aux = int64(stamp)
	} else {
		req.Aux = int64(nodes[0])
	}
	resp, err := n.reliableRPC(mgr, req, 0)
	releaseFrame(req)
	if err == nil {
		releaseFrame(resp)
	}
}

// retireReplica drops an evicted replica from its manager's set so lookups
// stop rotating to a holder that no longer has the block (stale sets still
// only cost a race miss, this just avoids the common case).
func (n *Node) retireReplica(id block.ID) {
	n.replicaOps(id, []int32{int32(n.cfg.ID)}, false, 0)
}

// markRepush tombstones a block whose replica set an invalidation just tore
// down: the next mastership claim the manager sees re-triggers replication
// (maybeRepush), so a written-to hot block re-replicates immediately instead
// of waiting for its serve rate to re-cross the threshold. The chain decays
// naturally: once a block cools, its replicas stop being touched, fall out
// of the LRU, and the next write finds an empty set — no tombstone.
func (n *Node) markRepush(id block.ID) {
	epoch := n.hot.Epoch()
	n.repMu.Lock()
	n.repHot[id] = epoch
	n.repMu.Unlock()
}

// repushTTL bounds tombstone staleness: a mastership claim arriving more
// than this many epochs after the invalidation means the block is not being
// re-read at flash-crowd rates, so re-replicating it is not worth a push
// round.
const repushTTL = 5

// maybeRepush runs at the directory manager when node claims mastership of
// id: if the block carries a fresh repush tombstone, ask the new master to
// push replicas. At most one repush per block fires per epoch — a
// write-heavy hot block is otherwise re-pushed on every write, and with
// writes milliseconds apart each pushed copy is invalidated before it
// serves a single read (measured: the push traffic alone erased the
// adaptive layer's whole margin).
func (n *Node) maybeRepush(id block.ID, holder int32) {
	if n.hot == nil {
		return
	}
	epoch := n.hot.Epoch()
	n.repMu.Lock()
	arm, armed := n.repHot[id]
	if armed {
		delete(n.repHot, id)
	}
	fire := armed && epoch <= arm+repushTTL && n.repLast[id] <= epoch
	if fire {
		n.repLast[id] = epoch + 1
	}
	n.repMu.Unlock()
	if !fire {
		return
	}
	if int(holder) == n.cfg.ID {
		n.claimPush(id)
		go n.pushReplicas(id)
		return
	}
	go func() {
		req := getFrame()
		req.Type, req.File, req.Idx = MsgRepush, id.File, id.Idx
		resp, err := n.reliableRPC(int(holder), req, 0)
		releaseFrame(req)
		if err == nil {
			releaseFrame(resp)
		}
	}()
}

// claimPush marks a push round as started now, so serve-driven promotion
// (observeServe) does not immediately duplicate a manager-ordered repush.
func (n *Node) claimPush(id block.ID) {
	epoch := n.hot.Epoch()
	n.repMu.Lock()
	n.repCool[id] = epoch
	n.repMu.Unlock()
}

// handleRepush is the master-holder side of MsgRepush. The manager already
// rate-limited the repush, so the cooldown is claimed, not consulted.
func (n *Node) handleRepush(f *Frame) *Frame {
	id := f.ID()
	if n.hot != nil && n.store.IsMaster(id) {
		n.claimPush(id)
		go n.pushReplicas(id)
	}
	return ackFrame()
}

// handleReplicate installs a pushed replica copy — unless this node has
// already applied a bus invalidation newer than the push's stamp (Aux), in
// which case the payload is stale and the push is refused (Flags=0): the
// write that tore the copy set down must win over the in-flight push.
func (n *Node) handleReplicate(f *Frame) *Frame {
	id := f.ID()
	if stampNewer(n.invalStamp(id), uint64(f.Aux)) {
		r := getFrame()
		r.Type, r.File, r.Idx = MsgAck, f.File, f.Idx
		return r // Flags=0: rejected
	}
	// The store keeps the pushed copy: take the refcounted buffer from the
	// frame, pooled backing and all, so an eventual eviction recycles it.
	if ev := n.store.InsertReplicaBuf(id, f.TakePayloadBuf()); ev != nil {
		n.dispatchEvicted(ev)
	}
	r := getFrame()
	r.Type, r.Flags, r.File, r.Idx = MsgAck, 1, f.File, f.Idx
	return r
}

// handleReplicaOp maintains the replica set at this (manager) node. A
// payload, when present, carries a whole push round's holders (4 bytes
// big-endian each) with the pusher's invalidation stamp in Aux for adds;
// a bare Aux names the single holder (legacy encoding, stamp zero). An add
// whose stamp predates an applied invalidation is refused whole — see
// replicaOps.
func (n *Node) handleReplicaOp(f *Frame) *Frame {
	id := f.ID()
	add := f.Flags&FlagMaster != 0
	apply := func(node int32) {
		if add {
			n.reps.add(id, node)
		} else {
			n.reps.drop(id, node)
		}
	}
	if len(f.Payload) >= 4 {
		if add && stampNewer(n.invalStamp(id), uint64(f.Aux)) {
			return ackFrame()
		}
		for off := 0; off+4 <= len(f.Payload); off += 4 {
			apply(int32(binary.BigEndian.Uint32(f.Payload[off:])))
		}
	} else {
		apply(int32(f.Aux))
	}
	return ackFrame()
}

// dispatchEvicted routes one store eviction: displaced masters get their §3
// second chance (forwarding), displaced replicas are retired from their
// manager's set. Both run off the serving goroutine.
func (n *Node) dispatchEvicted(ev *Evicted) {
	if ev.Master {
		go n.forwardEvicted(ev)
	} else if ev.Replica {
		go n.retireReplica(ev.ID)
	}
}
