package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/obs"
)

// startClusterCfg is startCluster with a per-node Config hook, so run-path
// tests can flip NoRunReads, directory modes, or fault plans per cluster.
func startClusterCfg(t *testing.T, k, capacityBlocks int, sizes map[block.FileID]int64, mut func(i int, cfg *Config)) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		cfg := Config{
			ID:             i,
			CapacityBlocks: capacityBlocks,
			Policy:         core.PolicyMaster,
			Geometry:       testGeom,
			Source:         NewMemSource(testGeom, sizes),
			StaticHome:     true, // legacy placement tests assume f % k homes
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, client
}

// totalRPCs sums every round trip the cluster and client issued, read from
// the per-RPC-type latency histograms (each RPC is recorded exactly once,
// by its issuer).
func totalRPCs(nodes []*Node, client *Client) uint64 {
	var sum uint64
	count := func(m map[string]obs.HistogramData) {
		for _, d := range m {
			sum += d.Count
		}
	}
	for _, n := range nodes {
		count(n.Stats().RPCLatency)
	}
	count(client.RPCLatency())
	return sum
}

func TestPackRunAux(t *testing.T) {
	for _, count := range []int{0, 1, 7, maxRunBlocks} {
		for _, masters := range []uint32{0, 1, 0xAAAA, 0xFFFFFFFF} {
			c, m := unpackRunAux(packRunAux(count, masters))
			if c != count || m != masters {
				t.Errorf("packRunAux(%d, %#x) round-tripped to (%d, %#x)", count, masters, c, m)
			}
		}
	}
}

func TestIdxPayloadCodec(t *testing.T) {
	idxs := []int32{0, 1, 5, dirNoEntry, 1 << 20}
	p := appendIdxPayload(nil, idxs)
	got, err := decodeIdxPayload(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(idxs) {
		t.Fatalf("decoded %d idxs, want %d", len(got), len(idxs))
	}
	for i := range idxs {
		if got[i] != idxs[i] {
			t.Fatalf("idx %d: %d != %d", i, got[i], idxs[i])
		}
	}
	if _, err := decodeIdxPayload([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("ragged payload accepted")
	}
	if _, err := decodeIdxPayload(make([]byte, 4*(maxDirBatch+1)), nil); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestStoreGetRun(t *testing.T) {
	s := NewStore(16, core.PolicyMaster)
	mk := func(idx int32) []byte { return SyntheticBlock(1, idx, 64) }
	// Blocks 0,1,2 cached (1 a master), 3 missing, 4 cached.
	s.Insert(block.ID{File: 1, Idx: 0}, mk(0), false)
	s.Insert(block.ID{File: 1, Idx: 1}, mk(1), true)
	s.Insert(block.ID{File: 1, Idx: 2}, mk(2), false)
	s.Insert(block.ID{File: 1, Idx: 4}, mk(4), false)

	bufs, masters := s.GetRun(1, 0, 8, nil)
	if len(bufs) != 3 {
		t.Fatalf("served %d blocks, want 3 (stop at the gap)", len(bufs))
	}
	if masters != 0b010 {
		t.Fatalf("master mask %#b, want 0b010", masters)
	}
	for i, pb := range bufs {
		if !bytes.Equal(pb.data, mk(int32(i))) {
			t.Fatalf("run block %d payload mismatch", i)
		}
		pb.release()
	}
	// A run starting at the gap serves nothing.
	if bufs, _ := s.GetRun(1, 3, 8, nil); len(bufs) != 0 {
		t.Fatalf("gap start served %d blocks", len(bufs))
	}
}

// TestStoreGetRunPinsAcrossEviction is the zero-copy safety property: a run
// reference pinned before an eviction storm keeps its bytes intact even
// though the store has recycled the block's slot.
func TestStoreGetRunPinsAcrossEviction(t *testing.T) {
	s := NewStore(4, core.PolicyBasic)
	mk := func(f block.FileID, idx int32) []byte { return SyntheticBlock(f, idx, 64) }
	for i := int32(0); i < 4; i++ {
		s.Insert(block.ID{File: 1, Idx: i}, mk(1, i), false)
	}
	bufs, _ := s.GetRun(1, 0, 4, nil)
	if len(bufs) != 4 {
		t.Fatalf("served %d blocks, want 4", len(bufs))
	}
	// Evict everything the run points at.
	for i := int32(0); i < 4; i++ {
		if ev := s.Insert(block.ID{File: 2, Idx: i}, mk(2, i), false); ev != nil {
			ev.Release()
		}
	}
	for i, pb := range bufs {
		if !bytes.Equal(pb.data, mk(1, int32(i))) {
			t.Fatalf("pinned run block %d mutated by eviction", i)
		}
		pb.release()
	}
}

func TestStoreInsertRun(t *testing.T) {
	s := NewStore(4, core.PolicyBasic)
	mk := func(f block.FileID, idx int32) []byte { return SyntheticBlock(f, idx, 64) }
	// Pre-fill with old blocks of file 9 so the run insert must evict.
	s.Insert(block.ID{File: 9, Idx: 0}, mk(9, 0), true)
	s.Insert(block.ID{File: 9, Idx: 1}, mk(9, 1), false)

	blocks := []*payloadBuf{
		newPayloadBuf(mk(2, 3)), newPayloadBuf(mk(2, 4)),
		newPayloadBuf(mk(2, 5)), newPayloadBuf(mk(2, 6)),
	}
	evs := s.InsertRun(2, 3, blocks, true)
	if len(evs) != 2 {
		t.Fatalf("%d evictions, want 2", len(evs))
	}
	if !evs[0].Master || evs[0].ID != (block.ID{File: 9, Idx: 0}) {
		t.Fatalf("first eviction %+v, want the oldest (master 9:0)", evs[0])
	}
	if s.Len() != 4 {
		t.Fatalf("store holds %d blocks, want capacity 4", s.Len())
	}
	for i := int32(3); i <= 6; i++ {
		id := block.ID{File: 2, Idx: i}
		data, ok := s.Get(id)
		if !ok || !bytes.Equal(data, mk(2, i)) {
			t.Fatalf("run block %v missing or wrong after InsertRun", id)
		}
		if !s.IsMaster(id) {
			t.Fatalf("run block %v not installed as master", id)
		}
	}
}

// TestRunPathColdRPCCount pins the tentpole's headline: a cold multi-block
// file read through a non-home entry node must cost at least 4× fewer RPC
// round trips on the run path than per-block (the acceptance criterion; the
// actual ratio for a 64-block file is ~10×).
func TestRunPathColdRPCCount(t *testing.T) {
	const nblocks = 64
	sizes := map[block.FileID]int64{1: nblocks * int64(testGeom.Size)}

	measure := func(noRun bool) (uint64, Stats) {
		nodes, client := startClusterCfg(t, 4, 256, sizes, func(i int, cfg *Config) {
			cfg.NoRunReads = noRun
		})
		// Entry node 3, home node 1 (file 1 % 4), directory node 0: every
		// protocol message crosses the wire.
		data, err := client.ReadVia(3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, expect(testGeom, 1, sizes[1])) {
			t.Fatal("content mismatch")
		}
		st, err := client.ClusterStats()
		if err != nil {
			t.Fatal(err)
		}
		return totalRPCs(nodes, client), st
	}

	perBlock, pbStats := measure(true)
	run, runStats := measure(false)

	if pbStats.DiskReads != nblocks || runStats.DiskReads != nblocks {
		t.Fatalf("disk reads per-block=%d run=%d, want %d each (cold read)",
			pbStats.DiskReads, runStats.DiskReads, nblocks)
	}
	if runStats.Accesses != pbStats.Accesses || runStats.LocalHits != pbStats.LocalHits ||
		runStats.RemoteHits != pbStats.RemoteHits {
		t.Fatalf("counters diverged: run=%+v per-block=%+v", runStats, pbStats)
	}
	if runStats.RunsIssued == 0 {
		t.Fatal("run path issued no runs")
	}
	if runStats.RunsDegraded != 0 {
		t.Fatalf("healthy cluster degraded %d runs", runStats.RunsDegraded)
	}
	if run*4 > perBlock {
		t.Fatalf("run path used %d RPCs vs %d per-block: less than the required 4× reduction", run, perBlock)
	}
	t.Logf("cold %d-block read: %d RPCs per-block, %d on the run path (%.1fx)",
		nblocks, perBlock, run, float64(perBlock)/float64(run))
}

// TestRunPathWarmReadsStayLocal: after the cold read, a warm re-read from
// the same entry node must cost zero block RPCs — the synchronous local
// sweep covers the whole file.
func TestRunPathWarmRemoteRun(t *testing.T) {
	const nblocks = 12
	sizes := map[block.FileID]int64{1: nblocks * int64(testGeom.Size)}
	nodes, client := startClusterCfg(t, 2, 256, sizes, nil)

	// Warm node 1 (the home) by reading there; then node 0's read must pull
	// peer runs from node 1's cache: remote hits, not disk.
	if _, err := client.ReadVia(1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := client.ReadVia(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, expect(testGeom, 1, sizes[1])) {
		t.Fatal("content mismatch")
	}
	s0 := nodes[0].Stats()
	if s0.RemoteHits != nblocks {
		t.Fatalf("remote hits = %d, want %d (whole file served from peer runs)", s0.RemoteHits, nblocks)
	}
	if s0.RunsIssued == 0 {
		t.Fatal("peer fetch did not use the run path")
	}
	st, _ := client.ClusterStats()
	if st.DiskReads != nblocks {
		t.Fatalf("disk reads = %d, want %d (no refetch)", st.DiskReads, nblocks)
	}
	// The §3 master rule is preserved: exactly one master per block.
	for i := int32(0); i < nblocks; i++ {
		id := block.ID{File: 1, Idx: i}
		masters := 0
		for _, n := range nodes {
			if n.store.IsMaster(id) {
				masters++
			}
		}
		if masters != 1 {
			t.Fatalf("block %v has %d masters, want 1", id, masters)
		}
	}
}

// TestRunPathPartialRunFallsBack: a peer run that can only serve a prefix
// (gap in the peer's cache) is completed per-block, not failed.
func TestRunPathPartialRunFallsBack(t *testing.T) {
	const nblocks = 8
	sizes := map[block.FileID]int64{1: nblocks * int64(testGeom.Size)}
	nodes, client := startClusterCfg(t, 2, 256, sizes, nil)

	// Warm the home (node 1), then punch a hole in its cache so node 0's
	// run request hits a gap mid-run.
	if _, err := client.ReadVia(1, 1); err != nil {
		t.Fatal(err)
	}
	nodes[1].store.Remove(block.ID{File: 1, Idx: 3})

	data, err := client.ReadVia(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, expect(testGeom, 1, sizes[1])) {
		t.Fatal("content mismatch after degraded run")
	}
	s0 := nodes[0].Stats()
	if s0.RunsDegraded == 0 {
		t.Fatal("the holed run was not counted as degraded")
	}
	// Every block was still served: 7 from the peer's memory, the removed
	// one from disk via its home.
	if s0.RemoteHits+s0.DiskReads+s0.LocalHits != nblocks {
		t.Fatalf("served %d blocks, want %d: %+v", s0.RemoteHits+s0.DiskReads+s0.LocalHits, nblocks, s0)
	}
}

// TestReadRangeRunEquivalence is the satellite regression test: ranged
// reads must be byte-identical on the run and per-block paths at
// block-boundary and mid-block offsets, including the presized-buffer
// rewrite's edge cases (unaligned head, clipped tail, short last block).
func TestReadRangeRunEquivalence(t *testing.T) {
	bs := int64(testGeom.Size)
	size := 6*bs + 100 // short last block
	sizes := map[block.FileID]int64{0: size, 1: size}
	full := expect(testGeom, 0, size)

	cases := []struct {
		off    int64
		length int
	}{
		{0, int(size)},              // whole file
		{0, int(bs)},                // first block exactly
		{bs, int(2 * bs)},           // block-boundary start and end
		{bs + 7, int(bs)},           // mid-block start, mid-block end
		{3*bs - 1, 2},               // straddles a boundary by one byte
		{5, 3},                      // tiny range inside block 0
		{6 * bs, 100},               // exactly the short last block
		{6*bs + 40, 1000},           // clipped by EOF
		{size, 10},                  // at EOF: empty
		{2*bs + 13, int(3*bs + 50)}, // long unaligned range over several blocks
	}

	for _, noRun := range []bool{false, true} {
		nodes, _ := startClusterCfg(t, 2, 256, sizes, func(i int, cfg *Config) {
			cfg.NoRunReads = noRun
		})
		for _, c := range cases {
			got, err := nodes[0].ReadRange(0, c.off, c.length)
			if err != nil {
				t.Fatalf("noRun=%v ReadRange(%d, %d): %v", noRun, c.off, c.length, err)
			}
			end := c.off + int64(c.length)
			if end > size {
				end = size
			}
			if c.off > size {
				end = c.off
			}
			if !bytes.Equal(got, full[min64(c.off, size):end]) {
				t.Fatalf("noRun=%v ReadRange(%d, %d): %d bytes diverged", noRun, c.off, c.length, len(got))
			}
			// Warm repeat must agree byte for byte with the cold read.
			again, err := nodes[0].ReadRange(0, c.off, c.length)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, again) {
				t.Fatalf("noRun=%v ReadRange(%d, %d): warm read diverged from cold", noRun, c.off, c.length)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestReadaheadCoalesces: concurrent misses on one file must not stack
// readahead sweeps — the per-file slot admits one at a time.
func TestReadaheadCoalesces(t *testing.T) {
	sizes := map[block.FileID]int64{0: 64 * int64(testGeom.Size)}
	nodes, _ := startClusterCfg(t, 1, 256, sizes, func(i int, cfg *Config) {
		cfg.Readahead = 4
	})
	n := nodes[0]
	if !n.raBegin(0) {
		t.Fatal("first readahead claim refused")
	}
	if n.raBegin(0) {
		t.Fatal("second in-flight readahead admitted for the same file")
	}
	if !n.raBegin(1) {
		t.Fatal("a different file's readahead blocked")
	}
	n.raEnd(0)
	if !n.raBegin(0) {
		t.Fatal("readahead slot not released")
	}
}

// TestGetRunRequestValidation: the server rejects nonsense run counts
// instead of serving unbounded work.
func TestGetRunRequestValidation(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4 * int64(testGeom.Size)}
	nodes, _ := startClusterCfg(t, 1, 16, sizes, nil)
	for _, count := range []int{0, maxRunBlocks + 1} {
		req := &Frame{Type: MsgGetRun, File: 0, Idx: 0, Aux: packRunAux(count, 0), Sender: -1}
		resp := nodes[0].handleGetRun(req)
		if resp.Type != MsgErr {
			t.Fatalf("run count %d accepted (reply type %d)", count, resp.Type)
		}
		releaseFrame(resp)
	}
}
