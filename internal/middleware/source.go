package middleware

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/block"
)

// ErrUnknownFile marks a request for a file no source in the cluster can
// serve. Sources wrap it so serving layers can distinguish "does not exist"
// (a client error) from transport faults; the wire protocol carries the
// distinction across nodes via FlagNotFound, so errors.Is(err,
// ErrUnknownFile) holds on the client side too.
var ErrUnknownFile = errors.New("unknown file")

// IsNotFound reports whether err — local or relayed over the wire —
// identifies a file unknown to the cluster.
func IsNotFound(err error) bool { return errors.Is(err, ErrUnknownFile) }

// BlockSource is a node's backing store: the "disk" holding the files whose
// home this node is. The simulator models it; the live middleware reads it.
type BlockSource interface {
	// FileSize reports the size of file f, or an error if unknown.
	FileSize(f block.FileID) (int64, error)
	// ReadBlock returns the content of block (f, idx); short for the final
	// block of a file.
	ReadBlock(f block.FileID, idx int32) ([]byte, error)
	// WriteBlock persists content for block (f, idx), extending the file
	// if needed. Sources backing read-only deployments may return an error.
	WriteBlock(f block.FileID, idx int32, data []byte) error
}

// MemSource is an in-memory BlockSource with deterministic synthetic
// content, used by tests, benchmarks, and the quickstart example. Content
// is a function of (file, offset) so any node can verify integrity.
type MemSource struct {
	geom  block.Geometry
	mu    sync.RWMutex
	sizes map[block.FileID]int64
	// overrides holds blocks modified by WriteBlock.
	overrides map[block.ID][]byte
}

// NewMemSource builds a synthetic source with the given file sizes.
func NewMemSource(geom block.Geometry, sizes map[block.FileID]int64) *MemSource {
	cp := make(map[block.FileID]int64, len(sizes))
	for f, s := range sizes {
		cp[f] = s
	}
	return &MemSource{geom: geom, sizes: cp, overrides: make(map[block.ID][]byte)}
}

// FileSize implements BlockSource.
func (m *MemSource) FileSize(f block.FileID) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	size, ok := m.sizes[f]
	if !ok {
		return 0, fmt.Errorf("middleware: %w %d", ErrUnknownFile, f)
	}
	return size, nil
}

// Files implements FileLister: the file IDs this source can serve.
func (m *MemSource) Files() []block.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]block.FileID, 0, len(m.sizes))
	for f := range m.sizes {
		out = append(out, f)
	}
	return out
}

// SyntheticBlock is the deterministic content of block (f, idx) of the
// given length: a keyed byte pattern any reader can recompute.
func SyntheticBlock(f block.FileID, idx int32, n int) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%d", f, idx)
	seed := h.Sum64()
	out := make([]byte, n)
	state := seed
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = byte(state >> 56)
	}
	return out
}

// ReadBlock implements BlockSource.
func (m *MemSource) ReadBlock(f block.FileID, idx int32) ([]byte, error) {
	size, err := m.FileSize(f)
	if err != nil {
		return nil, err
	}
	n := blockLen(m.geom, size, idx)
	if n < 0 {
		return nil, fmt.Errorf("middleware: block %d:%d out of range", f, idx)
	}
	m.mu.RLock()
	ov, ok := m.overrides[block.ID{File: f, Idx: idx}]
	m.mu.RUnlock()
	if ok {
		out := make([]byte, len(ov))
		copy(out, ov)
		return out, nil
	}
	return SyntheticBlock(f, idx, n), nil
}

// WriteBlock implements BlockSource.
func (m *MemSource) WriteBlock(f block.FileID, idx int32, data []byte) error {
	if _, err := m.FileSize(f); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.overrides[block.ID{File: f, Idx: idx}] = cp
	m.mu.Unlock()
	return nil
}

// blockLen reports the length of block idx of a file of size bytes, or -1
// if out of range.
func blockLen(geom block.Geometry, size int64, idx int32) int {
	if idx < 0 || idx >= geom.Count(size) {
		return -1
	}
	start := int64(idx) * int64(geom.Size)
	n := size - start
	if n > int64(geom.Size) {
		n = int64(geom.Size)
	}
	if n < 0 {
		n = 0
	}
	return int(n)
}

// DirSource serves files from a directory on the local filesystem: file f
// is <dir>/<name[f]>. It is the deployment-shaped source for the examples.
type DirSource struct {
	geom  block.Geometry
	dir   string
	mu    sync.RWMutex
	names map[block.FileID]string
}

// NewDirSource builds a filesystem-backed source. names maps file IDs to
// paths relative to dir.
func NewDirSource(geom block.Geometry, dir string, names map[block.FileID]string) *DirSource {
	cp := make(map[block.FileID]string, len(names))
	for f, n := range names {
		cp[f] = n
	}
	return &DirSource{geom: geom, dir: dir, names: cp}
}

func (d *DirSource) path(f block.FileID) (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	name, ok := d.names[f]
	if !ok {
		return "", fmt.Errorf("middleware: %w %d", ErrUnknownFile, f)
	}
	return filepath.Join(d.dir, name), nil
}

// Files implements FileLister: the file IDs this source can serve.
func (d *DirSource) Files() []block.FileID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]block.FileID, 0, len(d.names))
	for f := range d.names {
		out = append(out, f)
	}
	return out
}

// FileSize implements BlockSource.
func (d *DirSource) FileSize(f block.FileID) (int64, error) {
	p, err := d.path(f)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadBlock implements BlockSource.
func (d *DirSource) ReadBlock(f block.FileID, idx int32) ([]byte, error) {
	p, err := d.path(f)
	if err != nil {
		return nil, err
	}
	size, err := d.FileSize(f)
	if err != nil {
		return nil, err
	}
	n := blockLen(d.geom, size, idx)
	if n < 0 {
		return nil, fmt.Errorf("middleware: block %d:%d out of range", f, idx)
	}
	fh, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	buf := make([]byte, n)
	if _, err := fh.ReadAt(buf, int64(idx)*int64(d.geom.Size)); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteBlock implements BlockSource.
func (d *DirSource) WriteBlock(f block.FileID, idx int32, data []byte) error {
	p, err := d.path(f)
	if err != nil {
		return err
	}
	fh, err := os.OpenFile(p, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer fh.Close()
	_, err = fh.WriteAt(data, int64(idx)*int64(d.geom.Size))
	return err
}
