// Package middleware is a working TCP implementation of the cooperative
// caching layer the paper simulates: N nodes on a LAN (or one machine) pool
// their memories into a single block cache with master-copy tracking, a
// global directory, eviction forwarding, and the master-preserving
// replacement policy. It also implements the paper's §6 future work: a
// hint-based directory mode and a write(-invalidate) protocol.
//
// The wire protocol is deliberately small: length-prefixed binary frames
// over long-lived TCP connections, with request/response correlation IDs so
// many operations multiplex over one connection. Every frame piggybacks the
// sender's oldest-block age, giving each node the peer-age knowledge the
// replacement algorithm needs (§3) without dedicated traffic — the same
// trick Sarkar & Hartman use for hints.
package middleware

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/block"
)

// MsgType identifies a frame.
type MsgType uint8

// Frame types.
const (
	// MsgGetBlock asks a node for one block. Flags carry wantMaster for
	// home reads.
	MsgGetBlock MsgType = iota + 1
	// MsgBlockData returns block content; Flags carry isMaster.
	MsgBlockData
	// MsgBlockMiss reports the block is not available at the target.
	MsgBlockMiss
	// MsgReadFile asks a node to return a whole file (client entry point).
	MsgReadFile
	// MsgFileData returns whole-file content.
	MsgFileData
	// MsgDirLookup/MsgDirResult/MsgDirUpdate/MsgDirDrop are the central
	// directory RPCs.
	MsgDirLookup
	MsgDirResult
	MsgDirUpdate
	MsgDirDrop
	// MsgForward ships an evicted master to a peer (§3 second chance).
	MsgForward
	// MsgForwardAck acknowledges a forward (accepted or dropped).
	MsgForwardAck
	// MsgWriteBlock writes one block through the cluster (client entry).
	MsgWriteBlock
	// MsgInvalidate discards any cached copy of a block (write protocol).
	MsgInvalidate
	// MsgPutBlock stores block content on the home node's disk.
	MsgPutBlock
	// MsgAck is a generic success reply.
	MsgAck
	// MsgErr carries an error string.
	MsgErr
	// MsgStats asks a node for its counters (introspection).
	MsgStats
	// MsgStatsReply returns encoded Stats.
	MsgStatsReply
	// MsgReadRange asks a node for a byte range of a file: Aux packs the
	// offset (high 40 bits) and length (low 24 bits) via packRange.
	MsgReadRange
)

// packRange encodes a byte range into an Aux value (offset < 2^39,
// length < 2^24 — a 16 MB range cap, far above any sensible request).
func packRange(off int64, n int) int64 {
	return off<<24 | int64(n)
}

// unpackRange decodes packRange.
func unpackRange(aux int64) (off int64, n int) {
	return aux >> 24, int(aux & (1<<24 - 1))
}

// maxRangeLen bounds one MsgReadRange request.
const maxRangeLen = 1<<24 - 1

// Flag bits for Frame.Flags.
const (
	// FlagMaster marks block data as the master copy / requests a master.
	FlagMaster uint8 = 1 << iota
	// FlagForce, on a home read, demands a disk read even when the home
	// holds a hint pointing elsewhere (breaks probable-owner redirect
	// loops in hint mode).
	FlagForce
)

// HintDelta is one piggybacked directory update: "the master of this block
// is (believed to be) at Node". Frames carry a few recent deltas so
// location knowledge spreads on existing traffic, as in Sarkar & Hartman's
// hint-based cooperative caching.
type HintDelta struct {
	File block.FileID
	Idx  int32
	Node int32
}

// maxHintDeltas bounds the deltas piggybacked per frame.
const maxHintDeltas = 8

// Frame is one protocol message.
type Frame struct {
	Type  MsgType
	Flags uint8
	// Req correlates responses to requests on a multiplexed connection.
	Req uint32
	// Sender is the node ID of the sender (-1 for clients).
	Sender int32
	// OldestAge piggybacks the sender's oldest cached block age in unix
	// nanoseconds (math.MaxInt64 when its cache is empty or it is a client).
	OldestAge int64
	// File and Idx identify the block (or file, with Idx unused).
	File block.FileID
	Idx  int32
	// Aux carries a message-specific integer (directory node, block age...).
	Aux int64
	// Hints are piggybacked directory deltas (hint mode only; ≤
	// maxHintDeltas).
	Hints []HintDelta
	// Payload is the block/file content or error text.
	Payload []byte
}

// header layout: type(1) flags(1) req(4) sender(4) oldest(8) file(4) idx(4)
// aux(8) nhints(1) plen(4) = 39 bytes; hint deltas (12 bytes each) follow
// the header, then the payload.
const headerLen = 39

// maxPayload bounds a frame payload (64 MB covers any file in the traces).
const maxPayload = 64 << 20

// WriteFrame encodes f to w.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > maxPayload {
		return fmt.Errorf("middleware: payload %d exceeds limit", len(f.Payload))
	}
	if len(f.Hints) > maxHintDeltas {
		return fmt.Errorf("middleware: %d hint deltas exceed limit %d", len(f.Hints), maxHintDeltas)
	}
	var hdr [headerLen]byte
	hdr[0] = byte(f.Type)
	hdr[1] = f.Flags
	binary.BigEndian.PutUint32(hdr[2:], f.Req)
	binary.BigEndian.PutUint32(hdr[6:], uint32(f.Sender))
	binary.BigEndian.PutUint64(hdr[10:], uint64(f.OldestAge))
	binary.BigEndian.PutUint32(hdr[18:], uint32(f.File))
	binary.BigEndian.PutUint32(hdr[22:], uint32(f.Idx))
	binary.BigEndian.PutUint64(hdr[26:], uint64(f.Aux))
	hdr[34] = byte(len(f.Hints))
	binary.BigEndian.PutUint32(hdr[35:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Hints) > 0 {
		deltas := make([]byte, 12*len(f.Hints))
		for i, h := range f.Hints {
			binary.BigEndian.PutUint32(deltas[12*i:], uint32(h.File))
			binary.BigEndian.PutUint32(deltas[12*i+4:], uint32(h.Idx))
			binary.BigEndian.PutUint32(deltas[12*i+8:], uint32(h.Node))
		}
		if _, err := w.Write(deltas); err != nil {
			return err
		}
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame decodes one frame from r.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := &Frame{
		Type:      MsgType(hdr[0]),
		Flags:     hdr[1],
		Req:       binary.BigEndian.Uint32(hdr[2:]),
		Sender:    int32(binary.BigEndian.Uint32(hdr[6:])),
		OldestAge: int64(binary.BigEndian.Uint64(hdr[10:])),
		File:      block.FileID(binary.BigEndian.Uint32(hdr[18:])),
		Idx:       int32(binary.BigEndian.Uint32(hdr[22:])),
		Aux:       int64(binary.BigEndian.Uint64(hdr[26:])),
	}
	nhints := int(hdr[34])
	plen := binary.BigEndian.Uint32(hdr[35:])
	if nhints > maxHintDeltas {
		return nil, fmt.Errorf("middleware: frame carries %d hint deltas", nhints)
	}
	if plen > maxPayload {
		return nil, fmt.Errorf("middleware: frame payload %d exceeds limit", plen)
	}
	if nhints > 0 {
		deltas := make([]byte, 12*nhints)
		if _, err := io.ReadFull(r, deltas); err != nil {
			return nil, err
		}
		f.Hints = make([]HintDelta, nhints)
		for i := range f.Hints {
			f.Hints[i] = HintDelta{
				File: block.FileID(binary.BigEndian.Uint32(deltas[12*i:])),
				Idx:  int32(binary.BigEndian.Uint32(deltas[12*i+4:])),
				Node: int32(binary.BigEndian.Uint32(deltas[12*i+8:])),
			}
		}
	}
	if plen > 0 {
		f.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ID returns the block identifier of the frame.
func (f *Frame) ID() block.ID { return block.ID{File: f.File, Idx: f.Idx} }

// Err extracts the error of a MsgErr frame.
func (f *Frame) Err() error {
	if f.Type != MsgErr {
		return nil
	}
	return fmt.Errorf("middleware: remote error: %s", f.Payload)
}
