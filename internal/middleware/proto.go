// Package middleware is a working TCP implementation of the cooperative
// caching layer the paper simulates: N nodes on a LAN (or one machine) pool
// their memories into a single block cache with master-copy tracking, a
// global directory, eviction forwarding, and the master-preserving
// replacement policy. It also implements the paper's §6 future work: a
// hint-based directory mode and a write(-invalidate) protocol.
//
// The wire protocol is deliberately small: length-prefixed binary frames
// over long-lived TCP connections, with request/response correlation IDs so
// many operations multiplex over one connection. Every frame piggybacks the
// sender's oldest-block age, giving each node the peer-age knowledge the
// replacement algorithm needs (§3) without dedicated traffic — the same
// trick Sarkar & Hartman use for hints.
//
// The codec is allocation-light: Frame structs and payload buffers are
// recycled through size-classed pools, and a frame is encoded into a single
// contiguous buffer so the writer issues one socket write (or one writev
// for large payloads) instead of one per section. See conn.go for the
// ownership contract.
package middleware

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/block"
)

// MsgType identifies a frame.
type MsgType uint8

// Frame types.
const (
	// MsgGetBlock asks a node for one block. Flags carry wantMaster for
	// home reads.
	MsgGetBlock MsgType = iota + 1
	// MsgBlockData returns block content; Flags carry isMaster.
	MsgBlockData
	// MsgBlockMiss reports the block is not available at the target.
	MsgBlockMiss
	// MsgReadFile asks a node to return a whole file (client entry point).
	MsgReadFile
	// MsgFileData returns whole-file content.
	MsgFileData
	// MsgDirLookup/MsgDirResult/MsgDirUpdate/MsgDirDrop are the central
	// directory RPCs.
	MsgDirLookup
	MsgDirResult
	MsgDirUpdate
	MsgDirDrop
	// MsgForward ships an evicted master to a peer (§3 second chance).
	MsgForward
	// MsgForwardAck acknowledges a forward (accepted or dropped).
	MsgForwardAck
	// MsgWriteBlock writes one block through the cluster (client entry).
	MsgWriteBlock
	// MsgInvalidate discards any cached copy of a block (write protocol).
	MsgInvalidate
	// MsgPutBlock stores block content on the home node's disk.
	MsgPutBlock
	// MsgAck is a generic success reply.
	MsgAck
	// MsgErr carries an error string.
	MsgErr
	// MsgStats asks a node for its counters (introspection).
	MsgStats
	// MsgStatsReply returns encoded Stats.
	MsgStatsReply
	// MsgReadRange asks a node for a byte range of a file: Aux packs the
	// offset (high 39 bits) and length (low 24 bits) via packRange.
	MsgReadRange
	// MsgTrace asks a node for its protocol event trace (observability).
	MsgTrace
	// MsgTraceReply returns the JSON-encoded trace dump.
	MsgTraceReply
	// MsgGetRun asks for a contiguous run of blocks starting at (File, Idx):
	// Aux is the requested block count, Flags carry FlagMaster for home
	// (disk) run reads. The target serves the longest contiguous prefix it
	// holds and stops at the first gap — a partial answer is valid, never an
	// error (the requester falls back to per-block fetches for the rest).
	MsgGetRun
	// MsgRunData answers MsgGetRun: the payload is the served blocks'
	// content concatenated in index order, Aux packs the served count and
	// the per-block master flags (packRunAux).
	MsgRunData
	// MsgDirLookupN resolves a window of directory entries in one RPC: the
	// payload is the block indices (4 bytes each, big-endian) of File.
	MsgDirLookupN
	// MsgDirResultN answers MsgDirLookupN: the payload is one 4-byte node ID
	// per requested index (same order), dirNoEntry for absent entries.
	MsgDirResultN
	// MsgDirUpdateN records mastership of a window of blocks in one RPC:
	// payload as in MsgDirLookupN, Aux is the claiming node.
	MsgDirUpdateN
	// MsgReplicate proactively pushes a copy of a hot block to a peer
	// (adaptive replication): the payload is the block content. The
	// receiver installs it as a replica (bypassing admission — the pusher
	// already knows it is hot) and acks with Flags=1 on acceptance.
	MsgReplicate
	// MsgReplicaOp maintains the replica set of a block at its directory
	// manager: Aux names the replica-holding node — or, when a payload is
	// present, it carries a whole push round's holders (4 bytes big-endian
	// each), one registration RPC per round instead of per copy.
	// Flags&FlagMaster set means "add", clear means "drop". Replies MsgAck.
	MsgReplicaOp
	// MsgRepush asks a block's (new) master holder to push replica copies
	// now: sent by the directory manager when a mastership claim lands for
	// a block whose replica set a write invalidation just tore down, so a
	// written-to hot block re-replicates without waiting for its serve rate
	// to re-cross the threshold. Replies MsgAck; best effort.
	MsgRepush
	// MsgInvalidateN carries a batch of sequenced invalidation records from
	// the origin node's invalidation bus: the payload is the first record's
	// sequence number (8 bytes big-endian) followed by one 8-byte block ID
	// (file, idx — 4 bytes each) per record; Aux is the last sequence in the
	// batch (consecutive — coalesced records keep their sequence slots).
	// The receiver replies MsgAck with Aux carrying its applied high-water
	// mark for that origin.
	MsgInvalidateN
	// MsgInvalSince asks an origin node to resend the invalidation records
	// from sequence Aux onward (catch-up after a detected gap or a healed
	// partition). Answered by MsgInvalSinceReply.
	MsgInvalSince
	// MsgInvalSinceReply answers MsgInvalSince with the same payload layout
	// as MsgInvalidateN; Aux is the last sequence the reply covers. Flags=1
	// means the requested range fell off the origin's bounded history — the
	// requester must treat its whole cache as suspect and flush.
	MsgInvalSinceReply
	// MsgPing is the heartbeat probe. Aux carries the sender's membership
	// epoch; the MsgAck reply carries the receiver's, so either side learns
	// it is behind and fetches the newer view (anti-entropy).
	MsgPing
	// MsgView asks a node for its current membership view, answered by
	// MsgViewReply. Clients use it to re-discover entry nodes after their
	// construction-time list goes stale.
	MsgView
	// MsgViewUpdate pushes a membership view (payload: see appendView) to a
	// peer, which installs it if newer. Answered by MsgAck.
	MsgViewUpdate
	// MsgJoin asks the cluster to admit a new member. Aux is the joiner's
	// requested slot ID, the payload its listen address. Any member accepts
	// the frame and forwards it to the coordinator; the MsgViewReply carries
	// the view that includes the joiner.
	MsgJoin
	// MsgDrain asks the cluster to move member Aux out of the ring
	// (state draining: it keeps serving while successors pull its blocks).
	// Forwarded to the coordinator like MsgJoin; answered by MsgViewReply.
	MsgDrain
	// MsgViewReply answers MsgView/MsgJoin/MsgDrain with a serialized view.
	MsgViewReply
)

// msgTypeCount bounds the frame-type space (array sizing for per-type
// metrics).
const msgTypeCount = int(MsgViewReply) + 1

// metricName is the snake_case label value a frame type gets in the
// per-RPC-type latency histograms and the trace dump.
func (t MsgType) metricName() string {
	switch t {
	case MsgGetBlock:
		return "get_block"
	case MsgBlockData:
		return "block_data"
	case MsgBlockMiss:
		return "block_miss"
	case MsgReadFile:
		return "read_file"
	case MsgFileData:
		return "file_data"
	case MsgDirLookup:
		return "dir_lookup"
	case MsgDirResult:
		return "dir_result"
	case MsgDirUpdate:
		return "dir_update"
	case MsgDirDrop:
		return "dir_drop"
	case MsgForward:
		return "forward"
	case MsgForwardAck:
		return "forward_ack"
	case MsgWriteBlock:
		return "write_block"
	case MsgInvalidate:
		return "invalidate"
	case MsgPutBlock:
		return "put_block"
	case MsgAck:
		return "ack"
	case MsgErr:
		return "err"
	case MsgStats:
		return "stats"
	case MsgStatsReply:
		return "stats_reply"
	case MsgReadRange:
		return "read_range"
	case MsgTrace:
		return "trace"
	case MsgTraceReply:
		return "trace_reply"
	case MsgGetRun:
		return "get_run"
	case MsgRunData:
		return "run_data"
	case MsgDirLookupN:
		return "dir_lookup_n"
	case MsgDirResultN:
		return "dir_result_n"
	case MsgDirUpdateN:
		return "dir_update_n"
	case MsgReplicate:
		return "replicate"
	case MsgReplicaOp:
		return "replica_op"
	case MsgRepush:
		return "repush"
	case MsgInvalidateN:
		return "invalidate_n"
	case MsgInvalSince:
		return "inval_since"
	case MsgInvalSinceReply:
		return "inval_since_reply"
	case MsgPing:
		return "ping"
	case MsgView:
		return "view"
	case MsgViewUpdate:
		return "view_update"
	case MsgJoin:
		return "join"
	case MsgDrain:
		return "drain"
	case MsgViewReply:
		return "view_reply"
	}
	return fmt.Sprintf("type_%d", uint8(t))
}

// packRange encodes a byte range into an Aux value: the offset in the high
// 39 value bits of the int64 (offset < 2^39, a 512 GB file cap) and the
// length in the low 24 bits (length < 2^24, a 16 MB range cap, far above
// any sensible request).
func packRange(off int64, n int) int64 {
	return off<<24 | int64(n)
}

// unpackRange decodes packRange.
func unpackRange(aux int64) (off int64, n int) {
	return aux >> 24, int(aux & (1<<24 - 1))
}

// maxRangeLen bounds one MsgReadRange request.
const maxRangeLen = 1<<24 - 1

// maxRunBlocks bounds one MsgGetRun request: the packRunAux layout grants
// the per-block master flags 32 bits, and 32 blocks of the default 8 KB
// geometry is a 256 KB response — four of the paper's pipelined-fetch extent
// windows, far past where per-run amortization has flattened.
const maxRunBlocks = 32

// maxDirBatch bounds one MsgDirLookupN/MsgDirUpdateN window (a 1 KB index
// payload; a read planner never needs more than its file's block count).
const maxDirBatch = 256

// dirNoEntry is the MsgDirResultN node value for "no directory entry".
const dirNoEntry = int32(-1)

// packRunAux encodes a MsgRunData Aux: the served block count in the low 32
// bits and the per-block master flags (bit i = block start+i is served as a
// master copy) in the high 32.
func packRunAux(count int, masters uint32) int64 {
	return int64(uint32(count)) | int64(masters)<<32
}

// unpackRunAux decodes packRunAux.
func unpackRunAux(aux int64) (count int, masters uint32) {
	return int(uint32(aux)), uint32(uint64(aux) >> 32)
}

// appendIdxPayload encodes a window of block indices as a MsgDirLookupN /
// MsgDirUpdateN payload (4 bytes each, big-endian).
func appendIdxPayload(buf []byte, idxs []int32) []byte {
	for _, i := range idxs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
	}
	return buf
}

// decodeIdxPayload decodes an appendIdxPayload buffer into out (reused when
// capacity allows). A ragged length is a protocol error.
func decodeIdxPayload(p []byte, out []int32) ([]int32, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("middleware: ragged %d-byte index payload", len(p))
	}
	n := len(p) / 4
	if n > maxDirBatch {
		return nil, fmt.Errorf("middleware: directory batch of %d exceeds limit %d", n, maxDirBatch)
	}
	out = out[:0]
	for i := 0; i < n; i++ {
		out = append(out, int32(binary.BigEndian.Uint32(p[4*i:])))
	}
	return out, nil
}

// maxInvalBatch bounds one MsgInvalidateN / MsgInvalSinceReply batch (a
// 4 KB record payload; big enough to drain a deep backlog in a few frames,
// small enough that one frame never monopolizes a connection).
const maxInvalBatch = 512

// appendInvalPayload encodes an invalidation batch: the first record's
// sequence number, then one 8-byte block ID per record (sequences are
// consecutive from firstSeq).
func appendInvalPayload(buf []byte, firstSeq uint64, recs []block.ID) []byte {
	buf = binary.BigEndian.AppendUint64(buf, firstSeq)
	for _, id := range recs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(id.File))
		buf = binary.BigEndian.AppendUint32(buf, uint32(id.Idx))
	}
	return buf
}

// decodeInvalPayload decodes an appendInvalPayload buffer, appending the
// block IDs to out (reused when capacity allows). Ragged or oversized
// payloads are protocol errors.
func decodeInvalPayload(p []byte, out []block.ID) (uint64, []block.ID, error) {
	if len(p) < 8 || (len(p)-8)%8 != 0 {
		return 0, nil, fmt.Errorf("middleware: ragged %d-byte invalidation payload", len(p))
	}
	n := (len(p) - 8) / 8
	if n > maxInvalBatch {
		return 0, nil, fmt.Errorf("middleware: invalidation batch of %d exceeds limit %d", n, maxInvalBatch)
	}
	firstSeq := binary.BigEndian.Uint64(p)
	out = out[:0]
	for i := 0; i < n; i++ {
		out = append(out, block.ID{
			File: block.FileID(binary.BigEndian.Uint32(p[8+8*i:])),
			Idx:  int32(binary.BigEndian.Uint32(p[12+8*i:])),
		})
	}
	return firstSeq, out, nil
}

// Flag bits for Frame.Flags.
const (
	// FlagMaster marks block data as the master copy / requests a master.
	FlagMaster uint8 = 1 << iota
	// FlagForce, on a home read, demands a disk read even when the home
	// holds a hint pointing elsewhere (breaks probable-owner redirect
	// loops in hint mode).
	FlagForce
	// FlagNotFound, on a MsgErr reply, marks the failure as "file unknown
	// to the cluster" so clients can classify it (ErrUnknownFile) instead
	// of treating every remote error alike.
	FlagNotFound
)

// HintDelta is one piggybacked directory update: "the master of this block
// is (believed to be) at Node". Frames carry a few recent deltas so
// location knowledge spreads on existing traffic, as in Sarkar & Hartman's
// hint-based cooperative caching.
type HintDelta struct {
	File block.FileID
	Idx  int32
	Node int32
}

// maxHintDeltas bounds the deltas piggybacked per frame.
const maxHintDeltas = 8

// Frame is one protocol message.
type Frame struct {
	Type  MsgType
	Flags uint8
	// Req correlates responses to requests on a multiplexed connection.
	Req uint32
	// Sender is the node ID of the sender (-1 for clients).
	Sender int32
	// OldestAge piggybacks the sender's oldest cached block age in unix
	// nanoseconds (math.MaxInt64 when its cache is empty or it is a client).
	OldestAge int64
	// File and Idx identify the block (or file, with Idx unused).
	File block.FileID
	Idx  int32
	// Aux carries a message-specific integer (directory node, block age...).
	Aux int64
	// Hints are piggybacked directory deltas (hint mode only; ≤
	// maxHintDeltas). For pooled frames Hints aliases hintArr, so it is
	// only valid until the frame is released.
	Hints []HintDelta
	// Payload is the block/file content or error text. For frames decoded
	// from the wire it is backed by a pooled buffer: use TakePayload to
	// keep the bytes past releaseFrame.
	Payload []byte
	// Segs are extra payload segments written to the wire after Payload,
	// in order. The wire format is unchanged — the receiver sees one
	// contiguous payload of length len(Payload)+Σlen(Segs[i]) — but the
	// sender never concatenates them: the writer hands header + Payload +
	// every segment to one writev. Serving paths point Segs at pinned
	// store buffers (see pin), so a run reply ships N cached blocks with
	// zero copies. Outgoing frames only; the decoder always produces a
	// contiguous Payload.
	Segs [][]byte

	// hintArr provides allocation-free backing for Hints on decode and
	// stamp.
	hintArr [maxHintDeltas]HintDelta
	// pbuf, when non-nil, is the pooled buffer backing Payload; it returns
	// to its size-class pool on releaseFrame.
	pbuf *[]byte
	// bufs are payload references pinned to this frame (Payload or Segs
	// alias their bytes); releaseFrame drops them after the socket write.
	bufs []*payloadBuf
	// bufArr backs bufs allocation-free for the single-block serve path.
	bufArr [2]*payloadBuf
}

// pin ties a pinned payload reference to the frame: the reference is
// released when the frame is (after the reply hits the socket), which is
// what keeps store eviction from recycling bytes under an in-flight reply.
func (f *Frame) pin(pb *payloadBuf) {
	if f.bufs == nil {
		f.bufs = f.bufArr[:0]
	}
	f.bufs = append(f.bufs, pb)
}

// payloadLen is the total payload length on the wire: Payload plus every
// scatter-gather segment.
func (f *Frame) payloadLen() int {
	n := len(f.Payload)
	for _, s := range f.Segs {
		n += len(s)
	}
	return n
}

// header layout: type(1) flags(1) req(4) sender(4) oldest(8) file(4) idx(4)
// aux(8) nhints(1) plen(4) = 39 bytes; hint deltas (12 bytes each) follow
// the header, then the payload.
const headerLen = 39

// maxPayload bounds a frame payload (64 MB covers any file in the traces).
// It is the write-side cap and the read-side default; conns can lower the
// read-side limit (Config.MaxPayload).
const maxPayload = 64 << 20

// typeCarriesPayload reports whether t is allowed a non-empty payload. The
// decoder rejects payloads on the other types, so a malformed or hostile
// peer cannot force large allocations through, say, a MsgGetBlock.
func typeCarriesPayload(t MsgType) bool {
	switch t {
	case MsgBlockData, MsgFileData, MsgForward, MsgWriteBlock, MsgPutBlock,
		MsgErr, MsgStatsReply, MsgTraceReply, MsgRunData,
		MsgDirLookupN, MsgDirResultN, MsgDirUpdateN, MsgReplicate,
		MsgReplicaOp, MsgInvalidateN, MsgInvalSinceReply,
		MsgViewUpdate, MsgJoin, MsgViewReply:
		return true
	}
	return false
}

// --- frame and payload pooling ---

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// getFrame returns a zeroed frame from the pool. Pair with releaseFrame.
func getFrame() *Frame { return framePool.Get().(*Frame) }

// releaseFrame recycles a frame and, if its payload is pool-backed, the
// payload buffer; payload references pinned to the frame are released. The
// frame and any slices reaching into it (Payload, Segs, Hints) must not be
// used afterwards.
func releaseFrame(f *Frame) {
	if f == nil {
		return
	}
	for _, b := range f.bufs {
		b.release()
	}
	pb := f.pbuf
	*f = Frame{}
	framePool.Put(f)
	if pb != nil {
		putPayload(pb)
	}
}

// TakePayload transfers ownership of the payload to the caller: the bytes
// stay valid after releaseFrame and are never recycled underneath the
// caller. Use it wherever received data is retained (cache insert, return
// to the application).
func (f *Frame) TakePayload() []byte {
	p := f.Payload
	f.Payload = nil
	f.pbuf = nil
	return p
}

// TakePayloadBuf transfers ownership of the payload to the caller as a
// refcounted buffer (one reference). Unlike TakePayload, the pooled backing
// travels with the bytes: when the last reference drops, the buffer returns
// to its size-class pool instead of leaking to the garbage collector —
// the path by which store-cached blocks keep the wire pools warm.
func (f *Frame) TakePayloadBuf() *payloadBuf {
	pb := payloadBufPool.Get().(*payloadBuf)
	pb.data, pb.pooled = f.Payload, f.pbuf
	pb.refs.Store(1)
	f.Payload, f.pbuf = nil, nil
	return pb
}

// payloadClassSizes are the pooled payload buffer capacities. 8 KB matches
// the default block geometry; the larger classes serve whole-file and
// range responses.
var payloadClassSizes = [...]int{
	1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10,
	32 << 10, 64 << 10, 256 << 10, 1 << 20,
}

var payloadPools [len(payloadClassSizes)]sync.Pool

// getPayload returns a pooled buffer of length n (capacity rounded up to
// the size class). Payloads above the largest class are plain allocations.
func getPayload(n int) *[]byte {
	for i, s := range payloadClassSizes {
		if n <= s {
			if v := payloadPools[i].Get(); v != nil {
				pb := v.(*[]byte)
				*pb = (*pb)[:n]
				return pb
			}
			b := make([]byte, n, s)
			return &b
		}
	}
	b := make([]byte, n)
	return &b
}

// putPayload recycles a buffer obtained from getPayload. Buffers whose
// capacity is not an exact class size (oversize allocations, taken-and-
// returned foreign slices) are left to the garbage collector.
func putPayload(pb *[]byte) {
	c := cap(*pb)
	for i, s := range payloadClassSizes {
		if c == s {
			*pb = (*pb)[:s]
			payloadPools[i].Put(pb)
			return
		}
	}
}

// --- encode / decode ---

// growSlice extends buf by n bytes, reallocating if needed, and returns the
// extended slice.
func growSlice(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[:len(buf)+n]
	}
	nb := make([]byte, len(buf)+n, 2*cap(buf)+n)
	copy(nb, buf)
	return nb
}

// appendHeader validates f and appends its header and hint deltas (not the
// payload) to buf. The encoded payload length covers Payload plus every
// scatter-gather segment: the receiver cannot tell (and need not care)
// whether the sender gathered the bytes or held them contiguously.
func appendHeader(buf []byte, f *Frame) ([]byte, error) {
	plen := f.payloadLen()
	if plen > maxPayload {
		return nil, fmt.Errorf("middleware: payload %d exceeds limit", plen)
	}
	if plen > 0 && !typeCarriesPayload(f.Type) {
		return nil, fmt.Errorf("middleware: frame type %d does not carry a payload", f.Type)
	}
	if len(f.Hints) > maxHintDeltas {
		return nil, fmt.Errorf("middleware: %d hint deltas exceed limit %d", len(f.Hints), maxHintDeltas)
	}
	need := headerLen + 12*len(f.Hints)
	buf = growSlice(buf, need)
	hdr := buf[len(buf)-need:]
	hdr[0] = byte(f.Type)
	hdr[1] = f.Flags
	binary.BigEndian.PutUint32(hdr[2:], f.Req)
	binary.BigEndian.PutUint32(hdr[6:], uint32(f.Sender))
	binary.BigEndian.PutUint64(hdr[10:], uint64(f.OldestAge))
	binary.BigEndian.PutUint32(hdr[18:], uint32(f.File))
	binary.BigEndian.PutUint32(hdr[22:], uint32(f.Idx))
	binary.BigEndian.PutUint64(hdr[26:], uint64(f.Aux))
	hdr[34] = byte(len(f.Hints))
	binary.BigEndian.PutUint32(hdr[35:], uint32(plen))
	for i, h := range f.Hints {
		d := hdr[headerLen+12*i:]
		binary.BigEndian.PutUint32(d, uint32(h.File))
		binary.BigEndian.PutUint32(d[4:], uint32(h.Idx))
		binary.BigEndian.PutUint32(d[8:], uint32(h.Node))
	}
	return buf, nil
}

// writeBufPool holds encode scratch buffers for WriteFrame. Oversized
// buffers (above the largest payload class) are not retained.
var writeBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16<<10)
	return &b
}}

// WriteFrame encodes f to w as a single contiguous write.
func WriteFrame(w io.Writer, f *Frame) error {
	bp := writeBufPool.Get().(*[]byte)
	buf, err := appendHeader((*bp)[:0], f)
	if err != nil {
		writeBufPool.Put(bp)
		return err
	}
	buf = append(buf, f.Payload...)
	for _, s := range f.Segs {
		buf = append(buf, s...)
	}
	_, err = w.Write(buf)
	if cap(buf) <= 1<<20 {
		*bp = buf[:0]
	}
	writeBufPool.Put(bp)
	return err
}

// ReadFrame decodes one frame from r into a pooled frame. Release it with
// releaseFrame when done (TakePayload first to retain the content).
func ReadFrame(r io.Reader) (*Frame, error) {
	return readFrame(r, maxPayload)
}

// readFrame is ReadFrame with a configurable payload cap (per-conn limit).
func readFrame(r io.Reader, limit int) (*Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := getFrame()
	f.Type = MsgType(hdr[0])
	f.Flags = hdr[1]
	f.Req = binary.BigEndian.Uint32(hdr[2:])
	f.Sender = int32(binary.BigEndian.Uint32(hdr[6:]))
	f.OldestAge = int64(binary.BigEndian.Uint64(hdr[10:]))
	f.File = block.FileID(binary.BigEndian.Uint32(hdr[18:]))
	f.Idx = int32(binary.BigEndian.Uint32(hdr[22:]))
	f.Aux = int64(binary.BigEndian.Uint64(hdr[26:]))
	nhints := int(hdr[34])
	plen := binary.BigEndian.Uint32(hdr[35:])
	if nhints > maxHintDeltas {
		releaseFrame(f)
		return nil, fmt.Errorf("middleware: frame carries %d hint deltas", nhints)
	}
	if int64(plen) > int64(limit) {
		releaseFrame(f)
		return nil, fmt.Errorf("middleware: frame payload %d exceeds limit %d", plen, limit)
	}
	if plen > 0 && !typeCarriesPayload(f.Type) {
		t := f.Type
		releaseFrame(f)
		return nil, fmt.Errorf("middleware: frame type %d carries unexpected %d-byte payload", t, plen)
	}
	if nhints > 0 {
		var deltas [12 * maxHintDeltas]byte
		if _, err := io.ReadFull(r, deltas[:12*nhints]); err != nil {
			releaseFrame(f)
			return nil, err
		}
		for i := 0; i < nhints; i++ {
			f.hintArr[i] = HintDelta{
				File: block.FileID(binary.BigEndian.Uint32(deltas[12*i:])),
				Idx:  int32(binary.BigEndian.Uint32(deltas[12*i+4:])),
				Node: int32(binary.BigEndian.Uint32(deltas[12*i+8:])),
			}
		}
		f.Hints = f.hintArr[:nhints]
	}
	if plen > 0 {
		f.pbuf = getPayload(int(plen))
		f.Payload = *f.pbuf
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			releaseFrame(f)
			return nil, err
		}
	}
	return f, nil
}

// ID returns the block identifier of the frame.
func (f *Frame) ID() block.ID { return block.ID{File: f.File, Idx: f.Idx} }

// Err extracts the error of a MsgErr frame. A reply flagged FlagNotFound
// wraps ErrUnknownFile so the classification survives the wire crossing.
func (f *Frame) Err() error {
	if f.Type != MsgErr {
		return nil
	}
	if f.Flags&FlagNotFound != 0 {
		return fmt.Errorf("middleware: remote error: %s: %w", f.Payload, ErrUnknownFile)
	}
	return fmt.Errorf("middleware: remote error: %s", f.Payload)
}
