package middleware

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/block"
)

// This file is the membership lifecycle built on the consistent-hash view
// (ring.go): heartbeat failure detection, the coordinator that serializes
// membership changes, the join/drain/dead-promotion RPCs, and view
// dissemination.
//
// The model is deliberately simple — a single coordinator (the lowest-ID
// alive member that the observer does not currently suspect) serializes
// view construction, epochs only move forward, and every node installs the
// highest epoch it has seen (install-if-newer CAS). Heartbeat epochs
// piggyback anti-entropy: any exchange between nodes at different epochs
// triggers a view fetch, so a missed MsgViewUpdate heals in one probe
// interval. This is not consensus — two coordinators racing during the
// exact window where the old coordinator dies can briefly fork same-epoch
// views — but forks heal at the next change (higher epoch wins) and the
// read path tolerates a stale view by construction (the old home still
// serves until its blocks are pulled away).

// --- heartbeats ---

// heartbeatLoop probes the peers every Config.HeartbeatInterval until Close.
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-t.C:
			n.probePeers()
		}
	}
}

// probePeers launches one probe per reachable peer, skipping peers with a
// probe still in flight (a slow peer gets one outstanding probe, not a
// pile-up).
func (n *Node) probePeers() {
	v := n.view.Load()
	if v == nil {
		return
	}
	now := time.Now()
	for i := range v.members {
		if i == n.cfg.ID || !v.reachable(i) {
			continue
		}
		n.hbMu.Lock()
		if n.hbBusy[i] {
			n.hbMu.Unlock()
			continue
		}
		if _, seen := n.hbLast[i]; !seen {
			// First sight: the miss clock starts now, not at epoch zero.
			n.hbLast[i] = now
		}
		n.hbBusy[i] = true
		n.hbMu.Unlock()
		go n.probe(i, v.epoch)
	}
}

// deadMinFails is the consecutive-probe-failure floor for dead promotion:
// the miss clock alone is not enough, because a single probe that pays the
// full RPC timeout can exceed DeadTimeout by itself — one slow exchange on
// a congested link must never retire a live member (dead is terminal).
const deadMinFails = 3

// probe sends one MsgPing to peer i, feeding the suspect clock and — past
// DeadTimeout and deadMinFails consecutive failures — the coordinator's
// dead promotion. The exchanged epochs drive anti-entropy in both
// directions. The probe deliberately bypasses the circuit breaker: the
// breaker opens on data-path congestion too, and a failure detector that
// reads the breaker instead of the peer would fail fast for a whole
// cooldown and promote a live-but-loaded member.
func (n *Node) probe(i int, epoch uint64) {
	defer func() {
		n.hbMu.Lock()
		n.hbBusy[i] = false
		n.hbMu.Unlock()
	}()
	f := getFrame()
	f.Type = MsgPing
	f.Aux = int64(epoch)
	resp, err := n.roundTripTo(i, f)
	releaseFrame(f)
	if err != nil {
		n.c.heartbeatFailures.Add(1)
		n.hbMu.Lock()
		n.hbFails[i]++
		miss := time.Since(n.hbLast[i])
		n.hbSuspect[i] = miss >= n.hbSuspectAfter
		dead := miss >= n.hbDeadAfter && n.hbFails[i] >= deadMinFails
		n.hbMu.Unlock()
		n.trace(traceHeartbeatFail, i, block.ID{}, int64(miss/time.Millisecond))
		if dead && !n.cfg.StaticHome {
			n.proposeDead(i)
		}
		return
	}
	peerEpoch := uint64(resp.Aux)
	releaseFrame(resp)
	n.hbMu.Lock()
	n.hbLast[i] = time.Now()
	n.hbFails[i] = 0
	n.hbSuspect[i] = false
	n.hbMu.Unlock()
	if cur := n.view.Load(); cur != nil && peerEpoch > cur.epoch {
		n.fetchView(i)
	}
}

// suspects reports whether this node currently suspects peer i (local
// judgement only — never a view state).
func (n *Node) suspects(i int) bool {
	if n.hbSuspect == nil {
		return false
	}
	n.hbMu.Lock()
	defer n.hbMu.Unlock()
	return n.hbSuspect[i]
}

// handlePing answers a heartbeat with this node's epoch; a probe carrying a
// higher epoch than ours triggers a fetch from the prober (anti-entropy).
func (n *Node) handlePing(f *Frame) *Frame {
	v := n.view.Load()
	if v != nil && f.Sender >= 0 && uint64(f.Aux) > v.epoch {
		go n.fetchView(int(f.Sender))
	}
	r := ackFrame()
	if v != nil {
		r.Aux = int64(v.epoch)
	}
	return r
}

// --- view dissemination ---

// handleView answers with the current membership view.
func (n *Node) handleView(f *Frame) *Frame {
	v := n.view.Load()
	if v == nil {
		return errFrame("node %d has no membership view", n.cfg.ID)
	}
	return viewReply(v)
}

// handleViewUpdate installs a pushed view if it is newer than ours.
func (n *Node) handleViewUpdate(f *Frame) *Frame {
	v, err := decodeView(f.Payload)
	if err != nil {
		return errFrame("view update: %v", err)
	}
	n.installView(v)
	r := ackFrame()
	if cur := n.view.Load(); cur != nil {
		r.Aux = int64(cur.epoch)
	}
	return r
}

func viewReply(v *memberView) *Frame {
	r := getFrame()
	r.Type = MsgViewReply
	r.Aux = int64(v.epoch)
	r.Payload = appendView(nil, v)
	return r
}

// fetchView pulls peer i's view and installs it if newer.
func (n *Node) fetchView(i int) {
	f := getFrame()
	f.Type = MsgView
	resp, err := n.reliableRPC(i, f, 0)
	releaseFrame(f)
	if err != nil {
		return
	}
	if resp.Type == MsgViewReply {
		if v, derr := decodeView(resp.Payload); derr == nil {
			n.installView(v)
		}
	}
	releaseFrame(resp)
}

// installView makes v the current view if it is strictly newer, growing the
// per-peer arrays first (so a concurrent reader that sees the new view
// never indexes past an old array) and running the post-install work
// (bus resize, dead cleanup, rebalance computation) on success.
func (n *Node) installView(v *memberView) bool {
	n.growMembership(v)
	for {
		cur := n.view.Load()
		if cur != nil && cur.epoch >= v.epoch {
			return false
		}
		if n.view.CompareAndSwap(cur, v) {
			n.afterViewInstall(cur, v)
			return true
		}
	}
}

// growMembership extends the per-peer arrays (connections, ages, breakers,
// invalidation origins) to cover v's member slots and records addresses for
// slots that appeared or changed. Arrays only ever grow — a dead member's
// slot stays allocated, keeping node IDs stable as array indexes.
func (n *Node) growMembership(v *memberView) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.addrs == nil && v.size() > 0 {
		n.addrs = []string{}
	}
	for i := len(n.addrs); i < v.size(); i++ {
		n.addrs = append(n.addrs, v.members[i].Addr)
		n.peers = append(n.peers, nil)
		age := &atomic.Int64{}
		age.Store(noAge)
		n.peerAges = append(n.peerAges, age)
		n.breakers = append(n.breakers, &breaker{threshold: n.brThresh, cooldown: n.brCooldown})
		n.invalIn = append(n.invalIn, &invalOrigin{})
	}
	for i := 0; i < v.size(); i++ {
		m := v.members[i]
		if m.Addr != "" && n.addrs[i] != m.Addr {
			if old := n.peers[i]; old != nil {
				n.peers[i] = nil
				go old.close()
			}
			n.addrs[i] = m.Addr
		}
	}
}

// afterViewInstall runs once per successful install: bus lifecycle, dead
// member cleanup, membership traces, and the rebalance diff between the
// replaced view and the new one.
func (n *Node) afterViewInstall(old, v *memberView) {
	n.mu.Lock()
	if n.bus == nil && !n.cfg.SyncInvalidate && v.size() > 1 && !n.closed {
		n.bus = newInvalBus(n, v.size())
	}
	bus := n.bus
	var deadConns []*conn
	for i, m := range v.members {
		if m.State == stateDead && i < len(n.peers) && n.peers[i] != nil {
			deadConns = append(deadConns, n.peers[i])
			n.peers[i] = nil
		}
	}
	n.mu.Unlock()
	for _, c := range deadConns {
		c.close()
	}
	if bus != nil {
		bus.resize(v.size())
		for i, m := range v.members {
			if m.State == stateDead {
				bus.markDead(i)
			}
		}
	}
	for i, m := range v.members {
		var was memberState = stateDead
		hadSlot := old != nil && i < old.size() && old.members[i].Addr != ""
		if hadSlot {
			was = old.members[i].State
		}
		switch {
		case m.State == stateAlive && m.Addr != "" && (!hadSlot || was != stateAlive):
			n.trace(traceMemberJoin, i, block.ID{}, int64(v.epoch))
		case m.State == stateDead && hadSlot && was != stateDead:
			n.trace(traceMemberDead, i, block.ID{}, int64(v.epoch))
		}
	}
	n.computeRebalance(old, v)
}

// --- coordinator & membership changes ---

// coordinator picks the lowest-ID alive member this node does not currently
// suspect. Every membership change funnels through it; when it dies, its
// suspecters skip past it to the next slot.
func (n *Node) coordinator() int {
	v := n.view.Load()
	if v == nil {
		return -1
	}
	for i, m := range v.members {
		if m.State != stateAlive || m.Addr == "" {
			continue
		}
		if i != n.cfg.ID && n.suspects(i) {
			continue
		}
		return i
	}
	return -1
}

// flagMemberForwarded marks a join/drain frame that already crossed one
// coordinator hop, stopping forwarding loops when nodes briefly disagree on
// who coordinates (the receiver then decides locally).
const flagMemberForwarded = 4

// handleJoin admits a member (Aux: requested slot ID, negative for "next
// free"; payload: its listen address), forwarding to the coordinator when
// that is someone else. The reply is the view that includes the joiner.
func (n *Node) handleJoin(f *Frame) *Frame {
	return n.memberChange(f, func() (*memberView, error) {
		return n.admitMember(int(f.Aux), string(f.Payload))
	})
}

// handleDrain moves member Aux out of the ring: to draining (it keeps
// serving while successors pull its blocks), or — Flags bit 0, the
// suspect-promotion path — straight to dead.
func (n *Node) handleDrain(f *Frame) *Frame {
	to := stateDraining
	if f.Flags&1 != 0 {
		to = stateDead
	}
	return n.memberChange(f, func() (*memberView, error) {
		return n.changeMemberState(int(f.Aux), to)
	})
}

// memberChange runs a membership mutation here if this node coordinates (or
// the frame was already forwarded once), else relays the frame to the
// coordinator and passes its reply through.
func (n *Node) memberChange(f *Frame, apply func() (*memberView, error)) *Frame {
	coord := n.coordinator()
	if coord < 0 {
		return errFrame("node %d has no membership view", n.cfg.ID)
	}
	if coord != n.cfg.ID && f.Flags&flagMemberForwarded == 0 {
		req := getFrame()
		req.Type, req.File, req.Idx, req.Aux = f.Type, f.File, f.Idx, f.Aux
		req.Flags = f.Flags | flagMemberForwarded
		if len(f.Payload) > 0 {
			req.Payload = append([]byte(nil), f.Payload...)
		}
		resp, err := n.reliableRPC(coord, req, n.retries)
		releaseFrame(req)
		if err != nil {
			return errFrame("forwarding to coordinator %d: %v", coord, err)
		}
		// Relay verbatim (and learn the view ourselves on the way through).
		r := getFrame()
		r.Type, r.Flags, r.Aux = resp.Type, resp.Flags, resp.Aux
		if len(resp.Payload) > 0 {
			r.Payload = append([]byte(nil), resp.Payload...)
			if resp.Type == MsgViewReply {
				if v, derr := decodeView(resp.Payload); derr == nil {
					n.installView(v)
				}
			}
		}
		releaseFrame(resp)
		return r
	}
	v, err := apply()
	if err != nil {
		return errFrame("%v", err)
	}
	return viewReply(v)
}

// admitMember builds and disseminates the view that includes a new (or
// returning) member. Serialized by memberMu — the coordinator's one-at-a-
// time guarantee for membership changes.
func (n *Node) admitMember(id int, addr string) (*memberView, error) {
	if addr == "" {
		return nil, fmt.Errorf("middleware: join with empty address")
	}
	n.memberMu.Lock()
	defer n.memberMu.Unlock()
	cur := n.view.Load()
	if cur == nil {
		return nil, fmt.Errorf("middleware: no membership view to join")
	}
	if cur.static {
		return nil, fmt.Errorf("middleware: static cluster does not admit members")
	}
	if id < 0 {
		id = cur.size()
		for s, m := range cur.members {
			if m.Addr == "" {
				id = s
				break
			}
		}
	}
	if id < cur.size() {
		if m := cur.members[id]; m.State == stateAlive && m.Addr == addr {
			return cur, nil // idempotent re-join
		} else if m.State == stateAlive && m.Addr != "" {
			return nil, fmt.Errorf("middleware: slot %d is alive at %s", id, m.Addr)
		}
	}
	v := newMemberView(cur.epoch+1, false, cur.withMember(id, memberInfo{Addr: addr, State: stateAlive}))
	n.installView(v)
	n.broadcastView(v)
	return v, nil
}

// changeMemberState builds and disseminates the view with member id moved
// to the given state. Dead is terminal; draining a dead member is a no-op.
func (n *Node) changeMemberState(id int, to memberState) (*memberView, error) {
	n.memberMu.Lock()
	defer n.memberMu.Unlock()
	cur := n.view.Load()
	if cur == nil {
		return nil, fmt.Errorf("middleware: no membership view")
	}
	if cur.static {
		return nil, fmt.Errorf("middleware: static cluster membership is fixed")
	}
	if id < 0 || id >= cur.size() || cur.members[id].Addr == "" {
		return nil, fmt.Errorf("middleware: no member %d", id)
	}
	m := cur.members[id]
	if m.State == to || m.State == stateDead {
		return cur, nil // idempotent; dead is terminal
	}
	if to != stateAlive && cur.aliveCount() <= 1 && m.State == stateAlive {
		return nil, fmt.Errorf("middleware: refusing to remove the last alive member %d", id)
	}
	v := newMemberView(cur.epoch+1, false, cur.withMember(id, memberInfo{Addr: m.Addr, State: to}))
	n.installView(v)
	n.broadcastView(v)
	return v, nil
}

// broadcastView pushes a freshly built view to every reachable member.
// Best-effort: a missed push heals via ping-epoch anti-entropy.
func (n *Node) broadcastView(v *memberView) {
	for i := range v.members {
		if i == n.cfg.ID || !v.reachable(i) {
			continue
		}
		go func(peer int) {
			f := getFrame()
			f.Type = MsgViewUpdate
			f.Aux = int64(v.epoch)
			f.Payload = appendView(nil, v)
			resp, err := n.reliableRPC(peer, f, 1)
			releaseFrame(f)
			if err == nil {
				releaseFrame(resp)
			}
		}(i)
	}
}

// proposeDead asks the coordinator to promote peer i to dead (or does it
// directly when this node coordinates). Fired by the heartbeat loop after
// DeadTimeout; idempotent and best-effort — every suspecter re-proposes
// each interval until a view without i lands.
func (n *Node) proposeDead(i int) {
	v := n.view.Load()
	if v == nil || !v.reachable(i) {
		return // already out
	}
	coord := n.coordinator()
	if coord < 0 || coord == i {
		return
	}
	if coord == n.cfg.ID {
		n.changeMemberState(i, stateDead) //nolint:errcheck // re-proposed next interval
		return
	}
	f := getFrame()
	f.Type = MsgDrain
	f.Aux = int64(i)
	f.Flags = 1 | flagMemberForwarded // dead, decided here
	resp, err := n.reliableRPC(coord, f, 0)
	releaseFrame(f)
	if err != nil {
		return
	}
	if resp.Type == MsgViewReply {
		if nv, derr := decodeView(resp.Payload); derr == nil {
			n.installView(nv)
		}
	}
	releaseFrame(resp)
}

// --- node-level API ---

// Join connects to any live member of an existing cluster and joins it:
// the cluster admits this node (slot = its configured ID, or the next free
// slot when negative), the returned view is installed locally, and the
// rebalance pull of this node's slice of the ring starts immediately.
// SetAddrs must NOT have been called — Join is the bootstrap for elastic
// members.
func (n *Node) Join(seed string) error {
	nc, err := net.Dial("tcp", seed)
	if err != nil {
		return fmt.Errorf("middleware: join dial %s: %w", seed, err)
	}
	nc = n.cfg.Fault.Wrap(nc, n.cfg.ID, -1)
	c := newConn(nc, n.connConfig())
	defer c.close()
	f := getFrame()
	f.Type = MsgJoin
	f.Aux = int64(n.cfg.ID)
	f.Payload = []byte(n.Addr())
	resp, err := c.roundTrip(f)
	releaseFrame(f)
	if err != nil {
		return fmt.Errorf("middleware: join via %s: %w", seed, err)
	}
	defer releaseFrame(resp)
	if e := resp.Err(); e != nil {
		return fmt.Errorf("middleware: join rejected: %w", e)
	}
	if resp.Type != MsgViewReply {
		return fmt.Errorf("middleware: join got unexpected %d reply", resp.Type)
	}
	v, err := decodeView(resp.Payload)
	if err != nil {
		return err
	}
	for i, m := range v.members {
		if m.Addr == n.Addr() && m.State == stateAlive {
			if i != n.cfg.ID {
				return fmt.Errorf("middleware: cluster admitted us as node %d but we are configured as %d", i, n.cfg.ID)
			}
			n.installView(v)
			return nil
		}
	}
	return fmt.Errorf("middleware: join view (epoch %d) does not include us", v.epoch)
}

// Drain asks the cluster to move this node out of the ring. The node keeps
// serving (reads, migration pulls by the new homes) until its blocks are
// handed off — poll RebalancePending across the survivors, FlushInval, then
// Close.
func (n *Node) Drain() error {
	coord := n.coordinator()
	if coord < 0 {
		return fmt.Errorf("middleware: no membership view")
	}
	if coord == n.cfg.ID {
		_, err := n.changeMemberState(n.cfg.ID, stateDraining)
		return err
	}
	f := getFrame()
	f.Type = MsgDrain
	f.Aux = int64(n.cfg.ID)
	resp, err := n.reliableRPC(coord, f, n.retries)
	releaseFrame(f)
	if err != nil {
		return err
	}
	defer releaseFrame(resp)
	if e := resp.Err(); e != nil {
		return e
	}
	if resp.Type == MsgViewReply {
		if v, derr := decodeView(resp.Payload); derr == nil {
			n.installView(v)
		}
	}
	return nil
}

// MembershipEpoch reports the node's current view epoch (0: none).
func (n *Node) MembershipEpoch() uint64 {
	if v := n.view.Load(); v != nil {
		return v.epoch
	}
	return 0
}
