package middleware

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// TestStaleReplicaRejectedByStamp pins the write-vs-push race fix: a
// replica push that captured its content before a write must not install
// that content after the write's invalidation has been applied. The
// ordering is carried by per-block stamps (origin, bus sequence); a
// MsgReplicate or MsgReplicaOp whose stamp is older than the receiver's
// recorded stamp is rejected whole.
func TestStaleReplicaRejectedByStamp(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	nodes, _ := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	n := nodes[1]
	id := block.ID{File: 0, Idx: 0}

	// Node 1 applied the bus invalidation for origin 0's write, sequence 5.
	n.recordInvalStamp(id, 0, 5)

	install := func(stamp uint64) (accepted bool) {
		f := &Frame{Type: MsgReplicate, File: id.File, Idx: id.Idx,
			Aux: int64(stamp), Payload: bytes.Repeat([]byte{0x01}, 1024)}
		r := n.handleReplicate(f)
		if r.Type != MsgAck {
			t.Fatalf("handleReplicate replied %d", r.Type)
		}
		accepted = r.Flags != 0
		releaseFrame(r)
		return accepted
	}

	// A push stamped before the write (same origin, lower sequence) is
	// stale: rejected, nothing installed.
	if install(packStamp(0, 4)) {
		t.Error("replica stamped before the applied invalidation was accepted")
	}
	if n.store.Contains(id) {
		t.Fatal("stale replica content was installed")
	}
	// A push that captured no stamp at all (content read before any bus
	// write was recorded) is likewise stale once a stamp exists.
	if install(0) {
		t.Error("unstamped replica accepted over a recorded invalidation")
	}
	// A push from a different origin cannot be ordered against the local
	// stamp: reject conservatively (the pusher re-reads and retries).
	if install(packStamp(2, 9)) {
		t.Error("cross-origin replica accepted without an ordering proof")
	}
	// A push stamped at (or after) the applied invalidation carries the
	// post-write content: accepted and installed.
	if !install(packStamp(0, 5)) {
		t.Error("current-stamp replica rejected")
	}
	if !n.store.Contains(id) {
		t.Fatal("current replica content was not installed")
	}

	// The manager-side registration obeys the same ordering: a stale-stamped
	// MsgReplicaOp add must not register holders.
	mgr := nodes[2]
	mgr.recordInvalStamp(id, 0, 5)
	holders := make([]byte, 4)
	binary.BigEndian.PutUint32(holders, 1)
	op := func(stamp uint64) {
		f := &Frame{Type: MsgReplicaOp, Flags: FlagMaster, File: id.File, Idx: id.Idx,
			Aux: int64(stamp), Payload: holders}
		releaseFrame(mgr.handleReplicaOp(f))
	}
	registered := func() int {
		mgr.reps.mu.Lock()
		defer mgr.reps.mu.Unlock()
		return len(mgr.reps.m[id])
	}
	op(packStamp(0, 4))
	if got := registered(); got != 0 {
		t.Fatalf("stale replica-op registered %d holders", got)
	}
	op(packStamp(0, 5))
	if got := registered(); got != 1 {
		t.Fatalf("current replica-op registered %d holders, want 1", got)
	}
}

// TestStalenessBoundUnderFaults is the bus's property test: concurrent
// writers and readers over a seeded lossy fault plan. Three properties must
// hold throughout:
//
//  1. read-your-writes — a writer always reads its own latest write back
//     from its entry node, immediately;
//  2. no torn reads — every read returns either the original synthetic
//     content or exactly one writer's version, never a mix;
//  3. bounded staleness — once writes stop, every node converges to the
//     final version within the catch-up bound (delivery retries plus one
//     catch-up round trip), with the bus fully drained.
//
// The iteration count shrinks under -short; CI runs the package with -race.
func TestStalenessBoundUnderFaults(t *testing.T) {
	const k = 4
	const files = 4 // one single-block file per writer
	rounds := 12
	if testing.Short() {
		rounds = 3
	}
	sizes := map[block.FileID]int64{}
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = 1024
	}
	plan := &FaultPlan{Seed: 99, DelayProb: 0.05, Delay: time.Millisecond, DropProb: 0.05}
	nodes, client := startFaultCluster(t, k, 256, sizes, func(i int, cfg *Config) {
		cfg.Fault = plan
		cfg.RPCTimeout = 250 * time.Millisecond
		cfg.Retries = 3
		cfg.RetryBackoff = time.Millisecond
	}, ClientConfig{RPCTimeout: 1500 * time.Millisecond, Retries: 4})

	// Prime every file onto several nodes so there are live copies to
	// invalidate.
	for f := 0; f < files; f++ {
		for e := 0; e < k; e++ {
			if _, err := client.ReadVia(e, block.FileID(f)); err != nil {
				t.Fatalf("prime read file %d via %d: %v", f, e, err)
			}
		}
	}

	version := make([]atomic.Int32, files) // latest version written per file
	var writers, readers sync.WaitGroup
	stopReaders := make(chan struct{})

	// Writers: writer w owns file w exclusively and writes versions 1..rounds
	// through entry node w%k, checking read-your-writes after each.
	for w := 0; w < files; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			id := block.ID{File: block.FileID(w), Idx: 0}
			entry := nodes[w%k]
			for v := 1; v <= rounds; v++ {
				data := bytes.Repeat([]byte{byte(v)}, 1024)
				// Announce the version before the write is issued: a reader
				// observing these bytes mid-flight must still see v ≤ vEnd.
				version[w].Store(int32(v))
				if err := entry.WriteBlock(id, data); err != nil {
					t.Errorf("writer %d version %d: %v", w, v, err)
					return
				}
				got, err := entry.GetBlock(id)
				if err != nil {
					t.Errorf("writer %d read-own-write: %v", w, err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("writer %d did not read its own version %d back", w, v)
					return
				}
			}
		}(w)
	}

	// Readers: any entry node, any file; every observed block must be whole
	// (original content or one uniform version no newer than the last write).
	for r := 0; r < 2*k; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				f := rng.Intn(files)
				data, err := client.ReadVia(rng.Intn(k), block.FileID(f))
				vEnd := version[f].Load()
				if err != nil {
					continue // transient under the fault plan: the property is about bytes
				}
				if len(data) != 1024 {
					t.Errorf("file %d read returned %d bytes", f, len(data))
					return
				}
				if bytes.Equal(data, SyntheticBlock(block.FileID(f), 0, 1024)) {
					continue // pre-write content: stale but whole
				}
				v := data[0]
				if !bytes.Equal(data, bytes.Repeat([]byte{v}, 1024)) {
					t.Errorf("torn read of file %d: mixed versions in one block", f)
					return
				}
				if int32(v) > vEnd {
					t.Errorf("file %d read version %d, newer than last write %d", f, v, vEnd)
					return
				}
			}
		}(r)
	}

	writers.Wait() // writers done — only now is "final version" defined
	close(stopReaders)
	readers.Wait()

	// Bounded staleness: the bus drains (all live peers ack every record)
	// and every node then serves the final version of every file.
	deadline := time.Now().Add(15 * time.Second)
	for _, n := range nodes {
		if !n.FlushInval(time.Until(deadline)) {
			t.Fatal("invalidation bus never drained after writes stopped")
		}
	}
	for f := 0; f < files; f++ {
		want := bytes.Repeat([]byte{byte(rounds)}, 1024)
		id := block.ID{File: block.FileID(f), Idx: 0}
		for i, n := range nodes {
			for {
				got, err := n.GetBlock(id)
				if err == nil && bytes.Equal(got, want) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("node %d stuck stale on file %d past the staleness bound (err=%v)", i, f, err)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}
