package middleware

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// failingSource serves synthetic blocks until failAt, then errors; it counts
// every ReadBlock so tests can see how many fetches a failure cost.
type failingSource struct {
	geom   block.Geometry
	size   int64
	failAt int32
	reads  atomic.Int64
}

func (s *failingSource) FileSize(f block.FileID) (int64, error) { return s.size, nil }

func (s *failingSource) ReadBlock(f block.FileID, idx int32) ([]byte, error) {
	s.reads.Add(1)
	if idx >= s.failAt {
		return nil, fmt.Errorf("injected failure at block %d", idx)
	}
	n := int(s.size - int64(idx)*int64(s.geom.Size))
	if n > s.geom.Size {
		n = s.geom.Size
	}
	return SyntheticBlock(f, idx, n), nil
}

func (s *failingSource) WriteBlock(f block.FileID, idx int32, data []byte) error {
	return fmt.Errorf("read-only source")
}

// TestReadFileShortCircuitsAfterError: once one block of a file fails, the
// remaining window goroutines must stop issuing fetches instead of walking
// the whole file into the same error.
func TestReadFileShortCircuitsAfterError(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	src := &failingSource{geom: geom, size: 64 * 1024, failAt: 2}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 256, Policy: core.PolicyMaster,
		Geometry: geom, Source: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})

	if _, err := n.ReadFile(0); err == nil {
		t.Fatal("ReadFile succeeded against a failing source")
	}
	// 64 blocks total; the failure hits at block 2. Without the in-goroutine
	// error check the window walks all 64 blocks; with it, only the fetches
	// already in flight when the error lands can still issue.
	if reads := src.reads.Load(); reads >= 32 {
		t.Fatalf("%d disk reads after early failure, want the window to short-circuit (< 32)", reads)
	}
}

// TestGetBlockInto verifies the copy-into-buffer read path end to end: local
// hits and home reads both land in the caller's slice with the right length.
func TestGetBlockInto(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2500}
	nodes, _ := startCluster(t, 1, 64, core.PolicyMaster, false, sizes)
	n := nodes[0]

	buf := make([]byte, testGeom.Size)
	// Miss → home (self) disk read.
	got, err := n.GetBlockInto(block.ID{File: 0, Idx: 0}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != testGeom.Size || string(buf) != string(SyntheticBlock(0, 0, testGeom.Size)) {
		t.Fatalf("cold GetBlockInto: %d bytes", got)
	}
	// Hit → copy under the store lock.
	for i := range buf {
		buf[i] = 0
	}
	got, err = n.GetBlockInto(block.ID{File: 0, Idx: 0}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != testGeom.Size || string(buf) != string(SyntheticBlock(0, 0, testGeom.Size)) {
		t.Fatalf("warm GetBlockInto: %d bytes", got)
	}
	// The final, short block reports its true length.
	short := 2500 - 2*testGeom.Size
	got, err = n.GetBlockInto(block.ID{File: 0, Idx: 2}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != short {
		t.Fatalf("short block: %d bytes, want %d", got, short)
	}
}
