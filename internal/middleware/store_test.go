package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func sid(f, i int) block.ID { return block.ID{File: block.FileID(f), Idx: int32(i)} }

func TestStoreInsertGet(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	if ev := s.Insert(sid(1, 0), []byte("a"), true); ev != nil {
		t.Fatalf("eviction on non-full insert: %+v", ev)
	}
	data, ok := s.Get(sid(1, 0))
	if !ok || !bytes.Equal(data, []byte("a")) {
		t.Fatal("Get mismatch")
	}
	if !s.IsMaster(sid(1, 0)) || s.Masters() != 1 || s.Len() != 1 {
		t.Fatal("master accounting wrong")
	}
	if _, ok := s.Get(sid(9, 9)); ok {
		t.Fatal("phantom hit")
	}
}

func TestStoreEvictionReturnsMasterData(t *testing.T) {
	s := NewStore(2, core.PolicyBasic)
	s.Insert(sid(1, 0), []byte("old-master"), true)
	s.Insert(sid(2, 0), []byte("b"), false)
	ev := s.Insert(sid(3, 0), []byte("c"), false)
	if ev == nil || !ev.Master || ev.ID != sid(1, 0) {
		t.Fatalf("eviction = %+v, want old master", ev)
	}
	if !bytes.Equal(ev.Data, []byte("old-master")) {
		t.Fatal("master eviction lost its data")
	}
}

func TestStoreMasterPolicyPrefersNonMaster(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	s.Insert(sid(1, 0), []byte("m"), true)  // oldest, master
	s.Insert(sid(2, 0), []byte("r"), false) // younger replica
	ev := s.Insert(sid(3, 0), []byte("c"), false)
	if ev == nil || ev.Master || ev.ID != sid(2, 0) {
		t.Fatalf("eviction = %+v, want the non-master", ev)
	}
	if !s.IsMaster(sid(1, 0)) {
		t.Fatal("master was lost")
	}
}

func TestStoreBasicPolicyEvictsOldest(t *testing.T) {
	s := NewStore(2, core.PolicyBasic)
	s.Insert(sid(1, 0), []byte("m"), true)
	s.Insert(sid(2, 0), []byte("r"), false)
	ev := s.Insert(sid(3, 0), []byte("c"), false)
	if ev == nil || ev.ID != sid(1, 0) || !ev.Master {
		t.Fatalf("eviction = %+v, want oldest (the master)", ev)
	}
}

func TestAcceptForwardRules(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	s.Insert(sid(1, 0), []byte("x"), false)
	s.Insert(sid(2, 0), []byte("y"), false)

	// The destination's oldest block is older than the forwarded age:
	// accepted, displacing that oldest block (which is exactly when the
	// forwarder chooses this destination).
	young := s.shards[0].clock + 1000
	acc, displaced := s.AcceptForward(sid(3, 0), []byte("f"), young)
	if !acc || displaced == nil || displaced.ID != sid(1, 0) {
		t.Fatalf("accept=%v displaced=%+v", acc, displaced)
	}
	if !s.IsMaster(sid(3, 0)) {
		t.Fatal("forwarded block not master")
	}

	// Everything at the destination is younger than the forwarded block:
	// dropped (§3 property 2).
	oldest, _ := s.OldestAge()
	acc, displaced = s.AcceptForward(sid(4, 0), []byte("g"), oldest-10)
	if acc || displaced != nil {
		t.Fatalf("forward should be rejected: accept=%v displaced=%+v", acc, displaced)
	}
	if s.Contains(sid(4, 0)) {
		t.Fatal("rejected forward was cached")
	}
}

func TestAcceptForwardPromotesExistingCopy(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	s.Insert(sid(1, 0), []byte("x"), false)
	acc, displaced := s.AcceptForward(sid(1, 0), []byte("x2"), 1)
	if !acc || displaced != nil {
		t.Fatalf("accept=%v displaced=%+v", acc, displaced)
	}
	if !s.IsMaster(sid(1, 0)) {
		t.Fatal("existing copy not promoted")
	}
	data, _ := s.Get(sid(1, 0))
	if !bytes.Equal(data, []byte("x2")) {
		t.Fatal("payload not refreshed")
	}
}

func TestAcceptForwardIntoFreeSpace(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	acc, displaced := s.AcceptForward(sid(1, 0), []byte("x"), 5)
	if !acc || displaced != nil {
		t.Fatalf("forward into empty store: accept=%v displaced=%+v", acc, displaced)
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	s.Insert(sid(1, 0), []byte("x"), true)
	present, master := s.Remove(sid(1, 0))
	if !present || !master || s.Len() != 0 {
		t.Fatal("Remove wrong")
	}
	if present, _ := s.Remove(sid(1, 0)); present {
		t.Fatal("double remove")
	}
}

func TestStoreReinsertRefreshesPayload(t *testing.T) {
	s := NewStore(2, core.PolicyMaster)
	s.Insert(sid(1, 0), []byte("v1"), false)
	if ev := s.Insert(sid(1, 0), []byte("v2"), true); ev != nil {
		t.Fatal("re-insert evicted")
	}
	data, _ := s.Get(sid(1, 0))
	if !bytes.Equal(data, []byte("v2")) || !s.IsMaster(sid(1, 0)) {
		t.Fatal("re-insert did not refresh")
	}
}
