package middleware

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// startRingCluster is startCluster in elastic (consistent-hash) mode: the
// membership machinery under test, not the legacy modulo mapping.
func startRingCluster(t *testing.T, k, capacityBlocks int, sizes map[block.FileID]int64, mut func(i int, cfg *Config)) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		cfg := Config{
			ID:             i,
			CapacityBlocks: capacityBlocks,
			Policy:         core.PolicyMaster,
			Geometry:       testGeom,
			Source:         NewMemSource(testGeom, sizes),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return nodes, client
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rebalanceSettled reports that every listed node has drained its pending
// re-homing pulls.
func rebalanceSettled(nodes []*Node) bool {
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if n.Stats().RebalancePending != 0 {
			return false
		}
	}
	return true
}

// expectWithWrite overlays one written block onto the synthetic content.
func expectWithWrite(f block.FileID, size int64, idx int32, data []byte) []byte {
	out := expect(testGeom, f, size)
	copy(out[int64(idx)*int64(testGeom.Size):], data)
	return out
}

// TestJoinRebalancesAndServes grows a 2-node ring to 3 under concurrent
// reads: zero client-visible errors, the joiner takes over its slice of
// the ring (pulling write-through state from the previous homes), and
// every file — including one written before the join — reads back correct
// through every entry node.
func TestJoinRebalancesAndServes(t *testing.T) {
	sizes := map[block.FileID]int64{}
	const files = 24
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = 2048
	}
	nodes, client := startRingCluster(t, 2, 256, sizes, nil)

	// Divergent write-through state the joiner must not lose.
	written := bytes.Repeat([]byte{0xAB}, 1024)
	if err := client.Write(3, 0, written); err != nil {
		t.Fatal(err)
	}
	for f := block.FileID(0); f < files; f++ {
		if _, err := client.Read(f); err != nil {
			t.Fatal(err)
		}
	}

	// Reads hammer the cluster while the membership changes.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := block.FileID(0); !stop.Load(); f = (f + 1) % files {
			if _, err := client.Read(f); err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
		}
	}()

	joiner, err := Start(Config{
		ID: 2, CapacityBlocks: 256, Policy: core.PolicyMaster,
		Geometry: testGeom, Source: NewMemSource(testGeom, sizes),
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, joiner)
	t.Cleanup(func() { joiner.Close() })
	if err := joiner.Join(nodes[0].Addr()); err != nil {
		t.Fatalf("join: %v", err)
	}

	waitFor(t, 10*time.Second, "all nodes at epoch 2+", func() bool {
		for _, n := range nodes {
			if n.MembershipEpoch() < 2 {
				return false
			}
		}
		return true
	})
	waitFor(t, 10*time.Second, "rebalance to settle", func() bool { return rebalanceSettled(nodes) })

	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("read error during join: %v", err)
	default:
	}

	// The joiner owns a slice of the ring now.
	owned := 0
	for f := block.FileID(0); f < files; f++ {
		if h, err := joiner.home(f); err == nil && h == 2 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("joiner owns no files (24 files over 3 nodes)")
	}
	if pulled := joiner.Stats().RebalancedBlocks; pulled == 0 {
		t.Fatal("joiner pulled no blocks")
	}

	// Every file correct through every entry, written block included.
	if err := client.RefreshMembership(); err != nil {
		t.Fatal(err)
	}
	for f := block.FileID(0); f < files; f++ {
		want := expect(testGeom, f, 2048)
		if f == 3 {
			want = expectWithWrite(f, 2048, 0, written)
		}
		for entry := 0; entry < 3; entry++ {
			got, err := client.ReadVia(entry, f)
			if err != nil {
				t.Fatalf("file %d via node %d: %v", f, entry, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("file %d via node %d: content mismatch after join", f, entry)
			}
		}
	}
}

// TestDrainHandsOffAndServes shrinks a 3-node ring to 2 gracefully: drain,
// wait for the survivors to pull the drained node's slice (write-through
// state included), remove it, shut it down — and every file still reads
// back correct with zero errors.
func TestDrainHandsOffAndServes(t *testing.T) {
	sizes := map[block.FileID]int64{}
	const files = 24
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = 2048
	}
	nodes, client := startRingCluster(t, 3, 256, sizes, nil)

	// Write one block of every file: the drained node's write-through
	// state must survive the hand-off wherever each file homes.
	written := bytes.Repeat([]byte{0xCD}, 1024)
	for f := block.FileID(0); f < files; f++ {
		if err := client.Write(f, 1, written); err != nil {
			t.Fatal(err)
		}
	}

	const drained = 2
	if err := client.DrainNode(drained); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitFor(t, 10*time.Second, "drain epoch everywhere", func() bool {
		for _, n := range nodes {
			if n.MembershipEpoch() < 2 {
				return false
			}
		}
		return true
	})
	survivors := []*Node{nodes[0], nodes[1]}
	waitFor(t, 10*time.Second, "survivors to pull the drained slice", func() bool {
		return rebalanceSettled(survivors)
	})
	if err := client.RemoveNode(drained); err != nil {
		t.Fatalf("remove: %v", err)
	}
	waitFor(t, 10*time.Second, "removal epoch on survivors", func() bool {
		return nodes[0].MembershipEpoch() >= 3 && nodes[1].MembershipEpoch() >= 3
	})
	nodes[2].Close()
	nodes[2] = nil

	for f := block.FileID(0); f < files; f++ {
		want := expectWithWrite(f, 2048, 1, written)
		for _, entry := range []int{0, 1} {
			got, err := client.ReadVia(entry, f)
			if err != nil {
				t.Fatalf("file %d via node %d after drain: %v", f, entry, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("file %d via node %d: content mismatch after drain", f, entry)
			}
		}
	}
	// The survivors own everything.
	for f := block.FileID(0); f < files; f++ {
		h, err := nodes[0].home(f)
		if err != nil {
			t.Fatal(err)
		}
		if h == drained {
			t.Fatalf("file %d still homes at the drained node", f)
		}
	}
}

// TestHeartbeatPromotesDeadAndRehomes crashes a node with no graceful
// drain: the survivors' heartbeats suspect it, promote it to dead, and
// re-home its slice of the ring — reads keep succeeding throughout (the
// successor fallback bridges the gap before the promotion lands).
func TestHeartbeatPromotesDeadAndRehomes(t *testing.T) {
	sizes := map[block.FileID]int64{}
	const files = 18
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = 2048
	}
	nodes, client := startRingCluster(t, 3, 256, sizes, func(i int, cfg *Config) {
		cfg.HeartbeatInterval = 10 * time.Millisecond
		cfg.SuspectTimeout = 30 * time.Millisecond
		cfg.DeadTimeout = 60 * time.Millisecond
		cfg.RPCTimeout = 250 * time.Millisecond
	})

	for f := block.FileID(0); f < files; f++ {
		if _, err := client.Read(f); err != nil {
			t.Fatal(err)
		}
	}

	const crashed = 2
	nodes[2].Close()
	nodes[2] = nil

	waitFor(t, 15*time.Second, "dead promotion", func() bool {
		for _, n := range nodes[:2] {
			v := n.viewRef()
			if v == nil || v.members[crashed].State != stateDead {
				return false
			}
		}
		return true
	})
	waitFor(t, 10*time.Second, "re-homing to settle", func() bool {
		return rebalanceSettled(nodes[:2])
	})

	if hb := nodes[0].Stats().HeartbeatFailures + nodes[1].Stats().HeartbeatFailures; hb == 0 {
		t.Fatal("no heartbeat failures recorded around a crash")
	}
	for f := block.FileID(0); f < files; f++ {
		h, err := nodes[0].home(f)
		if err != nil {
			t.Fatal(err)
		}
		if h == crashed {
			t.Fatalf("file %d still homes at the crashed node", f)
		}
		for _, entry := range []int{0, 1} {
			got, err := client.ReadVia(entry, f)
			if err != nil {
				t.Fatalf("file %d via node %d after crash: %v", f, entry, err)
			}
			if !bytes.Equal(got, expect(testGeom, f, 2048)) {
				t.Fatalf("file %d via node %d: content mismatch after crash", f, entry)
			}
		}
	}
}

// TestClientSurvivesOriginalEntryDeath dials a client at a single node,
// lets the failover path refresh the membership view, then kills that
// original entry point: the client keeps working through members it only
// learned about from the view.
func TestClientSurvivesOriginalEntryDeath(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048, 1: 2048, 2: 2048, 3: 2048}
	nodes, seeded := startRingCluster(t, 3, 256, sizes, nil)
	defer seeded.Close()

	client, err := DialCluster([]string{nodes[0].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Read(0); err != nil {
		t.Fatal(err)
	}
	// Learn the full membership while the original entry is still alive
	// (the failover path calls this on transient failures).
	if err := client.RefreshMembership(); err != nil {
		t.Fatal(err)
	}
	if client.MembershipEpoch() == 0 {
		t.Fatal("client learned no membership view")
	}

	// Gracefully remove node 0 — the client's only dialed address.
	if err := client.DrainNode(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "survivors to pull node 0's slice", func() bool {
		return rebalanceSettled(nodes[1:])
	})
	if err := client.RemoveNode(0); err != nil {
		t.Fatal(err)
	}
	nodes[0].Close()
	nodes[0] = nil
	if err := client.RefreshMembership(); err != nil {
		t.Fatalf("refresh after entry death: %v", err)
	}

	for f := block.FileID(0); f < 4; f++ {
		got, err := client.Read(f)
		if err != nil {
			t.Fatalf("read %d after original entry died: %v", f, err)
		}
		if !bytes.Equal(got, expect(testGeom, f, 2048)) {
			t.Fatalf("file %d: content mismatch", f)
		}
	}
}

// TestStaticClusterRejectsMembershipChanges pins the compatibility mode:
// a StaticHome cluster's membership is fixed.
func TestStaticClusterRejectsMembershipChanges(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	nodes, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	if err := client.DrainNode(1); err == nil {
		t.Fatal("static cluster accepted a drain")
	}
	joiner, err := Start(Config{
		ID: 2, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: testGeom, Source: NewMemSource(testGeom, sizes),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.Join(nodes[0].Addr()); err == nil {
		t.Fatal("static cluster admitted a joiner")
	}
}
