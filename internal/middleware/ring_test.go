package middleware

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/block"
)

func allAlive(n int) []memberInfo {
	members := make([]memberInfo, n)
	for i := range members {
		members[i] = memberInfo{Addr: "x", State: stateAlive}
	}
	return members
}

// TestRingDeterministicMapping pins that the mapping is a pure function of
// (file, membership): two independently built views agree on every key,
// and RingHome matches the view computation.
func TestRingDeterministicMapping(t *testing.T) {
	a := newMemberView(1, false, allAlive(5))
	b := newMemberView(7, false, allAlive(5))
	for f := block.FileID(0); f < 10000; f++ {
		ha, ok := a.home(f)
		if !ok {
			t.Fatalf("no home for %d", f)
		}
		hb, _ := b.home(f)
		if ha != hb {
			t.Fatalf("file %d: views disagree (%d vs %d)", f, ha, hb)
		}
		if rh := RingHome(f, 5); rh != ha {
			t.Fatalf("file %d: RingHome %d != view home %d", f, rh, ha)
		}
	}
}

// TestStaticHomeIsModulo pins the StaticHome mapping byte-for-byte to the
// paper's original int(f) % clusterSize.
func TestStaticHomeIsModulo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		v := newMemberView(1, true, allAlive(n))
		for f := block.FileID(0); f < 1000; f++ {
			h, ok := v.home(f)
			if !ok {
				t.Fatalf("n=%d: no home for %d", n, f)
			}
			if h != int(f)%n {
				t.Fatalf("n=%d file %d: static home %d, want %d", n, f, h, int(f)%n)
			}
		}
	}
}

// TestRingBalance bounds the placement skew: with 64 vnodes per member no
// member's share of 100k keys strays past 2x the fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		v := newMemberView(1, false, allAlive(n))
		counts := make([]int, n)
		const keys = 100000
		for f := block.FileID(0); f < keys; f++ {
			h, _ := v.home(f)
			counts[h]++
		}
		fair := keys / n
		for i, c := range counts {
			if c > 2*fair || c < fair/2 {
				t.Fatalf("n=%d: node %d holds %d of %d keys (fair share %d)", n, i, c, keys, fair)
			}
		}
	}
}

// TestRingMovedFractionOnGrow pins consistent hashing's defining property:
// growing n -> n+1 moves roughly 1/(n+1) of the keys, and every moved key
// moves TO the joiner (no key moves between surviving members).
func TestRingMovedFractionOnGrow(t *testing.T) {
	for _, n := range []int{3, 7} {
		old := newMemberView(1, false, allAlive(n))
		grown := newMemberView(2, false, allAlive(n+1))
		const keys = 50000
		moved := 0
		for f := block.FileID(0); f < keys; f++ {
			ho, _ := old.home(f)
			hg, _ := grown.home(f)
			if ho == hg {
				continue
			}
			if hg != n {
				t.Fatalf("n=%d file %d: moved %d -> %d, not to the joiner %d", n, f, ho, hg, n)
			}
			moved++
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		if frac < want/2 || frac > want*2 {
			t.Fatalf("n=%d: moved fraction %.3f, want ~%.3f", n, frac, want)
		}
	}
}

// TestHomeExcludingIsPreJoinHome pins the property the rebalance diff
// relies on: for a joiner with no prior view, the ring minus the joiner IS
// the pre-join ring, so homeExcluding(f, joiner) equals the old home for
// every key.
func TestHomeExcludingIsPreJoinHome(t *testing.T) {
	const n = 6
	old := newMemberView(1, false, allAlive(n))
	grown := newMemberView(2, false, allAlive(n+1))
	for f := block.FileID(0); f < 20000; f++ {
		ho, _ := old.home(f)
		hx, _ := grown.homeExcluding(f, n)
		if ho != hx {
			t.Fatalf("file %d: homeExcluding(joiner)=%d, pre-join home=%d", f, hx, ho)
		}
	}
}

// TestHomeExcludingSkipsDownNode pins the read path's crash fallback: the
// successor differs from the excluded node and agrees with the ring that
// no longer contains it (what the view becomes once the death is
// promoted).
func TestHomeExcludingSkipsDownNode(t *testing.T) {
	const n = 5
	full := newMemberView(1, false, allAlive(n))
	members := allAlive(n)
	members[2].State = stateDead
	without := newMemberView(2, false, members)
	for f := block.FileID(0); f < 20000; f++ {
		h, _ := full.home(f)
		if h != 2 {
			continue
		}
		succ, ok := full.homeExcluding(f, 2)
		if !ok || succ == 2 {
			t.Fatalf("file %d: no successor past node 2", f)
		}
		promoted, _ := without.home(f)
		if succ != promoted {
			t.Fatalf("file %d: successor %d != post-promotion home %d", f, succ, promoted)
		}
	}
}

// TestViewCodecRoundTrip pins the wire codec.
func TestViewCodecRoundTrip(t *testing.T) {
	members := []memberInfo{
		{Addr: "127.0.0.1:7001", State: stateAlive},
		{Addr: "127.0.0.1:7002", State: stateDraining},
		{Addr: "127.0.0.1:7003", State: stateDead},
		{Addr: "", State: stateDead}, // hole
		{Addr: "127.0.0.1:7005", State: stateAlive},
	}
	v := newMemberView(42, false, members)
	got, err := decodeView(appendView(nil, v))
	if err != nil {
		t.Fatal(err)
	}
	if got.epoch != 42 || got.static || got.size() != len(members) {
		t.Fatalf("round trip: epoch=%d static=%v size=%d", got.epoch, got.static, got.size())
	}
	for i, m := range members {
		if got.members[i] != m {
			t.Fatalf("member %d: %+v != %+v", i, got.members[i], m)
		}
	}
	for f := block.FileID(0); f < 5000; f++ {
		hv, okv := v.home(f)
		hg, okg := got.home(f)
		if hv != hg || okv != okg {
			t.Fatalf("file %d: decoded view maps to %d, original %d", f, hg, hv)
		}
	}
}

// TestViewCodecRejectsGarbage pins the decoder's bounds checks.
func TestViewCodecRejectsGarbage(t *testing.T) {
	v := newMemberView(1, false, allAlive(3))
	good := appendView(nil, v)
	cases := map[string][]byte{
		"short":    good[:5],
		"trailing": append(append([]byte(nil), good...), 0xff),
		"badState": func() []byte {
			b := append([]byte(nil), good...)
			b[13] = 99 // first member's state byte
			return b
		}(),
		"truncatedAddr": good[:len(good)-1],
	}
	for name, p := range cases {
		if _, err := decodeView(p); err == nil {
			t.Errorf("%s: decodeView accepted corrupt payload", name)
		}
	}
}

// TestConcurrentLookupsDuringEpochSwap soaks the lock-free read path under
// -race: readers hammer home()/homeExcluding()/manager() while a writer
// swaps in views of growing and shrinking size.
func TestConcurrentLookupsDuringEpochSwap(t *testing.T) {
	var p atomic.Pointer[memberView]
	p.Store(newMemberView(1, false, allAlive(2)))
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for f := block.FileID(seed); !stop.Load(); f++ {
				v := p.Load()
				h, ok := v.home(f)
				if !ok {
					t.Error("view with no home")
					return
				}
				if h >= v.size() {
					t.Errorf("home %d out of range %d", h, v.size())
					return
				}
				if s, ok := v.homeExcluding(f, h); ok && s == h && v.aliveCount() > 1 {
					t.Errorf("successor %d equals excluded home", s)
					return
				}
				v.manager(uint32(f))
			}
		}(r * 1000)
	}
	for e := uint64(2); e < 400; e++ {
		n := 2 + int(e%7)
		members := allAlive(n)
		if e%3 == 0 {
			members[int(e)%n].State = stateDraining
		}
		p.Store(newMemberView(e, false, members))
	}
	stop.Store(true)
	wg.Wait()
}
