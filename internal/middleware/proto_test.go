package middleware

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/block"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Type:      MsgBlockData,
		Flags:     FlagMaster,
		Req:       42,
		Sender:    3,
		OldestAge: 123456789,
		File:      7,
		Idx:       9,
		Aux:       -5,
		Payload:   []byte("hello blocks"),
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Flags != f.Flags || got.Req != f.Req ||
		got.Sender != f.Sender || got.OldestAge != f.OldestAge ||
		got.File != f.File || got.Idx != f.Idx || got.Aux != f.Aux ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	if got.ID() != (block.ID{File: 7, Idx: 9}) {
		t.Fatalf("ID() = %v", got.ID())
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, flags uint8, req uint32, sender int32, age int64, file int32, idx int32, aux int64, payload []byte) bool {
		in := &Frame{
			Type: MsgType(typ), Flags: flags, Req: req, Sender: sender,
			OldestAge: age, File: block.FileID(file), Idx: idx, Aux: aux, Payload: payload,
		}
		var buf bytes.Buffer
		err := WriteFrame(&buf, in)
		if len(payload) > 0 && !typeCarriesPayload(in.Type) {
			// The codec refuses payloads on types that never carry data.
			return err != nil
		}
		if err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Flags == in.Flags && out.Req == in.Req &&
			out.Sender == in.Sender && out.OldestAge == in.OldestAge &&
			out.File == in.File && out.Idx == in.Idx && out.Aux == in.Aux &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsHugePayload(t *testing.T) {
	var buf bytes.Buffer
	f := &Frame{Type: MsgAck}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the payload length field to exceed the limit.
	raw[35], raw[36], raw[37], raw[38] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

func TestWriteFrameRejectsHugePayload(t *testing.T) {
	f := &Frame{Type: MsgBlockData, Payload: make([]byte, maxPayload+1)}
	if err := WriteFrame(&bytes.Buffer{}, f); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPackRangeBoundaries(t *testing.T) {
	const maxOff = int64(1)<<39 - 1 // 512 GB file cap: offset fits 39 value bits
	for _, off := range []int64{0, 1, int64(1) << 24, maxOff - 1, maxOff} {
		for _, n := range []int{0, 1, maxRangeLen - 1, maxRangeLen} {
			gotOff, gotN := unpackRange(packRange(off, n))
			if gotOff != off || gotN != n {
				t.Errorf("packRange(%d, %d) round-tripped to (%d, %d)", off, n, gotOff, gotN)
			}
		}
	}
}

func TestReadFrameRejectsPayloadOnBareType(t *testing.T) {
	// Encode a legitimate payload-carrying frame, then flip its type to one
	// that never carries data: the decoder must refuse the 4 KB payload
	// instead of allocating and delivering it.
	var buf bytes.Buffer
	f := &Frame{Type: MsgBlockData, Payload: make([]byte, 4096)}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = byte(MsgAck)
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("payload on a zero-payload type accepted")
	}
}

func TestWriteFrameRejectsPayloadOnBareType(t *testing.T) {
	f := &Frame{Type: MsgInvalidate, Payload: []byte("x")}
	if err := WriteFrame(&bytes.Buffer{}, f); err == nil {
		t.Fatal("payload on a zero-payload type accepted on encode")
	}
}

func TestReadFramePerConnPayloadLimit(t *testing.T) {
	var buf bytes.Buffer
	f := &Frame{Type: MsgBlockData, Payload: make([]byte, 2048)}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := readFrame(bytes.NewReader(raw), 1024); err == nil {
		t.Fatal("payload above the per-conn limit accepted")
	}
	got, err := readFrame(bytes.NewReader(raw), 2048)
	if err != nil {
		t.Fatalf("payload at the per-conn limit rejected: %v", err)
	}
	if len(got.Payload) != 2048 {
		t.Fatalf("payload = %d bytes", len(got.Payload))
	}
}

func TestReadFrameShortInput(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("tiny")); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestErrFrame(t *testing.T) {
	f := errFrame("boom %d", 7)
	if f.Type != MsgErr {
		t.Fatal("wrong type")
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("Err() = %v", err)
	}
	ok := &Frame{Type: MsgAck}
	if ok.Err() != nil {
		t.Fatal("MsgAck reported an error")
	}
}

func TestIsResponse(t *testing.T) {
	for _, typ := range []MsgType{MsgBlockData, MsgBlockMiss, MsgFileData, MsgDirResult, MsgForwardAck, MsgAck, MsgErr, MsgStatsReply} {
		if !isResponse(typ) {
			t.Errorf("type %d should be a response", typ)
		}
	}
	for _, typ := range []MsgType{MsgGetBlock, MsgReadFile, MsgDirLookup, MsgForward, MsgWriteBlock, MsgInvalidate, MsgPutBlock, MsgStats} {
		if isResponse(typ) {
			t.Errorf("type %d should be a request", typ)
		}
	}
}

func TestSyntheticBlockDeterministic(t *testing.T) {
	a := SyntheticBlock(1, 2, 100)
	b := SyntheticBlock(1, 2, 100)
	if !bytes.Equal(a, b) {
		t.Fatal("synthetic content not deterministic")
	}
	c := SyntheticBlock(1, 3, 100)
	if bytes.Equal(a, c) {
		t.Fatal("different blocks have identical content")
	}
}
