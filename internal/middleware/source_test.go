package middleware

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/block"
)

func TestMemSourceReadBlock(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	m := NewMemSource(geom, map[block.FileID]int64{0: 2500})
	size, err := m.FileSize(0)
	if err != nil || size != 2500 {
		t.Fatalf("FileSize = %d, %v", size, err)
	}
	b0, err := m.ReadBlock(0, 0)
	if err != nil || len(b0) != 1024 {
		t.Fatalf("block 0: %d bytes, %v", len(b0), err)
	}
	b2, err := m.ReadBlock(0, 2)
	if err != nil || len(b2) != 2500-2048 {
		t.Fatalf("final block: %d bytes, %v", len(b2), err)
	}
	if _, err := m.ReadBlock(0, 3); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := m.ReadBlock(9, 0); err == nil {
		t.Fatal("unknown file accepted")
	}
}

func TestMemSourceWriteOverrides(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	m := NewMemSource(geom, map[block.FileID]int64{0: 2048})
	orig, _ := m.ReadBlock(0, 1)
	newData := bytes.Repeat([]byte{9}, 1024)
	if err := m.WriteBlock(0, 1, newData); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBlock(0, 1)
	if err != nil || !bytes.Equal(got, newData) {
		t.Fatal("override not returned")
	}
	if bytes.Equal(orig, got) {
		t.Fatal("write had no effect")
	}
	if err := m.WriteBlock(5, 0, newData); err == nil {
		t.Fatal("write to unknown file accepted")
	}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	content := bytes.Repeat([]byte("abcdefgh"), 300) // 2400 bytes
	if err := os.WriteFile(filepath.Join(dir, "a.dat"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	d := NewDirSource(geom, dir, map[block.FileID]string{3: "a.dat"})

	size, err := d.FileSize(3)
	if err != nil || size != 2400 {
		t.Fatalf("FileSize = %d, %v", size, err)
	}
	b1, err := d.ReadBlock(3, 1)
	if err != nil || !bytes.Equal(b1, content[1024:2048]) {
		t.Fatalf("block 1 mismatch: %v", err)
	}
	last, err := d.ReadBlock(3, 2)
	if err != nil || !bytes.Equal(last, content[2048:]) {
		t.Fatalf("final short block mismatch: %v", err)
	}
	if _, err := d.ReadBlock(3, 9); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := d.FileSize(0); err == nil {
		t.Fatal("unknown file accepted")
	}

	// Write-back.
	blk := bytes.Repeat([]byte{'Z'}, 1024)
	if err := d.WriteBlock(3, 0, blk); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(3, 0)
	if err != nil || !bytes.Equal(got, blk) {
		t.Fatal("write-back not visible")
	}
}

func TestBlockLen(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	cases := []struct {
		size int64
		idx  int32
		want int
	}{
		{2048, 0, 1024},
		{2048, 1, 1024},
		{2048, 2, -1},
		{2500, 2, 452},
		{100, 0, 100},
		{100, -1, -1},
	}
	for _, c := range cases {
		if got := blockLen(geom, c.size, c.idx); got != c.want {
			t.Errorf("blockLen(%d, %d) = %d, want %d", c.size, c.idx, got, c.want)
		}
	}
}
