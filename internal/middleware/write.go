package middleware

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/block"
)

// WriteBlock implements the paper's §6 write extension with a
// write-invalidate protocol: every cached copy in the cluster is
// invalidated, the content is written through to the home node's backing
// store, and the writer becomes the new master holder. Per-block semantics
// are last-writer-wins; ordering across concurrent writers of the same
// block is not defined (the paper leaves full write protocols to future
// work).
//
// By default the cluster-wide invalidation rides the asynchronous bus
// (inval.go): the writer invalidates locally, writes through, installs the
// new master, publishes one sequenced record, and returns — peer latency is
// off the critical path, and peers converge within the bounded staleness
// window. Config.SyncInvalidate restores the blocking fan-out.
func (n *Node) WriteBlock(id block.ID, data []byte) error {
	size, err := n.cfg.Source.FileSize(id.File)
	if err != nil {
		return err
	}
	if want := blockLen(n.geom, size, id.Idx); want < 0 || len(data) != want {
		return fmt.Errorf("middleware: write of %d bytes to %v (block is %d bytes)", len(data), id, want)
	}
	n.c.writes.Add(1)

	bus := n.busRef()
	if bus == nil {
		return n.writeBlockSync(id, data)
	}

	// 1. Invalidate the local copy now: the writer must never read its own
	// stale bytes, and the new master is installed below.
	n.handleInvalidate(id)

	// 2. Write through to the home node's disk. This is the durability
	// point: transient failures retry, and a home that stays down fails the
	// write. The publish happens after this (and after the master insert),
	// so a peer whose invalidation triggers a re-fetch can only find the
	// new bytes, never a pre-write disk image.
	if err := n.writeThrough(id, data); err != nil {
		return err
	}

	// 3. The writer holds the new master copy.
	n.insertBlock(id, data, true)
	err = n.loc.Update(id, int32(n.cfg.ID))

	// 4. Publish the invalidation record: per-peer sender loops deliver it
	// in batched MsgInvalidateN frames in the background. The stamp orders
	// this write against racing replica pushes of the old content.
	if seq := bus.publish(id); seq != 0 {
		n.recordInvalStamp(id, n.cfg.ID, seq)
	}

	// 5. Hot-block fast re-replication, as in the sync path.
	if n.hot != nil && n.hot.Score(hotKey(id)) >= n.repThreshold && n.pushAllowed(id) {
		go n.pushReplicas(id)
	}
	return err
}

// writeBlockSync is the pre-bus §6 write path: a blocking MsgInvalidate
// fan-out to every peer, then the write-through. Kept byte-identical for
// Config.SyncInvalidate (and single-node clusters, where there is no peer
// to invalidate).
func (n *Node) writeBlockSync(id block.ID, data []byte) error {
	// 1. Invalidate every cached copy cluster-wide (including our own; the
	// new content is installed below). The fan-out always completes: a
	// failure at one peer must not leave later peers holding copies that
	// were never told about the write. Transport failures (crashed,
	// partitioned, or suspect peers) degrade to "that peer holds no
	// cache" — its copy dies with it, or goes stale until the breaker
	// heals and the next fetch repairs it — while application errors are
	// aggregated and reported after the full fan-out.
	n.handleInvalidate(id)
	v := n.viewRef()
	var wg sync.WaitGroup
	errs := make([]error, n.clusterSize())
	for i := 0; i < n.clusterSize(); i++ {
		if i == n.cfg.ID || (v != nil && !v.reachable(i)) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := getFrame()
			req.Type, req.File, req.Idx = MsgInvalidate, id.File, id.Idx
			resp, err := n.reliableRPC(i, req, 0)
			releaseFrame(req)
			if err == nil {
				releaseFrame(resp)
				return
			}
			if isTransient(err) {
				n.c.invalidateSkips.Add(1)
				n.trace(traceInvalidateSkip, i, id, 0)
				return
			}
			errs[i] = fmt.Errorf("node %d: %w", i, err)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("middleware: invalidate %v: %w", id, err)
	}

	// 2. Write through to the home node's disk. This is the durability
	// point: transient failures retry, and a home that stays down fails
	// the write (reported to the caller, unlike the degradable fan-out).
	if err := n.writeThrough(id, data); err != nil {
		return err
	}

	// 3. The writer holds the new master copy.
	n.insertBlock(id, data, true)
	err := n.loc.Update(id, int32(n.cfg.ID))

	// 4. A write to a hot block tore down its whole copy set (step 1): if
	// the writer's own serve history says the block is still above the
	// replication threshold, push fresh replicas immediately instead of
	// waiting for the serve rate to re-cross it — under a flash crowd the
	// gap between invalidation and re-replication is exactly where tail
	// latency is made. The regular cooldown applies: the manager's repush
	// tombstone (rate-limited per epoch) is the primary write re-spread
	// path, this is the fast path for a master re-writing its own hot
	// block.
	if n.hot != nil && n.hot.Score(hotKey(id)) >= n.repThreshold && n.pushAllowed(id) {
		go n.pushReplicas(id)
	}
	return err
}

// writeThrough persists data at id's home: a local disk write when this
// node is the home, a retried MsgPutBlock otherwise. Under the elastic
// ring an unreachable home degrades to its ring successor — the node that
// inherits the file once the failure becomes a membership change — so
// writes stay error-free through a crash.
func (n *Node) writeThrough(id block.ID, data []byte) error {
	home, err := n.home(id.File)
	if err != nil {
		return err
	}
	err = n.putMaster(id, data, home)
	if err != nil && isTransient(err) {
		if succ, ok := n.ringSuccessor(id.File, home); ok {
			n.c.homeFallbacks.Add(1)
			n.trace(traceHomeFallback, home, id, 2)
			err = n.putMaster(id, data, succ)
		}
	}
	return err
}

// putMaster persists one block at the given home node.
func (n *Node) putMaster(id block.ID, data []byte, home int) error {
	if home == n.cfg.ID {
		// Pull the previous home's state first: a migration finishing after
		// this write must not clobber the newer block.
		n.ensureMigrated(id.File)
		return n.cfg.Source.WriteBlock(id.File, id.Idx, data)
	}
	req := getFrame()
	req.Type, req.File, req.Idx, req.Payload = MsgPutBlock, id.File, id.Idx, data
	resp, err := n.reliableRPC(home, req, n.retries)
	req.Payload = nil // caller's slice, not ours to recycle
	releaseFrame(req)
	if err != nil {
		return err
	}
	releaseFrame(resp)
	return nil
}
