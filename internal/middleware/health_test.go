package middleware

import (
	"testing"
	"time"
)

// TestBreakerReopenCounted is the regression test for the breaker
// accounting bug: failure() used to report the open transition only when
// the consecutive-failure count hit the threshold exactly, so a failed
// half-open probe — which re-opens an already-tripped circuit with the
// count past the threshold — was never counted. Every closed→open AND
// half-open→open transition must report true.
func TestBreakerReopenCounted(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: 30 * time.Millisecond}

	// Trip the circuit: the threshold-th failure is the closed→open edge.
	if b.failure() {
		t.Fatal("failure below threshold must not report an open transition")
	}
	if !b.failure() {
		t.Fatal("threshold-th failure must report the closed→open transition")
	}

	// Repeatedly fail the half-open probe: each one is a half-open→open
	// re-trip and must be reported, even though fails is now past the
	// threshold (the old logic returned false here every time).
	for probe := 0; probe < 3; probe++ {
		time.Sleep(40 * time.Millisecond)
		if !b.allow() {
			t.Fatalf("probe %d: cooldown elapsed, the half-open probe should be admitted", probe)
		}
		if !b.failure() {
			t.Fatalf("probe %d: failed half-open probe must report the re-open transition", probe)
		}
		if b.allow() {
			t.Fatalf("probe %d: circuit must be open again right after the failed probe", probe)
		}
	}

	// A successful probe closes the circuit and reports the open→closed
	// transition exactly once.
	time.Sleep(40 * time.Millisecond)
	if !b.allow() {
		t.Fatal("final probe should be admitted")
	}
	if !b.success() {
		t.Fatal("successful probe must report the open→closed transition")
	}
	if b.success() {
		t.Fatal("success on a closed circuit must not report a transition")
	}

	// Back in the closed state the threshold applies afresh.
	if b.failure() {
		t.Fatal("first failure after close must not report an open transition")
	}
	if !b.failure() {
		t.Fatal("threshold-th failure after close must report the transition")
	}
}

// TestBackoffSleepAdvances pins the capped-exponential schedule: each call
// doubles the step up to the cap.
func TestBackoffSleepAdvances(t *testing.T) {
	rng := newLockedRand(1)
	cur := 100 * time.Microsecond
	max := 350 * time.Microsecond
	backoffSleep(&cur, max, rng)
	if cur != 200*time.Microsecond {
		t.Fatalf("after one step cur = %v, want 200µs", cur)
	}
	backoffSleep(&cur, max, rng)
	if cur != max {
		t.Fatalf("after two steps cur = %v, want the cap %v", cur, max)
	}
	backoffSleep(&cur, max, rng)
	if cur != max {
		t.Fatalf("cap must hold, got %v", cur)
	}
}

// TestBackoffJitterRange verifies the ±50% jitter window: every sleep for
// step d lies in [d/2, 3d/2).
func TestBackoffJitterRange(t *testing.T) {
	rng := newLockedRand(7)
	d := 8 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := backoffJitter(d, rng)
		if j < d/2 || j >= d/2+d {
			t.Fatalf("jitter %v outside [%v, %v)", j, d/2, d/2+d)
		}
	}
}
