package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

func TestWriteInvalidateReadBack(t *testing.T) {
	sizes := map[block.FileID]int64{0: 3 * 1024}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)

	// Warm every node's cache with the file.
	for i := 0; i < 3; i++ {
		if _, err := client.ReadVia(i, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Overwrite the middle block.
	newData := bytes.Repeat([]byte{0xAB}, 1024)
	if err := client.Write(0, 1, newData); err != nil {
		t.Fatal(err)
	}

	// Every entry node must observe the new content (stale copies were
	// invalidated cluster-wide).
	want := append(append(append([]byte{},
		SyntheticBlock(0, 0, 1024)...),
		newData...),
		SyntheticBlock(0, 2, 1024)...)
	for i := 0; i < 3; i++ {
		got, err := client.ReadVia(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d returned stale content after write", i)
		}
	}

	var inval uint64
	for _, n := range nodes {
		inval += n.Stats().Invalidations
	}
	if inval == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestWritePersistsAtHome(t *testing.T) {
	sizes := map[block.FileID]int64{1: 2048}
	nodes, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	newData := bytes.Repeat([]byte{0x5C}, 1024)
	if err := client.Write(1, 0, newData); err != nil {
		t.Fatal(err)
	}
	// The home node's backing store must hold the new bytes (write-through).
	home := nodes[1%2] // file 1 homes at node 1 of 2
	got, err := home.cfg.Source.ReadBlock(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("write did not reach the home backing store")
	}
}

func TestWriteRejectsWrongLength(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	_, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	if err := client.Write(0, 0, []byte("short")); err == nil {
		t.Fatal("short write accepted")
	}
	if err := client.Write(0, 9, bytes.Repeat([]byte{1}, 1024)); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestWriteThenWriteAgain(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024}
	_, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	v1 := bytes.Repeat([]byte{1}, 1024)
	v2 := bytes.Repeat([]byte{2}, 1024)
	if err := client.Write(0, 0, v1); err != nil {
		t.Fatal(err)
	}
	if err := client.Write(0, 0, v2); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("second write lost")
	}
}

func TestWriteWorksInHintMode(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	_, client := startCluster(t, 3, 64, core.PolicyMaster, true, sizes)
	if _, err := client.Read(0); err != nil {
		t.Fatal(err)
	}
	v := bytes.Repeat([]byte{7}, 1024)
	if err := client.Write(0, 1, v); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1024:], v) {
		t.Fatal("hint-mode write not visible")
	}
}
