package middleware

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// startCluster spins up k live nodes on loopback sharing a synthetic file
// set, returning the nodes and a connected client. Cleanup is registered on
// t.
func startCluster(t *testing.T, k int, capacityBlocks int, policy core.Policy, hints bool, sizes map[block.FileID]int64) ([]*Node, *Client) {
	t.Helper()
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8} // small blocks keep tests light
	nodes := make([]*Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		n, err := Start(Config{
			ID:             i,
			Hints:          hints,
			CapacityBlocks: capacityBlocks,
			Policy:         policy,
			Geometry:       geom,
			Source:         NewMemSource(geom, sizes),
			StaticHome:     true, // legacy placement tests assume f % k homes
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, client
}

// expect reconstructs the synthetic content of a whole file.
func expect(geom block.Geometry, f block.FileID, size int64) []byte {
	var out []byte
	for i := int32(0); i < geom.Count(size); i++ {
		out = append(out, SyntheticBlock(f, i, blockLen(geom, size, i))...)
	}
	return out
}

var testGeom = block.Geometry{Size: 1024, ExtentBlocks: 8}

func TestLiveReadSingleFile(t *testing.T) {
	sizes := map[block.FileID]int64{0: 3500}
	_, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	got, err := client.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, expect(testGeom, 0, 3500)) {
		t.Fatal("content mismatch")
	}
}

func TestLiveReadsAllNodesAllFiles(t *testing.T) {
	sizes := map[block.FileID]int64{}
	for f := 0; f < 12; f++ {
		sizes[block.FileID(f)] = int64(500 + f*700)
	}
	_, client := startCluster(t, 4, 128, core.PolicyMaster, false, sizes)
	for f := 0; f < 12; f++ {
		for node := 0; node < 4; node++ {
			got, err := client.ReadVia(node, block.FileID(f))
			if err != nil {
				t.Fatalf("file %d via node %d: %v", f, node, err)
			}
			if !bytes.Equal(got, expect(testGeom, block.FileID(f), sizes[block.FileID(f)])) {
				t.Fatalf("file %d via node %d: content mismatch", f, node)
			}
		}
	}
	st, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses == 0 || st.LocalHits+st.RemoteHits == 0 {
		t.Fatalf("no cache activity: %+v", st)
	}
	// Re-reads must be memory hits: disk reads happen once per block.
	var totalBlocks uint64
	for f, sz := range sizes {
		totalBlocks += uint64(testGeom.Count(sz))
		_ = f
	}
	if st.DiskReads > totalBlocks+st.RaceMisses {
		t.Fatalf("disk reads %d exceed unique blocks %d", st.DiskReads, totalBlocks)
	}
}

func TestLiveSingleMasterPerBlock(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4096, 1: 4096, 2: 4096}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	for f := 0; f < 3; f++ {
		for i := 0; i < 3; i++ {
			if _, err := client.ReadVia(i, block.FileID(f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for f := 0; f < 3; f++ {
		for idx := int32(0); idx < testGeom.Count(4096); idx++ {
			id := block.ID{File: block.FileID(f), Idx: idx}
			masters := 0
			for _, n := range nodes {
				if n.store.IsMaster(id) {
					masters++
				}
			}
			if masters != 1 {
				t.Errorf("block %v has %d masters, want 1", id, masters)
			}
		}
	}
}

func TestLiveRemoteHitServesFromPeerMemory(t *testing.T) {
	sizes := map[block.FileID]int64{5: 2048}
	nodes, client := startCluster(t, 2, 64, core.PolicyMaster, false, sizes)
	if _, err := client.ReadVia(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadVia(1, 5); err != nil {
		t.Fatal(err)
	}
	s0, s1 := nodes[0].Stats(), nodes[1].Stats()
	if s1.RemoteHits == 0 {
		t.Fatalf("node 1 should have remote hits: %+v", s1)
	}
	if got := s0.DiskReads + s1.DiskReads; got != 2 {
		t.Fatalf("disk reads = %d, want 2 (one per block, no refetch)", got)
	}
}

func TestLiveEvictionForwarding(t *testing.T) {
	// Tiny caches force evictions; master forwarding should move masters to
	// peers rather than dropping them whenever peers hold older blocks.
	sizes := map[block.FileID]int64{}
	for f := 0; f < 30; f++ {
		sizes[block.FileID(f)] = 1024
	}
	nodes, client := startCluster(t, 3, 8, core.PolicyBasic, false, sizes)
	// Phase 1: node 1 fills with blocks that then sit idle (old ages).
	for f := 0; f < 8; f++ {
		if _, err := client.ReadVia(1, block.FileID(f)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: node 0 churns through the rest; the masters it evicts are
	// younger than node 1's idle content, so they must be forwarded there
	// rather than dropped (§3 second chance).
	for round := 0; round < 3; round++ {
		for f := 8; f < 30; f++ {
			if _, err := client.ReadVia(0, block.FileID(f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var forwards uint64
	for _, n := range nodes {
		forwards += n.Stats().Forwards + n.Stats().ForwardsRejected
	}
	if forwards == 0 {
		t.Fatal("no eviction forwarding happened under memory pressure")
	}
	// Every cache must respect capacity.
	for i, n := range nodes {
		if n.store.Len() > 8 {
			t.Fatalf("node %d over capacity: %d", i, n.store.Len())
		}
	}
}

func TestLiveHintMode(t *testing.T) {
	sizes := map[block.FileID]int64{}
	for f := 0; f < 10; f++ {
		sizes[block.FileID(f)] = 2048
	}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, true, sizes)
	for round := 0; round < 4; round++ {
		for f := 0; f < 10; f++ {
			got, err := client.Read(block.FileID(f))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, expect(testGeom, block.FileID(f), 2048)) {
				t.Fatalf("round %d file %d: content mismatch", round, f)
			}
		}
	}
	// Hint accuracy is tracked and sane.
	for i, n := range nodes {
		if acc := n.Stats().HintAccuracy; acc < 0 || acc > 1 {
			t.Fatalf("node %d hint accuracy = %f", i, acc)
		}
	}
}

func TestLiveConcurrentReaders(t *testing.T) {
	sizes := map[block.FileID]int64{}
	for f := 0; f < 20; f++ {
		sizes[block.FileID(f)] = int64(1024 + f*512)
	}
	_, client := startCluster(t, 4, 32, core.PolicyMaster, false, sizes)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				f := block.FileID((w*25 + i) % 20)
				got, err := client.Read(f)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, expect(testGeom, f, sizes[f])) {
					errs <- errContentMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errContentMismatch = &contentErr{}

type contentErr struct{}

func (*contentErr) Error() string { return "content mismatch under concurrency" }

func TestLiveStatsRPC(t *testing.T) {
	sizes := map[block.FileID]int64{0: 1024}
	nodes, client := startCluster(t, 2, 16, core.PolicyMaster, false, sizes)
	if _, err := client.Read(0); err != nil {
		t.Fatal(err)
	}
	s, err := client.NodeStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node != 0 {
		t.Fatalf("stats for node %d", s.Node)
	}
	local := nodes[0].Stats()
	if s.Accesses != local.Accesses {
		t.Fatalf("RPC stats %d != local %d", s.Accesses, local.Accesses)
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Start(Config{CapacityBlocks: 4}); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestPeerBeforeMembershipFails(t *testing.T) {
	geom := testGeom
	n, err := Start(Config{ID: 0, CapacityBlocks: 4, Geometry: geom,
		Source: NewMemSource(geom, map[block.FileID]int64{0: 1024})})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.home(0); err == nil {
		t.Fatal("home mapping without membership should fail")
	}
}
