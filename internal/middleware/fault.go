package middleware

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// errFaultCrash is what a fault-injected connection returns after a
// mid-frame crash. It reaches callers as a closed-connection error (the
// conn tears down), so the retry layer treats it like any peer crash.
var errFaultCrash = errors.New("middleware: fault injection: connection crashed mid-frame")

// FaultPlan is a seeded, deterministic fault-injection plan for the wire
// path. A plan wraps connections (Config.Fault on nodes, ClientConfig.Fault
// on clients) and perturbs outgoing frames: added latency, silently dropped
// frames (the peer never sees them, so the sender times out), one-way
// partitions, and mid-frame crashes (half a frame is written, then the
// connection dies — the receiver sees a truncated stream).
//
// Each wrapped connection draws its decisions from its own rand stream
// derived from Seed and the connection endpoints, so a given plan
// reproduces the same fault pattern per connection across runs (modulo
// goroutine scheduling of concurrent requests). The zero probability
// fields disable their fault class; a nil *FaultPlan injects nothing.
type FaultPlan struct {
	// Seed anchors every derived rand stream.
	Seed int64
	// DelayProb is the per-frame probability of injecting Delay of extra
	// latency before the frame is written.
	DelayProb float64
	// Delay is the injected latency.
	Delay time.Duration
	// DropProb is the per-frame probability of silently discarding the
	// frame. The stream stays well-formed (whole frames vanish), so the
	// effect is a lost request or response: the waiting side times out.
	DropProb float64
	// CrashProb is the per-frame probability of a mid-frame crash: half the
	// frame is written, then the connection closes. The receiver observes a
	// truncated stream and tears the connection down.
	CrashProb float64
	// Partitions lists one-way partitions [from, to]: every frame a
	// wrapped connection sends from node `from` to node `to` is dropped
	// (responses flowing to→from are unaffected — that is the one-way
	// part). Node IDs follow cluster indices; clients are -1.
	Partitions [][2]int
}

// partitioned reports whether frames from→to are blackholed.
func (p *FaultPlan) partitioned(from, to int) bool {
	for _, pr := range p.Partitions {
		if pr[0] == from && pr[1] == to {
			return true
		}
	}
	return false
}

// Wrap returns nc perturbed by the plan for traffic from node `from` to
// node `to` (use -1 for a client, and to = -1 on accepted connections
// where the remote identity is unknown; partitions then do not apply but
// probabilistic faults do). A nil plan returns nc unchanged.
func (p *FaultPlan) Wrap(nc net.Conn, from, to int) net.Conn {
	if p == nil {
		return nc
	}
	// Distinct endpoints get distinct, stable streams.
	seed := p.Seed ^ (int64(from+2) * 0x1E3779B97F4A7C15) ^ (int64(to+2) * 0x42B2AE3D27D4EB4F)
	return &faultConn{
		Conn: nc,
		plan: p,
		from: from,
		to:   to,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// faultConn applies a FaultPlan to every Write. The protocol writer emits
// exactly one Write per frame on fault-wrapped connections (the writev
// fast path is disabled via singleFrameWrites), so per-Write decisions are
// per-frame decisions and dropped frames never tear the stream framing.
type faultConn struct {
	net.Conn
	plan *FaultPlan
	from, to int

	mu  sync.Mutex
	rng *rand.Rand
}

// singleFrameWrites marks the connection as requiring one contiguous Write
// per frame (see conn.write).
func (fc *faultConn) singleFrameWrites() {}

// faultAction is one decision of the plan for a frame.
type faultAction int

const (
	faultNone faultAction = iota
	faultDrop
	faultCrash
	faultDelay
)

func (fc *faultConn) decide() faultAction {
	if fc.plan.partitioned(fc.from, fc.to) {
		return faultDrop
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	r := fc.rng.Float64()
	switch {
	case fc.plan.DropProb > 0 && r < fc.plan.DropProb:
		return faultDrop
	case fc.plan.CrashProb > 0 && r < fc.plan.DropProb+fc.plan.CrashProb:
		return faultCrash
	case fc.plan.DelayProb > 0 && r < fc.plan.DropProb+fc.plan.CrashProb+fc.plan.DelayProb:
		return faultDelay
	}
	return faultNone
}

func (fc *faultConn) Write(b []byte) (int, error) {
	switch fc.decide() {
	case faultDrop:
		// The frame vanishes; the sender believes it was delivered.
		return len(b), nil
	case faultCrash:
		if half := len(b) / 2; half > 0 {
			fc.Conn.Write(b[:half]) //nolint:errcheck // crashing anyway
		}
		fc.Conn.Close()
		return 0, errFaultCrash
	case faultDelay:
		time.Sleep(fc.plan.Delay)
	}
	return fc.Conn.Write(b)
}
