package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// TestPeerFailureFallsBackToHome kills the node holding a master copy; a
// read locating that master must degrade to a home disk read instead of
// failing.
func TestPeerFailureFallsBackToHome(t *testing.T) {
	// File 0 homes at node 0 (0 % 3). Reading it via node 2 makes node 2
	// the master holder.
	sizes := map[block.FileID]int64{0: 2048}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	want := expect(testGeom, 0, 2048)
	if got, err := client.ReadVia(2, 0); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("prime read: %v", err)
	}
	if !nodes[2].store.IsMaster(block.ID{File: 0, Idx: 0}) {
		t.Fatal("node 2 did not become master holder")
	}

	// Kill the master holder.
	nodes[2].Close()

	// Node 1 locates the master at (dead) node 2; the fetch must fall back
	// to the home node's disk and still return correct content.
	got, err := client.ReadVia(1, 0)
	if err != nil {
		t.Fatalf("read after peer failure: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after peer failure")
	}
	if nodes[1].Stats().RaceMisses == 0 {
		t.Fatal("failure path not recorded as a miss")
	}
}

// TestDirectoryFailureFallsBackToHome kills the directory node; reads on
// the surviving nodes degrade to home reads (for files homed on survivors).
func TestDirectoryFailureFallsBackToHome(t *testing.T) {
	// 3 nodes; directory on node 0. File 1 homes at node 1, file 2 at 2.
	sizes := map[block.FileID]int64{1: 2048, 2: 2048}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	nodes[0].Close() // directory gone

	for _, f := range []block.FileID{1, 2} {
		got, err := client.ReadVia(int(f), f) // entry node = home node
		if err != nil {
			t.Fatalf("read of %d with dead directory: %v", f, err)
		}
		if !bytes.Equal(got, expect(testGeom, f, 2048)) {
			t.Fatalf("content mismatch for %d", f)
		}
	}
}

// TestNodeRestartRejoins restarts a node on its old address; the survivors'
// lazy redial lets the cluster resume serving through it.
func TestNodeRestartRejoins(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048, 1: 2048, 2: 2048}
	nodes, client := startCluster(t, 3, 64, core.PolicyMaster, false, sizes)
	addrs := make([]string, 3)
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	// Warm everything, then kill node 2 and bring a fresh node up on the
	// same address (cold cache, same identity).
	for f := block.FileID(0); f < 3; f++ {
		if _, err := client.Read(f); err != nil {
			t.Fatal(err)
		}
	}
	nodes[2].Close()
	restarted, err := Start(Config{
		ID: 2, Listen: addrs[2], CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: testGeom, Source: NewMemSource(testGeom, sizes), StaticHome: true,
	})
	if err != nil {
		t.Fatalf("restart on %s: %v", addrs[2], err)
	}
	defer restarted.Close()
	restarted.SetAddrs(addrs)

	// Every file is still readable through every entry node, including the
	// restarted one (file 2 homes on node 2: its disk content survives).
	for f := block.FileID(0); f < 3; f++ {
		for entry := 0; entry < 3; entry++ {
			got, err := client.ReadVia(entry, f)
			if err != nil {
				t.Fatalf("file %d via node %d after restart: %v", f, entry, err)
			}
			if !bytes.Equal(got, expect(testGeom, f, 2048)) {
				t.Fatalf("file %d via node %d: content mismatch after restart", f, entry)
			}
		}
	}
}

// TestParallelReadLargeFile exercises the windowed fetch path on a file
// with more blocks than the window.
func TestParallelReadLargeFile(t *testing.T) {
	const size = 40 * 1024 // 40 blocks of 1 KB
	sizes := map[block.FileID]int64{0: size}
	_, client := startCluster(t, 3, 128, core.PolicyMaster, false, sizes)
	for entry := 0; entry < 3; entry++ {
		got, err := client.ReadVia(entry, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, expect(testGeom, 0, size)) {
			t.Fatalf("content mismatch via node %d", entry)
		}
	}
}
