package middleware

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
)

// Evicted describes a block pushed out of the store. Master victims carry
// their data so the node layer can forward them to a peer (§3); replica
// victims carry their flag so the node layer can retire them from the
// manager's replica set.
type Evicted struct {
	ID      block.ID
	Master  bool
	Replica bool
	Age     int64
	Data    []byte
}

// hotKey folds a block ID into the uint64 key space of the hotness tracker
// and the admission sketch.
func hotKey(id block.ID) uint64 {
	return uint64(id.File)<<32 | uint64(uint32(id.Idx))
}

// Store is the thread-safe in-memory block store of a live node: the
// BlockCache replacement structure plus the actual payloads. Ages are
// wall-clock nanoseconds guarded to be per-store monotone: comparable
// across nodes to the accuracy of their clocks, which is all the
// *approximate* global LRU of §3 requires.
type Store struct {
	mu     sync.Mutex
	policy core.Policy
	c      *cache.BlockCache
	data   map[block.ID][]byte
	clock  int64
	// replica marks cached non-master blocks installed by adaptive
	// replication pushes; they are counted separately and retired from the
	// manager's replica set on eviction.
	replica map[block.ID]struct{}
	// adm, when non-nil, is the TinyLFU admission filter: a full cache
	// only accepts a non-master insert whose estimated frequency beats the
	// would-be victim's (one-hit wonders never displace warm blocks).
	adm *core.Admission

	replicaHits      atomic.Uint64
	admissionRejects atomic.Uint64
}

// NewStore builds a store holding at most capacity blocks under the given
// replacement policy (PolicyBasic/PolicySched share replacement; disk
// scheduling does not apply to the live store).
func NewStore(capacity int, policy core.Policy) *Store {
	return &Store{
		policy:  policy,
		c:       cache.NewBlockCache(capacity),
		data:    make(map[block.ID][]byte, capacity),
		replica: make(map[block.ID]struct{}),
	}
}

// SetAdmission installs (or, with nil, removes) the admission filter. Call
// before the store serves traffic.
func (s *Store) SetAdmission(a *core.Admission) {
	s.mu.Lock()
	s.adm = a
	s.mu.Unlock()
}

// ReplicaHits reports accesses served from replica copies.
func (s *Store) ReplicaHits() uint64 { return s.replicaHits.Load() }

// AdmissionRejects reports inserts the admission filter turned away.
func (s *Store) AdmissionRejects() uint64 { return s.admissionRejects.Load() }

// Replicas reports the number of cached replica copies.
func (s *Store) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.replica)
}

// IsReplica reports whether id is held as a replica copy.
func (s *Store) IsReplica(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.replica[id]
	return ok
}

// noteAccessLocked feeds the admission sketch (every access builds the
// frequency estimate) and the replica-hit counter for a served block.
// Callers hold s.mu; hit reports whether the access was served.
func (s *Store) noteAccessLocked(id block.ID, hit bool) {
	if s.adm != nil {
		s.adm.Observe(hotKey(id))
	}
	if hit {
		if _, ok := s.replica[id]; ok {
			s.replicaHits.Add(1)
		}
	}
}

// tick returns the current access age. Callers hold s.mu.
func (s *Store) tick() sim.Time {
	now := time.Now().UnixNano()
	if now <= s.clock {
		now = s.clock + 1
	}
	s.clock = now
	return sim.Time(now)
}

// Get returns the cached content of id (touching LRU state) and whether it
// was present.
func (s *Store) Get(id block.ID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.c.Touch(id, s.tick()) {
		s.noteAccessLocked(id, false)
		return nil, false
	}
	s.noteAccessLocked(id, true)
	return s.data[id], true
}

// GetServe is Get for the peer-serve path: it additionally reports whether
// the block is held as a master copy, so the server can flag the response
// and feed the hotness tracker without a second lock acquisition.
func (s *Store) GetServe(id block.ID) (data []byte, master, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.c.Touch(id, s.tick()) {
		s.noteAccessLocked(id, false)
		return nil, false, false
	}
	s.noteAccessLocked(id, true)
	return s.data[id], s.c.IsMaster(id), true
}

// CopyInto copies the cached content of id into dst (touching LRU state),
// returning the byte count and whether it was present. It lets readers fill
// their output buffer in one copy under the store lock instead of aliasing
// the stored slice and copying later.
func (s *Store) CopyInto(id block.ID, dst []byte) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.c.Touch(id, s.tick()) {
		s.noteAccessLocked(id, false)
		return 0, false
	}
	s.noteAccessLocked(id, true)
	return copy(dst, s.data[id]), true
}

// Contains reports presence without touching.
func (s *Store) Contains(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Contains(id)
}

// IsMaster reports whether id is held as a master copy.
func (s *Store) IsMaster(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.IsMaster(id)
}

// Len reports the number of cached blocks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Len()
}

// Masters reports the number of cached master copies.
func (s *Store) Masters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Masters()
}

// OldestAge reports the logical age of the oldest block; ok is false when
// the store is empty.
func (s *Store) OldestAge() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	age, ok := s.c.OldestAge()
	return int64(age), ok
}

// Insert caches id, evicting per the policy if full. The returned eviction
// (nil if none, or the block was already present) tells the node layer what
// left memory; the caller decides forwarding. When an admission filter is
// installed, a full cache only accepts a non-master insert whose estimated
// frequency beats the would-be victim's; a rejected insert returns nil with
// nothing evicted (the caller already holds the data, it just is not
// cached).
func (s *Store) Insert(id block.ID, data []byte, master bool) *Evicted {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(id, data, master)
}

func (s *Store) insertLocked(id block.ID, data []byte, master bool) *Evicted {
	if s.c.Contains(id) {
		if master {
			s.c.Promote(id)
			delete(s.replica, id)
		}
		s.data[id] = data
		return nil
	}
	var ev *Evicted
	if s.c.Full() {
		if !master && !s.admitLocked(id) {
			return nil
		}
		ev = s.evictOneLocked()
	}
	s.c.Insert(id, master, s.tick())
	s.data[id] = data
	return ev
}

// admitLocked consults the admission filter for a non-master insert into a
// full cache: the candidate must beat the block the policy would evict.
// Callers hold s.mu.
func (s *Store) admitLocked(id block.ID) bool {
	if s.adm == nil {
		return true
	}
	victim, oldestMaster, _, ok := s.c.Oldest()
	if ok && s.policy == core.PolicyMaster && oldestMaster && s.c.NonMasters() > 0 {
		// The policy would spare the master and evict the oldest
		// non-master: that is the block the candidate must beat.
		if vid, _, ok2 := s.c.OldestNonMaster(); ok2 {
			victim = vid
		}
	}
	if !ok {
		return true
	}
	if s.adm.Admit(hotKey(id), hotKey(victim)) {
		return true
	}
	s.admissionRejects.Add(1)
	return false
}

// InsertReplica installs a proactively pushed replica copy, bypassing the
// admission filter (the pusher already established the block is hot). A
// block already cached keeps its role (a master is not demoted); otherwise
// the block is installed as a replica-flagged non-master.
func (s *Store) InsertReplica(id block.ID, data []byte) *Evicted {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c.Contains(id) {
		s.data[id] = data
		if !s.c.IsMaster(id) {
			s.replica[id] = struct{}{}
		}
		return nil
	}
	var ev *Evicted
	if s.c.Full() {
		ev = s.evictOneLocked()
	}
	s.c.Insert(id, false, s.tick())
	s.data[id] = data
	s.replica[id] = struct{}{}
	return ev
}

// evictOneLocked applies the replacement policy. Callers hold s.mu.
func (s *Store) evictOneLocked() *Evicted {
	if _, oldestMaster, _, ok := s.c.Oldest(); ok &&
		s.policy == core.PolicyMaster && oldestMaster && s.c.NonMasters() > 0 {
		id, age, _ := s.c.EvictOldestNonMaster()
		ev := &Evicted{ID: id, Master: false, Age: int64(age)}
		ev.Replica = s.dropReplicaLocked(id)
		delete(s.data, id)
		return ev
	}
	id, master, age, ok := s.c.EvictOldest()
	if !ok {
		return nil
	}
	ev := &Evicted{ID: id, Master: master, Age: int64(age)}
	ev.Replica = s.dropReplicaLocked(id)
	if master {
		ev.Data = s.data[id]
	}
	delete(s.data, id)
	return ev
}

// dropReplicaLocked clears id's replica flag, reporting whether it was set.
// Callers hold s.mu.
func (s *Store) dropReplicaLocked(id block.ID) bool {
	if _, ok := s.replica[id]; ok {
		delete(s.replica, id)
		return true
	}
	return false
}

// AppendRun appends the contiguous run of cached blocks of f starting at
// first (at most max blocks) to buf under one lock acquisition, touching
// each served block's LRU state. It stops at the first gap and returns the
// extended buffer, the number of blocks served, and a bitmask marking which
// served blocks are held as master copies (bit i = block first+i).
func (s *Store) AppendRun(f block.FileID, first int32, max int, buf []byte) ([]byte, int, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	var masters uint32
	for count < max {
		id := block.ID{File: f, Idx: first + int32(count)}
		if !s.c.Touch(id, s.tick()) {
			s.noteAccessLocked(id, false)
			break
		}
		s.noteAccessLocked(id, true)
		if s.c.IsMaster(id) {
			masters |= 1 << uint(count)
		}
		buf = append(buf, s.data[id]...)
		count++
	}
	return buf, count, masters
}

// InsertRun installs a fetched run of contiguous blocks (blocks[i] is block
// first+i) under one lock acquisition and one tick sequence, returning
// every eviction the installs caused, in order. Master victims among them
// get the §3 second chance from the caller, exactly as with Insert.
func (s *Store) InsertRun(f block.FileID, first int32, blocks [][]byte, master bool) []*Evicted {
	s.mu.Lock()
	defer s.mu.Unlock()
	var evs []*Evicted
	for i, data := range blocks {
		if ev := s.insertLocked(block.ID{File: f, Idx: first + int32(i)}, data, master); ev != nil {
			evs = append(evs, ev)
		}
	}
	return evs
}

// AcceptForward applies the §3 arrival rules for a forwarded master:
// dropped if everything local is younger (accepted=false); otherwise the
// local oldest is discarded outright (never re-forwarded — no cascades) and
// the block is installed with its original age. displaced reports what was
// discarded to make room (its directory entry must be dropped if a master).
func (s *Store) AcceptForward(id block.ID, data []byte, age int64) (accepted bool, displaced *Evicted) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c.Contains(id) {
		s.c.Promote(id)
		delete(s.replica, id)
		s.data[id] = data
		return true, nil
	}
	if s.c.Full() {
		if oldest, ok := s.c.OldestAge(); ok && int64(oldest) >= age {
			return false, nil
		}
		vid, vMaster, vAge, _ := s.c.EvictOldest()
		displaced = &Evicted{ID: vid, Master: vMaster, Age: int64(vAge)}
		displaced.Replica = s.dropReplicaLocked(vid)
		delete(s.data, vid)
	}
	s.c.Insert(id, true, sim.Time(age))
	s.data[id] = data
	return true, displaced
}

// Remove discards id; reports presence and master role.
func (s *Store) Remove(id block.ID) (present, master bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	present, master = s.c.Remove(id)
	if present {
		delete(s.data, id)
		delete(s.replica, id)
	}
	return present, master
}

// RemoveAll discards every cached block, returning the IDs that were held
// as masters (their directory entries must be dropped by the caller). Used
// when a truncated invalidation catch-up makes the whole cache suspect.
func (s *Store) RemoveAll() []block.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var masters []block.ID
	for id := range s.data {
		if _, master := s.c.Remove(id); master {
			masters = append(masters, id)
		}
	}
	s.data = make(map[block.ID][]byte)
	s.replica = make(map[block.ID]struct{})
	return masters
}
