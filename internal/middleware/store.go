package middleware

import (
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
)

// Evicted describes a block pushed out of the store. Master victims carry
// their data so the node layer can forward them to a peer (§3).
type Evicted struct {
	ID     block.ID
	Master bool
	Age    int64
	Data   []byte
}

// Store is the thread-safe in-memory block store of a live node: the
// BlockCache replacement structure plus the actual payloads. Ages are
// wall-clock nanoseconds guarded to be per-store monotone: comparable
// across nodes to the accuracy of their clocks, which is all the
// *approximate* global LRU of §3 requires.
type Store struct {
	mu     sync.Mutex
	policy core.Policy
	c      *cache.BlockCache
	data   map[block.ID][]byte
	clock  int64
}

// NewStore builds a store holding at most capacity blocks under the given
// replacement policy (PolicyBasic/PolicySched share replacement; disk
// scheduling does not apply to the live store).
func NewStore(capacity int, policy core.Policy) *Store {
	return &Store{
		policy: policy,
		c:      cache.NewBlockCache(capacity),
		data:   make(map[block.ID][]byte, capacity),
	}
}

// tick returns the current access age. Callers hold s.mu.
func (s *Store) tick() sim.Time {
	now := time.Now().UnixNano()
	if now <= s.clock {
		now = s.clock + 1
	}
	s.clock = now
	return sim.Time(now)
}

// Get returns the cached content of id (touching LRU state) and whether it
// was present.
func (s *Store) Get(id block.ID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.c.Touch(id, s.tick()) {
		return nil, false
	}
	return s.data[id], true
}

// CopyInto copies the cached content of id into dst (touching LRU state),
// returning the byte count and whether it was present. It lets readers fill
// their output buffer in one copy under the store lock instead of aliasing
// the stored slice and copying later.
func (s *Store) CopyInto(id block.ID, dst []byte) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.c.Touch(id, s.tick()) {
		return 0, false
	}
	return copy(dst, s.data[id]), true
}

// Contains reports presence without touching.
func (s *Store) Contains(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Contains(id)
}

// IsMaster reports whether id is held as a master copy.
func (s *Store) IsMaster(id block.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.IsMaster(id)
}

// Len reports the number of cached blocks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Len()
}

// Masters reports the number of cached master copies.
func (s *Store) Masters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Masters()
}

// OldestAge reports the logical age of the oldest block; ok is false when
// the store is empty.
func (s *Store) OldestAge() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	age, ok := s.c.OldestAge()
	return int64(age), ok
}

// Insert caches id, evicting per the policy if full. The returned eviction
// (nil if none, or the block was already present) tells the node layer what
// left memory; the caller decides forwarding.
func (s *Store) Insert(id block.ID, data []byte, master bool) *Evicted {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c.Contains(id) {
		if master {
			s.c.Promote(id)
		}
		s.data[id] = data
		return nil
	}
	var ev *Evicted
	if s.c.Full() {
		ev = s.evictOneLocked()
	}
	s.c.Insert(id, master, s.tick())
	s.data[id] = data
	return ev
}

// evictOneLocked applies the replacement policy. Callers hold s.mu.
func (s *Store) evictOneLocked() *Evicted {
	if _, oldestMaster, _, ok := s.c.Oldest(); ok &&
		s.policy == core.PolicyMaster && oldestMaster && s.c.NonMasters() > 0 {
		id, age, _ := s.c.EvictOldestNonMaster()
		ev := &Evicted{ID: id, Master: false, Age: int64(age)}
		delete(s.data, id)
		return ev
	}
	id, master, age, ok := s.c.EvictOldest()
	if !ok {
		return nil
	}
	ev := &Evicted{ID: id, Master: master, Age: int64(age)}
	if master {
		ev.Data = s.data[id]
	}
	delete(s.data, id)
	return ev
}

// AppendRun appends the contiguous run of cached blocks of f starting at
// first (at most max blocks) to buf under one lock acquisition, touching
// each served block's LRU state. It stops at the first gap and returns the
// extended buffer, the number of blocks served, and a bitmask marking which
// served blocks are held as master copies (bit i = block first+i).
func (s *Store) AppendRun(f block.FileID, first int32, max int, buf []byte) ([]byte, int, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := 0
	var masters uint32
	for count < max {
		id := block.ID{File: f, Idx: first + int32(count)}
		if !s.c.Touch(id, s.tick()) {
			break
		}
		if s.c.IsMaster(id) {
			masters |= 1 << uint(count)
		}
		buf = append(buf, s.data[id]...)
		count++
	}
	return buf, count, masters
}

// InsertRun installs a fetched run of contiguous blocks (blocks[i] is block
// first+i) under one lock acquisition and one tick sequence, returning
// every eviction the installs caused, in order. Master victims among them
// get the §3 second chance from the caller, exactly as with Insert.
func (s *Store) InsertRun(f block.FileID, first int32, blocks [][]byte, master bool) []*Evicted {
	s.mu.Lock()
	defer s.mu.Unlock()
	var evs []*Evicted
	for i, data := range blocks {
		id := block.ID{File: f, Idx: first + int32(i)}
		if s.c.Contains(id) {
			if master {
				s.c.Promote(id)
			}
			s.data[id] = data
			continue
		}
		if s.c.Full() {
			if ev := s.evictOneLocked(); ev != nil {
				evs = append(evs, ev)
			}
		}
		s.c.Insert(id, master, s.tick())
		s.data[id] = data
	}
	return evs
}

// AcceptForward applies the §3 arrival rules for a forwarded master:
// dropped if everything local is younger (accepted=false); otherwise the
// local oldest is discarded outright (never re-forwarded — no cascades) and
// the block is installed with its original age. displaced reports what was
// discarded to make room (its directory entry must be dropped if a master).
func (s *Store) AcceptForward(id block.ID, data []byte, age int64) (accepted bool, displaced *Evicted) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c.Contains(id) {
		s.c.Promote(id)
		s.data[id] = data
		return true, nil
	}
	if s.c.Full() {
		if oldest, ok := s.c.OldestAge(); ok && int64(oldest) >= age {
			return false, nil
		}
		vid, vMaster, vAge, _ := s.c.EvictOldest()
		displaced = &Evicted{ID: vid, Master: vMaster, Age: int64(vAge)}
		delete(s.data, vid)
	}
	s.c.Insert(id, true, sim.Time(age))
	s.data[id] = data
	return true, displaced
}

// Remove discards id; reports presence and master role.
func (s *Store) Remove(id block.ID) (present, master bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	present, master = s.c.Remove(id)
	if present {
		delete(s.data, id)
	}
	return present, master
}
