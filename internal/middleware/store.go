package middleware

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
)

// Evicted describes a block pushed out of the store. Master victims carry
// their data — pinned on the caller's behalf — so the node layer can forward
// them to a peer (§3); call Release when the forward (or the decision to
// drop) is done. Replica victims carry their flag so the node layer can
// retire them from the manager's replica set.
type Evicted struct {
	ID      block.ID
	Master  bool
	Replica bool
	Age     int64
	// Data is the evicted master's content. It stays valid until Release:
	// the eviction transfers the store's payload reference to the Evicted,
	// so the bytes cannot be recycled while a forward is in flight.
	Data []byte
	buf  *payloadBuf
}

// Release drops the pinned payload reference carried by a master eviction.
// Safe on nil and on data-less evictions.
func (ev *Evicted) Release() {
	if ev == nil || ev.buf == nil {
		return
	}
	ev.buf.release()
	ev.buf, ev.Data = nil, nil
}

// hotKey folds a block ID into the uint64 key space of the hotness tracker,
// the admission sketch, and the store's shard hash.
func hotKey(id block.ID) uint64 {
	return uint64(id.File)<<32 | uint64(uint32(id.Idx))
}

// shardMix is the splitmix64 finalizer: it spreads hotKey's structured bits
// (file in the high half, index in the low) uniformly over the shard space,
// so the blocks of one file stripe across every shard.
func shardMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// emptyAge is the per-shard oldest-age sentinel for an empty shard.
const emptyAge = math.MaxInt64

// storeShard is one lock stripe of the store: its own mutex, replacement
// structure, payload map, replica set, and monotone clock. Aggregate
// counters are mirrored into atomics on every unlock, so Len/Masters/
// Replicas/OldestAge never take a shard lock.
type storeShard struct {
	mu      sync.Mutex
	c       *cache.BlockCache
	data    map[block.ID]*payloadBuf
	replica map[block.ID]struct{}
	clock   int64

	oldest atomic.Int64 // age of the shard's oldest block; emptyAge when none
	nlen   atomic.Int64
	nmast  atomic.Int64
	nrepl  atomic.Int64
}

// unlock publishes the shard's aggregate counters and releases its mutex.
// Every locked operation must exit through it: the mirrors are what keep
// the lock-free aggregate reads exact at quiescence.
func (sh *storeShard) unlock() {
	if age, ok := sh.c.OldestAge(); ok {
		sh.oldest.Store(int64(age))
	} else {
		sh.oldest.Store(emptyAge)
	}
	sh.nlen.Store(int64(sh.c.Len()))
	sh.nmast.Store(int64(sh.c.Masters()))
	sh.nrepl.Store(int64(len(sh.replica)))
	sh.mu.Unlock()
}

// tick returns the current access age. Callers hold sh.mu. Ages are
// wall-clock nanoseconds guarded to be per-shard monotone: comparable
// across nodes to the accuracy of their clocks, which is all the
// *approximate* global LRU of §3 requires.
func (sh *storeShard) tick() sim.Time {
	now := time.Now().UnixNano()
	if now <= sh.clock {
		now = sh.clock + 1
	}
	sh.clock = now
	return sim.Time(now)
}

// Store is the thread-safe in-memory block store of a live node: the
// BlockCache replacement structure plus the actual payloads, lock-striped
// into power-of-two shards keyed by a block-ID hash so concurrent hits on a
// multicore host scale instead of convoying on one mutex. Payloads are
// refcounted (see payloadBuf): every read path pins a reference before the
// shard lock drops, so the copy to the caller — or the socket write, for
// zero-copy serves — happens outside the lock and can never race a recycle.
//
// Replacement quality: each shard runs the paper's policy over its own
// partition. Consistent-hash-partitioned LRU asymptotically matches
// monolithic LRU miss ratio (Asymptotic Miss Ratio of LRU Caching with
// Consistent Hashing), and shard count 1 is bit-identical to the historical
// single-lock store — the replay-equivalence suite pins that.
type Store struct {
	policy core.Policy
	shards []*storeShard
	mask   uint64
	// adm, when non-nil, is the TinyLFU admission filter: a full shard
	// only accepts a non-master insert whose estimated frequency beats the
	// would-be victim's (one-hit wonders never displace warm blocks). The
	// sketch itself is shared across shards (it has its own mutex; the
	// filter is off by default).
	adm atomic.Pointer[core.Admission]

	replicaHits      atomic.Uint64
	admissionRejects atomic.Uint64
}

// resolveStoreShards picks a shard count: requested (rounded up to a power
// of two) or, for requested <= 0, the smallest power of two covering
// runtime.NumCPU, capped at 64. The count never exceeds capacity — every
// shard's BlockCache needs at least one slot.
func resolveStoreShards(requested, capacity int) int {
	n := requested
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := 1
	for p < n && p < 64 {
		p <<= 1
	}
	for p > capacity && p > 1 {
		p >>= 1
	}
	return p
}

// NewStore builds a single-shard store holding at most capacity blocks
// under the given replacement policy — the deterministic configuration
// (exact global LRU order) used by tests and single-core deployments.
func NewStore(capacity int, policy core.Policy) *Store {
	return NewStoreShards(capacity, policy, 1)
}

// NewStoreShards builds a store striped over the given shard count
// (rounded up to a power of two, capped at capacity; <= 0 selects the
// NumCPU default). Capacity is divided across shards with the remainder
// spread over the first shards, so per-shard capacities sum exactly to the
// configured total.
func NewStoreShards(capacity int, policy core.Policy, shards int) *Store {
	n := resolveStoreShards(shards, capacity)
	s := &Store{policy: policy, shards: make([]*storeShard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range s.shards {
		c := base
		if i < extra {
			c++
		}
		s.shards[i] = &storeShard{
			c:       cache.NewBlockCache(c),
			data:    make(map[block.ID]*payloadBuf, c),
			replica: make(map[block.ID]struct{}),
		}
		s.shards[i].oldest.Store(emptyAge)
	}
	return s
}

// ShardCount reports the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardOf routes a block ID to its lock stripe.
func (s *Store) shardOf(id block.ID) *storeShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[shardMix(hotKey(id))&s.mask]
}

// SetAdmission installs (or, with nil, removes) the admission filter. Call
// before the store serves traffic.
func (s *Store) SetAdmission(a *core.Admission) {
	s.adm.Store(a)
}

// ReplicaHits reports accesses served from replica copies.
func (s *Store) ReplicaHits() uint64 { return s.replicaHits.Load() }

// AdmissionRejects reports inserts the admission filter turned away.
func (s *Store) AdmissionRejects() uint64 { return s.admissionRejects.Load() }

// Replicas reports the number of cached replica copies (lock-free sum of
// the per-shard mirrors).
func (s *Store) Replicas() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.nrepl.Load()
	}
	return int(n)
}

// IsReplica reports whether id is held as a replica copy.
func (s *Store) IsReplica(id block.ID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.replica[id]
	return ok
}

// noteAccessLocked feeds the admission sketch (every access builds the
// frequency estimate) and the replica-hit counter for a served block.
// Callers hold sh.mu; hit reports whether the access was served.
func (s *Store) noteAccessLocked(sh *storeShard, id block.ID, hit bool) {
	if a := s.adm.Load(); a != nil {
		a.Observe(hotKey(id))
	}
	if hit {
		if _, ok := sh.replica[id]; ok {
			s.replicaHits.Add(1)
		}
	}
}

// GetRef returns a pinned reference to the cached content of id (touching
// LRU state) and whether it was present. The caller must release the
// reference; until then the bytes cannot be recycled by eviction,
// invalidation, or a write. This is the zero-copy read primitive — no byte
// is copied, under the lock or after it.
func (s *Store) GetRef(id block.ID) (*payloadBuf, bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	if !sh.c.Touch(id, sh.tick()) {
		s.noteAccessLocked(sh, id, false)
		return nil, false
	}
	s.noteAccessLocked(sh, id, true)
	return sh.data[id].retain(), true
}

// Get returns a copy of the cached content of id (touching LRU state) and
// whether it was present. The copy happens outside the shard lock;
// latency-critical paths use GetRef or CopyInto instead.
func (s *Store) Get(id block.ID) ([]byte, bool) {
	pb, ok := s.GetRef(id)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(pb.data))
	copy(out, pb.data)
	pb.release()
	return out, true
}

// GetServe is GetRef for the peer-serve path: it additionally reports
// whether the block is held as a master copy, so the server can flag the
// response and feed the hotness tracker without a second lock acquisition.
func (s *Store) GetServe(id block.ID) (pb *payloadBuf, master, ok bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	if !sh.c.Touch(id, sh.tick()) {
		s.noteAccessLocked(sh, id, false)
		return nil, false, false
	}
	s.noteAccessLocked(sh, id, true)
	return sh.data[id].retain(), sh.c.IsMaster(id), true
}

// CopyInto copies the cached content of id into dst (touching LRU state),
// returning the byte count and whether it was present. The reference is
// pinned under the shard lock; the copy itself happens after the lock
// drops, so a warm local hit never holds a shard mutex across a memcpy.
func (s *Store) CopyInto(id block.ID, dst []byte) (int, bool) {
	pb, ok := s.GetRef(id)
	if !ok {
		return 0, false
	}
	n := copy(dst, pb.data)
	pb.release()
	return n, true
}

// Contains reports presence without touching.
func (s *Store) Contains(id block.ID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.Contains(id)
}

// IsMaster reports whether id is held as a master copy.
func (s *Store) IsMaster(id block.ID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.IsMaster(id)
}

// Len reports the number of cached blocks (lock-free sum of the per-shard
// mirrors; exact whenever no shard lock is held).
func (s *Store) Len() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.nlen.Load()
	}
	return int(n)
}

// Masters reports the number of cached master copies.
func (s *Store) Masters() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.nmast.Load()
	}
	return int(n)
}

// OldestAge reports the logical age of the oldest block; ok is false when
// the store is empty. It reads the per-shard atomic mirrors — no lock —
// because every outgoing frame stamps this value (§3 peer-age piggyback)
// and the stamp must never contend with the data plane.
func (s *Store) OldestAge() (int64, bool) {
	oldest, ok := int64(emptyAge), false
	for _, sh := range s.shards {
		if a := sh.oldest.Load(); a != emptyAge {
			ok = true
			if a < oldest {
				oldest = a
			}
		}
	}
	if !ok {
		return 0, false
	}
	return oldest, true
}

// Insert caches a copy of id backed by caller-owned bytes, evicting per the
// policy if the shard is full. The returned eviction (nil if none, or the
// block was already present) tells the node layer what left memory; the
// caller decides forwarding and must Release it. When an admission filter
// is installed, a full shard only accepts a non-master insert whose
// estimated frequency beats the would-be victim's; a rejected insert
// returns nil with nothing evicted (the caller already holds the data, it
// just is not cached).
func (s *Store) Insert(id block.ID, data []byte, master bool) *Evicted {
	return s.InsertBuf(id, newPayloadBuf(data), master)
}

// InsertBuf is Insert taking ownership of one reference to pb (retain
// first to keep using it past the call).
func (s *Store) InsertBuf(id block.ID, pb *payloadBuf, master bool) *Evicted {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	return s.insertLocked(sh, id, pb, master)
}

func (s *Store) insertLocked(sh *storeShard, id block.ID, pb *payloadBuf, master bool) *Evicted {
	if sh.c.Contains(id) {
		if master {
			sh.c.Promote(id)
			delete(sh.replica, id)
		}
		old := sh.data[id]
		sh.data[id] = pb
		old.release()
		return nil
	}
	var ev *Evicted
	if sh.c.Full() {
		if !master && !s.admitLocked(sh, id) {
			pb.release()
			return nil
		}
		ev = s.evictOneLocked(sh)
	}
	sh.c.Insert(id, master, sh.tick())
	sh.data[id] = pb
	return ev
}

// admitLocked consults the admission filter for a non-master insert into a
// full shard: the candidate must beat the block the policy would evict.
// Callers hold sh.mu.
func (s *Store) admitLocked(sh *storeShard, id block.ID) bool {
	a := s.adm.Load()
	if a == nil {
		return true
	}
	victim, oldestMaster, _, ok := sh.c.Oldest()
	if ok && s.policy == core.PolicyMaster && oldestMaster && sh.c.NonMasters() > 0 {
		// The policy would spare the master and evict the oldest
		// non-master: that is the block the candidate must beat.
		if vid, _, ok2 := sh.c.OldestNonMaster(); ok2 {
			victim = vid
		}
	}
	if !ok {
		return true
	}
	if a.Admit(hotKey(id), hotKey(victim)) {
		return true
	}
	s.admissionRejects.Add(1)
	return false
}

// InsertReplica installs a proactively pushed replica copy, bypassing the
// admission filter (the pusher already established the block is hot). A
// block already cached keeps its role (a master is not demoted); otherwise
// the block is installed as a replica-flagged non-master.
func (s *Store) InsertReplica(id block.ID, data []byte) *Evicted {
	return s.InsertReplicaBuf(id, newPayloadBuf(data))
}

// InsertReplicaBuf is InsertReplica taking ownership of one reference to pb.
func (s *Store) InsertReplicaBuf(id block.ID, pb *payloadBuf) *Evicted {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	if sh.c.Contains(id) {
		old := sh.data[id]
		sh.data[id] = pb
		old.release()
		if !sh.c.IsMaster(id) {
			sh.replica[id] = struct{}{}
		}
		return nil
	}
	var ev *Evicted
	if sh.c.Full() {
		ev = s.evictOneLocked(sh)
	}
	sh.c.Insert(id, false, sh.tick())
	sh.data[id] = pb
	sh.replica[id] = struct{}{}
	return ev
}

// evictOneLocked applies the replacement policy to one shard. A master
// victim's payload reference transfers to the Evicted (the §3 second-chance
// forward reads it after the lock drops); non-master victims release theirs
// immediately. Callers hold sh.mu.
func (s *Store) evictOneLocked(sh *storeShard) *Evicted {
	if _, oldestMaster, _, ok := sh.c.Oldest(); ok &&
		s.policy == core.PolicyMaster && oldestMaster && sh.c.NonMasters() > 0 {
		id, age, _ := sh.c.EvictOldestNonMaster()
		ev := &Evicted{ID: id, Master: false, Age: int64(age)}
		ev.Replica = dropReplicaLocked(sh, id)
		sh.data[id].release()
		delete(sh.data, id)
		return ev
	}
	id, master, age, ok := sh.c.EvictOldest()
	if !ok {
		return nil
	}
	ev := &Evicted{ID: id, Master: master, Age: int64(age)}
	ev.Replica = dropReplicaLocked(sh, id)
	if master {
		ev.buf = sh.data[id] // transfer the store's reference
		ev.Data = ev.buf.data
	} else {
		sh.data[id].release()
	}
	delete(sh.data, id)
	return ev
}

// dropReplicaLocked clears id's replica flag, reporting whether it was set.
// Callers hold sh.mu.
func dropReplicaLocked(sh *storeShard, id block.ID) bool {
	if _, ok := sh.replica[id]; ok {
		delete(sh.replica, id)
		return true
	}
	return false
}

// GetRun appends pinned references for the contiguous run of cached blocks
// of f starting at first (at most max blocks) to out, touching each served
// block's LRU state. It stops at the first gap and returns the extended
// slice and a bitmask marking which served blocks are held as master copies
// (bit i = block first+i). No byte is copied or concatenated — the caller
// points reply segments at the pinned buffers and releases them after the
// socket write. Blocks of a run stripe across shards, so the walk locks
// each block's shard in turn (one short critical section per block, never
// one long one).
func (s *Store) GetRun(f block.FileID, first int32, max int, out []*payloadBuf) ([]*payloadBuf, uint32) {
	var masters uint32
	for count := 0; count < max; count++ {
		id := block.ID{File: f, Idx: first + int32(count)}
		sh := s.shardOf(id)
		sh.mu.Lock()
		if !sh.c.Touch(id, sh.tick()) {
			s.noteAccessLocked(sh, id, false)
			sh.unlock()
			break
		}
		s.noteAccessLocked(sh, id, true)
		if sh.c.IsMaster(id) {
			masters |= 1 << uint(count)
		}
		pb := sh.data[id].retain()
		sh.unlock()
		out = append(out, pb)
	}
	return out, masters
}

// InsertRun installs a fetched run of contiguous blocks (blocks[i] is block
// first+i), taking ownership of one reference to each, and returns every
// eviction the installs caused, in order. Master victims among them get the
// §3 second chance from the caller, exactly as with Insert.
func (s *Store) InsertRun(f block.FileID, first int32, blocks []*payloadBuf, master bool) []*Evicted {
	var evs []*Evicted
	for i, pb := range blocks {
		id := block.ID{File: f, Idx: first + int32(i)}
		sh := s.shardOf(id)
		sh.mu.Lock()
		ev := s.insertLocked(sh, id, pb, master)
		sh.unlock()
		if ev != nil {
			evs = append(evs, ev)
		}
	}
	return evs
}

// AcceptForward applies the §3 arrival rules for a forwarded master:
// dropped if everything local (in the block's shard) is younger
// (accepted=false); otherwise the shard's oldest is discarded outright
// (never re-forwarded — no cascades) and the block is installed with its
// original age. displaced reports what was discarded to make room (its
// directory entry must be dropped if a master; it never carries data).
func (s *Store) AcceptForward(id block.ID, data []byte, age int64) (accepted bool, displaced *Evicted) {
	return s.AcceptForwardBuf(id, newPayloadBuf(data), age)
}

// AcceptForwardBuf is AcceptForward taking ownership of one reference to pb.
func (s *Store) AcceptForwardBuf(id block.ID, pb *payloadBuf, age int64) (accepted bool, displaced *Evicted) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	if sh.c.Contains(id) {
		sh.c.Promote(id)
		delete(sh.replica, id)
		old := sh.data[id]
		sh.data[id] = pb
		old.release()
		return true, nil
	}
	if sh.c.Full() {
		if oldest, ok := sh.c.OldestAge(); ok && int64(oldest) >= age {
			pb.release()
			return false, nil
		}
		vid, vMaster, vAge, _ := sh.c.EvictOldest()
		displaced = &Evicted{ID: vid, Master: vMaster, Age: int64(vAge)}
		displaced.Replica = dropReplicaLocked(sh, vid)
		sh.data[vid].release()
		delete(sh.data, vid)
	}
	sh.c.Insert(id, true, sim.Time(age))
	sh.data[id] = pb
	return true, displaced
}

// Remove discards id; reports presence and master role. The payload is
// released — but any reply that pinned a reference first keeps its bytes.
func (s *Store) Remove(id block.ID) (present, master bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.unlock()
	present, master = sh.c.Remove(id)
	if present {
		sh.data[id].release()
		delete(sh.data, id)
		delete(sh.replica, id)
	}
	return present, master
}

// RemoveAll discards every cached block, returning the IDs that were held
// as masters (their directory entries must be dropped by the caller). Used
// when a truncated invalidation catch-up makes the whole cache suspect.
func (s *Store) RemoveAll() []block.ID {
	var masters []block.ID
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, pb := range sh.data {
			if _, master := sh.c.Remove(id); master {
				masters = append(masters, id)
			}
			pb.release()
		}
		sh.data = make(map[block.ID]*payloadBuf)
		sh.replica = make(map[block.ID]struct{})
		sh.unlock()
	}
	return masters
}
