package middleware

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
)

// startPartitioned spins a cluster in partitioned-directory mode.
func startPartitioned(t *testing.T, k, capacity int, sizes map[block.FileID]int64) ([]*Node, *Client) {
	t.Helper()
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	nodes := make([]*Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		n, err := Start(Config{
			ID:             i,
			DirMode:        DirPartitioned,
			CapacityBlocks: capacity,
			StaticHome:     true,
			Policy:         core.PolicyMaster,
			Geometry:       geom,
			Source:         NewMemSource(geom, sizes),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, client
}

func TestPartitionedDirectoryReads(t *testing.T) {
	sizes := map[block.FileID]int64{}
	for f := 0; f < 12; f++ {
		sizes[block.FileID(f)] = int64(1024 + 700*f)
	}
	_, client := startPartitioned(t, 3, 128, sizes)
	for round := 0; round < 2; round++ {
		for f := 0; f < 12; f++ {
			got, err := client.Read(block.FileID(f))
			if err != nil {
				t.Fatalf("round %d file %d: %v", round, f, err)
			}
			if !bytes.Equal(got, expect(testGeom, block.FileID(f), sizes[block.FileID(f)])) {
				t.Fatalf("round %d file %d: content mismatch", round, f)
			}
		}
	}
	st, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RemoteHits+st.LocalHits == 0 {
		t.Fatal("no cache hits with partitioned directory")
	}
}

func TestPartitionedSingleMaster(t *testing.T) {
	sizes := map[block.FileID]int64{0: 4096, 1: 4096}
	nodes, client := startPartitioned(t, 3, 64, sizes)
	for f := 0; f < 2; f++ {
		for entry := 0; entry < 3; entry++ {
			if _, err := client.ReadVia(entry, block.FileID(f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for f := 0; f < 2; f++ {
		for idx := int32(0); idx < testGeom.Count(4096); idx++ {
			id := block.ID{File: block.FileID(f), Idx: idx}
			masters := 0
			for _, n := range nodes {
				if n.store.IsMaster(id) {
					masters++
				}
			}
			if masters != 1 {
				t.Errorf("block %v has %d masters", id, masters)
			}
		}
	}
}

func TestPartitionedManagersSpread(t *testing.T) {
	sizes := map[block.FileID]int64{}
	for f := 0; f < 40; f++ {
		sizes[block.FileID(f)] = 1024
	}
	nodes, client := startPartitioned(t, 4, 256, sizes)
	for f := 0; f < 40; f++ {
		if _, err := client.Read(block.FileID(f)); err != nil {
			t.Fatal(err)
		}
	}
	// Directory entries must be spread over multiple managers, not on one
	// node.
	withEntries := 0
	for _, n := range nodes {
		if n.dirSrv.size() > 0 {
			withEntries++
		}
	}
	if withEntries < 3 {
		t.Fatalf("directory entries on %d nodes, want spread over ≥3", withEntries)
	}
}

func TestPartitionedWrites(t *testing.T) {
	sizes := map[block.FileID]int64{0: 2048}
	_, client := startPartitioned(t, 3, 64, sizes)
	if _, err := client.Read(0); err != nil {
		t.Fatal(err)
	}
	v := bytes.Repeat([]byte{0x3C}, 1024)
	if err := client.Write(0, 1, v); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1024:], v) {
		t.Fatal("write not visible in partitioned mode")
	}
}

func TestBadDirModeRejected(t *testing.T) {
	geom := testGeom
	_, err := Start(Config{
		ID: 0, DirMode: DirectoryMode(99), CapacityBlocks: 4, Geometry: geom,
		Source: NewMemSource(geom, map[block.FileID]int64{0: 1024}),
	})
	if err == nil {
		t.Fatal("bad directory mode accepted")
	}
}
