package middleware

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchAllocBudget is CI's allocation regression gate for the wire hot
// path: it runs the headline micro-benchmarks in-process and fails if
// allocs/op exceeds the checked-in budget (testdata/alloc_budget.json). The
// budgets carry a little headroom over the measured values, so the gate trips
// on a real regression (a lost pooled buffer, a new per-block allocation) and
// not on runtime noise. Gated behind CC_BENCH_BUDGET=1 because it runs full
// benchmarks — too slow for every local `go test`.
//
// To update the budget after an intentional change, re-measure with
// `go test -run '^$' -bench 'ConnRoundTrip|NodeReadFile|StoreGetParallel|ServeRun|ClientReadFile$|WriteBlock' ./internal/middleware/`
// and edit testdata/alloc_budget.json.
func TestBenchAllocBudget(t *testing.T) {
	if os.Getenv("CC_BENCH_BUDGET") != "1" {
		t.Skip("set CC_BENCH_BUDGET=1 to run the allocation budget gate")
	}
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget map[string]int64
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatalf("parse alloc budget: %v", err)
	}
	benches := map[string]func(*testing.B){
		"BenchmarkConnRoundTrip":        BenchmarkConnRoundTrip,
		"BenchmarkNodeReadFile":         BenchmarkNodeReadFile,
		"BenchmarkNodeReadFileReplica":  BenchmarkNodeReadFileReplica,
		"BenchmarkNodeReadFileParallel": BenchmarkNodeReadFileParallel,
		"BenchmarkStoreGetParallel":     BenchmarkStoreGetParallel,
		"BenchmarkServeRun":             BenchmarkServeRun,
		"BenchmarkClientReadFile":       BenchmarkClientReadFile,
		"BenchmarkWriteBlock":           BenchmarkWriteBlock,
	}
	for name, fn := range benches {
		want, ok := budget[name]
		if !ok {
			t.Fatalf("no budget entry for %s", name)
		}
		r := testing.Benchmark(fn)
		if got := r.AllocsPerOp(); got > want {
			t.Errorf("%s: %d allocs/op exceeds budget %d (%v/op, %d B/op)",
				name, got, want, r.NsPerOp(), r.AllocedBytesPerOp())
		} else {
			t.Logf("%s: %d allocs/op within budget %d (%d ns/op)", name, got, want, r.NsPerOp())
		}
	}
}
