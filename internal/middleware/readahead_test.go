package middleware

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

func TestReadaheadPrefetchesSequentialBlocks(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 10 * 1024}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 64, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes), Readahead: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})

	if _, err := n.GetBlock(block.ID{File: 0, Idx: 0}); err != nil {
		t.Fatal(err)
	}
	// The prefetcher runs asynchronously; poll for the window.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok := true
		for i := int32(1); i <= 4; i++ {
			if !n.store.Contains(block.ID{File: 0, Idx: i}) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readahead window never materialized")
		}
		time.Sleep(time.Millisecond)
	}
	// Blocks beyond the window were not prefetched (no cascade).
	time.Sleep(10 * time.Millisecond)
	if n.store.Contains(block.ID{File: 0, Idx: 6}) {
		t.Fatal("readahead cascaded beyond its window")
	}
	if n.Stats().Prefetches != 4 {
		t.Fatalf("prefetches = %d, want 4", n.Stats().Prefetches)
	}
}

func TestReadaheadOffByDefault(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{0: 4 * 1024}
	n, err := Start(Config{
		ID: 0, CapacityBlocks: 16, Policy: core.PolicyMaster,
		Geometry: geom, Source: NewMemSource(geom, sizes),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetAddrs([]string{n.Addr()})
	if _, err := n.GetBlock(block.ID{File: 0, Idx: 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if n.store.Contains(block.ID{File: 0, Idx: 1}) {
		t.Fatal("prefetch happened with Readahead=0")
	}
}
