package middleware

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
)

// This file is the asynchronous invalidation bus of the §6 write protocol.
//
// In sync mode (Config.SyncInvalidate, or a single-node cluster) a write
// blocks on a point-to-point MsgInvalidate fan-out, so one slow peer puts
// its RPC timeout directly on the writer's critical path. With the bus, a
// write appends one sequenced invalidation record locally and returns after
// the local invalidate + durable write-through; persistent per-peer sender
// loops drain the record history in the background with batched
// MsgInvalidateN frames, coalescing back-to-back writes to the same block.
//
// Correctness becomes bounded staleness instead of immediate invalidation:
//   - The writer reads its own write immediately (local invalidate + master
//     insert happen before WriteBlock returns; the client pins reads of a
//     written file to the write's entry node).
//   - Every peer applies each origin's records in sequence order. A peer
//     that observes a sequence gap (frames lost, breaker-healed reconnect)
//     issues a MsgInvalSince catch-up RPC instead of serving stale forever.
//   - The origin's record history is bounded (invalHistory); a peer so far
//     behind that its range fell off the ring is told to flush its whole
//     cache (truncated catch-up reply) — the bounded queue's backpressure
//     degrades to "start over", never to unbounded memory or a blocked
//     writer.
//
// The old degradation counter keeps its meaning: a failed sender delivery
// attempt counts one InvalidateSkips, so "how stale could a peer be" is
// observable (together with the cc_inval_lag_seconds histogram and the
// cc_inval_bus_depth gauge).

// invalHistory is the bounded per-origin record history: deep enough that a
// peer only loses the range during a long partition (at which point a full
// flush is the right repair), shallow enough to bound memory (16 bytes per
// record).
const invalHistory = 4096

// invalRec is one sequenced invalidation record. Its sequence number is
// implied by its ring position (see invalBus.collect).
type invalRec struct {
	id block.ID
	at int64 // publish time, unix nanos (feeds the lag histogram)
}

// invalSender is the persistent sender loop state for one peer.
type invalSender struct {
	peer   int
	notify chan struct{} // cap 1: publish wake-up, coalesced
	next   uint64        // next sequence to send (sender-loop private)
	acked  atomic.Uint64 // last sequence the peer acknowledged
	dead   atomic.Bool   // peer promoted to dead: stop delivering, count as drained
	buf    []byte        // reusable MsgInvalidateN payload buffer
}

// invalBus is a node's outgoing invalidation state: the bounded record
// history plus one sender loop per peer.
type invalBus struct {
	n *Node

	mu      sync.Mutex
	ring    [invalHistory]invalRec
	start   int    // ring index of the oldest retained record
	count   int    // retained records
	head    uint64 // sequence of the newest record (0: none published yet)
	stopped bool

	senders []*invalSender
	stop    chan struct{}
}

// newInvalBus builds the bus and starts one sender loop per peer.
func newInvalBus(n *Node, clusterSize int) *invalBus {
	b := &invalBus{n: n, stop: make(chan struct{})}
	for i := 0; i < clusterSize; i++ {
		if i == n.cfg.ID {
			continue
		}
		s := &invalSender{peer: i, notify: make(chan struct{}, 1), next: 1}
		b.senders = append(b.senders, s)
		go b.senderLoop(s)
	}
	return b
}

// shutdown stops the sender loops. Unsent records are abandoned: the peers'
// gap detection (or their next read's freshness fetch) repairs them.
func (b *invalBus) shutdown() {
	b.mu.Lock()
	if !b.stopped {
		b.stopped = true
		close(b.stop)
	}
	b.mu.Unlock()
}

// publish appends one invalidation record and wakes the senders, returning
// the record's sequence number (0 after shutdown).
func (b *invalBus) publish(id block.ID) uint64 {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return 0
	}
	b.head++
	seq := b.head
	idx := (b.start + b.count) % invalHistory
	if b.count == invalHistory {
		b.start = (b.start + 1) % invalHistory // overwrite the oldest
	} else {
		b.count++
	}
	b.ring[idx] = invalRec{id: id, at: time.Now().UnixNano()}
	senders := b.senders // resize appends concurrently: snapshot under mu
	b.mu.Unlock()
	for _, s := range senders {
		select {
		case s.notify <- struct{}{}:
		default: // already signalled; the loop drains to head anyway
		}
	}
	return seq
}

// resize grows the sender set to cover a membership view of clusterSize
// slots. Existing senders (and their sequence state) are untouched — an
// origin's per-peer sequences survive every home move, which is what keeps
// receivers' gap detection sound across a resize. A sender that joins
// mid-stream owes nothing for history published before it existed: it
// starts acknowledged up to the current head.
func (b *invalBus) resize(clusterSize int) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	have := make(map[int]bool, len(b.senders))
	for _, s := range b.senders {
		have[s.peer] = true
	}
	var started []*invalSender
	for i := 0; i < clusterSize; i++ {
		if i == b.n.cfg.ID || have[i] {
			continue
		}
		s := &invalSender{peer: i, notify: make(chan struct{}, 1), next: b.head + 1}
		s.acked.Store(b.head)
		b.senders = append(b.senders, s)
		started = append(started, s)
	}
	b.mu.Unlock()
	for _, s := range started {
		go b.senderLoop(s)
	}
}

// markDead tells the sender for a dead peer to stop delivering. The peer's
// backlog is unrecoverable (it will flush and catch up if it ever returns);
// a dead sender counts as drained so FlushInval and the depth gauge are not
// wedged forever by a corpse.
func (b *invalBus) markDead(peer int) {
	b.mu.Lock()
	senders := b.senders
	b.mu.Unlock()
	for _, s := range senders {
		if s.peer != peer {
			continue
		}
		s.dead.Store(true)
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}

// collect builds the next batch for a sender starting at sequence `from`:
// up to maxInvalBatch distinct block IDs covering the consecutive sequence
// window [first, last] (back-to-back writes of the same block coalesce into
// one record; the window stays consecutive, so receivers track one applied
// high-water mark per origin). `at` is the publish time of the last covered
// record. A `from` below the retained floor is clamped to it — the receiver
// sees the jump as a gap and catches up. An empty batch means drained.
func (b *invalBus) collect(from uint64, out []block.ID, seen map[block.ID]struct{}) (first, last uint64, at int64, batch []block.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out = out[:0]
	if b.count == 0 || from > b.head {
		return 0, 0, 0, out
	}
	floor := b.head - uint64(b.count) + 1
	if from < floor {
		from = floor
	}
	clear(seen)
	first, last = from, from-1
	for q := from; q <= b.head && len(out) < maxInvalBatch; q++ {
		rec := b.ring[(b.start+int(q-floor))%invalHistory]
		last, at = q, rec.at
		if _, dup := seen[rec.id]; dup {
			continue
		}
		seen[rec.id] = struct{}{}
		out = append(out, rec.id)
	}
	return first, last, at, out
}

// depth reports the deepest unacknowledged backlog across peers (the
// cc_inval_bus_depth gauge).
func (b *invalBus) depth() uint64 {
	b.mu.Lock()
	head := b.head
	senders := b.senders
	b.mu.Unlock()
	var deepest uint64
	for _, s := range senders {
		if s.dead.Load() {
			continue
		}
		if d := head - min(s.acked.Load(), head); d > deepest {
			deepest = d
		}
	}
	return deepest
}

// drained reports whether every peer has acknowledged every record
// published before the call.
func (b *invalBus) drained() bool {
	b.mu.Lock()
	head := b.head
	senders := b.senders
	b.mu.Unlock()
	for _, s := range senders {
		if s.dead.Load() {
			continue
		}
		if s.acked.Load() < head {
			return false
		}
	}
	return true
}

// senderLoop drains the bus toward one peer: batched MsgInvalidateN frames,
// retried forever with capped backoff (a failed attempt counts one
// InvalidateSkips — the old sync fan-out's degradation signal, now meaning
// "this peer's staleness window grew by one delivery attempt"). The backoff
// cap stretches to the breaker cooldown so a dead peer costs about two
// probe attempts per cooldown, not a hot retry loop.
func (b *invalBus) senderLoop(s *invalSender) {
	n := b.n
	recs := make([]block.ID, 0, maxInvalBatch)
	seen := make(map[block.ID]struct{}, maxInvalBatch)
	backoff := n.retryBase
	backoffCap := max(n.retryCap, n.brCooldown)
	for {
		select {
		case <-b.stop:
			return
		case <-s.notify:
		}
		for {
			if s.dead.Load() {
				break // the peer is gone; markDead made drained() ignore us
			}
			// Send from the acked mark, not the sent mark: a peer that
			// answered a batch with a gap-ack (it went off to catch up)
			// still owes acknowledgements for the unacked window, and with
			// no further publishes there would be no later frame to carry
			// them. Resends are idempotent — the peer skips windows at or
			// below its applied mark.
			from := s.next
			if a := s.acked.Load(); a+1 < from {
				from = a + 1
			}
			first, last, at, batch := b.collect(from, recs, seen)
			recs = batch
			if len(batch) == 0 {
				break // drained; sleep until the next publish
			}
			req := getFrame()
			req.Type = MsgInvalidateN
			req.Aux = int64(last)
			s.buf = appendInvalPayload(s.buf[:0], first, batch)
			req.Payload = s.buf
			resp, err := n.reliableRPC(s.peer, req, 0)
			req.Payload = nil // s.buf outlives the pooled frame
			releaseFrame(req)
			if err != nil {
				n.c.invalidateSkips.Add(1)
				n.trace(traceInvalidateSkip, s.peer, block.ID{}, int64(first))
				if !sleepOrStop(b.stop, backoffJitter(backoff, n.retryRand)) {
					return
				}
				if backoff = 2 * backoff; backoff > backoffCap {
					backoff = backoffCap
				}
				continue // re-collect: the window may have grown meanwhile
			}
			s.next = last + 1
			hwm := uint64(resp.Aux)
			if hwm > s.acked.Load() {
				s.acked.Store(hwm)
			}
			releaseFrame(resp)
			n.c.invalBatched.Add(uint64(len(batch)))
			n.invalBatchBlocks.Observe(int64(len(batch)))
			n.invalLag.Observe(time.Duration(time.Now().UnixNano() - at))
			n.trace(traceInvalBatch, s.peer, block.ID{}, int64(len(batch)))
			if hwm < last {
				// The peer is repairing a gap (catch-up in flight): pace the
				// re-offers of the unacked window instead of spinning.
				if !sleepOrStop(b.stop, backoffJitter(backoff, n.retryRand)) {
					return
				}
				if backoff = 2 * backoff; backoff > backoffCap {
					backoff = backoffCap
				}
				continue
			}
			backoff = n.retryBase
		}
	}
}

// sleepOrStop sleeps d unless stop closes first, reporting whether the
// sleep completed.
func sleepOrStop(stop chan struct{}, d time.Duration) bool {
	t := getTimer(d)
	defer putTimer(t)
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// --- receiver side ---

// invalOrigin is a node's per-origin receive state: the applied sequence
// high-water mark and whether a catch-up is already in flight.
type invalOrigin struct {
	mu       sync.Mutex
	applied  uint64
	catching bool
}

// invalOriginFor returns the receive state for records from `origin` (nil
// when membership is not installed or origin is out of range).
func (n *Node) invalOriginFor(origin int) *invalOrigin {
	n.mu.Lock()
	defer n.mu.Unlock()
	if origin < 0 || origin >= len(n.invalIn) {
		return nil
	}
	return n.invalIn[origin]
}

// handleInvalidateN applies one batch of sequenced invalidation records.
// Batches are idempotent per origin: a frame whose window is entirely below
// the applied mark is a resend and is skipped whole (re-invalidating would
// needlessly kill freshly re-fetched copies). A window starting above
// applied+1 is a gap: the records are NOT applied out of order — a catch-up
// RPC re-fetches the full range so staleness repairs happen exactly once,
// in sequence. The ack carries the applied mark so the origin's depth gauge
// tracks reality.
func (n *Node) handleInvalidateN(f *Frame) *Frame {
	origin := int(f.Sender)
	o := n.invalOriginFor(origin)
	if o == nil {
		return errFrame("invalidation batch from unknown origin %d", origin)
	}
	first, ids, err := decodeInvalPayload(f.Payload, nil)
	if err != nil {
		return errFrame("invalidation batch: %v", err)
	}
	last := uint64(f.Aux)
	if last < first {
		return errFrame("invalidation batch window [%d,%d] inverted", first, last)
	}
	o.mu.Lock()
	switch {
	case last <= o.applied:
		// Duplicate resend (timeout raced the ack): already applied.
	case first > o.applied+1:
		if !o.catching {
			o.catching = true
			go n.invalCatchup(origin, o, o.applied+1)
		}
	default:
		for _, id := range ids {
			n.applyBusInval(origin, last, id)
		}
		o.applied = last
	}
	applied := o.applied
	o.mu.Unlock()
	r := ackFrame()
	r.Aux = int64(applied)
	return r
}

// applyBusInval invalidates one block on behalf of an origin's bus record,
// stamping the block so a racing stale replica push loses (see stampNewer).
func (n *Node) applyBusInval(origin int, seq uint64, id block.ID) {
	n.recordInvalStamp(id, origin, seq)
	n.handleInvalidate(id)
}

// handleInvalSince serves a catch-up request from this node's bus history:
// the retained records from sequence Aux on, batched like MsgInvalidateN.
// A range that fell off the bounded history gets a truncated reply
// (Flags=1): the requester must treat its whole cache as suspect.
func (n *Node) handleInvalSince(f *Frame) *Frame {
	b := n.busRef()
	if b == nil {
		return errFrame("node %d runs synchronous invalidation (no bus)", n.cfg.ID)
	}
	from := uint64(f.Aux)
	b.mu.Lock()
	head := b.head
	var floor uint64
	if b.count > 0 {
		floor = head - uint64(b.count) + 1
	} else {
		floor = head + 1
	}
	b.mu.Unlock()
	r := getFrame()
	r.Type = MsgInvalSinceReply
	if from < floor && head >= floor {
		// The range fell off the ring: the requester cannot be repaired
		// record by record.
		r.Flags = 1
		r.Aux = int64(head)
		return r
	}
	recs := make([]block.ID, 0, maxInvalBatch)
	seen := make(map[block.ID]struct{}, maxInvalBatch)
	first, last, _, batch := b.collect(from, recs, seen)
	if len(batch) == 0 {
		r.Aux = int64(from - 1) // nothing at or past `from`: caught up
		return r
	}
	r.Aux = int64(last)
	r.Payload = appendInvalPayload(nil, first, batch)
	return r
}

// invalCatchup reconciles a detected sequence gap with the origin: batched
// MsgInvalSince rounds until the reply covers nothing, or a truncated reply
// flushes the local cache. Failures just return — the next incoming batch
// re-detects the gap and tries again.
func (n *Node) invalCatchup(origin int, o *invalOrigin, from uint64) {
	n.c.invalCatchups.Add(1)
	n.trace(traceInvalCatchup, origin, block.ID{}, int64(from))
	defer func() {
		o.mu.Lock()
		o.catching = false
		o.mu.Unlock()
	}()
	for {
		req := getFrame()
		req.Type = MsgInvalSince
		req.Aux = int64(from)
		resp, err := n.reliableRPC(origin, req, n.retries)
		releaseFrame(req)
		if err != nil {
			return
		}
		if e := resp.Err(); e != nil {
			releaseFrame(resp)
			return
		}
		last := uint64(resp.Aux)
		if resp.Flags&1 != 0 {
			// Truncated: the missed range is unknowable. Flush everything
			// cached and fast-forward to the origin's head.
			releaseFrame(resp)
			o.mu.Lock()
			if last > o.applied {
				o.applied = last
			}
			o.mu.Unlock()
			n.flushSuspect(origin)
			return
		}
		if last < from {
			releaseFrame(resp) // drained: caught up
			return
		}
		var ids []block.ID
		if len(resp.Payload) > 0 {
			if _, ids, err = decodeInvalPayload(resp.Payload, nil); err != nil {
				releaseFrame(resp)
				return
			}
		}
		o.mu.Lock()
		for _, id := range ids {
			n.applyBusInval(origin, last, id)
		}
		if last > o.applied {
			o.applied = last
		}
		o.mu.Unlock()
		releaseFrame(resp)
		from = last + 1
	}
}

// flushSuspect discards the whole local cache after a truncated catch-up:
// any cached block could be stale, and serving stale forever is the one
// outcome the bus forbids. Master drops are propagated to the directory;
// this node's managed replica sets are cleared (their holders were told to
// invalidate by their own bus streams; a cleared set just costs re-pushes).
func (n *Node) flushSuspect(origin int) {
	masters := n.store.RemoveAll()
	for _, id := range masters {
		n.loc.Drop(id, int32(n.cfg.ID)) //nolint:errcheck // best effort
	}
	n.reps.clearAll()
	n.trace(traceInvalCatchup, origin, block.ID{}, -1)
}

// FlushInval blocks until every peer has acknowledged every invalidation
// record published before the call, or the timeout expires, reporting
// success. With the bus disabled (sync mode) invalidation is already
// synchronous and FlushInval reports true immediately. Intended for tests
// and orderly drains (ccload's node-drain scenario).
func (n *Node) FlushInval(timeout time.Duration) bool {
	n.mu.Lock()
	b := n.bus
	n.mu.Unlock()
	if b == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for !b.drained() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// --- write/replication ordering stamps ---

// Stamps order bus invalidations against racing replica pushes: a write's
// invalidation record stamps the block with (origin, seq); a replica push
// carries the pusher's stamp for the block, and the receiver (or the
// manager registering the copy set) rejects a push strictly older than what
// it has already applied. Without this, a push that read its data before a
// teardown could install a stale replica the new copy set never learns
// about. Sync mode records no stamps (both sides see zero), keeping the
// pre-bus protocol byte-identical.

// stampSeqBits splits a stamp: origin+1 in the high 16 bits, sequence in
// the low 48 (wraps after 2^48 writes per node — not a live concern).
const stampSeqBits = 48

// packStamp builds a stamp value; origin -1 (unknown) packs to 0.
func packStamp(origin int, seq uint64) uint64 {
	return uint64(origin+1)<<stampSeqBits | (seq & (1<<stampSeqBits - 1))
}

// stampNewer reports whether `local` proves the holder has applied an
// invalidation the push stamped `remote` predates. Different origins are
// incomparable: treated as newer (reject the push — conservative; the copy
// is merely re-fetched on the next miss).
func stampNewer(local, remote uint64) bool {
	if local == 0 {
		return false
	}
	if remote == 0 {
		return true
	}
	if local>>stampSeqBits != remote>>stampSeqBits {
		return true
	}
	return local&(1<<stampSeqBits-1) > remote&(1<<stampSeqBits-1)
}

// invalStampCap bounds the stamp map (insert-order ring eviction): deep
// enough to cover every block with an in-flight push, bounded so a
// write-heavy node does not grow an entry per block ever written.
const invalStampCap = 8192

// recordInvalStamp remembers the newest applied invalidation for id.
func (n *Node) recordInvalStamp(id block.ID, origin int, seq uint64) {
	stamp := packStamp(origin, seq)
	n.stampMu.Lock()
	if n.stamps == nil {
		n.stamps = make(map[block.ID]uint64, invalStampCap)
		n.stampRing = make([]block.ID, invalStampCap)
	}
	if _, ok := n.stamps[id]; !ok {
		if len(n.stamps) == invalStampCap {
			delete(n.stamps, n.stampRing[n.stampPos])
		}
		n.stampRing[n.stampPos] = id
		n.stampPos = (n.stampPos + 1) % invalStampCap
	}
	n.stamps[id] = stamp
	n.stampMu.Unlock()
}

// invalStamp reports the newest applied invalidation stamp for id (0:
// none recorded).
func (n *Node) invalStamp(id block.ID) uint64 {
	n.stampMu.Lock()
	s := n.stamps[id]
	n.stampMu.Unlock()
	return s
}
