// Package metrics provides the measurement accumulators used by the
// workload driver: response-time statistics and throughput computation for
// the steady-state window after cache warmup (§4.3: throughput is measured
// only after the caches have been warmed).
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ResponseTimes accumulates per-request response times.
type ResponseTimes struct {
	samples []sim.Duration
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
	sorted  bool
}

// Add records one response time.
func (r *ResponseTimes) Add(d sim.Duration) {
	if len(r.samples) == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
}

// Count reports the number of samples.
func (r *ResponseTimes) Count() int { return len(r.samples) }

// Mean reports the average response time (0 with no samples).
func (r *ResponseTimes) Mean() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / sim.Duration(len(r.samples))
}

// Min reports the fastest response.
func (r *ResponseTimes) Min() sim.Duration { return r.min }

// Max reports the slowest response.
func (r *ResponseTimes) Max() sim.Duration { return r.max }

// Percentile reports the p-quantile (p in [0,1]) by nearest rank.
func (r *ResponseTimes) Percentile(p float64) sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,1]", p))
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(p * float64(len(r.samples)-1))
	return r.samples[idx]
}

// Throughput reports completed requests per second of virtual time over the
// window [start, end].
func Throughput(completed int, start, end sim.Time) float64 {
	window := end.Sub(start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(completed) / window
}
