// Package metrics provides the measurement accumulators used by the
// workload driver: response-time statistics and throughput computation for
// the steady-state window after cache warmup (§4.3: throughput is measured
// only after the caches have been warmed).
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/sim"
)

// reservoirSeed makes reservoir sampling deterministic: two runs that Add
// the same sequence keep the same sample set. The reservoir RNG is private
// to the accumulator, so it never perturbs a simulation's event stream.
const reservoirSeed = 0x5ca1ab1e

// ResponseTimes accumulates per-request response times.
//
// The zero value records every sample exactly (use Reserve to pre-size the
// sample slice when the request count is known). NewResponseTimes builds a
// bounded accumulator instead: a fixed-size uniform reservoir (Vitter's
// algorithm R) that caps memory on full-scale runs. Count, Mean, Min, and
// Max are exact in both modes; Percentile is exact in exact mode and an
// unbiased estimate in reservoir mode.
//
// All methods are safe for concurrent use. In particular Percentile, which
// sorts the retained samples lazily, holds the same lock as Add — a live
// load generator may read percentiles mid-run while workers keep recording.
// Because of the internal mutex a ResponseTimes must not be copied after
// first use; pass it by pointer.
type ResponseTimes struct {
	mu      sync.Mutex
	samples []sim.Duration
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
	count   int
	limit   int // >0: reservoir capacity
	rng     *rand.Rand
	sorted  bool
}

// NewResponseTimes returns a reservoir-sampling accumulator that retains at
// most capacity samples, chosen uniformly from everything Added.
func NewResponseTimes(capacity int) *ResponseTimes {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: reservoir capacity %d must be positive", capacity))
	}
	return &ResponseTimes{
		samples: make([]sim.Duration, 0, capacity),
		limit:   capacity,
		rng:     rand.New(rand.NewSource(reservoirSeed)),
	}
}

// Reserve pre-sizes the exact-mode sample slice for n expected samples, so a
// measurement loop does not regrow it incrementally. It is a no-op in
// reservoir mode or when enough capacity is already allocated.
func (r *ResponseTimes) Reserve(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 || n <= cap(r.samples) {
		return
	}
	s := make([]sim.Duration, len(r.samples), n)
	copy(s, r.samples)
	r.samples = s
}

// Add records one response time.
func (r *ResponseTimes) Add(d sim.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 || d < r.min {
		r.min = d
	}
	if r.count == 0 || d > r.max {
		r.max = d
	}
	r.count++
	r.sum += d
	if r.limit > 0 && len(r.samples) == r.limit {
		// Algorithm R: the new sample replaces a random slot with
		// probability limit/count, keeping the reservoir uniform.
		if j := r.rng.Intn(r.count); j < r.limit {
			r.samples[j] = d
			r.sorted = false
		}
		return
	}
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count reports the number of recorded responses (all of them, even those a
// reservoir no longer retains).
func (r *ResponseTimes) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Sampled reports how many samples are retained for percentile estimation.
func (r *ResponseTimes) Sampled() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean reports the average response time (0 with no samples). It is exact
// in both modes.
func (r *ResponseTimes) Mean() sim.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.sum / sim.Duration(r.count)
}

// Min reports the fastest response.
func (r *ResponseTimes) Min() sim.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.min
}

// Max reports the slowest response.
func (r *ResponseTimes) Max() sim.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Percentile reports the p-quantile (p in [0,1]) by nearest rank over the
// retained samples. The lazy sort runs under the lock, so it cannot race
// with a concurrent Add (which may clear sorted again — correctness is
// preserved, only the sort is redone).
func (r *ResponseTimes) Percentile(p float64) sim.Duration {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,1]", p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(p * float64(len(r.samples)-1))
	return r.samples[idx]
}

// Throughput reports completed requests per second of virtual time over the
// window [start, end].
func Throughput(completed int, start, end sim.Time) float64 {
	window := end.Sub(start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(completed) / window
}
