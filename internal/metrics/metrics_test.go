package metrics

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestResponseTimesBasics(t *testing.T) {
	var r ResponseTimes
	if r.Mean() != 0 || r.Count() != 0 || r.Percentile(0.5) != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, d := range []sim.Duration{10, 20, 30} {
		r.Add(d * sim.Millisecond)
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 20*sim.Millisecond {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if r.Min() != 10*sim.Millisecond || r.Max() != 30*sim.Millisecond {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var r ResponseTimes
	for i := 1; i <= 100; i++ {
		r.Add(sim.Duration(i))
	}
	if p := r.Percentile(0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := r.Percentile(1); p != 100 {
		t.Fatalf("P100 = %v", p)
	}
	if p := r.Percentile(0.5); p < 49 || p > 51 {
		t.Fatalf("P50 = %v", p)
	}
	// Adding after sorting must keep results correct.
	r.Add(sim.Duration(1000))
	if p := r.Percentile(1); p != 1000 {
		t.Fatalf("P100 after re-add = %v", p)
	}
}

func TestPercentileBoundsPanic(t *testing.T) {
	var r ResponseTimes
	r.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=2")
		}
	}()
	r.Percentile(2)
}

func TestReserveKeepsSamples(t *testing.T) {
	var r ResponseTimes
	r.Add(5)
	r.Reserve(1000)
	r.Add(15)
	if r.Count() != 2 || r.Min() != 5 || r.Max() != 15 {
		t.Fatalf("after Reserve: count=%d min=%v max=%v", r.Count(), r.Min(), r.Max())
	}
	if got := cap(r.samples); got < 1000 {
		t.Fatalf("Reserve(1000) left cap %d", got)
	}
	// Shrinking reserve is a no-op.
	r.Reserve(1)
	if cap(r.samples) < 1000 {
		t.Fatal("Reserve shrank the slice")
	}
}

func TestReservoirBoundsMemoryKeepsExactMoments(t *testing.T) {
	const limit, n = 64, 10000
	r := NewResponseTimes(limit)
	var sum sim.Duration
	for i := 1; i <= n; i++ {
		d := sim.Duration(i)
		r.Add(d)
		sum += d
	}
	if r.Count() != n {
		t.Fatalf("Count = %d, want %d", r.Count(), n)
	}
	if r.Sampled() != limit {
		t.Fatalf("Sampled = %d, want %d", r.Sampled(), limit)
	}
	if r.Min() != 1 || r.Max() != n {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if want := sum / n; r.Mean() != want {
		t.Fatalf("Mean = %v, want %v", r.Mean(), want)
	}
	// The retained samples are a uniform draw from [1, n]; the median
	// estimate must land in the body of the distribution, not the tails.
	med := r.Percentile(0.5)
	if med < n/10 || med > 9*n/10 {
		t.Fatalf("reservoir median %v implausible for uniform 1..%d", med, n)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewResponseTimes(32), NewResponseTimes(32)
	for i := 0; i < 5000; i++ {
		d := sim.Duration(i*2654435761) % 1000003
		a.Add(d)
		b.Add(d)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("same-input reservoirs diverged at p=%v", p)
		}
	}
}

func TestReservoirCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResponseTimes(0) did not panic")
		}
	}()
	NewResponseTimes(0)
}

func TestThroughput(t *testing.T) {
	got := Throughput(500, sim.Time(0), sim.Time(2*sim.Second))
	if got != 250 {
		t.Fatalf("Throughput = %f", got)
	}
	if Throughput(10, 5, 5) != 0 {
		t.Fatal("zero window should give zero throughput")
	}
}

// Property: mean is always within [min, max] and percentiles are monotone.
func TestStatsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var r ResponseTimes
		for _, v := range raw {
			r.Add(sim.Duration(v))
		}
		m := r.Mean()
		if m < r.Min() || m > r.Max() {
			return false
		}
		last := sim.Duration(-1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			q := r.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAddPercentile is the regression test for the data race
// between Add and Percentile: Percentile sorts the retained samples lazily
// in place, so a concurrent Add used to mutate the slice mid-sort. Run
// under -race (CI does) this fails on the unsynchronized implementation.
func TestConcurrentAddPercentile(t *testing.T) {
	const (
		writers   = 4
		perWriter = 2000
	)
	r := NewResponseTimes(256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(sim.Duration(w*perWriter + i + 1))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for reading := true; reading; {
		select {
		case <-done:
			reading = false
		default:
		}
		q50, q99 := r.Percentile(0.5), r.Percentile(0.99)
		if q50 > q99 {
			t.Errorf("p50 %v > p99 %v", q50, q99)
		}
		_ = r.Mean()
		_, _ = r.Min(), r.Max()
		_, _ = r.Count(), r.Sampled()
	}
	if got, want := r.Count(), writers*perWriter; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if got, want := r.Sampled(), 256; got != want {
		t.Fatalf("reservoir retained %d samples, want %d", got, want)
	}
}
