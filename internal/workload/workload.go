// Package workload drives a cluster server backend with the paper's client
// model (§4.3): closed-loop HTTP clients that each issue a new request as
// soon as the previous one is served (timing information in the traces is
// ignored to measure maximum achievable throughput), requests spread over
// the nodes by round-robin DNS, and measurement restricted to steady state
// after cache warmup.
package workload

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes a measurement run.
type Config struct {
	// Clients is the number of closed-loop clients; 0 means 16 per node,
	// enough to saturate the cluster.
	Clients int
	// WarmupFrac is the fraction of the request stream used to warm the
	// caches before statistics are reset; 0 means the default of 0.4.
	WarmupFrac float64
	// Hotspot, if non-nil, overrides round-robin DNS for the listed files:
	// their requests always enter the cluster at Hotspot.Node. This forces
	// the concentration of hot content on one node that §5 conjectures
	// about ("a forced concentration of hot files on a single node").
	Hotspot *Hotspot
	// OpenLoopRate, if positive, replaces the closed-loop clients with a
	// Poisson arrival process of this many requests per second — the load
	// model for latency-versus-load curves (the paper measures maximum
	// throughput with closed-loop clients; open loop exposes the latency
	// knee below saturation).
	OpenLoopRate float64
	// WriteFrac in [0,1) turns that fraction of requests into whole-file
	// updates (§6's write extension). The backend must implement
	// WriteBackend.
	WriteFrac float64
	// MaxResponseSamples, if positive, bounds response-time memory by
	// switching the accumulator to uniform reservoir sampling with that many
	// samples; mean/min/max stay exact, percentiles become estimates. 0
	// keeps every sample (exact percentiles).
	MaxResponseSamples int
}

// WriteBackend is implemented by servers that support the write extension.
type WriteBackend interface {
	cluster.Backend
	// DispatchWrite delivers a whole-file update entering at node.
	DispatchWrite(node int, file block.FileID, done func())
}

// Hotspot pins the entry node for a set of files.
type Hotspot struct {
	Node  int
	Files map[block.FileID]bool
}

// Result is the outcome of one run.
type Result struct {
	// Throughput is steady-state requests/second (virtual time).
	Throughput float64
	// Responses holds the response times of measured (post-warmup) requests.
	// A pointer, because ResponseTimes carries a mutex and Result is passed
	// by value.
	Responses *metrics.ResponseTimes
	// Cache is the backend's steady-state cache behaviour.
	Cache cluster.CacheStats
	// Util is the mean per-resource utilization across nodes.
	Util cluster.Utilization
	// MaxDiskUtil is the busiest disk's utilization (the CC-Basic
	// bottleneck signal of §5).
	MaxDiskUtil float64
	// Requests is the number of measured requests.
	Requests int
	// Elapsed is the virtual duration of the measured window.
	Elapsed sim.Duration
}

// Run drives backend with the request stream of tr until exhaustion and
// returns steady-state measurements. The engine must be the one the backend
// was built on.
func Run(eng *sim.Engine, backend cluster.Backend, tr *trace.Trace, cfg Config) Result {
	nodes := backend.Hardware().N()
	clients := cfg.Clients
	if clients == 0 {
		clients = 16 * nodes
	}
	warmFrac := cfg.WarmupFrac
	if warmFrac == 0 {
		warmFrac = 0.4
	}
	if warmFrac < 0 || warmFrac >= 1 {
		panic(fmt.Sprintf("workload: warmup fraction %v out of [0,1)", warmFrac))
	}
	total := len(tr.Requests)
	if total == 0 {
		panic("workload: empty trace")
	}
	warm := int(warmFrac * float64(total))

	var writer WriteBackend
	if cfg.WriteFrac > 0 {
		if cfg.WriteFrac >= 1 {
			panic(fmt.Sprintf("workload: write fraction %v out of [0,1)", cfg.WriteFrac))
		}
		w, ok := backend.(WriteBackend)
		if !ok {
			panic("workload: backend does not support writes")
		}
		writer = w
	}

	var (
		res       Result
		cursor    int
		rr        int
		measStart sim.Time
		measuring = warm == 0
	)
	if cfg.MaxResponseSamples > 0 {
		res.Responses = metrics.NewResponseTimes(cfg.MaxResponseSamples)
	} else {
		// Every post-warmup request contributes one sample; size the slice
		// once instead of growing it through the measurement loop.
		res.Responses = &metrics.ResponseTimes{}
		res.Responses.Reserve(total - warm)
	}
	if measuring {
		backend.ResetStats()
		backend.Hardware().ResetStats()
	}

	var next func()
	next = func() {
		if cursor >= total {
			return
		}
		idx := cursor
		file := tr.Requests[idx]
		cursor++
		node := rr % nodes // round-robin DNS
		rr++
		if cfg.Hotspot != nil && cfg.Hotspot.Files[file] {
			node = cfg.Hotspot.Node
		}
		issued := eng.Now()
		dispatch := backend.Dispatch
		if writer != nil && eng.Rand().Float64() < cfg.WriteFrac {
			dispatch = writer.DispatchWrite
		}
		dispatch(node, file, func() {
			if measuring && idx >= warm {
				res.Requests++
				res.Responses.Add(eng.Now().Sub(issued))
			}
			if cfg.OpenLoopRate <= 0 {
				next() // closed loop: a completion triggers the next request
			}
		})
		// Reaching the warmup boundary at issue time starts the measured
		// window: reset all statistics so they reflect steady state only.
		if !measuring && cursor >= warm {
			measuring = true
			measStart = eng.Now()
			backend.ResetStats()
			backend.Hardware().ResetStats()
		}
	}

	if cfg.OpenLoopRate > 0 {
		// Poisson arrivals: one generator schedules issues at exponential
		// inter-arrival times, independent of completions.
		mean := sim.Duration(float64(sim.Second) / cfg.OpenLoopRate)
		var arrive func()
		arrive = func() {
			if cursor >= total {
				return
			}
			next()
			gap := sim.Duration(eng.Rand().ExpFloat64() * float64(mean))
			eng.Schedule(gap, arrive)
		}
		arrive()
	} else {
		if clients > total {
			clients = total
		}
		for c := 0; c < clients; c++ {
			next()
		}
	}
	end := eng.RunUntilIdle()

	res.Elapsed = end.Sub(measStart)
	res.Throughput = metrics.Throughput(res.Requests, measStart, end)
	res.Cache = backend.CacheStats()
	res.Util = backend.Hardware().MeanUtilization()
	res.MaxDiskUtil = backend.Hardware().MaxDiskUtilization()
	return res
}
