package workload

import (
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

var testParams = hw.DefaultParams()

func smallTrace(nfiles, nreq int) *trace.Trace {
	tr := &trace.Trace{Name: "small"}
	for i := 0; i < nfiles; i++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(i), Size: 12 * 1024})
	}
	for i := 0; i < nreq; i++ {
		tr.Requests = append(tr.Requests, block.FileID(i%nfiles))
	}
	return tr
}

func TestRunCompletesAllRequests(t *testing.T) {
	tr := smallTrace(10, 200)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: core.PolicyMaster})
	res := Run(eng, s, tr, Config{Clients: 4, WarmupFrac: 0.5})
	if res.Requests != 100 {
		t.Fatalf("measured %d requests, want 100 (half warmup)", res.Requests)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
	if res.Responses.Count() != 100 {
		t.Fatalf("response samples = %d", res.Responses.Count())
	}
	if res.Responses.Mean() <= 0 {
		t.Fatal("mean response not positive")
	}
}

func TestWarmupResetsStats(t *testing.T) {
	tr := smallTrace(4, 100)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: core.PolicyMaster})
	res := Run(eng, s, tr, Config{Clients: 2, WarmupFrac: 0.5})
	// With 4 hot files and a long warm phase, the measured window must be
	// all (local or remote) memory hits: no cold misses leak through.
	if res.Cache.DiskRate() != 0 {
		t.Fatalf("steady-state disk rate = %f, want 0 (all warm)", res.Cache.DiskRate())
	}
	if res.Cache.HitRate() < 0.999 {
		t.Fatalf("steady-state hit rate = %f", res.Cache.HitRate())
	}
}

func TestZeroWarmupMeasuresEverything(t *testing.T) {
	tr := smallTrace(5, 50)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: core.PolicyBasic})
	res := Run(eng, s, tr, Config{Clients: 1, WarmupFrac: 0.0001})
	// WarmupFrac≈0 floors to zero warmup requests.
	if res.Requests != 50 {
		t.Fatalf("measured %d, want 50", res.Requests)
	}
}

func TestMoreClientsMoreThroughput(t *testing.T) {
	run := func(clients int) float64 {
		tr := smallTrace(20, 600)
		eng := sim.NewEngine(1)
		s := core.New(eng, &testParams, tr, core.Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: core.PolicyMaster})
		return Run(eng, s, tr, Config{Clients: clients, WarmupFrac: 0.3}).Throughput
	}
	one, eight := run(1), run(8)
	if eight <= one {
		t.Fatalf("8 clients (%.0f req/s) not faster than 1 (%.0f req/s)", eight, one)
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	tr := smallTrace(2, 10)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 1, MemoryPerNode: 1 << 20})
	for name, cfg := range map[string]Config{
		"warmup=1": {WarmupFrac: 1},
		"warmup<0": {WarmupFrac: -0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(eng, s, tr, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty trace: no panic")
			}
		}()
		Run(eng, s, &trace.Trace{Name: "empty", Files: tr.Files}, Config{})
	}()
}

func TestOpenLoopArrivals(t *testing.T) {
	tr := smallTrace(10, 400)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: core.PolicyMaster})
	// 1000 req/s offered over 400 requests ≈ 0.4s of virtual time.
	res := Run(eng, s, tr, Config{WarmupFrac: 0.25, OpenLoopRate: 1000})
	if res.Requests != 300 {
		t.Fatalf("measured %d, want 300", res.Requests)
	}
	// Completed rate must track the offered rate (the system is far from
	// saturation at 1000 req/s with warm caches).
	if res.Throughput < 700 || res.Throughput > 1400 {
		t.Fatalf("open-loop throughput = %f, want ≈1000", res.Throughput)
	}
}

func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	run := func(rate float64) float64 {
		tr := smallTrace(10, 600)
		eng := sim.NewEngine(1)
		s := core.New(eng, &testParams, tr, core.Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: core.PolicyMaster})
		res := Run(eng, s, tr, Config{WarmupFrac: 0.3, OpenLoopRate: rate})
		return float64(res.Responses.Mean())
	}
	light, heavy := run(200), run(3000)
	if heavy < light {
		t.Fatalf("latency at heavy load (%f) below light load (%f)", heavy, light)
	}
}

func TestClientsClampedToTrace(t *testing.T) {
	tr := smallTrace(2, 3)
	eng := sim.NewEngine(1)
	s := core.New(eng, &testParams, tr, core.Config{Nodes: 1, MemoryPerNode: 1 << 20})
	res := Run(eng, s, tr, Config{Clients: 100, WarmupFrac: 0.0001})
	if res.Requests != 3 {
		t.Fatalf("measured %d, want 3", res.Requests)
	}
}
