package experiments

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Extended variants beyond the paper's Figure 2: the LARD family of
// Pai et al. [17], the origin of the conventional wisdom the paper
// re-examines.
const (
	VariantLARD    Variant = "lard"
	VariantLARDR   Variant = "lard-r"
	VariantNChance Variant = "cc-nchance"
)

// ExtendedVariants lists the servers of the extended comparison.
var ExtendedVariants = []Variant{VariantL2S, VariantLARD, VariantLARDR, VariantNChance, VariantMaster}

// Extended compares L2S, LARD, LARD/R, and cc-master across the memory
// sweep — placing the paper's result in the wider locality-aware design
// space. It is not one of the paper's figures; EXPERIMENTS.md reports it as
// an extension.
func (h *Harness) Extended(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Extended (%s, %d nodes)", p.Name, nodes),
		Title:  "throughput: L2S vs LARD vs LARD/R vs cc-master",
		XLabel: "MB/node",
		YLabel: "requests/s",
	}
	h.prefetch(p, sweepKeys(p.Name, ExtendedVariants, []int{nodes}, h.Opt.MemoriesMB))
	for _, v := range ExtendedVariants {
		s := Series{Variant: v}
		for _, mem := range h.Opt.MemoriesMB {
			pt := h.extPoint(p, v, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, pt.Throughput)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// extPoint measures (memoized) any variant including the LARD family.
// Kept as a name for the extended runners; Harness.Point now routes every
// variant.
func (h *Harness) extPoint(p trace.Preset, v Variant, nodes, memMB int) Point {
	return h.Point(p, v, nodes, memMB)
}

// HotspotResult reports the §5 conjecture experiment: cc-master with
// round-robin DNS versus with the hottest files' requests forced through
// one node, concentrating their master copies there.
type HotspotResult struct {
	Baseline     Point
	Concentrated Point
	// HotFiles is how many files were pinned, covering HotReqFrac of all
	// requests.
	HotFiles   int
	HotReqFrac float64
	// HotNodeCPU/Disk are the pinned node's utilizations in the
	// concentrated run.
	HotNodeCPU  float64
	HotNodeDisk float64
}

// Hotspot runs the forced-concentration experiment on cc-master: the files
// drawing hotFrac of all requests are pinned to node 0.
func (h *Harness) Hotspot(p trace.Preset, nodes, memMB int, hotFrac float64) HotspotResult {
	tr := h.Trace(p)
	hot := hottestFiles(tr, hotFrac)

	run := func(hs *workload.Hotspot) (Point, *core.Server) {
		eng := sim.NewEngine(h.Opt.Seed)
		backend := core.New(eng, &h.params, tr, core.Config{
			Nodes:         nodes,
			MemoryPerNode: int64(memMB) << 20,
			Policy:        core.PolicyMaster,
		})
		res := workload.Run(eng, backend, tr, workload.Config{
			Clients:    h.Opt.Clients,
			WarmupFrac: h.Opt.WarmupFrac,
			Hotspot:    hs,
		})
		return Point{
			Trace: p.Name, Variant: VariantMaster, Nodes: nodes, MemMB: memMB,
			Throughput: res.Throughput,
			MeanRespMs: res.Responses.Mean().Millis(),
			HitRate:    res.Cache.HitRate(),
			Util:       res.Util,
			MaxDisk:    res.MaxDiskUtil,
			Requests:   res.Requests,
		}, backend
	}

	baseline, _ := run(nil)
	conc, backend := run(&workload.Hotspot{Node: 0, Files: hot})
	hw := backend.Hardware()

	var reqFrac float64
	total := len(tr.Requests)
	for _, f := range tr.Requests {
		if hot[f] {
			reqFrac++
		}
	}
	if total > 0 {
		reqFrac /= float64(total)
	}
	return HotspotResult{
		Baseline:     baseline,
		Concentrated: conc,
		HotFiles:     len(hot),
		HotReqFrac:   reqFrac,
		HotNodeCPU:   hw.Nodes[0].CPU.Utilization(),
		HotNodeDisk:  hw.Disks[0].Utilization(),
	}
}

// hottestFiles returns the smallest popularity-ranked file set covering
// frac of all requests.
func hottestFiles(tr *trace.Trace, frac float64) map[block.FileID]bool {
	counts := make(map[block.FileID]int64)
	for _, f := range tr.Requests {
		counts[f]++
	}
	type fc struct {
		f block.FileID
		c int64
	}
	order := make([]fc, 0, len(counts))
	for f, c := range counts {
		order = append(order, fc{f, c})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].c != order[b].c {
			return order[a].c > order[b].c
		}
		return order[a].f < order[b].f
	})
	target := int64(frac * float64(len(tr.Requests)))
	hot := make(map[block.FileID]bool)
	var cum int64
	for _, e := range order {
		if cum >= target {
			break
		}
		hot[e.f] = true
		cum += e.c
	}
	return hot
}
