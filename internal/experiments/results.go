package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// FigureResult is one figure's data plus the real time it took to produce —
// the machine-readable companion to Figure.Format.
type FigureResult struct {
	Name   string   `json:"name"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	WallMS float64  `json:"wall_ms"`
	Series []Series `json:"series"`
}

// BenchResults is the schema of BENCH_results.json: everything a later PR
// needs to compare perf trajectories — what was run, at what scale and
// parallelism, how long each figure and each underlying sweep point took,
// and the figure data itself.
type BenchResults struct {
	GeneratedAt string `json:"generated_at"`
	Seed        int64  `json:"seed"`
	Requests    int    `json:"requests"`
	Parallelism int    `json:"parallelism"`
	// GoMaxProcs/NumCPU/GoVersion record the machine the numbers came from:
	// a 1-CPU CI container and a 16-core dev box produce legitimately
	// different throughput, and contention-sensitive results (the sharded
	// store, parallel benchmarks) are only comparable at equal NumCPU.
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	GoVersion   string  `json:"go_version"`
	TotalWallMS float64 `json:"total_wall_ms"`
	// Notes carries free-form perf annotations from the invoker (e.g.
	// engine-bench numbers, serial-vs-parallel wall-clock comparisons).
	Notes   map[string]string `json:"notes,omitempty"`
	Figures []FigureResult    `json:"figures"`
	Points  []PointTiming     `json:"points"`
}

// NewBenchResults starts a results log for one ccbench invocation.
func NewBenchResults(opt Options, gomaxprocs int) *BenchResults {
	return &BenchResults{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        opt.Seed,
		Requests:    opt.TargetRequests,
		Parallelism: opt.parallelism(),
		GoMaxProcs:  gomaxprocs,
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
	}
}

// AddFigure records a produced figure and its wall-clock cost.
func (r *BenchResults) AddFigure(f *Figure, wall time.Duration) {
	r.Figures = append(r.Figures, FigureResult{
		Name:   f.Name,
		Title:  f.Title,
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		WallMS: float64(wall) / float64(time.Millisecond),
		Series: f.Series,
	})
}

// Write finalizes the log with the harness's per-point timings and the total
// elapsed time, then writes it as indented JSON to path.
func (r *BenchResults) Write(path string, h *Harness, total time.Duration) error {
	if h != nil {
		r.Points = h.Timings()
	}
	r.TotalWallMS = float64(total) / float64(time.Millisecond)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
