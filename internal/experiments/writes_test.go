package experiments

import (
	"testing"

	"repro/internal/trace"
)

func TestWriteCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 20000})
	pts := h.WriteCurve(trace.Calgary, 4, 64, []float64{0, 0.1, 0.3})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Throughput <= 0 {
			t.Fatalf("point %d empty: %+v", i, pt)
		}
	}
	// Invalidations destroy cached state and every write pays a disk
	// access: throughput and hit rate must fall as the write share grows.
	if pts[2].Throughput >= pts[0].Throughput {
		t.Fatalf("throughput did not degrade with writes: %+v", pts)
	}
	if pts[2].HitRate >= pts[0].HitRate {
		t.Fatalf("hit rate did not degrade with writes: %+v", pts)
	}
}

func TestWriteCurveValidation(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 1000})
	assertPanicsExp(t, "no fracs", func() { h.WriteCurve(trace.Calgary, 2, 8, nil) })
	assertPanicsExp(t, "bad frac", func() { h.WriteCurve(trace.Calgary, 2, 8, []float64{1.0}) })
}
