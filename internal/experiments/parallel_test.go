package experiments

import (
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		forEach(par, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par=%d: index %d executed %d times, want 1", par, i, got)
			}
		}
	}
	// n = 0 must not hang or panic.
	forEach(4, 0, func(int) { t.Fatal("fn called for empty range") })
}

// TestForEachRaceSoak hammers the worker pool with more tasks than workers
// so `go test -race` exercises the handoff paths (now that the harness is
// concurrent, this is the test the CI race job leans on).
func TestForEachRaceSoak(t *testing.T) {
	const rounds, tasks = 50, 256
	for r := 0; r < rounds; r++ {
		var sum atomic.Int64
		forEach(8, tasks, func(i int) { sum.Add(int64(i)) })
		if want := int64(tasks * (tasks - 1) / 2); sum.Load() != want {
			t.Fatalf("round %d: sum = %d, want %d", r, sum.Load(), want)
		}
	}
}

// TestFigure2DeterministicAcrossParallelism is the harness's core guarantee:
// the formatted figure is byte-identical whether sweep points run serially
// or fan out across 8 workers, because each point owns its engine and RNG.
func TestFigure2DeterministicAcrossParallelism(t *testing.T) {
	opt := Options{Seed: 1, TargetRequests: 4000, MemoriesMB: []int{8, 32}}

	serialOpt := opt
	serialOpt.Parallelism = 1
	serial := NewHarness(serialOpt).Figure2(trace.Calgary, 4).Format()

	parOpt := opt
	parOpt.Parallelism = 8
	par := NewHarness(parOpt).Figure2(trace.Calgary, 4).Format()

	if serial != par {
		t.Fatalf("Figure2 output differs across parallelism:\n-- serial --\n%s\n-- parallel --\n%s", serial, par)
	}
}

// TestLatencyCurveDeterministicAcrossParallelism covers the non-memoized
// fan-out path (per-rate runs written by index).
func TestLatencyCurveDeterministicAcrossParallelism(t *testing.T) {
	opt := Options{Seed: 1, TargetRequests: 4000, MemoriesMB: []int{8}}
	rates := []float64{500, 1000, 2000}

	serialOpt := opt
	serialOpt.Parallelism = 1
	serial := NewHarness(serialOpt).LatencyCurve(trace.Calgary, 4, 8, rates)

	parOpt := opt
	parOpt.Parallelism = 8
	par := NewHarness(parOpt).LatencyCurve(trace.Calgary, 4, 8, rates)

	for i := range rates {
		if serial[i] != par[i] {
			t.Fatalf("latency point %d differs: serial %+v parallel %+v", i, serial[i], par[i])
		}
	}
}

func TestSweepKeysDedup(t *testing.T) {
	keys := sweepKeys("tr", []Variant{VariantL2S, VariantL2S, VariantMaster}, []int{8}, []int{4, 8})
	if len(keys) != 4 {
		t.Fatalf("got %d keys, want 4 (duplicates removed): %+v", len(keys), keys)
	}
	want := []pointKey{
		{"tr", VariantL2S, 8, 4},
		{"tr", VariantL2S, 8, 8},
		{"tr", VariantMaster, 8, 4},
		{"tr", VariantMaster, 8, 8},
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %+v, want %+v", i, keys[i], want[i])
		}
	}
}

func TestTimingsRecorded(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 2000, MemoriesMB: []int{8}})
	h.Point(trace.Calgary, VariantMaster, 4, 8)
	tm := h.Timings()
	if len(tm) != 1 {
		t.Fatalf("timings = %d entries, want 1", len(tm))
	}
	if tm[0].Trace != "calgary" || tm[0].Variant != VariantMaster || tm[0].WallMS <= 0 {
		t.Fatalf("unexpected timing entry %+v", tm[0])
	}
}
