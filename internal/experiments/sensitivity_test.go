package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rows := SeedSensitivity(Options{TargetRequests: 8000, MemoriesMB: []int{16}},
		trace.Calgary, 4, []int64{1, 2, 3})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Seeds != 3 || r.Mean <= 0 {
		t.Fatalf("row = %+v", r)
	}
	if r.Min > r.Mean || r.Max < r.Mean {
		t.Fatalf("min/mean/max inconsistent: %+v", r)
	}
	// Different seeds give a modest spread, not wild divergence: the
	// headline ratio is a property of the workload shape, not the seed.
	if r.Stdev > 0.3*r.Mean {
		t.Fatalf("ratio unstable across seeds: %+v", r)
	}
	out := FormatSensitivity(trace.Calgary, 4, rows)
	if !strings.Contains(out, "calgary") || !strings.Contains(out, "stdev") {
		t.Fatalf("format: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	r := summarize(8, []float64{1, 2, 3})
	if r.Mean != 2 || r.Min != 1 || r.Max != 3 || r.Seeds != 3 {
		t.Fatalf("summarize = %+v", r)
	}
	if r.Stdev < 0.99 || r.Stdev > 1.01 {
		t.Fatalf("stdev = %f, want 1", r.Stdev)
	}
	empty := summarize(8, nil)
	if empty.Seeds != 0 || empty.Mean != 0 {
		t.Fatalf("empty = %+v", empty)
	}
}

func TestSeedSensitivityPanicsOnNoSeeds(t *testing.T) {
	assertPanicsExp(t, "no seeds", func() {
		SeedSensitivity(Options{}, trace.Calgary, 2, nil)
	})
}
