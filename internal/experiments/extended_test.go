package experiments

import (
	"testing"

	"repro/internal/block"
	"repro/internal/trace"
)

func TestExtendedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 25000, MemoriesMB: []int{16}})
	fig := h.Extended(trace.Calgary, 4)
	if len(fig.Series) != len(ExtendedVariants) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(ExtendedVariants))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 1 || s.Y[0] <= 0 {
			t.Fatalf("%s: bad series %v", s.Variant, s.Y)
		}
	}
	// All locality-aware servers should beat plain cooperative caching's
	// Basic variant... but here the check is just sanity: LARD family and
	// L2S land within an order of magnitude of each other.
	l2s := fig.SeriesFor(VariantL2S).Y[0]
	lard := fig.SeriesFor(VariantLARD).Y[0]
	if lard < 0.1*l2s || lard > 10*l2s {
		t.Fatalf("lard %.0f implausible vs l2s %.0f", lard, l2s)
	}
}

func TestExtendedPointMemoized(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 3000, MemoriesMB: []int{8}})
	a := h.extPoint(trace.Calgary, VariantLARDR, 2, 8)
	b := h.extPoint(trace.Calgary, VariantLARDR, 2, 8)
	if a != b {
		t.Fatal("lard point not memoized")
	}
	// Non-LARD variants route through the standard Point path.
	c := h.extPoint(trace.Calgary, VariantL2S, 2, 8)
	if c.Variant != VariantL2S {
		t.Fatal("extPoint mangled the variant")
	}
}

func TestHotspotExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 25000})
	res := h.Hotspot(trace.Rutgers, 8, 32, 0.5)
	if res.HotFiles == 0 || res.HotReqFrac < 0.4 {
		t.Fatalf("hot set malformed: %+v", res)
	}
	if res.Baseline.Throughput <= 0 || res.Concentrated.Throughput <= 0 {
		t.Fatal("runs did not measure")
	}
	// Concentration must not help (the diffusion of hot files is what
	// protects CC per §5); typically it hurts.
	if res.Concentrated.Throughput > 1.1*res.Baseline.Throughput {
		t.Fatalf("concentrated (%.0f) implausibly beats baseline (%.0f)",
			res.Concentrated.Throughput, res.Baseline.Throughput)
	}
}

func TestHottestFiles(t *testing.T) {
	tr := &trace.Trace{
		Name:     "t",
		Files:    []trace.File{{ID: 0, Size: 1}, {ID: 1, Size: 1}, {ID: 2, Size: 1}},
		Requests: []block.FileID{0, 0, 0, 0, 1, 1, 2, 2, 2},
	}
	hot := hottestFiles(tr, 0.4)
	if !hot[0] || len(hot) != 1 {
		t.Fatalf("hot set = %v, want {0}", hot)
	}
	all := hottestFiles(tr, 1.0)
	if len(all) != 3 {
		t.Fatalf("full coverage set = %v", all)
	}
}
