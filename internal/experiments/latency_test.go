package experiments

import (
	"testing"

	"repro/internal/trace"
)

func TestLatencyCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 20000})
	pts := h.LatencyCurve(trace.Calgary, 8, 256, []float64{500, 2000, 8000})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Throughput <= 0 || pt.MeanRespMs <= 0 {
			t.Fatalf("point %d empty: %+v", i, pt)
		}
		if pt.P95RespMs < pt.MeanRespMs*0.5 {
			t.Fatalf("point %d: P95 %f below half the mean %f", i, pt.P95RespMs, pt.MeanRespMs)
		}
	}
	// Queueing: response time is nondecreasing in offered load, and the
	// lightly loaded point is near the no-contention service time (a few
	// ms, not tens).
	if pts[2].MeanRespMs < pts[0].MeanRespMs {
		t.Fatalf("latency decreased with load: %v", pts)
	}
	if pts[0].MeanRespMs > 50 {
		t.Fatalf("light-load latency %.1fms implausibly high", pts[0].MeanRespMs)
	}
	// At light load, completed throughput tracks the offered rate.
	if ratio := pts[0].Throughput / pts[0].OfferedRate; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("light-load throughput %f vs offered %f", pts[0].Throughput, pts[0].OfferedRate)
	}
}

func TestLatencyCurveValidation(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 1000})
	assertPanicsExp(t, "no rates", func() { h.LatencyCurve(trace.Calgary, 2, 8, nil) })
	assertPanicsExp(t, "bad rate", func() { h.LatencyCurve(trace.Calgary, 2, 8, []float64{-1}) })
}

func assertPanicsExp(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
