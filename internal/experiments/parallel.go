package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// parallelism resolves the effective worker count: Parallelism if positive,
// otherwise one worker per CPU. 1 is the fully serial path.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// forEach runs fn(i) for every i in [0, n) on up to par workers and waits
// for all of them. Work is handed out through an atomic cursor so workers
// stay busy regardless of how uneven the task costs are; callers write
// results by index, which keeps assembly order — and therefore output —
// independent of scheduling. par <= 1 degenerates to today's inline loop.
func forEach(par, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// sweepKeys builds the (variant × nodes × memory) grid of one figure as
// point keys, deduplicated in deterministic order.
func sweepKeys(traceName string, variants []Variant, nodeCounts []int, memsMB []int) []pointKey {
	keys := make([]pointKey, 0, len(variants)*len(nodeCounts)*len(memsMB))
	seen := make(map[pointKey]bool)
	for _, v := range variants {
		for _, n := range nodeCounts {
			for _, mem := range memsMB {
				k := pointKey{traceName, v, n, mem}
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}

// prefetch measures every not-yet-cached key of a sweep concurrently and
// memoizes the results. Each sweep point owns its engine and RNG (seeded
// only by Options.Seed), and the shared inputs — the generated trace and the
// Table 1 constants — are read-only during runs, so results are bit-identical
// to the serial path at any parallelism. Figure runners call prefetch first,
// then assemble series through the memoized Point in deterministic order.
func (h *Harness) prefetch(p trace.Preset, keys []pointKey) {
	// Generate the trace (and nothing else) before fanning out, so workers
	// only ever read the memoized, immutable *trace.Trace.
	h.Trace(p)

	h.mu.Lock()
	todo := keys[:0:0]
	for _, k := range keys {
		if _, ok := h.points[k]; !ok {
			todo = append(todo, k)
		}
	}
	h.mu.Unlock()
	if len(todo) == 0 {
		return
	}

	results := make([]Point, len(todo))
	forEach(h.Opt.parallelism(), len(todo), func(i int) {
		k := todo[i]
		results[i] = h.run(p, k.variant, k.nodes, k.memMB)
	})

	h.mu.Lock()
	for i, k := range todo {
		h.points[k] = results[i]
	}
	h.mu.Unlock()
}
