package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestFigureMarkdown(t *testing.T) {
	f := &Figure{
		Name: "Figure X", Title: "demo", XLabel: "MB", YLabel: "req/s",
		Series: []Series{
			{Variant: VariantL2S, X: []int{4, 8}, Y: []float64{1.5, 2.5}},
			{Variant: VariantMaster, X: []int{4, 8}, Y: []float64{1.25, 2.25}},
		},
	}
	md := f.Markdown()
	for _, want := range []string{
		"### Figure X — demo",
		"| MB | l2s | cc-master |",
		"| 4 | 1.50 | 1.25 |",
		"| 8 | 2.50 | 2.25 |",
		"(req/s)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 3000, MemoriesMB: []int{16}})
	var b strings.Builder
	err := WriteReport(&b, h, ReportConfig{
		Traces: []trace.Preset{trace.Calgary},
		Nodes:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Reproduction report",
		"## Table 2",
		"Figure 2 (calgary, 4 nodes)",
		"Figure 4 (rutgers, 4 nodes)",
		"Figure 6b",
		"ideal-lru",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Extended") {
		t.Error("extended section present without opting in")
	}
}
