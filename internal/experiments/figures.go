package experiments

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Series is one curve of a figure: a variant's metric across the sweep.
type Series struct {
	Variant Variant   `json:"variant"`
	X       []int     `json:"x"` // memory MB or node count
	Y       []float64 `json:"y"`
}

// Figure is a reproduced plot: named curves over a shared x-axis.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table (x down, one column
// per series), the harness's stand-in for the paper's plots.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %12s", s.Variant)
	}
	fmt.Fprintf(&b, "   (%s)\n", f.YLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(&b, "%-10d", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %12.2f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesFor returns the curve of variant v; nil if absent.
func (f *Figure) SeriesFor(v Variant) *Series {
	for i := range f.Series {
		if f.Series[i].Variant == v {
			return &f.Series[i]
		}
	}
	return nil
}

// Figure2 reproduces one panel of Figure 2: throughput (requests/s) versus
// per-node memory on an 8-node cluster, for L2S and the three CC variants.
func (h *Harness) Figure2(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Figure 2 (%s, %d nodes)", p.Name, nodes),
		Title:  "throughput vs per-node memory",
		XLabel: "MB/node",
		YLabel: "requests/s",
	}
	h.prefetch(p, sweepKeys(p.Name, Variants, []int{nodes}, h.Opt.MemoriesMB))
	for _, v := range Variants {
		s := Series{Variant: v}
		for _, mem := range h.Opt.MemoriesMB {
			pt := h.Point(p, v, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, pt.Throughput)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure3 reproduces Figure 3: CC throughput normalized against L2S.
// The paper shows Calgary on 4 nodes and Rutgers on 8.
func (h *Harness) Figure3(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Figure 3 (%s, %d nodes)", p.Name, nodes),
		Title:  "CC throughput normalized to L2S",
		XLabel: "MB/node",
		YLabel: "fraction of L2S",
	}
	// The normalized curves need both the CC variants and the L2S baseline.
	h.prefetch(p, sweepKeys(p.Name, Variants, []int{nodes}, h.Opt.MemoriesMB))
	for _, v := range Variants[1:] { // CC variants only
		s := Series{Variant: v}
		for _, mem := range h.Opt.MemoriesMB {
			base := h.Point(p, VariantL2S, nodes, mem).Throughput
			pt := h.Point(p, v, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, ratio(pt.Throughput, base))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure4 reproduces Figure 4: cluster-memory hit rate versus per-node
// memory (Rutgers, 8 nodes in the paper). CC hits count local + remote.
func (h *Harness) Figure4(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Figure 4 (%s, %d nodes)", p.Name, nodes),
		Title:  "hit rate vs per-node memory",
		XLabel: "MB/node",
		YLabel: "hit rate (%)",
	}
	h.prefetch(p, sweepKeys(p.Name, Variants, []int{nodes}, h.Opt.MemoriesMB))
	for _, v := range Variants {
		s := Series{Variant: v}
		for _, mem := range h.Opt.MemoriesMB {
			pt := h.Point(p, v, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, pt.HitRate*100)
		}
		f.Series = append(f.Series, s)
	}
	// The "theoretical maximum" §5 judges hit rates against: an ideal
	// single LRU over the aggregate cluster memory (stack-distance
	// analysis of the trace).
	sa := h.Stack(p)
	ideal := Series{Variant: "ideal-lru"}
	for _, mem := range h.Opt.MemoriesMB {
		ideal.X = append(ideal.X, mem)
		ideal.Y = append(ideal.Y, sa.HitRate(int64(mem)<<20*int64(nodes))*100)
	}
	f.Series = append(f.Series, ideal)
	return f
}

// Figure5 reproduces Figure 5: CC average response time normalized against
// L2S (Calgary 4 nodes; Rutgers 8 nodes in the paper).
func (h *Harness) Figure5(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Figure 5 (%s, %d nodes)", p.Name, nodes),
		Title:  "CC mean response time normalized to L2S",
		XLabel: "MB/node",
		YLabel: "ratio to L2S",
	}
	h.prefetch(p, sweepKeys(p.Name, Variants, []int{nodes}, h.Opt.MemoriesMB))
	for _, v := range Variants[1:] {
		s := Series{Variant: v}
		for _, mem := range h.Opt.MemoriesMB {
			base := h.Point(p, VariantL2S, nodes, mem).MeanRespMs
			pt := h.Point(p, v, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, ratio(pt.MeanRespMs, base))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure6A reproduces Figure 6(a): the master-preserving CC server's mean
// resource utilization (disk, CPU, NIC) versus per-node memory.
func (h *Harness) Figure6A(p trace.Preset, nodes int) *Figure {
	f := &Figure{
		Name:   fmt.Sprintf("Figure 6a (%s, %d nodes)", p.Name, nodes),
		Title:  "cc-master resource utilization vs per-node memory",
		XLabel: "MB/node",
		YLabel: "utilization (%)",
	}
	h.prefetch(p, sweepKeys(p.Name, []Variant{VariantMaster}, []int{nodes}, h.Opt.MemoriesMB))
	resources := []struct {
		name Variant
		get  func(Point) float64
	}{
		{"disk", func(pt Point) float64 { return pt.Util.Disk }},
		{"cpu", func(pt Point) float64 { return pt.Util.CPU }},
		{"nic", func(pt Point) float64 { return pt.Util.NIC }},
	}
	for _, r := range resources {
		s := Series{Variant: r.name}
		for _, mem := range h.Opt.MemoriesMB {
			pt := h.Point(p, VariantMaster, nodes, mem)
			s.X = append(s.X, mem)
			s.Y = append(s.Y, r.get(pt)*100)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure6B reproduces Figure 6(b): cc-master throughput versus cluster size
// at a fixed 32 MB per node (4–32 nodes in the paper).
func (h *Harness) Figure6B(p trace.Preset, nodeCounts []int, memMB int) *Figure {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 16, 32}
	}
	if memMB == 0 {
		memMB = 32
	}
	f := &Figure{
		Name:   fmt.Sprintf("Figure 6b (%s, %dMB/node)", p.Name, memMB),
		Title:  "cc-master throughput vs cluster size",
		XLabel: "nodes",
		YLabel: "requests/s",
	}
	h.prefetch(p, sweepKeys(p.Name, []Variant{VariantMaster}, nodeCounts, []int{memMB}))
	s := Series{Variant: VariantMaster}
	for _, n := range nodeCounts {
		pt := h.Point(p, VariantMaster, n, memMB)
		s.X = append(s.X, n)
		s.Y = append(s.Y, pt.Throughput)
	}
	f.Series = append(f.Series, s)
	return f
}

// Table2 reproduces Table 2 from the generated traces.
func (h *Harness) Table2() []trace.Stats {
	var out []trace.Stats
	for _, p := range trace.Presets {
		out = append(out, trace.Characterize(h.Trace(p)))
	}
	return out
}

// Figure1 reproduces Figure 1's CDF curves for a preset.
func (h *Harness) Figure1(p trace.Preset, points int) []trace.CDFPoint {
	return trace.CDF(h.Trace(p), points)
}

func ratio(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}
