package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/trace"
)

// SensitivityRow is the cross-seed statistics of the headline ratio
// (cc-master throughput / L2S throughput) at one memory point.
type SensitivityRow struct {
	MemMB int
	Mean  float64
	Stdev float64
	Min   float64
	Max   float64
	Seeds int
}

// SeedSensitivity reruns the cc-master-vs-L2S comparison under each seed
// (fresh trace + fresh simulation) and reports the spread of the headline
// ratio — the reproducibility check a careful reader of the paper would
// ask for, since the original reports single runs.
func SeedSensitivity(opt Options, p trace.Preset, nodes int, seeds []int64) []SensitivityRow {
	if len(seeds) == 0 {
		panic("experiments: SeedSensitivity needs seeds")
	}
	opt = opt.withDefaults()
	// Each seed is an independent harness (fresh trace + fresh runs), so the
	// sweep fans out across seeds; within a seed the two variants' memory
	// sweeps fan out through that harness's own prefetch. perSeed is indexed
	// by seed so assembly order — and the reported spread — matches serial.
	perSeed := make([][]float64, len(seeds))
	forEach(opt.parallelism(), len(seeds), func(si int) {
		o := opt
		o.Seed = seeds[si]
		o.Parallelism = 1 // the pool is saturated at the seed level
		h := NewHarness(o)
		h.prefetch(p, sweepKeys(p.Name, []Variant{VariantL2S, VariantMaster}, []int{nodes}, o.MemoriesMB))
		row := make([]float64, len(o.MemoriesMB))
		for i, mem := range o.MemoriesMB {
			l2s := h.Point(p, VariantL2S, nodes, mem).Throughput
			master := h.Point(p, VariantMaster, nodes, mem).Throughput
			if l2s > 0 {
				row[i] = master / l2s
			} else {
				row[i] = -1 // sentinel: excluded below, as in the serial path
			}
		}
		perSeed[si] = row
	})
	ratios := make([][]float64, len(opt.MemoriesMB))
	for _, row := range perSeed {
		for i, r := range row {
			if r >= 0 {
				ratios[i] = append(ratios[i], r)
			}
		}
	}
	rows := make([]SensitivityRow, len(opt.MemoriesMB))
	for i, mem := range opt.MemoriesMB {
		rows[i] = summarize(mem, ratios[i])
	}
	return rows
}

func summarize(mem int, xs []float64) SensitivityRow {
	row := SensitivityRow{MemMB: mem, Seeds: len(xs)}
	if len(xs) == 0 {
		return row
	}
	row.Min, row.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < row.Min {
			row.Min = x
		}
		if x > row.Max {
			row.Max = x
		}
	}
	row.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - row.Mean
			ss += d * d
		}
		row.Stdev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return row
}

// FormatSensitivity renders the rows as an aligned table.
func FormatSensitivity(p trace.Preset, nodes int, rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed sensitivity — cc-master/L2S throughput ratio (%s, %d nodes)\n", p.Name, nodes)
	fmt.Fprintf(&b, "%-10s %-8s %-8s %-8s %-8s %-6s\n", "MB/node", "mean", "stdev", "min", "max", "seeds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-8.3f %-8.3f %-8.3f %-8.3f %-6d\n",
			r.MemMB, r.Mean, r.Stdev, r.Min, r.Max, r.Seeds)
	}
	return b.String()
}
