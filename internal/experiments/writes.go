package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WritePoint is one point of the write-fraction sweep.
type WritePoint struct {
	WriteFrac  float64
	Throughput float64
	MeanRespMs float64
	HitRate    float64
}

// WriteCurve sweeps the fraction of whole-file updates in the request
// stream and measures cc-master with the simulated write-invalidate
// protocol (§6's write extension): throughput degrades with write share as
// invalidations destroy cached state and every update pays a home disk
// write.
func (h *Harness) WriteCurve(p trace.Preset, nodes, memMB int, fracs []float64) []WritePoint {
	if len(fracs) == 0 {
		panic("experiments: WriteCurve needs write fractions")
	}
	for _, frac := range fracs {
		if frac < 0 || frac >= 1 {
			panic(fmt.Sprintf("experiments: write fraction %v out of [0,1)", frac))
		}
	}
	tr := h.Trace(p)
	out := make([]WritePoint, len(fracs))
	// Independent runs per write fraction: fan out, assemble by index.
	forEach(h.Opt.parallelism(), len(fracs), func(i int) {
		frac := fracs[i]
		eng := sim.NewEngine(h.Opt.Seed)
		backend := core.New(eng, &h.params, tr, core.Config{
			Nodes:         nodes,
			MemoryPerNode: int64(memMB) << 20,
			Policy:        core.PolicyMaster,
		})
		res := workload.Run(eng, backend, tr, workload.Config{
			Clients:            h.Opt.Clients,
			WarmupFrac:         h.Opt.WarmupFrac,
			WriteFrac:          frac,
			MaxResponseSamples: h.Opt.MaxResponseSamples,
		})
		out[i] = WritePoint{
			WriteFrac:  frac,
			Throughput: res.Throughput,
			MeanRespMs: res.Responses.Mean().Millis(),
			HitRate:    res.Cache.HitRate(),
		}
	})
	return out
}
