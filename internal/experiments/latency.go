package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LatencyPoint is one point of a latency-versus-load curve.
type LatencyPoint struct {
	OfferedRate float64 // requests/s offered (Poisson)
	Throughput  float64 // requests/s completed in the measured window
	MeanRespMs  float64
	P95RespMs   float64
}

// LatencyCurve drives cc-master with open-loop Poisson arrivals at each
// offered rate and reports the response-time curve — the queueing-theoretic
// view underneath the paper's closed-loop maximum-throughput numbers: mean
// response time stays near the service time until the offered load
// approaches the (disk- or CPU-bound) capacity, then grows sharply.
func (h *Harness) LatencyCurve(p trace.Preset, nodes, memMB int, rates []float64) []LatencyPoint {
	if len(rates) == 0 {
		panic("experiments: LatencyCurve needs offered rates")
	}
	for _, rate := range rates {
		if rate <= 0 {
			panic(fmt.Sprintf("experiments: non-positive rate %v", rate))
		}
	}
	tr := h.Trace(p)
	out := make([]LatencyPoint, len(rates))
	// Each offered rate is an independent run on its own engine; fan them
	// out and write results by index so the curve order is deterministic.
	forEach(h.Opt.parallelism(), len(rates), func(i int) {
		rate := rates[i]
		eng := sim.NewEngine(h.Opt.Seed)
		backend := core.New(eng, &h.params, tr, core.Config{
			Nodes:         nodes,
			MemoryPerNode: int64(memMB) << 20,
			Policy:        core.PolicyMaster,
		})
		res := workload.Run(eng, backend, tr, workload.Config{
			WarmupFrac:         h.Opt.WarmupFrac,
			OpenLoopRate:       rate,
			MaxResponseSamples: h.Opt.MaxResponseSamples,
		})
		out[i] = LatencyPoint{
			OfferedRate: rate,
			Throughput:  res.Throughput,
			MeanRespMs:  res.Responses.Mean().Millis(),
			P95RespMs:   res.Responses.Percentile(0.95).Millis(),
		}
	})
	return out
}
