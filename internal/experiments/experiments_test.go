package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// fastOpts keeps shape tests quick: a reduced request stream and a coarse
// memory sweep. The qualitative orderings asserted here are scale-robust;
// cmd/ccbench regenerates the full figures.
func fastOpts() Options {
	return Options{
		Seed:           1,
		TargetRequests: 40000,
		MemoriesMB:     []int{8, 64},
	}
}

func TestVariantMapping(t *testing.T) {
	if _, ok := VariantL2S.CCPolicy(); ok {
		t.Fatal("l2s mapped to a CC policy")
	}
	for _, v := range Variants[1:] {
		if _, ok := v.CCPolicy(); !ok {
			t.Fatalf("%s did not map to a CC policy", v)
		}
	}
}

func TestPointMemoization(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 2000, MemoriesMB: []int{8}})
	a := h.Point(trace.Calgary, VariantMaster, 4, 8)
	b := h.Point(trace.Calgary, VariantMaster, 4, 8)
	if a != b {
		t.Fatal("memoized point differs")
	}
	if len(h.points) != 1 {
		t.Fatalf("points cached = %d, want 1", len(h.points))
	}
}

func TestSection5Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(fastOpts())
	for _, mem := range h.Opt.MemoriesMB {
		l2s := h.Point(trace.Rutgers, VariantL2S, 8, mem)
		basic := h.Point(trace.Rutgers, VariantBasic, 8, mem)
		sched := h.Point(trace.Rutgers, VariantSched, 8, mem)
		master := h.Point(trace.Rutgers, VariantMaster, 8, mem)

		// §5: Basic lags significantly; scheduling helps; master-preserving
		// replacement recovers most of L2S's throughput.
		if !(basic.Throughput < sched.Throughput) {
			t.Errorf("mem=%d: basic (%.0f) not below sched (%.0f)", mem, basic.Throughput, sched.Throughput)
		}
		if !(sched.Throughput < master.Throughput) {
			t.Errorf("mem=%d: sched (%.0f) not below master (%.0f)", mem, sched.Throughput, master.Throughput)
		}
		if master.Throughput < 0.6*l2s.Throughput {
			t.Errorf("mem=%d: master (%.0f) below 60%% of L2S (%.0f)", mem, master.Throughput, l2s.Throughput)
		}
		// Master hit rate approaches L2S's (Figure 4) and its hits are
		// mostly remote at small memories (§5).
		if master.HitRate < l2s.HitRate-0.05 {
			t.Errorf("mem=%d: master hit %.2f far below l2s %.2f", mem, master.HitRate, l2s.HitRate)
		}
		// (Remote-dominance needs memory scarce relative to the touched
		// working set; at this reduced request scale that is the 8 MB point.)
		if mem <= 8 && master.RemoteRate < master.LocalRate {
			t.Errorf("mem=%d: master hits not mostly remote (local %.2f remote %.2f)",
				mem, master.LocalRate, master.RemoteRate)
		}
		// L2S never fetches from peer memory.
		if l2s.RemoteRate != 0 {
			t.Errorf("l2s remote rate = %f", l2s.RemoteRate)
		}
		// CC response time is somewhat worse than L2S (Figure 5), never
		// dramatically better.
		if master.MeanRespMs < 0.8*l2s.MeanRespMs {
			t.Errorf("mem=%d: master response %.1fms implausibly beats l2s %.1fms",
				mem, master.MeanRespMs, l2s.MeanRespMs)
		}
	}
}

func TestBasicDiskBottleneckImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// §5: under CC-Basic "one disk is always the performance bottleneck
	// because of interleaving" — the busiest disk saturates while the mean
	// lags. The scheduled variants even the load out: their mean-to-max
	// gap must be clearly smaller.
	h := NewHarness(Options{TargetRequests: 40000, MemoriesMB: []int{16}})
	gap := func(v Variant) float64 {
		pt := h.Point(trace.Rutgers, v, 8, 16)
		return pt.MaxDisk - pt.Util.Disk
	}
	basic, master := gap(VariantBasic), gap(VariantMaster)
	if basic <= master {
		t.Fatalf("FIFO disk imbalance (%.3f) not above scheduled (%.3f)", basic, master)
	}
	if pt := h.Point(trace.Rutgers, VariantBasic, 8, 16); pt.MaxDisk < 0.95 {
		t.Fatalf("basic's busiest disk at %.2f, expected saturated", pt.MaxDisk)
	}
}

func TestFigure6ANetworkMostlyIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(fastOpts())
	fig := h.Figure6A(trace.Rutgers, 8)
	nic := fig.SeriesFor("nic")
	disk := fig.SeriesFor("disk")
	if nic == nil || disk == nil {
		t.Fatal("missing series")
	}
	for i := range nic.X {
		if nic.Y[i] > 50 {
			t.Errorf("NIC utilization %.0f%% at %dMB; §5 says the network is mostly idle", nic.Y[i], nic.X[i])
		}
		if disk.Y[i] < nic.Y[i] {
			t.Errorf("disk (%.0f%%) below NIC (%.0f%%) at %dMB", disk.Y[i], nic.Y[i], nic.X[i])
		}
	}
}

func TestFigure6BScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := NewHarness(Options{TargetRequests: 30000})
	fig := h.Figure6B(trace.Rutgers, []int{4, 8}, 32)
	s := fig.Series[0]
	if len(s.Y) != 2 {
		t.Fatalf("series has %d points", len(s.Y))
	}
	if s.Y[1] <= s.Y[0] {
		t.Errorf("throughput did not scale: 4 nodes %.0f, 8 nodes %.0f", s.Y[0], s.Y[1])
	}
}

func TestFigureFormat(t *testing.T) {
	f := &Figure{
		Name: "Figure X", Title: "demo", XLabel: "MB", YLabel: "req/s",
		Series: []Series{{Variant: VariantL2S, X: []int{4, 8}, Y: []float64{1, 2}}},
	}
	out := f.Format()
	for _, want := range []string{"Figure X", "l2s", "req/s", "1.00", "2.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	if f.SeriesFor(VariantBasic) != nil {
		t.Error("SeriesFor found absent variant")
	}
}

func TestTable2AndFigure1(t *testing.T) {
	h := NewHarness(Options{TargetRequests: 5000})
	rows := h.Table2()
	if len(rows) != 4 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	for i, p := range trace.Presets {
		if rows[i].Name != p.Name || rows[i].NumFiles != p.NumFiles {
			t.Errorf("row %d = %+v", i, rows[i])
		}
	}
	pts := h.Figure1(trace.Rutgers, 20)
	if len(pts) == 0 || pts[len(pts)-1].CumReqFrac < 0.999 {
		t.Fatal("Figure 1 CDF malformed")
	}
}

func TestScaleFor(t *testing.T) {
	o := Options{TargetRequests: 50000}.withDefaults()
	if s := o.scaleFor(trace.Rutgers); s <= 0 || s > 1 {
		t.Fatalf("scale = %f", s)
	}
	o2 := Options{Scale: 0.5}.withDefaults()
	if s := o2.scaleFor(trace.Rutgers); s != 0.5 {
		t.Fatalf("explicit scale not honored: %f", s)
	}
	tiny := trace.Preset{Name: "t", NumFiles: 1, FileSetBytes: 1, NumRequests: 10}
	if s := o.scaleFor(tiny); s != 1 {
		t.Fatalf("scale for tiny trace = %f, want clamped to 1", s)
	}
}
