// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): one runner per figure, all built on the same harness so
// identical (trace, variant, cluster, memory) points are computed once and
// shared across figures, exactly as the paper reuses its simulation sweep.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/l2s"
	"repro/internal/lard"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Variant names a server under test.
type Variant string

// The four servers of Figure 2.
const (
	VariantL2S    Variant = "l2s"
	VariantBasic  Variant = "cc-basic"
	VariantSched  Variant = "cc-sched"
	VariantMaster Variant = "cc-master"
)

// Variants lists all servers in figure order.
var Variants = []Variant{VariantL2S, VariantBasic, VariantSched, VariantMaster}

// CCPolicy maps a CC variant to its policy; ok is false for L2S.
func (v Variant) CCPolicy() (core.Policy, bool) {
	switch v {
	case VariantBasic:
		return core.PolicyBasic, true
	case VariantSched:
		return core.PolicySched, true
	case VariantMaster:
		return core.PolicyMaster, true
	case VariantNChance:
		return core.PolicyNChance, true
	default:
		return 0, false
	}
}

// Options tune the harness. The zero value gives the defaults used by
// cmd/ccbench.
type Options struct {
	// Seed makes runs reproducible.
	Seed int64
	// Scale overrides the per-trace request scale; 0 derives it from
	// TargetRequests.
	Scale float64
	// TargetRequests is the approximate request count per run when Scale
	// is 0 (default 60000). The file set is never scaled.
	TargetRequests int
	// Clients is the closed-loop client count (0: workload default).
	Clients int
	// WarmupFrac is passed to the workload driver (0: default 0.4).
	WarmupFrac float64
	// MemoriesMB is the per-node memory sweep (default 4–512 MB, the
	// paper's x-axis).
	MemoriesMB []int
	// HintAccuracy, if in (0,1), runs CC variants with the hint-based
	// directory model instead of the perfect directory.
	HintAccuracy float64
	// Parallelism bounds how many sweep points run concurrently (each on
	// its own engine). 0 means runtime.NumCPU(); 1 is the serial path.
	// Results are bit-identical at any setting.
	Parallelism int
	// MaxResponseSamples, if positive, switches response-time accounting to
	// reservoir sampling with that many samples per run — bounding memory on
	// full-scale sweeps. 0 keeps exact percentiles.
	MaxResponseSamples int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetRequests == 0 {
		o.TargetRequests = 60000
	}
	if len(o.MemoriesMB) == 0 {
		o.MemoriesMB = []int{4, 8, 16, 32, 64, 128, 256, 512}
	}
	return o
}

// scaleFor derives the request scale for a preset.
func (o Options) scaleFor(p trace.Preset) float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	s := float64(o.TargetRequests) / float64(p.NumRequests)
	if s > 1 {
		return 1
	}
	return s
}

// Point is one measured configuration.
type Point struct {
	Trace      string
	Variant    Variant
	Nodes      int
	MemMB      int
	Throughput float64 // requests/s
	MeanRespMs float64
	P95RespMs  float64
	LocalRate  float64
	RemoteRate float64
	HitRate    float64
	DiskRate   float64
	Util       cluster.Utilization
	MaxDisk    float64
	Requests   int
}

// String formats the point as one sweep row.
func (p Point) String() string {
	return fmt.Sprintf("%-9s %-10s n=%-2d mem=%-4dMB tput=%8.0f req/s resp=%6.2fms hit=%5.1f%% (local %5.1f%% remote %5.1f%%) disk=%5.1f%% util cpu/disk/nic=%4.2f/%4.2f/%4.2f",
		p.Trace, p.Variant, p.Nodes, p.MemMB, p.Throughput, p.MeanRespMs,
		p.HitRate*100, p.LocalRate*100, p.RemoteRate*100, p.DiskRate*100,
		p.Util.CPU, p.Util.Disk, p.Util.NIC)
}

// Harness memoizes traces and measured points across figure runners. Figure
// runners fan sweep points out over a bounded worker pool (see parallel.go);
// mu guards the memoization maps against concurrent workers.
type Harness struct {
	Opt    Options
	params hw.Params

	mu      sync.Mutex
	traces  map[string]*trace.Trace
	stacks  map[string]*trace.StackAnalysis
	points  map[pointKey]Point
	timings map[pointKey]time.Duration
}

type pointKey struct {
	trace   string
	variant Variant
	nodes   int
	memMB   int
}

// NewHarness builds a harness with the given options.
func NewHarness(opt Options) *Harness {
	return &Harness{
		Opt:     opt.withDefaults(),
		params:  hw.DefaultParams(),
		traces:  make(map[string]*trace.Trace),
		stacks:  make(map[string]*trace.StackAnalysis),
		points:  make(map[pointKey]Point),
		timings: make(map[pointKey]time.Duration),
	}
}

// Params exposes the Table 1 constants in use.
func (h *Harness) Params() *hw.Params { return &h.params }

// Trace returns (generating on first use) the workload for preset. Generated
// traces are immutable; concurrent sweep workers share them read-only.
func (h *Harness) Trace(p trace.Preset) *trace.Trace {
	h.mu.Lock()
	defer h.mu.Unlock()
	if tr, ok := h.traces[p.Name]; ok {
		return tr
	}
	tr := p.Generate(h.Opt.Seed, h.Opt.scaleFor(p))
	h.traces[p.Name] = tr
	return tr
}

// Stack returns (computing on first use) the LRU stack-distance profile of
// the preset's workload — the "theoretical maximum" reference of §5.
func (h *Harness) Stack(p trace.Preset) *trace.StackAnalysis {
	tr := h.Trace(p)
	h.mu.Lock()
	defer h.mu.Unlock()
	if sa, ok := h.stacks[p.Name]; ok {
		return sa
	}
	sa := trace.AnalyzeStack(tr)
	h.stacks[p.Name] = sa
	return sa
}

// Point measures (or returns the memoized) configuration.
func (h *Harness) Point(p trace.Preset, v Variant, nodes, memMB int) Point {
	key := pointKey{p.Name, v, nodes, memMB}
	h.mu.Lock()
	pt, ok := h.points[key]
	h.mu.Unlock()
	if ok {
		return pt
	}
	pt = h.run(p, v, nodes, memMB)
	h.mu.Lock()
	h.points[key] = pt
	h.mu.Unlock()
	return pt
}

// PointTiming records the real (wall-clock) cost of measuring one sweep
// point — the unit the parallel harness load-balances; cmd/ccbench persists
// them to BENCH_results.json so the perf trajectory is trackable across PRs.
type PointTiming struct {
	Trace   string  `json:"trace"`
	Variant Variant `json:"variant"`
	Nodes   int     `json:"nodes"`
	MemMB   int     `json:"mem_mb"`
	WallMS  float64 `json:"wall_ms"`
}

// Timings returns the wall-clock cost of every point measured so far, in
// deterministic (trace, variant, nodes, memMB) order.
func (h *Harness) Timings() []PointTiming {
	h.mu.Lock()
	out := make([]PointTiming, 0, len(h.timings))
	for k, d := range h.timings {
		out = append(out, PointTiming{
			Trace:   k.trace,
			Variant: k.variant,
			Nodes:   k.nodes,
			MemMB:   k.memMB,
			WallMS:  float64(d) / float64(time.Millisecond),
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Trace != y.Trace {
			return x.Trace < y.Trace
		}
		if x.Variant != y.Variant {
			return x.Variant < y.Variant
		}
		if x.Nodes != y.Nodes {
			return x.Nodes < y.Nodes
		}
		return x.MemMB < y.MemMB
	})
	return out
}

func (h *Harness) run(p trace.Preset, v Variant, nodes, memMB int) Point {
	tr := h.Trace(p)
	started := time.Now()
	defer func() {
		d := time.Since(started)
		h.mu.Lock()
		h.timings[pointKey{p.Name, v, nodes, memMB}] = d
		h.mu.Unlock()
	}()
	eng := sim.NewEngine(h.Opt.Seed)
	mem := int64(memMB) << 20

	var backend cluster.Backend
	if policy, isCC := v.CCPolicy(); isCC {
		backend = core.New(eng, &h.params, tr, core.Config{
			Nodes:         nodes,
			MemoryPerNode: mem,
			Policy:        policy,
			HintAccuracy:  h.Opt.HintAccuracy,
		})
	} else if v == VariantLARD || v == VariantLARDR {
		backend = lard.New(eng, &h.params, tr, lard.Config{
			Nodes:         nodes,
			MemoryPerNode: mem,
			Replication:   v == VariantLARDR,
		})
	} else {
		backend = l2s.New(eng, &h.params, tr, l2s.Config{
			Nodes:         nodes,
			MemoryPerNode: mem,
		})
	}

	res := workload.Run(eng, backend, tr, workload.Config{
		Clients:            h.Opt.Clients,
		WarmupFrac:         h.Opt.WarmupFrac,
		MaxResponseSamples: h.Opt.MaxResponseSamples,
	})
	return Point{
		Trace:      p.Name,
		Variant:    v,
		Nodes:      nodes,
		MemMB:      memMB,
		Throughput: res.Throughput,
		MeanRespMs: res.Responses.Mean().Millis(),
		P95RespMs:  res.Responses.Percentile(0.95).Millis(),
		LocalRate:  res.Cache.LocalRate(),
		RemoteRate: res.Cache.RemoteRate(),
		HitRate:    res.Cache.HitRate(),
		DiskRate:   res.Cache.DiskRate(),
		Util:       res.Util,
		MaxDisk:    res.MaxDiskUtil,
		Requests:   res.Requests,
	}
}
