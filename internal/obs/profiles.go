package obs

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// ContentionProfiles turns on the runtime's mutex and block profilers for the
// paths that are non-empty and returns a flush function that writes the
// profiles and restores the (off) default rates. Intended for command mains:
//
//	defer obs.ContentionProfiles(*mutexProfile, *blockProfile)()
//
// The mutex profile attributes time spent *holding* contended locks (where a
// coarse store lock shows up); the block profile attributes time spent
// *waiting* (channels, Cond waits, lock acquisition). Both profilers are
// sampled at full rate while enabled, which costs a few percent of
// throughput — fine for a profiling run, wrong for a headline benchmark
// number, so they stay off unless explicitly requested.
func ContentionProfiles(mutexPath, blockPath string) func() {
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	write := func(name, path string) {
		p := pprof.Lookup(name)
		if p == nil {
			log.Printf("%sprofile: profile not available", name)
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Printf("%sprofile: %v", name, err)
			return
		}
		if err := p.WriteTo(f, 0); err != nil {
			log.Printf("%sprofile: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Printf("%sprofile: %v", name, err)
		}
	}
	return func() {
		if mutexPath != "" {
			write("mutex", mutexPath)
			runtime.SetMutexProfileFraction(0)
		}
		if blockPath != "" {
			write("block", blockPath)
			runtime.SetBlockProfileRate(0)
		}
	}
}
