package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketing pins the log-bucket layout: bucket i holds
// observations with d <= 1µs·2^i, and anything past the last finite bound
// lands in +Inf.
func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{200 * time.Second, HistBuckets},
		{time.Hour, HistBuckets},
	}
	for _, c := range cases {
		if got := bucketIdx(c.d); got != c.want {
			t.Errorf("bucketIdx(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bound/bucket consistency: every finite bound maps into its own bucket,
	// and one nanosecond more maps into the next.
	for i := 1; i < HistBuckets; i++ {
		if got := bucketIdx(BucketBound(i)); got != i {
			t.Errorf("bound %v maps to bucket %d, want %d", BucketBound(i), got, i)
		}
		if got := bucketIdx(BucketBound(i) + time.Microsecond); got != i+1 && i+1 <= HistBuckets {
			t.Errorf("bound %v+1µs maps to bucket %d, want %d", BucketBound(i), got, i+1)
		}
	}
}

// TestHistogramSnapshotMergeQuantile exercises the snapshot/merge path the
// cluster-stats aggregation uses.
func TestHistogramSnapshotMergeQuantile(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 90; i++ {
		a.Observe(10 * time.Microsecond) // bucket 4 (le 16µs)
	}
	for i := 0; i < 10; i++ {
		b.Observe(5 * time.Millisecond) // bucket 13 (le ~8.2ms)
	}
	da, db := a.Snapshot(), b.Snapshot()
	if da.Count != 90 || db.Count != 10 {
		t.Fatalf("counts %d/%d", da.Count, db.Count)
	}
	da.Merge(db)
	if da.Count != 100 {
		t.Fatalf("merged count %d", da.Count)
	}
	if want := 90*int64(10*time.Microsecond) + 10*int64(5*time.Millisecond); da.SumNanos != want {
		t.Fatalf("merged sum %d, want %d", da.SumNanos, want)
	}
	if q := da.Quantile(0.5); q != BucketBound(4) {
		t.Fatalf("p50 = %v, want %v", q, BucketBound(4))
	}
	if q := da.Quantile(0.99); q != BucketBound(13) {
		t.Fatalf("p99 = %v, want %v", q, BucketBound(13))
	}
}

// TestHistogramConcurrentObserve guards the atomic bucket updates under
// -race and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
				h.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if d := h.Snapshot(); d.Count != workers*each {
		t.Fatalf("count %d, want %d", d.Count, workers*each)
	}
}

// TestRegistryPrometheusFormat checks the exposition output: HELP/TYPE
// headers, counter and gauge lines, labeled histogram buckets with
// cumulative counts and a +Inf terminator.
func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	var n uint64 = 42
	r.Counter("cc_accesses_total", "block accesses", "", func() uint64 { return n })
	r.Gauge("cc_store_blocks", "cached blocks", "", func() float64 { return 7 })
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	r.Histogram("cc_rpc_latency_seconds", "rpc latency", `type="get_block"`, &h)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP cc_accesses_total block accesses",
		"# TYPE cc_accesses_total counter",
		"cc_accesses_total 42",
		"# TYPE cc_store_blocks gauge",
		"cc_store_blocks 7",
		"# TYPE cc_rpc_latency_seconds histogram",
		`cc_rpc_latency_seconds_bucket{type="get_block",le="4e-06"} 2`,
		`cc_rpc_latency_seconds_bucket{type="get_block",le="+Inf"} 2`,
		`cc_rpc_latency_seconds_count{type="get_block"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 2µs bucket (below both samples) reads 0.
	if !strings.Contains(out, `le="2e-06"} 0`) {
		t.Errorf("2µs bucket not cumulative-zero:\n%s", out)
	}
	// Parse-level sanity: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

// TestValueHistogramBucketing pins the power-of-two layout: bucket i holds
// observations with v <= 2^i, values past the last finite bound land in
// +Inf, and negatives clamp to zero.
func TestValueHistogramBucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4},
		{32768, 15},
		{32769, ValueHistBuckets},
		{1 << 40, ValueHistBuckets},
	}
	for _, c := range cases {
		var h ValueHistogram
		h.Observe(c.v)
		d := h.Snapshot()
		got := -1
		for i, n := range d.Buckets {
			if n == 1 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.want)
		}
	}
	// Bound/bucket consistency: every finite bound maps into its own bucket.
	for i := 1; i < ValueHistBuckets; i++ {
		var h ValueHistogram
		h.Observe(int64(ValueBucketBound(i)))
		if d := h.Snapshot(); d.Buckets[i] != 1 {
			t.Errorf("bound %d not in its own bucket %d: %v", ValueBucketBound(i), i, d.Buckets)
		}
	}
}

// TestValueHistogramPrometheusFormat checks the exposition rendering: integer
// le bounds, cumulative counts, integer _sum/_count.
func TestValueHistogramPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	var h ValueHistogram
	h.Observe(1)
	h.Observe(2)
	h.Observe(8)
	r.ValueHistogram("cc_run_blocks", "blocks served per run fetch", "", &h)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cc_run_blocks histogram",
		`cc_run_blocks_bucket{le="1"} 1`,
		`cc_run_blocks_bucket{le="2"} 2`,
		`cc_run_blocks_bucket{le="4"} 2`,
		`cc_run_blocks_bucket{le="8"} 3`,
		`cc_run_blocks_bucket{le="+Inf"} 3`,
		"cc_run_blocks_sum 11",
		"cc_run_blocks_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestRegistryTypeConflictPanics pins the re-registration contract.
func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x", "", "", func() float64 { return 0 })
}

// TestTracerRing exercises wraparound ordering and the nil-tracer no-op.
func TestTracerRing(t *testing.T) {
	var nilT *Tracer
	nilT.Record(Event{Kind: "x"}) // must not panic
	if nilT.Events() != nil || nilT.Total() != 0 {
		t.Fatal("nil tracer should report nothing")
	}

	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: fmt.Sprintf("e%d", i), Aux: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.Aux != want {
			t.Fatalf("event %d has aux %d, want %d (oldest-first after wrap)", i, e.Aux, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total %d, want 10", tr.Total())
	}
}

// TestTracerConcurrentRecord guards the ring under -race.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: "k"})
				tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("total %d, want 2000", tr.Total())
	}
}
