// Package obs is the observability layer of the live middleware: a
// lock-cheap registry of counters, gauges, and log-bucketed latency
// histograms with a Prometheus-text exporter, plus a bounded ring-buffer
// protocol event tracer (trace.go).
//
// The package is deliberately dependency-free (stdlib only) and cheap when
// unused: counters and gauges are read-side closures over the owner's own
// atomics (registration adds no write-path cost at all), histogram
// observation is two atomic adds, and a nil *Tracer records nothing.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// --- log-bucketed latency histogram ---

// HistBuckets is the number of finite histogram buckets. Bucket i counts
// observations with d <= 1µs·2^i, so the finite range spans 1µs to ~134s;
// anything slower lands in the +Inf overflow bucket.
const HistBuckets = 28

// BucketBound reports the upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// Histogram is a fixed-layout, log-bucketed latency histogram. Observe is
// two atomic adds (no locks, no allocation), so it can sit on RPC hot
// paths. The zero value is ready to use.
type Histogram struct {
	buckets  [HistBuckets + 1]atomic.Uint64 // last slot: +Inf overflow
	sumNanos atomic.Int64
}

// bucketIdx maps a duration onto its bucket: the smallest i with
// d <= 1µs·2^i, or the overflow slot.
func bucketIdx(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Ceil to whole microseconds, then ceil(log2).
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	i := bits.Len64(us - 1)
	if i > HistBuckets {
		return HistBuckets
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIdx(d)].Add(1)
	h.sumNanos.Add(int64(d))
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// straddle the copy; each sample is either fully in or fully out of the
// bucket counts (the sum can lag a bucket increment by one sample, which a
// scraper cannot distinguish from scrape timing).
func (h *Histogram) Snapshot() HistogramData {
	var d HistogramData
	d.Buckets = make([]uint64, HistBuckets+1)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		d.Buckets[i] = c
		d.Count += c
	}
	d.SumNanos = h.sumNanos.Load()
	return d
}

// HistogramData is a point-in-time histogram snapshot: per-bucket counts
// (index = bucket, last = +Inf), the total count, and the sum of observed
// nanoseconds. It is JSON-encodable (Stats RPCs carry it) and mergeable
// across nodes because every Histogram shares the same bucket layout.
type HistogramData struct {
	Buckets  []uint64 `json:"buckets"`
	Count    uint64   `json:"count"`
	SumNanos int64    `json:"sum_ns"`
}

// Merge adds o into d bucket-wise.
func (d *HistogramData) Merge(o HistogramData) {
	if len(d.Buckets) < len(o.Buckets) {
		b := make([]uint64, len(o.Buckets))
		copy(b, d.Buckets)
		d.Buckets = b
	}
	for i, c := range o.Buckets {
		d.Buckets[i] += c
	}
	d.Count += o.Count
	d.SumNanos += o.SumNanos
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// reported as the upper bound of the bucket containing the target rank
// (the resolution of a log-bucketed histogram).
func (d HistogramData) Quantile(q float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(d.Count-1))
	var cum uint64
	for i, c := range d.Buckets {
		cum += c
		if cum > rank {
			if i >= HistBuckets {
				return BucketBound(HistBuckets - 1) // +Inf: report the last finite bound
			}
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// --- log-bucketed value histogram ---

// ValueHistBuckets is the number of finite value-histogram buckets. Bucket
// i counts observations with v <= 2^i, spanning 1 to 32768; larger values
// land in the +Inf overflow bucket.
const ValueHistBuckets = 16

// ValueBucketBound reports the upper bound of finite value bucket i.
func ValueBucketBound(i int) uint64 { return 1 << i }

// ValueHistogram is a fixed-layout, log-bucketed histogram for small
// dimensionless integers (run lengths, batch sizes). Like Histogram,
// Observe is two atomic adds and the zero value is ready to use.
type ValueHistogram struct {
	buckets [ValueHistBuckets + 1]atomic.Uint64 // last slot: +Inf overflow
	sum     atomic.Int64
}

// Observe records one sample.
func (h *ValueHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v) - 1)
		if i > ValueHistBuckets {
			i = ValueHistBuckets
		}
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state (same straddling caveat as
// Histogram.Snapshot). Buckets share the HistogramData layout so Stats
// merging works unchanged; bounds are 2^i values, not durations.
func (h *ValueHistogram) Snapshot() HistogramData {
	var d HistogramData
	d.Buckets = make([]uint64, ValueHistBuckets+1)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		d.Buckets[i] = c
		d.Count += c
	}
	d.SumNanos = h.sum.Load()
	return d
}

// --- metric registry ---

// A Registry holds registered metrics and renders them in the Prometheus
// text exposition format. Registration happens at setup time; scraping
// reads the owner's live atomics through the registered closures, so there
// is no copy of the counters to keep in sync.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	series          []series
}

type series struct {
	labels  string // rendered label pairs, e.g. `type="get_block"`, or ""
	counter func() uint64
	gauge   func() float64
	hist    *Histogram
	vhist   *ValueHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register appends a series to (creating if needed) the named family,
// panicking on a type conflict — re-registering a name as a different
// metric type is a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	f.series = append(f.series, s)
}

// Counter registers a monotonically increasing series read through fn.
// labels is a rendered Prometheus label list (`key="value",...`) or "".
func (r *Registry) Counter(name, help, labels string, fn func() uint64) {
	r.register(name, help, "counter", series{labels: labels, counter: fn})
}

// Gauge registers an instantaneous-value series read through fn.
func (r *Registry) Gauge(name, help, labels string, fn func() float64) {
	r.register(name, help, "gauge", series{labels: labels, gauge: fn})
}

// Histogram registers a latency histogram series.
func (r *Registry) Histogram(name, help, labels string, h *Histogram) {
	r.register(name, help, "histogram", series{labels: labels, hist: h})
}

// ValueHistogram registers a dimensionless value histogram series.
func (r *Registry) ValueHistogram(name, help, labels string, h *ValueHistogram) {
	r.register(name, help, "histogram", series{labels: labels, vhist: h})
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(s.labels), s.counter())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %g\n", f.name, braced(s.labels), s.gauge())
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist.Snapshot())
			case s.vhist != nil:
				writeValueHistogram(&b, f.name, s.labels, s.vhist.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// braced renders a label list with its surrounding braces ("" stays "").
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// writeHistogram renders one histogram series: cumulative buckets with
// seconds-valued `le` bounds, then _sum (seconds) and _count.
func writeHistogram(b *strings.Builder, name, labels string, d HistogramData) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < HistBuckets && i < len(d.Buckets); i++ {
		cum += d.Buckets[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, BucketBound(i).Seconds(), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, d.Count)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, braced(labels), time.Duration(d.SumNanos).Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labels), d.Count)
}

// writeValueHistogram renders one value-histogram series: cumulative
// buckets with power-of-two integer `le` bounds, then the integer _sum and
// _count.
func writeValueHistogram(b *strings.Builder, name, labels string, d HistogramData) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < ValueHistBuckets && i < len(d.Buckets); i++ {
		cum += d.Buckets[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, ValueBucketBound(i), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, d.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, braced(labels), d.SumNanos)
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labels), d.Count)
}

// Handler returns an http.Handler serving the registry as a /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

// SortedNames reports the registered family names (for tests and
// debugging).
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
