package obs

import "sync"

// Event is one protocol trace event. The middleware records an event at
// each protocol decision point worth reconstructing after a chaos run:
// eviction forwards, home fallbacks, stale-entry drops, invalidations,
// breaker transitions, and retries. Fields the kind does not use stay at
// their zero (or -1 for "no peer") values.
type Event struct {
	// UnixNanos is the wall-clock time of the event.
	UnixNanos int64 `json:"t_ns"`
	// Kind names the event (see the middleware's trace* constants).
	Kind string `json:"kind"`
	// Node is the recording node's cluster ID.
	Node int32 `json:"node"`
	// Peer is the other party of the event (-1 when not applicable).
	Peer int32 `json:"peer"`
	// File and Idx identify the block involved (File -1 when none).
	File int64 `json:"file"`
	Idx  int32 `json:"idx"`
	// Aux carries kind-specific detail (retry attempt, forward accepted...).
	Aux int64 `json:"aux,omitempty"`
}

// Tracer is a bounded ring buffer of protocol events. Recording overwrites
// the oldest event once the ring is full, so a tracer attached for a whole
// chaos run retains the most recent window — the part that explains the
// anomaly under investigation. A nil *Tracer records nothing, which is the
// zero-cost "tracing disabled" state.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded (>= len(ring) once wrapped)
}

// DefaultTraceCapacity is the ring size NewTracer applies for capacity <= 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record appends one event (overwriting the oldest when full). Safe on a
// nil tracer.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = e
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) && t.total > uint64(len(t.ring)) {
		start := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
		return out
	}
	return append(out, t.ring...)
}

// Total reports how many events were ever recorded (including overwritten
// ones), so a dump can state how much history the ring dropped.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
