// Package directory implements the global master-block directory of the
// cooperative caching layer: the perfect, zero-cost directory the paper's
// simulations assume (§3), plus the hint-based variant of Sarkar & Hartman
// that the paper names as future work (§6).
package directory

import (
	"fmt"

	"repro/internal/block"
)

// NoNode marks the absence of a holder.
const NoNode = -1

// Locator is the lookup interface the caching core uses to find the master
// copy of a block. Implementations: *Perfect (instantaneous global
// knowledge) and *Hints (per-node possibly-stale views).
type Locator interface {
	// Locate reports which node is believed to hold the master of id, from
	// the perspective of node asker. ok is false if no master is known.
	Locate(asker int, id block.ID) (node int, ok bool)
}

// Perfect is the paper's optimistic global directory: every lookup sees the
// true current holder, and maintenance costs nothing. Note the limit the
// paper itself points out: the answer is true at lookup time, but the master
// may be discarded while the request travels, so a fetch can still miss.
type Perfect struct {
	masters map[block.ID]int16
	// prev remembers the previous holder of a moved master; the hint-based
	// simulation model uses it as the stale answer.
	prev map[block.ID]int16

	lookups uint64
	moves   uint64
}

// NewPerfect returns an empty directory.
func NewPerfect() *Perfect {
	return &Perfect{
		masters: make(map[block.ID]int16),
		prev:    make(map[block.ID]int16),
	}
}

// Locate implements Locator.
func (d *Perfect) Locate(_ int, id block.ID) (int, bool) {
	d.lookups++
	n, ok := d.masters[id]
	return int(n), ok
}

// Holder reports the true current master holder (same as Locate for the
// perfect directory, without counting a lookup).
func (d *Perfect) Holder(id block.ID) (int, bool) {
	n, ok := d.masters[id]
	return int(n), ok
}

// Set records that node now holds the master of id.
func (d *Perfect) Set(id block.ID, node int) {
	if node < 0 || node > 1<<15-1 {
		panic(fmt.Sprintf("directory: node %d out of range", node))
	}
	if old, ok := d.masters[id]; ok && int(old) != node {
		d.prev[id] = old
		d.moves++
	}
	d.masters[id] = int16(node)
}

// Drop records that the master of id left memory entirely.
func (d *Perfect) Drop(id block.ID) {
	if old, ok := d.masters[id]; ok {
		d.prev[id] = old
	}
	delete(d.masters, id)
}

// Prev reports the previous holder of id's master, if it ever moved.
func (d *Perfect) Prev(id block.ID) (int, bool) {
	n, ok := d.prev[id]
	return int(n), ok
}

// Size reports how many masters are currently recorded.
func (d *Perfect) Size() int { return len(d.masters) }

// Lookups reports the number of Locate calls.
func (d *Perfect) Lookups() uint64 { return d.lookups }

// Moves reports how many times a master changed holder.
func (d *Perfect) Moves() uint64 { return d.moves }
