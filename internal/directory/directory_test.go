package directory

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func bid(f, i int) block.ID { return block.ID{File: block.FileID(f), Idx: int32(i)} }

func TestPerfectSetLocateDrop(t *testing.T) {
	d := NewPerfect()
	if _, ok := d.Locate(0, bid(1, 0)); ok {
		t.Fatal("empty directory located a master")
	}
	d.Set(bid(1, 0), 3)
	n, ok := d.Locate(0, bid(1, 0))
	if !ok || n != 3 {
		t.Fatalf("Locate = %d,%v", n, ok)
	}
	d.Drop(bid(1, 0))
	if _, ok := d.Locate(0, bid(1, 0)); ok {
		t.Fatal("dropped master still located")
	}
	if d.Size() != 0 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.Lookups() != 3 {
		t.Fatalf("Lookups = %d", d.Lookups())
	}
}

func TestPerfectTracksMoves(t *testing.T) {
	d := NewPerfect()
	d.Set(bid(1, 0), 1)
	d.Set(bid(1, 0), 2)
	if d.Moves() != 1 {
		t.Fatalf("Moves = %d", d.Moves())
	}
	prev, ok := d.Prev(bid(1, 0))
	if !ok || prev != 1 {
		t.Fatalf("Prev = %d,%v", prev, ok)
	}
	// Re-setting to the same node is not a move.
	d.Set(bid(1, 0), 2)
	if d.Moves() != 1 {
		t.Fatalf("Moves after same-node set = %d", d.Moves())
	}
}

func TestPerfectRejectsBadNode(t *testing.T) {
	d := NewPerfect()
	defer func() {
		if recover() == nil {
			t.Fatal("negative node accepted")
		}
	}()
	d.Set(bid(1, 0), -2)
}

func TestHintsPerfectAccuracy(t *testing.T) {
	d := NewPerfect()
	h := NewHints(d, rand.New(rand.NewSource(1)), 1.0)
	d.Set(bid(1, 0), 1)
	d.Set(bid(1, 0), 2)
	for i := 0; i < 100; i++ {
		n, ok := h.Locate(0, bid(1, 0))
		if !ok || n != 2 {
			t.Fatalf("accuracy=1 hint returned %d,%v", n, ok)
		}
	}
	if h.StaleRate() != 0 {
		t.Fatalf("StaleRate = %f", h.StaleRate())
	}
}

func TestHintsStaleRate(t *testing.T) {
	d := NewPerfect()
	h := NewHints(d, rand.New(rand.NewSource(1)), 0.9)
	d.Set(bid(1, 0), 1)
	d.Set(bid(1, 0), 2) // moved: prev = 1
	stale := 0
	const n = 20000
	for i := 0; i < n; i++ {
		node, ok := h.Locate(0, bid(1, 0))
		if !ok {
			t.Fatal("lookup failed")
		}
		if node == 1 {
			stale++
		} else if node != 2 {
			t.Fatalf("unexpected node %d", node)
		}
	}
	rate := float64(stale) / n
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("stale rate = %f, want ~0.10", rate)
	}
	if h.Lookups() != n {
		t.Fatalf("Lookups = %d", h.Lookups())
	}
}

func TestHintsNeverMovedIsAccurate(t *testing.T) {
	d := NewPerfect()
	h := NewHints(d, rand.New(rand.NewSource(1)), 0.5)
	d.Set(bid(1, 0), 4)
	for i := 0; i < 100; i++ {
		n, ok := h.Locate(0, bid(1, 0))
		if !ok || n != 4 {
			t.Fatal("hint for never-moved master was wrong")
		}
	}
}

func TestHintsStaleOnDropped(t *testing.T) {
	d := NewPerfect()
	h := NewHints(d, rand.New(rand.NewSource(1)), 0.0) // always stale
	d.Set(bid(1, 0), 1)
	d.Drop(bid(1, 0))
	n, ok := h.Locate(0, bid(1, 0))
	if !ok || n != 1 {
		t.Fatalf("dropped master with stale hint: %d,%v (want claimed at 1)", n, ok)
	}
}

func TestHintsRejectsBadAccuracy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accuracy 2 accepted")
		}
	}()
	NewHints(NewPerfect(), rand.New(rand.NewSource(1)), 2)
}

var _ Locator = (*Perfect)(nil)
var _ Locator = (*Hints)(nil)
