package directory

import (
	"math/rand"

	"repro/internal/block"
)

// Hints models the hint-based directory of Sarkar & Hartman over the true
// directory: each lookup is correct with probability Accuracy (they report
// ≈98% achievable with hints piggybacked on existing messages at ≈0.4%
// overhead); otherwise it returns the *previous* holder of the master — the
// characteristic failure mode of stale hints. When a hint is wrong the
// caching core pays the extra forwarding hop a real hint protocol pays.
//
// This is the simulation-side model; the live middleware in
// internal/middleware implements an actual hint protocol with piggybacked
// updates, whose measured accuracy can be compared against this model.
type Hints struct {
	truth    *Perfect
	rng      *rand.Rand
	accuracy float64

	lookups uint64
	stale   uint64
}

// NewHints wraps the true directory with per-lookup staleness.
func NewHints(truth *Perfect, rng *rand.Rand, accuracy float64) *Hints {
	if accuracy < 0 || accuracy > 1 {
		panic("directory: accuracy out of [0,1]")
	}
	return &Hints{truth: truth, rng: rng, accuracy: accuracy}
}

// Locate implements Locator. A stale lookup returns the previous holder if
// one exists (otherwise the truth — a block that never moved cannot have a
// stale hint).
func (h *Hints) Locate(asker int, id block.ID) (int, bool) {
	h.lookups++
	node, ok := h.truth.Holder(id)
	if !ok {
		// A stale hint can also claim presence for a dropped master.
		if prev, had := h.truth.Prev(id); had && h.rng.Float64() > h.accuracy {
			h.stale++
			return prev, true
		}
		return NoNode, false
	}
	if h.rng.Float64() > h.accuracy {
		if prev, had := h.truth.Prev(id); had && prev != node {
			h.stale++
			return prev, true
		}
	}
	return node, true
}

// StaleRate reports the observed fraction of stale lookups.
func (h *Hints) StaleRate() float64 {
	if h.lookups == 0 {
		return 0
	}
	return float64(h.stale) / float64(h.lookups)
}

// Lookups reports the number of Locate calls.
func (h *Hints) Lookups() uint64 { return h.lookups }
