package loadgen

import (
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/trace"
)

func startCluster(t *testing.T, k, capacity int) (*middleware.Client, map[block.FileID]int64) {
	return startClusterMut(t, k, capacity, nil, middleware.ClientConfig{})
}

// startClusterMut is startCluster with a per-node Config hook and an explicit
// client config (run-path equivalence tests flip NoRunReads and attach fault
// plans through it).
func startClusterMut(t *testing.T, k, capacity int, mut func(i int, cfg *middleware.Config), ccfg middleware.ClientConfig) (*middleware.Client, map[block.FileID]int64) {
	t.Helper()
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	sizes := map[block.FileID]int64{}
	for f := 0; f < 10; f++ {
		sizes[block.FileID(f)] = int64(1024 + 512*f)
	}
	nodes := make([]*middleware.Node, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		cfg := middleware.Config{
			ID: i, CapacityBlocks: capacity, Policy: core.PolicyMaster,
			Geometry: geom, Source: middleware.NewMemSource(geom, sizes),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := middleware.Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := middleware.DialClusterConfig(addrs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		for _, n := range nodes {
			n.Close()
		}
	})
	return client, sizes
}

func replayTrace(sizes map[block.FileID]int64, n int) *trace.Trace {
	tr := &trace.Trace{Name: "replay"}
	for f := 0; f < len(sizes); f++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
	}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, block.FileID(i%len(sizes)))
	}
	return tr
}

func TestReplayMeasures(t *testing.T) {
	client, sizes := startCluster(t, 3, 128)
	tr := replayTrace(sizes, 200)
	res, err := Replay(client, tr, Config{Concurrency: 4, WarmupFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 {
		t.Fatalf("measured %d, want 100", res.Requests)
	}
	if res.Errors != 0 || res.Throughput <= 0 || res.Mean <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.P99 < res.P50 {
		t.Fatal("percentiles not ordered")
	}
	if res.Cluster.Accesses == 0 {
		t.Fatal("cluster stats missing")
	}
	if !strings.Contains(res.String(), "req/s") {
		t.Fatalf("String() = %q", res.String())
	}
	// After warmup, the hot set fits: most measured requests should be
	// memory hits.
	if res.Cluster.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f implausibly low", res.Cluster.HitRate())
	}
}

func TestReplayMaxRequests(t *testing.T) {
	client, sizes := startCluster(t, 2, 64)
	tr := replayTrace(sizes, 1000)
	res, err := Replay(client, tr, Config{Concurrency: 2, MaxRequests: 40, WarmupFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 {
		t.Fatalf("measured %d, want 30 (40 total − 10 warmup)", res.Requests)
	}
}

func TestReplayValidation(t *testing.T) {
	client, sizes := startCluster(t, 2, 64)
	if _, err := Replay(client, &trace.Trace{Name: "empty"}, Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := replayTrace(sizes, 10)
	if _, err := Replay(client, tr, Config{WarmupFrac: 1.5}); err == nil {
		t.Fatal("bad warmup accepted")
	}
}

func TestReplayWithWrites(t *testing.T) {
	client, sizes := startCluster(t, 3, 128)
	tr := replayTrace(sizes, 300)
	res, err := Replay(client, tr, Config{
		Concurrency: 4,
		WarmupFrac:  0.2,
		WriteFrac:   0.3,
		Geometry:    block.Geometry{Size: 1024, ExtentBlocks: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("no writes happened at WriteFrac=0.3")
	}
	if res.Writes >= res.Requests {
		t.Fatalf("writes %d not a minority of %d", res.Writes, res.Requests)
	}
	st, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Invalidations == 0 {
		t.Fatalf("cluster saw no write protocol activity: %+v", st)
	}
	if _, err := Replay(client, tr, Config{WriteFrac: 1.5}); err == nil {
		t.Fatal("bad write fraction accepted")
	}
}

func TestReplaySurfacesErrors(t *testing.T) {
	client, sizes := startCluster(t, 2, 64)
	tr := replayTrace(sizes, 10)
	// Reference a file the cluster does not know.
	tr.Files = append(tr.Files, trace.File{ID: 10, Size: 1})
	tr.Requests[5] = 10
	res, err := Replay(client, tr, Config{Concurrency: 1, WarmupFrac: 0.1})
	if err == nil {
		t.Fatal("unknown file did not fail the replay")
	}
	if res.Errors == 0 {
		t.Fatal("error not counted")
	}
}
