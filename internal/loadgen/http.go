package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HTTPConfig parameterizes an HTTP replay against a gateway.
type HTTPConfig struct {
	// Connections is the number of closed-loop clients (default 64). Each
	// holds one persistent keep-alive connection at steady state, so this
	// is also the concurrent-connection count the gateway sustains.
	Connections int
	// MaxRequests truncates the trace replay (0: the whole trace).
	MaxRequests int
	// WarmupFrac is the fraction of requests excluded from measurement
	// (default 0.3).
	WarmupFrac float64
	// MaxSamples bounds the latency samples retained for percentiles
	// (default 65536).
	MaxSamples int
	// Interval is the bucket width of the per-interval time series (0: 1 s
	// default; negative: no time series).
	Interval time.Duration
	// Timeout bounds one request end to end (default 60 s).
	Timeout time.Duration
}

// HTTPResult summarizes an HTTP replay.
type HTTPResult struct {
	// Requests is the number of measured (post-warmup) requests.
	Requests int
	// Errors counts failed requests (transport errors and non-200
	// statuses); the first aborts the replay.
	Errors int
	// Bytes is the measured response body volume.
	Bytes int64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// Throughput is measured requests per wall-clock second.
	Throughput float64
	// MBps is the measured body volume in MB (2^20 bytes) per second.
	MBps float64
	// Mean/P50/P95/P99 are response-time statistics.
	Mean, P50, P95, P99 time.Duration
	// ConnsOpened is the number of TCP connections the client pool dialed:
	// at steady state it approximates the peak concurrent keep-alive
	// connections (reuse keeps it from growing past the worker count).
	ConnsOpened int64
	// Intervals is the measured window time series (nil when disabled).
	Intervals []Interval
}

// ReplayHTTP drives tr's request stream against an HTTP gateway at
// baseURL: cfg.Connections closed-loop workers issue keep-alive GETs of
// pathOf(file) in trace order, measured after warmup — the HTTP-layer
// counterpart of Replay, with the gateway (not this process) doing the
// cluster entry and hand-off.
func ReplayHTTP(baseURL string, tr *trace.Trace, pathOf func(block.FileID) string, cfg HTTPConfig) (HTTPResult, error) {
	if cfg.Connections <= 0 {
		cfg.Connections = 64
	}
	if cfg.WarmupFrac == 0 {
		cfg.WarmupFrac = 0.3
	}
	if cfg.WarmupFrac < 0 || cfg.WarmupFrac >= 1 {
		return HTTPResult{}, fmt.Errorf("loadgen: warmup fraction %v out of [0,1)", cfg.WarmupFrac)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 65536
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	total := len(tr.Requests)
	if cfg.MaxRequests > 0 && cfg.MaxRequests < total {
		total = cfg.MaxRequests
	}
	if total == 0 {
		return HTTPResult{}, fmt.Errorf("loadgen: empty trace")
	}
	warm := int(cfg.WarmupFrac * float64(total))

	var connsOpened atomic.Int64
	dialer := &net.Dialer{Timeout: 15 * time.Second, KeepAlive: 30 * time.Second}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := dialer.DialContext(ctx, network, addr)
			if err == nil {
				connsOpened.Add(1)
			}
			return c, err
		},
		// Idle-pool headroom above the worker count so a momentarily idle
		// connection is parked, not closed: the whole fleet stays warm.
		MaxIdleConns:        cfg.Connections + 64,
		MaxIdleConnsPerHost: cfg.Connections + 64,
		IdleConnTimeout:     120 * time.Second,
	}
	defer transport.CloseIdleConnections()
	httpc := &http.Client{Transport: transport, Timeout: cfg.Timeout}

	var (
		cursor    atomic.Int64
		nErrors   atomic.Int64
		bytesRead atomic.Int64
		measStart atomic.Int64
		mu        sync.Mutex
		rt        = metrics.NewResponseTimes(cfg.MaxSamples)
		samples   []isample
		wg        sync.WaitGroup
		firstErr  error
		errOnce   sync.Once
	)

	worker := func() {
		defer wg.Done()
		buf := make([]byte, 32*1024)
		for {
			idx := int(cursor.Add(1)) - 1
			if idx >= total || nErrors.Load() > 0 {
				return
			}
			f := tr.Requests[idx]
			start := time.Now()
			if idx == warm {
				measStart.Store(start.UnixNano())
			}
			nbytes, err := doGet(httpc, baseURL+pathOf(f), buf)
			if err != nil {
				nErrors.Add(1)
				errOnce.Do(func() { firstErr = fmt.Errorf("loadgen: http request %d (file %d): %w", idx, f, err) })
				return
			}
			if idx >= warm {
				mu.Lock()
				rt.Add(sim.Duration(time.Since(start)))
				if cfg.Interval > 0 {
					samples = append(samples, isample{at: start.UnixNano(), lat: time.Since(start), bytes: int(nbytes)})
				}
				mu.Unlock()
				bytesRead.Add(nbytes)
			}
		}
	}

	conc := cfg.Connections
	if conc > total {
		conc = total
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	end := time.Now()

	res := HTTPResult{
		Requests:    rt.Count(),
		Errors:      int(nErrors.Load()),
		Bytes:       bytesRead.Load(),
		ConnsOpened: connsOpened.Load(),
	}
	if firstErr != nil {
		return res, firstErr
	}
	if ms := measStart.Load(); ms > 0 {
		res.Elapsed = end.Sub(time.Unix(0, ms))
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Requests) / res.Elapsed.Seconds()
		res.MBps = float64(res.Bytes) / res.Elapsed.Seconds() / (1 << 20)
	}
	if rt.Count() > 0 {
		res.Mean = time.Duration(rt.Mean())
		res.P50 = time.Duration(rt.Percentile(0.50))
		res.P95 = time.Duration(rt.Percentile(0.95))
		res.P99 = time.Duration(rt.Percentile(0.99))
	}
	if cfg.Interval > 0 {
		res.Intervals = buildIntervals(samples, nil, nil, measStart.Load(), cfg.Interval)
	}
	return res, nil
}

// doGet issues one GET and drains the body through buf (the drain is what
// returns the connection to the keep-alive pool), returning the body size.
func doGet(c *http.Client, url string, buf []byte) (int64, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	n, err := io.CopyBuffer(io.Discard, resp.Body, buf)
	resp.Body.Close()
	if err != nil {
		return n, err
	}
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("status %s", resp.Status)
	}
	return n, nil
}

// String formats the result as a report.
func (r HTTPResult) String() string {
	return fmt.Sprintf(
		"http: requests=%d errors=%d bytes=%d elapsed=%v tput=%.0f req/s %.1f MB/s mean=%v p50=%v p95=%v p99=%v conns=%d",
		r.Requests, r.Errors, r.Bytes, r.Elapsed.Round(time.Millisecond), r.Throughput, r.MBps,
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.ConnsOpened)
}

// PathForFile is the canonical URL path of a synthetic-manifest file on a
// gateway: "/f/<id>". ccnode -http-addr and ccload -http agree on it.
func PathForFile(f block.FileID) string { return fmt.Sprintf("/f/%d", f) }
