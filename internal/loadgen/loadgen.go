// Package loadgen drives a *live* middleware cluster with the paper's
// workload model: closed-loop clients replaying a web trace, entering the
// cluster round-robin, measured after warmup. It is the real-deployment
// counterpart of internal/workload (which drives the simulator), completing
// the §6 arc from simulation to implementation.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/middleware"
	"repro/internal/sim"
	"repro/internal/trace"
)

// writeRandomBlock overwrites one random full-size block of file f with a
// deterministic single-byte pattern, returning the bytes written.
func writeRandomBlock(client *middleware.Client, tr *trace.Trace, geom block.Geometry, rng *rand.Rand, f block.FileID) (int, error) {
	size := tr.Size(f)
	nblocks := geom.Count(size)
	idx := int32(rng.Intn(int(nblocks)))
	// The final block may be short; write the exact block length.
	n := int(size - int64(idx)*int64(geom.Size))
	if n > geom.Size {
		n = geom.Size
	}
	if n <= 0 {
		return 0, nil
	}
	data := make([]byte, n)
	tag := byte(rng.Intn(256))
	for i := range data {
		data[i] = tag
	}
	if err := client.Write(f, idx, data); err != nil {
		return 0, err
	}
	return n, nil
}

// Config parameterizes a replay.
type Config struct {
	// Concurrency is the number of closed-loop clients (default 8).
	Concurrency int
	// MaxRequests truncates the trace replay (0: the whole trace).
	MaxRequests int
	// WarmupFrac is the fraction of requests excluded from measurement
	// (default 0.3).
	WarmupFrac float64
	// WriteFrac in [0,1) turns that fraction of replayed requests into
	// single-block writes (write-invalidate through the cluster), the live
	// counterpart of the simulator's write extension. Writes use
	// deterministic per-worker streams, so replays remain reproducible in
	// their op mix.
	WriteFrac float64
	// Geometry is needed to size write payloads when WriteFrac > 0 (zero
	// value: the 8 KB default).
	Geometry block.Geometry
	// MaxSamples bounds the latency samples retained for percentiles
	// (reservoir sampling; default 65536). Mean/min/max stay exact.
	MaxSamples int
	// OnBreakpoint, when non-nil, runs exactly once just before request
	// index Breakpoint is issued (the worker that draws that index calls
	// it synchronously). Chaos runs use it to crash a node mid-replay.
	OnBreakpoint func()
	// Breakpoint is the request index that triggers OnBreakpoint.
	Breakpoint int
	// Breakpoints are additional (index, hook) pairs with the same
	// contract as Breakpoint/OnBreakpoint: each hook runs exactly once,
	// synchronously, just before its request index is issued. Resize runs
	// use several — join nodes mid-replay, drain them later.
	Breakpoints []Breakpoint
	// Interval is the bucket width of the per-interval time series in
	// Result.Intervals (0: 1 s default; negative: no time series).
	Interval time.Duration
}

// Breakpoint pairs a request index with a hook to run just before that
// index is issued.
type Breakpoint struct {
	// Index is the request index that triggers Fn.
	Index int
	// Fn runs exactly once, synchronously, on the worker that draws Index.
	Fn func()
}

// Interval is one bucket of the replay's measured-window time series:
// throughput, latency percentiles, and client-side fault activity over one
// Config.Interval-wide slice of wall-clock time. A bench or chaos run keeps
// the sequence in BENCH_live.json, so a mid-run disturbance (a crashed
// node, a breaker opening) is visible at its moment instead of being
// averaged away over the whole run.
type Interval struct {
	// I is the bucket index (0 starts at the measurement window's start).
	I int `json:"i"`
	// StartMs is the bucket's offset from the measurement start, in
	// milliseconds.
	StartMs int64 `json:"start_ms"`
	// Requests/Writes/Bytes are the operations measured in this bucket
	// (bucketed by issue time).
	Requests int   `json:"requests"`
	Writes   int   `json:"writes,omitempty"`
	Bytes    int64 `json:"bytes"`
	// ReqPerSec/MBPerSec are Requests and Bytes over the bucket width.
	ReqPerSec float64 `json:"req_per_sec"`
	MBPerSec  float64 `json:"mb_per_sec"`
	// P50Micros/P99Micros are response-time percentiles over the bucket's
	// requests, in microseconds (reservoir-sampled above 4096 requests).
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
	// ClientTimeouts/ClientFailovers/ClientBreakerSkips are the deltas of
	// the client fault counters attributed to this bucket.
	ClientTimeouts     uint64 `json:"client_timeouts,omitempty"`
	ClientFailovers    uint64 `json:"client_failovers,omitempty"`
	ClientBreakerSkips uint64 `json:"client_breaker_skips,omitempty"`
	// HitRate is the cluster cache hit rate over this bucket's accesses
	// ((Δlocal+Δremote)/Δaccesses from periodic cluster-stat snapshots;
	// -1 when no snapshot landed in the bucket or no accesses occurred).
	// Resize runs read the recovery of this series after a join or drain.
	HitRate float64 `json:"hit_rate"`
	// RebalancePending/MembershipEpoch are the cluster's values at the
	// bucket's end boundary (membership runs only; zero otherwise).
	RebalancePending uint64 `json:"rebalance_pending,omitempty"`
	MembershipEpoch  uint64 `json:"epoch,omitempty"`
}

// intervalSampleCap bounds the per-bucket latency reservoir.
const intervalSampleCap = 4096

// isample is one measured operation, kept per worker and bucketed into
// Intervals after the replay.
type isample struct {
	at    int64 // issue time, unix nanos
	lat   time.Duration
	bytes int
	write bool
}

// faultSample is a timestamped cumulative client fault-counter snapshot.
type faultSample struct {
	at int64
	fs middleware.ClientFaultStats
}

// statSample is a timestamped cumulative cluster-stat snapshot (best
// effort: mid-resize a node may be unreachable and the snapshot skipped).
type statSample struct {
	at int64
	st middleware.Stats
}

// Result summarizes a replay.
type Result struct {
	// Requests is the number of measured (post-warmup) requests.
	Requests int
	// Errors counts failed reads (they abort the replay; a nonzero value
	// accompanies the returned error).
	Errors int
	// Bytes is the measured payload volume.
	Bytes int64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// Throughput is measured requests per wall-clock second.
	Throughput float64
	// MBps is the measured payload volume in MB (2^20 bytes) per
	// wall-clock second.
	MBps float64
	// Writes is the number of measured write operations (included in
	// Requests).
	Writes int
	// Mean/P50/P95/P99 are response-time statistics.
	Mean, P50, P95, P99 time.Duration
	// WriteP50/WriteP99 are response-time percentiles over the measured
	// write operations alone (zero when WriteFrac is 0). Writes follow a
	// different protocol path than reads (invalidate + write-through), so
	// their tail is reported separately — it is the number the asynchronous
	// invalidation bus exists to improve.
	WriteP50, WriteP99 time.Duration
	// Cluster is the aggregate middleware statistics at the end of the
	// replay (cumulative since cluster start). When a node crashed during
	// the replay (chaos runs) its counters are excluded — they died with
	// it.
	Cluster middleware.Stats
	// Fault is the client-side fault handling during the replay: requests
	// that timed out, failed over to another entry node, or steered
	// around an open breaker.
	Fault middleware.ClientFaultStats
	// Intervals is the measured window sliced into Config.Interval-wide
	// buckets (nil when Config.Interval is negative or nothing was
	// measured).
	Intervals []Interval
}

// Replay runs the trace against the cluster and reports measurements.
func Replay(client *middleware.Client, tr *trace.Trace, cfg Config) (Result, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.WarmupFrac == 0 {
		cfg.WarmupFrac = 0.3
	}
	if cfg.WarmupFrac < 0 || cfg.WarmupFrac >= 1 {
		return Result{}, fmt.Errorf("loadgen: warmup fraction %v out of [0,1)", cfg.WarmupFrac)
	}
	if cfg.WriteFrac < 0 || cfg.WriteFrac >= 1 {
		return Result{}, fmt.Errorf("loadgen: write fraction %v out of [0,1)", cfg.WriteFrac)
	}
	if cfg.Geometry == (block.Geometry{}) {
		cfg.Geometry = block.DefaultGeometry
	}
	total := len(tr.Requests)
	if cfg.MaxRequests > 0 && cfg.MaxRequests < total {
		total = cfg.MaxRequests
	}
	if total == 0 {
		return Result{}, fmt.Errorf("loadgen: empty trace")
	}
	warm := int(cfg.WarmupFrac * float64(total))
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 65536
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}

	var (
		cursor    atomic.Int64
		nErrors   atomic.Int64
		bytesRead atomic.Int64
		nWrites   atomic.Int64
		measStart atomic.Int64 // unix nanos of first measured issue
		mu        sync.Mutex
		rt        = metrics.NewResponseTimes(cfg.MaxSamples)
		wrt       = metrics.NewResponseTimes(cfg.MaxSamples) // writes only
		wg        sync.WaitGroup
		firstErr  error
		errOnce   sync.Once
		samples   []isample // every measured op, for interval bucketing
	)

	// The fault sampler snapshots the cumulative client fault counters on a
	// fast cadence, so the interval series can attribute counter deltas to
	// the bucket they occurred in.
	var (
		faultSamples []faultSample
		statSamples  []statSample
		samplerStop  chan struct{}
		samplerDone  chan struct{}
	)
	if cfg.Interval > 0 {
		samplerStop, samplerDone = make(chan struct{}), make(chan struct{})
		tick := cfg.Interval / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		go func() {
			defer close(samplerDone)
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case now := <-t.C:
					fs := client.FaultStats()
					st, serr := client.ClusterStats()
					mu.Lock()
					faultSamples = append(faultSamples, faultSample{at: now.UnixNano(), fs: fs})
					if serr == nil {
						statSamples = append(statSamples, statSample{at: now.UnixNano(), st: st})
					}
					mu.Unlock()
				}
			}
		}()
	}

	worker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		local := make([]isample, 0, 1024)
		for {
			idx := int(cursor.Add(1)) - 1
			if idx >= total || nErrors.Load() > 0 {
				break
			}
			f := tr.Requests[idx]
			if cfg.OnBreakpoint != nil && idx == cfg.Breakpoint {
				cfg.OnBreakpoint() // the cursor hands out each index once
			}
			for _, bp := range cfg.Breakpoints {
				if bp.Fn != nil && idx == bp.Index {
					bp.Fn()
				}
			}
			start := time.Now()
			if idx == warm {
				measStart.Store(start.UnixNano())
			}
			var nbytes int
			var err error
			isWrite := cfg.WriteFrac > 0 && rng.Float64() < cfg.WriteFrac
			if isWrite {
				nbytes, err = writeRandomBlock(client, tr, cfg.Geometry, rng, f)
			} else {
				var data []byte
				data, err = client.Read(f)
				nbytes = len(data)
			}
			if err != nil {
				nErrors.Add(1)
				errOnce.Do(func() { firstErr = fmt.Errorf("loadgen: request %d (file %d): %w", idx, f, err) })
				break
			}
			if idx >= warm {
				local = append(local, isample{at: start.UnixNano(), lat: time.Since(start), bytes: nbytes, write: isWrite})
				bytesRead.Add(int64(nbytes))
				if isWrite {
					nWrites.Add(1)
				}
			}
		}
		mu.Lock()
		for _, s := range local {
			rt.Add(sim.Duration(s.lat))
			if s.write {
				wrt.Add(sim.Duration(s.lat))
			}
		}
		if cfg.Interval > 0 {
			samples = append(samples, local...)
		}
		mu.Unlock()
	}

	conc := cfg.Concurrency
	if conc > total {
		conc = total
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go worker(int64(w + 1))
	}
	wg.Wait()
	end := time.Now()
	if samplerStop != nil {
		close(samplerStop)
		<-samplerDone
		// One final snapshot so the last bucket's delta has an end boundary.
		faultSamples = append(faultSamples, faultSample{at: end.UnixNano(), fs: client.FaultStats()})
		if st, serr := client.ClusterStats(); serr == nil {
			statSamples = append(statSamples, statSample{at: end.UnixNano(), st: st})
		}
	}

	res := Result{
		Requests: rt.Count(),
		Errors:   int(nErrors.Load()),
		Bytes:    bytesRead.Load(),
		Writes:   int(nWrites.Load()),
	}
	if firstErr != nil {
		return res, firstErr
	}
	if ms := measStart.Load(); ms > 0 {
		res.Elapsed = end.Sub(time.Unix(0, ms))
	} else {
		// Everything was warmup-free (warm == 0 never stored): measure from
		// the first request by approximation.
		res.Elapsed = end.Sub(end) // zero; filled below if samples exist
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Requests) / res.Elapsed.Seconds()
		res.MBps = float64(res.Bytes) / res.Elapsed.Seconds() / (1 << 20)
	}
	if rt.Count() > 0 {
		res.Mean = time.Duration(rt.Mean())
		res.P50 = time.Duration(rt.Percentile(0.50))
		res.P95 = time.Duration(rt.Percentile(0.95))
		res.P99 = time.Duration(rt.Percentile(0.99))
	}
	if wrt.Count() > 0 {
		res.WriteP50 = time.Duration(wrt.Percentile(0.50))
		res.WriteP99 = time.Duration(wrt.Percentile(0.99))
	}
	if stats, err := client.ClusterStats(); err == nil {
		res.Cluster = stats
	}
	res.Fault = client.FaultStats()
	if cfg.Interval > 0 {
		res.Intervals = buildIntervals(samples, faultSamples, statSamples, measStart.Load(), cfg.Interval)
	}
	return res, nil
}

// buildIntervals buckets the measured samples into width-wide intervals
// starting at measStart and attributes fault-counter deltas to each bucket
// from the sampler's timestamped snapshots (appended in time order).
func buildIntervals(samples []isample, faults []faultSample, stats []statSample, measStart int64, width time.Duration) []Interval {
	if measStart <= 0 || len(samples) == 0 {
		return nil
	}
	w := int64(width)
	nb := 0
	for _, s := range samples {
		if s.at < measStart {
			continue
		}
		if i := int((s.at - measStart) / w); i >= nb {
			nb = i + 1
		}
	}
	if nb == 0 {
		return nil
	}
	out := make([]Interval, nb)
	rts := make([]*metrics.ResponseTimes, nb)
	for i := range out {
		out[i].I = i
		out[i].StartMs = int64(i) * w / int64(time.Millisecond)
		rts[i] = metrics.NewResponseTimes(intervalSampleCap)
	}
	for _, s := range samples {
		if s.at < measStart {
			continue
		}
		i := int((s.at - measStart) / w)
		out[i].Requests++
		out[i].Bytes += int64(s.bytes)
		if s.write {
			out[i].Writes++
		}
		rts[i].Add(sim.Duration(s.lat))
	}
	secs := width.Seconds()
	for i := range out {
		out[i].ReqPerSec = float64(out[i].Requests) / secs
		out[i].MBPerSec = float64(out[i].Bytes) / secs / (1 << 20)
		if rts[i].Count() > 0 {
			out[i].P50Micros = int64(rts[i].Percentile(0.50)) / int64(time.Microsecond)
			out[i].P99Micros = int64(rts[i].Percentile(0.99)) / int64(time.Microsecond)
		}
	}
	// Fault deltas: the cumulative snapshot at each bucket's end boundary
	// (the last sample at or before it), differenced against the previous
	// boundary. Buckets between snapshots get zero, the snapshot's bucket
	// gets the whole delta — accurate to the sampler cadence (width/4).
	var prev middleware.ClientFaultStats
	j := 0
	for j < len(faults) && faults[j].at <= measStart {
		prev = faults[j].fs
		j++
	}
	for i := range out {
		boundary := measStart + int64(i+1)*w
		cur := prev
		for j < len(faults) && faults[j].at <= boundary {
			cur = faults[j].fs
			j++
		}
		out[i].ClientTimeouts = cur.Timeouts - prev.Timeouts
		out[i].ClientFailovers = cur.Failovers - prev.Failovers
		out[i].ClientBreakerSkips = cur.BreakerSkips - prev.BreakerSkips
		prev = cur
	}
	// Per-bucket hit rate from the cluster-stat snapshots, same boundary
	// scheme. Crashed nodes make the cumulative counters dip (their share
	// dies with them), so deltas are clamped at zero; buckets with no
	// snapshot or no accesses report -1.
	var prevSt middleware.Stats
	havePrev := false
	j = 0
	for j < len(stats) && stats[j].at <= measStart {
		prevSt, havePrev = stats[j].st, true
		j++
	}
	for i := range out {
		out[i].HitRate = -1
		boundary := measStart + int64(i+1)*w
		cur, have := prevSt, false
		for j < len(stats) && stats[j].at <= boundary {
			cur, have = stats[j].st, true
			j++
		}
		if !have {
			continue
		}
		out[i].RebalancePending = cur.RebalancePending
		out[i].MembershipEpoch = cur.MembershipEpoch
		if havePrev && cur.Accesses > prevSt.Accesses {
			da := cur.Accesses - prevSt.Accesses
			var dh uint64
			if hits, ph := cur.LocalHits+cur.RemoteHits, prevSt.LocalHits+prevSt.RemoteHits; hits > ph {
				dh = hits - ph
			}
			out[i].HitRate = float64(dh) / float64(da)
		}
		prevSt, havePrev = cur, true
	}
	return out
}

// String formats the result as a report.
func (r Result) String() string {
	s := fmt.Sprintf(
		"requests=%d (writes=%d) errors=%d bytes=%d elapsed=%v tput=%.0f req/s %.1f MB/s mean=%v p50=%v p95=%v p99=%v | cluster: hit=%.1f%% local=%d remote=%d disk=%d forwards=%d",
		r.Requests, r.Writes, r.Errors, r.Bytes, r.Elapsed.Round(time.Millisecond), r.Throughput, r.MBps,
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Cluster.HitRate()*100, r.Cluster.LocalHits, r.Cluster.RemoteHits,
		r.Cluster.DiskReads, r.Cluster.Forwards)
	if r.Writes > 0 {
		s += fmt.Sprintf(" | writes: p50=%v p99=%v",
			r.WriteP50.Round(time.Microsecond), r.WriteP99.Round(time.Microsecond))
	}
	c := r.Cluster
	if c.RPCTimeouts+c.RPCRetries+c.HomeFallbacks+c.BreakerOpens+c.InvalidateSkips+
		r.Fault.Timeouts+r.Fault.Failovers+r.Fault.BreakerSkips > 0 {
		s += fmt.Sprintf(" | faults: timeouts=%d retries=%d fallbacks=%d breaker_opens=%d invalidate_skips=%d client_timeouts=%d client_failovers=%d",
			c.RPCTimeouts, c.RPCRetries, c.HomeFallbacks, c.BreakerOpens,
			c.InvalidateSkips, r.Fault.Timeouts, r.Fault.Failovers)
	}
	return s
}
