package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/trace"
)

func httpTestTrace() *trace.Trace {
	tr := &trace.Trace{Name: "http-test"}
	for f := block.FileID(0); f < 4; f++ {
		tr.Files = append(tr.Files, trace.File{ID: f, Size: int64(100 * (f + 1))})
	}
	for i := 0; i < 200; i++ {
		tr.Requests = append(tr.Requests, block.FileID(i%4))
	}
	return tr
}

func TestReplayHTTP(t *testing.T) {
	tr := httpTestTrace()
	var served [4]int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f int
		if _, err := fmt.Sscanf(r.URL.Path, "/f/%d", &f); err != nil || f < 0 || f > 3 {
			http.NotFound(w, r)
			return
		}
		served[f]++ // racy count is fine for a smoke assertion via total below
		w.Write([]byte(strings.Repeat("x", int(tr.Files[f].Size)))) //nolint:errcheck
	}))
	defer srv.Close()

	res, err := ReplayHTTP(srv.URL, tr, PathForFile, HTTPConfig{
		Connections: 4,
		WarmupFrac:  0.25,
		Interval:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Requests != 150 { // 200 total - 50 warmup
		t.Fatalf("measured requests = %d, want 150", res.Requests)
	}
	if res.Bytes == 0 || res.Throughput <= 0 || res.P99 <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Keep-alive reuse: 4 closed-loop workers need at most a handful of
	// connections, never one per request.
	if res.ConnsOpened == 0 || res.ConnsOpened > 16 {
		t.Fatalf("conns opened = %d, want a few keep-alive connections", res.ConnsOpened)
	}
}

func TestReplayHTTPErrorStatus(t *testing.T) {
	tr := httpTestTrace()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()
	res, err := ReplayHTTP(srv.URL, tr, PathForFile, HTTPConfig{Connections: 2, Interval: -1})
	if err == nil {
		t.Fatal("expected error for 502 responses")
	}
	if res.Errors == 0 {
		t.Fatal("error count not recorded")
	}
}
