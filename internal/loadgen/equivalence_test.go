package loadgen

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/middleware"
)

// TestReplayOutputEquivalence pins the cluster's observable behaviour for a
// deterministic replay: a serial client, ample capacity, and the central
// directory make every counter exactly predictable from the §3 protocol, so
// any change to the wire path (pooling, buffer reuse, worker dispatch) that
// altered what the cluster *does* — rather than how fast — fails here. File
// bytes are checked against the synthetic content generator independently.
func TestReplayOutputEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	client, sizes := startCluster(t, k, 4096)
	tr := replayTrace(sizes, 120)

	res, err := Replay(client, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	// Replay the §3 protocol against an abstract model: requests round-robin
	// over the nodes (one serial worker), each block is a local hit where a
	// copy exists, a remote hit where any master exists, and a disk read
	// (installing the reader as master) otherwise. With ample capacity there
	// are no evictions, hence no forwards, races, or invalidations.
	copies := map[block.ID]map[int]bool{}
	master := map[block.ID]int{}
	var accesses, local, remote, disk uint64
	for req, f := range tr.Requests {
		e := req % k
		nb := geom.Count(sizes[f])
		for i := int32(0); i < nb; i++ {
			id := block.ID{File: f, Idx: i}
			accesses++
			if copies[id][e] {
				local++
				continue
			}
			if copies[id] == nil {
				copies[id] = map[int]bool{}
			}
			if _, ok := master[id]; ok {
				remote++
			} else {
				disk++
				master[id] = e
			}
			copies[id][e] = true
		}
	}
	got := res.Cluster
	if got.Accesses != accesses || got.LocalHits != local ||
		got.RemoteHits != remote || got.DiskReads != disk {
		t.Errorf("counters diverged from protocol model:\n got accesses=%d local=%d remote=%d disk=%d\nwant accesses=%d local=%d remote=%d disk=%d",
			got.Accesses, got.LocalHits, got.RemoteHits, got.DiskReads,
			accesses, local, remote, disk)
	}
	if got.RaceMisses != 0 || got.Forwards != 0 || got.Invalidations != 0 {
		t.Errorf("unexpected races=%d forwards=%d invalidations=%d (ample capacity: want 0)",
			got.RaceMisses, got.Forwards, got.Invalidations)
	}

	// Byte equivalence: every file read through the cluster must match the
	// synthetic content, block by block.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		data, err := client.Read(id)
		if err != nil {
			t.Fatalf("read file %d: %v", f, err)
		}
		if want := syntheticFile(geom, id, sizes[id]); !bytes.Equal(data, want) {
			t.Fatalf("file %d content diverged (%d bytes)", f, len(data))
		}
	}

	// Write-invalidate equivalence: one write costs exactly one invalidation
	// per cluster node and the new bytes are visible from every entry node.
	patch := bytes.Repeat([]byte{0xAB}, int(sizes[0]))
	if err := client.Write(0, 0, patch); err != nil {
		t.Fatal(err)
	}
	after, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if d := after.Invalidations - got.Invalidations; d != k {
		t.Errorf("invalidations per write = %d, want %d (one per node)", d, k)
	}
	if d := after.Writes - got.Writes; d != 1 {
		t.Errorf("writes = %d, want 1", d)
	}
	for e := 0; e < k; e++ {
		data, err := client.ReadVia(e, 0)
		if err != nil {
			t.Fatalf("read via %d after write: %v", e, err)
		}
		if !bytes.Equal(data, patch) {
			t.Fatalf("node %d served stale bytes after write-invalidate", e)
		}
	}
}

// syntheticFile composes the expected content of a whole synthetic file.
func syntheticFile(geom block.Geometry, f block.FileID, size int64) []byte {
	out := make([]byte, 0, size)
	for i := int32(0); i < geom.Count(size); i++ {
		n := int(size - int64(i)*int64(geom.Size))
		if n > geom.Size {
			n = geom.Size
		}
		out = append(out, middleware.SyntheticBlock(f, i, n)...)
	}
	return out
}
