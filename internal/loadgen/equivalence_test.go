package loadgen

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/middleware"
)

// TestReplayOutputEquivalence pins the cluster's observable behaviour for a
// deterministic replay: a serial client, ample capacity, and the central
// directory make every counter exactly predictable from the §3 protocol, so
// any change to the wire path (pooling, buffer reuse, worker dispatch) that
// altered what the cluster *does* — rather than how fast — fails here. File
// bytes are checked against the synthetic content generator independently.
func TestReplayOutputEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	// SyncInvalidate keeps the write section exactly predictable: the
	// fan-out completes before WriteBlock returns, so the per-write
	// invalidation delta is deterministic. (The async-bus counterpart is
	// pinned by TestSyncInvalidateReplayEquivalence.)
	client, sizes := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true
	}, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	res, err := Replay(client, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	// Replay the §3 protocol against an abstract model: requests round-robin
	// over the nodes (one serial worker), each block is a local hit where a
	// copy exists, a remote hit where any master exists, and a disk read
	// (installing the reader as master) otherwise. With ample capacity there
	// are no evictions, hence no forwards, races, or invalidations.
	copies := map[block.ID]map[int]bool{}
	master := map[block.ID]int{}
	var accesses, local, remote, disk uint64
	for req, f := range tr.Requests {
		e := req % k
		nb := geom.Count(sizes[f])
		for i := int32(0); i < nb; i++ {
			id := block.ID{File: f, Idx: i}
			accesses++
			if copies[id][e] {
				local++
				continue
			}
			if copies[id] == nil {
				copies[id] = map[int]bool{}
			}
			if _, ok := master[id]; ok {
				remote++
			} else {
				disk++
				master[id] = e
			}
			copies[id][e] = true
		}
	}
	got := res.Cluster
	if got.Accesses != accesses || got.LocalHits != local ||
		got.RemoteHits != remote || got.DiskReads != disk {
		t.Errorf("counters diverged from protocol model:\n got accesses=%d local=%d remote=%d disk=%d\nwant accesses=%d local=%d remote=%d disk=%d",
			got.Accesses, got.LocalHits, got.RemoteHits, got.DiskReads,
			accesses, local, remote, disk)
	}
	if got.RaceMisses != 0 || got.Forwards != 0 || got.Invalidations != 0 {
		t.Errorf("unexpected races=%d forwards=%d invalidations=%d (ample capacity: want 0)",
			got.RaceMisses, got.Forwards, got.Invalidations)
	}

	// Byte equivalence: every file read through the cluster must match the
	// synthetic content, block by block.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		data, err := client.Read(id)
		if err != nil {
			t.Fatalf("read file %d: %v", f, err)
		}
		if want := syntheticFile(geom, id, sizes[id]); !bytes.Equal(data, want) {
			t.Fatalf("file %d content diverged (%d bytes)", f, len(data))
		}
	}

	// Write-invalidate equivalence: one write costs exactly one invalidation
	// per cluster node and the new bytes are visible from every entry node.
	patch := bytes.Repeat([]byte{0xAB}, int(sizes[0]))
	if err := client.Write(0, 0, patch); err != nil {
		t.Fatal(err)
	}
	after, err := client.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if d := after.Invalidations - got.Invalidations; d != k {
		t.Errorf("invalidations per write = %d, want %d (one per node)", d, k)
	}
	if d := after.Writes - got.Writes; d != 1 {
		t.Errorf("writes = %d, want 1", d)
	}
	for e := 0; e < k; e++ {
		data, err := client.ReadVia(e, 0)
		if err != nil {
			t.Fatalf("read via %d after write: %v", e, err)
		}
		if !bytes.Equal(data, patch) {
			t.Fatalf("node %d served stale bytes after write-invalidate", e)
		}
	}
}

// TestShardedStoreReplayEquivalence pins the shard-count contract of the
// lock-striped store: a cluster whose stores run 8 lock shards and one whose
// stores run the single-lock configuration (StoreShards = 1, the historical
// store) replay the same deterministic trace with identical §3 counters and
// identical bytes. Sharding partitions the *lock*, not the protocol: with
// capacity ample enough that no shard ever evicts, the partitioned LRU and
// the global LRU are observably the same machine. (Under eviction pressure
// the partition approximates the global order — that regime is covered by
// the faulted replays and the shard unit tests, not by exact equivalence.)
func TestShardedStoreReplayEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	shardedClient, sizes := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.StoreShards = 8
	}, middleware.ClientConfig{})
	singleClient, _ := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.StoreShards = 1
	}, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	resSharded, err := Replay(shardedClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	resSingle, err := Replay(singleClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s, g := resSharded.Cluster, resSingle.Cluster
	if s.Accesses != g.Accesses || s.LocalHits != g.LocalHits ||
		s.RemoteHits != g.RemoteHits || s.DiskReads != g.DiskReads {
		t.Errorf("sharded store diverged from single-lock store:\nsharded: accesses=%d local=%d remote=%d disk=%d\n single: accesses=%d local=%d remote=%d disk=%d",
			s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads,
			g.Accesses, g.LocalHits, g.RemoteHits, g.DiskReads)
	}
	if s.RaceMisses != g.RaceMisses || s.Forwards != g.Forwards || s.Invalidations != g.Invalidations {
		t.Errorf("secondary counters diverged: sharded races=%d forwards=%d inval=%d, single races=%d forwards=%d inval=%d",
			s.RaceMisses, s.Forwards, s.Invalidations, g.RaceMisses, g.Forwards, g.Invalidations)
	}
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		want := syntheticFile(geom, id, sizes[id])
		for name, cl := range map[string]*middleware.Client{"sharded": shardedClient, "single": singleClient} {
			got, err := cl.Read(id)
			if err != nil {
				t.Fatalf("%s read file %d: %v", name, f, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s cluster corrupted file %d (%d bytes)", name, f, len(got))
			}
		}
	}
}

// TestRunPathReplayEquivalence replays the same deterministic trace against
// two clusters that differ only in the read planner — run-granular fetches vs
// the per-block path — and requires identical observable behaviour: the §3
// counters (accesses, local hits, remote hits, disk reads) and the returned
// bytes must match exactly. The run path is a transport optimization; any
// divergence here means it changed what the protocol does, not just how many
// round trips it takes.
func TestRunPathReplayEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	runClient, sizes := startClusterMut(t, k, 4096, nil, middleware.ClientConfig{})
	pbClient, _ := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.NoRunReads = true
	}, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	resRun, err := Replay(runClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	resPB, err := Replay(pbClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	r, p := resRun.Cluster, resPB.Cluster
	if r.Accesses != p.Accesses || r.LocalHits != p.LocalHits ||
		r.RemoteHits != p.RemoteHits || r.DiskReads != p.DiskReads {
		t.Errorf("run path diverged from per-block path:\n run: accesses=%d local=%d remote=%d disk=%d\n  pb: accesses=%d local=%d remote=%d disk=%d",
			r.Accesses, r.LocalHits, r.RemoteHits, r.DiskReads,
			p.Accesses, p.LocalHits, p.RemoteHits, p.DiskReads)
	}
	if r.RaceMisses != p.RaceMisses || r.Forwards != p.Forwards || r.Invalidations != p.Invalidations {
		t.Errorf("secondary counters diverged: run races=%d forwards=%d inval=%d, pb races=%d forwards=%d inval=%d",
			r.RaceMisses, r.Forwards, r.Invalidations, p.RaceMisses, p.Forwards, p.Invalidations)
	}
	if r.RunsIssued == 0 {
		t.Error("run cluster issued no run fetches — fast path never engaged")
	}
	if r.RunsDegraded != 0 {
		t.Errorf("runs degraded on a healthy cluster: %d", r.RunsDegraded)
	}
	if p.RunsIssued != 0 {
		t.Errorf("NoRunReads cluster issued %d run fetches", p.RunsIssued)
	}

	// Byte equivalence against the synthetic generator, through both planners.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		want := syntheticFile(geom, id, sizes[id])
		got, err := runClient.Read(id)
		if err != nil {
			t.Fatalf("run-path read file %d: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run path corrupted file %d (%d bytes)", f, len(got))
		}
		got, err = pbClient.Read(id)
		if err != nil {
			t.Fatalf("per-block read file %d: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("per-block path corrupted file %d (%d bytes)", f, len(got))
		}
	}
}

// TestAdaptiveOffReplayEquivalence pins the disabled-mode guarantee of the
// adaptive replication layer: with the hotness tracker armed but the
// threshold unreachable and admission filtering off, the cluster must be
// observably identical — every §3 counter and every byte — to one that never
// constructed the machinery at all. This is what lets the replication path
// ship as a strict superset of the single-master protocol: nothing it adds
// can leak into the read path until a score actually crosses the threshold.
func TestAdaptiveOffReplayEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	plainClient, sizes := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true // deterministic per-write invalidation count
	}, middleware.ClientConfig{})
	inertClient, _ := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true
		cfg.ReplicateThreshold = 1e18 // armed, never crossed
		cfg.ReplicaFanout = 2
		cfg.AdmissionFilter = false
	}, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	resPlain, err := Replay(plainClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	resInert, err := Replay(inertClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	a, b := resPlain.Cluster, resInert.Cluster
	if a.Accesses != b.Accesses || a.LocalHits != b.LocalHits ||
		a.RemoteHits != b.RemoteHits || a.DiskReads != b.DiskReads {
		t.Errorf("inert adaptive cluster diverged from plain PolicyMaster:\nplain: accesses=%d local=%d remote=%d disk=%d\ninert: accesses=%d local=%d remote=%d disk=%d",
			a.Accesses, a.LocalHits, a.RemoteHits, a.DiskReads,
			b.Accesses, b.LocalHits, b.RemoteHits, b.DiskReads)
	}
	if a.RaceMisses != b.RaceMisses || a.Forwards != b.Forwards || a.Invalidations != b.Invalidations {
		t.Errorf("secondary counters diverged: plain races=%d forwards=%d inval=%d, inert races=%d forwards=%d inval=%d",
			a.RaceMisses, a.Forwards, a.Invalidations, b.RaceMisses, b.Forwards, b.Invalidations)
	}
	// The machinery must have stayed fully inert: no pushes, no replica
	// serves, no admission rejects, no replicas resident anywhere.
	if b.ReplicasPushed != 0 || b.ReplicaHits != 0 || b.AdmissionRejects != 0 || b.StoreReplicas != 0 {
		t.Errorf("adaptive machinery engaged below threshold: pushed=%d hits=%d rejects=%d resident=%d",
			b.ReplicasPushed, b.ReplicaHits, b.AdmissionRejects, b.StoreReplicas)
	}

	// Byte equivalence through both clusters against the synthetic generator.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		want := syntheticFile(geom, id, sizes[id])
		got, err := plainClient.Read(id)
		if err != nil {
			t.Fatalf("plain read file %d: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("plain cluster corrupted file %d (%d bytes)", f, len(got))
		}
		got, err = inertClient.Read(id)
		if err != nil {
			t.Fatalf("inert read file %d: %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("inert adaptive cluster corrupted file %d (%d bytes)", f, len(got))
		}
	}

	// Writes through the inert cluster keep the same per-write invalidation
	// fan-out (one per node) and must not wake the replication path.
	patch := bytes.Repeat([]byte{0xCD}, int(sizes[0]))
	if err := inertClient.Write(0, 0, patch); err != nil {
		t.Fatal(err)
	}
	after, err := inertClient.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if d := after.Invalidations - b.Invalidations; d != k {
		t.Errorf("invalidations per write = %d, want %d", d, k)
	}
	if after.ReplicasPushed != 0 {
		t.Errorf("write re-push fired below threshold: %d pushes", after.ReplicasPushed)
	}
}

// TestSyncInvalidateReplayEquivalence pins the equivalence contract of the
// asynchronous invalidation bus: a cluster running the bus must be
// observably identical on the read path to one running the legacy blocking
// fan-out (Config.SyncInvalidate), and on the write path it must converge
// to the same invalidation totals and the same bytes — the bus changes
// *when* peers learn of a write, never *what* the cluster does. The same
// pair is then replayed under a seeded fault plan: both modes must finish
// with zero errors, keep the §3 counter identity, and serve uncorrupted
// bytes.
func TestSyncInvalidateReplayEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	syncClient, sizes := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true
	}, middleware.ClientConfig{})
	busClient, _ := startClusterMut(t, k, 4096, nil, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	resSync, err := Replay(syncClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	resBus, err := Replay(busClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s, b := resSync.Cluster, resBus.Cluster
	if s.Accesses != b.Accesses || s.LocalHits != b.LocalHits ||
		s.RemoteHits != b.RemoteHits || s.DiskReads != b.DiskReads {
		t.Errorf("bus cluster diverged from sync fan-out on the read path:\nsync: accesses=%d local=%d remote=%d disk=%d\n bus: accesses=%d local=%d remote=%d disk=%d",
			s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads,
			b.Accesses, b.LocalHits, b.RemoteHits, b.DiskReads)
	}
	if s.RaceMisses != b.RaceMisses || s.Forwards != b.Forwards || s.Invalidations != b.Invalidations {
		t.Errorf("secondary counters diverged: sync races=%d forwards=%d inval=%d, bus races=%d forwards=%d inval=%d",
			s.RaceMisses, s.Forwards, s.Invalidations, b.RaceMisses, b.Forwards, b.Invalidations)
	}

	// One write through each cluster. The sync fan-out lands all k
	// invalidations before WriteBlock returns; the bus converges to the
	// same total within the staleness bound.
	patch := bytes.Repeat([]byte{0x5A}, int(sizes[0]))
	if err := syncClient.Write(0, 0, patch); err != nil {
		t.Fatal(err)
	}
	afterSync, err := syncClient.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if d := afterSync.Invalidations - s.Invalidations; d != k {
		t.Errorf("sync invalidations per write = %d, want %d", d, k)
	}
	if err := busClient.Write(0, 0, patch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		afterBus, err := busClient.ClusterStats()
		if err != nil {
			t.Fatal(err)
		}
		if afterBus.Invalidations-b.Invalidations == k && afterBus.InvalBacklog == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bus never converged: %d invalidations (want +%d), backlog %d",
				afterBus.Invalidations-b.Invalidations, k, afterBus.InvalBacklog)
		}
		time.Sleep(time.Millisecond)
	}
	// Past the staleness bound no node serves stale bytes, in either mode.
	for e := 0; e < k; e++ {
		for _, cl := range []*middleware.Client{syncClient, busClient} {
			data, err := cl.ReadVia(e, 0)
			if err != nil {
				t.Fatalf("read via %d after write: %v", e, err)
			}
			if !bytes.Equal(data, patch) {
				t.Fatalf("node %d served stale bytes after write", e)
			}
		}
	}
	if afterBus, _ := busClient.ClusterStats(); afterBus.InvalBatched == 0 {
		t.Error("bus cluster delivered no batched invalidations — the bus never engaged")
	}

	// Same pair under a seeded fault plan: the invariants (no errors, §3
	// counter identity, uncorrupted bytes) hold in both modes.
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"bus", false}} {
		t.Run(mode.name+"_faulted", func(t *testing.T) {
			plan := &middleware.FaultPlan{
				Seed: 7, DelayProb: 0.05, Delay: time.Millisecond, DropProb: 0.05,
			}
			client, sizes := startClusterMut(t, k, 64, func(i int, cfg *middleware.Config) {
				cfg.SyncInvalidate = mode.sync
				cfg.Fault = plan
				cfg.RPCTimeout = 250 * time.Millisecond
				cfg.Retries = 3
				cfg.RetryBackoff = time.Millisecond
			}, middleware.ClientConfig{RPCTimeout: 1500 * time.Millisecond, Retries: 4})
			res, err := Replay(client, replayTrace(sizes, 150), Config{Concurrency: 2, WarmupFrac: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("replay surfaced %d errors", res.Errors)
			}
			st := res.Cluster
			if sum := st.LocalHits + st.RemoteHits + st.DiskReads; sum > st.Accesses {
				t.Errorf("counter identity broken: local=%d + remote=%d + disk=%d > accesses=%d",
					st.LocalHits, st.RemoteHits, st.DiskReads, st.Accesses)
			}
			for f := 0; f < len(sizes); f++ {
				id := block.FileID(f)
				data, err := client.Read(id)
				if err != nil {
					t.Fatalf("read file %d: %v", f, err)
				}
				if want := syntheticFile(geom, id, sizes[id]); !bytes.Equal(data, want) {
					t.Fatalf("file %d corrupted under faults (%d bytes)", f, len(data))
				}
			}
		})
	}
}

// TestRunPathReplayUnderFaults replays through a seeded fault plan with cache
// pressure, so run fetches are issued constantly and some of them are dropped
// or truncated mid-flight: the partial-run fallback must repair every one of
// them per-block. The replay must finish with zero errors, the §3 counters
// must stay internally consistent (every access resolves to exactly one of
// local/remote/disk), and the bytes must still match the synthetic content.
func TestRunPathReplayUnderFaults(t *testing.T) {
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	plan := &middleware.FaultPlan{
		Seed: 42, DelayProb: 0.05, Delay: time.Millisecond,
		DropProb: 0.05, CrashProb: 0.01,
	}
	client, sizes := startClusterMut(t, 4, 8, func(i int, cfg *middleware.Config) {
		cfg.Fault = plan
		cfg.RPCTimeout = 250 * time.Millisecond
		cfg.Retries = 3
		cfg.RetryBackoff = time.Millisecond
		cfg.BreakerThreshold = 12
		cfg.BreakerCooldown = 100 * time.Millisecond
	}, middleware.ClientConfig{RPCTimeout: 1500 * time.Millisecond, Retries: 4})
	tr := replayTrace(sizes, 200)

	res, err := Replay(client, tr, Config{Concurrency: 2, WarmupFrac: 0.25})
	if err != nil {
		t.Fatalf("replay under faults: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("replay surfaced %d errors", res.Errors)
	}
	st := res.Cluster
	// Counter identity under faults: every access resolves to at most one of
	// local/remote/disk. An access can go unresolved only when a server-side
	// read aborts mid-file (the client then times out or fails over and
	// retries the whole read), so the slack is bounded by the client's
	// observed fault activity.
	sum := st.LocalHits + st.RemoteHits + st.DiskReads
	if sum > st.Accesses {
		t.Errorf("counter identity broken: local=%d + remote=%d + disk=%d > accesses=%d",
			st.LocalHits, st.RemoteHits, st.DiskReads, st.Accesses)
	}
	if slack := st.Accesses - sum; slack > res.Fault.Timeouts+res.Fault.Failovers {
		t.Errorf("unresolved accesses %d exceed client fault activity (timeouts=%d failovers=%d)",
			slack, res.Fault.Timeouts, res.Fault.Failovers)
	}
	if st.RunsIssued == 0 {
		t.Error("no run fetches under cache pressure — fast path never engaged")
	}
	if st.RunsDegraded == 0 {
		t.Error("no degraded runs under a 5%% drop plan — partial-run fallback never exercised")
	}
	t.Logf("faulted replay: runs issued=%d degraded=%d, accesses=%d local=%d remote=%d disk=%d",
		st.RunsIssued, st.RunsDegraded, st.Accesses, st.LocalHits, st.RemoteHits, st.DiskReads)

	// The storm must not have corrupted anything: every file read after the
	// replay matches the synthetic content byte for byte.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		data, err := client.Read(id)
		if err != nil {
			t.Fatalf("read file %d after faulted replay: %v", f, err)
		}
		if want := syntheticFile(geom, id, sizes[id]); !bytes.Equal(data, want) {
			t.Fatalf("file %d corrupted after faulted replay (%d bytes)", f, len(data))
		}
	}
}

// syntheticFile composes the expected content of a whole synthetic file.
func syntheticFile(geom block.Geometry, f block.FileID, size int64) []byte {
	out := make([]byte, 0, size)
	for i := int32(0); i < geom.Count(size); i++ {
		n := int(size - int64(i)*int64(geom.Size))
		if n > geom.Size {
			n = geom.Size
		}
		out = append(out, middleware.SyntheticBlock(f, i, n)...)
	}
	return out
}

// TestStaticHomeReplayEquivalence pins the compatibility contract of the
// elastic-membership layer: a Config.StaticHome cluster — the legacy
// int(f) % clusterSize mapping — and a consistent-hash ring cluster replay
// the same deterministic trace with identical §3 counters and identical
// bytes. Placement decides *where* each master lives, never *what* the
// protocol does, so any divergence here means the membership machinery
// leaked into the caching protocol. The static cluster must also show zero
// elastic activity: no rebalanced blocks, no heartbeat failures, no view.
func TestStaticHomeReplayEquivalence(t *testing.T) {
	const k = 3
	geom := block.Geometry{Size: 1024, ExtentBlocks: 8}
	staticClient, sizes := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true
		cfg.StaticHome = true
	}, middleware.ClientConfig{})
	ringClient, _ := startClusterMut(t, k, 4096, func(i int, cfg *middleware.Config) {
		cfg.SyncInvalidate = true
	}, middleware.ClientConfig{})
	tr := replayTrace(sizes, 120)

	resStatic, err := Replay(staticClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	resRing, err := Replay(ringClient, tr, Config{Concurrency: 1, WarmupFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s, r := resStatic.Cluster, resRing.Cluster
	if s.Accesses != r.Accesses || s.LocalHits != r.LocalHits ||
		s.RemoteHits != r.RemoteHits || s.DiskReads != r.DiskReads {
		t.Errorf("static home diverged from ring placement:\nstatic: accesses=%d local=%d remote=%d disk=%d\n  ring: accesses=%d local=%d remote=%d disk=%d",
			s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads,
			r.Accesses, r.LocalHits, r.RemoteHits, r.DiskReads)
	}
	if s.RaceMisses != r.RaceMisses || s.Forwards != r.Forwards || s.Invalidations != r.Invalidations {
		t.Errorf("secondary counters diverged: static races=%d forwards=%d inval=%d, ring races=%d forwards=%d inval=%d",
			s.RaceMisses, s.Forwards, s.Invalidations, r.RaceMisses, r.Forwards, r.Invalidations)
	}
	// The legacy mode must not have constructed any elastic machinery.
	if s.RebalancedBlocks != 0 || s.RebalancePending != 0 || s.HeartbeatFailures != 0 {
		t.Errorf("static cluster ran elastic machinery: rebalanced=%d pending=%d hbfail=%d",
			s.RebalancedBlocks, s.RebalancePending, s.HeartbeatFailures)
	}
	// The ring cluster, steady-state, must be equally quiet: placement is a
	// pure function of the (unchanging) membership, so no rebalance happens.
	if r.RebalancedBlocks != 0 || r.RebalancePending != 0 {
		t.Errorf("steady-state ring cluster rebalanced: %d blocks, %d pending",
			r.RebalancedBlocks, r.RebalancePending)
	}

	// Byte equivalence through both placements, and a write through each:
	// the same one-invalidation-per-node cost, the same bytes everywhere.
	for f := 0; f < len(sizes); f++ {
		id := block.FileID(f)
		want := syntheticFile(geom, id, sizes[id])
		for name, cl := range map[string]*middleware.Client{"static": staticClient, "ring": ringClient} {
			got, err := cl.Read(id)
			if err != nil {
				t.Fatalf("%s read file %d: %v", name, f, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s cluster corrupted file %d (%d bytes)", name, f, len(got))
			}
		}
	}
	patch := bytes.Repeat([]byte{0xE7}, int(sizes[0]))
	for name, pair := range map[string]struct {
		cl   *middleware.Client
		base uint64
	}{"static": {staticClient, s.Invalidations}, "ring": {ringClient, r.Invalidations}} {
		if err := pair.cl.Write(0, 0, patch); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		after, err := pair.cl.ClusterStats()
		if err != nil {
			t.Fatal(err)
		}
		if d := after.Invalidations - pair.base; d != k {
			t.Errorf("%s invalidations per write = %d, want %d", name, d, k)
		}
		for e := 0; e < k; e++ {
			data, err := pair.cl.ReadVia(e, 0)
			if err != nil {
				t.Fatalf("%s read via %d after write: %v", name, e, err)
			}
			if !bytes.Equal(data, patch) {
				t.Fatalf("%s node %d served stale bytes after write", name, e)
			}
		}
	}
}
