package loadgen

import (
	"testing"
	"time"

	"repro/internal/middleware"
)

// TestBuildIntervals pins the time-series bucketing: samples land in the
// bucket of their issue time, rates are computed over the bucket width,
// pre-measurement samples are excluded, and fault-counter deltas are
// attributed to the bucket whose boundary the snapshot precedes.
func TestBuildIntervals(t *testing.T) {
	const start = int64(1_000_000_000) // measurement start, unix nanos
	w := 100 * time.Millisecond
	ms := int64(time.Millisecond)

	samples := []isample{
		{at: start - 1*ms, lat: time.Millisecond, bytes: 999},       // warmup: excluded
		{at: start + 10*ms, lat: 1 * time.Millisecond, bytes: 1000}, // bucket 0
		{at: start + 90*ms, lat: 3 * time.Millisecond, bytes: 1000}, // bucket 0
		{at: start + 150*ms, lat: 5 * time.Millisecond, bytes: 2000, write: true}, // bucket 1
		{at: start + 310*ms, lat: 7 * time.Millisecond, bytes: 4000},              // bucket 3
	}
	faults := []faultSample{
		{at: start + 50*ms, fs: middleware.ClientFaultStats{Timeouts: 1}},
		{at: start + 180*ms, fs: middleware.ClientFaultStats{Timeouts: 1, Failovers: 2}},
		{at: start + 400*ms, fs: middleware.ClientFaultStats{Timeouts: 3, Failovers: 2, BreakerSkips: 1}},
	}

	stats := []statSample{
		// Bucket 0 boundary state: 10 accesses, 4 hits (2 local, 2 remote).
		{at: start + 60*ms, st: middleware.Stats{Accesses: 10, LocalHits: 2, RemoteHits: 2, MembershipEpoch: 1}},
		// Bucket 1: +10 accesses, +8 hits -> hit rate 0.8, with a rebalance
		// in flight.
		{at: start + 170*ms, st: middleware.Stats{Accesses: 20, LocalHits: 8, RemoteHits: 4, MembershipEpoch: 2, RebalancePending: 3}},
		// Bucket 3: counters dipped (a node crashed): clamp to 0, not wrap.
		{at: start + 390*ms, st: middleware.Stats{Accesses: 25, LocalHits: 6, RemoteHits: 3, MembershipEpoch: 2}},
	}

	out := buildIntervals(samples, faults, stats, start, w)
	if len(out) != 4 {
		t.Fatalf("got %d buckets, want 4 (last sample at 310ms / 100ms width)", len(out))
	}

	b0 := out[0]
	if b0.I != 0 || b0.StartMs != 0 {
		t.Fatalf("bucket 0 indexed %d@%dms", b0.I, b0.StartMs)
	}
	if b0.Requests != 2 || b0.Bytes != 2000 || b0.Writes != 0 {
		t.Fatalf("bucket 0 = %d req / %d bytes / %d writes, want 2/2000/0", b0.Requests, b0.Bytes, b0.Writes)
	}
	if b0.ReqPerSec != 20 {
		t.Fatalf("bucket 0 rate = %v req/s, want 20", b0.ReqPerSec)
	}
	// Floor-rank percentiles over {1ms, 3ms}: both p50 and p99 truncate to
	// rank 0 (metrics.Percentile's established semantics).
	if b0.P50Micros != 1000 || b0.P99Micros != 1000 {
		t.Fatalf("bucket 0 p50/p99 = %d/%d µs, want 1000/1000", b0.P50Micros, b0.P99Micros)
	}
	// The snapshot at +50ms (Timeouts=1) is bucket 0's end-boundary state.
	if b0.ClientTimeouts != 1 || b0.ClientFailovers != 0 {
		t.Fatalf("bucket 0 fault deltas = %d timeouts / %d failovers, want 1/0", b0.ClientTimeouts, b0.ClientFailovers)
	}

	b1 := out[1]
	if b1.Requests != 1 || b1.Writes != 1 || b1.Bytes != 2000 {
		t.Fatalf("bucket 1 = %d req / %d writes / %d bytes, want 1/1/2000", b1.Requests, b1.Writes, b1.Bytes)
	}
	if b1.StartMs != 100 {
		t.Fatalf("bucket 1 starts at %d ms, want 100", b1.StartMs)
	}
	// The +180ms snapshot lands inside bucket 1: its failover delta does too.
	if b1.ClientFailovers != 2 || b1.ClientTimeouts != 0 {
		t.Fatalf("bucket 1 fault deltas = %d failovers / %d timeouts, want 2/0", b1.ClientFailovers, b1.ClientTimeouts)
	}

	if out[2].Requests != 0 || out[2].P50Micros != 0 {
		t.Fatalf("empty bucket 2 not zeroed: %+v", out[2])
	}

	b3 := out[3]
	if b3.Requests != 1 || b3.P50Micros != 7000 {
		t.Fatalf("bucket 3 = %d req p50=%dµs, want 1 req p50=7000µs", b3.Requests, b3.P50Micros)
	}
	// The +400ms snapshot is at (not past) bucket 3's end boundary: the
	// remaining deltas (2 timeouts, 1 breaker skip) belong to it.
	if b3.ClientTimeouts != 2 || b3.ClientBreakerSkips != 1 {
		t.Fatalf("bucket 3 fault deltas = %d timeouts / %d skips, want 2/1", b3.ClientTimeouts, b3.ClientBreakerSkips)
	}

	// Totals across buckets must conserve the input.
	var reqs, writes int
	var bytes int64
	var tos, fos, skips uint64
	for _, b := range out {
		reqs += b.Requests
		writes += b.Writes
		bytes += b.Bytes
		tos += b.ClientTimeouts
		fos += b.ClientFailovers
		skips += b.ClientBreakerSkips
	}
	if reqs != 4 || writes != 1 || bytes != 8000 {
		t.Fatalf("totals = %d req / %d writes / %d bytes, want 4/1/8000", reqs, writes, bytes)
	}
	if tos != 3 || fos != 2 || skips != 1 {
		t.Fatalf("fault totals = %d/%d/%d, want the final snapshot 3/2/1", tos, fos, skips)
	}

	// Hit-rate series: bucket 0 has no prior snapshot (-1), bucket 1's
	// delta is 8 hits over 10 accesses, bucket 2 has no snapshot (-1),
	// bucket 3's hit delta dipped below zero and clamps to a 0 rate.
	if b0.HitRate != -1 {
		t.Fatalf("bucket 0 hit rate = %v, want -1 (no prior snapshot)", b0.HitRate)
	}
	if b1.HitRate != 0.8 || b1.RebalancePending != 3 || b1.MembershipEpoch != 2 {
		t.Fatalf("bucket 1 = hit %.2f pending %d epoch %d, want 0.80/3/2",
			b1.HitRate, b1.RebalancePending, b1.MembershipEpoch)
	}
	if out[2].HitRate != -1 {
		t.Fatalf("bucket 2 hit rate = %v, want -1 (no snapshot)", out[2].HitRate)
	}
	if b3.HitRate != 0 || b3.RebalancePending != 0 {
		t.Fatalf("bucket 3 = hit %v pending %d, want clamped 0 and no pending", b3.HitRate, b3.RebalancePending)
	}
}

// TestBuildIntervalsEmpty covers the degenerate inputs.
func TestBuildIntervalsEmpty(t *testing.T) {
	if out := buildIntervals(nil, nil, nil, 1, time.Second); out != nil {
		t.Fatalf("no samples should yield no intervals, got %v", out)
	}
	if out := buildIntervals([]isample{{at: 5}}, nil, nil, 0, time.Second); out != nil {
		t.Fatalf("unset measurement start should yield no intervals, got %v", out)
	}
	// Only warmup samples: nothing measurable.
	if out := buildIntervals([]isample{{at: 5}}, nil, nil, 10, time.Second); out != nil {
		t.Fatalf("warmup-only samples should yield no intervals, got %v", out)
	}
}

// TestReplayIntervals runs a live replay and checks the interval series is
// attached and self-consistent with the aggregate result.
func TestReplayIntervals(t *testing.T) {
	client, sizes := startCluster(t, 2, 256)
	tr := replayTrace(sizes, 400)
	res, err := Replay(client, tr, Config{
		Concurrency: 4,
		WarmupFrac:  0.2,
		Interval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("replay with a positive Interval produced no time series")
	}
	var reqs int
	var bytes int64
	for i, iv := range res.Intervals {
		if iv.I != i {
			t.Fatalf("interval %d has index %d", i, iv.I)
		}
		reqs += iv.Requests
		bytes += iv.Bytes
	}
	if reqs != res.Requests {
		t.Fatalf("interval requests sum to %d, aggregate says %d", reqs, res.Requests)
	}
	if bytes != res.Bytes {
		t.Fatalf("interval bytes sum to %d, aggregate says %d", bytes, res.Bytes)
	}

	// A negative Interval disables the series.
	res2, err := Replay(client, tr, Config{Concurrency: 4, WarmupFrac: 0.2, Interval: -1})
	if err != nil {
		t.Fatalf("replay without intervals: %v", err)
	}
	if res2.Intervals != nil {
		t.Fatalf("negative Interval still produced %d buckets", len(res2.Intervals))
	}
}
