// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine models the cluster hardware described in §4.2 of the paper:
// components are service centers with finite queues, driven by an event
// heap over a virtual clock. All times are virtual nanoseconds; nothing in
// this package reads the wall clock, so runs with the same seed are
// bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds converts a duration expressed in (possibly fractional)
// milliseconds into a Duration. It is the conversion used for every Table 1
// constant.
func Milliseconds(ms float64) Duration {
	return Duration(ms * float64(Millisecond))
}

// Microseconds converts a duration expressed in (possibly fractional)
// microseconds into a Duration.
func Microseconds(us float64) Duration {
	return Duration(us * float64(Microsecond))
}

// Seconds reports d as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports d as fractional milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration in engineering units.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as fractional seconds since the simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds.
func (t Time) String() string { return fmt.Sprintf("t=%.6fs", t.Seconds()) }
