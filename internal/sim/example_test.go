package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A service center serializes jobs like a single disk or CPU: three jobs
// submitted together finish back-to-back.
func ExampleServiceCenter() {
	eng := sim.NewEngine(1)
	cpu := sim.NewServiceCenter(eng, "cpu", 0)
	for i := 1; i <= 3; i++ {
		i := i
		cpu.Do(10*sim.Millisecond, func() {
			fmt.Printf("job %d done at %v\n", i, eng.Now())
		})
	}
	eng.RunUntilIdle()
	// Output:
	// job 1 done at t=0.010000s
	// job 2 done at t=0.020000s
	// job 3 done at t=0.030000s
}

// The engine dispatches events in timestamp order regardless of
// scheduling order.
func ExampleEngine_Schedule() {
	eng := sim.NewEngine(1)
	eng.Schedule(2*sim.Millisecond, func() { fmt.Println("second") })
	eng.Schedule(1*sim.Millisecond, func() { fmt.Println("first") })
	eng.RunUntilIdle()
	// Output:
	// first
	// second
}
