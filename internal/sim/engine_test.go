package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*Millisecond, func() { got = append(got, 2) })
	e.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
}

func TestScheduleFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestNowAdvancesMonotonically(t *testing.T) {
	e := NewEngine(7)
	rng := rand.New(rand.NewSource(42))
	var last Time = -1
	for i := 0; i < 1000; i++ {
		e.Schedule(Duration(rng.Int63n(int64(Second))), func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %v < %v", e.Now(), last)
			}
			last = e.Now()
		})
	}
	e.RunUntilIdle()
	if e.Steps() != 1000 {
		t.Fatalf("dispatched %d events, want 1000", e.Steps())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	end := e.RunUntilIdle()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if want := Time(99 * Millisecond); end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestRunUntilBound(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Millisecond, func() { fired++ })
	}
	e.Run(Time(5 * Millisecond))
	if fired != 5 {
		t.Fatalf("fired %d events by t=5ms, want 5", fired)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.RunUntilIdle()
	if fired != 10 {
		t.Fatalf("fired %d events total, want 10", fired)
	}
}

func TestHaltStopsDispatch(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Millisecond, func() {
			fired++
			if fired == 3 {
				e.Halt()
			}
		})
	}
	e.RunUntilIdle()
	if fired != 3 {
		t.Fatalf("fired %d, want 3 (halted)", fired)
	}
	e.RunUntilIdle()
	if fired != 10 {
		t.Fatalf("resume fired %d, want 10", fired)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine(1).Schedule(-1, func() {})
}

func TestAtAbsolute(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(Time(3*Millisecond), func() { at = e.Now() })
	e.RunUntilIdle()
	if at != Time(3*Millisecond) {
		t.Fatalf("At fired at %v, want 3ms", at)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(Time(Millisecond), func() {})
	})
	e.RunUntilIdle()
}

// Property: for any set of delays, events fire in nondecreasing timestamp
// order and every event fires exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine(1)
		fired := make([]Time, 0, len(raw))
		delays := make([]Duration, len(raw))
		for i, r := range raw {
			delays[i] = Duration(r % 1_000_000_000)
			e.Schedule(delays[i], func() { fired = append(fired, e.Now()) })
		}
		e.RunUntilIdle()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Each fire time must equal its delay (engine started at t=0): compare
		// multisets.
		want := make([]int64, len(delays))
		got := make([]int64, len(fired))
		for i := range delays {
			want[i] = int64(delays[i])
			got[i] = int64(fired[i])
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(99), NewEngine(99)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines diverged")
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}
