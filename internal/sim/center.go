package sim

// Job is a unit of work submitted to a ServiceCenter: a service demand plus a
// completion callback invoked when the center finishes serving it.
type Job struct {
	// Service is how long the job occupies the server.
	Service Duration
	// Done is invoked (at the virtual completion time) when the job has been
	// served. It may be nil.
	Done func()
	// Dropped is invoked instead of Done if the job is rejected because the
	// center's queue is full. It may be nil.
	Dropped func()
}

// ServiceCenter models a hardware component (CPU, NIC, bus, router) as a
// single server with a FIFO queue of bounded length, per §4.2's "hardware
// components as service centers with finite queues".
//
// Utilization statistics are accumulated so experiments can report the
// resource utilization plots of Figure 6(a).
type ServiceCenter struct {
	Name string

	eng      *Engine
	queue    []Job
	maxQueue int // 0 means unbounded
	busy     bool

	// statistics
	busyTime   Duration
	lastStart  Time
	statsSince Time
	served     uint64
	dropped    uint64
	queueArea  float64 // integral of queue length over time
	lastQEvent Time
	maxSeen    int
}

// initialQueueCap pre-sizes a center's FIFO so the first burst of arrivals
// does not grow the backing array on the hot path. Bounded queues allocate
// their full bound up front (it is the worst case anyway, and Table 1 bounds
// are small); unbounded queues start at this capacity and grow as needed.
const initialQueueCap = 32

// NewServiceCenter returns a center attached to eng. maxQueue bounds the
// number of waiting jobs (not counting the one in service); 0 means
// unbounded.
func NewServiceCenter(eng *Engine, name string, maxQueue int) *ServiceCenter {
	capHint := maxQueue
	if capHint <= 0 || capHint > 4*initialQueueCap {
		capHint = initialQueueCap
	}
	return &ServiceCenter{
		Name:     name,
		eng:      eng,
		maxQueue: maxQueue,
		queue:    make([]Job, 0, capHint),
	}
}

// Submit offers a job to the center. If the server is idle the job starts
// immediately; otherwise it waits in FIFO order. If the queue is full the
// job is dropped and its Dropped callback fires on the next event.
func (c *ServiceCenter) Submit(j Job) {
	if j.Service < 0 {
		panic("sim: negative service demand")
	}
	if !c.busy {
		c.start(j)
		return
	}
	if c.maxQueue > 0 && len(c.queue) >= c.maxQueue {
		c.dropped++
		if j.Dropped != nil {
			c.eng.Schedule(0, j.Dropped)
		}
		return
	}
	c.accountQueue()
	c.queue = append(c.queue, j)
	if len(c.queue) > c.maxSeen {
		c.maxSeen = len(c.queue)
	}
}

// Do is shorthand for Submit with only a completion callback.
func (c *ServiceCenter) Do(service Duration, done func()) {
	c.Submit(Job{Service: service, Done: done})
}

func (c *ServiceCenter) start(j Job) {
	c.busy = true
	c.lastStart = c.eng.Now()
	// scheduleService carries (c, j) inside the event value instead of a
	// heap-allocated closure — the engine's hottest path stays alloc-free.
	c.eng.scheduleService(c, j, j.Service)
}

func (c *ServiceCenter) finish(j Job) {
	c.busyTime += c.eng.Now().Sub(c.lastStart)
	c.served++
	c.busy = false
	if len(c.queue) > 0 {
		c.accountQueue()
		next := c.queue[0]
		// Shift rather than re-slice forever so the backing array is reused.
		copy(c.queue, c.queue[1:])
		c.queue = c.queue[:len(c.queue)-1]
		c.start(next)
	}
	if j.Done != nil {
		j.Done()
	}
}

func (c *ServiceCenter) accountQueue() {
	now := c.eng.Now()
	c.queueArea += float64(len(c.queue)) * float64(now.Sub(c.lastQEvent))
	c.lastQEvent = now
}

// Busy reports whether a job is currently in service.
func (c *ServiceCenter) Busy() bool { return c.busy }

// QueueLen reports the number of waiting jobs.
func (c *ServiceCenter) QueueLen() int { return len(c.queue) }

// Served reports the number of completed jobs.
func (c *ServiceCenter) Served() uint64 { return c.served }

// DroppedCount reports the number of rejected jobs.
func (c *ServiceCenter) DroppedCount() uint64 { return c.dropped }

// ResetStats restarts utilization accounting at the current virtual time.
// Experiments call this at the end of cache warmup so reported utilizations
// reflect steady state only.
func (c *ServiceCenter) ResetStats() {
	now := c.eng.Now()
	c.busyTime = 0
	c.statsSince = now
	c.served = 0
	c.dropped = 0
	c.queueArea = 0
	c.lastQEvent = now
	c.maxSeen = 0
	if c.busy {
		// Attribute the in-flight job's remaining service to the new window.
		c.lastStart = now
	}
}

// Utilization reports the fraction of time since the last ResetStats that
// the server was busy, in [0,1].
func (c *ServiceCenter) Utilization() float64 {
	now := c.eng.Now()
	window := now.Sub(c.statsSince)
	if window <= 0 {
		return 0
	}
	busy := c.busyTime
	if c.busy {
		busy += now.Sub(c.lastStart)
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// MeanQueueLen reports the time-averaged queue length since the last
// ResetStats.
func (c *ServiceCenter) MeanQueueLen() float64 {
	now := c.eng.Now()
	window := now.Sub(c.statsSince)
	if window <= 0 {
		return 0
	}
	area := c.queueArea + float64(len(c.queue))*float64(now.Sub(c.lastQEvent))
	return area / float64(window)
}

// MaxQueueLen reports the maximum queue length observed since the last
// ResetStats.
func (c *ServiceCenter) MaxQueueLen() int { return c.maxSeen }
