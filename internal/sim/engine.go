package sim

import (
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO tie-break via the sequence number), which keeps the
// simulation deterministic.
//
// The common case in a run — a ServiceCenter finishing a job — is encoded
// inline (sc + job) instead of as a heap-allocated closure, so the engine's
// steady-state dispatch allocates nothing.
type event struct {
	at  Time
	seq uint64
	fn  func()
	sc  *ServiceCenter // non-nil: a service-completion event for job
	job Job
}

// heapArity is the branching factor of the event queue. A 4-ary heap is
// shallower than a binary one (log4 vs log2 levels), trading a few extra
// comparisons per level for roughly half the cache-missing swaps — a net win
// for the sift-down-heavy pop path of a discrete-event loop.
const heapArity = 4

// Engine is a discrete-event simulation engine: a virtual clock plus a
// min-heap of pending events. It is not safe for concurrent use; a single
// goroutine owns a simulation run. (Independent engines may run on separate
// goroutines — the parallel experiment harness relies on that.)
type Engine struct {
	now    Time
	seq    uint64
	heap   []event
	rng    *rand.Rand
	nSteps uint64
	halted bool
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed yields an identical event order and identical results.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been dispatched so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Reserve grows the event queue's capacity to hold at least n pending events
// without reallocation. Callers that know a run's concurrency (clients ×
// centers) can pre-size the heap once instead of growing it on the hot path.
func (e *Engine) Reserve(n int) {
	if cap(e.heap) < n {
		h := make([]event, len(e.heap), n)
		copy(h, e.heap)
		e.heap = h
	}
}

// Schedule runs fn after delay of virtual time. A negative delay is an error
// in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %d", delay))
	}
	e.push(event{at: e.now.Add(delay), seq: e.seq, fn: fn})
	e.seq++
}

// scheduleService enqueues c finishing j after delay, without allocating a
// continuation closure: the (center, job) pair rides inside the event value.
func (e *Engine) scheduleService(c *ServiceCenter, j Job, delay Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: service with negative demand %d", delay))
	}
	e.push(event{at: e.now.Add(delay), seq: e.seq, sc: c, job: j})
	e.seq++
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) before now (%v)", t, e.now))
	}
	e.push(event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Halt stops the run loop after the current event returns. Pending events
// remain queued; Run may be called again to resume.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Run dispatches events until the queue is empty, Halt is called, or the
// virtual clock would pass until (until <= 0 means no limit). It returns the
// time of the last dispatched event.
func (e *Engine) Run(until Time) Time {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.heap[0]
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		e.pop()
		if ev.at < e.now {
			panic("sim: event heap returned event in the past")
		}
		e.now = ev.at
		e.nSteps++
		if ev.sc != nil {
			ev.sc.finish(ev.job)
		} else {
			ev.fn()
		}
	}
	return e.now
}

// RunUntilIdle dispatches every pending event (including events scheduled by
// other events) and returns the final virtual time.
func (e *Engine) RunUntilIdle() Time { return e.Run(0) }

// push inserts ev into the heapArity-ary min-heap ordered by (at, seq).
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes the minimum event.
func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = event{} // release callback references
	e.heap = e.heap[:n]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		smallest := i
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if less(e.heap[c], e.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
