package sim

import (
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO tie-break via the sequence number), which keeps the
// simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Engine is a discrete-event simulation engine: a virtual clock plus a
// min-heap of pending events. It is not safe for concurrent use; a single
// goroutine owns a simulation run.
type Engine struct {
	now    Time
	seq    uint64
	heap   []event
	rng    *rand.Rand
	nSteps uint64
	halted bool
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed yields an identical event order and identical results.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been dispatched so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Schedule runs fn after delay of virtual time. A negative delay is an error
// in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %d", delay))
	}
	e.push(event{at: e.now.Add(delay), seq: e.seq, fn: fn})
	e.seq++
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) before now (%v)", t, e.now))
	}
	e.push(event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Halt stops the run loop after the current event returns. Pending events
// remain queued; Run may be called again to resume.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Run dispatches events until the queue is empty, Halt is called, or the
// virtual clock would pass until (until <= 0 means no limit). It returns the
// time of the last dispatched event.
func (e *Engine) Run(until Time) Time {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ev := e.heap[0]
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		e.pop()
		if ev.at < e.now {
			panic("sim: event heap returned event in the past")
		}
		e.now = ev.at
		e.nSteps++
		ev.fn()
	}
	return e.now
}

// RunUntilIdle dispatches every pending event (including events scheduled by
// other events) and returns the final virtual time.
func (e *Engine) RunUntilIdle() Time { return e.Run(0) }

// push inserts ev into the binary min-heap ordered by (at, seq).
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes the minimum event.
func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < n && less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
