package sim

import "testing"

func TestMilliseconds(t *testing.T) {
	cases := []struct {
		ms   float64
		want Duration
	}{
		{1, Millisecond},
		{0.1, 100 * Microsecond},
		{0.038, 38 * Microsecond},
		{2.5, 2500 * Microsecond},
	}
	for _, c := range cases {
		if got := Milliseconds(c.ms); got != c.want {
			t.Errorf("Milliseconds(%v) = %v, want %v", c.ms, got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{40 * Microsecond, "40.000us"},
		{5, "5ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10 * Millisecond)
	t1 := t0.Add(5 * Millisecond)
	if t1 != Time(15*Millisecond) {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != 5*Millisecond {
		t.Fatalf("Sub: got %v", d)
	}
	if s := Time(1500 * Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("Seconds: got %v", s)
	}
}
