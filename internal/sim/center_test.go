package sim

import (
	"testing"
	"testing/quick"
)

func TestServiceCenterFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "cpu", 0)
	var done []int
	var times []Time
	for i := 0; i < 5; i++ {
		i := i
		c.Do(10*Millisecond, func() {
			done = append(done, i)
			times = append(times, e.Now())
		})
	}
	e.RunUntilIdle()
	for i := range done {
		if done[i] != i {
			t.Fatalf("completion order %v not FIFO", done)
		}
		want := Time(Duration(i+1) * 10 * Millisecond)
		if times[i] != want {
			t.Fatalf("job %d finished at %v, want %v", i, times[i], want)
		}
	}
}

func TestServiceCenterIdleStartsImmediately(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "cpu", 0)
	var finished Time
	e.Schedule(5*Millisecond, func() {
		c.Do(2*Millisecond, func() { finished = e.Now() })
	})
	e.RunUntilIdle()
	if want := Time(7 * Millisecond); finished != want {
		t.Fatalf("finished at %v, want %v", finished, want)
	}
}

func TestServiceCenterQueueBound(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "nic", 2)
	served, dropped := 0, 0
	for i := 0; i < 5; i++ {
		c.Submit(Job{
			Service: Millisecond,
			Done:    func() { served++ },
			Dropped: func() { dropped++ },
		})
	}
	e.RunUntilIdle()
	// 1 in service + 2 queued accepted; 2 dropped.
	if served != 3 || dropped != 2 {
		t.Fatalf("served=%d dropped=%d, want 3/2", served, dropped)
	}
	if c.DroppedCount() != 2 {
		t.Fatalf("DroppedCount=%d, want 2", c.DroppedCount())
	}
}

func TestServiceCenterUtilization(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "disk", 0)
	c.Do(30*Millisecond, nil)
	e.Schedule(100*Millisecond, func() {}) // extend the clock to 100ms
	e.RunUntilIdle()
	u := c.Utilization()
	if u < 0.29 || u > 0.31 {
		t.Fatalf("utilization = %f, want ~0.30", u)
	}
}

func TestServiceCenterUtilizationSaturated(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "disk", 0)
	for i := 0; i < 10; i++ {
		c.Do(10*Millisecond, nil)
	}
	e.RunUntilIdle()
	if u := c.Utilization(); u < 0.999 {
		t.Fatalf("saturated utilization = %f, want ~1", u)
	}
	if c.Served() != 10 {
		t.Fatalf("served = %d, want 10", c.Served())
	}
}

func TestResetStatsMidService(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "cpu", 0)
	c.Do(40*Millisecond, nil)
	e.Schedule(20*Millisecond, func() { c.ResetStats() })
	e.Schedule(60*Millisecond, func() {}) // window [20,60], busy [20,40]
	e.RunUntilIdle()
	u := c.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("post-reset utilization = %f, want ~0.5", u)
	}
}

func TestMeanQueueLen(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "cpu", 0)
	// Three jobs of 10ms each submitted at t=0: queue holds 2 for 10ms,
	// 1 for 10ms, 0 for 10ms → mean over 30ms = 1.0.
	for i := 0; i < 3; i++ {
		c.Do(10*Millisecond, nil)
	}
	e.RunUntilIdle()
	m := c.MeanQueueLen()
	if m < 0.99 || m > 1.01 {
		t.Fatalf("mean queue len = %f, want ~1.0", m)
	}
	if c.MaxQueueLen() != 2 {
		t.Fatalf("max queue len = %d, want 2", c.MaxQueueLen())
	}
}

func TestNegativeServicePanics(t *testing.T) {
	e := NewEngine(1)
	c := NewServiceCenter(e, "cpu", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative service demand did not panic")
		}
	}()
	c.Do(-1, nil)
}

// Property: total virtual completion time of a FIFO center equals the sum of
// service demands (single server, work-conserving), and all jobs complete.
func TestServiceCenterWorkConserving(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(1)
		c := NewServiceCenter(e, "cpu", 0)
		var sum Duration
		n := 0
		for _, r := range raw {
			d := Duration(r) * Microsecond
			sum += d
			c.Do(d, func() { n++ })
		}
		end := e.RunUntilIdle()
		return n == len(raw) && end == Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
