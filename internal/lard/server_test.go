package lard

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

var testParams = hw.DefaultParams()

func testTrace(sizes ...int64) *trace.Trace {
	tr := &trace.Trace{Name: "test"}
	for i, sz := range sizes {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(i), Size: sz})
	}
	return tr
}

func newServer(tr *trace.Trace, cfg Config) (*sim.Engine, *Server) {
	eng := sim.NewEngine(1)
	return eng, New(eng, &testParams, tr, cfg)
}

func TestColdAndWarmRequest(t *testing.T) {
	tr := testTrace(20 * 1024)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 1 << 20})
	done := 0
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	target := int(s.Servers(0)[0])
	s.Dispatch(2, 0, func() { done++ }) // entry node is irrelevant
	eng.RunUntilIdle()
	if done != 2 {
		t.Fatalf("served %d of 2", done)
	}
	st := s.CacheStats()
	if st.DiskReads != 1 || st.LocalHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk + 1 hit", st)
	}
	if !s.NodeCache(target).Contains(0) {
		t.Fatal("file not cached at its assigned back-end")
	}
	if st.Handoffs != 2 {
		t.Fatalf("handoffs = %d, want 2 (every request goes through the front-end)", st.Handoffs)
	}
}

func TestLocalityRouting(t *testing.T) {
	// Distinct files spread over back-ends; repeats always hit the same
	// back-end's memory.
	tr := testTrace(8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 1 << 20})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 120; i++ {
		s.Dispatch(0, block.FileID(rng.Intn(8)), nil)
		if i%4 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	var physical uint64
	for i := 0; i < 4; i++ {
		physical += s.Hardware().Disks[i].Reads()
	}
	if physical != 8 {
		t.Fatalf("physical disk reads = %d, want 8 (one per file)", physical)
	}
	// Each file cached exactly once.
	for f := 0; f < 8; f++ {
		copies := 0
		for n := 0; n < 4; n++ {
			if s.NodeCache(n).Contains(block.FileID(f)) {
				copies++
			}
		}
		if copies != 1 {
			t.Errorf("file %d has %d copies", f, copies)
		}
	}
}

func TestBasicLARDReassignsUnderOverload(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, TLow: 1, THigh: 2})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	first := int(s.Servers(0)[0])
	// Pile on load without draining: load crosses 2·THigh → reassignment.
	for i := 0; i < 16; i++ {
		s.Dispatch(0, 0, nil)
	}
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.Replications == 0 {
		t.Fatal("no reassignment under overload")
	}
	if len(s.Servers(0)) != 1 {
		t.Fatalf("basic LARD must keep a single server, got %v", s.Servers(0))
	}
	_ = first
}

func TestLARDRGrowsAndShrinks(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{
		Nodes: 4, MemoryPerNode: 1 << 20, Replication: true,
		TLow: 1, THigh: 2, ShrinkAfter: 50 * sim.Millisecond,
	})
	for i := 0; i < 32; i++ {
		s.Dispatch(0, 0, nil)
	}
	eng.RunUntilIdle()
	if s.CacheStats().Replications == 0 {
		t.Fatal("LARD/R never replicated under overload")
	}
	grown := len(s.Servers(0))
	if grown < 2 {
		t.Fatalf("server set = %v, want ≥2 members", s.Servers(0))
	}
	// Calm traffic after the shrink window: the set contracts.
	for i := 0; i < 6; i++ {
		s.Dispatch(0, 0, nil)
		eng.RunUntilIdle()
		eng.Schedule(60*sim.Millisecond, func() {})
		eng.RunUntilIdle()
	}
	if len(s.Servers(0)) >= grown {
		t.Fatalf("server set did not shrink: %d -> %d", grown, len(s.Servers(0)))
	}
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(1024)
	eng := sim.NewEngine(1)
	for name, cfg := range map[string]Config{
		"no nodes":  {MemoryPerNode: 1},
		"no memory": {Nodes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(eng, &testParams, tr, cfg)
		}()
	}
}

func TestRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := make([]int64, 40)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(48*1024) + 512)
	}
	tr := testTrace(sizes...)
	for _, repl := range []bool{false, true} {
		eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 256 * 1024, Replication: repl})
		done := 0
		for i := 0; i < 500; i++ {
			s.Dispatch(0, block.FileID(rng.Intn(40)), func() { done++ })
			if i%7 == 0 {
				eng.RunUntilIdle()
			}
		}
		eng.RunUntilIdle()
		if done != 500 {
			t.Fatalf("replication=%v: served %d of 500", repl, done)
		}
		st := s.CacheStats()
		if st.LocalHits+st.DiskReads != st.Accesses {
			t.Fatalf("replication=%v: accounting %+v", repl, st)
		}
	}
}
