// Package lard implements Locality-Aware Request Distribution (Pai et al.,
// ASPLOS 1998) — the paper's reference [17] and the origin of the
// "conventional wisdom" that cooperative caching cannot match locality-
// conscious servers. A front-end switch routes each request by content to
// a back-end; back-ends cache whole files in *independent* local LRU
// caches (no cooperation), so locality comes entirely from routing:
//
//   - Basic LARD: each target (file) is assigned to one back-end, chosen
//     least-loaded at first access. The assignment moves to a least-loaded
//     node when the current server is overloaded (load > Thigh while some
//     node is under Tlow, or load ≥ 2·Thigh).
//   - LARD/R (replication): instead of moving, the target's server *set*
//     grows under overload and shrinks after an idle period, spreading the
//     hottest targets over several back-ends.
//
// Including LARD alongside L2S lets the harness place the paper's result in
// the broader locality-aware design space.
package lard

import (
	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes a LARD cluster.
type Config struct {
	// Nodes is the number of back-ends (the front-end is additional).
	Nodes int
	// MemoryPerNode is each back-end's file cache size in bytes.
	MemoryPerNode int64
	// Replication selects LARD/R.
	Replication bool
	// TLow and THigh are the load thresholds (active requests per
	// back-end). Zero means the ASPLOS defaults of 25 and 65.
	TLow, THigh int
	// ShrinkAfter is how long a LARD/R server set must go without growth
	// before it drops a member (zero: the paper's 20 s).
	ShrinkAfter sim.Duration
	// Geometry is the on-disk layout. Zero value: 8 KB / 64 KB.
	Geometry block.Geometry
}

// Server is a simulated LARD cluster; it implements cluster.Backend.
type Server struct {
	cfg      Config
	hwc      *cluster.Hardware
	eng      *sim.Engine
	p        *hw.Params
	tr       *trace.Trace
	frontCPU *sim.ServiceCenter
	nodes    []*backend
	assign   []serverSet
	load     []int
	rrTie    int
	stats    cluster.CacheStats
}

// serverSet is a target's current server assignment.
type serverSet struct {
	members   []int16
	lastGrown sim.Time
}

type backend struct {
	idx     int
	cache   *cache.FileCache
	pending map[block.FileID][]func()
}

// New builds a LARD server over a fresh hardware substrate on eng.
func New(eng *sim.Engine, p *hw.Params, tr *trace.Trace, cfg Config) *Server {
	if cfg.Nodes <= 0 {
		panic("lard: config needs Nodes > 0")
	}
	if cfg.MemoryPerNode <= 0 {
		panic("lard: config needs MemoryPerNode > 0")
	}
	if cfg.Geometry == (block.Geometry{}) {
		cfg.Geometry = block.DefaultGeometry
	}
	if cfg.TLow == 0 {
		cfg.TLow = 25
	}
	if cfg.THigh == 0 {
		cfg.THigh = 65
	}
	if cfg.ShrinkAfter == 0 {
		cfg.ShrinkAfter = 20 * sim.Second
	}
	hwc := cluster.NewHardware(eng, p, cfg.Geometry, cfg.Nodes, disk.Sequential)
	s := &Server{
		cfg:      cfg,
		hwc:      hwc,
		eng:      eng,
		p:        p,
		tr:       tr,
		frontCPU: sim.NewServiceCenter(eng, "lard.frontend", 0),
		nodes:    make([]*backend, cfg.Nodes),
		assign:   make([]serverSet, len(tr.Files)),
		load:     make([]int, cfg.Nodes),
	}
	for i := range s.nodes {
		// Back-end caches are independent: a private registry per node
		// makes the shared FileCache behave as plain local LRU.
		s.nodes[i] = &backend{
			idx:     i,
			cache:   cache.NewFileCache(cfg.MemoryPerNode, cache.NewCopyRegistry()),
			pending: make(map[block.FileID][]func()),
		}
	}
	return s
}

// Hardware implements cluster.Backend.
func (s *Server) Hardware() *cluster.Hardware { return s.hwc }

// CacheStats implements cluster.Backend.
func (s *Server) CacheStats() cluster.CacheStats { return s.stats }

// ResetStats implements cluster.Backend.
func (s *Server) ResetStats() { s.stats = cluster.CacheStats{} }

// Servers reports the back-ends currently assigned to file f (tests).
func (s *Server) Servers(f block.FileID) []int16 { return s.assign[f].members }

// NodeCache exposes back-end i's cache (tests).
func (s *Server) NodeCache(i int) *cache.FileCache { return s.nodes[i].cache }

// Dispatch implements cluster.Backend. The entry node is irrelevant: every
// request passes through the front-end switch, which routes by content and
// hands the connection off to a back-end.
func (s *Server) Dispatch(_ int, file block.FileID, done func()) {
	s.hwc.Net.Send(nil, nil, int64(s.p.MsgHeader), func() {
		s.frontCPU.Do(s.p.HandoffTime, func() {
			target := s.route(file)
			s.load[target]++
			s.stats.Handoffs++
			s.hwc.Net.Send(nil, s.hwc.Nodes[target], int64(s.p.MsgHeader), func() {
				s.hwc.Nodes[target].CPU.Do(s.p.ParseTime, func() {
					s.serveAt(target, file, func() {
						s.load[target]--
						if done != nil {
							done()
						}
					})
				})
			})
		})
	})
}

// route applies the LARD (or LARD/R) assignment rules.
func (s *Server) route(file block.FileID) int {
	set := &s.assign[file]
	if len(set.members) == 0 {
		t := s.leastLoaded(nil)
		set.members = append(set.members, int16(t))
		set.lastGrown = s.eng.Now()
		return t
	}
	if !s.cfg.Replication {
		t := int(set.members[0])
		if s.shouldMove(t) {
			nt := s.leastLoaded(nil)
			if nt != t {
				set.members[0] = int16(nt)
				s.stats.Replications++ // reassignments, for LARD
				t = nt
			}
		}
		return t
	}
	// LARD/R: pick the least-loaded member; grow the set under overload,
	// shrink it after sustained calm.
	t := int(set.members[0])
	for _, m := range set.members[1:] {
		if s.load[m] < s.load[t] {
			t = int(m)
		}
	}
	now := s.eng.Now()
	if s.shouldMove(t) && len(set.members) < s.cfg.Nodes {
		nt := s.leastLoaded(set.members)
		if nt >= 0 {
			set.members = append(set.members, int16(nt))
			set.lastGrown = now
			s.stats.Replications++
			return nt
		}
	}
	if len(set.members) > 1 && now.Sub(set.lastGrown) > s.cfg.ShrinkAfter {
		set.members = set.members[:len(set.members)-1]
		set.lastGrown = now
	}
	return t
}

// shouldMove reports whether target t's load violates the LARD thresholds.
func (s *Server) shouldMove(t int) bool {
	if s.load[t] >= 2*s.cfg.THigh {
		return true
	}
	if s.load[t] <= s.cfg.THigh {
		return false
	}
	for i, l := range s.load {
		if i != t && l < s.cfg.TLow {
			return true
		}
	}
	return false
}

// leastLoaded picks the node with minimum outstanding load, rotating the
// starting index so ties spread assignments across the cluster instead of
// clumping on node 0.
func (s *Server) leastLoaded(exclude []int16) int {
	best := -1
	n := len(s.nodes)
	for k := 0; k < n; k++ {
		i := (s.rrTie + k) % n
		skip := false
		for _, e := range exclude {
			if int(e) == i {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if best < 0 || s.load[i] < s.load[best] {
			best = i
		}
	}
	s.rrTie++
	return best
}

// serveAt serves file at back-end t from its local cache or local disk
// (every file resides on every back-end's disk, as in the LARD testbed).
func (s *Server) serveAt(t int, file block.FileID, done func()) {
	n := s.nodes[t]
	s.stats.Accesses++
	size := s.tr.Size(file)
	if n.cache.Touch(file, s.eng.Now()) {
		s.stats.LocalHits++
		s.reply(t, size, done)
		return
	}
	if waiters, ok := n.pending[file]; ok {
		s.stats.DiskReads++
		n.pending[file] = append(waiters, func() { s.reply(t, size, done) })
		return
	}
	s.stats.DiskReads++
	n.pending[file] = nil
	nblocks := s.cfg.Geometry.Count(size)
	nodeHW := s.hwc.Nodes[t]
	s.hwc.Disks[t].Read(file, 0, nblocks, func() {
		nodeHW.Bus.Do(s.p.BusTransfer(size), func() {
			nodeHW.CPU.Do(s.p.FileReqTime(int(nblocks)), func() {
				n.cache.Insert(file, size, s.eng.Now())
				waiters := n.pending[file]
				delete(n.pending, file)
				s.reply(t, size, done)
				for _, w := range waiters {
					w()
				}
			})
		})
	})
}

func (s *Server) reply(t int, size int64, done func()) {
	nodeHW := s.hwc.Nodes[t]
	nodeHW.CPU.Do(s.p.ServeTime(size), func() {
		s.hwc.Net.Send(nodeHW, nil, size, done)
	})
}

var _ cluster.Backend = (*Server)(nil)
