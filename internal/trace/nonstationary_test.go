package trace

import (
	"testing"

	"repro/internal/block"
)

func flashBase(files, reqs int) Preset {
	return Preset{
		Name:         "ns-test",
		NumFiles:     files,
		FileSetBytes: int64(files) * 10240,
		NumRequests:  reqs,
		AvgReqKB:     10,
		Alpha:        0.9,
		SizeSigma:    0.5,
	}
}

// TestFlashCrowdShiftsMass verifies the schedule: inside the flash window
// the flash set's request share is near Boost; outside it is near its cold
// Zipf tail share (essentially zero).
func TestFlashCrowdShiftsMass(t *testing.T) {
	p := NonStationary{
		Base:    flashBase(200, 40000),
		Flashes: []FlashSpec{{At: 0.5, Dur: 0.25, Files: 10, Boost: 0.6}},
	}
	tr := p.Generate(7, 1.0)
	if len(tr.Requests) != 40000 || len(tr.Files) != 200 {
		t.Fatalf("generated %d requests over %d files", len(tr.Requests), len(tr.Files))
	}
	// The flash set is whatever the window's extra mass lands on: count the
	// per-file share inside vs outside the window and compare totals over
	// the files that only spike inside.
	nreq := len(tr.Requests)
	inLo, inHi := nreq/2, nreq/2+nreq/4
	countIn := map[block.FileID]int{}
	countOut := map[block.FileID]int{}
	for i, f := range tr.Requests {
		if i >= inLo && i < inHi {
			countIn[f]++
		} else {
			countOut[f]++
		}
	}
	// Files whose inside count dwarfs their (cold Zipf tail) outside count
	// are the flash set; their inside share must be ≈ Boost. The window
	// holds 10000 requests, so each of the 10 flash files draws ≈ 600
	// inside versus a tail trickle outside.
	flashIn := 0
	flashFiles := 0
	for f, c := range countIn {
		if c > 100 && c > 10*countOut[f] {
			flashIn += c
			flashFiles++
		}
	}
	share := float64(flashIn) / float64(inHi-inLo)
	if flashFiles < 5 || share < 0.45 || share > 0.75 {
		t.Fatalf("flash set: %d files, inside share %.2f (want ≈ 0.6 over ≈ 10 files)", flashFiles, share)
	}
}

// TestDiurnalRotationMovesHotSet verifies rank rotation: the most popular
// file of the first tenth of the stream differs from the most popular file
// of the last tenth.
func TestDiurnalRotationMovesHotSet(t *testing.T) {
	p := NonStationary{
		Base:         flashBase(100, 20000),
		RotatePeriod: 0.2,
		RotateShift:  7,
	}
	tr := p.Generate(3, 1.0)
	top := func(lo, hi int) block.FileID {
		c := map[block.FileID]int{}
		for _, f := range tr.Requests[lo:hi] {
			c[f]++
		}
		var best block.FileID
		bn := -1
		for f, n := range c {
			if n > bn {
				best, bn = f, n
			}
		}
		return best
	}
	n := len(tr.Requests)
	if a, b := top(0, n/10), top(9*n/10, n); a == b {
		t.Fatalf("hot file did not rotate: %d leads both the first and last tenth", a)
	}
}

// TestNonStationaryDeterministic pins seed determinism.
func TestNonStationaryDeterministic(t *testing.T) {
	p := NonStationary{
		Base:    flashBase(50, 5000),
		Flashes: []FlashSpec{{At: 0.3, Dur: 0.2, Files: 5, Boost: 0.5}},
	}
	a, b := p.Generate(11, 1.0), p.Generate(11, 1.0)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs across same-seed generations", i)
		}
	}
}
