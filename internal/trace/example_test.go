package trace_test

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/trace"
)

// Generating a workload and checking its Table 2 row.
func ExamplePreset_Generate() {
	tr := trace.Calgary.Generate(1, 0.01) // 1% of the request stream
	s := trace.Characterize(tr)
	fmt.Printf("files=%d requests=%d fileSet=%.0fMB\n", s.NumFiles, s.NumRequests, s.FileSetMB)
	// Output:
	// files=11821 requests=7267 fileSet=153MB
}

// Stack-distance analysis answers "what would an ideal LRU cache of size X
// hit?" — §5's theoretical maximum. Here two 100-byte files alternate: a
// 200-byte cache fits both, a 150-byte cache fits neither reuse.
func ExampleAnalyzeStack() {
	tr := &trace.Trace{
		Name: "tiny",
		Files: []trace.File{
			{ID: 0, Size: 100}, {ID: 1, Size: 100},
		},
		Requests: []block.FileID{0, 1, 0, 1},
	}
	sa := trace.AnalyzeStack(tr)
	fmt.Printf("200B cache: %.0f%%\n", sa.HitRate(200)*100)
	fmt.Printf("150B cache: %.0f%%\n", sa.HitRate(150)*100)
	// Output:
	// 200B cache: 50%
	// 150B cache: 0%
}
