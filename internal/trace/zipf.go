package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha.
// Unlike math/rand's Zipf it supports alpha ≤ 1, the regime observed for web
// document popularity (Arlitt & Williamson report Zipf-like slopes near or
// below 1).
type Zipf struct {
	cum []float64 // cumulative probabilities, cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent alpha ≥ 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("trace: Zipf over empty domain")
	}
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), alpha)
		cum[i] = sum
	}
	inv := 1.0 / sum
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1.0
	return &Zipf{cum: cum}
}

// Sample draws a rank (0 = most popular).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// P reports the probability of rank i.
func (z *Zipf) P(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// N reports the domain size.
func (z *Zipf) N() int { return len(z.cum) }
