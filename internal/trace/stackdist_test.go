package trace

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func TestAnalyzeStackTiny(t *testing.T) {
	// Files of 10 bytes each; sequence A B A B.
	tr := &Trace{
		Name:     "t",
		Files:    trace2File(10, 10),
		Requests: []block.FileID{0, 1, 0, 1},
	}
	sa := AnalyzeStack(tr)
	if sa.cold != 2 {
		t.Fatalf("cold = %d, want 2", sa.cold)
	}
	// Both reuses occupy 20 bytes (the other file + own footprint).
	if len(sa.distances) != 2 || sa.distances[0] != 20 || sa.distances[1] != 20 {
		t.Fatalf("distances = %v", sa.distances)
	}
	// A cache of 20 bytes fits both reuses: hit rate 2/4.
	if hr := sa.HitRate(20); hr != 0.5 {
		t.Fatalf("HitRate(20) = %f, want 0.5", hr)
	}
	// A cache of 10 bytes fits neither (occupancy 20 > 10).
	if hr := sa.HitRate(10); hr != 0 {
		t.Fatalf("HitRate(10) = %f, want 0", hr)
	}
	if sa.MaxHitRate() != 0.5 {
		t.Fatalf("MaxHitRate = %f", sa.MaxHitRate())
	}
}

// trace2File builds n files of the given size.
func trace2File(n int, size int64) []File {
	files := make([]File, n)
	for i := range files {
		files[i] = File{ID: block.FileID(i), Size: size}
	}
	return files
}

func TestAnalyzeStackRepeats(t *testing.T) {
	tr := &Trace{
		Name:     "t",
		Files:    trace2File(3, 100),
		Requests: []block.FileID{0, 0, 0, 0},
	}
	sa := AnalyzeStack(tr)
	if sa.cold != 1 || len(sa.distances) != 3 {
		t.Fatalf("cold=%d distances=%v", sa.cold, sa.distances)
	}
	// Immediate re-reference: occupancy = own size.
	for _, d := range sa.distances {
		if d != 100 {
			t.Fatalf("immediate reuse occupancy = %d", d)
		}
	}
	if hr := sa.HitRate(100); hr != 0.75 {
		t.Fatalf("HitRate(100) = %f, want 0.75", hr)
	}
}

func TestAnalyzeStackMatchesSimulatedLRU(t *testing.T) {
	// Cross-validate against a brute-force LRU simulation on a random
	// trace: stack-distance hit rate must equal simulated hit rate.
	rng := rand.New(rand.NewSource(7))
	nFiles := 30
	files := make([]File, nFiles)
	for i := range files {
		files[i] = File{ID: block.FileID(i), Size: int64(rng.Intn(90) + 10)}
	}
	reqs := make([]block.FileID, 3000)
	for i := range reqs {
		reqs[i] = block.FileID(rng.Intn(nFiles))
	}
	tr := &Trace{Name: "rand", Files: files, Requests: reqs}
	sa := AnalyzeStack(tr)

	for _, cacheBytes := range []int64{200, 500, 1000, 2000} {
		want := simulateLRU(tr, cacheBytes)
		got := sa.HitRate(cacheBytes)
		if diff := got - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("cache %d: stack %f vs simulated %f", cacheBytes, got, want)
		}
	}
}

// simulateLRU runs a plain whole-file LRU of the given byte capacity,
// evicting on insert until the new file fits (the inclusion-property
// variant matching the stack-distance model: a reuse hits iff the bytes
// touched since the last access are below the capacity).
func simulateLRU(tr *Trace, capacity int64) float64 {
	type node struct {
		f          block.FileID
		prev, next *node
	}
	var head, tail *node // head = MRU
	byFile := make(map[block.FileID]*node)
	var used int64
	hits := 0
	remove := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	for _, f := range tr.Requests {
		size := tr.Files[f].Size
		if n, ok := byFile[f]; ok {
			hits++
			remove(n)
			pushFront(n)
			continue
		}
		for used+size > capacity && tail != nil {
			victim := tail
			remove(victim)
			delete(byFile, victim.f)
			used -= tr.Files[victim.f].Size
		}
		if used+size <= capacity {
			n := &node{f: f}
			byFile[f] = n
			pushFront(n)
			used += size
		}
	}
	return float64(hits) / float64(len(tr.Requests))
}

func TestAnalyzeStackEmpty(t *testing.T) {
	sa := AnalyzeStack(&Trace{Name: "e", Files: trace2File(1, 1)})
	if sa.HitRate(100) != 0 || sa.ColdRate() != 0 {
		t.Fatal("empty trace should rate 0")
	}
}

func TestRutgersTheoreticalMax(t *testing.T) {
	// §5: CC's 96% hit rate for Rutgers at 512 MB total versus a
	// theoretical maximum of 99% at 494 MB (Figure 1). The stack profile
	// of the generated trace must show the same ceiling structure.
	tr := Rutgers.Generate(1, 0.3)
	sa := AnalyzeStack(tr)
	at494 := sa.HitRate(494 << 20)
	max := sa.MaxHitRate()
	if max-at494 > 0.02 {
		t.Fatalf("494MB hit %f far below ceiling %f", at494, max)
	}
	if sa.HitRate(32<<20) >= at494 {
		t.Fatal("hit rate not increasing in cache size")
	}
}
