package trace

// The four workload presets reconstruct Table 2. Digits lost to the OCR of
// the paper are filled in from the Arlitt–Williamson characterization study
// the paper cites and from Figure 1's constraints (the Rutgers file set is
// ≈579 MB with ≈494 MB covering 99% of requests). See DESIGN.md.
var (
	// Calgary: the smallest working set; hot files are smaller than average
	// (avg request 9.1 KB < avg file 13.2 KB).
	Calgary = Preset{
		Name:         "calgary",
		NumFiles:     11821,
		FileSetBytes: 153 << 20,
		NumRequests:  726739,
		AvgReqKB:     9.1,
		Alpha:        0.85,
		SizeSigma:    1.2,
	}
	// Clarknet: a commercial ISP trace; many small hot files.
	Clarknet = Preset{
		Name:         "clarknet",
		NumFiles:     32300,
		FileSetBytes: 404 << 20,
		NumRequests:  1673794,
		AvgReqKB:     7.9,
		Alpha:        0.85,
		SizeSigma:    1.2,
	}
	// NASA: Kennedy Space Center; larger files, request size ≈ file size.
	NASA = Preset{
		Name:         "nasa",
		NumFiles:     20836,
		FileSetBytes: 396 << 20,
		NumRequests:  3461612,
		AvgReqKB:     20.4,
		Alpha:        0.80,
		SizeSigma:    1.2,
	}
	// Rutgers: the largest working set (Figure 1); hot files are larger
	// than average (avg request 27.1 KB > avg file 15.6 KB) and popularity
	// is skewed such that 99% of requests need ≈494 MB of cache.
	Rutgers = Preset{
		Name:         "rutgers",
		NumFiles:     38000,
		FileSetBytes: 579 << 20,
		NumRequests:  498646,
		AvgReqKB:     27.1,
		Alpha:        0.95,
		SizeSigma:    1.2,
	}
)

// Presets lists the four paper workloads in the order of Table 2.
var Presets = []Preset{Calgary, Clarknet, NASA, Rutgers}

// PresetByName looks up a preset; ok is false for unknown names.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
