package trace

import (
	"math"
	"testing"
)

// genScale keeps the calibration tests fast while leaving enough requests
// for stable averages.
const genScale = 0.1

func TestGenerateValidates(t *testing.T) {
	for _, p := range Presets {
		tr := p.Generate(1, genScale)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Calgary.Generate(7, 0.01)
	b := Calgary.Generate(7, 0.01)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("request counts differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Calgary.Generate(1, 0.01)
	b := Calgary.Generate(2, 0.01)
	same := 0
	for i := range a.Requests {
		if a.Requests[i] == b.Requests[i] {
			same++
		}
	}
	if same == len(a.Requests) {
		t.Fatal("different seeds produced identical request streams")
	}
}

func TestTable2FileSetSizes(t *testing.T) {
	for _, p := range Presets {
		tr := p.Generate(1, 0.01)
		got := tr.FileSetBytes()
		// Exact up to the minimum-size floor; allow 2%.
		if math.Abs(float64(got-p.FileSetBytes)) > 0.02*float64(p.FileSetBytes) {
			t.Errorf("%s: file set %d bytes, want %d", p.Name, got, p.FileSetBytes)
		}
		if len(tr.Files) != p.NumFiles {
			t.Errorf("%s: %d files, want %d", p.Name, len(tr.Files), p.NumFiles)
		}
	}
}

func TestTable2AvgRequestSize(t *testing.T) {
	for _, p := range Presets {
		tr := p.Generate(1, genScale)
		s := Characterize(tr)
		// The popularity↔size calibration should land within 15% of the
		// Table 2 target at this sample size.
		if math.Abs(s.AvgReqKB-p.AvgReqKB) > 0.15*p.AvgReqKB {
			t.Errorf("%s: avg request %.1fKB, want ~%.1fKB", p.Name, s.AvgReqKB, p.AvgReqKB)
		}
	}
}

func TestScaleControlsRequestCount(t *testing.T) {
	tr := NASA.Generate(1, 0.01)
	want := int(0.01 * float64(NASA.NumRequests))
	if tr.Requests == nil || len(tr.Requests) != want {
		t.Fatalf("requests = %d, want %d", len(tr.Requests), want)
	}
	full := Calgary.Generate(1, 1.0)
	if len(full.Requests) != Calgary.NumRequests {
		t.Fatalf("full-scale requests = %d, want %d", len(full.Requests), Calgary.NumRequests)
	}
}

func TestFigure1RutgersCoverage(t *testing.T) {
	// Figure 1: caching 99% of the Rutgers trace's requests needs ≈494 MB.
	// Coverage must be measured on the full request stream: at reduced
	// scales cold files receive no requests and coverage shrinks.
	tr := Rutgers.Generate(1, 1.0)
	got := float64(BytesForCoverage(tr, 0.99)) / (1 << 20)
	if got < 455 || got > 535 {
		t.Fatalf("99%% coverage needs %.0fMB, want ≈494MB (±8%%)", got)
	}
}

func TestFigure1CDFShape(t *testing.T) {
	tr := Rutgers.Generate(1, genScale)
	pts := CDF(tr, 50)
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	// Monotone nondecreasing in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].CumReqFrac < pts[i-1].CumReqFrac || pts[i].CumMB < pts[i-1].CumMB {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.CumReqFrac < 0.9999 {
		t.Fatalf("final CumReqFrac = %f, want 1", last.CumReqFrac)
	}
	if math.Abs(last.CumMB-579) > 15 {
		t.Fatalf("final CumMB = %.0f, want ≈579", last.CumMB)
	}
	// Popularity skew: the hottest 10% of files must draw well over 10% of
	// requests (Figure 1's sharp initial rise).
	for _, pt := range pts {
		if pt.FileFrac >= 0.10 {
			if pt.CumReqFrac < 0.4 {
				t.Fatalf("top %.0f%% of files draw only %.0f%% of requests",
					pt.FileFrac*100, pt.CumReqFrac*100)
			}
			break
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(1000, 0.85)
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
	// Probabilities sum to 1 and are decreasing.
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		p := z.P(i)
		if p <= 0 {
			t.Fatalf("P(%d) = %f", i, p)
		}
		if i > 0 && p > z.P(i-1)+1e-12 {
			t.Fatalf("P(%d)=%g > P(%d)=%g", i, p, i-1, z.P(i-1))
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ΣP = %f", sum)
	}
}

func TestZipfSampleMatchesP(t *testing.T) {
	z := NewZipf(100, 0.85)
	rng := newTestRand(42)
	const n = 200000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for _, r := range []int{0, 1, 10, 50} {
		want := z.P(r) * n
		got := float64(counts[r])
		if math.Abs(got-want) > 5*math.Sqrt(want)+10 {
			t.Errorf("rank %d sampled %v times, expected ≈%.0f", r, got, want)
		}
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	assertPanics(t, "zero scale", func() { Calgary.Generate(1, 0) })
	assertPanics(t, "scale > 1", func() { Calgary.Generate(1, 1.5) })
	assertPanics(t, "empty preset", func() { (Preset{}).Generate(1, 1) })
	assertPanics(t, "empty zipf", func() { NewZipf(0, 1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
