package trace

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/block"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func tinyTrace() *Trace {
	return &Trace{
		Name: "tiny",
		Files: []File{
			{ID: 0, Size: 10 * 1024},
			{ID: 1, Size: 20 * 1024},
			{ID: 2, Size: 30 * 1024},
		},
		Requests: []block.FileID{0, 0, 0, 1, 1, 2},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := map[string]*Trace{
		"empty":      {Name: "x"},
		"sparse ids": {Name: "x", Files: []File{{ID: 5, Size: 1}}},
		"neg size":   {Name: "x", Files: []File{{ID: 0, Size: -1}}},
		"out of range": {
			Name:     "x",
			Files:    []File{{ID: 0, Size: 1}},
			Requests: []block.FileID{3},
		},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCharacterize(t *testing.T) {
	s := Characterize(tinyTrace())
	if s.NumFiles != 3 || s.NumRequests != 6 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AvgFileKB != 20 {
		t.Fatalf("AvgFileKB = %f, want 20", s.AvgFileKB)
	}
	// (3·10 + 2·20 + 30)/6 KB = 100/6.
	if want := 100.0 / 6; s.AvgReqKB < want-0.01 || s.AvgReqKB > want+0.01 {
		t.Fatalf("AvgReqKB = %f, want %f", s.AvgReqKB, want)
	}
	if !strings.Contains(s.String(), "tiny") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestBytesForCoverageTiny(t *testing.T) {
	tr := tinyTrace()
	// File 0 alone covers 3/6 = 50%.
	if got := BytesForCoverage(tr, 0.5); got != 10*1024 {
		t.Fatalf("50%% coverage = %d bytes, want 10KB", got)
	}
	// 100% needs all files.
	if got := BytesForCoverage(tr, 1.0); got != 60*1024 {
		t.Fatalf("100%% coverage = %d bytes, want 60KB", got)
	}
}

func TestCDFTiny(t *testing.T) {
	pts := CDF(tinyTrace(), 3)
	last := pts[len(pts)-1]
	if last.CumReqFrac != 1 || last.CumMB*1024*1024 != 60*1024 {
		t.Fatalf("final point %+v", last)
	}
}

func TestParseCLF(t *testing.T) {
	log := strings.Join([]string{
		`host1 - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 1024`,
		`host2 - - [01/Jul/1995:00:00:02 -0400] "GET /b.gif HTTP/1.0" 200 2048`,
		`host1 - - [01/Jul/1995:00:00:03 -0400] "GET /a.html HTTP/1.0" 304 -`,
		`host3 - - [01/Jul/1995:00:00:04 -0400] "GET /missing HTTP/1.0" 404 99`,
		`host4 - - [01/Jul/1995:00:00:05 -0400] "POST /form HTTP/1.0" 200 10`,
		`garbage line without quotes`,
		`host5 - - [01/Jul/1995:00:00:06 -0400] "GET /a.html?q=1 HTTP/1.0" 200 1024`,
	}, "\n")
	tr, err := ParseCLF("test", strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Files) != 2 {
		t.Fatalf("files = %d, want 2 (a.html, b.gif)", len(tr.Files))
	}
	if len(tr.Requests) != 4 {
		t.Fatalf("requests = %d, want 4", len(tr.Requests))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Files[0].Size != 1024 || tr.Files[1].Size != 2048 {
		t.Fatalf("sizes: %+v", tr.Files)
	}
}

// TestParseCLFTable pins the size-defining-status semantics: only a 200
// with an explicit byte count creates/sizes a file; 304s (and 200s logged
// with "-") count as requests only for paths sized elsewhere in the log,
// and paths never sized are dropped rather than replayed as empty files.
func TestParseCLFTable(t *testing.T) {
	cases := []struct {
		name    string
		log     []string
		wantErr bool
		files   int
		reqs    int
		sizes   []int64
	}{
		{
			name:    "304-only path yields no files",
			log:     []string{`h - - [d] "GET /cached HTTP/1.0" 304 -`},
			wantErr: true,
		},
		{
			name: "304 before the sizing 200 still counts",
			log: []string{
				`h - - [d] "GET /a HTTP/1.0" 304 -`,
				`h - - [d] "GET /a HTTP/1.0" 200 512`,
			},
			files: 1, reqs: 2, sizes: []int64{512},
		},
		{
			name: "never-sized path dropped among sized ones",
			log: []string{
				`h - - [d] "GET /a HTTP/1.0" 200 100`,
				`h - - [d] "GET /ghost HTTP/1.0" 304 -`,
				`h - - [d] "GET /a HTTP/1.0" 304 -`,
				`h - - [d] "GET /b HTTP/1.0" 200 200`,
				`h - - [d] "GET /ghost HTTP/1.0" 304 -`,
			},
			files: 2, reqs: 3, sizes: []int64{100, 200},
		},
		{
			name: "200 without byte count does not size a file",
			log: []string{
				`h - - [d] "GET /nosize HTTP/1.0" 200 -`,
				`h - - [d] "GET /a HTTP/1.0" 200 42`,
			},
			files: 1, reqs: 1, sizes: []int64{42},
		},
		{
			name: "escaped quote inside the request field",
			log: []string{
				`h - - [d] "GET /weird\"name HTTP/1.0" 200 77`,
			},
			files: 1, reqs: 1, sizes: []int64{77},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseCLF("tbl", strings.NewReader(strings.Join(tc.log, "\n")))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected error, got %+v", tr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(tr.Files) != tc.files || len(tr.Requests) != tc.reqs {
				t.Fatalf("files=%d reqs=%d, want %d/%d", len(tr.Files), len(tr.Requests), tc.files, tc.reqs)
			}
			for i, want := range tc.sizes {
				if tr.Files[i].Size != want {
					t.Fatalf("file %d size = %d, want %d", i, tr.Files[i].Size, want)
				}
			}
		})
	}
}

func TestParseCLFLineEscapedQuote(t *testing.T) {
	path, st, size, ok := parseCLFLine(`h - - [d] "GET /e\"q HTTP/1.0" 200 9`)
	if !ok || st != 200 || size != 9 || path != `/e\"q` {
		t.Fatalf("got %q %d %d %v", path, st, size, ok)
	}
	if _, st, size, ok := parseCLFLine(`h - - [d] "GET /x HTTP/1.0" 304 -`); !ok || st != 304 || size != -1 {
		t.Fatalf("304 '-': got %d %d %v, want 304 -1 true", st, size, ok)
	}
}

func TestParseCLFEmpty(t *testing.T) {
	if _, err := ParseCLF("x", strings.NewReader("nothing useful")); err == nil {
		t.Fatal("expected error for unusable input")
	}
}

func TestParseCLFLine(t *testing.T) {
	path, st, size, ok := parseCLFLine(`h - - [d] "GET /x HTTP/1.0" 200 42`)
	if !ok || path != "/x" || st != 200 || size != 42 {
		t.Fatalf("got %q %d %d %v", path, st, size, ok)
	}
	if _, _, _, ok := parseCLFLine(`h - - [d] "HEAD /x HTTP/1.0" 200 42`); ok {
		t.Fatal("HEAD accepted")
	}
	if _, _, _, ok := parseCLFLine(`h - - [d] "GET /x HTTP/1.0" xyz 42`); ok {
		t.Fatal("bad status accepted")
	}
}

func TestPresetByName(t *testing.T) {
	p, ok := PresetByName("rutgers")
	if !ok || p.Name != "rutgers" {
		t.Fatalf("lookup failed: %+v %v", p, ok)
	}
	if _, ok := PresetByName("nope"); ok {
		t.Fatal("unknown preset found")
	}
}
