package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/block"
)

// The binary trace format lets generated workloads be saved and replayed
// byte-identically across machines and runs:
//
//	magic "CCTR" | version u16 | nameLen u16 | name |
//	nFiles u32 | sizes (varint each) |
//	nRequests u32 | file IDs (varint-delta each)
const (
	traceMagic   = "CCTR"
	traceVersion = 1
)

// WriteBinary serializes t.
func WriteBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeU16 := func(v uint16) error {
		binary.BigEndian.PutUint16(buf[:2], v)
		_, err := bw.Write(buf[:2])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.BigEndian.PutUint32(buf[:4], v)
		_, err := bw.Write(buf[:4])
		return err
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeU16(traceVersion); err != nil {
		return err
	}
	if len(t.Name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long")
	}
	if err := writeU16(uint16(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Files))); err != nil {
		return err
	}
	for _, f := range t.Files {
		if err := writeUvarint(uint64(f.Size)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(t.Requests))); err != nil {
		return err
	}
	for _, id := range t.Requests {
		if err := writeUvarint(uint64(id)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readU16 := func() (uint16, error) {
		b := make([]byte, 2)
		if _, err := io.ReadFull(br, b); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint16(b), nil
	}
	readU32 := func() (uint32, error) {
		b := make([]byte, 4)
		if _, err := io.ReadFull(br, b); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(b), nil
	}
	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := readU16()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	nFiles, err := readU32()
	if err != nil {
		return nil, err
	}
	// Sanity caps keep a corrupt header from demanding a giant allocation
	// before the varint stream inevitably fails.
	const maxFiles, maxRequests = 1 << 26, 1 << 29
	if nFiles > maxFiles {
		return nil, fmt.Errorf("trace: implausible file count %d", nFiles)
	}
	t.Files = make([]File, nFiles)
	for i := range t.Files {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: file %d size: %w", i, err)
		}
		t.Files[i] = File{ID: block.FileID(i), Size: int64(size)}
	}
	nReq, err := readU32()
	if err != nil {
		return nil, err
	}
	if nReq > maxRequests {
		return nil, fmt.Errorf("trace: implausible request count %d", nReq)
	}
	t.Requests = make([]block.FileID, nReq)
	for i := range t.Requests {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		t.Requests[i] = block.FileID(id)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
