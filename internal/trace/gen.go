package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/block"
)

// Preset parameterizes a synthetic trace calibrated to one of the paper's
// four workloads (Table 2). The generator enforces the file count, total
// file-set size, request count, average request size, and a Zipf-like
// popularity skew — the aggregate properties the caching experiments depend
// on (see DESIGN.md, substitution 1).
type Preset struct {
	Name         string
	NumFiles     int
	FileSetBytes int64
	NumRequests  int
	// AvgReqKB is the target mean request size in KB; the generator
	// calibrates the popularity↔size correlation to hit it.
	AvgReqKB float64
	// Alpha is the Zipf popularity exponent.
	Alpha float64
	// SizeSigma is the lognormal shape of the file size distribution.
	SizeSigma float64
	// TemporalBias in [0,1) mixes short-term locality into the otherwise
	// IID request stream: with this probability a request re-references
	// one of the last temporalWindow requests instead of sampling the
	// Zipf distribution. The paper presets leave it 0 (popularity skew is
	// what the experiments depend on); it is available for sensitivity
	// studies since real traces carry temporal locality.
	TemporalBias float64
}

// temporalWindow is the LRU-stack depth of the temporal-locality model.
const temporalWindow = 256

// Generate builds the synthetic trace. scale in (0,1] scales the request
// count (the file set is never scaled, since working-set size versus cluster
// memory is the experimental variable). The same seed yields an identical
// trace.
func (p Preset) Generate(seed int64, scale float64) *Trace {
	if p.NumFiles <= 0 || p.FileSetBytes <= 0 || p.NumRequests <= 0 {
		panic(fmt.Sprintf("trace: invalid preset %+v", p))
	}
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("trace: scale %v out of (0,1]", scale))
	}
	rng := rand.New(rand.NewSource(seed))
	n := p.NumFiles

	// 1. Raw lognormal sizes (heavy-tailed, as in the Arlitt–Williamson
	// characterization).
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = math.Exp(rng.NormFloat64() * p.SizeSigma)
	}

	// 2. Assign sizes to popularity ranks with a *partial* rank correlation:
	// a blend of sorted-by-rank and random assignment, calibrated so the
	// expected request size hits the Table 2 target. The random component is
	// essential for Figure 1's shape — real traces keep substantial bytes in
	// rarely-requested files ("one-timers"), so the cold tail must retain
	// large files.
	z := NewZipf(n, p.Alpha)
	avgFileKB := float64(p.FileSetBytes) / 1024 / float64(n)
	targetRatio := p.AvgReqKB / avgFileKB
	sizes := calibrateAssignment(rng, z, raw, targetRatio)

	// 3. Normalize to the exact file-set size, with a floor so no file is
	// degenerate.
	var sum float64
	for _, s := range sizes {
		sum += s
	}
	factor := float64(p.FileSetBytes) / sum
	const minSize = 128
	byteSizes := make([]int64, n)
	var total int64
	for r, s := range sizes {
		b := int64(s * factor)
		if b < minSize {
			b = minSize
		}
		byteSizes[r] = b
		total += b
	}
	// Absorb rounding drift into the largest file.
	maxIdx := 0
	for r, b := range byteSizes {
		if b > byteSizes[maxIdx] {
			maxIdx = r
		}
	}
	if drift := p.FileSetBytes - total; byteSizes[maxIdx]+drift >= minSize {
		byteSizes[maxIdx] += drift
	}

	// 4. Scatter ranks over file IDs so popularity is uncorrelated with the
	// ID-based home-node assignment.
	rankToFile := rng.Perm(n)
	files := make([]File, n)
	for r, id := range rankToFile {
		files[id] = File{ID: block.FileID(id), Size: byteSizes[r]}
	}

	// 5. Draw the request stream, optionally mixing in short-term temporal
	// locality by re-referencing the recent-request window.
	if p.TemporalBias < 0 || p.TemporalBias >= 1 {
		panic(fmt.Sprintf("trace: TemporalBias %v out of [0,1)", p.TemporalBias))
	}
	nreq := int(float64(p.NumRequests) * scale)
	if nreq < 1 {
		nreq = 1
	}
	reqs := make([]block.FileID, nreq)
	for i := range reqs {
		if p.TemporalBias > 0 && i > 0 && rng.Float64() < p.TemporalBias {
			back := rng.Intn(min(i, temporalWindow)) + 1
			reqs[i] = reqs[i-back]
			continue
		}
		reqs[i] = block.FileID(rankToFile[z.Sample(rng)])
	}

	return &Trace{Name: p.Name, Files: files, Requests: reqs}
}

// calibrateAssignment maps raw sizes onto popularity ranks so that
// Σ p_r·size_r / mean(size) ≈ targetRatio. For blend weight w ∈ [-1,1] each
// rank r gets the key w·(r/n) + (1−|w|)·u_r with fixed uniform noise u_r;
// sizes sorted descending are assigned to keys sorted ascending. w=+1 gives
// hot-files-largest, w=−1 hot-files-smallest, w=0 random. The expected
// request size is monotone in w up to noise, so a bisection over w finds
// the calibrated assignment.
func calibrateAssignment(rng *rand.Rand, z *Zipf, raw []float64, targetRatio float64) []float64 {
	n := len(raw)
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.Float64()
	}
	desc := make([]float64, n)
	copy(desc, raw)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))

	probs := make([]float64, n)
	for r := range probs {
		probs[r] = z.P(r)
	}
	mean := 0.0
	for _, s := range raw {
		mean += s
	}
	mean /= float64(n)

	order := make([]int, n)
	keys := make([]float64, n)
	assign := func(w float64) []float64 {
		for r := 0; r < n; r++ {
			keys[r] = w*float64(r)/float64(n) + (1-math.Abs(w))*noise[r]
			order[r] = r
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
		sizes := make([]float64, n)
		for i, r := range order {
			sizes[r] = desc[i]
		}
		return sizes
	}
	ratio := func(sizes []float64) float64 {
		var req float64
		for r := 0; r < n; r++ {
			req += probs[r] * sizes[r]
		}
		return req / mean
	}

	lo, hi := -1.0, 1.0
	sizes := assign(lo)
	if targetRatio <= ratio(sizes) {
		return sizes
	}
	sizes = assign(hi)
	if targetRatio >= ratio(sizes) {
		return sizes
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		sizes = assign(mid)
		if ratio(sizes) < targetRatio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return assign((lo + hi) / 2)
}
