package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/block"
)

// ParseCLF reads a web server access log in Common Log Format
// ("host ident user [date] \"METHOD /path PROTO\" status bytes") and builds
// a Trace: each distinct successfully served path becomes a file (sized by
// the largest response observed for it) and each GET of it becomes a
// request. This lets the original Calgary/Clarknet/NASA/Rutgers traces be
// dropped into the harness when available; the synthetic presets are the
// offline substitute.
func ParseCLF(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	type info struct {
		id   block.FileID
		size int64
	}
	byPath := make(map[string]*info)
	t := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		path, status, size, ok := parseCLFLine(sc.Text())
		if !ok {
			continue // malformed or non-GET lines are skipped, as in the characterization studies
		}
		if status != 200 && status != 304 {
			continue
		}
		fi, seen := byPath[path]
		if !seen {
			fi = &info{id: block.FileID(len(t.Files))}
			byPath[path] = fi
			t.Files = append(t.Files, File{ID: fi.id})
		}
		if size > fi.size {
			fi.size = size
			t.Files[fi.id].Size = size
		}
		t.Requests = append(t.Requests, fi.id)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CLF at line %d: %w", lineNo, err)
	}
	if len(t.Files) == 0 {
		return nil, fmt.Errorf("trace: no usable requests in CLF input")
	}
	return t, nil
}

// parseCLFLine extracts (path, status, bytes) from one CLF line. ok is false
// for lines that are malformed or not GETs.
func parseCLFLine(line string) (path string, status int, size int64, ok bool) {
	// The request field is the first quoted string.
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return "", 0, 0, false
	}
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return "", 0, 0, false
	}
	req := line[q1+1 : q1+1+q2]
	rest := strings.Fields(line[q1+q2+2:])
	if len(rest) < 2 {
		return "", 0, 0, false
	}
	parts := strings.Fields(req)
	if len(parts) < 2 || parts[0] != "GET" {
		return "", 0, 0, false
	}
	path = parts[1]
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	st, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", 0, 0, false
	}
	var sz int64
	if rest[1] != "-" {
		sz, err = strconv.ParseInt(rest[1], 10, 64)
		if err != nil || sz < 0 {
			return "", 0, 0, false
		}
	}
	return path, st, sz, true
}
