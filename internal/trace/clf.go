package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/block"
)

// ParseCLF reads a web server access log in Common Log Format
// ("host ident user [date] \"METHOD /path PROTO\" status bytes") and builds
// a Trace: each distinct path with at least one size-defining response (a
// 200 carrying a byte count) becomes a file, sized by the largest such
// response, and each successful GET of it (200 or 304) becomes a request.
// Paths observed only as 304s never learn a size — replaying them as
// zero-byte files would skew hit rates and byte counts — so they are
// dropped entirely. This lets the original Calgary/Clarknet/NASA/Rutgers
// traces be dropped into the harness when available; the synthetic presets
// are the offline substitute.
func ParseCLF(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	type info struct {
		id    block.FileID
		size  int64
		sized bool
	}
	byPath := make(map[string]*info)
	var sized []*info // paths in the order they first became sized
	var reqs []*info  // the request stream, in log order
	lineNo := 0
	for sc.Scan() {
		lineNo++
		path, status, size, ok := parseCLFLine(sc.Text())
		if !ok {
			continue // malformed or non-GET lines are skipped, as in the characterization studies
		}
		if status != 200 && status != 304 {
			continue
		}
		fi, seen := byPath[path]
		if !seen {
			fi = &info{}
			byPath[path] = fi
		}
		// Only a 200 with an explicit byte count defines the file's size; a
		// 304 (or a 200 logged with "-") is a request of the path, admitted
		// below only if some other response sized it.
		if status == 200 && size >= 0 {
			if !fi.sized {
				fi.sized = true
				sized = append(sized, fi)
			}
			if size > fi.size {
				fi.size = size
			}
		}
		reqs = append(reqs, fi)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CLF at line %d: %w", lineNo, err)
	}
	t := &Trace{Name: name}
	for i, fi := range sized {
		fi.id = block.FileID(i)
		t.Files = append(t.Files, File{ID: fi.id, Size: fi.size})
	}
	for _, fi := range reqs {
		if fi.sized {
			t.Requests = append(t.Requests, fi.id)
		}
	}
	if len(t.Files) == 0 {
		return nil, fmt.Errorf("trace: no usable requests in CLF input")
	}
	return t, nil
}

// parseCLFLine extracts (path, status, bytes) from one CLF line. ok is false
// for lines that are malformed or not GETs. size is -1 when the byte count
// is logged as "-" (no body, e.g. a 304).
func parseCLFLine(line string) (path string, status int, size int64, ok bool) {
	// The request field is the first quoted string. Some servers escape
	// embedded quotes as \" — skip escaped characters when scanning for the
	// closing quote so such lines don't truncate mid-field.
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return "", 0, 0, false
	}
	q2 := -1
	for i := q1 + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			i++
		case '"':
			q2 = i
		}
		if q2 >= 0 {
			break
		}
	}
	if q2 < 0 {
		return "", 0, 0, false
	}
	req := line[q1+1 : q2]
	rest := strings.Fields(line[q2+1:])
	if len(rest) < 2 {
		return "", 0, 0, false
	}
	parts := strings.Fields(req)
	if len(parts) < 2 || parts[0] != "GET" {
		return "", 0, 0, false
	}
	path = parts[1]
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	st, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", 0, 0, false
	}
	size = -1
	if rest[1] != "-" {
		size, err = strconv.ParseInt(rest[1], 10, 64)
		if err != nil || size < 0 {
			return "", 0, 0, false
		}
	}
	return path, st, size, true
}
