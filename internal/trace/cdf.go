package trace

import "sort"

// CDFPoint is one point of the Figure 1 curves: after taking the hottest
// files covering FileFrac of the file set (sorted by decreasing request
// frequency), CumReqFrac of all requests hit those files and they occupy
// CumMB of memory.
type CDFPoint struct {
	FileFrac   float64
	CumReqFrac float64
	CumMB      float64
}

// CDF computes the Figure 1 curves for t at the given number of sample
// points (plus the final point at 100% of files).
func CDF(t *Trace, points int) []CDFPoint {
	counts := requestCounts(t)
	order := popularityOrder(t, counts)

	n := len(order)
	totalReq := float64(len(t.Requests))
	if totalReq == 0 {
		totalReq = 1
	}
	var out []CDFPoint
	var cumReq int64
	var cumBytes int64
	next := 1
	step := n / points
	if step < 1 {
		step = 1
	}
	for i, id := range order {
		cumReq += counts[id]
		cumBytes += t.Files[id].Size
		if i+1 == next*step || i == n-1 {
			out = append(out, CDFPoint{
				FileFrac:   float64(i+1) / float64(n),
				CumReqFrac: float64(cumReq) / totalReq,
				CumMB:      float64(cumBytes) / (1 << 20),
			})
			next++
		}
	}
	return out
}

// BytesForCoverage reports how many bytes of the hottest files are needed to
// cover frac of all requests — e.g. Figure 1's observation that 494 MB
// covers 99% of the Rutgers trace's requests.
func BytesForCoverage(t *Trace, frac float64) int64 {
	counts := requestCounts(t)
	order := popularityOrder(t, counts)
	target := int64(frac * float64(len(t.Requests)))
	var cumReq, cumBytes int64
	for _, id := range order {
		cumReq += counts[id]
		cumBytes += t.Files[id].Size
		if cumReq >= target {
			break
		}
	}
	return cumBytes
}

func requestCounts(t *Trace) []int64 {
	counts := make([]int64, len(t.Files))
	for _, id := range t.Requests {
		counts[id]++
	}
	return counts
}

func popularityOrder(t *Trace, counts []int64) []int {
	order := make([]int, len(t.Files))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
