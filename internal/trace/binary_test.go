package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/block"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := Calgary.Generate(1, 0.01)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Files) != len(tr.Files) || len(got.Requests) != len(tr.Requests) {
		t.Fatalf("shape mismatch: %s %d/%d", got.Name, len(got.Files), len(got.Requests))
	}
	for i := range tr.Files {
		if got.Files[i] != tr.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(name string, sizes []uint32, reqSeed []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(name) > 1000 {
			name = name[:1000]
		}
		tr := &Trace{Name: name}
		for i, s := range sizes {
			tr.Files = append(tr.Files, File{ID: block.FileID(i), Size: int64(s)})
		}
		for _, r := range reqSeed {
			tr.Requests = append(tr.Requests, block.FileID(int(r)%len(sizes)))
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Name != tr.Name || len(got.Files) != len(tr.Files) || len(got.Requests) != len(tr.Requests) {
			return false
		}
		for i := range tr.Requests {
			if got.Requests[i] != tr.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("CC")); err == nil {
		t.Fatal("short input accepted")
	}
	// Valid magic, bad version.
	var buf bytes.Buffer
	buf.WriteString("CCTR")
	buf.Write([]byte{0xFF, 0xFF})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteBinaryValidates(t *testing.T) {
	bad := &Trace{Name: "x"} // empty file set
	if err := WriteBinary(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid trace written")
	}
}

func TestTemporalBiasIncreasesLocality(t *testing.T) {
	// Measure re-reference rate within a short window with and without
	// temporal bias.
	reref := func(bias float64) float64 {
		p := Calgary
		p.TemporalBias = bias
		tr := p.Generate(1, 0.05)
		const win = 64
		hits := 0
		recent := make(map[block.FileID]int)
		for i, f := range tr.Requests {
			if last, ok := recent[f]; ok && i-last <= win {
				hits++
			}
			recent[f] = i
		}
		return float64(hits) / float64(len(tr.Requests))
	}
	base := reref(0)
	biased := reref(0.5)
	if biased <= base+0.1 {
		t.Fatalf("temporal bias had no effect: base=%.3f biased=%.3f", base, biased)
	}
}

func TestTemporalBiasValidation(t *testing.T) {
	p := Calgary
	p.TemporalBias = 1.5
	assertPanics(t, "bias out of range", func() { p.Generate(1, 0.001) })
}
