package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary hardens the trace decoder: arbitrary input must yield an
// error or a valid trace, never a panic or runaway allocation.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	tr := &Trace{Name: "seed", Files: trace2File(3, 100)}
	tr.Requests = append(tr.Requests, 0, 1, 2, 1)
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CCTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder returned invalid trace: %v", err)
		}
	})
}

// FuzzParseCLF hardens the access-log parser against arbitrary log lines.
func FuzzParseCLF(f *testing.F) {
	f.Add(`host - - [date] "GET /a HTTP/1.0" 200 100`)
	f.Add(`garbage`)
	f.Add(`h - - [d] "GET /x?q=1 HTTP/1.0" 304 -`)
	f.Add("\"\"\"")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseCLF("fuzz", strings.NewReader(line))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parser returned invalid trace: %v", err)
		}
	})
}
