package trace

import (
	"sort"

	"repro/internal/block"
)

// StackAnalysis holds the LRU stack-distance profile of a trace: for any
// cache size it yields the hit rate an ideal single LRU cache of that size
// would achieve. §5 uses exactly this notion as the "theoretical maximum"
// a cluster cache can approach (e.g. 99% for Rutgers at 494 MB, against
// which the paper's 96% measured hit rate is judged).
//
// Distances are computed in *bytes*: a request's reuse distance is the
// total size of distinct files touched since the previous access to the
// same file. Cold (first) accesses are infinite-distance.
type StackAnalysis struct {
	// distances holds the finite reuse distances in bytes, sorted.
	distances []int64
	// cold is the number of first accesses (compulsory misses).
	cold int
	// total is the number of requests analyzed.
	total int
}

// AnalyzeStack computes the byte-weighted LRU stack-distance profile of t
// in O(n log n) using an order-statistics tree (Fenwick tree over access
// recency, weighted by file size).
func AnalyzeStack(t *Trace) *StackAnalysis {
	n := len(t.Requests)
	sa := &StackAnalysis{total: n}
	if n == 0 {
		return sa
	}
	// Fenwick tree indexed by request position (1-based); tree[i] carries
	// the file size if position i is the most recent access of its file.
	tree := make([]int64, n+1)
	add := func(i int, v int64) {
		for ; i <= n; i += i & -i {
			tree[i] += v
		}
	}
	sum := func(i int) int64 {
		var s int64
		for ; i > 0; i -= i & -i {
			s += tree[i]
		}
		return s
	}

	last := make(map[block.FileID]int, len(t.Files))
	for i, f := range t.Requests {
		pos := i + 1
		size := t.Files[f].Size
		if prev, seen := last[f]; seen {
			// Bytes of distinct files accessed strictly after prev, plus
			// the file's own footprint: the occupancy an LRU cache needs
			// for this reuse to hit.
			dist := sum(n) - sum(prev) + size
			sa.distances = append(sa.distances, dist)
			add(prev, -size)
		} else {
			sa.cold++
		}
		add(pos, size)
		last[f] = pos
	}
	sort.Slice(sa.distances, func(a, b int) bool { return sa.distances[a] < sa.distances[b] })
	return sa
}

// HitRate reports the hit rate of an ideal LRU cache of cacheBytes: the
// fraction of requests whose reuse distance fits.
func (sa *StackAnalysis) HitRate(cacheBytes int64) float64 {
	if sa.total == 0 {
		return 0
	}
	// A reuse hits iff its occupancy distance fits in the cache.
	idx := sort.Search(len(sa.distances), func(i int) bool {
		return sa.distances[i] > cacheBytes
	})
	return float64(idx) / float64(sa.total)
}

// ColdRate reports the compulsory miss fraction (the hit-rate ceiling is
// 1 − ColdRate at infinite cache).
func (sa *StackAnalysis) ColdRate() float64 {
	if sa.total == 0 {
		return 0
	}
	return float64(sa.cold) / float64(sa.total)
}

// MaxHitRate is the infinite-cache hit rate (1 − ColdRate).
func (sa *StackAnalysis) MaxHitRate() float64 { return 1 - sa.ColdRate() }
