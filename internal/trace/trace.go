// Package trace provides the web workloads that drive the simulator: the
// in-memory trace representation, synthetic generators calibrated to the
// four traces of Table 2 (Calgary, Clarknet, NASA, Rutgers), a Common Log
// Format parser for real traces, and the characterization used for Table 2
// and Figure 1.
package trace

import (
	"fmt"

	"repro/internal/block"
)

// File describes one file of the served file set.
type File struct {
	ID   block.FileID
	Size int64 // bytes
}

// Trace is a read-only request stream over a file set. Requests are whole
// files (the web server use case of the paper).
type Trace struct {
	Name     string
	Files    []File
	Requests []block.FileID
}

// FileSetBytes reports the total size of the file set.
func (t *Trace) FileSetBytes() int64 {
	var sum int64
	for _, f := range t.Files {
		sum += f.Size
	}
	return sum
}

// RequestBytes reports the total bytes requested by the trace.
func (t *Trace) RequestBytes() int64 {
	var sum int64
	for _, id := range t.Requests {
		sum += t.Files[id].Size
	}
	return sum
}

// Size returns the size of file id.
func (t *Trace) Size(id block.FileID) int64 { return t.Files[id].Size }

// Validate checks internal consistency: file IDs dense and ordered, every
// request within range, no empty file set.
func (t *Trace) Validate() error {
	if len(t.Files) == 0 {
		return fmt.Errorf("trace %q: empty file set", t.Name)
	}
	for i, f := range t.Files {
		if f.ID != block.FileID(i) {
			return fmt.Errorf("trace %q: file %d has ID %d (must be dense)", t.Name, i, f.ID)
		}
		if f.Size < 0 {
			return fmt.Errorf("trace %q: file %d has negative size", t.Name, i)
		}
	}
	for i, id := range t.Requests {
		if int(id) < 0 || int(id) >= len(t.Files) {
			return fmt.Errorf("trace %q: request %d references file %d of %d", t.Name, i, id, len(t.Files))
		}
	}
	return nil
}

// Stats summarizes a trace in the units of Table 2.
type Stats struct {
	Name        string
	NumFiles    int
	AvgFileKB   float64
	NumRequests int
	AvgReqKB    float64
	FileSetMB   float64
}

// Characterize computes the Table 2 row for t.
func Characterize(t *Trace) Stats {
	s := Stats{Name: t.Name, NumFiles: len(t.Files), NumRequests: len(t.Requests)}
	fileBytes := t.FileSetBytes()
	s.FileSetMB = float64(fileBytes) / (1 << 20)
	if s.NumFiles > 0 {
		s.AvgFileKB = float64(fileBytes) / 1024 / float64(s.NumFiles)
	}
	if s.NumRequests > 0 {
		s.AvgReqKB = float64(t.RequestBytes()) / 1024 / float64(s.NumRequests)
	}
	return s
}

// String formats the stats as a Table 2 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s files=%-7d avgFile=%6.1fKB requests=%-8d avgReq=%6.1fKB fileSet=%7.1fMB",
		s.Name, s.NumFiles, s.AvgFileKB, s.NumRequests, s.AvgReqKB, s.FileSetMB)
}
