package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/block"
)

// FlashSpec schedules one flash crowd inside a request stream: during the
// window [At, At+Dur) — fractions of the stream's length — a set of Files
// previously cold files captures Boost of the request probability, the
// sudden-popularity model of Olmos et al. for non-stationary request
// processes. The flash set is drawn from the cold tail of the popularity
// ranking (new content nobody asked for before), so a flash crowd hits
// blocks no cache has warmed.
type FlashSpec struct {
	// At is the window start as a fraction of the stream in [0,1).
	At float64 `json:"at"`
	// Dur is the window length as a fraction of the stream in (0,1].
	Dur float64 `json:"dur"`
	// Files is the size of the flash set.
	Files int `json:"files"`
	// Boost in (0,1) is the probability mass the flash set captures while
	// the window is open (split uniformly across the set).
	Boost float64 `json:"boost"`
}

// NonStationary generates a request stream whose popularity distribution
// changes over time: the Base preset's Zipf skew modulated by scheduled
// flash crowds and/or a diurnal rotation of which files hold the hot ranks.
// The stationary generators reproduce Table 2's aggregate properties; this
// one produces the regime those experiments exclude — the popularity shift
// mid-run that makes static placement decisions go stale.
type NonStationary struct {
	Base Preset
	// Flashes are the scheduled flash crowds (may overlap; the earliest
	// active window wins a request).
	Flashes []FlashSpec
	// RotatePeriod > 0 rotates the rank-to-file assignment every that
	// fraction of the stream (diurnal popularity drift): each step shifts
	// the mapping by RotateShift files, so yesterday's hot set cools and a
	// new one heats up.
	RotatePeriod float64
	// RotateShift is the ranks shifted per rotation step (default 1).
	RotateShift int
}

// Generate builds the non-stationary trace. The file set is the Base
// preset's (same size calibration); only the request stream differs. The
// same seed yields an identical trace.
func (p NonStationary) Generate(seed int64, scale float64) *Trace {
	for _, fl := range p.Flashes {
		if fl.At < 0 || fl.At >= 1 || fl.Dur <= 0 || fl.Boost <= 0 || fl.Boost >= 1 ||
			fl.Files <= 0 || fl.Files > p.Base.NumFiles {
			panic(fmt.Sprintf("trace: invalid flash spec %+v", fl))
		}
	}
	if p.RotatePeriod < 0 || p.RotatePeriod >= 1 {
		panic(fmt.Sprintf("trace: RotatePeriod %v out of [0,1)", p.RotatePeriod))
	}
	// The base generator establishes files, sizes, and the seeded RNG
	// stream; its request draw is replaced below by the modulated one (a
	// fresh derived RNG keeps the two streams independent of each other's
	// draw counts).
	base := p.Base.Generate(seed, scale)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed0f1a5))
	n := p.Base.NumFiles
	z := NewZipf(n, p.Base.Alpha)

	// Recover the rank→file assignment implied by the base generator's
	// popularity ordering is not exposed; draw a fresh seeded permutation
	// instead (popularity stays uncorrelated with file IDs and homes).
	rankToFile := rng.Perm(n)
	shift := p.RotateShift
	if shift <= 0 {
		shift = 1
	}

	nreq := len(base.Requests)
	reqs := make([]block.FileID, nreq)
	for i := range reqs {
		frac := float64(i) / float64(nreq)
		var rank int
		if fl, ok := p.activeFlash(frac); ok && rng.Float64() < fl.Boost {
			// Inside the window, Boost of the requests hit the flash set:
			// the coldest Files ranks, uniformly.
			rank = n - 1 - rng.Intn(fl.Files)
		} else {
			rank = z.Sample(rng)
		}
		if p.RotatePeriod > 0 {
			step := int(frac / p.RotatePeriod)
			rank = (rank + step*shift) % n
		}
		reqs[i] = block.FileID(rankToFile[rank])
	}
	name := p.Base.Name
	if name == "" {
		name = "nonstationary"
	}
	return &Trace{Name: name, Files: base.Files, Requests: reqs}
}

// activeFlash reports the earliest flash window open at stream fraction
// frac.
func (p NonStationary) activeFlash(frac float64) (FlashSpec, bool) {
	for _, fl := range p.Flashes {
		if frac >= fl.At && frac < fl.At+fl.Dur {
			return fl, true
		}
	}
	return FlashSpec{}, false
}
