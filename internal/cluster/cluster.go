// Package cluster assembles the simulated hardware of §4.2 — 4–32 nodes
// (CPU, NIC, disk, bus) on a shared LAN with a router — and defines the
// server-backend interface the workload driver uses, so the cooperative
// caching server and the L2S baseline are driven identically.
package cluster

import (
	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Hardware is the assembled cluster substrate.
type Hardware struct {
	Eng    *sim.Engine
	Params *hw.Params
	Net    *hw.Network
	Nodes  []*hw.Node
	Disks  []*disk.Disk
	Geom   block.Geometry
}

// NewHardware builds an n-node cluster. sched selects the disk queue
// discipline (the only hardware-level difference between the paper's CC
// variants).
func NewHardware(eng *sim.Engine, p *hw.Params, geom block.Geometry, n int, sched disk.Scheduler) *Hardware {
	if n <= 0 {
		panic("cluster: need at least one node")
	}
	h := &Hardware{
		Eng:    eng,
		Params: p,
		Net:    hw.NewNetwork(eng, p, 0),
		Nodes:  make([]*hw.Node, n),
		Disks:  make([]*disk.Disk, n),
		Geom:   geom,
	}
	for i := 0; i < n; i++ {
		h.Nodes[i] = hw.NewNode(eng, i, 0)
		h.Disks[i] = disk.New(eng, p, geom, sched)
	}
	return h
}

// N reports the node count.
func (h *Hardware) N() int { return len(h.Nodes) }

// ResetStats restarts utilization accounting on every component; called at
// the end of cache warmup.
func (h *Hardware) ResetStats() {
	for _, n := range h.Nodes {
		n.ResetStats()
	}
	for _, d := range h.Disks {
		d.ResetStats()
	}
	h.Net.Router.ResetStats()
}

// Utilization aggregates mean busy fractions across nodes for Figure 6(a).
type Utilization struct {
	CPU  float64
	Disk float64
	NIC  float64
}

// MeanUtilization averages each resource class over the nodes.
func (h *Hardware) MeanUtilization() Utilization {
	var u Utilization
	for i := range h.Nodes {
		u.CPU += h.Nodes[i].CPU.Utilization()
		u.NIC += h.Nodes[i].NIC.Utilization()
		u.Disk += h.Disks[i].Utilization()
	}
	n := float64(h.N())
	u.CPU /= n
	u.NIC /= n
	u.Disk /= n
	return u
}

// MaxDiskUtilization reports the busiest disk — the bottleneck metric §5
// identifies for CC-Basic.
func (h *Hardware) MaxDiskUtilization() float64 {
	max := 0.0
	for _, d := range h.Disks {
		if u := d.Utilization(); u > max {
			max = u
		}
	}
	return max
}

// Backend is a cluster web server under test: the workload driver sends it
// requests and it reports cache behaviour. Both the cooperative caching
// server (internal/core) and the L2S baseline (internal/l2s) implement it.
type Backend interface {
	// Dispatch delivers a client request for file to the given node (chosen
	// by the round-robin DNS in the workload driver). done fires when the
	// last response byte has left the cluster.
	Dispatch(node int, file block.FileID, done func())
	// Hardware exposes the substrate for utilization accounting.
	Hardware() *Hardware
	// ResetStats clears cache/protocol counters (end of warmup).
	ResetStats()
	// CacheStats reports accumulated cache behaviour.
	CacheStats() CacheStats
}

// CacheStats aggregates the hit-rate accounting of Figure 4. For the
// block-based CC server the unit is block accesses; for whole-file L2S it
// is file accesses. Rates are fractions of total accesses.
type CacheStats struct {
	Accesses  uint64
	LocalHits uint64
	// RemoteHits are accesses served from a peer's memory.
	RemoteHits uint64
	// DiskReads are accesses that went to disk (including races where a
	// located master vanished in flight).
	DiskReads uint64
	// Forwards counts evicted masters forwarded to peers (CC only).
	Forwards uint64
	// ForwardDrops counts forwarded masters dropped on arrival because the
	// destination held only younger blocks (CC only).
	ForwardDrops uint64
	// RaceMisses counts directory hits that missed in flight.
	RaceMisses uint64
	// Handoffs counts requests migrated to another node (L2S only).
	Handoffs uint64
	// Replications counts file replications under load (L2S only).
	Replications uint64
}

// LocalRate is the fraction of accesses hit in local memory.
func (s CacheStats) LocalRate() float64 { return rate(s.LocalHits, s.Accesses) }

// RemoteRate is the fraction of accesses served from peer memory.
func (s CacheStats) RemoteRate() float64 { return rate(s.RemoteHits, s.Accesses) }

// HitRate is the fraction of accesses served from cluster memory.
func (s CacheStats) HitRate() float64 { return rate(s.LocalHits+s.RemoteHits, s.Accesses) }

// DiskRate is the fraction of accesses that required disk.
func (s CacheStats) DiskRate() float64 { return rate(s.DiskReads, s.Accesses) }

func rate(x, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(x) / float64(total)
}
