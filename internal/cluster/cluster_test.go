package cluster

import (
	"testing"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

func newHW(n int) (*sim.Engine, *Hardware) {
	eng := sim.NewEngine(1)
	p := hw.DefaultParams()
	return eng, NewHardware(eng, &p, block.DefaultGeometry, n, disk.Sequential)
}

func TestNewHardwareAssembly(t *testing.T) {
	_, h := newHW(4)
	if h.N() != 4 || len(h.Disks) != 4 || len(h.Nodes) != 4 {
		t.Fatalf("assembly: %d nodes, %d disks", len(h.Nodes), len(h.Disks))
	}
	if h.Net == nil || h.Net.Router == nil {
		t.Fatal("no network")
	}
	for i, n := range h.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestNewHardwarePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0-node cluster accepted")
		}
	}()
	newHW(0)
}

func TestMeanAndMaxUtilization(t *testing.T) {
	eng, h := newHW(2)
	// Load node 0's disk fully; node 1 idle.
	h.Disks[0].Read(1, 0, 1, nil)
	end := eng.RunUntilIdle()
	if end == 0 {
		t.Fatal("nothing ran")
	}
	u := h.MeanUtilization()
	if u.Disk <= 0 || u.Disk > 0.51 {
		t.Fatalf("mean disk util = %f, want ~0.5 (one of two disks busy)", u.Disk)
	}
	if got := h.MaxDiskUtilization(); got < 0.99 {
		t.Fatalf("max disk util = %f, want ~1", got)
	}
	h.ResetStats()
	if h.MaxDiskUtilization() != 0 {
		t.Fatal("ResetStats did not clear disk stats")
	}
}

func TestCacheStatsRates(t *testing.T) {
	s := CacheStats{Accesses: 100, LocalHits: 20, RemoteHits: 60, DiskReads: 20}
	if s.LocalRate() != 0.2 || s.RemoteRate() != 0.6 || s.DiskRate() != 0.2 {
		t.Fatalf("rates: %f %f %f", s.LocalRate(), s.RemoteRate(), s.DiskRate())
	}
	if s.HitRate() != 0.8 {
		t.Fatalf("hit rate = %f", s.HitRate())
	}
	var empty CacheStats
	if empty.HitRate() != 0 || empty.DiskRate() != 0 {
		t.Fatal("empty stats should rate 0")
	}
}
