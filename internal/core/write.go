package core

import (
	"repro/internal/block"
)

// DispatchWrite delivers a whole-file update to the cluster (the §6 "writes
// as well as reads" extension, simulated): the entry node parses the
// request, invalidates every cached block of the file cluster-wide
// (write-invalidate keeps the read protocol untouched), writes the new
// content through to the file's home disk, and acknowledges the client.
// The writer does not cache the new content (no write-allocate): the next
// read faults it back in through the normal §3 protocol.
func (s *Server) DispatchWrite(node int, file block.FileID, done func()) {
	n := s.nodes[node]
	nodeHW := s.hwc.Nodes[node]
	size := s.tr.Size(file)
	nblocks := s.cfg.Geometry.Count(size)

	s.hwc.Net.Send(nil, nodeHW, size, func() {
		nodeHW.CPU.Do(s.p.ParseTime+s.p.FileReqTime(int(nblocks)), func() {
			s.invalidateFile(n, file, nblocks, func() {
				s.writeHome(n, file, nblocks, size, func() {
					s.hwc.Net.Send(nodeHW, nil, int64(s.p.MsgHeader), done)
				})
			})
		})
	})
}

// invalidateFile drops every cached block of the file on every node. The
// entry node invalidates locally for free-ish (CPU cost), peers each get
// one control message and acknowledge.
func (s *Server) invalidateFile(n *ccNode, file block.FileID, nblocks int32, doneAll func()) {
	s.dropFileBlocks(n.idx, file, nblocks)
	remaining := len(s.nodes) - 1
	if remaining == 0 {
		doneAll()
		return
	}
	nodeHW := s.hwc.Nodes[n.idx]
	for i := range s.nodes {
		if i == n.idx {
			continue
		}
		peer := i
		peerHW := s.hwc.Nodes[peer]
		s.hwc.Net.SendMsg(nodeHW, peerHW, func() {
			peerHW.CPU.Do(s.p.ProcessEvictedMaster, func() {
				s.dropFileBlocks(peer, file, nblocks)
				s.hwc.Net.SendMsg(peerHW, nodeHW, func() {
					remaining--
					if remaining == 0 {
						doneAll()
					}
				})
			})
		})
	}
}

// dropFileBlocks removes all of the file's blocks from one node's cache,
// clearing directory entries for dropped masters.
func (s *Server) dropFileBlocks(node int, file block.FileID, nblocks int32) {
	c := s.nodes[node].cache
	for i := int32(0); i < nblocks; i++ {
		b := block.ID{File: file, Idx: i}
		if present, master := c.Remove(b); present && master {
			if holder, ok := s.dir.Holder(b); ok && holder == node {
				s.dir.Drop(b)
			}
		}
		if s.recirc != nil {
			delete(s.recirc, b)
		}
	}
}

// writeHome persists the file at its home disk: the content travels to the
// home node (unless local) and is written as one contiguous run. The disk
// model's read cost doubles as the write cost (seek + rotation + transfer).
func (s *Server) writeHome(n *ccNode, file block.FileID, nblocks int32, size int64, done func()) {
	h := int(s.homes[file])
	if h == n.idx {
		s.hwc.Nodes[h].Bus.Do(s.p.BusTransfer(size), func() {
			s.hwc.Disks[h].Read(file, 0, nblocks, done)
		})
		return
	}
	homeHW := s.hwc.Nodes[h]
	s.hwc.Net.Send(s.hwc.Nodes[n.idx], homeHW, size, func() {
		homeHW.CPU.Do(s.p.ServePeerBlock, func() {
			s.hwc.Disks[h].Read(file, 0, nblocks, done)
		})
	})
}
