package core

import (
	"sync"
	"testing"
)

// TestAdmissionOneHitWonder pins the doorkeeper contract: a key seen once
// never displaces a key with an established frequency, while a genuinely
// hotter candidate does.
func TestAdmissionOneHitWonder(t *testing.T) {
	a := NewAdmission(64)
	const hot, cold, warm = 1, 2, 3
	for i := 0; i < 10; i++ {
		a.Observe(hot)
	}
	a.Observe(cold)
	if a.Admit(cold, hot) {
		t.Fatal("one-hit wonder admitted over a hot victim")
	}
	for i := 0; i < 20; i++ {
		a.Observe(warm)
	}
	if !a.Admit(warm, hot) {
		t.Fatal("hotter candidate rejected")
	}
	// Never-seen candidates lose to anything with history.
	if a.Admit(99, cold) {
		t.Fatal("unseen candidate displaced a seen victim")
	}
}

// TestAdmissionRecencyBypass pins the W-TinyLFU-style window: a candidate
// touched at least twice inside the current window is admitted regardless of
// the victim's frequency — flash-crowd blocks must not lose duels against
// stale-high incumbents — while a first-touch candidate still fights the
// strict frequency duel.
func TestAdmissionRecencyBypass(t *testing.T) {
	a := NewAdmission(64)
	const incumbent, flash = 1, 2
	for i := 0; i < 30; i++ {
		a.Observe(incumbent)
	}
	a.Observe(flash)
	if a.Admit(flash, incumbent) {
		t.Fatal("single-touch candidate bypassed the frequency duel")
	}
	a.Observe(flash) // second touch inside the window: recent, not a one-hit wonder
	if !a.Admit(flash, incumbent) {
		t.Fatal("repeat-touched candidate rejected against a stale-high victim")
	}
}

// TestAdmissionEstimateOrdering checks the sketch preserves frequency order
// between clearly separated keys.
func TestAdmissionEstimateOrdering(t *testing.T) {
	a := NewAdmission(128)
	for k := uint64(0); k < 8; k++ {
		for i := uint64(0); i < k*3; i++ {
			a.Observe(k)
		}
	}
	if e0, e7 := a.Estimate(0), a.Estimate(7); e0 >= e7 {
		t.Fatalf("estimate(never seen)=%d >= estimate(21 observes)=%d", e0, e7)
	}
}

// TestAdmissionReset verifies the halving window: estimates decay instead of
// growing without bound, and the filter still functions after many resets.
func TestAdmissionReset(t *testing.T) {
	a := NewAdmission(16) // small window: resets trigger quickly
	for i := 0; i < 10000; i++ {
		a.Observe(uint64(i % 5))
	}
	if e := a.Estimate(0); e == 0 {
		t.Fatal("frequent key lost across resets")
	}
	a.Observe(999)
	if a.Admit(999, 0) {
		t.Fatal("fresh key admitted over a perennially hot victim after resets")
	}
}

// TestAdmissionConcurrent exercises the filter from many goroutines; -race
// is the assertion.
func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				a.Observe(uint64(i % 31))
				if i%16 == 0 {
					a.Admit(uint64(g), uint64(i%31))
				}
			}
		}(g)
	}
	wg.Wait()
}
