package core

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func TestDisableForwardingDropsMasters(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{
		Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic, DisableForwarding: true,
	})
	m := block.ID{File: 0, Idx: 0}
	s.nodes[0].cache.Insert(m, true, 5)
	s.dir.Set(m, 0)
	s.nodes[0].cache.Insert(block.ID{File: 1, Idx: 0}, true, 50)
	s.dir.Set(block.ID{File: 1, Idx: 0}, 0)
	// Peer has an older block, so with forwarding enabled the master would
	// move there; disabled, it must be dropped.
	s.nodes[1].cache.Insert(block.ID{File: 2, Idx: 0}, false, 1)
	s.nodes[1].cache.Insert(block.ID{File: 2, Idx: 1}, false, 2)
	s.insertBlock(s.nodes[0], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()
	if s.stats.Forwards != 0 {
		t.Fatal("forwarding happened despite DisableForwarding")
	}
	if _, ok := s.dir.Holder(m); ok {
		t.Fatal("dropped master still in directory")
	}
	if s.nodes[1].cache.IsMaster(m) {
		t.Fatal("master arrived at peer")
	}
}

func TestDisableForwardingEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := make([]int64, 30)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(32*1024) + 512)
	}
	tr := testTrace(sizes...)
	eng, s := newServer(tr, Config{
		Nodes: 4, MemoryPerNode: 64 * 1024, Policy: PolicyMaster, DisableForwarding: true,
	})
	done := 0
	for i := 0; i < 300; i++ {
		s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(30)), func() { done++ })
		if i%9 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if done != 300 {
		t.Fatalf("completed %d of 300", done)
	}
	if s.stats.Forwards != 0 || s.stats.ForwardDrops != 0 {
		t.Fatalf("forward stats nonzero: %+v", s.stats)
	}
	checkConsistency(t, s)
}

func TestFetchWindowPipelines(t *testing.T) {
	// A 16-block cold file read from the local home disk: pipelined block
	// fetches queue at the disk together, so the stream-preserving
	// scheduler turns them into sequential reads (few positioning seeks).
	tr := testTrace(16 * 8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: PolicySched})
	done := false
	s.Dispatch(0, 0, func() { done = true })
	eng.RunUntilIdle()
	if !done {
		t.Fatal("request incomplete")
	}
	d := s.Hardware().Disks[0]
	if d.Reads() != 16 {
		t.Fatalf("disk reads = %d, want 16", d.Reads())
	}
	// One stream: at most a couple of positioning seeks; the rest must be
	// sequential continuations.
	if d.Seeks() > 3 {
		t.Fatalf("seeks = %d, want ≤3 for a single pipelined stream", d.Seeks())
	}
}

func TestWholeFileMatchesBlockResults(t *testing.T) {
	// Both modes must deliver every request and end consistent.
	rng := rand.New(rand.NewSource(11))
	sizes := make([]int64, 20)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(48*1024) + 512)
	}
	for _, whole := range []bool{false, true} {
		tr := testTrace(sizes...)
		eng, s := newServer(tr, Config{
			Nodes: 4, MemoryPerNode: 128 * 1024, Policy: PolicyMaster, WholeFile: whole,
		})
		done := 0
		for i := 0; i < 200; i++ {
			s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(20)), func() { done++ })
			if i%13 == 0 {
				eng.RunUntilIdle()
			}
		}
		eng.RunUntilIdle()
		if done != 200 {
			t.Fatalf("wholeFile=%v: completed %d of 200", whole, done)
		}
		checkConsistency(t, s)
	}
}
