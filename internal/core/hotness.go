package core

import (
	"math"
	"sync"
)

// Hotness tracks per-block access heat with epoch-decayed counters: each
// Observe adds one to the key's score, and every Advance multiplies all
// scores by the decay factor. Decay is applied lazily (a per-entry epoch
// stamp, settled on the next touch), so Observe is a single map operation;
// Advance sweeps entries whose decayed score fell under the floor, so a key
// that goes idle reaches exactly zero after finitely many epochs instead of
// lingering as an ever-smaller float.
//
// The epoch clock is external (the middleware drives it from a wall-clock
// ticker; tests call Advance directly), which keeps the math deterministic.
type Hotness struct {
	mu    sync.Mutex
	decay float64
	floor float64
	epoch uint64
	score map[uint64]hotEntry
}

type hotEntry struct {
	score float64
	epoch uint64
}

// Default hotness parameters: a score halves per epoch and is forgotten
// once it decays under the floor (a block observed once is forgotten after
// one idle epoch; a block needs a sustained access rate to stay hot).
const (
	DefaultHotnessDecay = 0.5
	DefaultHotnessFloor = 0.5
)

// NewHotness builds a tracker with the given per-epoch decay factor in
// (0,1) and sweep floor (> 0). Out-of-range values fall back to the
// defaults.
func NewHotness(decay, floor float64) *Hotness {
	if decay <= 0 || decay >= 1 {
		decay = DefaultHotnessDecay
	}
	if floor <= 0 {
		floor = DefaultHotnessFloor
	}
	return &Hotness{decay: decay, floor: floor, score: make(map[uint64]hotEntry)}
}

// settled returns e's score decayed to the current epoch. Callers hold h.mu.
func (h *Hotness) settled(e hotEntry) float64 {
	if d := h.epoch - e.epoch; d > 0 {
		return e.score * math.Pow(h.decay, float64(d))
	}
	return e.score
}

// Observe records one access to key and returns its new score.
func (h *Hotness) Observe(key uint64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.score[key]
	s := h.settled(e) + 1
	h.score[key] = hotEntry{score: s, epoch: h.epoch}
	return s
}

// Score reports key's current (decayed) score, zero when the key has been
// swept or never observed.
func (h *Hotness) Score(key uint64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.score[key]
	if !ok {
		return 0
	}
	return h.settled(e)
}

// Advance steps the epoch clock and sweeps entries whose decayed score fell
// to the floor or under it, so idle keys are forgotten entirely.
func (h *Hotness) Advance() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.epoch++
	for k, e := range h.score {
		if h.settled(e) <= h.floor {
			delete(h.score, k)
		}
	}
}

// Epoch reports the current epoch (tests).
func (h *Hotness) Epoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// Len reports the number of tracked (unswept) keys.
func (h *Hotness) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.score)
}
