package core

import (
	"sort"

	"repro/internal/block"
	"repro/internal/sim"
)

// fetchWholeFile implements the §6 whole-file adaptation: when a request
// misses on trigger, all missing blocks of the file are fetched at once —
// batched into one exchange per source peer and contiguous multi-block disk
// reads at the home node. This trades the generality of the block interface
// for fewer protocol round trips, the adaptation the paper proposes for
// servers that always use whole files.
//
// cb receives the outcome of the triggering block; sibling blocks installed
// by the batch satisfy the request loop as local hits afterward, so cache
// statistics under WholeFile are file-grained like L2S's.
func (s *Server) fetchWholeFile(n *ccNode, trigger block.ID, nblocks int32, cb func(outcome)) {
	peerBlocks := make(map[int][]block.ID)
	var homeBlocks []block.ID
	now := s.eng.Now()
	for i := int32(0); i < nblocks; i++ {
		b := block.ID{File: trigger.File, Idx: i}
		if b != trigger && n.cache.Contains(b) {
			n.cache.Touch(b, now)
			continue
		}
		if _, inflight := n.pending[b]; inflight {
			continue
		}
		n.pending[b] = &fetchState{}
		if m, ok := s.loc.Locate(n.idx, b); ok && m != n.idx {
			peerBlocks[m] = append(peerBlocks[m], b)
		} else {
			homeBlocks = append(homeBlocks, b)
		}
	}

	completeOne := func(b block.ID, o outcome) {
		fs := n.pending[b]
		delete(n.pending, b)
		if b == trigger {
			cb(o)
		}
		if fs != nil {
			for _, w := range fs.waiters {
				w(o)
			}
		}
	}

	for m, blks := range peerBlocks {
		s.fetchBatchFromPeer(n, m, blks, completeOne)
	}
	if len(homeBlocks) > 0 {
		s.fetchBatchFromHome(n, trigger.File, homeBlocks, completeOne)
	}
}

// fetchBatchFromPeer asks peer m for several blocks in one exchange: one
// request message, one peer CPU service, one bulk transfer. Blocks the peer
// lost in the meantime fall back to the home path individually.
func (s *Server) fetchBatchFromPeer(n *ccNode, m int, blks []block.ID, complete func(block.ID, outcome)) {
	peerHW, nodeHW := s.hwc.Nodes[m], s.hwc.Nodes[n.idx]
	s.hwc.Net.SendMsg(nodeHW, peerHW, func() {
		peerHW.CPU.Do(s.p.ServePeerBlock, func() {
			var present, lost []block.ID
			now := s.eng.Now()
			for _, b := range blks {
				if s.nodes[m].cache.Touch(b, now) {
					present = append(present, b)
				} else {
					lost = append(lost, b)
				}
			}
			for _, b := range lost {
				s.stats.RaceMisses++
				b := b
				s.fetchFromHome(n, b, func(o outcome) { complete(b, o) })
			}
			if len(present) == 0 {
				return
			}
			size := int64(len(present)) * int64(s.cfg.Geometry.Size)
			s.hwc.Net.Send(peerHW, nodeHW, size, func() {
				nodeHW.CPU.Do(sim.Duration(len(present))*s.p.CacheNewBlock, func() {
					for _, b := range present {
						s.insertBlock(n, b, false)
						complete(b, outRemote)
					}
				})
			})
		})
	})
}

// fetchBatchFromHome reads the missing master blocks from the file's home
// disk using contiguous multi-block reads per run.
func (s *Server) fetchBatchFromHome(n *ccNode, file block.FileID, blks []block.ID, complete func(block.ID, outcome)) {
	h := int(s.homes[file])
	homeHW := s.hwc.Nodes[h]
	reqHW := s.hwc.Nodes[n.idx]
	sort.Slice(blks, func(a, b int) bool { return blks[a].Idx < blks[b].Idx })
	runs := contiguousRuns(blks)

	issueReads := func(after func()) {
		remaining := len(runs)
		for _, r := range runs {
			s.hwc.Disks[h].Read(file, r.start, r.count, func() {
				remaining--
				if remaining == 0 {
					after()
				}
			})
		}
	}
	finish := func() {
		for _, b := range blks {
			s.insertBlock(n, b, true)
			complete(b, outDisk)
		}
	}
	size := int64(len(blks)) * int64(s.cfg.Geometry.Size)
	if h == n.idx {
		issueReads(func() {
			reqHW.Bus.Do(s.p.BusTransfer(size), func() {
				reqHW.CPU.Do(sim.Duration(len(blks))*s.p.CacheNewBlock, finish)
			})
		})
		return
	}
	s.hwc.Net.SendMsg(reqHW, homeHW, func() {
		homeHW.CPU.Do(s.p.ServePeerBlock, func() {
			issueReads(func() {
				s.hwc.Net.Send(homeHW, reqHW, size, func() {
					reqHW.CPU.Do(sim.Duration(len(blks))*s.p.CacheNewBlock, finish)
				})
			})
		})
	})
}

type run struct {
	start, count int32
}

// contiguousRuns splits sorted block IDs into maximal contiguous runs.
func contiguousRuns(blks []block.ID) []run {
	var runs []run
	for i := 0; i < len(blks); {
		j := i + 1
		for j < len(blks) && blks[j].Idx == blks[j-1].Idx+1 {
			j++
		}
		runs = append(runs, run{start: blks[i].Idx, count: int32(j - i)})
		i = j
	}
	return runs
}
