package core

import "sync"

// Admission is a TinyLFU-style admission filter: a doorkeeper bloom filter
// absorbing first touches, backed by a small capped count-min sketch of
// recent access frequencies, periodically halved so the estimate tracks a
// sliding window. A cache uses it to keep one-hit wonders from evicting
// blocks with an established access frequency: a candidate is admitted only
// when it has been seen more often than the victim it would displace.
type Admission struct {
	mu      sync.Mutex
	rows    [sketchRows][]uint8
	mask    uint64
	door    []uint64
	samples uint64
	cap     uint64
}

const (
	sketchRows = 4
	// counterMax caps each sketch counter; the halving reset keeps relative
	// frequencies meaningful well below saturation.
	counterMax = 15
)

// NewAdmission sizes the filter for a cache of roughly capacity entries:
// the sketch is wide enough that collisions do not swamp the estimates, and
// the sample window (after which all counters halve) spans several times
// the cache size, the TinyLFU reset rule.
func NewAdmission(capacity int) *Admission {
	if capacity < 16 {
		capacity = 16
	}
	w := uint64(64)
	for w < uint64(capacity)*4 {
		w <<= 1
	}
	a := &Admission{mask: w - 1, cap: uint64(capacity) * 10}
	for i := range a.rows {
		a.rows[i] = make([]uint8, w)
	}
	a.door = make([]uint64, w/64)
	return a
}

// mix is splitmix64's finalizer: the sketch's hash family, one seed per row.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var rowSeeds = [sketchRows]uint64{0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0x27d4eb2f165667c5}

func (a *Admission) doorHas(h uint64) bool {
	i := h & a.mask
	return a.door[i/64]&(1<<(i%64)) != 0
}

func (a *Admission) doorSet(h uint64) {
	i := h & a.mask
	a.door[i/64] |= 1 << (i % 64)
}

// Observe records one access to key.
func (a *Admission) Observe(key uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := mix(key)
	if !a.doorHas(h) {
		// First sighting in this window: the doorkeeper absorbs it, keeping
		// one-hit wonders out of the sketch entirely.
		a.doorSet(h)
	} else {
		for i := range a.rows {
			j := mix(key ^ rowSeeds[i]) & a.mask
			if a.rows[i][j] < counterMax {
				a.rows[i][j]++
			}
		}
	}
	a.samples++
	if a.samples >= a.cap {
		a.resetLocked()
	}
}

// resetLocked is the TinyLFU aging step: all counters halve and the
// doorkeeper clears, so the estimate approximates frequency over a sliding
// window. Callers hold a.mu.
func (a *Admission) resetLocked() {
	for i := range a.rows {
		for j := range a.rows[i] {
			a.rows[i][j] >>= 1
		}
	}
	for i := range a.door {
		a.door[i] = 0
	}
	a.samples /= 2
}

// estimateLocked reports key's frequency estimate. Callers hold a.mu.
func (a *Admission) estimateLocked(key uint64) uint32 {
	est := uint32(counterMax + 1)
	for i := range a.rows {
		j := mix(key ^ rowSeeds[i]) & a.mask
		if c := uint32(a.rows[i][j]); c < est {
			est = c
		}
	}
	if a.doorHas(mix(key)) {
		est++
	}
	return est
}

// Estimate reports key's recent-access frequency estimate.
func (a *Admission) Estimate(key uint64) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.estimateLocked(key)
}

// admitRepeatTouch is the estimate at which a candidate is admitted without
// the frequency duel: doorkeeper + one sketch count means it was touched at
// least twice inside the current window.
const admitRepeatTouch = 2

// Admit decides whether candidate should displace victim. A candidate with
// an established recent history — touched at least twice in the current
// window — is admitted outright: this is the recency path W-TinyLFU's
// window segment exists for, and without it a flash crowd's blocks (zero
// frequency history, suddenly the hottest data in the cluster) lose every
// duel against stale-high incumbents during exactly the window that
// matters. A first-touch candidate is admitted only when its estimated
// frequency strictly exceeds the victim's, so a one-hit wonder never evicts
// an established block.
func (a *Admission) Admit(candidate, victim uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.estimateLocked(candidate)
	if c >= admitRepeatTouch {
		return true
	}
	return c > a.estimateLocked(victim)
}
