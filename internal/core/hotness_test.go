package core

import (
	"sync"
	"testing"
)

// TestHotnessDecaysToZero pins the sweep contract: a key observed once and
// then left idle is forgotten — score exactly zero, entry gone — after K
// epochs where decay^K drops it under the floor. With the defaults
// (decay 0.5, floor 0.5) K is 1.
func TestHotnessDecaysToZero(t *testing.T) {
	h := NewHotness(0.5, 0.5)
	h.Observe(7)
	if s := h.Score(7); s != 1 {
		t.Fatalf("score after one observe = %v, want 1", s)
	}
	h.Advance() // 1 * 0.5 < floor: swept
	if s := h.Score(7); s != 0 {
		t.Fatalf("score after idle epoch = %v, want exactly 0", s)
	}
	if h.Len() != 0 {
		t.Fatalf("swept tracker retains %d entries", h.Len())
	}

	// A hotter key survives proportionally longer, then still reaches zero.
	h2 := NewHotness(0.5, 0.5)
	for i := 0; i < 16; i++ {
		h2.Observe(9)
	}
	// 16 * 0.5^k > 0.5 while k <= 4: four idle epochs keep it, the fifth
	// decays it to the floor and sweeps it.
	for k := 0; k < 4; k++ {
		h2.Advance()
		if s := h2.Score(9); s <= 0 {
			t.Fatalf("score swept too early at idle epoch %d", k+1)
		}
	}
	h2.Advance()
	if s := h2.Score(9); s != 0 {
		t.Fatalf("score after 5 idle epochs = %v, want exactly 0", s)
	}
}

// TestHotnessMonotoneInRate verifies that under the same epoch schedule, a
// key observed more often per epoch always scores at least as high.
func TestHotnessMonotoneInRate(t *testing.T) {
	h := NewHotness(0.5, 0.001)
	rates := []int{1, 2, 5, 13}
	for epoch := 0; epoch < 8; epoch++ {
		for k, r := range rates {
			for i := 0; i < r; i++ {
				h.Observe(uint64(k))
			}
		}
		h.Advance()
	}
	prev := -1.0
	for k := range rates {
		s := h.Score(uint64(k))
		if s <= prev {
			t.Fatalf("score not monotone in access rate: rate %d scored %v after rate %d scored %v",
				rates[k], s, rates[k-1], prev)
		}
		prev = s
	}
}

// TestHotnessSteadyState pins the geometric-series fixed point: a key
// observed exactly once per epoch converges to 1/(1-decay).
func TestHotnessSteadyState(t *testing.T) {
	h := NewHotness(0.5, 0.001)
	var s float64
	for i := 0; i < 40; i++ {
		s = h.Observe(1)
		h.Advance()
	}
	if want := 2.0; s < want-0.01 || s > want+0.01 {
		t.Fatalf("steady-state score = %v, want ≈ %v", s, want)
	}
}

// TestHotnessConcurrentObserve exercises Observe/Score/Advance from many
// goroutines; the race detector (-race) is the assertion.
func TestHotnessConcurrentObserve(t *testing.T) {
	h := NewHotness(0.5, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(uint64(i % 17))
				if i%64 == 0 {
					h.Score(uint64(g))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			h.Advance()
		}
	}()
	wg.Wait()
	// Scheduling decides how many Advances land after the last Observe, so
	// the surviving score is unpredictable — but a fresh Observe must work.
	if h.Observe(0) <= 0 {
		t.Fatal("tracker broken after concurrent use")
	}
}
