package core

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fillNode loads file f (one block) into node n's cache by dispatching a
// request there and draining the engine.
func load(eng *sim.Engine, s *Server, node int, f block.FileID) {
	s.Dispatch(node, f, nil)
	eng.RunUntilIdle()
}

func TestEvictionDropsNonMasterSilently(t *testing.T) {
	// Node cache of 2 blocks; fill with two non-master copies, then insert
	// a third block: the oldest non-master is dropped, no forwarding.
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic})
	_ = eng
	n := s.nodes[1]
	n.cache.Insert(block.ID{File: 0, Idx: 0}, false, 10)
	n.cache.Insert(block.ID{File: 1, Idx: 0}, false, 20)
	s.insertBlock(n, block.ID{File: 2, Idx: 0}, false)
	if s.stats.Forwards != 0 {
		t.Fatal("non-master eviction should not forward")
	}
	if n.cache.Contains(block.ID{File: 0, Idx: 0}) {
		t.Fatal("oldest non-master survived")
	}
}

func TestMasterForwardedToPeerWithOlderBlock(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic})
	old := block.ID{File: 0, Idx: 0}
	// Node 1: two masters, the victim being older than node 0's content.
	s.nodes[1].cache.Insert(old, true, 10)
	s.dir.Set(old, 1)
	s.nodes[1].cache.Insert(block.ID{File: 1, Idx: 0}, true, 50)
	s.dir.Set(block.ID{File: 1, Idx: 0}, 1)
	// Node 0: full with even older blocks → it is the forwarding target.
	s.nodes[0].cache.Insert(block.ID{File: 2, Idx: 0}, false, 1)
	s.nodes[0].cache.Insert(block.ID{File: 3, Idx: 0}, false, 2)

	s.insertBlock(s.nodes[1], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()

	if s.stats.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", s.stats.Forwards)
	}
	// The forwarded master displaced node 0's oldest block (file 2).
	if !s.nodes[0].cache.IsMaster(old) {
		t.Fatal("forwarded master not installed at peer")
	}
	if s.nodes[0].cache.Contains(block.ID{File: 2, Idx: 0}) {
		t.Fatal("receiver did not drop its oldest block")
	}
	if h, ok := s.dir.Holder(old); !ok || h != 0 {
		t.Fatalf("directory holder = %d,%v, want node 0", h, ok)
	}
	checkConsistency(t, s)
}

func TestGloballyOldestMasterIsDropped(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic})
	victim := block.ID{File: 0, Idx: 0}
	s.nodes[1].cache.Insert(victim, true, 5) // globally oldest
	s.dir.Set(victim, 1)
	s.nodes[1].cache.Insert(block.ID{File: 1, Idx: 0}, true, 50)
	s.dir.Set(block.ID{File: 1, Idx: 0}, 1)
	s.nodes[0].cache.Insert(block.ID{File: 2, Idx: 0}, false, 10)
	s.nodes[0].cache.Insert(block.ID{File: 1, Idx: 0}, false, 20)

	s.insertBlock(s.nodes[1], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()

	if s.stats.Forwards != 0 {
		t.Fatal("globally oldest master must be dropped, not forwarded")
	}
	if _, ok := s.dir.Holder(victim); ok {
		t.Fatal("directory still maps the dropped master")
	}
	checkConsistency(t, s)
}

func TestForwardedBlockDroppedWhenAllYounger(t *testing.T) {
	// Race: at eviction time the peer has an older block, but by the time
	// the forwarded master arrives everything there is younger → dropped.
	tr := testTrace(8*1024, 8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic})
	vic := block.ID{File: 0, Idx: 0}
	s.nodes[0].cache.Insert(vic, true, 30)
	s.dir.Set(vic, 0)
	// Deliver directly into the receive path with everything younger.
	s.nodes[1].cache.Insert(block.ID{File: 1, Idx: 0}, false, 100)
	s.nodes[1].cache.Insert(block.ID{File: 2, Idx: 0}, false, 200)
	s.nodes[0].cache.Remove(vic)
	s.forwardMaster(0, 1, vic, 30)
	eng.RunUntilIdle()
	if s.stats.ForwardDrops != 1 {
		t.Fatalf("forward drops = %d, want 1", s.stats.ForwardDrops)
	}
	if _, ok := s.dir.Holder(vic); ok {
		t.Fatal("dropped forwarded master still in directory")
	}
	if s.nodes[1].cache.Contains(vic) {
		t.Fatal("forwarded block was installed despite being oldest")
	}
}

func TestNoCascadedEvictions(t *testing.T) {
	// The receiver of a forwarded master drops its own oldest master; that
	// drop must NOT forward again (§3 property 1).
	tr := testTrace(8*1024, 8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 3, MemoryPerNode: 8 * 1024, Policy: PolicyBasic})
	a := block.ID{File: 0, Idx: 0}
	b := block.ID{File: 1, Idx: 0}
	s.nodes[1].cache.Insert(b, true, 5) // node 1 full with an old master
	s.dir.Set(b, 1)
	// Node 2 holds something even older so a cascade would have a target.
	s.nodes[2].cache.Insert(block.ID{File: 2, Idx: 0}, true, 1)
	s.dir.Set(block.ID{File: 2, Idx: 0}, 2)

	s.forwardMaster(0, 1, a, 10) // a (age 10) arrives at node 1, displacing b (age 5)
	eng.RunUntilIdle()

	if s.stats.Forwards != 1 {
		t.Fatalf("forwards = %d, want exactly 1 (no cascade)", s.stats.Forwards)
	}
	if _, ok := s.dir.Holder(b); ok {
		t.Fatal("displaced master must be dropped, not re-forwarded")
	}
	if !s.nodes[1].cache.IsMaster(a) {
		t.Fatal("forwarded master not installed")
	}
}

func TestPolicyMasterPreservesMasters(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	_, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyMaster})
	m := block.ID{File: 0, Idx: 0}
	nm := block.ID{File: 1, Idx: 0}
	s.nodes[0].cache.Insert(m, true, 5) // master, oldest
	s.dir.Set(m, 0)
	s.nodes[0].cache.Insert(nm, false, 50) // younger non-master
	s.insertBlock(s.nodes[0], block.ID{File: 2, Idx: 0}, false)
	if !s.nodes[0].cache.IsMaster(m) {
		t.Fatal("master evicted while a non-master was held")
	}
	if s.nodes[0].cache.Contains(nm) {
		t.Fatal("non-master survived")
	}
}

func TestPolicyMasterFallsBackToGlobalLRU(t *testing.T) {
	// Only masters held → behave like Basic (global LRU with forwarding).
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyMaster})
	m1 := block.ID{File: 0, Idx: 0}
	m2 := block.ID{File: 1, Idx: 0}
	s.nodes[0].cache.Insert(m1, true, 5)
	s.dir.Set(m1, 0)
	s.nodes[0].cache.Insert(m2, true, 50)
	s.dir.Set(m2, 0)
	// Peer full with an older block → forwarding target.
	s.nodes[1].cache.Insert(block.ID{File: 2, Idx: 0}, false, 1)
	s.nodes[1].cache.Insert(block.ID{File: 2, Idx: 1}, false, 2)
	s.insertBlock(s.nodes[0], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()
	if s.stats.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", s.stats.Forwards)
	}
}

func TestForwardToPeerWithFreeSpace(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyBasic})
	m := block.ID{File: 0, Idx: 0}
	s.nodes[0].cache.Insert(m, true, 5)
	s.dir.Set(m, 0)
	s.nodes[0].cache.Insert(block.ID{File: 1, Idx: 0}, true, 50)
	s.dir.Set(block.ID{File: 1, Idx: 0}, 0)
	// Node 1 is empty: it should receive the forwarded master without
	// dropping anything.
	s.insertBlock(s.nodes[0], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()
	if !s.nodes[1].cache.IsMaster(m) {
		t.Fatal("master not forwarded to empty peer")
	}
	if s.nodes[1].cache.Len() != 1 {
		t.Fatalf("peer evicted something despite free space: len=%d", s.nodes[1].cache.Len())
	}
	checkConsistency(t, s)
}

// Property-style soak: a random workload on a small cluster leaves the
// directory and caches mutually consistent and never exceeds capacity.
func TestRandomWorkloadConsistency(t *testing.T) {
	for _, policy := range Policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			sizes := make([]int64, 40)
			for i := range sizes {
				sizes[i] = int64(rng.Intn(64*1024) + 512)
			}
			tr := testTrace(sizes...)
			eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 96 * 1024, Policy: policy})
			inflight := 0
			for i := 0; i < 400; i++ {
				node := rng.Intn(4)
				f := block.FileID(rng.Intn(len(sizes)))
				inflight++
				s.Dispatch(node, f, func() { inflight-- })
				if i%7 == 0 {
					eng.RunUntilIdle()
				}
			}
			eng.RunUntilIdle()
			if inflight != 0 {
				t.Fatalf("%d requests never completed", inflight)
			}
			st := s.CacheStats()
			if st.Accesses == 0 || st.LocalHits+st.RemoteHits+st.DiskReads != st.Accesses {
				t.Fatalf("access accounting inconsistent: %+v", st)
			}
			checkConsistency(t, s)
			for i := 0; i < 4; i++ {
				if s.NodeCache(i).Len() > s.NodeCache(i).Cap() {
					t.Fatalf("node %d over capacity", i)
				}
			}
		})
	}
}

func TestWholeFileModeServes(t *testing.T) {
	tr := testTrace(40*1024, 40*1024) // 5 blocks each
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyMaster, WholeFile: true})
	done := 0
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("whole-file request did not complete")
	}
	// All 5 blocks present as masters after one batched home read.
	for i := int32(0); i < 5; i++ {
		if !s.NodeCache(0).IsMaster(block.ID{File: 0, Idx: i}) {
			t.Fatalf("block %d missing after whole-file fetch", i)
		}
	}
	// The home disk must have served it as one contiguous read.
	if got := s.Hardware().Disks[0].Reads(); got != 1 {
		t.Fatalf("disk reads = %d, want 1 contiguous run", got)
	}
	// Second node fetches the whole file from peer memory in one exchange.
	s.Dispatch(1, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 2 {
		t.Fatal("second request did not complete")
	}
	for i := int32(0); i < 5; i++ {
		if !s.NodeCache(1).Contains(block.ID{File: 0, Idx: i}) {
			t.Fatalf("block %d not replicated to node 1", i)
		}
	}
	checkConsistency(t, s)
}

func TestWholeFileCoalescesWithInflight(t *testing.T) {
	tr := testTrace(40 * 1024)
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: PolicyMaster, WholeFile: true})
	done := 0
	s.Dispatch(0, 0, func() { done++ })
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 2 {
		t.Fatalf("completed %d of 2", done)
	}
	if got := s.Hardware().Disks[0].Reads(); got != 1 {
		t.Fatalf("disk reads = %d, want 1 (no duplicate whole-file fetch)", got)
	}
}

func TestHintDirectoryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := make([]int64, 30)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(32*1024) + 512)
	}
	tr := testTrace(sizes...)
	eng, s := newServer(tr, Config{
		Nodes: 4, MemoryPerNode: 64 * 1024, Policy: PolicyMaster, HintAccuracy: 0.9,
	})
	done := 0
	for i := 0; i < 300; i++ {
		s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(len(sizes))), func() { done++ })
		if i%11 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if done != 300 {
		t.Fatalf("completed %d of 300 with hint directory", done)
	}
	checkConsistency(t, s)
}

var _ = trace.File{}
