package core

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func TestDispatchWriteInvalidatesClusterWide(t *testing.T) {
	tr := testTrace(24 * 1024) // 3 blocks
	eng, s := newServer(tr, Config{Nodes: 3, MemoryPerNode: 1 << 20, Policy: PolicyMaster})
	// Warm all three nodes with the file.
	for i := 0; i < 3; i++ {
		s.Dispatch(i, 0, nil)
		eng.RunUntilIdle()
	}
	for i := 0; i < 3; i++ {
		if !s.NodeCache(i).Contains(block.ID{File: 0, Idx: 0}) {
			t.Fatalf("node %d not warmed", i)
		}
	}
	done := false
	s.DispatchWrite(1, 0, func() { done = true })
	eng.RunUntilIdle()
	if !done {
		t.Fatal("write never acknowledged")
	}
	// No node holds any block of the file; the directory forgot it.
	for i := 0; i < 3; i++ {
		for idx := int32(0); idx < 3; idx++ {
			if s.NodeCache(i).Contains(block.ID{File: 0, Idx: idx}) {
				t.Fatalf("node %d still caches block %d after write", i, idx)
			}
		}
	}
	for idx := int32(0); idx < 3; idx++ {
		if _, ok := s.dir.Holder(block.ID{File: 0, Idx: idx}); ok {
			t.Fatalf("directory still maps block %d", idx)
		}
	}
	checkConsistency(t, s)
}

func TestDispatchWriteHitsHomeDisk(t *testing.T) {
	tr := testTrace(1024, 16*1024) // file 1 homed at node 1
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyMaster})
	s.DispatchWrite(0, 1, nil)
	eng.RunUntilIdle()
	if got := s.Hardware().Disks[1].Reads(); got != 1 {
		t.Fatalf("home disk accesses = %d, want 1 (the write)", got)
	}
	if got := s.Hardware().Disks[0].Reads(); got != 0 {
		t.Fatalf("non-home disk accessed: %d", got)
	}
}

func TestDispatchWriteLocalHome(t *testing.T) {
	tr := testTrace(8 * 1024) // homed at node 0
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: PolicyMaster})
	done := false
	s.DispatchWrite(0, 0, func() { done = true })
	eng.RunUntilIdle()
	if !done {
		t.Fatal("single-node write never acknowledged")
	}
}

func TestReadAfterWriteFaultsBackIn(t *testing.T) {
	tr := testTrace(16 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyMaster})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	s.DispatchWrite(1, 0, nil)
	eng.RunUntilIdle()
	s.ResetStats()
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.DiskReads != 2 {
		t.Fatalf("read after write: %+v, want 2 disk reads (write-invalidate, no allocate)", st)
	}
	checkConsistency(t, s)
}

func TestMixedReadWriteWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sizes := make([]int64, 20)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(32*1024) + 512)
	}
	tr := testTrace(sizes...)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 128 * 1024, Policy: PolicyMaster})
	done := 0
	for i := 0; i < 300; i++ {
		f := block.FileID(rng.Intn(20))
		node := rng.Intn(4)
		if rng.Intn(5) == 0 {
			s.DispatchWrite(node, f, func() { done++ })
		} else {
			s.Dispatch(node, f, func() { done++ })
		}
		if i%11 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if done != 300 {
		t.Fatalf("completed %d of 300 mixed ops", done)
	}
	checkConsistency(t, s)
}
