package core

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/directory"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes a cooperative caching server.
type Config struct {
	// Nodes is the cluster size (4–32 in the paper).
	Nodes int
	// MemoryPerNode is each node's cache size in bytes (4–512 MB in the
	// paper's sweeps).
	MemoryPerNode int64
	// Policy selects the CC variant.
	Policy Policy
	// HintAccuracy, if in (0,1), replaces the perfect directory with the
	// hint-based model at that accuracy (§6 future work; Sarkar & Hartman
	// report ≈0.98). 0 or 1 means the paper's perfect directory.
	HintAccuracy float64
	// WholeFile enables the §6 whole-file adaptation: all missing blocks of
	// a request are fetched in batched per-source exchanges instead of
	// block-at-a-time.
	WholeFile bool
	// DisableForwarding drops evicted masters instead of giving them the
	// §3 second chance (ablation of the eviction-forwarding design choice).
	DisableForwarding bool
	// NChance is the recirculation budget for PolicyNChance (0: the
	// classic default of 2).
	NChance int
	// Geometry is the block/extent layout; zero value means the default
	// 8 KB / 64 KB.
	Geometry block.Geometry
}

// Server is a simulated cluster web server built on the cooperative caching
// middleware. It implements cluster.Backend.
type Server struct {
	cfg   Config
	hwc   *cluster.Hardware
	eng   *sim.Engine
	p     *hw.Params
	tr    *trace.Trace
	dir   *directory.Perfect
	loc   directory.Locator
	nodes []*ccNode
	homes []int16 // file -> home node (global file-to-node mapping, §3)
	// recirc tracks remaining N-chance recirculations for forwarded
	// masters (PolicyNChance only); an access resets by deleting the entry.
	recirc map[block.ID]int8
	stats  cluster.CacheStats
}

// ccNode is the per-node middleware state.
type ccNode struct {
	idx     int
	cache   *cache.BlockCache
	pending map[block.ID]*fetchState
}

// fetchState tracks one in-flight block fetch; concurrent requests for the
// same block on the same node coalesce onto it instead of issuing duplicate
// protocol messages.
type fetchState struct {
	waiters []func(outcome)
}

// outcome classifies how a missing block was obtained.
type outcome int

const (
	outRemote outcome = iota // served from a peer's memory
	outDisk                  // read from a disk (local or home)
)

// New builds a CC server over a fresh hardware substrate on eng, serving
// the file set of tr.
func New(eng *sim.Engine, p *hw.Params, tr *trace.Trace, cfg Config) *Server {
	if cfg.Nodes <= 0 {
		panic("core: config needs Nodes > 0")
	}
	if cfg.MemoryPerNode <= 0 {
		panic("core: config needs MemoryPerNode > 0")
	}
	if cfg.Geometry == (block.Geometry{}) {
		cfg.Geometry = block.DefaultGeometry
	}
	if err := cfg.Geometry.Validate(); err != nil {
		panic(err)
	}
	hwc := cluster.NewHardware(eng, p, cfg.Geometry, cfg.Nodes, cfg.Policy.DiskScheduler())
	s := &Server{
		cfg: cfg,
		hwc: hwc,
		eng: eng,
		p:   p,
		tr:  tr,
		dir: directory.NewPerfect(),
	}
	s.loc = s.dir
	if cfg.HintAccuracy > 0 && cfg.HintAccuracy < 1 {
		s.loc = directory.NewHints(s.dir, eng.Rand(), cfg.HintAccuracy)
	}
	if cfg.Policy == PolicyNChance {
		if s.cfg.NChance == 0 {
			s.cfg.NChance = 2
		}
		s.recirc = make(map[block.ID]int8)
	}
	blocksPerNode := int(cfg.MemoryPerNode / int64(cfg.Geometry.Size))
	if blocksPerNode < 1 {
		panic(fmt.Sprintf("core: memory %d smaller than one block", cfg.MemoryPerNode))
	}
	s.nodes = make([]*ccNode, cfg.Nodes)
	for i := range s.nodes {
		s.nodes[i] = &ccNode{
			idx:     i,
			cache:   cache.NewBlockCache(blocksPerNode),
			pending: make(map[block.ID]*fetchState),
		}
	}
	// Files are distributed across all nodes; every node knows the global
	// file-to-node mapping (§3). Round-robin by ID gives an even spread that
	// is independent of popularity (trace generation scatters popularity
	// over IDs).
	s.homes = make([]int16, len(tr.Files))
	for i := range s.homes {
		s.homes[i] = int16(i % cfg.Nodes)
	}
	return s
}

// Hardware implements cluster.Backend.
func (s *Server) Hardware() *cluster.Hardware { return s.hwc }

// CacheStats implements cluster.Backend.
func (s *Server) CacheStats() cluster.CacheStats { return s.stats }

// ResetStats implements cluster.Backend.
func (s *Server) ResetStats() { s.stats = cluster.CacheStats{} }

// Directory exposes the underlying master directory (tests, tools).
func (s *Server) Directory() *directory.Perfect { return s.dir }

// Home reports the home node of file f.
func (s *Server) Home(f block.FileID) int { return int(s.homes[f]) }

// NodeCache exposes node i's block cache (tests, tools).
func (s *Server) NodeCache(i int) *cache.BlockCache { return s.nodes[i].cache }

// Dispatch implements cluster.Backend: a client request for file arrives at
// node (round-robin DNS picks it), crosses the router and the node's NIC,
// is parsed, has its blocks materialized through the cooperative cache, and
// the response is sent back to the client.
func (s *Server) Dispatch(node int, file block.FileID, done func()) {
	if node < 0 || node >= len(s.nodes) {
		panic(fmt.Sprintf("core: dispatch to node %d of %d", node, len(s.nodes)))
	}
	n := s.nodes[node]
	size := s.tr.Size(file)
	nblocks := s.cfg.Geometry.Count(size)
	r := &request{s: s, n: n, file: file, size: size, nblocks: nblocks, done: done}
	s.hwc.Net.Send(nil, s.hwc.Nodes[node], int64(s.p.MsgHeader), func() {
		s.hwc.Nodes[node].CPU.Do(s.p.ParseTime, func() {
			s.hwc.Nodes[node].CPU.Do(s.p.FileReqTime(int(nblocks)), r.step)
		})
	})
}
