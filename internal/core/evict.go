package core

import (
	"repro/internal/block"
	"repro/internal/sim"
)

// insertBlock installs a newly received block at node n, evicting per the
// configured replacement policy if the cache is full. Master insertions
// update the global directory.
func (s *Server) insertBlock(n *ccNode, b block.ID, master bool) {
	c := n.cache
	if master {
		// Two nodes can race cold reads of the same block through the home
		// disk; the first to finish claims mastership, the second keeps a
		// plain copy. (The directory serializes the claim instantaneously,
		// per the paper's optimistic assumptions.)
		if h, ok := s.dir.Holder(b); ok && h != n.idx {
			master = false
		}
	}
	if c.Contains(b) {
		// A concurrent path already installed it (e.g. a forwarded master
		// landed while our fetch was in flight). At most upgrade its role.
		if master && c.Promote(b) {
			s.dir.Set(b, n.idx)
		}
		return
	}
	if c.Full() {
		s.evictOne(n)
	}
	c.Insert(b, master, s.eng.Now())
	if master {
		s.dir.Set(b, n.idx)
	}
}

// evictOne frees one block slot at node n according to the policy:
//
//   - All policies: the victim is the locally oldest block; a non-master
//     victim is simply dropped.
//   - PolicyMaster only: if the oldest block is a master and the node still
//     holds any non-master copy, the oldest non-master is evicted instead
//     (§5's modification — never sacrifice a master while replicas remain).
//   - A master victim gets a second chance: if some peer holds an older
//     block, the master is forwarded there; if it is the globally oldest
//     block, it is dropped and the directory forgets it.
func (s *Server) evictOne(n *ccNode) {
	c := n.cache
	_, vMaster, _, ok := c.Oldest()
	if !ok {
		return
	}
	if s.cfg.Policy == PolicyNChance {
		s.evictNChance(n)
		return
	}
	if s.cfg.Policy == PolicyMaster && vMaster && c.NonMasters() > 0 {
		c.EvictOldestNonMaster()
		return
	}
	victim, vMaster, vAge, _ := c.EvictOldest()
	if !vMaster {
		return
	}
	if s.cfg.DisableForwarding {
		s.dir.Drop(victim)
		return
	}
	peer, pAge, found := s.oldestPeer(n.idx)
	if !found || pAge >= vAge {
		// The victim is the oldest block in the system: drop it.
		s.dir.Drop(victim)
		return
	}
	s.forwardMaster(n.idx, peer, victim, vAge)
}

// evictNChance applies Dahlin-style N-chance replacement: plain local LRU,
// except that an evicted master (the cluster's last copy) is recirculated
// to a random peer while its chance budget lasts. Unlike the paper's §3
// algorithm, the receiver makes room through its normal replacement path,
// so bounded cascades are possible — faithfully reproducing the client-side
// algorithm the paper argues needs modification for servers.
func (s *Server) evictNChance(n *ccNode) {
	victim, vMaster, _, _ := n.cache.EvictOldest()
	if !vMaster {
		return
	}
	if s.cfg.DisableForwarding || len(s.nodes) < 2 {
		delete(s.recirc, victim)
		s.dir.Drop(victim)
		return
	}
	count, started := s.recirc[victim]
	if !started {
		count = int8(s.cfg.NChance)
	}
	if count <= 0 {
		delete(s.recirc, victim)
		s.dir.Drop(victim)
		return
	}
	s.recirc[victim] = count - 1
	// Random peer, as in the original algorithm (no global age knowledge).
	peer := s.eng.Rand().Intn(len(s.nodes) - 1)
	if peer >= n.idx {
		peer++
	}
	s.stats.Forwards++
	s.dir.Set(victim, peer)
	src, dst := s.hwc.Nodes[n.idx], s.hwc.Nodes[peer]
	s.hwc.Net.Send(src, dst, int64(s.cfg.Geometry.Size), func() {
		dst.CPU.Do(s.p.ProcessEvictedMaster, func() {
			// Keep the claim only if no newer master appeared in flight.
			if holder, ok := s.dir.Holder(victim); ok && holder == peer {
				s.insertBlock(s.nodes[peer], victim, true)
			}
		})
	})
}

// oldestPeer finds the peer (≠ exclude) holding the system's oldest block.
// A peer with free space is always a willing recipient and is treated as
// infinitely old. §3: each node always knows the age of the oldest blocks
// of its peers (one of the paper's optimistic assumptions).
func (s *Server) oldestPeer(exclude int) (node int, age sim.Time, found bool) {
	node = -1
	for i, peer := range s.nodes {
		if i == exclude {
			continue
		}
		if !peer.cache.Full() {
			return i, -1 << 62, true
		}
		if a, ok := peer.cache.OldestAge(); ok && (!found || a < age) {
			node, age, found = i, a, true
		}
	}
	return node, age, found
}

// forwardMaster ships an evicted master to peer. The directory optimistically
// points at the destination immediately (the paper assumes an instantaneous,
// free directory); requests racing the forwarded block fall back to a home
// disk read, exactly the §3 caveat.
func (s *Server) forwardMaster(from, peer int, b block.ID, age sim.Time) {
	s.stats.Forwards++
	s.dir.Set(b, peer)
	src, dst := s.hwc.Nodes[from], s.hwc.Nodes[peer]
	s.hwc.Net.Send(src, dst, int64(s.cfg.Geometry.Size), func() {
		dst.CPU.Do(s.p.ProcessEvictedMaster, func() {
			s.receiveForwarded(peer, b, age)
		})
	})
}

// receiveForwarded applies the two §3 properties at the destination:
// (1) forwarded blocks never cause cascaded evictions — the receiver drops
// its own oldest block outright to make room; (2) if everything at the
// destination is younger than the forwarded block, the forwarded block is
// dropped instead.
func (s *Server) receiveForwarded(peer int, b block.ID, age sim.Time) {
	n := s.nodes[peer]
	c := n.cache

	// If the master moved again while this copy was in flight (another node
	// claimed mastership via a home read), do not usurp it.
	holder, ok := s.dir.Holder(b)
	stillOurs := ok && holder == peer

	if c.Contains(b) {
		// The peer already holds a (non-master) copy; promote it if the
		// claim stands.
		if stillOurs {
			c.Promote(b)
		}
		return
	}
	if c.Full() {
		if oldest, hasOldest := c.OldestAge(); hasOldest && oldest >= age {
			// Everything here is younger: drop the forwarded block.
			s.stats.ForwardDrops++
			if stillOurs {
				s.dir.Drop(b)
			}
			return
		}
		// Make room by dropping the oldest — never forwarding again.
		vid, vMaster, _, _ := c.EvictOldest()
		if vMaster {
			s.dir.Drop(vid)
		}
	}
	c.Insert(b, stillOurs, age)
}
