package core

import (
	"repro/internal/block"
)

// fetchWindow bounds how many block fetches one request keeps in flight
// (8 blocks = one 64 KB extent, a readahead-sized window). Pipelining is
// what makes a cold file's blocks arrive at its home disk as a back-to-back
// stream: under the FIFO queue those streams interleave and pay a
// positioning seek almost per block (the §5 pathology), while the scheduled
// queue reassembles them.
const fetchWindow = 8

// request is one in-flight client request: a state machine advanced by
// service-center completions.
type request struct {
	s        *Server
	n        *ccNode
	file     block.FileID
	size     int64
	nblocks  int32
	next     int32 // next block index to examine
	inflight int   // outstanding fetches
	finished bool
	done     func()
}

// step issues block work until the window is full or the file is exhausted,
// then serves the response once every block has been materialized.
func (r *request) step() {
	s := r.s
	if r.finished {
		return
	}
	for r.next < r.nblocks && r.inflight < fetchWindow {
		b := block.ID{File: r.file, Idx: r.next}
		r.next++
		s.stats.Accesses++
		if r.n.cache.Touch(b, s.eng.Now()) {
			s.stats.LocalHits++
			if s.recirc != nil {
				delete(s.recirc, b) // an access resets the N-chance budget
			}
			continue
		}
		r.inflight++
		advance := func(o outcome) {
			switch o {
			case outRemote:
				s.stats.RemoteHits++
			case outDisk:
				s.stats.DiskReads++
			}
			r.inflight--
			r.step()
		}
		if fs, inflight := r.n.pending[b]; inflight {
			// Coalesce with the fetch another request already started.
			fs.waiters = append(fs.waiters, advance)
			continue
		}
		if s.cfg.WholeFile {
			s.fetchWholeFile(r.n, b, r.nblocks, advance)
		} else {
			s.fetchBlock(r.n, b, advance)
		}
	}
	if r.next >= r.nblocks && r.inflight == 0 {
		r.finished = true
		r.serve()
	}
}

// serve sends the response: CPU serving time, then the reply leaves through
// the node's bus, NIC and the router.
func (r *request) serve() {
	node := r.s.hwc.Nodes[r.n.idx]
	node.CPU.Do(r.s.p.ServeTime(r.size), func() {
		r.s.hwc.Net.Send(node, nil, r.size, r.done)
	})
}

// fetchBlock obtains one missing block per the §3 protocol: consult the
// global directory for the master copy; fetch a non-master copy from its
// holder; if the master is not in memory anywhere (or vanished in flight),
// ask the file's home node to read it from disk, making this node the new
// master holder.
func (s *Server) fetchBlock(n *ccNode, b block.ID, cb func(outcome)) {
	fs := &fetchState{}
	n.pending[b] = fs

	complete := func(o outcome) {
		delete(n.pending, b)
		cb(o)
		for _, w := range fs.waiters {
			w(o)
		}
	}

	if m, ok := s.loc.Locate(n.idx, b); ok && m != n.idx {
		s.fetchFromPeer(n, b, m, complete)
		return
	}
	s.fetchFromHome(n, b, complete)
}

// fetchFromPeer asks node m for a copy of b. If m no longer holds it (the
// race the paper's §3 optimism explicitly allows, and the common case for a
// stale hint), m replies with a miss and the fetch falls back to the home
// node's disk.
func (s *Server) fetchFromPeer(n *ccNode, b block.ID, m int, complete func(outcome)) {
	peerHW := s.hwc.Nodes[m]
	nodeHW := s.hwc.Nodes[n.idx]
	s.hwc.Net.SendMsg(nodeHW, peerHW, func() {
		peerHW.CPU.Do(s.p.ServePeerBlock, func() {
			if s.nodes[m].cache.Touch(b, s.eng.Now()) {
				if s.recirc != nil {
					delete(s.recirc, b) // an access resets the N-chance budget
				}
				s.hwc.Net.Send(peerHW, nodeHW, int64(s.cfg.Geometry.Size), func() {
					nodeHW.CPU.Do(s.p.CacheNewBlock, func() {
						s.insertBlock(n, b, false)
						complete(outRemote)
					})
				})
				return
			}
			// Master discarded while the request traveled: reply miss, then
			// read through the home node. The miss reply corrects the
			// directory if it still names this peer.
			s.stats.RaceMisses++
			if h, stillOk := s.dir.Holder(b); stillOk && h == m {
				s.dir.Drop(b)
			}
			s.hwc.Net.SendMsg(peerHW, nodeHW, func() {
				s.fetchFromHome(n, b, complete)
			})
		})
	})
}

// fetchFromHome reads b's master copy from the file's home disk and installs
// this node as the master holder.
func (s *Server) fetchFromHome(n *ccNode, b block.ID, complete func(outcome)) {
	h := int(s.homes[b.File])
	nodeHW := s.hwc.Nodes[n.idx]
	if h == n.idx {
		s.hwc.Disks[h].Read(b.File, b.Idx, 1, func() {
			nodeHW.Bus.Do(s.p.BusTransfer(int64(s.cfg.Geometry.Size)), func() {
				nodeHW.CPU.Do(s.p.CacheNewBlock, func() {
					s.insertBlock(n, b, true)
					complete(outDisk)
				})
			})
		})
		return
	}
	homeHW := s.hwc.Nodes[h]
	s.hwc.Net.SendMsg(nodeHW, homeHW, func() {
		homeHW.CPU.Do(s.p.ServePeerBlock, func() {
			s.hwc.Disks[h].Read(b.File, b.Idx, 1, func() {
				s.hwc.Net.Send(homeHW, nodeHW, int64(s.cfg.Geometry.Size), func() {
					nodeHW.CPU.Do(s.p.CacheNewBlock, func() {
						s.insertBlock(n, b, true)
						complete(outDisk)
					})
				})
			})
		})
	})
}
