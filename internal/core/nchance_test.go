package core

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func TestNChancePolicyName(t *testing.T) {
	if PolicyNChance.String() != "cc-nchance" {
		t.Fatal("name wrong")
	}
	if PolicyNChance.DiskScheduler() != PolicySched.DiskScheduler() {
		t.Fatal("nchance should use the scheduled disk queue")
	}
}

func TestNChanceRecirculatesThenDrops(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{
		Nodes: 2, MemoryPerNode: 8 * 1024, Policy: PolicyNChance, NChance: 1,
	})
	m := block.ID{File: 0, Idx: 0}
	s.nodes[0].cache.Insert(m, true, 5)
	s.dir.Set(m, 0)
	// Displace it: with one chance, it is forwarded to the only peer.
	s.insertBlock(s.nodes[0], block.ID{File: 1, Idx: 0}, false)
	eng.RunUntilIdle()
	if s.stats.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", s.stats.Forwards)
	}
	if !s.nodes[1].cache.IsMaster(m) {
		t.Fatal("recirculated master not installed at peer")
	}
	// Displace it again at node 1: the budget is spent, so it is dropped.
	s.insertBlock(s.nodes[1], block.ID{File: 2, Idx: 0}, false)
	eng.RunUntilIdle()
	if s.stats.Forwards != 1 {
		t.Fatalf("forwards = %d after budget exhausted, want still 1", s.stats.Forwards)
	}
	if _, ok := s.dir.Holder(m); ok {
		t.Fatal("exhausted master still in directory")
	}
}

func TestNChanceAccessResetsBudget(t *testing.T) {
	tr := testTrace(8*1024, 8*1024, 8*1024)
	eng, s := newServer(tr, Config{
		Nodes: 2, MemoryPerNode: 16 * 1024, Policy: PolicyNChance, NChance: 1,
	})
	m := block.ID{File: 0, Idx: 0}
	s.recirc[m] = 0 // budget spent
	s.nodes[0].cache.Insert(m, true, 5)
	s.dir.Set(m, 0)
	// A request that hits the block resets the budget.
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	if _, tracked := s.recirc[m]; tracked {
		t.Fatal("access did not reset the recirculation budget")
	}
}

func TestNChanceEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sizes := make([]int64, 30)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(32*1024) + 512)
	}
	tr := testTrace(sizes...)
	eng, s := newServer(tr, Config{Nodes: 4, MemoryPerNode: 64 * 1024, Policy: PolicyNChance})
	done := 0
	for i := 0; i < 400; i++ {
		s.Dispatch(rng.Intn(4), block.FileID(rng.Intn(30)), func() { done++ })
		if i%9 == 0 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if done != 400 {
		t.Fatalf("completed %d of 400", done)
	}
	if s.stats.Forwards == 0 {
		t.Fatal("n-chance never recirculated under pressure")
	}
	checkConsistency(t, s)
}

func TestNChanceSingleNodeDrops(t *testing.T) {
	tr := testTrace(8*1024, 8*1024)
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 8 * 1024, Policy: PolicyNChance})
	m := block.ID{File: 0, Idx: 0}
	s.nodes[0].cache.Insert(m, true, 5)
	s.dir.Set(m, 0)
	s.insertBlock(s.nodes[0], block.ID{File: 1, Idx: 0}, false)
	eng.RunUntilIdle()
	if s.stats.Forwards != 0 {
		t.Fatal("single-node cluster forwarded")
	}
	if _, ok := s.dir.Holder(m); ok {
		t.Fatal("master not dropped")
	}
}
