// Package core implements the paper's contribution: a block-based
// cooperative caching middleware layer for cluster-based servers (§3), with
// the three variants evaluated in §5:
//
//   - PolicyBasic: classic cooperative caching. An approximate global-LRU
//     replacement scheme in which a node evicts its locally oldest block;
//     an evicted master gets a second chance — if some peer holds an older
//     block, the master is forwarded there (never cascading), otherwise it
//     is dropped. The disk queue is FIFO.
//   - PolicySched: identical replacement, but the disk request queue uses a
//     stream-preserving scheduler, fixing the §5 interleaving pathology.
//   - PolicyMaster: PolicySched plus the paper's key modification — never
//     evict a master copy while still holding any non-master copy; evict
//     the oldest non-master instead. Memory thus first holds the working
//     set of master copies before any replicas are kept.
package core

import (
	"fmt"

	"repro/internal/disk"
)

// Policy selects the cooperative caching variant.
type Policy int

const (
	// PolicyBasic is traditional cooperative caching with a FIFO disk queue.
	PolicyBasic Policy = iota
	// PolicySched adds stream-preserving disk scheduling.
	PolicySched
	// PolicyMaster adds master-copy preservation (the paper's modification).
	PolicyMaster
	// PolicyNChance replaces the paper's replacement with Dahlin et al.'s
	// classic N-chance forwarding from client-side cooperative caching
	// (§2's related work): an evicted master (singlet) is forwarded to a
	// *random* peer with a recirculation budget of N; each re-eviction
	// spends one chance (cascades allowed, bounded by the budget) and an
	// access resets it. Including it quantifies the paper's claim that
	// client-side algorithms need modification for the server setting.
	PolicyNChance
)

// String names the policy with the labels used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyBasic:
		return "cc-basic"
	case PolicySched:
		return "cc-sched"
	case PolicyMaster:
		return "cc-master"
	case PolicyNChance:
		return "cc-nchance"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// DiskScheduler reports the disk queue discipline the policy uses.
func (p Policy) DiskScheduler() disk.Scheduler {
	if p == PolicyBasic {
		return disk.FIFO
	}
	return disk.Sequential
}

// Policies lists all variants in figure order (N-chance is an extension,
// not one of the paper's three curves).
var Policies = []Policy{PolicyBasic, PolicySched, PolicyMaster, PolicyNChance}
