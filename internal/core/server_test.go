package core

import (
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testTrace builds a file set with the given sizes (bytes).
func testTrace(sizes ...int64) *trace.Trace {
	tr := &trace.Trace{Name: "test"}
	for i, sz := range sizes {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(i), Size: sz})
	}
	return tr
}

var testParams = hw.DefaultParams()

func newServer(tr *trace.Trace, cfg Config) (*sim.Engine, *Server) {
	eng := sim.NewEngine(1)
	return eng, New(eng, &testParams, tr, cfg)
}

// checkConsistency verifies, at idle, that the directory and node caches
// agree: every directory entry points to a node caching that block as a
// master, and every cached master is in the directory.
func checkConsistency(t *testing.T, s *Server) {
	t.Helper()
	for i := range s.nodes {
		c := s.nodes[i].cache
		for f := range s.tr.Files {
			nb := s.cfg.Geometry.Count(s.tr.Files[f].Size)
			for idx := int32(0); idx < nb; idx++ {
				b := block.ID{File: block.FileID(f), Idx: idx}
				if c.IsMaster(b) {
					holder, ok := s.dir.Holder(b)
					if !ok || holder != i {
						t.Errorf("node %d holds master %v but directory says %d,%v", i, b, holder, ok)
					}
				}
			}
		}
	}
	// Directory entries must be backed by a cached master.
	for f := range s.tr.Files {
		nb := s.cfg.Geometry.Count(s.tr.Files[f].Size)
		for idx := int32(0); idx < nb; idx++ {
			b := block.ID{File: block.FileID(f), Idx: idx}
			if holder, ok := s.dir.Holder(b); ok {
				if !s.nodes[holder].cache.IsMaster(b) {
					t.Errorf("directory maps %v to node %d, which does not hold it as master", b, holder)
				}
			}
		}
	}
}

func TestSingleRequestColdRead(t *testing.T) {
	tr := testTrace(20 * 1024) // 3 blocks
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	served := false
	var rt sim.Time
	s.Dispatch(0, 0, func() { served = true; rt = eng.Now() })
	eng.RunUntilIdle()
	if !served {
		t.Fatal("request never completed")
	}
	st := s.CacheStats()
	if st.Accesses != 3 || st.DiskReads != 3 || st.LocalHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// All three blocks should now be masters at node 0 (file 0 homed at 0).
	for i := int32(0); i < 3; i++ {
		if !s.NodeCache(0).IsMaster(block.ID{File: 0, Idx: i}) {
			t.Fatalf("block %d not cached as master", i)
		}
	}
	// A cold 3-block read pays positioning + metadata + transfer: ≥ 14 ms.
	if rt < sim.Time(14*sim.Millisecond) {
		t.Fatalf("cold response at %v, faster than the disk model allows", rt)
	}
	checkConsistency(t, s)
}

func TestWarmRequestAllLocalHits(t *testing.T) {
	tr := testTrace(20 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	s.Dispatch(0, 0, nil)
	eng.RunUntilIdle()
	s.ResetStats()
	var t0, t1 sim.Time
	t0 = eng.Now()
	s.Dispatch(0, 0, func() { t1 = eng.Now() })
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.Accesses != 3 || st.LocalHits != 3 {
		t.Fatalf("warm stats = %+v", st)
	}
	if s.Hardware().Disks[0].Reads() != 0 {
		// ResetStats on server does not clear hardware; check via delta
		// instead: no new disk reads should have occurred. Reads() counts
		// since creation, so compare against the cold count (3 blocks may
		// arrive as fewer reads if coalesced; just ensure warm time is
		// sub-millisecond-ish).
	}
	if rt := t1.Sub(t0); rt > 2*sim.Millisecond {
		t.Fatalf("warm response took %v, want ~sub-ms CPU+NIC only", rt)
	}
}

func TestRemoteFetchFromPeer(t *testing.T) {
	tr := testTrace(8 * 1024) // 1 block, homed at node 0
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	s.Dispatch(0, 0, nil) // node 0 now holds the master
	eng.RunUntilIdle()
	s.ResetStats()
	s.Dispatch(1, 0, nil) // node 1 should fetch from node 0's memory
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.RemoteHits != 1 || st.DiskReads != 0 {
		t.Fatalf("stats = %+v, want one remote hit", st)
	}
	b := block.ID{File: 0, Idx: 0}
	if !s.NodeCache(1).Contains(b) || s.NodeCache(1).IsMaster(b) {
		t.Fatal("node 1 should hold a non-master copy")
	}
	if !s.NodeCache(0).IsMaster(b) {
		t.Fatal("node 0 should still hold the master")
	}
	checkConsistency(t, s)
}

func TestHomeReadRemoteHome(t *testing.T) {
	tr := testTrace(1024, 8*1024) // file 1 homed at node 1
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	s.Dispatch(0, 1, nil) // node 0 requests file 1: home read at node 1's disk
	eng.RunUntilIdle()
	st := s.CacheStats()
	if st.DiskReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Hardware().Disks[1].Reads() != 1 || s.Hardware().Disks[0].Reads() != 0 {
		t.Fatal("read did not go to the home node's disk")
	}
	b := block.ID{File: 1, Idx: 0}
	if !s.NodeCache(0).IsMaster(b) {
		t.Fatal("requester did not become master holder")
	}
	if s.NodeCache(1).Contains(b) {
		t.Fatal("home node should not cache the block it served from disk")
	}
	checkConsistency(t, s)
}

func TestPendingCoalescing(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 1, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	done := 0
	s.Dispatch(0, 0, func() { done++ })
	s.Dispatch(0, 0, func() { done++ })
	s.Dispatch(0, 0, func() { done++ })
	eng.RunUntilIdle()
	if done != 3 {
		t.Fatalf("completed %d of 3", done)
	}
	if got := s.Hardware().Disks[0].Reads(); got != 1 {
		t.Fatalf("disk reads = %d, want 1 (concurrent fetches must coalesce)", got)
	}
	st := s.CacheStats()
	if st.Accesses != 3 || st.DiskReads != 3 {
		// Three accesses, one physical read; all three classified as disk.
		t.Fatalf("stats = %+v", st)
	}
}

func TestRaceFallbackToHome(t *testing.T) {
	tr := testTrace(8 * 1024)
	eng, s := newServer(tr, Config{Nodes: 2, MemoryPerNode: 1 << 20, Policy: PolicyBasic})
	// Fabricate the §3 race: directory claims node 1 holds the master, but
	// node 1 has nothing.
	b := block.ID{File: 0, Idx: 0}
	s.dir.Set(b, 1)
	served := false
	s.Dispatch(0, 0, func() { served = true })
	eng.RunUntilIdle()
	if !served {
		t.Fatal("request never completed")
	}
	st := s.CacheStats()
	if st.RaceMisses != 1 || st.DiskReads != 1 {
		t.Fatalf("stats = %+v, want race miss + disk read", st)
	}
	if !s.NodeCache(0).IsMaster(b) {
		t.Fatal("requester did not recover mastership via home read")
	}
	checkConsistency(t, s)
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(1024)
	eng := sim.NewEngine(1)
	assertPanics(t, "no nodes", func() { New(eng, &testParams, tr, Config{MemoryPerNode: 1 << 20}) })
	assertPanics(t, "no memory", func() { New(eng, &testParams, tr, Config{Nodes: 1}) })
	assertPanics(t, "tiny memory", func() {
		New(eng, &testParams, tr, Config{Nodes: 1, MemoryPerNode: 100})
	})
	s := New(eng, &testParams, tr, Config{Nodes: 1, MemoryPerNode: 1 << 20})
	assertPanics(t, "bad node", func() { s.Dispatch(5, 0, nil) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestPolicyStrings(t *testing.T) {
	if PolicyBasic.String() != "cc-basic" || PolicyMaster.String() != "cc-master" {
		t.Fatal("policy names wrong")
	}
	if PolicyBasic.DiskScheduler() == PolicySched.DiskScheduler() {
		t.Fatal("basic and sched must differ in disk scheduling")
	}
}

func TestHomeMapping(t *testing.T) {
	tr := testTrace(1024, 1024, 1024, 1024)
	_, s := newServer(tr, Config{Nodes: 3, MemoryPerNode: 1 << 20})
	if s.Home(0) != 0 || s.Home(1) != 1 || s.Home(2) != 2 || s.Home(3) != 0 {
		t.Fatal("round-robin home mapping broken")
	}
}
