package core

// ShardedHotness stripes a Hotness tracker over power-of-two shards keyed
// by a mixed hash of the key, so the hot-path Observe on a multicore server
// contends on one stripe's mutex instead of one global one. Keys are
// disjoint across shards, so per-key operations (Observe, Score) are exact;
// Advance steps every shard in turn and Epoch reads shard zero — all shards
// advance together, so the epoch is a consistent clock for every caller
// that reads it through this wrapper.
type ShardedHotness struct {
	shards []*Hotness
	mask   uint64
}

// NewShardedHotness builds a tracker striped over the given shard count
// (rounded up to a power of two, capped at 64; values < 1 mean one shard).
// Decay and floor follow NewHotness.
func NewShardedHotness(decay, floor float64, shards int) *ShardedHotness {
	n := 1
	for n < shards && n < 64 {
		n <<= 1
	}
	s := &ShardedHotness{shards: make([]*Hotness, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewHotness(decay, floor)
	}
	return s
}

func (s *ShardedHotness) shard(key uint64) *Hotness {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[mix(key)&s.mask]
}

// Observe records one access to key and returns its new score.
func (s *ShardedHotness) Observe(key uint64) float64 { return s.shard(key).Observe(key) }

// Score reports key's current (decayed) score.
func (s *ShardedHotness) Score(key uint64) float64 { return s.shard(key).Score(key) }

// Advance steps every shard's epoch clock and sweep.
func (s *ShardedHotness) Advance() {
	for _, h := range s.shards {
		h.Advance()
	}
}

// Epoch reports the current epoch.
func (s *ShardedHotness) Epoch() uint64 { return s.shards[0].Epoch() }

// Len reports the number of tracked keys across all shards.
func (s *ShardedHotness) Len() int {
	n := 0
	for _, h := range s.shards {
		n += h.Len()
	}
	return n
}
