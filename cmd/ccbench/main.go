// Command ccbench regenerates every table and figure of the paper's
// evaluation section (§5) and prints them as aligned text tables, together
// with the §5 claim checks recorded in EXPERIMENTS.md.
//
// Sweep points fan out over a bounded worker pool (-parallel, default one
// worker per CPU); results are bit-identical at any parallelism. Alongside
// the text tables it writes BENCH_results.json (-json) with the figure data
// and per-point wall-clock costs so the perf trajectory is trackable across
// PRs, and -cpuprofile/-memprofile capture pprof profiles of a run.
//
// Usage:
//
//	ccbench -all                   # everything (minutes at default scale)
//	ccbench -fig2 -trace rutgers   # one panel
//	ccbench -fig6b
//	ccbench -all -requests 400000  # closer to full trace scale (slow)
//	ccbench -all -parallel 1       # serial (e.g. for clean CPU profiles)
//	ccbench -fig2 -cpuprofile cpu.out && go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccbench: ")
	var (
		all        = flag.Bool("all", false, "regenerate every table and figure")
		table2     = flag.Bool("table2", false, "Table 2")
		fig1       = flag.Bool("fig1", false, "Figure 1")
		fig2       = flag.Bool("fig2", false, "Figure 2 (throughput vs memory, 8 nodes)")
		fig3       = flag.Bool("fig3", false, "Figure 3 (normalized throughput)")
		fig4       = flag.Bool("fig4", false, "Figure 4 (hit rates)")
		fig5       = flag.Bool("fig5", false, "Figure 5 (normalized response time)")
		fig6a      = flag.Bool("fig6a", false, "Figure 6a (resource utilization)")
		fig6b      = flag.Bool("fig6b", false, "Figure 6b (scaling with cluster size)")
		extended   = flag.Bool("extended", false, "extension: L2S vs LARD vs LARD/R vs cc-master")
		hotspot    = flag.Bool("hotspot", false, "extension: §5's forced hot-file concentration conjecture")
		latency    = flag.Bool("latency", false, "extension: open-loop latency-vs-load curve for cc-master")
		seeds      = flag.Int("seeds", 0, "extension: cross-seed sensitivity of the headline ratio (N seeds)")
		writes     = flag.Bool("writes", false, "extension: throughput vs write fraction (write-invalidate)")
		traceName  = flag.String("trace", "", "restrict figure 2/3/4/5 to one trace")
		requests   = flag.Int("requests", 150000, "approximate requests per run")
		clients    = flag.Int("clients", 0, "closed-loop clients (0: 16/node)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		memsFlag   = flag.String("mems", "", "comma-separated per-node MB sweep (default 4,8,16,32,64,128,256,512)")
		mdOut      = flag.String("md", "", "write a full markdown reproduction report to this file")
		parallel   = flag.Int("parallel", 0, "concurrent sweep points (0: NumCPU, 1: serial; output is identical at any setting)")
		maxSamples = flag.Int("maxsamples", 0, "reservoir-sample response times to this many per run (0: exact percentiles)")
		jsonOut    = flag.String("json", "BENCH_results.json", "write machine-readable results to this file (empty: disable)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		mtxProfile = flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
		blkProfile = flag.String("blockprofile", "", "write a pprof blocking profile to this file")
		notes      noteFlags
	)
	flag.Var(&notes, "note", "key=value annotation recorded in the -json results (repeatable)")
	flag.Parse()

	defer obs.ContentionProfiles(*mtxProfile, *blkProfile)()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	opt := experiments.Options{
		Seed:               *seed,
		TargetRequests:     *requests,
		Clients:            *clients,
		Parallelism:        *parallel,
		MaxResponseSamples: *maxSamples,
	}
	if *memsFlag != "" {
		for _, s := range strings.Split(*memsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad -mems entry %q", s)
			}
			opt.MemoriesMB = append(opt.MemoriesMB, v)
		}
	}
	h := experiments.NewHarness(opt)

	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteReport(f, h, experiments.ReportConfig{
			Traces:          selected(*traceName),
			IncludeExtended: *extended,
		}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *mdOut)
		return
	}

	started := time.Now()
	results := experiments.NewBenchResults(opt, runtime.GOMAXPROCS(0))
	results.Notes = notes.m

	any := false
	run := func(enabled bool, fn func()) {
		if *all || enabled {
			fn()
			any = true
		}
	}
	// show prints a figure and logs it (with its wall-clock cost) for the
	// JSON results file.
	show := func(fig func() *experiments.Figure) {
		t0 := time.Now()
		f := fig()
		results.AddFigure(f, time.Since(t0))
		fmt.Println(f.Format())
	}

	run(*table2, func() {
		fmt.Println("== Table 2: trace characteristics ==")
		for _, row := range h.Table2() {
			fmt.Println(row)
		}
		fmt.Println()
	})
	run(*fig1, func() {
		fmt.Println("== Figure 1: Rutgers trace CDF ==")
		fmt.Printf("%-10s %-12s %-10s\n", "file%", "requests%", "cum MB")
		for _, pt := range h.Figure1(trace.Rutgers, 25) {
			fmt.Printf("%-10.1f %-12.1f %-10.1f\n", pt.FileFrac*100, pt.CumReqFrac*100, pt.CumMB)
		}
		fmt.Println()
	})
	run(*fig2, func() {
		for _, p := range selected(*traceName) {
			p := p
			show(func() *experiments.Figure { return h.Figure2(p, 8) })
		}
	})
	run(*fig3, func() {
		show(func() *experiments.Figure { return h.Figure3(trace.Calgary, 4) })
		show(func() *experiments.Figure { return h.Figure3(trace.Rutgers, 8) })
	})
	run(*fig4, func() {
		show(func() *experiments.Figure { return h.Figure4(trace.Rutgers, 8) })
	})
	run(*fig5, func() {
		show(func() *experiments.Figure { return h.Figure5(trace.Calgary, 4) })
		show(func() *experiments.Figure { return h.Figure5(trace.Rutgers, 8) })
	})
	run(*fig6a, func() {
		show(func() *experiments.Figure { return h.Figure6A(trace.Rutgers, 8) })
	})
	run(*fig6b, func() {
		show(func() *experiments.Figure { return h.Figure6B(trace.Rutgers, nil, 32) })
	})
	run(*extended, func() {
		show(func() *experiments.Figure { return h.Extended(trace.Rutgers, 8) })
	})
	if *seeds > 0 {
		var ss []int64
		for i := 1; i <= *seeds; i++ {
			ss = append(ss, int64(i))
		}
		rows := experiments.SeedSensitivity(opt, trace.Rutgers, 8, ss)
		fmt.Println(experiments.FormatSensitivity(trace.Rutgers, 8, rows))
		any = true
	}
	run(*latency, func() {
		fmt.Println("== Extension: latency vs offered load (cc-master, rutgers, 8 nodes, 64MB) ==")
		fmt.Printf("%-12s %-12s %-10s %-10s\n", "offered/s", "completed/s", "mean ms", "p95 ms")
		for _, pt := range h.LatencyCurve(trace.Rutgers, 8, 64, []float64{500, 1000, 2000, 4000, 8000}) {
			fmt.Printf("%-12.0f %-12.0f %-10.2f %-10.2f\n", pt.OfferedRate, pt.Throughput, pt.MeanRespMs, pt.P95RespMs)
		}
		fmt.Println()
	})
	run(*writes, func() {
		fmt.Println("== Extension: throughput vs write fraction (cc-master, rutgers, 8 nodes, 64MB) ==")
		fmt.Printf("%-10s %-12s %-10s %-8s\n", "writes", "req/s", "mean ms", "hit %")
		for _, pt := range h.WriteCurve(trace.Rutgers, 8, 64, []float64{0, 0.05, 0.1, 0.2, 0.4}) {
			fmt.Printf("%-10.2f %-12.0f %-10.2f %-8.1f\n", pt.WriteFrac, pt.Throughput, pt.MeanRespMs, pt.HitRate*100)
		}
		fmt.Println()
	})
	run(*hotspot, func() {
		res := h.Hotspot(trace.Rutgers, 8, 32, 0.5)
		fmt.Println("== Extension: forced concentration of hot files (cc-master, rutgers, 8 nodes, 32MB) ==")
		fmt.Printf("hot set: %d files covering %.0f%% of requests, pinned to node 0\n",
			res.HotFiles, res.HotReqFrac*100)
		fmt.Printf("baseline (RR DNS):   %8.0f req/s  resp %6.2fms  hit %5.1f%%\n",
			res.Baseline.Throughput, res.Baseline.MeanRespMs, res.Baseline.HitRate*100)
		fmt.Printf("concentrated:        %8.0f req/s  resp %6.2fms  hit %5.1f%%  node0 cpu=%.2f disk=%.2f\n",
			res.Concentrated.Throughput, res.Concentrated.MeanRespMs,
			res.Concentrated.HitRate*100, res.HotNodeCPU, res.HotNodeDisk)
		fmt.Println()
	})

	if !any {
		flag.Usage()
		return
	}
	if *jsonOut != "" {
		if err := results.Write(*jsonOut, h, time.Since(started)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (parallelism %d, %.1fs)\n",
			*jsonOut, results.Parallelism, time.Since(started).Seconds())
	}
}

// noteFlags collects repeated -note key=value annotations.
type noteFlags struct{ m map[string]string }

func (n *noteFlags) String() string { return fmt.Sprint(n.m) }

func (n *noteFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("note %q not of the form key=value", s)
	}
	if n.m == nil {
		n.m = make(map[string]string)
	}
	n.m[k] = v
	return nil
}

func selected(name string) []trace.Preset {
	if name == "" {
		return trace.Presets
	}
	p, ok := trace.PresetByName(name)
	if !ok {
		log.Fatalf("unknown trace %q", name)
	}
	return []trace.Preset{p}
}
