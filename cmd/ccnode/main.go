// Command ccnode runs live cooperative caching middleware nodes and talks
// to them. Three modes:
//
//	# run one node of a cluster (repeat per node, then read via -get)
//	ccnode -serve -id 0 -listen 127.0.0.1:7000 \
//	       -cluster 127.0.0.1:7000,127.0.0.1:7001 -files 100 -avg 16384
//
//	# read a file through the cluster
//	ccnode -get 7 -cluster 127.0.0.1:7000,127.0.0.1:7001
//
//	# print per-node statistics
//	ccnode -stats -cluster 127.0.0.1:7000,127.0.0.1:7001
//
//	# additionally serve the cluster's files over HTTP (keep-alive + h2c)
//	ccnode -serve -id 0 ... -http-addr 127.0.0.1:8080
//
// All nodes of one cluster must be started with identical -files/-avg so
// they agree on the (synthetic) file set; a real deployment would supply a
// shared manifest and a DirSource instead.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/httpfront"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccnode: ")
	var (
		serve    = flag.Bool("serve", false, "run a middleware node")
		id       = flag.Int("id", 0, "this node's index in -cluster")
		listen   = flag.String("listen", "", "listen address (default: the -cluster entry for -id)")
		cluster  = flag.String("cluster", "", "comma-separated node addresses, index = node ID")
		capacity = flag.Int("capacity", 4096, "cache capacity in blocks")
		policy   = flag.String("policy", "cc-master", "replacement policy (cc-basic, cc-master)")
		hints    = flag.Bool("hints", false, "use the hint-based directory instead of the central one")
		files    = flag.Int("files", 100, "synthetic file count")
		avg      = flag.Int64("avg", 16384, "synthetic average file size (bytes)")
		get      = flag.Int("get", -1, "read this file ID through the cluster and print its size")
		stats    = flag.Bool("stats", false, "print per-node statistics")
		rpcTO    = flag.Duration("rpc-timeout", 0, "per-RPC deadline (0: 5s default, negative: none)")
		retries  = flag.Int("retries", 0, "transient-failure retry budget (0: default of 2, negative: none)")
		brThresh = flag.Int("breaker-threshold", 0, "consecutive failures before a peer's circuit opens (0: default of 5, negative: disabled)")
		brCool   = flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe (0: 500ms default)")
		metrics  = flag.String("metrics-addr", "", "with -serve: HTTP address exposing /metrics (Prometheus), /debug/vars, and /debug/pprof")
		httpAddr = flag.String("http-addr", "", "with -serve: HTTP front door serving the cluster's files as /f/<id> (keep-alive + h2c, locality hand-off; /httpstats for gateway counters)")
		traceCap = flag.Int("trace", 0, "with -serve: retain the last N protocol trace events, dumpable via the trace RPC (0: tracing off)")
		repThr   = flag.Float64("replicate-threshold", 0, "with -serve: serve-rate score above which hot masters push replica copies (0: replication off)")
		repFan   = flag.Int("replica-fanout", 0, "with -serve: replica copies pushed per hot block (0: default of 2)")
		admit    = flag.Bool("admission", false, "with -serve: TinyLFU admission filter on the cache (one-hit wonders never evict hot blocks)")
		syncInv  = flag.Bool("sync-invalidate", false, "with -serve: synchronous write-invalidate fan-out instead of the async invalidation bus")
		join     = flag.String("join", "", "with -serve: join a running cluster through this seed node address instead of -cluster (requires -listen; -id picks this node's slot)")
		drain    = flag.Int("drain", -1, "drain this node ID out of the cluster: mark it draining, wait for the survivors to pull its ring slice, then remove it")
		static   = flag.Bool("static-home", false, "with -serve: pin the paper's static int(f)%%clusterSize placement (no ring, no elastic membership)")
		hbIvl    = flag.Duration("heartbeat-interval", 0, "with -serve: peer heartbeat probe interval (0: heartbeats off)")
		suspect  = flag.Duration("suspect-timeout", 0, "with -serve: silence before a peer is locally suspected (0: 3x heartbeat interval)")
		deadTO   = flag.Duration("dead-timeout", 0, "with -serve: silence before a suspected peer is proposed dead cluster-wide (0: 10x heartbeat interval)")
	)
	flag.Parse()

	addrs := splitAddrs(*cluster)
	if len(addrs) == 0 && !(*serve && *join != "") {
		log.Fatal("-cluster is required (or -serve -join <seed>)")
	}

	ft := faultTolerance{
		rpcTimeout:       *rpcTO,
		retries:          *retries,
		breakerThreshold: *brThresh,
		breakerCooldown:  *brCool,
	}

	switch {
	case *serve:
		ad := adaptive{threshold: *repThr, fanout: *repFan, admission: *admit}
		ms := membership{join: *join, static: *static, heartbeat: *hbIvl, suspect: *suspect, dead: *deadTO}
		runNode(*id, *listen, addrs, *capacity, *policy, *hints, *files, *avg, ft, ad, ms, *metrics, *httpAddr, *traceCap, *syncInv)
	case *drain >= 0:
		client := dial(addrs, ft)
		defer client.Close()
		if err := drainNode(client, *drain); err != nil {
			log.Fatal(err)
		}
	case *get >= 0:
		client := dial(addrs, ft)
		defer client.Close()
		data, err := client.Read(block.FileID(*get))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("file %d: %d bytes\n", *get, len(data))
	case *stats:
		client := dial(addrs, ft)
		defer client.Close()
		for i := range addrs {
			s, err := client.NodeStats(i)
			if err != nil {
				// A crashed node has no counters to report; say so and
				// keep printing the live ones.
				fmt.Printf("node %d: unreachable (%v)\n", i, err)
				continue
			}
			fmt.Printf("node %d: accesses=%d local=%d remote=%d disk=%d forwards=%d hit=%.1f%% timeouts=%d retries=%d fallbacks=%d breaker_opens=%d epoch=%d rebalanced=%d pending=%d\n",
				i, s.Accesses, s.LocalHits, s.RemoteHits, s.DiskReads, s.Forwards, s.HitRate()*100,
				s.RPCTimeouts, s.RPCRetries, s.HomeFallbacks, s.BreakerOpens,
				s.MembershipEpoch, s.RebalancedBlocks, s.RebalancePending)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func dial(addrs []string, ft faultTolerance) *middleware.Client {
	c, err := middleware.DialClusterConfig(addrs, middleware.ClientConfig{
		RPCTimeout:       ft.rpcTimeout,
		Retries:          ft.retries,
		BreakerThreshold: ft.breakerThreshold,
		BreakerCooldown:  ft.breakerCooldown,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// faultTolerance groups the wire-path robustness knobs (see the middleware
// Config fields of the same names for the zero-value defaults).
type faultTolerance struct {
	rpcTimeout       time.Duration
	retries          int
	breakerThreshold int
	breakerCooldown  time.Duration
}

// adaptive groups the hotness-driven replication and admission knobs (all
// zero: the single-master §3 protocol, unchanged).
type adaptive struct {
	threshold float64
	fanout    int
	admission bool
}

// membership groups the elastic-membership knobs: joining an existing
// cluster through a seed, pinning the legacy static placement, and the
// heartbeat failure-detection cadence.
type membership struct {
	join      string
	static    bool
	heartbeat time.Duration
	suspect   time.Duration
	dead      time.Duration
}

// drainNode runs the full graceful-departure lifecycle against a live
// cluster: mark the node draining (it keeps serving), wait until every
// survivor has pulled its share of the drained ring slice, then remove it
// — after which its process can be stopped with no client-visible errors.
func drainNode(client *middleware.Client, id int) error {
	if err := client.DrainNode(id); err != nil {
		return fmt.Errorf("drain node %d: %w", id, err)
	}
	log.Printf("node %d draining (epoch %d); waiting for the rebalance to settle", id, client.MembershipEpoch())
	deadline := time.Now().Add(10 * time.Minute)
	for {
		st, err := client.ClusterStats()
		if err == nil && st.RebalancePending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain node %d: rebalance never settled", id)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := client.RemoveNode(id); err != nil {
		return fmt.Errorf("remove node %d: %w", id, err)
	}
	log.Printf("node %d removed (epoch %d); its process can be stopped", id, client.MembershipEpoch())
	return nil
}

func runNode(id int, listen string, addrs []string, capacity int, policy string, hints bool, files int, avg int64, ft faultTolerance, ad adaptive, ms membership, metricsAddr, httpAddr string, traceCap int, syncInval bool) {
	if ms.join != "" {
		if listen == "" {
			log.Fatal("-join requires -listen (the joiner's own address)")
		}
		if id < 0 {
			log.Fatalf("-id %d invalid", id)
		}
	} else if id < 0 || id >= len(addrs) {
		log.Fatalf("-id %d out of range for %d cluster addresses", id, len(addrs))
	}
	if listen == "" {
		listen = addrs[id]
	}
	var pol core.Policy
	switch policy {
	case "cc-basic":
		pol = core.PolicyBasic
	case "cc-master":
		pol = core.PolicyMaster
	default:
		log.Fatalf("unknown policy %q", policy)
	}
	sizes := make(map[block.FileID]int64, files)
	for f := 0; f < files; f++ {
		// Deterministic spread of sizes around the average so every node
		// agrees without coordination.
		sizes[block.FileID(f)] = avg/2 + int64(f%7)*(avg/7)
	}
	var tracer *obs.Tracer
	if traceCap > 0 {
		tracer = obs.NewTracer(traceCap)
	}
	n, err := middleware.Start(middleware.Config{
		ID:                 id,
		Listen:             listen,
		Hints:              hints,
		CapacityBlocks:     capacity,
		Policy:             pol,
		Source:             middleware.NewMemSource(block.DefaultGeometry, sizes),
		RPCTimeout:         ft.rpcTimeout,
		Retries:            ft.retries,
		BreakerThreshold:   ft.breakerThreshold,
		BreakerCooldown:    ft.breakerCooldown,
		ReplicateThreshold: ad.threshold,
		ReplicaFanout:      ad.fanout,
		AdmissionFilter:    ad.admission,
		SyncInvalidate:     syncInval,
		StaticHome:         ms.static,
		HeartbeatInterval:  ms.heartbeat,
		SuspectTimeout:     ms.suspect,
		DeadTimeout:        ms.dead,
		Tracer:             tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	if ms.join != "" {
		if err := n.Join(ms.join); err != nil {
			n.Close()
			log.Fatalf("join via %s: %v", ms.join, err)
		}
		log.Printf("joined cluster via %s as node %d (epoch %d)", ms.join, id, n.MembershipEpoch())
	} else {
		n.SetAddrs(addrs)
	}
	if metricsAddr != "" {
		go serveMetrics(metricsAddr, n)
	}
	if httpAddr != "" {
		clusterAddrs := addrs
		if len(clusterAddrs) == 0 {
			// Join mode: seed the gateway's client with our own address; the
			// membership refresh learns the rest of the cluster from it.
			clusterAddrs = []string{n.Addr()}
		}
		go serveHTTP(httpAddr, clusterAddrs, files, ft)
	}
	log.Printf("node %d serving on %s (capacity %d blocks, %s, hints=%v, static_home=%v)",
		id, n.Addr(), capacity, policy, hints, ms.static)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	n.Close()
}

// serveHTTP runs the HTTP front door next to this node: a gateway over its
// own middleware client, serving the synthetic manifest as /f/<id> with
// HTTP/1.1 keep-alive and h2c, handing each request off to the file's home
// node. Any node of the cluster can run one — they are equivalent entry
// points, like the round-robin DNS fronting the paper's web server.
func serveHTTP(addr string, clusterAddrs []string, files int, ft faultTolerance) {
	client, err := middleware.DialClusterConfig(clusterAddrs, middleware.ClientConfig{
		RPCTimeout:       ft.rpcTimeout,
		Retries:          ft.retries,
		BreakerThreshold: ft.breakerThreshold,
		BreakerCooldown:  ft.breakerCooldown,
	})
	if err != nil {
		log.Printf("http front door: %v", err)
		return
	}
	table := httpfront.NewPathTable(nil)
	for f := 0; f < files; f++ {
		table.Add(loadgen.PathForFile(block.FileID(f)), block.FileID(f))
	}
	gw := httpfront.New(client, table)
	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/httpstats", gw.StatsJSONHandler())
	mux.Handle("/stats", httpfront.StatsHandler(client))
	srv := httpfront.NewServer(mux)
	srv.Addr = addr
	log.Printf("http front door on http://%s/f/<id>", addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("http front door: %v", err)
	}
}

// serveMetrics exposes the node's observability surface on its own HTTP
// listener, kept off the cluster's RPC port: Prometheus text on /metrics,
// Go runtime expvars on /debug/vars, and the standard pprof profiles under
// /debug/pprof.
func serveMetrics(addr string, n *middleware.Node) {
	reg := obs.NewRegistry()
	n.RegisterMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("metrics on http://%s/metrics", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("metrics server: %v", err)
	}
}
