package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/block"
	"repro/internal/httpfront"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/trace"
)

// httpOpts carries the knobs of an HTTP replay (ccload -http).
type httpOpts struct {
	out         string // bench document path
	url         string // external gateway base URL ("" → in-process)
	clf         string // Common Log Format access log ("" → synthetic trace)
	nodes       int
	capacity    int
	hints       bool
	files       int
	avg         int64
	requests    int
	connections int
	zipf        float64
	seed        int64
	warmup      float64
	interval    time.Duration
}

// httpRecord is an HTTP replay's outcome, stored in the bench document's
// "http" section.
type httpRecord struct {
	URL         string `json:"url,omitempty"` // external gateway, when not in-process
	CLF         string `json:"clf,omitempty"` // replayed access log, when not synthetic
	Nodes       int    `json:"nodes,omitempty"`
	Capacity    int    `json:"capacity_blocks,omitempty"`
	Files       int    `json:"files"`
	Connections int    `json:"connections"`
	Requests    int    `json:"requests"`
	Errors      int    `json:"errors"`
	Bytes       int64  `json:"bytes"`

	ElapsedMS   float64 `json:"elapsed_ms"`
	ReqPerSec   float64 `json:"req_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	MeanUS      float64 `json:"mean_us"`
	P50US       float64 `json:"p50_us"`
	P95US       float64 `json:"p95_us"`
	P99US       float64 `json:"p99_us"`
	ConnsOpened int64   `json:"conns_opened"`

	// Gateway is the gateway-side serving-counter delta over the replay:
	// hand-offs, 304s, range requests, errors, bytes. In-process it is read
	// directly; against an external gateway it is scraped from /httpstats.
	Gateway *httpfront.GatewayStats `json:"gateway,omitempty"`

	// Cluster cache behaviour behind the gateway (in-process runs only).
	HitRate float64 `json:"hit_rate,omitempty"`
	Local   uint64  `json:"local_hits,omitempty"`
	Remote  uint64  `json:"remote_hits,omitempty"`
	Disk    uint64  `json:"disk_reads,omitempty"`

	Intervals []loadgen.Interval `json:"intervals,omitempty"`
}

// runHTTP replays a trace over HTTP — the full production path: keep-alive
// connections into an httpfront gateway, hand-off to home nodes, streaming
// reads out of the live cluster. With o.url set it drives an already-running
// gateway (ccnode -serve -http-addr) and scrapes its /httpstats for the
// hand-off counters; otherwise it starts an in-process cluster + gateway on
// a real TCP listener. The result lands in the document's "http" section.
func runHTTP(o httpOpts) error {
	tr, err := httpTrace(o)
	if err != nil {
		return err
	}

	rec := httpRecord{
		URL:         o.url,
		CLF:         o.clf,
		Files:       len(tr.Files),
		Connections: o.connections,
	}

	var replay func() (loadgen.HTTPResult, *httpfront.GatewayStats, error)
	if o.url != "" {
		replay = func() (loadgen.HTTPResult, *httpfront.GatewayStats, error) {
			before, berr := scrapeGatewayStats(o.url)
			res, err := loadgen.ReplayHTTP(o.url, tr, loadgen.PathForFile, httpReplayConfig(o, tr))
			if err != nil {
				return res, nil, err
			}
			var delta *httpfront.GatewayStats
			if after, aerr := scrapeGatewayStats(o.url); berr == nil && aerr == nil {
				d := gatewayDelta(before, after)
				delta = &d
			}
			return res, delta, nil
		}
	} else {
		rec.Nodes, rec.Capacity = o.nodes, o.capacity
		replay = func() (loadgen.HTTPResult, *httpfront.GatewayStats, error) {
			return replayInProcess(o, tr, &rec)
		}
	}

	res, gwStats, err := replay()
	if err != nil {
		return fmt.Errorf("http replay: %w", err)
	}
	fmt.Println(res)

	rec.Requests = res.Requests
	rec.Errors = res.Errors
	rec.Bytes = res.Bytes
	rec.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
	rec.ReqPerSec = res.Throughput
	rec.MBPerSec = res.MBps
	rec.MeanUS = float64(res.Mean) / float64(time.Microsecond)
	rec.P50US = float64(res.P50) / float64(time.Microsecond)
	rec.P95US = float64(res.P95) / float64(time.Microsecond)
	rec.P99US = float64(res.P99) / float64(time.Microsecond)
	rec.ConnsOpened = res.ConnsOpened
	rec.Gateway = gwStats
	rec.Intervals = res.Intervals
	if gwStats != nil {
		log.Printf("gateway: requests=%d handoffs=%d not_modified=%d range=%d errors=%d",
			gwStats.Requests, gwStats.Handoffs, gwStats.NotModified, gwStats.RangeRequests, gwStats.Errors)
	}

	doc := loadBenchDoc(o.out)
	doc.HTTP = &rec
	return writeBenchDoc(o.out, doc)
}

// httpTrace builds the replay stream: a parsed access log when -clf is set,
// the standing synthetic manifest otherwise. The synthetic stream is padded
// or truncated to o.requests; a CLF stream keeps the log's own length unless
// -requests is shorter.
func httpTrace(o httpOpts) (*trace.Trace, error) {
	if o.clf == "" {
		sizes := fileSizes(o.files, o.avg)
		return buildTrace(o.files, sizes, o.requests, o.zipf, o.avg, o.seed), nil
	}
	f, err := os.Open(o.clf)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ParseCLF(o.clf, f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", o.clf, err)
	}
	log.Printf("clf %s: %d files, %d requests", o.clf, len(tr.Files), len(tr.Requests))
	return tr, nil
}

// httpReplayConfig maps the flag set onto the loadgen HTTP config.
func httpReplayConfig(o httpOpts, tr *trace.Trace) loadgen.HTTPConfig {
	cfg := loadgen.HTTPConfig{
		Connections: o.connections,
		WarmupFrac:  o.warmup,
		Interval:    o.interval,
	}
	if o.clf != "" && o.requests > 0 && o.requests < len(tr.Requests) {
		cfg.MaxRequests = o.requests
	}
	return cfg
}

// replayInProcess starts a cluster and a gateway on a loopback listener,
// replays through the real network stack, and reads the gateway and cluster
// counters directly. Note each keep-alive connection costs two descriptors
// here (client and server end share the process); very large -connections
// runs should start the gateway as a separate ccnode -http-addr process and
// use -http-url instead.
func replayInProcess(o httpOpts, tr *trace.Trace, rec *httpRecord) (loadgen.HTTPResult, *httpfront.GatewayStats, error) {
	sizes := make(map[block.FileID]int64, len(tr.Files))
	table := make(map[string]block.FileID, len(tr.Files))
	for _, f := range tr.Files {
		sizes[f.ID] = f.Size
		table[loadgen.PathForFile(f.ID)] = f.ID
	}
	_, addrs, shutdown, err := startCluster(o.nodes, o.capacity, o.hints, sizes, nil)
	if err != nil {
		return loadgen.HTTPResult{}, nil, err
	}
	defer shutdown()
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		return loadgen.HTTPResult{}, nil, err
	}
	defer client.Close()

	gw := httpfront.New(client, httpfront.NewPathTable(table))
	tracer := obs.NewTracer(4096)
	gw.SetTracer(tracer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.HTTPResult{}, nil, err
	}
	srv := httpfront.NewServer(gw)
	go srv.Serve(ln) //nolint:errcheck // closed via srv.Close below
	defer srv.Close()
	log.Printf("in-process gateway: http://%s over %d-node cluster", ln.Addr(), o.nodes)

	res, err := loadgen.ReplayHTTP("http://"+ln.Addr().String(), tr, loadgen.PathForFile, httpReplayConfig(o, tr))
	if err != nil {
		return res, nil, err
	}
	gs := gw.Stats()
	if cs, err := client.ClusterStats(); err == nil {
		rec.HitRate = cs.HitRate()
		rec.Local, rec.Remote, rec.Disk = cs.LocalHits, cs.RemoteHits, cs.DiskReads
	}
	return res, &gs, nil
}

// scrapeGatewayStats fetches an external gateway's /httpstats counters.
func scrapeGatewayStats(baseURL string) (httpfront.GatewayStats, error) {
	var s httpfront.GatewayStats
	resp, err := http.Get(baseURL + "/httpstats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("httpstats: status %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// gatewayDelta subtracts two counter snapshots taken around a replay.
func gatewayDelta(before, after httpfront.GatewayStats) httpfront.GatewayStats {
	return httpfront.GatewayStats{
		Requests:      after.Requests - before.Requests,
		Handoffs:      after.Handoffs - before.Handoffs,
		NotModified:   after.NotModified - before.NotModified,
		NotFound:      after.NotFound - before.NotFound,
		RangeRequests: after.RangeRequests - before.RangeRequests,
		Errors:        after.Errors - before.Errors,
		BytesServed:   after.BytesServed - before.BytesServed,
	}
}
